// Command mslc parses and checks Mortar Stream Language programs, printing
// the compiled statements.
//
// Usage:
//
//	mslc query.msl
//	echo 'query q as sum(0) from sensors window time 1s slide 1s' | mslc
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/msl"
)

func main() {
	var src []byte
	var err error
	if len(os.Args) > 1 {
		src, err = os.ReadFile(os.Args[1])
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := msl.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, st := range prog.Statements {
		fmt.Printf("query %-12s op=%s(%v) source=%s", st.Name, st.Op, st.Args, st.Source)
		if st.FilterKey != "" {
			fmt.Printf(" where key=%q", st.FilterKey)
		}
		fmt.Printf(" window=%+v", st.Window)
		if st.Trees > 0 {
			fmt.Printf(" trees=%d", st.Trees)
		}
		if st.BF > 0 {
			fmt.Printf(" bf=%d", st.BF)
		}
		fmt.Println()
	}
}
