// Command mortard runs a Mortar federation and executes an MSL program
// against it, streaming root results to stdout. It is the "daemon"-shaped
// entry point, with two backends:
//
//   - default: the deterministic discrete-event emulation the experiments
//     use, compressing minutes of virtual time into milliseconds;
//   - -live: real concurrency — every peer is a goroutine with a mailbox,
//     timers fire on the wall clock, and messages cross an in-process
//     lossy transport. The run takes -duration of real time.
//
// Usage:
//
//	mortard -peers 200 -duration 60s -msl query.msl
//	mortard -peers 100 -fail 0.2        # with 20% of peers disconnected
//	mortard -live -peers 50 -duration 5s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/runtime/livert"
	"repro/internal/tuple"
)

func main() {
	var (
		peers    = flag.Int("peers", 100, "federation size")
		duration = flag.Duration("duration", 30*time.Second, "run time (virtual, or real with -live)")
		program  = flag.String("msl", "", "MSL program file (default: a count query)")
		fail     = flag.Float64("fail", 0, "fraction of peers to disconnect mid-run")
		seed     = flag.Int64("seed", 1, "random seed")
		live     = flag.Bool("live", false, "run peers as goroutines on the live runtime instead of the simulator")
		loss     = flag.Float64("loss", 0.01, "live transport loss probability (-live only)")
		dup      = flag.Float64("dup", 0, "live transport control-plane duplication probability (-live only)")
	)
	flag.Parse()

	src := "query peers as count() from sensors window time 1s slide 1s trees 4 bf 16"
	if *program != "" {
		b, err := os.ReadFile(*program)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(b)
	}
	prog, err := msl.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	if *live {
		runLive(prog, rng, *peers, *duration, *fail, *seed, *loss, *dup)
		return
	}

	sim := eventsim.New(*seed)
	topo := netem.GenerateTransitStub(netem.PaperTopology(*peers), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	if *fail > 0 {
		sim.After(*duration/3, func() {
			n := int(*fail * float64(*peers))
			fmt.Printf("# t=%v disconnecting %d peers\n", sim.Now(), n)
			fed.FailRandom(n, rng)
		})
		sim.After(2**duration/3, func() {
			fmt.Printf("# t=%v reconnecting all peers\n", sim.Now())
			fed.RecoverAll()
		})
	}
	sim.RunUntil(*duration)
}

// runLive executes the same program on the goroutine-per-peer runtime and
// sleeps through real time instead of stepping a simulator.
func runLive(prog *msl.Program, rng *rand.Rand, peers int, duration time.Duration, fail float64, seed int64, loss, dup float64) {
	rt := livert.New(peers, livert.Options{
		Seed:     seed,
		MinDelay: 500 * time.Microsecond,
		MaxDelay: 10 * time.Millisecond,
		Loss:     loss,
		CtrlDup:  dup,
	})
	fed, err := federation.NewRuntime(rt, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	if fail > 0 {
		time.Sleep(duration / 3)
		n := int(fail * float64(peers))
		fmt.Printf("# disconnecting %d peers\n", n)
		fed.FailRandom(n, rng)
		time.Sleep(duration / 3)
		fmt.Println("# reconnecting all peers")
		fed.RecoverAll()
		time.Sleep(duration - 2*(duration/3))
	} else {
		time.Sleep(duration)
	}
	rt.Shutdown()
	sent, delivered, dropped, duplicated := rt.Stats()
	fmt.Printf("# live transport: sent=%d delivered=%d dropped=%d duplicated=%d\n",
		sent, delivered, dropped, duplicated)
}
