// Command mortard runs a Mortar federation and executes an MSL program
// against it, streaming root results to stdout. It is the "daemon"-shaped
// entry point, with three backends:
//
//   - default: the deterministic discrete-event emulation the experiments
//     use, compressing minutes of virtual time into milliseconds;
//   - -live: real concurrency — every peer is a goroutine with a mailbox,
//     timers fire on the wall clock, and messages cross an in-process
//     lossy transport. The run takes -duration of real time.
//   - -peers-file: the multi-process UDP mode — every peer binds a socket
//     from the shared peers file (one host:port per line, line i = peer i)
//     and all traffic crosses the wire as internal/wire datagrams. Each
//     process hosts the peer range given by -host. The process hosting
//     peer 0 is the coordinator: it measures RTTs, plans the queries, and
//     runs the install multicast; worker processes receive their operators
//     over the network. With -listen the coordinator waits until joining
//     workers cover the whole federation before planning; workers -join
//     the coordinator and run until it hangs up.
//
// Usage:
//
//	mortard -peers 200 -duration 60s -msl query.msl
//	mortard -peers 100 -fail 0.2        # with 20% of peers disconnected
//	mortard -live -peers 50 -duration 5s
//
//	# one federation, two processes, via UDP on a shared peers file:
//	mortard -peers-file peers.txt -host 8-15 -join 127.0.0.1:9000
//	mortard -peers-file peers.txt -host 0-7 -listen 127.0.0.1:9000 -duration 10s
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/runtime/livert"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
)

func main() {
	var (
		peers    = flag.Int("peers", 100, "federation size")
		duration = flag.Duration("duration", 30*time.Second, "run time (virtual, or real with -live / -peers-file)")
		program  = flag.String("msl", "", "MSL program file (default: a count query)")
		fail     = flag.Float64("fail", 0, "fraction of peers to disconnect mid-run")
		seed     = flag.Int64("seed", 1, "random seed")
		live     = flag.Bool("live", false, "run peers as goroutines on the live runtime instead of the simulator")
		loss     = flag.Float64("loss", 0.01, "live transport loss probability (-live only)")
		dup      = flag.Float64("dup", 0, "live transport control-plane duplication probability (-live only)")
		peersFil = flag.String("peers-file", "", "UDP mode: peer address directory, one host:port per line")
		host     = flag.String("host", "", "UDP mode: peer range this process hosts, e.g. 0-15")
		listen   = flag.String("listen", "", "UDP mode, coordinator: TCP address to accept worker joins on")
		join     = flag.String("join", "", "UDP mode, worker: coordinator TCP address to join")
	)
	flag.Parse()

	src := "query peers as count() from sensors window time 1s slide 1s trees 4 bf 16"
	if *program != "" {
		b, err := os.ReadFile(*program)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	prog, err := msl.Parse(src)
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	if *peersFil != "" {
		runNet(prog, rng, *peersFil, *host, *listen, *join, *duration, *seed)
		return
	}
	if *live {
		runLive(prog, rng, *peers, *duration, *fail, *seed, *loss, *dup)
		return
	}

	sim := eventsim.New(*seed)
	topo := netem.GenerateTransitStub(netem.PaperTopology(*peers), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fatal(err)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	if *fail > 0 {
		sim.After(*duration/3, func() {
			n := int(*fail * float64(*peers))
			fmt.Printf("# t=%v disconnecting %d peers\n", sim.Now(), n)
			fed.FailRandom(n, rng)
		})
		sim.After(2**duration/3, func() {
			fmt.Printf("# t=%v reconnecting all peers\n", sim.Now())
			fed.RecoverAll()
		})
	}
	sim.RunUntil(*duration)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// runLive executes the same program on the goroutine-per-peer runtime and
// sleeps through real time instead of stepping a simulator.
func runLive(prog *msl.Program, rng *rand.Rand, peers int, duration time.Duration, fail float64, seed int64, loss, dup float64) {
	rt := livert.New(peers, livert.Options{
		Seed:     seed,
		MinDelay: 500 * time.Microsecond,
		MaxDelay: 10 * time.Millisecond,
		Loss:     loss,
		CtrlDup:  dup,
	})
	fed, err := federation.NewRuntime(rt, prog, rng)
	if err != nil {
		fatal(err)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	if fail > 0 {
		time.Sleep(duration / 3)
		n := int(fail * float64(peers))
		fmt.Printf("# disconnecting %d peers\n", n)
		fed.FailRandom(n, rng)
		time.Sleep(duration / 3)
		fmt.Println("# reconnecting all peers")
		fed.RecoverAll()
		time.Sleep(duration - 2*(duration/3))
	} else {
		time.Sleep(duration)
	}
	rt.Shutdown()
	sent, delivered, dropped, duplicated := rt.Stats()
	fmt.Printf("# live transport: sent=%d delivered=%d dropped=%d duplicated=%d\n",
		sent, delivered, dropped, duplicated)
}

// runNet executes the program across separate processes over UDP: this
// process binds sockets for the peers in hostSpec and either coordinates
// (hosts peer 0) or works until the coordinator hangs up.
func runNet(prog *msl.Program, rng *rand.Rand, peersFile, hostSpec, listen, join string, duration time.Duration, seed int64) {
	dir, err := netrt.LoadDirectory(peersFile)
	if err != nil {
		fatal(err)
	}
	if hostSpec == "" {
		fatal(fmt.Errorf("mortard: -peers-file requires -host (the peer range this process binds)"))
	}
	local, err := netrt.ParseRange(hostSpec, len(dir))
	if err != nil {
		fatal(err)
	}
	rt, err := netrt.New(dir, local, netrt.Options{Seed: seed})
	if err != nil {
		fatal(err)
	}
	defer rt.Shutdown()

	if !rt.Local(0) {
		runNetWorker(rt, join, duration)
		return
	}

	// Coordinator: wait for workers, measure, plan, install, run.
	var workers []net.Conn
	if listen != "" {
		workers, err = awaitWorkers(listen, local, len(dir))
		if err != nil {
			fatal(err)
		}
		defer func() {
			for _, c := range workers {
				c.Close() // hang-up tells workers the run is over
			}
		}()
	}
	fmt.Printf("# coordinator hosting %d of %d peers; probing RTTs\n", len(local), len(dir))
	rt.ProbeAll(5, 100*time.Millisecond)
	fed, err := federation.NewRuntime(rt, prog, rng)
	if err != nil {
		fatal(err)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)
	time.Sleep(duration)
	rt.Shutdown()
	sent, delivered, dropped := rt.Stats()
	fmt.Printf("# udp transport: sent=%d delivered=%d dropped=%d\n", sent, delivered, dropped)
}

// runNetWorker hosts a peer range: sensors feed the local peers, operators
// arrive over the network via install multicast and reconciliation.
func runNetWorker(rt *netrt.Runtime, join string, duration time.Duration) {
	fed, err := federation.NewWorker(rt)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)
	locals := rt.LocalPeers()
	fmt.Printf("# worker hosting peers %d..%d\n", locals[0], locals[len(locals)-1])
	if join == "" {
		time.Sleep(duration)
		return
	}
	// The coordinator may start after its workers; retry the join dial.
	var conn net.Conn
	for deadline := time.Now().Add(30 * time.Second); ; {
		conn, err = net.Dial("tcp", join)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal(err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	fmt.Fprintf(conn, "JOIN %d-%d\n", locals[0], locals[len(locals)-1])
	// Block until the coordinator hangs up (end of run) or duration as a
	// fallback if it never does.
	done := make(chan struct{})
	go func() {
		_, _ = bufio.NewReader(conn).ReadString('\n')
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(duration + time.Minute):
	}
	conn.Close()
}

// awaitWorkers accepts JOIN lines on a TCP listener until the local range
// plus the joined ranges cover every peer in the directory. The accepted
// connections stay open; closing them signals the end of the run.
func awaitWorkers(listen string, local []int, n int) ([]net.Conn, error) {
	covered := make([]bool, n)
	remaining := n
	for _, p := range local {
		covered[p] = true
		remaining--
	}
	if remaining == 0 {
		return nil, nil
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	fmt.Printf("# waiting for workers to cover %d peers on %s\n", remaining, listen)
	var conns []net.Conn
	for remaining > 0 {
		c, err := l.Accept()
		if err != nil {
			return conns, err
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			c.Close()
			continue
		}
		spec, ok := strings.CutPrefix(strings.TrimSpace(line), "JOIN ")
		if !ok {
			c.Close()
			continue
		}
		peersRange, err := netrt.ParseRange(spec, n)
		if err != nil {
			c.Close()
			continue
		}
		for _, p := range peersRange {
			if !covered[p] {
				covered[p] = true
				remaining--
			}
		}
		conns = append(conns, c)
		fmt.Printf("# worker joined with %s; %d peers still uncovered\n", spec, remaining)
	}
	return conns, nil
}
