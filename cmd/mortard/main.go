// Command mortard runs an emulated Mortar federation and executes an MSL
// program against it, streaming root results to stdout. It is the
// "daemon"-shaped entry point: the same fabric the experiments use, driven
// by a user-supplied query program.
//
// Usage:
//
//	mortard -peers 200 -duration 60s -msl query.msl
//	mortard -peers 100 -fail 0.2   # with 20% of peers disconnected
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
)

func main() {
	var (
		peers    = flag.Int("peers", 100, "federation size")
		duration = flag.Duration("duration", 30*time.Second, "virtual run time")
		program  = flag.String("msl", "", "MSL program file (default: a count query)")
		fail     = flag.Float64("fail", 0, "fraction of peers to disconnect mid-run")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	src := "query peers as count() from sensors window time 1s slide 1s trees 4 bf 16"
	if *program != "" {
		b, err := os.ReadFile(*program)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(b)
	}
	prog, err := msl.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sim := eventsim.New(*seed)
	rng := rand.New(rand.NewSource(*seed))
	topo := netem.GenerateTransitStub(netem.PaperTopology(*peers), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	if *fail > 0 {
		sim.After(*duration/3, func() {
			n := int(*fail * float64(*peers))
			fmt.Printf("# t=%v disconnecting %d peers\n", sim.Now(), n)
			fed.FailRandom(n, rng)
		})
		sim.After(2**duration/3, func() {
			fmt.Printf("# t=%v reconnecting all peers\n", sim.Now())
			fed.RecoverAll()
		})
	}
	sim.RunUntil(*duration)
}
