// Command mortard runs a Mortar federation and executes an MSL program
// against it, streaming root results to stdout. It is the "daemon"-shaped
// entry point, with three backends:
//
//   - default: the deterministic discrete-event emulation the experiments
//     use, compressing minutes of virtual time into milliseconds;
//   - -live: real concurrency — every peer is a goroutine with a mailbox,
//     timers fire on the wall clock, and messages cross an in-process
//     lossy transport. The run takes -duration of real time.
//   - -peers-file: the multi-process UDP mode — peers bind sockets from
//     the shared peers file (one host:port per line, line i = peer i; or
//     ranged lines "host:port lo-hi" multiplexing many peers behind one
//     socket) and all traffic crosses the wire as internal/wire datagrams.
//     -gen-peers-file writes such a ranged file for -peers peers, chunked
//     -peers-per-socket per address from -base-port up. Each
//     process hosts the peer range given by -host. The process hosting
//     peer 0 is the coordinator: it learns pair latencies, plans the
//     queries, and runs the install multicast; worker processes receive
//     their operators over the network. With -listen the coordinator waits
//     until joining workers cover the whole federation before planning;
//     workers -join the coordinator and run until it hangs up. With
//     -vivaldi every process runs decentralized Vivaldi: coordinates
//     spread on probe gossip and heartbeat piggybacks, the coordinator
//     plans from the gossiped embedding (no coordinator-local probing),
//     and convergence is logged. -mtu sets the datagram size above which
//     frames fragment (with NACK repair and reassembly); -pace sets the
//     token-bucket rate outgoing datagrams drain at; -vivaldi-height
//     embeds with height-vector coordinates (access-link latency);
//     -coalesce batches small frames to one remote socket into train
//     datagrams; -probe-rounds 0 skips all-pairs probing (the planner
//     falls back to default latencies — the scale-run setting); -pprof
//     serves net/http/pprof for hot-path profiles.
//
// With -chaos <schedule.json> (live and UDP modes) the process replays a
// scripted fault schedule (internal/chaos DSL) against the running
// federation: fail-stop kills, staggered recoveries, rolling churn,
// correlated shared-socket outages, and datagram-loss ramps. Every
// process of a UDP run passes the same file — expansion is deterministic,
// so all processes agree on the global fault pattern while each gates
// only the peers it hosts. The coordinator samples per-window
// completeness against the schedule's live-node count, writes
// CURVE_<scenario>.json into -curve-dir, and prints a "# chaos summary:"
// line the failure smoke gates on.
//
// With -replan (live and UDP coordinator modes) the process monitors the
// latency view for drift: when a query's deployed tree set costs more
// than -drift-threshold above what a fresh plan would, the query is
// replanned into its next epoch and migrated live — both epochs run side
// by side, tuples flow through both tree sets, and the old epoch is
// retired only after every member acks the new wiring and its
// completeness catches up (make-before-break). Each replan logs the old
// and new predicted cost; the end-of-run transport summary counts
// retired epochs.
//
// Usage:
//
//	mortard -peers 200 -duration 60s -msl query.msl
//	mortard -peers 100 -fail 0.2        # with 20% of peers disconnected
//	mortard -live -peers 50 -duration 5s
//
//	# one federation, two processes, via UDP on a shared peers file:
//	mortard -peers-file peers.txt -host 8-15 -join 127.0.0.1:9000
//	mortard -peers-file peers.txt -host 0-7 -listen 127.0.0.1:9000 -vivaldi -duration 10s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/runtime/livert"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
)

func main() {
	var (
		peers    = flag.Int("peers", 100, "federation size")
		duration = flag.Duration("duration", 30*time.Second, "run time (virtual, or real with -live / -peers-file)")
		program  = flag.String("msl", "", "MSL program file (default: a count query)")
		fail     = flag.Float64("fail", 0, "fraction of peers to disconnect mid-run")
		seed     = flag.Int64("seed", 1, "random seed")
		live     = flag.Bool("live", false, "run peers as goroutines on the live runtime instead of the simulator")
		loss     = flag.Float64("loss", 0.01, "live transport loss probability (-live only)")
		dup      = flag.Float64("dup", 0, "live transport control-plane duplication probability (-live only)")
		peersFil = flag.String("peers-file", "", "UDP mode: peer address directory, one host:port per line")
		host     = flag.String("host", "", "UDP mode: peer range this process hosts, e.g. 0-15")
		listen   = flag.String("listen", "", "UDP mode, coordinator: TCP address to accept worker joins on")
		join     = flag.String("join", "", "UDP mode, worker: coordinator TCP address to join")
		vivaldiM = flag.Bool("vivaldi", false, "UDP mode: run decentralized Vivaldi — every process gossips coordinates, the coordinator plans from them (no coordinator-local probing) and logs convergence")
		mtu      = flag.Int("mtu", 0, "UDP mode: datagram MTU — frames that do not fit are fragmented, NACK-repaired, and reassembled (0 = netrt default, 1400)")
		pace     = flag.Int("pace", 0, "UDP mode: outgoing token-bucket rate in bytes/sec per local peer (0 = netrt default, 8 MiB/s; negative = unpaced)")
		height   = flag.Bool("vivaldi-height", false, "UDP mode: embed with Vivaldi height-vector coordinates (models access-link latency; all processes must agree)")
		replan   = flag.Bool("replan", false, "coordinator: monitor the embedding for drift and live-replan queries into new epochs (make-before-break migration)")
		driftThr = flag.Float64("drift-threshold", 0.25, "with -replan: relative cost degradation of the deployed plan versus a fresh candidate that triggers a replan")
		coalesce = flag.Bool("coalesce", false, "UDP mode: batch small frames to one remote socket into coalesced train datagrams")
		probeRds = flag.Int("probe-rounds", 5, "UDP mode, coordinator without -vivaldi: ProbeAll rounds before planning (0 skips probing — planning falls back to default latencies; use at scales where all-pairs probing is prohibitive)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for hot-path profiles during scale runs")
		serve    = flag.String("serve", "", "HTTP serving plane address (e.g. localhost:8080): install/list/remove queries and stream results over JSON — -live or UDP coordinator mode; with no -msl the federation starts empty and every query arrives over HTTP")
		genPeers = flag.String("gen-peers-file", "", "write a ranged peers file for -peers peers multiplexed -peers-per-socket per address starting at -base-port, then exit")
		perSock  = flag.Int("peers-per-socket", 1, "with -gen-peers-file: peers multiplexed behind each host:port")
		basePort = flag.Int("base-port", 9000, "with -gen-peers-file: first UDP port to assign")
		chaosF   = flag.String("chaos", "", "fault schedule JSON to replay against the running federation (-live or UDP mode; every process of a UDP run passes the same file)")
		curveDir = flag.String("curve-dir", ".", "with -chaos: directory the coordinator writes CURVE_<scenario>.json into")
	)
	flag.Parse()

	if *pprofA != "" {
		go func() {
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintf(os.Stderr, "# pprof server: %v\n", err)
			}
		}()
		fmt.Printf("# pprof listening on %s\n", *pprofA)
	}
	if *genPeers != "" {
		if err := writePeersFile(*genPeers, *peers, *perSock, *basePort); err != nil {
			fatal(err)
		}
		return
	}

	// With -serve and no -msl the federation starts empty: every query
	// arrives through the gateway. Otherwise the default count query keeps
	// the no-flag invocation doing something observable.
	var prog *msl.Program
	var err error
	if *program != "" {
		b, rerr := os.ReadFile(*program)
		if rerr != nil {
			fatal(rerr)
		}
		if prog, err = msl.Parse(string(b)); err != nil {
			fatal(err)
		}
	} else if *serve == "" {
		src := "query peers as count() from sensors window time 1s slide 1s trees 4 bf 16"
		if prog, err = msl.Parse(src); err != nil {
			fatal(err)
		}
	}

	var sched *chaos.Schedule
	if *chaosF != "" {
		if sched, err = chaos.Load(*chaosF); err != nil {
			fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	if *peersFil != "" {
		runNet(prog, rng, *peersFil, *host, *listen, *join, *duration,
			netrt.Options{Seed: *seed, MTU: *mtu, Pace: *pace, VivaldiHeight: *height, Coalesce: *coalesce},
			*vivaldiM, *replan, *driftThr, *probeRds, *serve, sched, *curveDir)
		return
	}
	if *live {
		runLive(prog, rng, *peers, *duration, *fail, *seed, *loss, *dup, *replan, *driftThr, *serve, sched, *curveDir)
		return
	}
	if *serve != "" {
		fatal(fmt.Errorf("mortard: -serve needs a wall-clock backend (-live or -peers-file); the simulator compresses virtual time"))
	}
	if sched != nil {
		fatal(fmt.Errorf("mortard: -chaos needs a wall-clock backend (-live or -peers-file); the simulator has its own scripted failures via -fail"))
	}

	sim := eventsim.New(*seed)
	topo := netem.GenerateTransitStub(netem.PaperTopology(*peers), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fatal(err)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	if *fail > 0 {
		sim.After(*duration/3, func() {
			n := int(*fail * float64(*peers))
			fmt.Printf("# t=%v disconnecting %d peers\n", sim.Now(), n)
			fed.FailRandom(n, rng)
		})
		sim.After(2**duration/3, func() {
			fmt.Printf("# t=%v reconnecting all peers\n", sim.Now())
			fed.RecoverAll()
		})
	}
	sim.RunUntil(*duration)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// writePeersFile emits a ranged peers file multiplexing perSock consecutive
// peers behind each 127.0.0.1 port from basePort up — the -peers-file every
// process of a scale run shares.
func writePeersFile(path string, peers, perSock, basePort int) error {
	if peers <= 0 || perSock <= 0 || basePort <= 0 || basePort > 65535 {
		return fmt.Errorf("mortard: -gen-peers-file needs positive -peers, -peers-per-socket, and a valid -base-port")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %d peers, %d per socket, ports from %d\n", peers, perSock, basePort)
	port := basePort
	for lo := 0; lo < peers; lo += perSock {
		hi := lo + perSock - 1
		if hi >= peers {
			hi = peers - 1
		}
		if port > 65535 {
			return fmt.Errorf("mortard: -gen-peers-file runs past port 65535 (lower -peers or raise -peers-per-socket)")
		}
		fmt.Fprintf(&b, "127.0.0.1:%d %d-%d\n", port, lo, hi)
		port++
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s: %d peers over %d sockets\n", path, peers, port-basePort)
	return nil
}

// startGateway serves the HTTP plane over fed on addr, returning a
// shutdown func.
func startGateway(fed *federation.Federation, addr string) func() {
	gw := gateway.NewServer(fed, gateway.Options{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: gw}
	fmt.Printf("# gateway listening on http://%s\n", ln.Addr())
	go srv.Serve(ln)
	return func() {
		srv.Close()
		gw.Close()
	}
}

// startChaos replays sched against inj while sampling fed's root
// completeness against the schedule-truth live count. The returned stop
// func ends the replay, writes CURVE_<scenario>.json into curveDir, and
// prints the summary line the smoke gates parse.
func startChaos(fed *federation.Federation, inj chaos.Injector, sched *chaos.Schedule, curveDir string) func() {
	runner, err := chaos.Start(inj, sched)
	if err != nil {
		fatal(err)
	}
	watch := fed.WatchCompleteness("")
	rec := chaos.NewRecorder(sched.Scenario, inj.NumPeers(), sched.SamplePeriod(), chaos.Probe{
		Live:         runner.Live,
		Completeness: watch.Latest,
	})
	rec.Start()
	if fStart, fEnd, ok := chaos.FaultSpan(runner.Actions()); ok {
		fmt.Printf("# chaos: scenario=%s actions=%d fault_span=%v..%v\n",
			sched.Scenario, len(runner.Actions()), fStart, fEnd)
	} else {
		fmt.Printf("# chaos: scenario=%s actions=%d (no gate faults)\n",
			sched.Scenario, len(runner.Actions()))
	}
	return func() {
		runner.Stop()
		rec.Stop()
		watch.Close()
		fs, fe, _ := runner.FaultSpan()
		curve := rec.Curve(fs, fe)
		path, err := curve.WriteFile(curveDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "# chaos: writing curve: %v\n", err)
			path = "<unwritten>"
		}
		fmt.Printf("# chaos summary: scenario=%s baseline=%d fault_min=%d min_live=%d recovered=%d samples=%d curve=%s\n",
			curve.Scenario, curve.Summary.Baseline, curve.Summary.FaultMin,
			curve.Summary.MinLive, curve.Summary.Recovered, len(curve.Samples), path)
	}
}

// startChaosWorker replays sched against a worker process's runtime: the
// expansion is identical to the coordinator's (same schedule, same seed),
// the locality filter gates only the peers this process hosts, and no
// measurement runs — completeness is sampled at the root.
func startChaosWorker(inj chaos.Injector, sched *chaos.Schedule) func() {
	runner, err := chaos.Start(inj, sched)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# chaos: worker replaying scenario=%s actions=%d\n", sched.Scenario, len(runner.Actions()))
	return runner.Stop
}

// runLive executes the same program on the goroutine-per-peer runtime and
// sleeps through real time instead of stepping a simulator.
func runLive(prog *msl.Program, rng *rand.Rand, peers int, duration time.Duration, fail float64, seed int64, loss, dup float64, replan bool, driftThr float64, serve string, sched *chaos.Schedule, curveDir string) {
	rt := livert.New(peers, livert.Options{
		Seed:     seed,
		MinDelay: 500 * time.Microsecond,
		MaxDelay: 10 * time.Millisecond,
		Loss:     loss,
		CtrlDup:  dup,
	})
	fed, err := federation.NewRuntime(rt, prog, rng)
	if err != nil {
		fatal(err)
	}
	var mon *federation.Monitor
	if replan {
		mon = startReplanMonitor(fed, driftThr)
	}
	if serve != "" {
		defer startGateway(fed, serve)()
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)
	stopSampler := startDataPathSampler(fed.Fab)

	// The fabric is the live backend's injector: single process, so every
	// peer is local and the transport gates resolve in-process.
	var stopChaos func()
	if sched != nil {
		stopChaos = startChaos(fed, fed.Fab, sched, curveDir)
	}
	if fail > 0 {
		time.Sleep(duration / 3)
		n := int(fail * float64(peers))
		fmt.Printf("# disconnecting %d peers\n", n)
		fed.FailRandom(n, rng)
		time.Sleep(duration / 3)
		fmt.Println("# reconnecting all peers")
		fed.RecoverAll()
		time.Sleep(duration - 2*(duration/3))
	} else {
		time.Sleep(duration)
	}
	if mon != nil {
		mon.Stop() // before Shutdown, so no poll races a dead runtime
	}
	if stopChaos != nil {
		stopChaos()
	}
	rt.Shutdown()
	sent, delivered, dropped, duplicated := rt.Stats()
	fmt.Printf("# live transport: sent=%d delivered=%d dropped=%d duplicated=%d epochs_retired=%d\n",
		sent, delivered, dropped, duplicated, fed.Fab.Stats.EpochsRetired.Load())
	fmt.Printf("# fabric bytes: ctl=%d data=%d shared_ctl=%d\n",
		fed.Fab.Stats.ControlBytes.Load(), fed.Fab.Stats.DataBytes.Load(), fed.Fab.Stats.SharedCtlBytes.Load())
	printDataPathStats(fed.Fab, stopSampler())
}

// startDataPathSampler samples the fabric's tuple-ingest counter once a
// second and returns a stop function reporting the peak one-second rate —
// the run's best sustained ingest throughput. The returned function must be
// called exactly once, before printing the run summary.
func startDataPathSampler(fab *mortar.Fabric) func() float64 {
	done := make(chan struct{})
	peak := make(chan uint64, 1)
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		last := fab.Stats.TuplesIngested.Load()
		var best uint64
		for {
			select {
			case <-done:
				peak <- best
				return
			case <-tick.C:
				cur := fab.Stats.TuplesIngested.Load()
				if d := cur - last; d > best {
					best = d
				}
				last = cur
			}
		}
	}()
	return func() float64 {
		close(done)
		return float64(<-peak)
	}
}

// printDataPathStats emits the data-plane summary line: tuples ingested,
// the mailbox hops that carried them (their ratio is the batching factor),
// time-space list activity, and the peak sustained ingest rate.
func printDataPathStats(fab *mortar.Fabric, peakRate float64) {
	fmt.Printf("# data path: tuples=%d batches=%d ts_inserts=%d ts_merges=%d peak_rate=%.0f tuples/s\n",
		fab.Stats.TuplesIngested.Load(), fab.Stats.IngestBatches.Load(),
		fab.DataPath.Inserts.Load(), fab.DataPath.Merges.Load(), peakRate)
	staged := fab.Stats.SummariesStaged.Load()
	coalesced := fab.Stats.SummariesCoalesced.Load()
	batchFrames := fab.Stats.BatchFrames.Load()
	batched := fab.Stats.BatchedSummaries.Load()
	fmt.Printf("# summary path: staged=%d coalesced=%d data_frames=%d batch_frames=%d batched=%d frames_saved=%d\n",
		staged, coalesced, fab.Stats.DataFrames.Load(), batchFrames, batched,
		coalesced+batched-batchFrames)
}

// startReplanMonitor arms drift-triggered live replanning, logging every
// migration's cost delta.
func startReplanMonitor(fed *federation.Federation, driftThr float64) *federation.Monitor {
	return fed.StartMonitor(federation.MonitorOptions{
		Threshold: driftThr,
		OnReplan: func(r federation.ReplanResult) {
			fmt.Printf("# replan query=%s epoch=%d cost %.2fms -> %.2fms (from_coords=%v)\n",
				r.Query, r.Epoch,
				float64(r.OldCost)/float64(time.Millisecond),
				float64(r.NewCost)/float64(time.Millisecond),
				r.FromCoords)
		},
		OnError: func(query string, err error) {
			fmt.Printf("# replan query=%s FAILED: %v\n", query, err)
		},
	})
}

// runNet executes the program across separate processes over UDP: this
// process binds sockets for the peers in hostSpec and either coordinates
// (hosts peer 0) or works until the coordinator hangs up. With vivaldiOn,
// every process runs decentralized Vivaldi: coordinates spread on probe
// gossip and heartbeats, and the coordinator plans from the gossiped
// embedding instead of its own probes.
func runNet(prog *msl.Program, rng *rand.Rand, peersFile, hostSpec, listen, join string, duration time.Duration, opt netrt.Options, vivaldiOn, replan bool, driftThr float64, probeRounds int, serve string, sched *chaos.Schedule, curveDir string) {
	dir, err := netrt.LoadDirectory(peersFile)
	if err != nil {
		fatal(err)
	}
	if hostSpec == "" {
		fatal(fmt.Errorf("mortard: -peers-file requires -host (the peer range this process binds)"))
	}
	local, err := netrt.ParseRange(hostSpec, len(dir))
	if err != nil {
		fatal(err)
	}
	rt, err := netrt.New(dir, local, opt)
	if err != nil {
		fatal(err)
	}
	defer rt.Shutdown()

	if !rt.Local(0) {
		if serve != "" {
			fatal(fmt.Errorf("mortard: -serve runs on the coordinator (the process hosting peer 0)"))
		}
		runNetWorker(rt, join, duration, vivaldiOn, sched)
		return
	}

	// Coordinator: wait for workers, learn latencies, plan, install, run.
	var workers []net.Conn
	if listen != "" {
		workers, err = netrt.AwaitWorkers(listen, local, len(dir), 2*time.Minute)
		if err != nil {
			fatal(err)
		}
		defer func() {
			for _, c := range workers {
				c.Close() // hang-up tells workers the run is over
			}
		}()
	}
	if vivaldiOn {
		// The paper let Vivaldi run "for at least ten rounds before
		// interconnecting operators"; log convergence as the embedding
		// settles against the RTTs measured under the gossip.
		fmt.Printf("# coordinator hosting %d of %d peers; gossiping Vivaldi coordinates\n", len(local), len(dir))
		for round := 1; round <= 10; round++ {
			rt.Gossip(1, 0, 100*time.Millisecond)
			med, pairs := rt.CoordError()
			fmt.Printf("# vivaldi round %d: median |coord dist - measured| = %.3fms over %d pairs\n", round, med, pairs)
		}
	} else if probeRounds > 0 {
		fmt.Printf("# coordinator hosting %d of %d peers; probing RTTs\n", len(local), len(dir))
		rt.ProbeAll(probeRounds, 100*time.Millisecond)
	} else {
		// At scales where all-pairs probing is prohibitive the planner falls
		// back to uniform default latencies (coordinator-local embedding).
		fmt.Printf("# coordinator hosting %d of %d peers; probing skipped, planning from default latencies\n", len(local), len(dir))
	}
	fed, err := federation.NewRuntime(rt, prog, rng)
	if err != nil {
		fatal(err)
	}
	if vivaldiOn {
		fmt.Printf("# planned from gossiped coordinates: %v\n", fed.PlannedFromCoords)
	}
	var mon *federation.Monitor
	if replan {
		// The monitor needs the coordinator's view of the embedding to
		// keep tracking the network, so gossip continues in the
		// background for the whole run.
		go rt.Gossip(int(duration/(500*time.Millisecond))+10, 3, 500*time.Millisecond)
		mon = startReplanMonitor(fed, driftThr)
	}
	if serve != "" {
		defer startGateway(fed, serve)()
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)
	stopSampler := startDataPathSampler(fed.Fab)
	// The runtime is the injector: its locality filter gates only the
	// peers this process hosts, while workers replay the same schedule
	// over theirs.
	var stopChaos func()
	if sched != nil {
		stopChaos = startChaos(fed, rt, sched, curveDir)
	}
	time.Sleep(duration)
	if mon != nil {
		mon.Stop() // before Shutdown, so no poll races a dead runtime
	}
	if stopChaos != nil {
		stopChaos()
	}
	rt.Shutdown()
	sent, delivered, dropped := rt.Stats()
	fs := rt.FragStats()
	ns := rt.NetStats()
	fmt.Printf("# udp transport: sent=%d delivered=%d dropped=%d frag streams=%d frags=%d retrans=%d nacks=%d reassembled=%d epochs_retired=%d\n",
		sent, delivered, dropped, fs.StreamsSent, fs.FragsSent, fs.Retransmits, fs.NacksSent, fs.Reassembled,
		fed.Fab.Stats.EpochsRetired.Load())
	fmt.Printf("# udp sockets: sockets=%d datagrams=%d trains=%d train_frames=%d\n",
		ns.Sockets, ns.Datagrams, ns.Trains, ns.TrainFrames)
	wctl, wdata := rt.ClassBytes()
	fmt.Printf("# udp class bytes: ctl=%d data=%d (fabric ctl=%d data=%d shared_ctl=%d)\n",
		wctl, wdata,
		fed.Fab.Stats.ControlBytes.Load(), fed.Fab.Stats.DataBytes.Load(), fed.Fab.Stats.SharedCtlBytes.Load())
	printDataPathStats(fed.Fab, stopSampler())
	var ms goruntime.MemStats
	goruntime.ReadMemStats(&ms)
	fmt.Printf("# memstats: heap_alloc=%dKiB total_alloc=%dKiB mallocs=%d gc=%d\n",
		ms.HeapAlloc>>10, ms.TotalAlloc>>10, ms.Mallocs, ms.NumGC)
	if vivaldiOn {
		med, pairs := rt.CoordError()
		fmt.Printf("# vivaldi final: median |coord dist - measured| = %.3fms over %d pairs\n", med, pairs)
	}
}

// runNetWorker hosts a peer range: sensors feed the local peers, operators
// arrive over the network via install multicast and reconciliation. Under
// -vivaldi the worker keeps gossiping its coordinate in the background so
// the federation's embedding tracks the network for the whole run.
func runNetWorker(rt *netrt.Runtime, join string, duration time.Duration, vivaldiOn bool, sched *chaos.Schedule) {
	fed, err := federation.NewWorker(rt)
	if err != nil {
		fatal(err)
	}
	if vivaldiOn {
		go rt.Gossip(int(duration/(500*time.Millisecond))+10, 3, 500*time.Millisecond)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)
	if sched != nil {
		defer startChaosWorker(rt, sched)()
	}
	locals := rt.LocalPeers()
	fmt.Printf("# worker hosting peers %d..%d\n", locals[0], locals[len(locals)-1])
	if join == "" {
		time.Sleep(duration)
		return
	}
	conn, err := netrt.JoinBarrier(join, locals, 30*time.Second)
	if err != nil {
		fatal(err)
	}
	// Block until the coordinator hangs up (end of run), with a fallback
	// in case it never does.
	netrt.WaitHangup(conn, duration+time.Minute)
}
