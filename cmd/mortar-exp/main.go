// Command mortar-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	mortar-exp -list
//	mortar-exp -fig fig12 [-quick] [-seed 7]
//	mortar-exp -all -quick
//
// Full mode uses the paper's parameters (680 nodes, 400 trials, ...);
// -quick shrinks everything so the whole suite finishes in well under a
// minute.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to regenerate (fig1, fig9, ..., fig18)")
		all   = flag.Bool("all", false, "regenerate every figure")
		list  = flag.Bool("list", false, "list available figures")
		quick = flag.Bool("quick", false, "shrink the experiment for a fast run")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All {
			fmt.Printf("%-7s %s\n", e.ID, e.Desc)
		}
	case *all:
		opt := experiments.Options{Seed: *seed, Quick: *quick}
		for _, e := range experiments.All {
			e.Run(opt).Print(os.Stdout)
		}
	case *fig != "":
		run, err := experiments.Find(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(experiments.Options{Seed: *seed, Quick: *quick}).Print(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
