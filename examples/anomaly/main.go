// Anomaly detection with a user-defined aggregate (§2.2 motivates "an
// entropy function to detect anomalous traffic features"): every peer
// reports the destination keys of its traffic; an in-network entropy query
// aggregates the key histogram across the federation and the root computes
// Shannon entropy. Normal traffic is Zipf-skewed (low entropy); at t=40s a
// scanning attack flattens the key distribution and the entropy jumps.
//
// Run:
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func main() {
	prog, err := msl.Parse(`
		query keys as entropy() from sensors window time 5s slide 5s trees 4 bf 8
	`)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sim := eventsim.New(3)
	rng := rand.New(rand.NewSource(3))
	topo := netem.GenerateTransitStub(netem.PaperTopology(80), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	zipf := workload.NewZipfKeys(rng, 1.8, 256)
	attack := false
	fed.StartSensors(200*time.Millisecond, func(peer int) tuple.Raw {
		if attack {
			// Scanner: uniform destinations.
			return tuple.Raw{Key: "k" + strconv.Itoa(rng.Intn(256))}
		}
		return tuple.Raw{Key: zipf.Next()}
	}, rng)

	const threshold = 6.5 // bits
	fed.Fab.Subscribe("keys", func(r mortar.Result) {
		ent, ok := r.Value.(float64)
		if !ok {
			return
		}
		flag := ""
		if ent > threshold {
			flag = "  << ANOMALY"
		}
		fmt.Printf("t=%5.1fs window=%-3d entropy=%.2f bits (from %d peers)%s\n",
			sim.Now().Seconds(), r.WindowIndex, ent, r.Count, flag)
	})

	sim.After(40*time.Second, func() {
		fmt.Println("# scanning attack begins")
		attack = true
	})
	sim.After(70*time.Second, func() {
		fmt.Println("# attack ends")
		attack = false
	})
	sim.RunUntil(100 * time.Second)
}
