// Federation monitoring: several concurrent continuous queries over one
// node set — mean and peak CPU load plus a live-peer count — sharing the
// heartbeat mesh (§7.2.1), while a rolling failure takes out part of the
// federation. This is the "query your testbed with a list of IP addresses"
// scenario from the paper's introduction.
//
// Run:
//
//	go run ./examples/federation-monitor
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
)

func main() {
	prog, err := msl.Parse(`
		query live    as count()  from sensors window time 1s slide 1s trees 4 bf 8
		query meanCPU as avg(0)   from sensors window time 2s slide 2s trees 4 bf 8
		query peakCPU as max(0)   from sensors window time 2s slide 2s trees 4 bf 8
	`)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sim := eventsim.New(5)
	rng := rand.New(rand.NewSource(5))
	topo := netem.GenerateTransitStub(netem.PaperTopology(120), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Per-peer synthetic CPU load: a slow sine plus noise, with one peer
	// running hot.
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		base := 30 + 20*math.Sin(sim.Now().Seconds()/20+float64(peer))
		if peer == 17 {
			base += 45
		}
		return tuple.Raw{Vals: []float64{base + rng.Float64()*5}}
	}, rng)

	latest := map[string]mortar.Result{}
	fed.Fab.OnResult = func(r mortar.Result) { latest[r.Query] = r }
	sim.Every(4*time.Second, func() {
		l, m, p := latest["live"], latest["meanCPU"], latest["peakCPU"]
		if l.Value == nil || m.Value == nil || p.Value == nil {
			return
		}
		fmt.Printf("t=%5.1fs live=%3.0f meanCPU=%5.1f%% peakCPU=%5.1f%% (completeness %d/%d)\n",
			sim.Now().Seconds(), l.Value, m.Value, p.Value, m.Count, fed.Fab.LiveCount())
	})

	sim.After(25*time.Second, func() {
		fmt.Println("# rack failure: 30 peers disconnect")
		fed.FailRandom(30, rng)
	})
	sim.After(55*time.Second, func() {
		fmt.Println("# rack recovered")
		fed.RecoverAll()
	})
	sim.RunUntil(80 * time.Second)
}
