// Quickstart: build a 60-peer emulated federation, install a continuous
// count query written in the Mortar Stream Language, watch results stream
// from the root operator, and observe dynamic striping ride through a
// failure of 20% of the peers.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
)

func main() {
	prog, err := msl.Parse(`
		query peers as count() from sensors window time 1s slide 1s trees 4 bf 8
	`)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sim := eventsim.New(7)
	rng := rand.New(rand.NewSource(7))
	topo := netem.GenerateTransitStub(netem.PaperTopology(60), rng)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fed.PrintResults(os.Stdout)
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rng)

	sim.After(15*time.Second, func() {
		fmt.Println("# disconnecting 12 of 60 peers")
		fed.FailRandom(12, rng)
	})
	sim.After(35*time.Second, func() {
		fmt.Println("# reconnecting everyone")
		fed.RecoverAll()
	})
	sim.RunUntil(50 * time.Second)

	fmt.Printf("# total network load: %.2f Mbps mean (%.2f Mbps heartbeats)\n",
		net.Accounting().MeanMbps(5*time.Second, 50*time.Second),
		net.Accounting().MeanMbps(5*time.Second, 50*time.Second, netem.ClassControl))
}
