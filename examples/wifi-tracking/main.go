// Wi-Fi device tracking (§7.4): 120 emulated sniffers replay frames from a
// walking device; the paper's three-line Mortar Stream Language query —
// select by MAC, in-network top-3 by RSSI, trilateration of the topK
// stream — recovers the walker's L-shaped path.
//
// Run:
//
//	go run ./examples/wifi-tracking
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/eventsim"
	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
	"repro/internal/wifi"
	"repro/internal/wire"
)

const targetMAC = "aa:bb:cc:dd:ee:ff"

func main() {
	// The paper's query, in MSL: filter the MAC, keep the three loudest
	// observations, trilaterate. `loud` aggregates in-network; `pos` is a
	// root-local operator subscribed to loud's output stream.
	prog, err := msl.Parse(`
		query loud as topk(3, 2) from sensors where key = "` + targetMAC + `" window time 1s slide 1s trees 2 bf 12
		query pos  as trilat()  from loud window time 1s slide 1s
	`)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	const sniffers = 120
	sim := eventsim.New(11)
	rng := rand.New(rand.NewSource(11))
	topo := netem.GenerateStar(sniffers, time.Millisecond, 100e6)
	net := netem.New(sim, topo)
	fed, err := federation.New(net, prog, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	building := wifi.NewBuilding(sniffers, 100, 60, rng)
	model := wifi.DefaultRSSI()
	walk := wifi.LWalk(building, 1.5)

	// The walker downloads a file: ten frames per second, heard by every
	// sniffer in range.
	sim.Every(100*time.Millisecond, func() {
		x, y := walk.Position(sim.Now().Seconds())
		for _, f := range building.Capture(x, y, model, rng) {
			s := building.Sniffers[f.Sniffer]
			fed.Fab.Inject(f.Sniffer, tuple.Raw{
				Key:    targetMAC,
				SubKey: fmt.Sprintf("s%d", f.Sniffer),
				Vals:   []float64{s.X, s.Y, f.RSSI},
			})
		}
	})

	var errs []float64
	fed.Fab.Subscribe("pos", func(r mortar.Result) {
		c, ok := r.Value.(wire.Coord)
		if !ok {
			return
		}
		tx, ty := walk.Position((sim.Now() - r.Age).Seconds())
		err := math.Hypot(c.X-tx, c.Y-ty)
		errs = append(errs, err)
		if int(sim.Now()/time.Second)%5 == 0 {
			fmt.Printf("t=%5.1fs estimated=(%5.1f, %5.1f)  true=(%5.1f, %5.1f)  err=%4.1fm\n",
				sim.Now().Seconds(), c.X, c.Y, tx, ty, err)
		}
	})

	sim.RunUntil(2 * time.Minute)

	var sum float64
	for _, e := range errs {
		sum += e
	}
	if len(errs) > 0 {
		fmt.Printf("# %d position fixes, mean error %.1f m\n", len(errs), sum/float64(len(errs)))
	}
}
