// Command benchcompare gates CI on benchmark regressions. It reads
// `go test -json -bench` outputs and applies two independent gates:
//
//   - ratio gate (-old + -new + -match): extracts ns/op per benchmark from
//     the previous run's artifact and the current run's, and fails when any
//     benchmark matching -match regressed beyond -max-ratio;
//   - allocation gate (-new + -alloc-match): reads allocs/op (from
//     -benchmem output) in the current run alone and fails when any
//     benchmark matching -alloc-match allocates more than -max-allocs per
//     op — the absolute zero-allocation contract on the hot wire paths,
//     which needs no baseline artifact.
//
// Multiple samples of one benchmark (-count > 1) collapse to their
// per-metric minimum — the least-noise estimate of the true cost, the
// standard trick for comparing runs on shared CI hardware.
//
// Usage:
//
//	benchcompare -old prev.json -new now.json -match 'BenchmarkWire|BenchmarkNetrtHeartbeat' -max-ratio 1.25
//	benchcompare -new now.json -alloc-match 'BenchmarkWireEncodeHeartbeat$' -max-allocs 0
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's stream we care about.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// result holds one benchmark's metrics, each the minimum across samples.
// Bop and Allocs are -1 until a -benchmem line reports them.
type result struct {
	Ns     float64
	Bop    float64
	Allocs float64
}

// benchLine matches a benchmark result line inside an output event:
// name (with the -GOMAXPROCS suffix), iteration count, ns/op, and — when
// the run used -benchmem — B/op and allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// bareLine matches a result whose name test2json emitted in a previous
// event (the stream sometimes splits "BenchmarkX \t" and "100\t... ns/op"
// across events, carrying the name only in the Test field).
var bareLine = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// load reads a -json bench stream and returns per-benchmark metrics, each
// the minimum across samples.
func load(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*result{}
	record := func(name, nsText, bopText, allocText string) {
		ns, err := strconv.ParseFloat(nsText, 64)
		if err != nil || name == "" {
			return
		}
		name = strings.Split(name, "-")[0] // drop any -GOMAXPROCS suffix
		r, ok := out[name]
		if !ok {
			r = &result{Ns: ns, Bop: -1, Allocs: -1}
			out[name] = r
		} else if ns < r.Ns {
			r.Ns = ns
		}
		if bopText != "" {
			if bop, err := strconv.ParseFloat(bopText, 64); err == nil && (r.Bop < 0 || bop < r.Bop) {
				r.Bop = bop
			}
		}
		if allocText != "" {
			if al, err := strconv.ParseFloat(allocText, 64); err == nil && (r.Allocs < 0 || al < r.Allocs) {
				r.Allocs = al
			}
		}
	}
	// lastName carries a benchmark name across events for streams where
	// test2json splits the name and the result line.
	lastName := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain `go test -bench` output interleaved with the
			// JSON stream (or a non-JSON file altogether).
			ev = event{Action: "output", Output: string(line)}
		}
		if ev.Action != "output" {
			continue
		}
		text := strings.TrimSpace(ev.Output)
		if m := benchLine.FindStringSubmatch(text); m != nil {
			record(m[1], m[2], m[3], m[4])
			lastName = ""
			continue
		}
		if ev.Test != "" {
			lastName = ev.Test
		} else if strings.HasPrefix(text, "Benchmark") && strings.Fields(text) != nil {
			lastName = strings.Fields(text)[0]
		}
		if m := bareLine.FindStringSubmatch(text); m != nil {
			name := ev.Test
			if name == "" {
				name = lastName
			}
			record(name, m[1], m[2], m[3])
		}
	}
	return out, sc.Err()
}

func main() {
	oldPath := flag.String("old", "", "previous run's bench output (test2json stream); enables the ratio gate")
	newPath := flag.String("new", "", "current run's bench output")
	match := flag.String("match", ".*", "regexp of benchmark names the ratio gate applies to")
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when new/old ns/op exceeds this for any ratio-gated benchmark")
	allocMatch := flag.String("alloc-match", "", "regexp of benchmark names the absolute allocation gate applies to (needs -benchmem output)")
	maxAllocs := flag.Float64("max-allocs", 0, "fail when allocs/op exceeds this for any alloc-gated benchmark")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" && *allocMatch == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: nothing to gate — pass -old (ratio gate) and/or -alloc-match (allocation gate)")
		os.Exit(2)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	if len(newRes) == 0 {
		// An empty or malformed -new stream means the bench step itself
		// broke; passing here would wave a dead gate through CI.
		fmt.Fprintf(os.Stderr, "benchcompare: no benchmark results in %s — empty or malformed bench output\n", *newPath)
		os.Exit(2)
	}

	failed := false
	if *oldPath != "" {
		filter, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad -match: %v\n", err)
			os.Exit(2)
		}
		oldRes, err := load(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(newRes))
		for name := range newRes {
			if _, ok := oldRes[name]; ok && filter.MatchString(name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			// The caller only reaches the ratio gate with a baseline in
			// hand (CI skips it when no artifact exists), so zero overlap
			// means renamed benchmarks or a broken -match — a dead gate,
			// not a pass.
			fmt.Fprintf(os.Stderr, "benchcompare: no overlapping benchmarks between %s and %s match %q\n", *oldPath, *newPath, *match)
			os.Exit(2)
		}
		for _, name := range names {
			ratio := newRes[name].Ns / oldRes[name].Ns
			verdict := "ok"
			if ratio > *maxRatio {
				verdict = "REGRESSED"
				failed = true
			}
			fmt.Printf("%-44s %12.1f -> %12.1f ns/op  (%.2fx)  %s\n",
				name, oldRes[name].Ns, newRes[name].Ns, ratio, verdict)
		}
	}

	if *allocMatch != "" {
		filter, err := regexp.Compile(*allocMatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad -alloc-match: %v\n", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(newRes))
		for name := range newRes {
			if filter.MatchString(name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			// An alloc gate that matches nothing is a misconfigured (likely
			// renamed) gate, not a pass.
			fmt.Fprintf(os.Stderr, "benchcompare: -alloc-match %q matches no benchmark in %s\n", *allocMatch, *newPath)
			os.Exit(2)
		}
		for _, name := range names {
			r := newRes[name]
			if r.Allocs < 0 {
				fmt.Fprintf(os.Stderr, "benchcompare: %s has no allocs/op — run the benchmarks with -benchmem\n", name)
				failed = true
				continue
			}
			verdict := "ok"
			if r.Allocs > *maxAllocs {
				verdict = "ALLOC REGRESSION"
				failed = true
			}
			fmt.Printf("%-44s %8.0f B/op %8.2f allocs/op  (limit %g)  %s\n",
				name, r.Bop, r.Allocs, *maxAllocs, verdict)
		}
	}

	if failed {
		fmt.Fprintln(os.Stderr, "benchcompare: gate failed")
		os.Exit(1)
	}
}
