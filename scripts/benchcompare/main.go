// Command benchcompare gates CI on benchmark regressions. It reads
// `go test -json -bench` outputs and applies three independent gates:
//
//   - ratio gate (-old + -new + -match): extracts ns/op per benchmark from
//     the previous run's artifact and the current run's, and fails when any
//     benchmark matching -match regressed beyond -max-ratio;
//   - allocation gate (-new + -alloc-match): reads allocs/op (from
//     -benchmem output) in the current run alone and fails when any
//     benchmark matching -alloc-match allocates more than -max-allocs per
//     op — the absolute zero-allocation contract on the hot wire paths,
//     which needs no baseline artifact;
//   - metric gate (-old + -new + -metric + -metric-match): compares a
//     custom metric emitted via b.ReportMetric. With the default
//     -metric-dir higher (throughput like "tuples/s") it fails when any
//     benchmark matching -metric-match fell below -min-ratio of the
//     previous run; with -metric-dir lower (cost like
//     "summary-bytes/window") it fails when the metric grew beyond
//     -max-ratio.
//
// Multiple samples of one benchmark (-count > 1) collapse per metric:
// cost-like metrics (ns/op, B/op, allocs/op) to their minimum and custom
// metrics to both extremes, with the metric gate comparing maxima for
// higher-is-better metrics and minima for lower-is-better ones — in each
// case the least-noise estimate of the machine's true capability, the
// standard trick for comparing runs on shared CI hardware.
//
// Usage:
//
//	benchcompare -old prev.json -new now.json -match 'BenchmarkWire|BenchmarkNetrtHeartbeat' -max-ratio 1.25
//	benchcompare -new now.json -alloc-match 'BenchmarkWireEncodeHeartbeat$' -max-allocs 0
//	benchcompare -old prev.json -new now.json -metric tuples/s -metric-match 'BenchmarkSaturation' -min-ratio 0.8
//	benchcompare -old prev.json -new now.json -metric summary-bytes/window -metric-dir lower -metric-match 'BenchmarkMultiHop' -max-ratio 1.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's stream we care about.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// metricRange holds both extremes of a custom metric across samples: which
// one is the least-noise estimate depends on the metric's direction, so
// load keeps both and the gates choose.
type metricRange struct {
	Min, Max float64
}

// result holds one benchmark's metrics. The cost metrics (Ns, Bop, Allocs)
// are minima across samples; Bop and Allocs are -1 until a -benchmem line
// reports them. Extra carries custom b.ReportMetric values (unit → range),
// e.g. "tuples/s".
type result struct {
	Ns     float64
	Bop    float64
	Allocs float64
	Extra  map[string]metricRange
}

// lineStart matches a benchmark result line inside an output event: name
// (with the -GOMAXPROCS suffix) and iteration count, leaving the
// value/unit pairs for parsePairs.
var lineStart = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)`)

// bareStart matches a result whose name test2json emitted in a previous
// event (the stream sometimes splits "BenchmarkX \t" and "100\t... ns/op"
// across events, carrying the name only in the Test field).
var bareStart = regexp.MustCompile(`^\d+\s+(.*)`)

// parsePairs splits a benchmark line's tail into value/unit pairs
// ("52.1 ns/op 0 B/op 0 allocs/op 123 tuples/s" and the like). A tail
// without a parseable ns/op pair is not a benchmark result.
func parsePairs(rest string) (map[string]float64, bool) {
	fields := strings.Fields(rest)
	m := map[string]float64{}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		m[fields[i+1]] = v
	}
	if _, ok := m["ns/op"]; !ok {
		return nil, false
	}
	return m, true
}

// load reads a -json bench stream and returns per-benchmark metrics.
func load(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*result{}
	record := func(name string, pairs map[string]float64) {
		if name == "" {
			return
		}
		name = strings.Split(name, "-")[0] // drop any -GOMAXPROCS suffix
		r, ok := out[name]
		if !ok {
			r = &result{Ns: pairs["ns/op"], Bop: -1, Allocs: -1}
			out[name] = r
		} else if ns := pairs["ns/op"]; ns < r.Ns {
			r.Ns = ns
		}
		for unit, v := range pairs {
			switch unit {
			case "ns/op":
			case "B/op":
				if r.Bop < 0 || v < r.Bop {
					r.Bop = v
				}
			case "allocs/op":
				if r.Allocs < 0 || v < r.Allocs {
					r.Allocs = v
				}
			default:
				if r.Extra == nil {
					r.Extra = map[string]metricRange{}
				}
				mr, seen := r.Extra[unit]
				if !seen {
					mr = metricRange{Min: v, Max: v}
				} else {
					if v < mr.Min {
						mr.Min = v
					}
					if v > mr.Max {
						mr.Max = v
					}
				}
				r.Extra[unit] = mr
			}
		}
	}
	// lastName carries a benchmark name across events for streams where
	// test2json splits the name and the result line.
	lastName := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain `go test -bench` output interleaved with the
			// JSON stream (or a non-JSON file altogether).
			ev = event{Action: "output", Output: string(line)}
		}
		if ev.Action != "output" {
			continue
		}
		text := strings.TrimSpace(ev.Output)
		if m := lineStart.FindStringSubmatch(text); m != nil {
			if pairs, ok := parsePairs(m[2]); ok {
				record(m[1], pairs)
				lastName = ""
				continue
			}
		}
		if ev.Test != "" {
			lastName = ev.Test
		} else if strings.HasPrefix(text, "Benchmark") && strings.Fields(text) != nil {
			lastName = strings.Fields(text)[0]
		}
		if m := bareStart.FindStringSubmatch(text); m != nil {
			if pairs, ok := parsePairs(m[1]); ok {
				name := ev.Test
				if name == "" {
					name = lastName
				}
				record(name, pairs)
			}
		}
	}
	return out, sc.Err()
}

// metricGate applies the custom-metric gate in either direction: every
// benchmark present in both runs and matching filter must hold its custom
// metric within `limit` of the old run's value. For higher-is-better
// metrics (throughput) the gate compares per-run maxima and fails when
// new/old falls below limit; for lower-is-better metrics (bytes per
// window, latency) it compares per-run minima — the least-noise estimate
// in each direction — and fails when new/old exceeds limit. It returns the
// per-benchmark report lines, whether any gate failed, and a fatal
// configuration error ("dead gate") when no benchmark qualifies.
func metricGate(oldRes, newRes map[string]*result, unit string, filter *regexp.Regexp, limit float64, lower bool) (lines []string, failed bool, fatal string) {
	names := make([]string, 0, len(newRes))
	for name, r := range newRes {
		if !filter.MatchString(name) {
			continue
		}
		if _, ok := r.Extra[unit]; !ok {
			continue
		}
		if o, ok := oldRes[name]; ok {
			if _, ok := o.Extra[unit]; ok {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, false, fmt.Sprintf("no overlapping benchmarks report %q and match %q", unit, filter)
	}
	for _, name := range names {
		var oldV, newV float64
		if lower {
			oldV = oldRes[name].Extra[unit].Min
			newV = newRes[name].Extra[unit].Min
		} else {
			oldV = oldRes[name].Extra[unit].Max
			newV = newRes[name].Extra[unit].Max
		}
		if oldV <= 0 {
			// A zero baseline carries no signal; report it but never divide.
			lines = append(lines, fmt.Sprintf("%-44s %14.0f -> %14.0f %s  (zero baseline)  ok", name, oldV, newV, unit))
			continue
		}
		ratio := newV / oldV
		verdict := "ok"
		if (lower && ratio > limit) || (!lower && ratio < limit) {
			verdict = "REGRESSED"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%-44s %14.0f -> %14.0f %s  (%.2fx)  %s", name, oldV, newV, unit, ratio, verdict))
	}
	return lines, failed, ""
}

func main() {
	oldPath := flag.String("old", "", "previous run's bench output (test2json stream); enables the ratio and throughput gates")
	newPath := flag.String("new", "", "current run's bench output")
	match := flag.String("match", ".*", "regexp of benchmark names the ratio gate applies to")
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when new/old ns/op exceeds this for any ratio-gated benchmark")
	allocMatch := flag.String("alloc-match", "", "regexp of benchmark names the absolute allocation gate applies to (needs -benchmem output)")
	maxAllocs := flag.Float64("max-allocs", 0, "fail when allocs/op exceeds this for any alloc-gated benchmark")
	metric := flag.String("metric", "", "custom metric unit (e.g. tuples/s); enables the metric gate (needs -old)")
	metricMatch := flag.String("metric-match", "", "regexp of benchmark names the metric gate applies to")
	minRatio := flag.Float64("min-ratio", 0.8, "higher-is-better metrics: fail when new/old of -metric falls below this")
	metricDir := flag.String("metric-dir", "higher", "direction of -metric: 'higher' is better (gate with -min-ratio) or 'lower' is better (gate with -max-ratio)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" && *allocMatch == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: nothing to gate — pass -old (ratio gate) and/or -alloc-match (allocation gate)")
		os.Exit(2)
	}
	if *metric != "" && (*oldPath == "" || *metricMatch == "") {
		fmt.Fprintln(os.Stderr, "benchcompare: -metric needs both -old and -metric-match")
		os.Exit(2)
	}
	if *metricDir != "higher" && *metricDir != "lower" {
		fmt.Fprintf(os.Stderr, "benchcompare: -metric-dir %q must be 'higher' or 'lower'\n", *metricDir)
		os.Exit(2)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	if len(newRes) == 0 {
		// An empty or malformed -new stream means the bench step itself
		// broke; passing here would wave a dead gate through CI.
		fmt.Fprintf(os.Stderr, "benchcompare: no benchmark results in %s — empty or malformed bench output\n", *newPath)
		os.Exit(2)
	}

	failed := false
	var oldRes map[string]*result
	if *oldPath != "" {
		oldRes, err = load(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
			os.Exit(2)
		}
	}
	// The ratio gate runs whenever a baseline exists, unless the caller
	// invoked benchcompare purely as a throughput gate (-metric set, -match
	// left at its default).
	if *oldPath != "" && (*metric == "" || flagWasSet("match")) {
		filter, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad -match: %v\n", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(newRes))
		for name := range newRes {
			if _, ok := oldRes[name]; ok && filter.MatchString(name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			// The caller only reaches the ratio gate with a baseline in
			// hand (CI skips it when no artifact exists), so zero overlap
			// means renamed benchmarks or a broken -match — a dead gate,
			// not a pass.
			fmt.Fprintf(os.Stderr, "benchcompare: no overlapping benchmarks between %s and %s match %q\n", *oldPath, *newPath, *match)
			os.Exit(2)
		}
		for _, name := range names {
			ratio := newRes[name].Ns / oldRes[name].Ns
			verdict := "ok"
			if ratio > *maxRatio {
				verdict = "REGRESSED"
				failed = true
			}
			fmt.Printf("%-44s %12.1f -> %12.1f ns/op  (%.2fx)  %s\n",
				name, oldRes[name].Ns, newRes[name].Ns, ratio, verdict)
		}
	}

	if *allocMatch != "" {
		filter, err := regexp.Compile(*allocMatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad -alloc-match: %v\n", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(newRes))
		for name := range newRes {
			if filter.MatchString(name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			// An alloc gate that matches nothing is a misconfigured (likely
			// renamed) gate, not a pass.
			fmt.Fprintf(os.Stderr, "benchcompare: -alloc-match %q matches no benchmark in %s\n", *allocMatch, *newPath)
			os.Exit(2)
		}
		for _, name := range names {
			r := newRes[name]
			if r.Allocs < 0 {
				fmt.Fprintf(os.Stderr, "benchcompare: %s has no allocs/op — run the benchmarks with -benchmem\n", name)
				failed = true
				continue
			}
			verdict := "ok"
			if r.Allocs > *maxAllocs {
				verdict = "ALLOC REGRESSION"
				failed = true
			}
			fmt.Printf("%-44s %8.0f B/op %8.2f allocs/op  (limit %g)  %s\n",
				name, r.Bop, r.Allocs, *maxAllocs, verdict)
		}
	}

	if *metric != "" {
		filter, err := regexp.Compile(*metricMatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad -metric-match: %v\n", err)
			os.Exit(2)
		}
		lower := *metricDir == "lower"
		limit := *minRatio
		if lower {
			limit = *maxRatio
		}
		lines, metricFailed, fatal := metricGate(oldRes, newRes, *metric, filter, limit, lower)
		if fatal != "" {
			fmt.Fprintf(os.Stderr, "benchcompare: %s\n", fatal)
			os.Exit(2)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		failed = failed || metricFailed
	}

	if failed {
		fmt.Fprintln(os.Stderr, "benchcompare: gate failed")
		os.Exit(1)
	}
}

// flagWasSet reports whether a flag was passed explicitly on the command
// line (as opposed to holding its default value).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
