// Command benchcompare gates CI on benchmark regressions: it reads two
// `go test -json -bench` outputs (the previous run's artifact and the
// current run's), extracts ns/op per benchmark, and fails when any
// benchmark matching the filter regressed beyond the allowed ratio.
//
// Multiple samples of one benchmark (-count > 1) collapse to their
// minimum — the least-noise estimate of the true cost, the standard trick
// for comparing runs on shared CI hardware.
//
// Usage:
//
//	benchcompare -old prev.json -new now.json -match 'BenchmarkWire|BenchmarkNetrtHeartbeat' -max-ratio 1.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's stream we care about.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// benchLine matches a benchmark result line inside an output event:
// name (with the -GOMAXPROCS suffix), iteration count, ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// bareLine matches a result whose name test2json emitted in a previous
// event (the stream sometimes splits "BenchmarkX \t" and "100\t... ns/op"
// across events, carrying the name only in the Test field).
var bareLine = regexp.MustCompile(`^\d+\s+([0-9.]+) ns/op`)

// load reads a -json bench stream and returns min ns/op per benchmark.
func load(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	record := func(name string, nsText string) {
		ns, err := strconv.ParseFloat(nsText, 64)
		if err != nil || name == "" {
			return
		}
		name = strings.Split(name, "-")[0] // drop any -GOMAXPROCS suffix
		if cur, ok := out[name]; !ok || ns < cur {
			out[name] = ns
		}
	}
	// lastName carries a benchmark name across events for streams where
	// test2json splits the name and the result line.
	lastName := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain `go test -bench` output interleaved with the
			// JSON stream (or a non-JSON file altogether).
			ev = event{Action: "output", Output: string(line)}
		}
		if ev.Action != "output" {
			continue
		}
		text := strings.TrimSpace(ev.Output)
		if m := benchLine.FindStringSubmatch(text); m != nil {
			record(m[1], m[2])
			lastName = ""
			continue
		}
		if ev.Test != "" {
			lastName = ev.Test
		} else if strings.HasPrefix(text, "Benchmark") && strings.Fields(text) != nil {
			lastName = strings.Fields(text)[0]
		}
		if m := bareLine.FindStringSubmatch(text); m != nil {
			name := ev.Test
			if name == "" {
				name = lastName
			}
			record(name, m[1])
		}
	}
	return out, sc.Err()
}

func main() {
	oldPath := flag.String("old", "", "previous run's bench output (test2json stream)")
	newPath := flag.String("new", "", "current run's bench output")
	match := flag.String("match", ".*", "regexp of benchmark names to gate on")
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when new/old ns/op exceeds this for any gated benchmark")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -old and -new are required")
		os.Exit(2)
	}
	filter, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: bad -match: %v\n", err)
		os.Exit(2)
	}
	oldNs, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	newNs, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newNs))
	for name := range newNs {
		if _, ok := oldNs[name]; ok && filter.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Println("benchcompare: no overlapping benchmarks to gate on")
		return
	}
	failed := false
	for _, name := range names {
		ratio := newNs[name] / oldNs[name]
		verdict := "ok"
		if ratio > *maxRatio {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-44s %12.1f -> %12.1f ns/op  (%.2fx)  %s\n",
			name, oldNs[name], newNs[name], ratio, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcompare: regression beyond %.2fx detected\n", *maxRatio)
		os.Exit(1)
	}
}
