package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadParsesBenchStream(t *testing.T) {
	path := write(t, "bench.json", `
{"Action":"output","Output":"BenchmarkWireEncodeHeartbeat-8   \t 2000\t       52.1 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkWireEncodeHeartbeat-8   \t 2000\t       49.9 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"run","Test":"TestSomething"}
{"Action":"output","Output":"BenchmarkNetrtEnvelopeSend-8   \t 1000\t      210.0 ns/op\n"}
`)
	res, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, ok := res["BenchmarkWireEncodeHeartbeat"]
	if !ok {
		t.Fatalf("missing encode benchmark: %v", res)
	}
	if enc.Ns != 49.9 {
		t.Fatalf("ns/op = %v, want min across samples 49.9", enc.Ns)
	}
	if enc.Allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", enc.Allocs)
	}
	send, ok := res["BenchmarkNetrtEnvelopeSend"]
	if !ok || send.Ns != 210 {
		t.Fatalf("send benchmark: %+v, %v", send, ok)
	}
	if send.Allocs != -1 {
		t.Fatalf("allocs without -benchmem = %v, want -1 sentinel", send.Allocs)
	}
}

// The gates must see malformed or benchmark-free streams as empty result
// sets (main turns that into a loud exit 2), never as a silent pass.
func TestLoadEmptyAndMalformed(t *testing.T) {
	for name, content := range map[string]string{
		"empty":     "",
		"no-bench":  `{"Action":"output","Output":"ok  \trepro/internal/wire\t0.1s\n"}`,
		"malformed": "{{{ not json at all\nstill not a bench line\n",
	} {
		res, err := load(write(t, name, content))
		if err != nil {
			t.Fatalf("%s: load errored instead of returning empty: %v", name, err)
		}
		if len(res) != 0 {
			t.Fatalf("%s: parsed phantom results %v", name, res)
		}
	}
}
