package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadParsesBenchStream(t *testing.T) {
	path := write(t, "bench.json", `
{"Action":"output","Output":"BenchmarkWireEncodeHeartbeat-8   \t 2000\t       52.1 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkWireEncodeHeartbeat-8   \t 2000\t       49.9 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"run","Test":"TestSomething"}
{"Action":"output","Output":"BenchmarkNetrtEnvelopeSend-8   \t 1000\t      210.0 ns/op\n"}
`)
	res, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, ok := res["BenchmarkWireEncodeHeartbeat"]
	if !ok {
		t.Fatalf("missing encode benchmark: %v", res)
	}
	if enc.Ns != 49.9 {
		t.Fatalf("ns/op = %v, want min across samples 49.9", enc.Ns)
	}
	if enc.Allocs != 0 {
		t.Fatalf("allocs/op = %v, want 0", enc.Allocs)
	}
	send, ok := res["BenchmarkNetrtEnvelopeSend"]
	if !ok || send.Ns != 210 {
		t.Fatalf("send benchmark: %+v, %v", send, ok)
	}
	if send.Allocs != -1 {
		t.Fatalf("allocs without -benchmem = %v, want -1 sentinel", send.Allocs)
	}
}

func TestLoadParsesCustomMetrics(t *testing.T) {
	path := write(t, "bench.json", `
{"Action":"output","Output":"BenchmarkSaturationReplay-8 \t 1\t 3.1e9 ns/op\t 5200000 batched-tuples/s\t 2300000 pertuple-tuples/s\n"}
{"Action":"output","Output":"BenchmarkSaturationReplay-8 \t 1\t 3.0e9 ns/op\t 4800000 batched-tuples/s\t 2500000 pertuple-tuples/s\n"}
`)
	res, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res["BenchmarkSaturationReplay"]
	if !ok {
		t.Fatalf("missing benchmark: %v", res)
	}
	mr, ok := r.Extra["batched-tuples/s"]
	if !ok {
		t.Fatalf("missing custom metric: %+v", r)
	}
	if mr.Min != 4800000 || mr.Max != 5200000 {
		t.Fatalf("batched range = %+v, want [4800000, 5200000]", mr)
	}
	if got := r.Extra["pertuple-tuples/s"]; got.Max != 2500000 {
		t.Fatalf("pertuple max = %v, want 2500000", got.Max)
	}
	if r.Ns != 3.0e9 {
		t.Fatalf("ns/op = %v, want min 3.0e9", r.Ns)
	}
}

func TestMetricGateHigherIsBetter(t *testing.T) {
	mk := func(v float64) map[string]*result {
		return map[string]*result{
			"BenchmarkSaturationReplay": {Ns: 1, Extra: map[string]metricRange{
				"batched-tuples/s": {Min: v, Max: v},
			}},
		}
	}
	filter := regexp.MustCompile("BenchmarkSaturation")

	// Holding or improving throughput passes.
	if _, failed, fatal := metricGate(mk(100), mk(95), "batched-tuples/s", filter, 0.8, false); failed || fatal != "" {
		t.Fatalf("5%% dip under a 0.8 floor must pass (failed=%v fatal=%q)", failed, fatal)
	}
	// Falling below the floor fails.
	lines, failed, fatal := metricGate(mk(100), mk(70), "batched-tuples/s", filter, 0.8, false)
	if !failed || fatal != "" {
		t.Fatalf("30%% drop must fail (failed=%v fatal=%q, lines=%v)", failed, fatal, lines)
	}
	// A gate matching nothing is a misconfiguration, not a pass.
	if _, _, fatal := metricGate(mk(100), mk(100), "no-such-metric", filter, 0.8, false); fatal == "" {
		t.Fatal("unknown metric must be fatal, not a silent pass")
	}
	if _, _, fatal := metricGate(mk(100), mk(100), "batched-tuples/s", regexp.MustCompile("BenchmarkRenamed"), 0.8, false); fatal == "" {
		t.Fatal("zero-overlap filter must be fatal, not a silent pass")
	}
	// A zero baseline reports but never fails (and never divides by zero).
	if _, failed, fatal := metricGate(mk(0), mk(100), "batched-tuples/s", filter, 0.8, false); failed || fatal != "" {
		t.Fatalf("zero baseline must pass with a note (failed=%v fatal=%q)", failed, fatal)
	}
}

// The lower-is-better direction compares per-run minima and fails on
// growth beyond the limit — the summary-bytes/window gate.
func TestMetricGateLowerIsBetter(t *testing.T) {
	mk := func(min, max float64) map[string]*result {
		return map[string]*result{
			"BenchmarkMultiHopSaturation": {Ns: 1, Extra: map[string]metricRange{
				"summary-bytes/window": {Min: min, Max: max},
			}},
		}
	}
	filter := regexp.MustCompile("BenchmarkMultiHop")

	// Holding or shrinking the cost passes.
	if _, failed, fatal := metricGate(mk(1000, 1200), mk(900, 1100), "summary-bytes/window", filter, 1.25, true); failed || fatal != "" {
		t.Fatalf("shrinking cost must pass (failed=%v fatal=%q)", failed, fatal)
	}
	// Growth within the ceiling passes.
	if _, failed, fatal := metricGate(mk(1000, 1200), mk(1200, 1300), "summary-bytes/window", filter, 1.25, true); failed || fatal != "" {
		t.Fatalf("20%% growth under a 1.25 ceiling must pass (failed=%v fatal=%q)", failed, fatal)
	}
	// Growth beyond the ceiling fails.
	lines, failed, fatal := metricGate(mk(1000, 1200), mk(1400, 1500), "summary-bytes/window", filter, 1.25, true)
	if !failed || fatal != "" {
		t.Fatalf("40%% growth must fail (failed=%v fatal=%q, lines=%v)", failed, fatal, lines)
	}
	// The comparison uses minima: a noisy max spike must not fail the gate.
	if _, failed, fatal := metricGate(mk(1000, 1200), mk(1000, 5000), "summary-bytes/window", filter, 1.25, true); failed || fatal != "" {
		t.Fatalf("noisy max with held min must pass (failed=%v fatal=%q)", failed, fatal)
	}
	// Dead-gate detection is direction-independent.
	if _, _, fatal := metricGate(mk(1000, 1000), mk(1000, 1000), "summary-bytes/window", regexp.MustCompile("BenchmarkRenamed"), 1.25, true); fatal == "" {
		t.Fatal("zero-overlap filter must be fatal, not a silent pass")
	}
}

// The gates must see malformed or benchmark-free streams as empty result
// sets (main turns that into a loud exit 2), never as a silent pass.
func TestLoadEmptyAndMalformed(t *testing.T) {
	for name, content := range map[string]string{
		"empty":     "",
		"no-bench":  `{"Action":"output","Output":"ok  \trepro/internal/wire\t0.1s\n"}`,
		"malformed": "{{{ not json at all\nstill not a bench line\n",
	} {
		res, err := load(write(t, name, content))
		if err != nil {
			t.Fatalf("%s: load errored instead of returning empty: %v", name, err)
		}
		if len(res) != 0 {
			t.Fatalf("%s: parsed phantom results %v", name, res)
		}
	}
}
