#!/usr/bin/env bash
# Scale smoke: the multiplexed socket layout at hundreds of peers. Builds
# mortard, generates a ranged peers file (-gen-peers-file) multiplexing 150
# peers behind each UDP socket, and runs one 600-peer federation as two
# real processes — a coordinator hosting peers 0-299 and a worker hosting
# 300-599 — with train coalescing on and all-pairs probing off (the
# planner falls back to default latencies, the scale-run setting). The
# count query must reach full completeness: every peer joined through a
# shared socket and its sensor reached the root, so shared-socket demux,
# coalesced trains, and the install multicast all worked end to end.
#
# Usage: scripts/scale_smoke.sh   (from the repo root)
# Env:   SCALE_PEERS (default 600), SCALE_PER_SOCK (default 150),
#        SCALE_BASE_PORT (default 48300), SCALE_DURATION (default 45s)
set -euo pipefail

PEERS="${SCALE_PEERS:-600}"
PER_SOCK="${SCALE_PER_SOCK:-150}"
BASE_PORT="${SCALE_BASE_PORT:-48300}"
JOIN="127.0.0.1:$((BASE_PORT + 999))"
DUR="${SCALE_DURATION:-45s}"
HALF=$((PEERS / 2))

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

dump_logs() {
  echo "---- coordinator log ----"
  sed -n '1,120p' "$tmp/coord.log" 2>/dev/null || true
  echo "---- worker log ----"
  sed -n '1,60p' "$tmp/worker.log" 2>/dev/null || true
}

go build -o "$tmp/mortard" ./cmd/mortard
"$tmp/mortard" -gen-peers-file "$tmp/peers.txt" -peers "$PEERS" \
  -peers-per-socket "$PER_SOCK" -base-port "$BASE_PORT"
echo "---- peers file ----"
cat "$tmp/peers.txt"

# Wide shallow trees keep install messages per subtree small; the 2s window
# gives every sensor a slide to land in before the first result.
echo "query peers as count() from sensors window time 2s slide 2s trees 2 bf 32" > "$tmp/query.msl"

common=(-peers-file "$tmp/peers.txt" -coalesce -probe-rounds 0 -msl "$tmp/query.msl")
"$tmp/mortard" "${common[@]}" -host "$HALF-$((PEERS - 1))" -join "$JOIN" -duration 180s \
  > "$tmp/worker.log" 2>&1 &
pids+=($!)
"$tmp/mortard" "${common[@]}" -host "0-$((HALF - 1))" -listen "$JOIN" -duration "$DUR" \
  > "$tmp/coord.log" 2>&1 &
coord=$!
pids+=("$coord")

ok=0
for _ in $(seq 1 120); do
  if grep -q "completeness=$PEERS" "$tmp/coord.log" 2>/dev/null; then
    ok=1
    break
  fi
  if ! kill -0 "$coord" 2>/dev/null; then
    break
  fi
  sleep 1
done

echo "---- coordinator log (head) ----"
head -40 "$tmp/coord.log"
if [ "$ok" != 1 ]; then
  dump_logs
  if grep -Eq "completeness=[1-9]" "$tmp/coord.log"; then
    echo "FAIL: completeness stayed partial: $(grep -Eo 'completeness=[0-9]+' "$tmp/coord.log" | sort -t= -k2 -n | tail -1)"
  else
    echo "FAIL: coordinator never reported completeness > 0"
  fi
  exit 1
fi
# The transport summary prints when the coordinator's -duration elapses;
# wait for it so the coalescing counters can be judged — but bounded: a
# wedged coordinator must fail with logs, not hang CI.
deadline=$(( $(date +%s) + 120 ))
while kill -0 "$coord" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    dump_logs
    echo "FAIL: coordinator still running long past its -duration"
    exit 1
  fi
  sleep 2
done
wait "$coord" 2>/dev/null || true
echo "---- coordinator transport summary ----"
tail -6 "$tmp/coord.log"
if ! grep -Eq "sockets=[0-9]+ datagrams=[0-9]+ trains=[1-9]" "$tmp/coord.log"; then
  dump_logs
  echo "FAIL: coordinator sent no coalesced trains with -coalesce on"
  exit 1
fi
echo "OK: $PEERS peers over $((PEERS / PER_SOCK)) shared sockets reached completeness=$PEERS with coalesced trains"
