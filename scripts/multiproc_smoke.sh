#!/usr/bin/env bash
# Multi-process smoke: build mortard, write a temp peers file, launch a
# coordinator plus two workers over localhost UDP (three real processes,
# every message a real datagram), and assert the coordinator's count query
# reaches full completeness — the livert baseline, where every peer's
# sensor contributes to the window. Runs with -vivaldi, so planning comes
# from gossiped coordinates and convergence is logged.
#
# The run deliberately squeezes the MTU (-mtu 160) and plans deep trees
# (bf 2), so the query's install messages exceed one datagram: the install
# multicast only reaches the workers through netrt's fragmentation +
# reassembly path, proving it end-to-end across real processes. The
# coordinator's transport summary must report fragment streams.
#
# The coordinator also runs -serve: the smoke installs a second query over
# plain HTTP with curl, reads three windows from its NDJSON stream, removes
# both queries, and asserts the list endpoint empties — the serving plane
# exercised end-to-end across real processes.
#
# Usage: scripts/multiproc_smoke.sh   (from the repo root)
# Env:   SMOKE_BASE_PORT (default 47300), SMOKE_DURATION (default 45s)
set -euo pipefail

PEERS=12
BASE_PORT="${SMOKE_BASE_PORT:-47300}"
JOIN="127.0.0.1:$((BASE_PORT + 99))"
GW="127.0.0.1:$((BASE_PORT + 98))"
DUR="${SMOKE_DURATION:-45s}"
MTU=160

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

dump_logs() {
  echo "---- coordinator log ----"
  cat "$tmp/coord.log" 2>/dev/null || true
  echo "---- worker 1 log ----"
  cat "$tmp/w1.log" 2>/dev/null || true
  echo "---- worker 2 log ----"
  cat "$tmp/w2.log" 2>/dev/null || true
}

go build -o "$tmp/mortard" ./cmd/mortard
for i in $(seq 0 $((PEERS - 1))); do
  echo "127.0.0.1:$((BASE_PORT + i))"
done > "$tmp/peers.txt"

# Deep trees (bf 2) make the install messages to the root's subtrees larger
# than the squeezed MTU, so installation exercises fragmentation.
echo "query peers as count() from sensors window time 1s slide 1s trees 6 bf 2" > "$tmp/query.msl"

# Workers outlive the coordinator's -duration; its hang-up ends their run.
"$tmp/mortard" -peers-file "$tmp/peers.txt" -host 4-7 -join "$JOIN" -vivaldi -mtu "$MTU" -msl "$tmp/query.msl" -duration 90s > "$tmp/w1.log" 2>&1 &
pids+=($!)
"$tmp/mortard" -peers-file "$tmp/peers.txt" -host 8-11 -join "$JOIN" -vivaldi -mtu "$MTU" -msl "$tmp/query.msl" -duration 90s > "$tmp/w2.log" 2>&1 &
pids+=($!)
"$tmp/mortard" -peers-file "$tmp/peers.txt" -host 0-3 -listen "$JOIN" -vivaldi -mtu "$MTU" -msl "$tmp/query.msl" -duration "$DUR" -serve "$GW" > "$tmp/coord.log" 2>&1 &
coord=$!
pids+=("$coord")

ok=0
for _ in $(seq 1 90); do
  if grep -q "completeness=$PEERS" "$tmp/coord.log" 2>/dev/null; then
    ok=1
    break
  fi
  if ! kill -0 "$coord" 2>/dev/null; then
    break
  fi
  sleep 1
done

# --- serving plane: install a query over HTTP, stream it, remove both ---
gw_ok=0
if [ "$ok" = 1 ]; then
  if ! curl -fsS -X POST "http://$GW/v1/queries" \
      -d '{"name":"gw","op":"count","window_ms":1000,"trees":2,"bf":4}' > "$tmp/gw.log" 2>&1; then
    echo "FAIL: HTTP install through the gateway failed"; cat "$tmp/gw.log"; dump_logs; exit 1
  fi
  # Read three windows from the NDJSON stream (blocks until they arrive).
  if ! timeout 60 curl -fsS -N "http://$GW/v1/queries/gw/results?limit=3" > "$tmp/stream.log" 2>&1; then
    echo "FAIL: result stream did not deliver"; cat "$tmp/stream.log"; dump_logs; exit 1
  fi
  windows="$(grep -c '"query":"gw"' "$tmp/stream.log" || true)"
  if [ "$windows" -lt 3 ]; then
    echo "FAIL: stream served $windows windows, want >= 3"; cat "$tmp/stream.log"; dump_logs; exit 1
  fi
  curl -fsS -X DELETE "http://$GW/v1/queries/gw" > /dev/null
  curl -fsS -X DELETE "http://$GW/v1/queries/peers" > /dev/null
  if [ "$(curl -fsS "http://$GW/v1/queries")" != "[]" ]; then
    echo "FAIL: list endpoint not empty after removing every query"
    curl -fsS "http://$GW/v1/queries"; dump_logs; exit 1
  fi
  gw_ok=1
fi

if [ "$ok" != 1 ]; then
  dump_logs
  echo "FAIL: coordinator never reported completeness=$PEERS"
  exit 1
fi
echo "---- coordinator log ----"
cat "$tmp/coord.log"
if ! grep -q "planned from gossiped coordinates: true" "$tmp/coord.log"; then
  dump_logs
  echo "FAIL: planning did not use gossiped Vivaldi coordinates"
  exit 1
fi
# The transport summary (with the fragmentation counters) prints when the
# coordinator's -duration elapses; wait for it before judging — but
# bounded, so a wedged coordinator fails with logs instead of hanging CI.
deadline=$(( $(date +%s) + 120 ))
while kill -0 "$coord" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    dump_logs
    echo "FAIL: coordinator still running long past its -duration"
    exit 1
  fi
  sleep 2
done
wait "$coord" 2>/dev/null || true
if ! grep -Eq "frag streams=[1-9]" "$tmp/coord.log"; then
  echo "---- coordinator transport summary missing fragmentation ----"
  tail -3 "$tmp/coord.log"
  dump_logs
  echo "FAIL: coordinator never fragmented a frame — the install fit the squeezed MTU"
  exit 1
fi
if [ "$gw_ok" != 1 ]; then
  echo "FAIL: serving-plane checks never ran"
  exit 1
fi
echo "OK: multi-process run reached completeness=$PEERS from gossip-planned trees, installs crossed the fragmentation path, and the gateway served install/stream/remove over HTTP"
