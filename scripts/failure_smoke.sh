#!/usr/bin/env bash
# Failure smoke: completeness-under-failure over real processes. Builds
# mortard, generates a ranged peers file multiplexing 150 peers behind
# each UDP socket, and runs one 600-peer federation as two real processes
# (coordinator hosting 0-299, worker hosting 300-599). Both replay the
# same scripted chaos schedule — 30% fail-stop at t=60s, staggered
# recovery of everything at t=90s — each gating only the peers it hosts;
# the expansion is seed-deterministic so the processes agree on the
# global fault pattern without coordinating. The coordinator samples
# per-window completeness against the schedule's live-node count and
# writes CURVE_<scenario>.json; the gate fails unless the pre-fault
# baseline covers the whole federation, the schedule bottomed out at 420
# live, and post-recovery completeness returned to the baseline.
#
# Usage: scripts/failure_smoke.sh   (from the repo root)
# Env:   FAIL_PEERS (default 600), FAIL_PER_SOCK (default 150),
#        FAIL_BASE_PORT (default 49300), FAIL_DURATION (default 150s),
#        CURVE_OUT (default . — where CURVE_*.json lands for upload)
set -euo pipefail

PEERS="${FAIL_PEERS:-600}"
PER_SOCK="${FAIL_PER_SOCK:-150}"
BASE_PORT="${FAIL_BASE_PORT:-49300}"
JOIN="127.0.0.1:$((BASE_PORT + 999))"
DUR="${FAIL_DURATION:-150s}"
CURVE_OUT="${CURVE_OUT:-.}"
HALF=$((PEERS / 2))
KILLED=$((PEERS * 30 / 100))

tmp="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$tmp"
}
trap cleanup EXIT

dump_logs() {
  echo "---- coordinator log ----"
  sed -n '1,120p' "$tmp/coord.log" 2>/dev/null || true
  echo "---- worker log ----"
  sed -n '1,60p' "$tmp/worker.log" 2>/dev/null || true
}

go build -o "$tmp/mortard" ./cmd/mortard
"$tmp/mortard" -gen-peers-file "$tmp/peers.txt" -peers "$PEERS" \
  -peers-per-socket "$PER_SOCK" -base-port "$BASE_PORT"

# Four trees: the paper's multi-tree redundancy is what keeps completeness
# near the live count through failures (Fig 12); the 2s window gives every
# sensor a slide to land in before the first result.
echo "query peers as count() from sensors window time 2s slide 2s trees 4 bf 32" > "$tmp/query.msl"

# Kill 30% at t=60s (the federation converges well before that), hold 30s,
# then stagger everything back.
cat > "$tmp/chaos.json" <<EOF
{
  "scenario": "smoke-kill30",
  "seed": 20080417,
  "sample_ms": 500,
  "events": [
    {"kind": "kill", "at_ms": 60000, "frac": 0.3, "stagger_ms": 20},
    {"kind": "recover", "at_ms": 90000, "all": true, "stagger_ms": 20}
  ]
}
EOF

common=(-peers-file "$tmp/peers.txt" -coalesce -probe-rounds 0 -msl "$tmp/query.msl" -chaos "$tmp/chaos.json")
"$tmp/mortard" "${common[@]}" -host "$HALF-$((PEERS - 1))" -join "$JOIN" -duration 300s \
  > "$tmp/worker.log" 2>&1 &
pids+=($!)
"$tmp/mortard" "${common[@]}" -host "0-$((HALF - 1))" -listen "$JOIN" -duration "$DUR" \
  -curve-dir "$tmp" > "$tmp/coord.log" 2>&1 &
coord=$!
pids+=("$coord")

# Pre-fault baseline: full completeness must appear before the 60s kill.
ok=0
for _ in $(seq 1 55); do
  if grep -q "completeness=$PEERS" "$tmp/coord.log" 2>/dev/null; then
    ok=1
    break
  fi
  if ! kill -0 "$coord" 2>/dev/null; then
    break
  fi
  sleep 1
done
if [ "$ok" != 1 ]; then
  dump_logs
  echo "FAIL: completeness=$PEERS never reported before the scheduled kill"
  exit 1
fi
echo "baseline completeness=$PEERS reached; faults incoming"

# Bounded wait for the coordinator's -duration (and the chaos summary it
# prints on the way out): a wedged run must fail with logs, not hang CI.
deadline=$(( $(date +%s) + 240 ))
while kill -0 "$coord" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    dump_logs
    echo "FAIL: coordinator still running long past its -duration"
    exit 1
  fi
  sleep 2
done
wait "$coord" 2>/dev/null || true

summary="$(grep '# chaos summary:' "$tmp/coord.log" | tail -1)"
if [ -z "$summary" ]; then
  dump_logs
  echo "FAIL: coordinator printed no chaos summary"
  exit 1
fi
echo "$summary"
baseline="$(sed -En 's/.* baseline=([0-9]+).*/\1/p' <<< "$summary")"
min_live="$(sed -En 's/.* min_live=([0-9]+).*/\1/p' <<< "$summary")"
recovered="$(sed -En 's/.* recovered=([0-9]+).*/\1/p' <<< "$summary")"

fail=0
if [ "$baseline" != "$PEERS" ]; then
  echo "FAIL: pre-fault baseline $baseline, want $PEERS"
  fail=1
fi
if [ "$min_live" != "$((PEERS - KILLED))" ]; then
  echo "FAIL: schedule bottomed at $min_live live, want $((PEERS - KILLED))"
  fail=1
fi
if [ -z "$recovered" ] || [ "$recovered" -lt "$baseline" ]; then
  echo "FAIL: post-recovery completeness $recovered below the pre-fault baseline $baseline"
  fail=1
fi
if [ "$fail" != 0 ]; then
  dump_logs
  exit 1
fi

mkdir -p "$CURVE_OUT"
cp "$tmp"/CURVE_*.json "$CURVE_OUT/"
echo "OK: $PEERS peers survived a 30% scripted fail-stop — baseline=$baseline min_live=$min_live recovered=$recovered; curve at $CURVE_OUT/CURVE_smoke-kill30.json"
