package metrics

import (
	"testing"
	"time"
)

func TestSeries(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(100*time.Millisecond, 10)
	s.Add(900*time.Millisecond, 20)
	s.Add(2500*time.Millisecond, 5)
	if v, ok := s.At(0); !ok || v != 15 {
		t.Fatalf("bucket 0 = %v %v", v, ok)
	}
	if _, ok := s.At(time.Second); ok {
		t.Fatal("empty bucket reported a value")
	}
	r := s.Range(0, 3*time.Second, 0)
	want := []float64{15, 15, 5} // step interpolation through the gap
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("range = %v, want %v", r, want)
		}
	}
}

func TestMeanStdDevPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty input must be zero")
	}
	if sd := StdDev(xs); sd < 1.41 || sd > 1.42 {
		t.Fatalf("stddev = %v", sd)
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 || Percentile(xs, 50) != 3 {
		t.Fatal("percentiles broken")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestCompleteness(t *testing.T) {
	if Completeness(47, 50) != 94 {
		t.Fatalf("completeness = %v", Completeness(47, 50))
	}
	if Completeness(1, 0) != 0 {
		t.Fatal("division by zero")
	}
}

func TestTrueCompleteness(t *testing.T) {
	hist := map[string]float64{"5": 45, "4": 3, "6": 2}
	if got := TrueCompleteness(hist, "5", 50); got != 90 {
		t.Fatalf("true completeness = %v", got)
	}
	if got := TrueCompleteness(hist, "5", 40); got != 100 {
		t.Fatalf("clamp failed: %v", got)
	}
	if TrueCompleteness(hist, "5", 0) != 0 {
		t.Fatal("zero produced")
	}
}

func TestDispersion(t *testing.T) {
	hist := map[int64]float64{5: 8, 4: 1, 7: 1}
	if got := Dispersion(hist, 5); got != 0.3 {
		t.Fatalf("dispersion = %v", got)
	}
	if Dispersion(nil, 0) != 0 {
		t.Fatal("empty dispersion")
	}
}
