// Package metrics provides the measurement helpers the experiment harness
// shares: time-bucketed series, percentiles, and the completeness /
// true-completeness / dispersion definitions from §2 and §5.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Series buckets samples by time.
type Series struct {
	Bucket time.Duration
	vals   map[int64][]float64
}

// NewSeries returns a series with the given bucket width.
func NewSeries(bucket time.Duration) *Series {
	return &Series{Bucket: bucket, vals: map[int64][]float64{}}
}

// Add records a sample at time t.
func (s *Series) Add(t time.Duration, v float64) {
	idx := int64(t / s.Bucket)
	s.vals[idx] = append(s.vals[idx], v)
}

// At returns the mean of the bucket containing t, and false if empty.
func (s *Series) At(t time.Duration) (float64, bool) {
	vs := s.vals[int64(t/s.Bucket)]
	if len(vs) == 0 {
		return 0, false
	}
	return Mean(vs), true
}

// Range returns per-bucket means over [from, to); empty buckets repeat the
// previous value (step interpolation), starting at fill.
func (s *Series) Range(from, to time.Duration, fill float64) []float64 {
	var out []float64
	cur := fill
	for t := from; t < to; t += s.Bucket {
		if v, ok := s.At(t); ok {
			cur = v
		}
		out = append(out, cur)
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p'th percentile (0-100) by nearest-rank on a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(p / 100 * float64(len(cp)-1))
	return cp[idx]
}

// Completeness is the paper's primary accuracy metric (§2): the percentage
// of live peers whose data are included in the final result.
func Completeness(counted, live int) float64 {
	if live == 0 {
		return 0
	}
	return 100 * float64(counted) / float64(live)
}

// TrueCompleteness (§5): of the tuples that truly belong to a window, the
// percentage assigned to it. hist maps ground-truth window -> tuples
// counted in the reported window; produced is the number of tuples truly
// generated for the reported window.
func TrueCompleteness(hist map[string]float64, window string, produced float64) float64 {
	if produced <= 0 {
		return 0
	}
	frac := 100 * hist[window] / produced
	if frac > 100 {
		frac = 100
	}
	return frac
}

// Dispersion (§5) summarizes how far tuples land from their true window:
// the mean absolute distance, in windows, between the reporting window and
// the constituents' true windows.
func Dispersion(hist map[int64]float64, window int64) float64 {
	var total, weighted float64
	for w, c := range hist {
		total += c
		d := float64(w - window)
		if d < 0 {
			d = -d
		}
		weighted += d * c
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}
