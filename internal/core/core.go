// Package core exposes the paper's primary contribution — the Mortar peer
// runtime — under the canonical layout's name. The implementation lives in
// internal/mortar (fabric, peers, dynamic striping, time-division data
// management, syncless indexing, reconciliation); this package re-exports
// its public surface so downstream code can depend on `core` without
// caring how the runtime is factored internally.
package core

import (
	"repro/internal/mortar"
)

// Fabric is an emulated Mortar federation. See mortar.Fabric.
type Fabric = mortar.Fabric

// Config tunes the peer runtime. See mortar.Config.
type Config = mortar.Config

// Peer is one Mortar process. See mortar.Peer.
type Peer = mortar.Peer

// QueryMeta is the per-peer query definition. See mortar.QueryMeta.
type QueryMeta = mortar.QueryMeta

// QueryDef is a compiled query. See mortar.QueryDef.
type QueryDef = mortar.QueryDef

// Result is one root-reported answer. See mortar.Result.
type Result = mortar.Result

// NewFabric creates one peer per slot of a runtime backend.
var NewFabric = mortar.NewFabric

// DefaultConfig returns the paper's evaluation settings.
var DefaultConfig = mortar.DefaultConfig
