package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/netem"
	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
)

// The core facade must expose a working end-to-end path.
func TestCoreFacade(t *testing.T) {
	sim := eventsim.New(1)
	rng := rand.New(rand.NewSource(1))
	p := netem.PaperTopology(20)
	p.Stubs = 4
	p.Transits = 2
	topo := netem.GenerateTransitStub(p, rng)
	net := netem.New(sim, topo)
	fab, err := NewFabric(simrt.New(net), nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]cluster.Point, 20)
	for i := range coords {
		coords[i] = cluster.Point{rng.Float64(), rng.Float64()}
	}
	meta := QueryMeta{
		Name: "q", Seq: 1, OpName: "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: sim.Now(),
	}
	def, err := fab.Compile(meta, nil, coords, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	var last Result
	fab.OnResult = func(r Result) { last = r }
	for i := 0; i < 20; i++ {
		i := i
		sim.After(time.Duration(i*53)*time.Millisecond, func() {
			sim.Every(time.Second, func() { fab.Inject(i, tuple.Raw{Vals: []float64{1}}) })
		})
	}
	sim.RunUntil(15 * time.Second)
	if last.Value == nil || last.Value.(float64) != 20 {
		t.Fatalf("count = %v, want 20", last.Value)
	}
}
