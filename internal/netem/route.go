package netem

import (
	"container/heap"
	"math"
	"time"
)

// routes holds shortest-path next-hop state for a topology, computed by
// Dijkstra from every node over link latencies. Path computation ignores
// failures: the emulated IP layer keeps routing through a dead host's access
// link (the packet is then dropped), matching how ModelNet experiments fail
// "last mile" links without recomputing routes.
type routes struct {
	next [][]int32 // next[src][dst] = neighbor on shortest path, -1 unreachable
	dist [][]time.Duration
}

func computeRoutes(t *Topology) *routes {
	n := t.NumNodes()
	r := &routes{
		next: make([][]int32, n),
		dist: make([][]time.Duration, n),
	}
	for src := 0; src < n; src++ {
		r.next[src], r.dist[src] = dijkstra(t, NodeID(src))
	}
	return r
}

func dijkstra(t *Topology, src NodeID) ([]int32, []time.Duration) {
	n := t.NumNodes()
	const inf = time.Duration(math.MaxInt64)
	dist := make([]time.Duration, n)
	next := make([]int32, n) // first hop from src toward each node
	prev := make([]int32, n)
	for i := range dist {
		dist[i] = inf
		next[i] = -1
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeQueue{{id: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.d > dist[it.id] {
			continue
		}
		for _, e := range t.adj[it.id] {
			nd := it.d + t.links[e.link].Latency
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = int32(it.id)
				heap.Push(pq, nodeItem{id: e.to, d: nd})
			}
		}
	}
	// Derive first hops by walking prev chains back to src.
	for v := 0; v < n; v++ {
		if dist[v] == inf || NodeID(v) == src {
			continue
		}
		hop := int32(v)
		for prev[hop] != int32(src) {
			hop = prev[hop]
			if hop < 0 {
				break
			}
		}
		next[v] = hop
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return next, dist
}

type nodeItem struct {
	id NodeID
	d  time.Duration
}

type nodeQueue []nodeItem

func (q nodeQueue) Len() int           { return len(q) }
func (q nodeQueue) Less(i, j int) bool { return q[i].d < q[j].d }
func (q nodeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)        { *q = append(*q, x.(nodeItem)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// path returns the node sequence from a to b (excluding a, including b), or
// nil if unreachable.
func (r *routes) path(a, b NodeID) []NodeID {
	if a == b {
		return nil
	}
	var p []NodeID
	cur := a
	for cur != b {
		nx := r.next[cur][b]
		if nx < 0 {
			return nil
		}
		cur = NodeID(nx)
		p = append(p, cur)
		if len(p) > len(r.next) {
			return nil // defensive: malformed routing state
		}
	}
	return p
}
