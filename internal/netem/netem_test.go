package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/eventsim"
)

func lineTopo(n int, lat time.Duration) *Topology {
	t := NewTopology()
	prev := t.AddNode(Host)
	for i := 1; i < n; i++ {
		cur := t.AddNode(Host)
		t.AddLink(Link{A: prev, B: cur, Latency: lat})
		prev = cur
	}
	return t
}

func TestDeliveryLatencyOnLine(t *testing.T) {
	sim := eventsim.New(1)
	topo := lineTopo(4, 5*time.Millisecond)
	net := New(sim, topo)
	var at time.Duration = -1
	net.Handle(3, func(from NodeID, payload any, size int) {
		at = sim.Now()
		if from != 0 || payload.(string) != "hi" || size != 100 {
			t.Errorf("delivery = from %d payload %v size %d", from, payload, size)
		}
	})
	if !net.Send(0, 3, ClassData, 100, "hi") {
		t.Fatal("Send returned false")
	}
	sim.Run()
	if at != 15*time.Millisecond {
		t.Fatalf("delivered at %v, want 15ms", at)
	}
}

func TestSerializationDelay(t *testing.T) {
	sim := eventsim.New(1)
	topo := NewTopology()
	a := topo.AddNode(Host)
	b := topo.AddNode(Host)
	topo.AddLink(Link{A: a, B: b, Latency: time.Millisecond, Bandwidth: 8000}) // 1 KB/s
	net := New(sim, topo)
	net.PerHopOverhead = 0
	var at time.Duration
	net.Handle(b, func(NodeID, any, int) { at = sim.Now() })
	net.Send(a, b, ClassData, 1000, nil) // 1000 B at 1000 B/s = 1 s
	sim.Run()
	if at != time.Second+time.Millisecond {
		t.Fatalf("delivered at %v, want 1.001s", at)
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	sim := eventsim.New(1)
	net := New(sim, lineTopo(3, time.Millisecond))
	got := 0
	net.Handle(2, func(NodeID, any, int) { got++ })

	net.SetDown(1, true) // interior node fails
	net.Send(0, 2, ClassData, 10, nil)
	sim.Run()
	if got != 0 {
		t.Fatal("packet crossed a failed interior node")
	}

	net.SetDown(1, false)
	net.SetDown(2, true) // destination fails
	net.Send(0, 2, ClassData, 10, nil)
	sim.Run()
	if got != 0 {
		t.Fatal("packet delivered to a failed destination")
	}

	net.SetDown(2, false)
	net.Send(0, 2, ClassData, 10, nil)
	sim.Run()
	if got != 1 {
		t.Fatal("packet not delivered after recovery")
	}
	if net.Down(2) {
		t.Fatal("Down state stuck")
	}
}

func TestDestFailsWhileInFlight(t *testing.T) {
	sim := eventsim.New(1)
	net := New(sim, lineTopo(2, 10*time.Millisecond))
	got := 0
	net.Handle(1, func(NodeID, any, int) { got++ })
	net.Send(0, 1, ClassData, 10, nil)
	sim.After(5*time.Millisecond, func() { net.SetDown(1, true) })
	sim.Run()
	if got != 0 {
		t.Fatal("in-flight packet delivered to node that failed mid-flight")
	}
}

func TestLinkDown(t *testing.T) {
	sim := eventsim.New(1)
	topo := lineTopo(2, time.Millisecond)
	net := New(sim, topo)
	got := 0
	net.Handle(1, func(NodeID, any, int) { got++ })
	net.SetLinkDown(0, true)
	net.Send(0, 1, ClassData, 10, nil)
	sim.Run()
	if got != 0 {
		t.Fatal("packet crossed failed link")
	}
	net.SetLinkDown(0, false)
	net.Send(0, 1, ClassData, 10, nil)
	sim.Run()
	if got != 1 {
		t.Fatal("link recovery broken")
	}
}

func TestLossyLinkDropsApproximatelyLossFraction(t *testing.T) {
	sim := eventsim.New(99)
	topo := NewTopology()
	a := topo.AddNode(Host)
	b := topo.AddNode(Host)
	topo.AddLink(Link{A: a, B: b, Latency: time.Microsecond, Loss: 0.3})
	net := New(sim, topo)
	got := 0
	net.Handle(b, func(NodeID, any, int) { got++ })
	const n = 5000
	for i := 0; i < n; i++ {
		net.Send(a, b, ClassData, 10, nil)
	}
	sim.Run()
	frac := float64(got) / n
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("delivery fraction = %.3f, want ~0.70", frac)
	}
}

func TestAccountingCountsEveryHop(t *testing.T) {
	sim := eventsim.New(1)
	net := New(sim, lineTopo(4, time.Millisecond)) // 3 hops
	net.PerHopOverhead = 0
	net.Handle(3, func(NodeID, any, int) {})
	net.Send(0, 3, ClassData, 100, nil)
	sim.Run()
	if got := net.Accounting().TotalBytes(ClassData); got != 300 {
		t.Fatalf("accounted %d bytes, want 300 (100 x 3 hops)", got)
	}
}

func TestAccountingSeries(t *testing.T) {
	a := NewAccounting(time.Second)
	a.Add(100*time.Millisecond, 0, ClassData, 125000)     // 1 Mbit in bucket 0
	a.Add(1500*time.Millisecond, 0, ClassControl, 250000) // 2 Mbit in bucket 1
	if got := a.Mbps(0); got != 1 {
		t.Fatalf("bucket 0 = %v Mbps, want 1", got)
	}
	if got := a.Mbps(time.Second, ClassControl); got != 2 {
		t.Fatalf("bucket 1 control = %v Mbps, want 2", got)
	}
	if got := a.Mbps(time.Second, ClassData); got != 0 {
		t.Fatalf("bucket 1 data = %v Mbps, want 0", got)
	}
	s := a.Series(0, 2*time.Second)
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("series = %v", s)
	}
	if got := a.MeanMbps(0, 2*time.Second); got != 1.5 {
		t.Fatalf("mean = %v, want 1.5", got)
	}
}

func TestPaperTopologyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	topo := GenerateTransitStub(PaperTopology(680), rng)
	hosts := topo.Hosts()
	if len(hosts) != 680 {
		t.Fatalf("hosts = %d, want 680", len(hosts))
	}
	sim := eventsim.New(1)
	net := New(sim, topo)
	// Paper: "The longest delay between any two peers is 104 ms." Check the
	// same order of magnitude and that everything is connected.
	var max time.Duration
	for _, a := range hosts[:40] {
		for _, b := range hosts[640:] {
			d := net.Latency(a, b)
			if d < 0 {
				t.Fatalf("hosts %d and %d disconnected", a, b)
			}
			if d > max {
				max = d
			}
		}
	}
	if max < 20*time.Millisecond || max > 200*time.Millisecond {
		t.Fatalf("max latency = %v, want ~100ms regime", max)
	}
}

func TestStarTopology(t *testing.T) {
	topo := GenerateStar(188, time.Millisecond, 100e6)
	if got := len(topo.Hosts()); got != 188 {
		t.Fatalf("hosts = %d", got)
	}
	sim := eventsim.New(1)
	net := New(sim, topo)
	hosts := topo.Hosts()
	if d := net.Latency(hosts[0], hosts[187]); d != 2*time.Millisecond {
		t.Fatalf("host-host latency = %v, want 2ms", d)
	}
}

// Property: shortest-path latency is symmetric and satisfies the triangle
// inequality on generated topologies.
func TestPropertyLatencyMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	topo := GenerateTransitStub(PaperTopology(60), rng)
	sim := eventsim.New(2)
	net := New(sim, topo)
	hosts := topo.Hosts()
	f := func(ai, bi, ci uint8) bool {
		a := hosts[int(ai)%len(hosts)]
		b := hosts[int(bi)%len(hosts)]
		c := hosts[int(ci)%len(hosts)]
		ab, ba := net.Latency(a, b), net.Latency(b, a)
		if ab != ba {
			return false
		}
		if a == b {
			return ab == 0
		}
		return net.Latency(a, c)+net.Latency(c, b) >= ab
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendFromDownOrSelfFails(t *testing.T) {
	sim := eventsim.New(1)
	net := New(sim, lineTopo(2, time.Millisecond))
	net.SetDown(0, true)
	if net.Send(0, 1, ClassData, 1, nil) {
		t.Fatal("send from down node succeeded")
	}
	net.SetDown(0, false)
	if net.Send(0, 0, ClassData, 1, nil) {
		t.Fatal("self-send succeeded")
	}
}

func TestStats(t *testing.T) {
	sim := eventsim.New(1)
	net := New(sim, lineTopo(2, time.Millisecond))
	net.Handle(1, func(NodeID, any, int) {})
	net.Send(0, 1, ClassData, 1, nil)
	sim.Run()
	s, d, dr := net.Stats()
	if s != 1 || d != 1 || dr != 0 {
		t.Fatalf("stats = %d %d %d", s, d, dr)
	}
}
