package netem

import (
	"time"
)

// Accounting aggregates bytes crossing links into fixed-width time buckets,
// per traffic class. Experiments read it back as a "total network load"
// time series in Mbps — the sum of traffic across all links, which is the
// metric the paper plots.
type Accounting struct {
	bucket  time.Duration
	byClass [numClasses]map[int64]int64 // bucket index -> bytes
	total   [numClasses]int64
	byLink  map[int]int64 // link index -> cumulative bytes (all classes)
}

// NewAccounting returns accounting with the given bucket width.
func NewAccounting(bucket time.Duration) *Accounting {
	a := &Accounting{bucket: bucket, byLink: make(map[int]int64)}
	for c := range a.byClass {
		a.byClass[c] = make(map[int64]int64)
	}
	return a
}

// Add records bytes crossing a link at virtual time t.
func (a *Accounting) Add(t time.Duration, link int, class TrafficClass, bytes int) {
	idx := int64(t / a.bucket)
	a.byClass[class][idx] += int64(bytes)
	a.total[class] += int64(bytes)
	a.byLink[link] += int64(bytes)
}

// LinkBytes returns the cumulative bytes that crossed a link.
func (a *Accounting) LinkBytes(link int) int64 { return a.byLink[link] }

// TotalBytes returns cumulative bytes for a class.
func (a *Accounting) TotalBytes(class TrafficClass) int64 { return a.total[class] }

// TotalAllBytes returns cumulative bytes across all classes.
func (a *Accounting) TotalAllBytes() int64 {
	var s int64
	for _, v := range a.total {
		s += v
	}
	return s
}

// Mbps returns the aggregate load in megabits per second during the bucket
// containing t, summed over the given classes (all classes if none given).
func (a *Accounting) Mbps(t time.Duration, classes ...TrafficClass) float64 {
	idx := int64(t / a.bucket)
	if len(classes) == 0 {
		classes = []TrafficClass{ClassData, ClassControl}
	}
	var bytes int64
	for _, c := range classes {
		bytes += a.byClass[c][idx]
	}
	return float64(bytes) * 8 / a.bucket.Seconds() / 1e6
}

// Series returns the Mbps time series over [from, to) at bucket granularity.
func (a *Accounting) Series(from, to time.Duration, classes ...TrafficClass) []float64 {
	var out []float64
	for t := from; t < to; t += a.bucket {
		out = append(out, a.Mbps(t, classes...))
	}
	return out
}

// MeanMbps returns the average load over [from, to).
func (a *Accounting) MeanMbps(from, to time.Duration, classes ...TrafficClass) float64 {
	s := a.Series(from, to, classes...)
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}
