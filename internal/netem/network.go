package netem

import (
	"math/rand"
	"time"

	"repro/internal/eventsim"
)

// TrafficClass labels a message for accounting purposes, so experiments can
// split total network load into data and control overhead (the paper reports
// heartbeat overhead separately, e.g. "12.5 Mbps, 3.4 Mbps of which is
// heartbeat overhead").
type TrafficClass uint8

const (
	// ClassData carries query tuples.
	ClassData TrafficClass = iota
	// ClassControl carries heartbeats, reconciliation, installs, probes.
	ClassControl
	numClasses
)

// Handler receives a message delivered to a node.
type Handler func(from NodeID, payload any, size int)

// Network emulates message delivery over a Topology. All methods must be
// called from the simulation goroutine (i.e. from event callbacks).
type Network struct {
	sim   *eventsim.Sim
	topo  *Topology
	rt    *routes
	rng   *rand.Rand
	hands []Handler
	down  []bool // per node
	lDown []bool // per link

	acct *Accounting

	// PerHopOverhead is added to every message's size on every hop,
	// modelling UDP/IP/Ethernet headers. Defaults to 46 bytes.
	PerHopOverhead int

	sent, delivered, dropped uint64
}

// New builds a network over topo driven by sim.
func New(sim *eventsim.Sim, topo *Topology) *Network {
	return &Network{
		sim:            sim,
		topo:           topo,
		rt:             computeRoutes(topo),
		rng:            rand.New(rand.NewSource(sim.Rand().Int63())),
		hands:          make([]Handler, topo.NumNodes()),
		down:           make([]bool, topo.NumNodes()),
		lDown:          make([]bool, topo.NumLinks()),
		acct:           NewAccounting(time.Second),
		PerHopOverhead: 46,
	}
}

// Sim returns the driving simulator.
func (n *Network) Sim() *eventsim.Sim { return n.sim }

// Topology returns the underlying topology.
func (n *Network) Topology() *Topology { return n.topo }

// Accounting returns the per-link traffic accounting.
func (n *Network) Accounting() *Accounting { return n.acct }

// Handle registers the delivery handler for a node, replacing any previous
// handler.
func (n *Network) Handle(id NodeID, h Handler) { n.hands[id] = h }

// SetDown marks a node failed (true) or recovered (false). A failed node
// neither sends nor receives; packets already in flight to it are dropped at
// delivery time, and packets transiting a failed router are dropped at the
// hop.
func (n *Network) SetDown(id NodeID, down bool) { n.down[id] = down }

// Down reports whether a node is failed.
func (n *Network) Down(id NodeID) bool { return n.down[id] }

// SetLinkDown fails or recovers the i'th link.
func (n *Network) SetLinkDown(i int, down bool) { n.lDown[i] = down }

// Latency returns the propagation delay of the shortest path between two
// nodes, ignoring failures, or -1 if disconnected. Vivaldi measurements and
// planner evaluation use this.
func (n *Network) Latency(a, b NodeID) time.Duration { return n.rt.dist[a][b] }

// Stats returns cumulative message counts: sent, delivered, dropped.
func (n *Network) Stats() (sent, delivered, dropped uint64) {
	return n.sent, n.delivered, n.dropped
}

// Send transmits payload of the given application size in bytes from one
// node to another. Delivery (if the packet survives loss, failures, and
// disconnection) happens after the path's propagation plus per-hop
// serialization delay. Send never blocks; it returns false only if the
// source itself is down or the destination is unreachable in the topology.
func (n *Network) Send(from, to NodeID, class TrafficClass, size int, payload any) bool {
	if n.down[from] || from == to {
		return false
	}
	path := n.rt.path(from, to)
	if path == nil {
		return false
	}
	n.sent++
	// Walk the path hop by hop at send time, accumulating delay and
	// checking per-hop loss and failures. Bytes are accounted on every hop
	// the packet actually crosses: a packet dropped mid-path still consumed
	// upstream capacity, as on a real network.
	var delay time.Duration
	prev := from
	wire := size + n.PerHopOverhead
	for hopIdx, hop := range path {
		li := n.linkBetween(prev, hop)
		if li < 0 || n.lDown[li] {
			n.dropped++
			return true
		}
		l := n.topo.links[li]
		delay += l.Latency
		if l.Bandwidth > 0 {
			delay += time.Duration(float64(wire*8) / l.Bandwidth * float64(time.Second))
		}
		n.acct.Add(n.sim.Now()+delay, li, class, wire)
		if l.Loss > 0 && n.rng.Float64() < l.Loss {
			n.dropped++
			return true
		}
		// A failed interior router drops the packet; the final hop's
		// down-check happens at delivery time so that a node failing while
		// the packet is in flight still kills it.
		if hopIdx < len(path)-1 && n.down[hop] {
			n.dropped++
			return true
		}
		prev = hop
	}
	n.sim.After(delay, func() {
		if n.down[to] || n.hands[to] == nil {
			n.dropped++
			return
		}
		n.delivered++
		n.hands[to](from, payload, size)
	})
	return true
}

func (n *Network) linkBetween(a, b NodeID) int {
	for _, e := range n.topo.adj[a] {
		if e.to == b {
			return e.link
		}
	}
	return -1
}
