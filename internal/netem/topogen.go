package netem

import (
	"math/rand"
	"time"
)

// TransitStubParams configures the Inet-like transit-stub generator. The
// defaults reproduce the paper's evaluation topology: an Inet-generated
// network with 34 stub nodes, 680 uniformly distributed end hosts, 100 Mbps
// links, 1 ms stub-node latency, 2 ms stub-stub, 10 ms stub-transit, and
// 20 ms transit-transit (§7).
type TransitStubParams struct {
	Transits       int
	Stubs          int
	Hosts          int
	ExtraTransit   int     // random extra transit-transit links beyond the ring
	StubStubProb   float64 // probability of a lateral stub-stub link per stub
	LinkBandwidth  float64 // bits/sec; paper: 100 Mbps
	HostStubLat    time.Duration
	StubStubLat    time.Duration
	StubTransitLat time.Duration
	TransitLat     time.Duration
	Loss           float64
}

// PaperTopology returns the parameters used across the paper's ModelNet
// experiments, with the given host count (680 in most figures, 439 in the
// clock experiments, 179 in the planning study).
func PaperTopology(hosts int) TransitStubParams {
	return TransitStubParams{
		Transits:       4,
		Stubs:          34,
		Hosts:          hosts,
		ExtraTransit:   2,
		StubStubProb:   0.25,
		LinkBandwidth:  100e6,
		HostStubLat:    1 * time.Millisecond,
		StubStubLat:    2 * time.Millisecond,
		StubTransitLat: 10 * time.Millisecond,
		TransitLat:     20 * time.Millisecond,
	}
}

// GenerateTransitStub builds a transit-stub topology. The transit routers
// form a ring with a few random chords; stubs attach round-robin to transits
// with occasional lateral stub-stub links; hosts spread uniformly across
// stubs. All structure beyond the parameters is drawn from rng.
func GenerateTransitStub(p TransitStubParams, rng *rand.Rand) *Topology {
	if p.Transits < 1 || p.Stubs < 1 || p.Hosts < 1 {
		panic("netem: transit-stub parameters must be positive")
	}
	t := NewTopology()
	transits := make([]NodeID, p.Transits)
	for i := range transits {
		transits[i] = t.AddNode(TransitRouter)
	}
	// Transit core: ring plus chords.
	for i := 0; i < p.Transits; i++ {
		if p.Transits > 1 && (i != p.Transits-1 || p.Transits > 2) {
			t.AddLink(Link{
				A: transits[i], B: transits[(i+1)%p.Transits],
				Latency: p.TransitLat, Bandwidth: p.LinkBandwidth, Loss: p.Loss,
			})
		}
	}
	for i := 0; i < p.ExtraTransit && p.Transits > 3; i++ {
		a := rng.Intn(p.Transits)
		b := rng.Intn(p.Transits)
		if a == b || (a+1)%p.Transits == b || (b+1)%p.Transits == a {
			continue
		}
		t.AddLink(Link{
			A: transits[a], B: transits[b],
			Latency: p.TransitLat, Bandwidth: p.LinkBandwidth, Loss: p.Loss,
		})
	}
	// Stubs.
	stubs := make([]NodeID, p.Stubs)
	for i := range stubs {
		stubs[i] = t.AddNode(StubRouter)
		t.AddLink(Link{
			A: stubs[i], B: transits[i%p.Transits],
			Latency: p.StubTransitLat, Bandwidth: p.LinkBandwidth, Loss: p.Loss,
		})
	}
	for i := range stubs {
		if rng.Float64() < p.StubStubProb && p.Stubs > 1 {
			j := rng.Intn(p.Stubs)
			if j != i {
				t.AddLink(Link{
					A: stubs[i], B: stubs[j],
					Latency: p.StubStubLat, Bandwidth: p.LinkBandwidth, Loss: p.Loss,
				})
			}
		}
	}
	// Hosts, uniformly distributed across stubs ("emulating small node
	// federations").
	for h := 0; h < p.Hosts; h++ {
		host := t.AddNode(Host)
		t.AddLink(Link{
			A: host, B: stubs[h%p.Stubs],
			Latency: p.HostStubLat, Bandwidth: p.LinkBandwidth, Loss: p.Loss,
		})
	}
	return t
}

// GenerateStar builds the Wi-Fi experiment's topology: n hosts hanging off a
// single hub with the given per-link latency ("a star with 1 ms links",
// 2 ms one-way host-to-host).
func GenerateStar(n int, lat time.Duration, bw float64) *Topology {
	t := NewTopology()
	hub := t.AddNode(StubRouter)
	for i := 0; i < n; i++ {
		h := t.AddNode(Host)
		t.AddLink(Link{A: h, B: hub, Latency: lat, Bandwidth: bw})
	}
	return t
}
