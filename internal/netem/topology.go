// Package netem is an in-process packet-level network emulator. It stands in
// for the ModelNet cluster used in the paper's evaluation: a topology of
// transit routers, stub routers, and end hosts; links with latency,
// bandwidth, and loss; node and link failures; and per-link traffic
// accounting so experiments can report "total network load" the way the
// paper's Figures 14 and 16 do.
//
// The emulator is driven by an eventsim.Sim, so all behaviour is
// deterministic given a seed.
package netem

import (
	"fmt"
	"time"
)

// NodeID identifies a node (host or router) in a topology.
type NodeID int

// NodeKind classifies topology nodes.
type NodeKind uint8

const (
	// Host is an end system that runs peer software.
	Host NodeKind = iota
	// StubRouter aggregates hosts at a site.
	StubRouter
	// TransitRouter forms the topology core.
	TransitRouter
)

func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case StubRouter:
		return "stub"
	case TransitRouter:
		return "transit"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Link is an undirected edge between two nodes.
type Link struct {
	A, B    NodeID
	Latency time.Duration // one-way propagation delay
	// Bandwidth is the link capacity in bits per second. Zero means
	// infinite (no serialization delay).
	Bandwidth float64
	// Loss is the per-traversal drop probability in [0, 1).
	Loss float64
}

// Topology is an undirected graph of nodes and links.
type Topology struct {
	kinds []NodeKind
	links []Link
	adj   [][]halfEdge // adjacency: node -> outgoing half-edges
}

type halfEdge struct {
	to   NodeID
	link int // index into links
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{} }

// AddNode adds a node of the given kind and returns its ID.
func (t *Topology) AddNode(kind NodeKind) NodeID {
	id := NodeID(len(t.kinds))
	t.kinds = append(t.kinds, kind)
	t.adj = append(t.adj, nil)
	return id
}

// AddLink connects a and b. It panics on self-loops or unknown nodes, which
// indicate generator bugs.
func (t *Topology) AddLink(l Link) int {
	if l.A == l.B {
		panic("netem: self-loop")
	}
	if int(l.A) >= len(t.kinds) || int(l.B) >= len(t.kinds) || l.A < 0 || l.B < 0 {
		panic("netem: link references unknown node")
	}
	idx := len(t.links)
	t.links = append(t.links, l)
	t.adj[l.A] = append(t.adj[l.A], halfEdge{to: l.B, link: idx})
	t.adj[l.B] = append(t.adj[l.B], halfEdge{to: l.A, link: idx})
	return idx
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.kinds) }

// NumLinks returns the link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Kind returns a node's kind.
func (t *Topology) Kind(n NodeID) NodeKind { return t.kinds[n] }

// LinkAt returns the i'th link.
func (t *Topology) LinkAt(i int) Link { return t.links[i] }

// Hosts returns all host-kind node IDs in increasing order.
func (t *Topology) Hosts() []NodeID {
	var hosts []NodeID
	for i, k := range t.kinds {
		if k == Host {
			hosts = append(hosts, NodeID(i))
		}
	}
	return hosts
}

// Neighbors returns the IDs adjacent to n.
func (t *Topology) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, len(t.adj[n]))
	for i, e := range t.adj[n] {
		out[i] = e.to
	}
	return out
}
