package mortar

import (
	"testing"
	"time"

	"repro/internal/tuple"
)

// Result latency must be stable over long runs: with mutual parent pairs
// across sibling trees, a naive "wait for the slowest observed path" policy
// ratchets ages without bound (each operator waits for the other's hold
// plus slack). The runtime breaks the cycle by having interior operators
// relay stragglers without folding them into netDist; this test pins the
// converged behaviour.
func TestLongRunLatencyStable(t *testing.T) {
	fab, rt := testbed(t, 12, 2, DefaultConfig(), nil)
	type sample struct {
		win int64
		age time.Duration
		cnt int
	}
	var samples []sample
	fab.OnResult = func(r Result) {
		samples = append(samples, sample{r.WindowIndex, r.Age, r.Count})
	}
	meta := QueryMeta{
		Name: "stab", Seq: 1, OpName: "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(12, 7), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		startSensor(fab, rt, i)
	}
	rt.RunFor(300 * time.Second)

	if len(samples) < 280 {
		t.Fatalf("only %d results in 300s", len(samples))
	}
	// Steady state: full completeness and bounded, non-growing ages.
	mid, last := samples[len(samples)/2], samples[len(samples)-1]
	if mid.cnt != 12 || last.cnt != 12 {
		t.Fatalf("completeness regressed: mid %d, last %d", mid.cnt, last.cnt)
	}
	if last.age > 4*time.Second {
		t.Fatalf("result age %v unbounded at window %d", last.age, last.win)
	}
	if last.age > mid.age+500*time.Millisecond {
		t.Fatalf("latency creep: mid %v -> last %v", mid.age, last.age)
	}
}
