package mortar

import (
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// envelope wraps a summary tuple with its per-hop routing state (§3.3):
// the tree the current hop travels on and the TTL-down counter bounding
// flex-down steps. The per-tree level history lives in the summary itself
// (tuple.Summary.Levels) because it survives merging.
type envelope struct {
	S       tuple.Summary
	Tree    int // tree of the current hop
	TTLDown uint8
	SentAt  time.Duration // runtime time at transmit; receiver derives flight time (UdpCC RTT/2)
}

func (e *envelope) size() int {
	var w wire.Buffer
	if err := wire.EncodeSummary(&w, e.S, e.TTLDown); err != nil {
		return 64
	}
	return w.Len() + 2 // + tree tag
}

// msgHeartbeat flows parent -> child every heartbeat period. Every few
// beats it piggybacks the reconciliation hash of the sender's query set.
type msgHeartbeat struct {
	Seq  uint64
	Hash uint64 // 0 when not piggybacked this beat
}

func (m msgHeartbeat) size() int {
	if m.Hash != 0 {
		return wire.HeartbeatSize()
	}
	return wire.HeartbeatSize() - 8
}

// msgInstall carries a chunk of the install multicast: per-member metadata
// and tree position, plus the forwarding edges within the chunk.
type msgInstall struct {
	Meta QueryMeta
	// Members maps peer -> its neighbors record.
	Members map[int]neighbors
	// Forward maps peer -> the chunk members it must forward to.
	Forward map[int][]int
}

func (m msgInstall) size() int {
	n := m.Meta.metaWireSize()
	for _, nb := range m.Members {
		n += 3 + nb.wireSize()
	}
	for _, f := range m.Forward {
		n += 3 + 3*len(f)
	}
	return n
}

// msgRemove multicasts a query removal along the same chunking.
type msgRemove struct {
	Name    string
	Seq     uint64
	Forward map[int][]int
}

func (m msgRemove) size() int {
	n := len(m.Name) + 10
	for _, f := range m.Forward {
		n += 3 + 3*len(f)
	}
	return n
}

// msgReconSummary opens pair-wise reconciliation: the full (small) summary
// of the sender's installed queries and cached removals (§6.1).
type msgReconSummary struct {
	Installed map[string]uint64 // name -> seq
	Removed   map[string]uint64
	Metas     []QueryMeta // metadata for everything installed, so the peer can adopt
}

func (m msgReconSummary) size() int {
	n := 8
	for name := range m.Installed {
		n += len(name) + 9
	}
	for name := range m.Removed {
		n += len(name) + 9
	}
	for _, meta := range m.Metas {
		n += meta.metaWireSize()
	}
	return n
}

// msgReconDefs is the reply: metadata the receiver was missing and
// removals it had not seen.
type msgReconDefs struct {
	Metas   []QueryMeta
	Removed map[string]uint64
}

func (m msgReconDefs) size() int {
	n := 8
	for _, meta := range m.Metas {
		n += meta.metaWireSize()
	}
	for name := range m.Removed {
		n += len(name) + 9
	}
	return n
}

// msgTopoRequest asks a query root (the topology server) for the
// requester's parent/child sets (§6.1).
type msgTopoRequest struct {
	Query string
	Peer  int
}

func (m msgTopoRequest) size() int { return len(m.Query) + 8 }

// msgTopoReply returns the requester's position in the tree set.
type msgTopoReply struct {
	Query string
	Seq   uint64
	NB    neighbors
	// Unknown is set when the root no longer knows the query (removed).
	Unknown bool
}

func (m msgTopoReply) size() int { return len(m.Query) + 10 + m.NB.wireSize() }

// msgSize dispatches to the per-type size estimate.
func msgSize(payload any) int {
	switch m := payload.(type) {
	case *envelope:
		return m.size()
	case msgHeartbeat:
		return m.size()
	case msgInstall:
		return m.size()
	case msgRemove:
		return m.size()
	case msgReconSummary:
		return m.size()
	case msgReconDefs:
		return m.size()
	case msgTopoRequest:
		return m.size()
	case msgTopoReply:
		return m.size()
	default:
		return 32
	}
}
