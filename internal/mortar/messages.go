package mortar

import (
	"repro/internal/wire"
)

// The peer message shapes live in internal/wire alongside their codec:
// every message the fabric sends is encoded exactly once per transmit
// (wire.EncodeMessage), its encoded length is the size the transport
// charges, and socket backends put those bytes on the wire verbatim. The
// aliases below keep the protocol code reading naturally while guaranteeing
// the types the peers exchange are precisely the types the codec covers —
// there is no hand-maintained size estimate to drift from the encoding.

// envelope wraps a summary tuple with its per-hop routing state (§3.3).
type envelope = wire.Envelope

// msgHeartbeat flows parent -> child every heartbeat period (§3.3).
type msgHeartbeat = wire.Heartbeat

// msgInstall carries a chunk of the install multicast (§6).
type msgInstall = wire.Install

// msgRemove multicasts a query removal along the same chunking (§6).
type msgRemove = wire.Remove

// msgReconSummary opens pair-wise reconciliation (§6.1).
type msgReconSummary = wire.ReconSummary

// msgReconDefs is the reconciliation reply (§6.1).
type msgReconDefs = wire.ReconDefs

// msgTopoRequest asks a query root for the requester's tree position
// (§6.1).
type msgTopoRequest = wire.TopoRequest

// msgTopoReply returns the requester's position in the tree set (§6.1).
type msgTopoReply = wire.TopoReply

// msgInstallAck reports a wired epoch back to the query root, which
// retires the previous epoch once every member has acked (the
// make-before-break hand-off of a live replan).
type msgInstallAck = wire.InstallAck
