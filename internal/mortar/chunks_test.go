package mortar

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// chunkTestDef plans a query over n members with branching factor bf.
func chunkTestDef(t *testing.T, n, bf, d int) *QueryDef {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	coords := make([]cluster.Point, n)
	for i := range coords {
		coords[i] = cluster.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	def := &QueryDef{
		Meta: QueryMeta{
			Name:   "chunks",
			Seq:    1,
			OpName: "sum",
			Window: tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			Root:   0,
		},
		Trees:   plan.Build(coords, 0, bf, d, rng),
		Members: members,
	}
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	return def
}

// encodedChunkSize returns the wire size of the install message a chunk
// head receives — the size the transport is actually asked to carry.
func encodedChunkSize(t *testing.T, def *QueryDef, c *chunk) int {
	t.Helper()
	var w wire.Buffer
	m := msgInstall{Meta: def.Meta, Members: c.members, Forward: c.forward}
	if err := wire.EncodeMessage(&w, m); err != nil {
		t.Fatal(err)
	}
	return w.Len()
}

// assertCover checks every member lands in exactly one chunk.
func assertCover(t *testing.T, def *QueryDef, chunks []*chunk) {
	t.Helper()
	seen := map[int]int{}
	for _, c := range chunks {
		for p := range c.members {
			seen[p]++
		}
	}
	for _, m := range def.Members {
		if seen[m] != 1 {
			t.Fatalf("member %d appears in %d chunks", m, seen[m])
		}
	}
}

// With no byte budget (unbounded transports), chunking must keep the
// paper's fixed-count partition.
func TestBuildChunksCountMode(t *testing.T) {
	def := chunkTestDef(t, 40, 2, 2)
	chunks := buildChunks(def, 16, 0)
	assertCover(t, def, chunks)
	if len(chunks) < 2 {
		t.Fatalf("16-way chunking built %d chunks", len(chunks))
	}
	// BFS assigns a popped node's children together, so a chunk can overrun
	// the per-chunk target by at most the branching factor.
	target := (40+15)/16 + 2
	for _, c := range chunks {
		if len(c.members) > target {
			t.Fatalf("chunk of %d members for a %d-member bound", len(c.members), target)
		}
	}
}

// With a byte budget (Transport.MaxFrame), every chunk's encoded install
// message must fit the transport's frame bound, the partition must still
// cover every member, and a tight budget must produce more chunks than the
// fixed count would.
func TestBuildChunksByteBudget(t *testing.T) {
	def := chunkTestDef(t, 40, 2, 2)
	const maxFrame = 800
	budget := maxFrame - maxFrame/8 // mirrors Fabric.chunkBudget
	chunks := buildChunks(def, 16, budget)
	assertCover(t, def, chunks)
	for i, c := range chunks {
		if got := encodedChunkSize(t, def, c); got > maxFrame {
			t.Fatalf("chunk %d encodes to %d bytes, over the %d-byte frame bound", i, got, maxFrame)
		}
	}
	// A budget big enough for everything collapses to one chunk.
	if got := buildChunks(def, 16, 1<<20); len(got) != 1 {
		t.Fatalf("unconstrained budget built %d chunks, want 1", len(got))
	}
}
