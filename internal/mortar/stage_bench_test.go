package mortar

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/runtime"
	"repro/internal/tuple"
)

// The staging fast path must not allocate in steady state: parked entries
// live by value in a recycled slice, merge folds through the operator's
// in-place combiner, and the flushed batch shell, wire buffer, and frame
// all come from pools on byte-consuming transports. The benchmark drives
// stage-merge-flush cycles over a stub runtime whose transport consumes
// frame bytes like a socket backend but discards them, and whose clock
// hands out free timers — so the measurement isolates the staging layer
// itself (timer arming costs whatever the chosen backend charges).

// benchTimer and benchTicker satisfy the runtime interfaces without
// scheduling anything; the benchmark flushes buffers explicitly.
type benchTimer struct{}

func (benchTimer) Cancel()             {}
func (benchTimer) Stopped() bool       { return true }
func (benchTimer) When() time.Duration { return 0 }

type benchTicker struct{}

func (benchTicker) Stop() {}

type benchClock struct{ now time.Duration }

func (c *benchClock) Now() time.Duration                         { return c.now }
func (c *benchClock) After(time.Duration, func()) runtime.Timer  { return benchTimer{} }
func (c *benchClock) Every(time.Duration, func()) runtime.Ticker { return benchTicker{} }

// benchTransport consumes frame bytes (the socket-backend contract that
// turns on fabric-side pooling) and drops every frame on the floor.
type benchTransport struct{}

func (benchTransport) Send(from, to int, class runtime.Class, size int, payload any) bool {
	return true
}
func (benchTransport) Handle(peer int, h runtime.Handler) {}
func (benchTransport) SetDown(peer int, down bool)        {}
func (benchTransport) Down(peer int) bool                 { return false }
func (benchTransport) Latency(a, b int) time.Duration     { return time.Millisecond }
func (benchTransport) MaxFrame() int                      { return 64 << 10 }
func (benchTransport) ConsumesFrameBytes() bool           { return true }

type benchRuntime struct {
	n      int
	clocks []*benchClock
	tr     benchTransport
	rng    *rand.Rand
}

func (r *benchRuntime) NumPeers() int                 { return r.n }
func (r *benchRuntime) Clock(peer int) runtime.Clock  { return r.clocks[peer] }
func (r *benchRuntime) Transport() runtime.Transport  { return r.tr }
func (r *benchRuntime) Rand() *rand.Rand              { return r.rng }
func (r *benchRuntime) Exec(peer int, fn func()) bool { fn(); return true }
func (r *benchRuntime) Shutdown()                     {}

func BenchmarkStageFlushSteadyState(b *testing.B) {
	rt := &benchRuntime{n: 2, rng: rand.New(rand.NewSource(1))}
	rt.clocks = []*benchClock{{}, {}}
	fab, err := NewFabric(rt, nil, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	meta := QueryMeta{
		Name:   "d",
		Seq:    1,
		OpName: "distinct",
		Window: tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:   0,
	}
	def, err := fab.Compile(meta, nil, uniformCoords(2, 3), 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		b.Fatal(err)
	}
	p := fab.peers[0]
	var inst *instance
	for _, in := range p.insts {
		inst = in
	}
	if inst == nil {
		b.Fatal("no instance installed")
	}

	// Two child partials for one window (they merge in the buffer through
	// the sketch's in-place combine) plus one for the next window (it
	// stays distinct, so every flush transmits a two-entry batch).
	mkSum := func(w int64) tuple.Summary {
		d := inst.op.NewWindow()
		for i := 0; i < 32; i++ {
			d.Merge(tuple.Raw{Key: string(rune('a'+i%26)) + string(rune('0'+w)), Vals: []float64{1}})
		}
		return tuple.Summary{
			Query:  "d",
			Index:  tuple.Index{TB: time.Duration(w) * time.Second, TE: time.Duration(w+1) * time.Second},
			Value:  d.Value(),
			Count:  1,
			Levels: []int16{0},
		}
	}
	s1, s2, s3 := mkSum(0), mkSum(0), mkSum(1)

	// One warm-up cycle sizes the buffer, pools, and traffic counters.
	cycle := func() {
		p.stageSummary(inst, s1, 0, 1, 0, true)
		p.stageSummary(inst, s2, 0, 1, 0, true)
		p.stageSummary(inst, s3, 0, 1, 0, true)
		p.flushStage(1, p.stage[1])
	}
	cycle()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.StopTimer()
	if got := fab.Stats.SummariesCoalesced.Load(); got < uint64(b.N) {
		b.Fatalf("merge path not exercised: coalesced %d over %d cycles", got, b.N)
	}
	if got := fab.Stats.BatchFrames.Load(); got < uint64(b.N) {
		b.Fatalf("batch path not exercised: %d batch frames over %d cycles", got, b.N)
	}
}
