package mortar

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tuple"
)

// Subscription cancel must actually detach the callback: results emitted
// after cancel never reach it, while other subscribers keep receiving.
func TestSubscribeCancelDetaches(t *testing.T) {
	cfg := DefaultConfig()
	fab, rt := testbed(t, 8, 3, cfg, nil)

	var kept, transient atomic.Uint64
	fab.SubscribeAll(func(Result) { kept.Add(1) })
	cancel := fab.SubscribeAll(func(Result) { transient.Add(1) })

	meta := QueryMeta{
		Name:      "q",
		Seq:       1,
		OpName:    "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(8, 1), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		i := i
		rt.Clock(i).Every(time.Second, func() { fab.Inject(i, tuple.Raw{Vals: []float64{1}}) })
	}
	rt.Sim().RunUntil(5 * time.Second)
	if transient.Load() == 0 || kept.Load() == 0 {
		t.Fatalf("no results before cancel: kept=%d transient=%d", kept.Load(), transient.Load())
	}
	cancel()
	cancel() // idempotent
	atCancel := transient.Load()
	keptAtCancel := kept.Load()
	rt.Sim().RunUntil(12 * time.Second)
	if got := transient.Load(); got != atCancel {
		t.Fatalf("canceled subscriber still receiving: %d results after cancel", got-atCancel)
	}
	if kept.Load() <= keptAtCancel {
		t.Fatal("surviving subscriber stopped receiving after a sibling's cancel")
	}
}

// Subscribing, canceling, and emitting concurrently must be race-clean
// (copy-on-write snapshots): this is the pattern of gateway clients
// attaching and disconnecting while roots report. Run under -race by the
// tier-1 suite.
func TestSubscribeCancelRace(t *testing.T) {
	f := &Fabric{}
	stop := make(chan struct{})
	emitterDone := make(chan struct{})
	go func() { // emitter: the root peer's report path
		defer close(emitterDone)
		for {
			select {
			case <-stop:
				return
			default:
				f.emitResult(Result{Query: "q"})
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { // churning clients
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c1 := f.SubscribeAll(func(Result) {})
				c2 := f.Subscribe("q", func(Result) {})
				c1()
				c2()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-emitterDone
	f.subMu.Lock()
	n := len(f.subs)
	f.subMu.Unlock()
	if n != 0 {
		t.Fatalf("%d subscriptions leaked after every client canceled", n)
	}
}

// Every transmitted message lands in exactly one accounting bucket: the
// class totals split data from control, and the control total splits into
// shared-mesh bytes plus per-query attributable bytes.
func TestTrafficAccountingBuckets(t *testing.T) {
	cfg := DefaultConfig()
	fab, rt := testbed(t, 12, 7, cfg, nil)
	meta := QueryMeta{
		Name:      "acct",
		Seq:       1,
		OpName:    "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(12, 2), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		i := i
		rt.Clock(i).Every(time.Second, func() { fab.Inject(i, tuple.Raw{Vals: []float64{1}}) })
	}
	rt.Sim().RunUntil(30 * time.Second)

	ctl := fab.Stats.ControlBytes.Load()
	data := fab.Stats.DataBytes.Load()
	shared := fab.Stats.SharedCtlBytes.Load()
	qctl, qdata := fab.QueryTraffic("acct")
	if ctl == 0 || data == 0 || shared == 0 || qctl == 0 || qdata == 0 {
		t.Fatalf("a bucket stayed empty: ctl=%d data=%d shared=%d qctl=%d qdata=%d",
			ctl, data, shared, qctl, qdata)
	}
	if shared+qctl != ctl {
		t.Fatalf("control bytes do not reconcile: shared=%d + query=%d != total=%d",
			shared, qctl, ctl)
	}
	if qdata != data {
		t.Fatalf("data bytes do not reconcile: query=%d != total=%d", qdata, data)
	}
	if c2, d2 := fab.QueryTraffic("nonesuch"); c2 != 0 || d2 != 0 {
		t.Fatalf("unknown query reports traffic: %d/%d", c2, d2)
	}
}
