// Package mortar is the core of this reproduction: the Mortar peer runtime.
// It glues the substrates together into the system the paper describes —
// continuous queries planned onto static tree sets (internal/plan), tuples
// striped dynamically across the trees (§3.3), time-division data
// partitioning through per-operator time-space lists (§4, internal/tslist),
// syncless age-based indexing (§5), shared heartbeats, and pair-wise
// reconciliation for eventually consistent query installation (§6).
//
// Peers are single-threaded event-driven actors, mirroring the prototype's
// SEDA design, written against the internal/runtime interfaces: the same
// Fabric runs inside the deterministic simulator backend (runtime/simrt,
// used by the figure experiments) or with one goroutine per peer over a
// concurrent in-process transport (runtime/livert).
package mortar

import (
	"fmt"
	"time"

	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// QueryMeta is the part of a query definition every hosting peer keeps: the
// operator type, its query-specific arguments, and the window. It is small
// and travels in install and reconciliation messages; tree topology stays
// at the query root, which acts as the topology server (§6.1). The shape
// (and its codec) lives in internal/wire; see wire.QueryMeta for the field
// documentation.
type QueryMeta = wire.QueryMeta

// QueryDef is the full compiled query: metadata plus the planned tree set
// and the member list mapping tree indices to peer IDs (queries are scoped:
// only the nodes that provide data participate, §2.1). Only the issuing
// peer and the query root hold it.
type QueryDef struct {
	Meta QueryMeta
	// Trees is the planned tree set over member indices 0..len(Members)-1.
	Trees *plan.Set
	// Members maps member index to fabric peer ID.
	Members []int
}

// Validate checks the definition before installation.
func (d *QueryDef) Validate() error {
	if d.Meta.Name == "" {
		return fmt.Errorf("mortar: query needs a name")
	}
	if !ops.Known(d.Meta.OpName) {
		return fmt.Errorf("mortar: unknown operator %q", d.Meta.OpName)
	}
	if err := d.Meta.Window.Validate(); err != nil {
		return err
	}
	if d.Trees == nil || d.Trees.D() < 1 {
		return fmt.Errorf("mortar: query needs a planned tree set")
	}
	if len(d.Members) != d.Trees.NumPeers() {
		return fmt.Errorf("mortar: %d members for %d tree peers", len(d.Members), d.Trees.NumPeers())
	}
	rootIdx := d.Trees.Trees[0].Root
	if d.Meta.Root != d.Members[rootIdx] {
		return fmt.Errorf("mortar: meta root %d != tree root peer %d", d.Meta.Root, d.Members[rootIdx])
	}
	return nil
}

// memberIndex returns the tree index of a peer, or -1 if the peer is not in
// the query's node set.
func (d *QueryDef) memberIndex(peer int) int {
	for i, m := range d.Members {
		if m == peer {
			return i
		}
	}
	return -1
}

// neighbors is one peer's position in a query's tree set: its parent,
// children, and level per tree. This is what the install multicast carries
// per node and what the topology service returns during recovery. The
// shape (and its codec) lives in internal/wire as wire.Neighbors.
type neighbors = wire.Neighbors

// neighborsFor extracts a member's position, translating member indices to
// peer IDs.
func neighborsFor(d *QueryDef, memberIdx int) neighbors {
	s := d.Trees
	nb := neighbors{
		Parents:  make([]int, s.D()),
		Children: make([][]int, s.D()),
		Levels:   make([]int, s.D()),
	}
	for i, t := range s.Trees {
		if pa := t.Parent[memberIdx]; pa >= 0 {
			nb.Parents[i] = d.Members[pa]
		} else {
			nb.Parents[i] = -1
		}
		for _, c := range t.Children[memberIdx] {
			nb.Children[i] = append(nb.Children[i], d.Members[c])
		}
		nb.Levels[i] = t.Level[memberIdx]
	}
	return nb
}

// Result is one answer emitted by a query's root operator.
type Result struct {
	Query string
	// Epoch is the plan epoch whose root reported this result. During a
	// migration both epochs report; consumers judging completeness should
	// take the per-window maximum across epochs.
	Epoch uint32
	// WindowIndex is the root-local logical slide number (time windows).
	WindowIndex int64
	// Index is the validity interval in the root's local frame.
	Index tuple.Index
	// Value is the finalized user-facing value.
	Value tuple.Value
	// Count is the completeness field: participants reflected in the value.
	Count int
	// Hops is the maximum overlay path length among merged tuples.
	Hops int
	// At is the simulation time the root reported the result.
	At time.Duration
	// Age is the averaged constituent age at report time.
	Age time.Duration
}
