package mortar

import (
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/runtime"
	"repro/internal/vclock"
	"repro/internal/vivaldi"
	"repro/internal/wire"
)

// instKey identifies one operator instance on a peer: the query name plus
// the plan epoch. A replan installs the same query under the next epoch
// and the two run side by side until the old epoch is retired, so the name
// alone no longer names an instance.
type instKey struct {
	name  string
	epoch uint32
}

// Peer is one Mortar process: a single-threaded event-driven actor hosting
// query operators. All its methods run inside the peer's runtime
// serialization domain — simulator callbacks under simrt, the peer's own
// goroutine under livert.
type Peer struct {
	fab   *Fabric
	id    int
	rtc   runtime.Clock // scheduling clock (true runtime time)
	clock vclock.Clock  // clock model layered on top (offset + skew)

	insts map[instKey]*instance
	// removed caches removal commands per query name as a non-dominated
	// mark set (see wire.RemovedMark): a whole-query removal and a later
	// epoch retirement cover incomparable rectangles, and both must keep
	// suppressing the installs they cover.
	removed map[string][]wire.RemovedMark

	// Liveness: runtime time we last heard anything from a neighbor.
	lastHeard map[int]time.Duration
	beat      uint64
	hbTicker  runtime.Ticker

	// Duplicate suppression (§4.3 requires the transport to suppress
	// duplicates): highest seq seen per sender for heartbeats.
	hbSeqSeen map[int]uint64
	hbSeqOut  uint64

	// pendingTopo tracks instances awaiting a topology reply from their
	// root.
	pendingTopo map[instKey]bool

	// stage holds summaries parked for coalescing, one buffer (with its own
	// hold timer) per next-hop peer (stage.go).
	stage map[int]*stageBuf

	// nc is the peer's Vivaldi coordinate state on runtimes that run the
	// decentralized protocol (runtime/netrt); nil elsewhere. The node is
	// internally synchronized: the transport's receive path updates it
	// concurrently with this peer's heartbeat sends.
	nc *vivaldi.Node
}

func newPeer(f *Fabric, id int, rtc runtime.Clock, ck vclock.Clock) *Peer {
	p := &Peer{
		fab:         f,
		id:          id,
		rtc:         rtc,
		clock:       ck,
		insts:       make(map[instKey]*instance),
		removed:     make(map[string][]wire.RemovedMark),
		lastHeard:   make(map[int]time.Duration),
		hbSeqSeen:   make(map[int]uint64),
		pendingTopo: make(map[instKey]bool),
	}
	return p
}

// sortedInstKeys returns the peer's instance keys ordered by (name, epoch)
// — map iteration must never order anything behavior-visible (the
// simulated backend is bit-for-bit deterministic).
func (p *Peer) sortedInstKeys() []instKey {
	keys := make([]instKey, 0, len(p.insts))
	for k := range p.insts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].epoch < keys[j].epoch
	})
	return keys
}

// ID returns the peer's fabric index.
func (p *Peer) ID() int { return p.id }

// Clock returns the peer's local clock model.
func (p *Peer) Clock() vclock.Clock { return p.clock }

// now is the peer's true runtime time.
func (p *Peer) now() time.Duration { return p.rtc.Now() }

// localNow is the node's reported wall-clock time (offset + skew applied).
func (p *Peer) localNow() time.Duration { return p.clock.Reported(p.now()) }

// runtimeDelayForLocal converts a local-clock duration into runtime time
// (a fast clock's second passes in less than a true second).
func (p *Peer) runtimeDelayForLocal(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / p.clock.Skew)
}

// alive reports whether a neighbor is presumed reachable: heard from within
// the liveness window.
func (p *Peer) alive(other int) bool {
	last, ok := p.lastHeard[other]
	if !ok {
		return false
	}
	window := time.Duration(float64(p.fab.Cfg.HeartbeatPeriod) * p.fab.Cfg.LivenessMultiple)
	return p.now()-last < window
}

// markHeard refreshes a neighbor's liveness.
func (p *Peer) markHeard(other int) { p.lastHeard[other] = p.now() }

// deliver is the transport handler: dispatch by message type. In-process
// backends deliver the runtime.Frame the fabric sent (decoded payload plus
// its encoding); socket backends deliver the payload they decoded off the
// wire.
func (p *Peer) deliver(src int, payload any, size int) {
	if src < 0 || src >= p.fab.NumPeers() {
		return
	}
	if fr, ok := payload.(*runtime.Frame); ok {
		payload = fr.Payload
	}
	switch m := payload.(type) {
	case *envelope:
		p.markHeard(src)
		p.handleSummary(src, m)
	case *wire.EnvelopeBatch:
		p.markHeard(src)
		for i := range m.Envelopes {
			p.handleSummary(src, &m.Envelopes[i])
		}
	case msgHeartbeat:
		p.handleHeartbeat(src, m)
	case msgInstall:
		p.handleInstall(src, m)
	case msgRemove:
		p.handleRemove(src, m)
	case msgReconSummary:
		p.markHeard(src)
		p.handleReconSummary(src, m)
	case msgReconDefs:
		p.markHeard(src)
		p.handleReconDefs(src, m)
	case msgTopoRequest:
		p.handleTopoRequest(src, m)
	case msgTopoReply:
		p.handleTopoReply(src, m)
	case msgInstallAck:
		p.markHeard(src)
		p.handleInstallAck(src, m)
	}
	// A peer hosting nothing has no ticker to ride for periodic pruning;
	// drop liveness state stragglers re-add so an idle peer holds no
	// per-neighbor memory. Heartbeat dedup seqs are deliberately kept: a
	// stale parent may still be heartbeating, and wiping its seq here
	// would re-accept every duplicate the transport injects. The residue
	// is bounded by the ex-parent count and cleared by the next install's
	// reconciliation-beat prune.
	if len(p.insts) == 0 && len(p.lastHeard) > 0 {
		clear(p.lastHeard)
	}
}

// --- Heartbeats (§3.3) ---

// ensureHeartbeats starts the heartbeat ticker once the peer has any
// children to serve.
func (p *Peer) ensureHeartbeats() {
	if p.hbTicker != nil {
		return
	}
	p.hbTicker = p.rtc.Every(p.fab.Cfg.HeartbeatPeriod, p.sendHeartbeats)
}

// uniqueChildren returns the distinct peers this node parents in any tree
// of any installed query — the set it must heartbeat. Sharing across
// queries and sibling trees is what makes overhead scale sub-linearly
// (Figure 13).
func (p *Peer) uniqueChildren() []int {
	set := map[int]struct{}{}
	for _, inst := range p.insts {
		if !inst.wired {
			continue
		}
		for _, kids := range inst.nb.Children {
			for _, c := range kids {
				set[c] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// uniqueParents returns the distinct peers this node expects heartbeats
// from.
func (p *Peer) uniqueParents() []int {
	set := map[int]struct{}{}
	for _, inst := range p.insts {
		if !inst.wired {
			continue
		}
		for _, pa := range inst.nb.Parents {
			if pa >= 0 {
				set[pa] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(set))
	for pa := range set {
		out = append(out, pa)
	}
	sort.Ints(out)
	return out
}

func (p *Peer) sendHeartbeats() {
	p.beat++
	p.hbSeqOut++
	withHash := p.fab.Cfg.ReconcileEveryBeats > 0 && p.beat%uint64(p.fab.Cfg.ReconcileEveryBeats) == 0
	if withHash {
		p.retryPendingTopo()
		// Re-ack migrating epochs: a lost InstallAck must not stall a
		// retirement forever, so while this peer still hosts an older epoch
		// of a query it keeps acking the newer one on reconciliation beats.
		p.reackMigratingEpochs()
		// Ride the reconciliation beat to drop state for ex-neighbors that
		// in-flight traffic re-added after an unwire or removal.
		p.pruneNeighborState()
	}
	// Piggyback this peer's Vivaldi coordinate on every heartbeat (§3.1):
	// the children measure the parent's RTT passively, so coordinate plus
	// sample is one decentralized Vivaldi update with no extra packets.
	var coord vivaldi.Coordinate
	var coordErr float64
	if p.nc != nil {
		coord, coordErr = p.nc.Snapshot()
	}
	for _, c := range p.uniqueChildren() {
		hb := msgHeartbeat{Seq: p.hbSeqOut, Coord: coord, CoordErr: coordErr}
		if withHash {
			hb.Hash = p.pairHashAsParent(c)
		}
		p.fab.send(p.id, c, runtime.ClassControl, hb)
	}
	if withHash {
		// Probe silent parents with our summary so a recovered parent that
		// lost its query state can adopt it (§6.1: reconciliation works in
		// both directions; child-to-parent comparisons ride the data flow).
		for _, pa := range p.uniqueParents() {
			if !p.alive(pa) {
				p.fab.send(p.id, pa, runtime.ClassControl, p.reconSummary())
			}
		}
	}
}

// pairHashAsParent hashes (name, seq) over queries in which child is one of
// this node's children — the queries the pair shares from the parent side.
func (p *Peer) pairHashAsParent(child int) uint64 {
	return p.hashQueries(func(inst *instance) bool {
		for _, kids := range inst.nb.Children {
			for _, c := range kids {
				if c == child {
					return true
				}
			}
		}
		return false
	})
}

// pairHashAsChild hashes over queries in which parent is one of this node's
// parents.
func (p *Peer) pairHashAsChild(parent int) uint64 {
	return p.hashQueries(func(inst *instance) bool {
		for _, pa := range inst.nb.Parents {
			if pa == parent {
				return true
			}
		}
		return false
	})
}

// hashQueries digests the peer's wired instance set as (name, epoch, seq)
// triples: reconciliation keys on (name, epoch), so during a migration the
// two live epochs of a query hash as two entries and a pair disagrees the
// moment either side misses one of them. Draining instances are excluded,
// exactly as reconSummary omits them — drain timers on the two ends of a
// pair expire at skewed times, and hashing a state reconciliation cannot
// change would keep the pair exchanging futile summaries until the slower
// timer fired.
func (p *Peer) hashQueries(include func(*instance) bool) uint64 {
	h := fnv.New64a()
	for _, k := range p.sortedInstKeys() {
		inst := p.insts[k]
		if !inst.wired || inst.draining || !include(inst) {
			continue
		}
		h.Write([]byte(k.name))
		var b [12]byte
		for i := 0; i < 4; i++ {
			b[i] = byte(k.epoch >> (8 * i))
		}
		seq := p.insts[k].meta.Seq
		for i := 0; i < 8; i++ {
			b[4+i] = byte(seq >> (8 * i))
		}
		h.Write(b[:])
		h.Write([]byte{0})
	}
	// Reserve 0 for "no hash piggybacked".
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

func (p *Peer) handleHeartbeat(src int, m msgHeartbeat) {
	if m.Seq <= p.hbSeqSeen[src] {
		return // duplicate-suppressing transport
	}
	p.hbSeqSeen[src] = m.Seq
	p.markHeard(src)
	p.noteCoord(src, m.Coord, m.CoordErr)
	if m.Hash != 0 && m.Hash != p.pairHashAsChild(src) {
		p.fab.send(p.id, src, runtime.ClassControl, p.reconSummary())
	}
}

// noteCoord folds a heartbeat-borne remote coordinate into this peer's
// Vivaldi node. The latency sample is the transport's passively measured
// one-way latency to the sender; without a real measurement (or a node to
// update) the coordinate is ignored — a default would poison the embedding.
func (p *Peer) noteCoord(src int, coord []float64, errEst float64) {
	if p.nc == nil || len(coord) == 0 || p.fab.measure == nil {
		return
	}
	if d, ok := p.fab.measure.Measured(p.id, src); ok {
		p.nc.Update(d, vivaldi.Coordinate(coord), errEst)
	}
}

// Coordinate returns the peer's Vivaldi coordinate and error estimate;
// ok is false when the runtime maintains no coordinates. Safe from any
// goroutine (mortard's -vivaldi convergence logging reads it live).
func (p *Peer) Coordinate() (vivaldi.Coordinate, float64, bool) {
	if p.nc == nil {
		return nil, 0, false
	}
	c, e := p.nc.Snapshot()
	return c, e, true
}

// pruneNeighborState drops liveness and duplicate-suppression entries for
// peers that are no longer neighbors in any wired query. Without this the
// lastHeard and hbSeqSeen maps grow without bound under query and
// membership churn — harmless in a bounded simulation, a leak in a
// long-lived live process. When no neighbors remain at all the heartbeat
// ticker is stopped too (ensureHeartbeats restarts it on the next
// install).
func (p *Peer) pruneNeighborState() {
	active := map[int]struct{}{}
	for _, inst := range p.insts {
		if !inst.wired {
			continue
		}
		for _, pa := range inst.nb.Parents {
			if pa >= 0 {
				active[pa] = struct{}{}
			}
		}
		for _, kids := range inst.nb.Children {
			for _, c := range kids {
				active[c] = struct{}{}
			}
		}
	}
	// Dedup seqs go first, consulting lastHeard before it is pruned: an
	// ex-neighbor that is still heartbeating (heard within the liveness
	// window) keeps its seq, so the duplicates of its in-flight beats stay
	// suppressed until reconciliation makes it stop.
	window := time.Duration(float64(p.fab.Cfg.HeartbeatPeriod) * p.fab.Cfg.LivenessMultiple)
	for o := range p.hbSeqSeen {
		if _, ok := active[o]; ok {
			continue
		}
		if last, ok := p.lastHeard[o]; ok && p.now()-last < window {
			continue
		}
		delete(p.hbSeqSeen, o)
	}
	for o := range p.lastHeard {
		if _, ok := active[o]; !ok {
			delete(p.lastHeard, o)
		}
	}
	// With no neighbors, no instances, and no pending topology fetches the
	// ticker serves nothing; stop it (ensureHeartbeats restarts it on the
	// next install). Unwired instances keep it alive: the reconciliation
	// beat drives their topology-request retries.
	if len(active) == 0 && len(p.insts) == 0 && len(p.pendingTopo) == 0 && p.hbTicker != nil {
		p.hbTicker.Stop()
		p.hbTicker = nil
	}
}

// NeighborStateSize reports the number of liveness and duplicate-
// suppression entries currently held — an introspection hook for leak
// tests and operational debugging. Quiescent-only, like InstalledCount.
func (p *Peer) NeighborStateSize() int { return len(p.lastHeard) + len(p.hbSeqSeen) }

// LivenessEntries reports only the liveness entries; after a query's
// removal these drain to zero while a bounded heartbeat-dedup residue may
// remain in NeighborStateSize. Quiescent-only.
func (p *Peer) LivenessEntries() int { return len(p.lastHeard) }
