package mortar

import (
	"testing"
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// epochQuery compiles a seq/epoch-versioned sum query over all peers with
// the given coordinate seed. IssuedSim is pinned to issue so window
// indices of successive epochs share one frame (a replan reinstalls the
// same logical query, not a new one).
func epochQuery(t *testing.T, fab *Fabric, seq uint64, epoch uint32, coordSeed int64, issue time.Duration) *QueryDef {
	t.Helper()
	meta := QueryMeta{
		Name:      "mig",
		Seq:       seq,
		Epoch:     epoch,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: issue,
	}
	def, err := fab.Compile(meta, nil, uniformCoords(fab.NumPeers(), coordSeed), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

// The epoch-lifecycle acceptance on the deterministic backend: installing
// the next epoch of a live query runs both epochs side by side, the root
// retires the old epoch once every member acks the new one, the old
// epoch's state drains to zero on every peer — and per-window completeness
// (the max across epochs) never dips below full during the whole
// migration. Make-before-break, end to end.
func TestEpochMigrationMakeBeforeBreak(t *testing.T) {
	const peers = 30
	fab, rt := testbed(t, peers, 91, DefaultConfig(), nil)
	winMax := map[int64]int{}
	epochSeen := map[uint32]bool{}
	fab.OnResult = func(r Result) {
		epochSeen[r.Epoch] = true
		if r.Count > winMax[r.WindowIndex] {
			winMax[r.WindowIndex] = r.Count
		}
	}
	issue := rt.Now()
	if err := fab.Install(0, epochQuery(t, fab, 1, 0, 7, issue)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < peers; i++ {
		startSensor(fab, rt, i)
	}
	rt.RunFor(20 * time.Second)
	if got := fab.EpochWiredCount("mig", 0); got != peers {
		t.Fatalf("epoch 0 wired on %d of %d peers before migration", got, peers)
	}

	// Replan: same query, next epoch, different coordinates (a drifted
	// embedding plans different trees).
	if err := fab.Install(0, epochQuery(t, fab, 2, 1, 8, issue)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(40 * time.Second)

	if got := fab.Stats.EpochsRetired.Load(); got != 1 {
		t.Fatalf("EpochsRetired = %d, want 1", got)
	}
	if got := fab.EpochInstalledCount("mig", 0); got != 0 {
		t.Fatalf("epoch 0 still installed on %d peers after retirement", got)
	}
	if got := fab.EpochWiredCount("mig", 1); got != peers {
		t.Fatalf("epoch 1 wired on %d of %d peers", got, peers)
	}
	if got := fab.InstalledCount("mig"); got != peers {
		t.Fatalf("InstalledCount (any epoch) = %d, want %d", got, peers)
	}
	if !epochSeen[0] || !epochSeen[1] {
		t.Fatalf("results seen per epoch: %v — both epochs must report", epochSeen)
	}

	// Completeness never dips: once warm, every window up to the tail
	// reaches full completeness in at least one epoch's report.
	var first, last int64 = -1, -1
	for w, c := range winMax {
		if c == peers && (first < 0 || w < first) {
			first = w
		}
		if w > last {
			last = w
		}
	}
	if first < 0 {
		t.Fatal("no fully complete window at all")
	}
	for w := first; w <= last-5; w++ {
		if winMax[w] != peers {
			t.Fatalf("window %d best completeness %d of %d — dipped during migration", w, winMax[w], peers)
		}
	}
}

// Fabric.Remove with a stale seq is a documented no-op at every peer: a
// replayed or delayed removal can never undo a newer install of the same
// query.
func TestStaleRemoveIsNoOp(t *testing.T) {
	const peers = 20
	fab, rt := testbed(t, peers, 92, DefaultConfig(), nil)
	def := epochQuery(t, fab, 5, 0, 7, rt.Now())
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10 * time.Second)
	if got := fab.InstalledCount("mig"); got != peers {
		t.Fatalf("installed on %d of %d peers", got, peers)
	}
	// seq 5 == install seq: stale (removal must carry a NEWER seq to win).
	if err := fab.Remove(0, "mig", 5); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(20 * time.Second)
	if got := fab.InstalledCount("mig"); got != peers {
		t.Fatalf("stale remove tore down the query: %d of %d peers still host it", got, peers)
	}
	if got := fab.WiredCount("mig"); got != peers {
		t.Fatalf("stale remove unwired the query: %d of %d", got, peers)
	}
}

// A delayed old-epoch removal — even one with an absurdly high seq — can
// never tear down a newer epoch: the epoch scope caps what it covers, and
// the newer epoch's reinstalls stay adoptable through reconciliation.
func TestDelayedOldEpochRemoveSparesNewEpoch(t *testing.T) {
	const peers = 20
	fab, rt := testbed(t, peers, 93, DefaultConfig(), nil)
	issue := rt.Now()
	if err := fab.Install(0, epochQuery(t, fab, 1, 0, 7, issue)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10 * time.Second)
	if err := fab.Install(0, epochQuery(t, fab, 2, 1, 8, issue)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(30 * time.Second) // migration completes, epoch 0 retired

	// A delayed epoch-0 removal replays on every peer with a huge seq.
	for i := 0; i < peers; i++ {
		i := i
		rt.Exec(i, func() { fab.Peer(i).removeLocal("mig", 99, 0) })
	}
	rt.RunFor(20 * time.Second)
	if got := fab.EpochWiredCount("mig", 1); got != peers {
		t.Fatalf("delayed old-epoch remove damaged epoch 1: wired on %d of %d peers", got, peers)
	}
	// The removal mark must not have poisoned epoch-1 adoption either: a
	// reconciliation-style reinstall of the epoch-1 meta still lands.
	inst := fab.Peer(0).insts[instKey{name: "mig", epoch: 1}]
	if inst == nil {
		t.Fatal("root lost epoch 1")
	}
	meta := inst.meta
	rt.Exec(5, func() {
		p := fab.Peer(5)
		if p.covered("mig", meta.Seq, meta.Epoch) {
			t.Errorf("removal marks %+v cover the live epoch's meta (seq %d, epoch %d)", p.removed["mig"], meta.Seq, meta.Epoch)
		}
	})
	rt.RunFor(time.Second)
}

// Removal marks form a non-dominated set per name: a whole-query removal
// and a later epoch-scoped retirement cover incomparable rectangles, and
// BOTH must keep suppressing the installs they cover — collapsing to
// either single mark would let some replayed install resurrect a zombie.
func TestRemovalMarksKeepIncomparableCoverage(t *testing.T) {
	fab, rt := testbed(t, 10, 95, DefaultConfig(), nil)
	done := make(chan struct{})
	rt.Exec(5, func() {
		defer close(done)
		p := fab.Peer(5)
		// History: old incarnation whole-removed at seq 5; re-created
		// (seq 6, epoch 0); replanned (seq 7, epoch 1) whose retirement
		// removes epoch 0 at seq 7.
		p.removeLocal("z", 5, wire.AllEpochs)
		p.removeLocal("z", 7, 0)
		// Stale meta from the dead incarnation (seq 4, epoch 2): only the
		// AllEpochs mark covers it.
		if !p.covered("z", 4, 2) {
			t.Errorf("whole-removal coverage lost: stale epoch-2 meta adoptable")
		}
		// Replayed install of the re-created epoch 0 (seq 6): only the
		// retirement mark covers it.
		if !p.covered("z", 6, 0) {
			t.Errorf("retirement coverage lost: retired epoch-0 reinstall adoptable")
		}
		// The live epoch 1 (seq 7) is covered by neither.
		if p.covered("z", 7, 1) {
			t.Errorf("marks %+v over-suppress the live epoch", p.removed["z"])
		}
		// Duplicate deliveries stay no-ops and the set stays minimal.
		p.removeLocal("z", 5, wire.AllEpochs)
		p.removeLocal("z", 6, 0) // dominated by {7, 0}
		if n := len(p.removed["z"]); n != 2 {
			t.Errorf("mark set has %d entries, want the 2 non-dominated marks: %+v", n, p.removed["z"])
		}
	})
	<-done
	rt.RunFor(time.Second)
}

// A whole-query removal still covers every epoch, exactly as the v2 wire
// format's removals did.
func TestWholeRemoveCoversBothEpochs(t *testing.T) {
	const peers = 20
	fab, rt := testbed(t, peers, 94, DefaultConfig(), nil)
	issue := rt.Now()
	if err := fab.Install(0, epochQuery(t, fab, 1, 0, 7, issue)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(8 * time.Second)
	if err := fab.Install(0, epochQuery(t, fab, 2, 1, 8, issue)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(4 * time.Second) // mid-migration: both epochs live somewhere
	if err := fab.Remove(0, "mig", 3); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(30 * time.Second)
	if got := fab.InstalledCount("mig"); got != 0 {
		t.Fatalf("%d peers still host the removed query", got)
	}
	if got := fab.Stats.EpochsRetired.Load(); got > 1 {
		t.Fatalf("EpochsRetired = %d after whole-query removal", got)
	}
}
