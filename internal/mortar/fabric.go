package mortar

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/runtime"
	"repro/internal/tslist"
	"repro/internal/tuple"
	"repro/internal/vclock"
	"repro/internal/vivaldi"
	"repro/internal/wire"
)

// vivaldiRuntime is implemented by runtimes (runtime/netrt) whose peers
// run decentralized Vivaldi. The fabric piggybacks each local peer's
// coordinate on the heartbeats it already sends and folds heartbeat-borne
// remote coordinates back into the peer's node, so coordinates spread on
// the traffic of the running system instead of dedicated probes.
type vivaldiRuntime interface {
	// VivaldiNode returns the peer's coordinate state, nil for peers this
	// process does not host.
	VivaldiNode(peer int) *vivaldi.Node
}

// pairMeasurer is implemented by transports that can distinguish a real
// pair measurement from Latency's default answer; heartbeat coordinate
// updates only run on measured samples.
type pairMeasurer interface {
	Measured(a, b int) (time.Duration, bool)
}

// Config tunes the peer runtime. Defaults reproduce the paper's settings:
// 2-second heartbeats, reconciliation every third heartbeat, netDist EWMA
// with alpha 10%, TTL-down limit of 3, and 16 install chunks.
type Config struct {
	// HeartbeatPeriod is the parent-to-child heartbeat interval.
	HeartbeatPeriod time.Duration
	// ReconcileEveryBeats piggybacks the reconciliation hash on every n'th
	// heartbeat ("reconciliation runs every third heartbeat", §7.1).
	ReconcileEveryBeats int
	// LivenessMultiple: a parent is presumed unreachable after
	// HeartbeatPeriod * LivenessMultiple of silence.
	LivenessMultiple float64
	// NetDistAlpha is the EWMA weight for the netDist estimate (§4.3,
	// footnote: alpha = 10% worked well in practice).
	NetDistAlpha float64
	// MinTimeout and MaxTimeout clamp TS-list entry timeouts; TimeoutSlack
	// is added on top. TimeoutFactor scales netDist-age ("the TS list sets
	// the timeout in proportion to netDist - T.age", §4.3); values above 1
	// give each operator headroom over the most-delayed path.
	MinTimeout    time.Duration
	MaxTimeout    time.Duration
	TimeoutSlack  time.Duration
	TimeoutFactor float64
	// TTLDownMax bounds flex-down steps before a tuple is dropped (§3.3).
	// Zero disables flex-down descent entirely (an ablation setting).
	TTLDownMax int
	// MaxStage caps the staged routing policy for ablations: 1 same-tree
	// only, 2 adds up*, 3 adds flex, 4 adds flex-down (the default).
	MaxStage int
	// Syncless selects age-based indexing (§5); false selects traditional
	// timestamp indexing for comparison.
	Syncless bool
	// InstallChunks is the number of components the install multicast is
	// split into (§7.1 uses 16) on transports with no frame bound. A
	// transport that bounds a frame (Transport.MaxFrame > 0, the socket
	// backend) sizes components by encoded bytes from that bound instead,
	// so every install message fits one Send.
	InstallChunks int
	// SummaryHold is how long an interior peer may park an upstream summary
	// in its staging buffer waiting for merge partners and batchmates (see
	// stage.go) — the bound on per-hop latency coalescing adds. Co-hosted
	// queries' evictions cluster within milliseconds of each other, so a
	// short hold captures most of the batching win without disturbing
	// result phase. Zero picks the default (one hundredth of the heartbeat
	// period); a negative value disables coalescing entirely, restoring
	// the send-immediately path.
	SummaryHold time.Duration
	// SummaryBatchBytes is the staging buffer's flush threshold: a
	// destination's parked summaries flush early once their estimated wire
	// size reaches it. Capped against Transport.MaxFrame on bounded
	// transports so a flushed batch always fits one frame.
	SummaryBatchBytes int
	// WireCompat pins the fabric's transmit wire version for rolling
	// upgrades: wire.VersionNoBatch makes every frame decodable by v3
	// peers (and disables summary coalescing, whose batches have no v3
	// encoding). Zero means current (wire.Version).
	WireCompat uint8
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{
		HeartbeatPeriod:     2 * time.Second,
		ReconcileEveryBeats: 3,
		LivenessMultiple:    2.5,
		NetDistAlpha:        0.10,
		MinTimeout:          100 * time.Millisecond,
		MaxTimeout:          60 * time.Second,
		TimeoutSlack:        250 * time.Millisecond,
		TimeoutFactor:       1.5,
		TTLDownMax:          3,
		MaxStage:            4,
		Syncless:            true,
		InstallChunks:       16,
		SummaryHold:         20 * time.Millisecond,
		SummaryBatchBytes:   1200,
	}
}

// Validate normalizes the configuration and rejects nonsense. Zero-valued
// knobs pick up the paper defaults (so Config{} is usable), negative or
// out-of-range values are errors: without this a zero HeartbeatPeriod
// would panic the ticker and a zero ReconcileEveryBeats would divide by
// zero once peers are long-lived live processes. TTLDownMax and
// TimeoutSlack may legitimately be zero (ablations use both) and are only
// checked for sign; Syncless false is a meaningful mode, not a zero value.
func (c Config) Validate() (Config, error) {
	def := DefaultConfig()
	fill := func(v *time.Duration, d time.Duration, name string) error {
		if *v == 0 {
			*v = d
		}
		if *v < 0 {
			return fmt.Errorf("mortar: %s %v must be positive", name, *v)
		}
		return nil
	}
	if err := fill(&c.HeartbeatPeriod, def.HeartbeatPeriod, "HeartbeatPeriod"); err != nil {
		return c, err
	}
	if err := fill(&c.MinTimeout, def.MinTimeout, "MinTimeout"); err != nil {
		return c, err
	}
	if err := fill(&c.MaxTimeout, def.MaxTimeout, "MaxTimeout"); err != nil {
		return c, err
	}
	if c.MaxTimeout < c.MinTimeout {
		return c, fmt.Errorf("mortar: MaxTimeout %v < MinTimeout %v", c.MaxTimeout, c.MinTimeout)
	}
	if c.TimeoutSlack < 0 {
		return c, fmt.Errorf("mortar: TimeoutSlack %v must not be negative", c.TimeoutSlack)
	}
	if c.ReconcileEveryBeats == 0 {
		c.ReconcileEveryBeats = def.ReconcileEveryBeats
	}
	if c.ReconcileEveryBeats < 0 {
		return c, fmt.Errorf("mortar: ReconcileEveryBeats %d must be positive", c.ReconcileEveryBeats)
	}
	if c.LivenessMultiple == 0 {
		c.LivenessMultiple = def.LivenessMultiple
	}
	if c.LivenessMultiple <= 0 {
		return c, fmt.Errorf("mortar: LivenessMultiple %v must be positive", c.LivenessMultiple)
	}
	if c.NetDistAlpha == 0 {
		c.NetDistAlpha = def.NetDistAlpha
	}
	if c.NetDistAlpha < 0 || c.NetDistAlpha > 1 {
		return c, fmt.Errorf("mortar: NetDistAlpha %v outside [0, 1]", c.NetDistAlpha)
	}
	if c.TimeoutFactor == 0 {
		c.TimeoutFactor = def.TimeoutFactor
	}
	if c.TimeoutFactor < 0 {
		return c, fmt.Errorf("mortar: TimeoutFactor %v must not be negative", c.TimeoutFactor)
	}
	if c.TTLDownMax < 0 {
		return c, fmt.Errorf("mortar: TTLDownMax %d must not be negative", c.TTLDownMax)
	}
	if c.MaxStage == 0 {
		c.MaxStage = def.MaxStage
	}
	if c.MaxStage < 1 || c.MaxStage > 4 {
		return c, fmt.Errorf("mortar: MaxStage %d outside 1..4", c.MaxStage)
	}
	if c.InstallChunks == 0 {
		c.InstallChunks = def.InstallChunks
	}
	if c.InstallChunks < 0 {
		return c, fmt.Errorf("mortar: InstallChunks %d must be positive", c.InstallChunks)
	}
	if c.SummaryHold == 0 {
		c.SummaryHold = c.HeartbeatPeriod / 100
	}
	// Negative SummaryHold is a meaningful setting (coalescing off), not an
	// error.
	if c.SummaryBatchBytes == 0 {
		c.SummaryBatchBytes = def.SummaryBatchBytes
	}
	if c.SummaryBatchBytes < 0 {
		return c, fmt.Errorf("mortar: SummaryBatchBytes %d must be positive", c.SummaryBatchBytes)
	}
	switch c.WireCompat {
	case 0, wire.VersionNoBatch, wire.Version:
	default:
		return c, fmt.Errorf("mortar: WireCompat %d is not an encodable wire version", c.WireCompat)
	}
	return c, nil
}

// Stats aggregates fabric-wide counters for the experiment harness. The
// counters are atomic because live-runtime peers increment them from
// concurrent goroutines.
type Stats struct {
	// ResultsReported counts results emitted by query roots.
	ResultsReported atomic.Uint64
	// LateAtRoot counts summaries that reached the root after their window
	// had been reported (data lost to the result).
	LateAtRoot atomic.Uint64
	// Dropped counts tuples dropped by the routing policy (no live
	// destination or TTL exhausted).
	Dropped atomic.Uint64
	// Relayed counts tuples forwarded without merging (late at an interior
	// operator, §4.3 path).
	Relayed atomic.Uint64
	// FlexDownHops counts stage-4 descents.
	FlexDownHops atomic.Uint64
	// EpochsRetired counts completed epoch migrations: the root observed
	// the new epoch fully wired and multicast the old epoch's retirement.
	EpochsRetired atomic.Uint64
	// ControlBytes counts encoded bytes of every control-class message the
	// local peers transmitted (heartbeats, reconciliation, installs,
	// removes, topology, acks). With DataBytes it splits network load the
	// way the paper reports it — and its growth as queries are added is the
	// sub-linear sharing curve (Figure 13).
	ControlBytes atomic.Uint64
	// DataBytes counts encoded bytes of data-class messages (summary
	// envelopes).
	DataBytes atomic.Uint64
	// SharedCtlBytes is the portion of ControlBytes carried by the shared
	// mesh — heartbeats and pair-wise reconciliation — which every
	// installed query rides without adding messages of its own. The
	// remainder of ControlBytes is attributable to individual queries (see
	// Fabric.QueryTraffic).
	SharedCtlBytes atomic.Uint64
	// TuplesIngested counts raw sensor tuples fed into local peers via
	// Inject/InjectBatch; IngestBatches counts the mailbox hops that
	// carried them (an Inject is a batch of one). Their ratio is the
	// data-plane batching factor.
	TuplesIngested atomic.Uint64
	IngestBatches  atomic.Uint64
	// Upstream coalescing (stage.go). SummariesStaged counts summaries that
	// entered a staging buffer; SummariesCoalesced counts those that merged
	// into an already-parked summary (frames and bytes that never existed).
	// DataFrames counts data-class frames actually transmitted, BatchFrames
	// the subset that were multi-summary envelope batches, and
	// BatchedSummaries the summaries those batches carried. Frames saved by
	// the feature = SummariesCoalesced + (BatchedSummaries - BatchFrames).
	SummariesStaged    atomic.Uint64
	SummariesCoalesced atomic.Uint64
	DataFrames         atomic.Uint64
	BatchFrames        atomic.Uint64
	BatchedSummaries   atomic.Uint64
}

// QueryTraffic counts the bytes the local peers have transmitted on behalf
// of one named query: install/remove multicasts, topology service traffic,
// and install acks on the control side; summary envelopes on the data
// side. Heartbeats and reconciliation are deliberately absent — they are
// the shared mesh, accounted in Stats.SharedCtlBytes.
type QueryTraffic struct {
	ControlBytes atomic.Uint64
	DataBytes    atomic.Uint64
}

// Fabric is a Mortar federation: one peer per runtime slot. The same fabric
// code runs single-threaded inside the discrete-event simulator
// (runtime/simrt) or with one goroutine per peer (runtime/livert); which
// one is chosen by the runtime handed to NewFabric.
type Fabric struct {
	Rt  runtime.Runtime
	Cfg Config

	peers []*Peer
	tr    runtime.Transport
	rng   *rand.Rand
	// measure is the transport's measured-pair oracle, nil when the
	// backend cannot tell measurements from defaults.
	measure pairMeasurer

	// OnResult receives every root-reported result. Set it before
	// installing queries; under a live runtime it is invoked from the root
	// peer's goroutine and must be safe for that. To attach consumers
	// after queries are live, use Subscribe/SubscribeAll instead — those
	// are synchronized.
	OnResult func(Result)
	// Stats holds fabric-wide counters.
	Stats Stats
	// DataPath aggregates time-space list activity (inserts and in-place
	// merges) across every local instance; one shared atomic counter set
	// keeps the per-merge cost to two atomic adds.
	DataPath tslist.Counters

	// consumesBytes records whether the transport copies Frame.Bytes
	// inside Send (runtime.FrameBytesConsumer), letting send recycle its
	// encode buffer and frame immediately.
	consumesBytes bool

	// wireVer is the version byte every transmitted frame is stamped with
	// (Config.WireCompat); staging enables the hold-and-merge summary path
	// (stage.go), and batchBytes is its resolved flush threshold.
	wireVer    byte
	staging    bool
	batchBytes int

	subMu  sync.RWMutex
	subs   []subEntry
	subSeq uint64

	// trafMu guards the per-query traffic counter map; the counters
	// themselves are atomic, so the lock is only ever held for a map
	// lookup or insert.
	trafMu    sync.RWMutex
	queryTraf map[string]*QueryTraffic

	// batchMu guards batchFree, the fabric's pool of raw-tuple batch
	// slices: drivers draw from it with GetRawBatch and injectRawBatch
	// recycles every submitted batch once its tuples are absorbed, so a
	// steady-state ingest driver allocates nothing per batch.
	batchMu   sync.Mutex
	batchFree [][]tuple.Raw
}

// subEntry is one registered result subscriber; the id makes the
// subscription cancelable.
type subEntry struct {
	id uint64
	fn func(Result)
}

// emitResult fans a root result out to the OnResult hook and to every
// registered subscriber.
func (f *Fabric) emitResult(r Result) {
	if f.OnResult != nil {
		f.OnResult(r)
	}
	f.subMu.RLock()
	subs := f.subs
	f.subMu.RUnlock()
	for _, s := range subs {
		s.fn(r)
	}
}

// NewFabric creates one peer per runtime slot. clocks may be nil (perfect
// clocks) or one per peer. cfg is validated; zero-valued knobs pick up
// paper defaults — except the boolean Syncless, which a zero Config
// leaves false (timestamp indexing). Start from DefaultConfig() for the
// paper's syncless mode.
func NewFabric(rt runtime.Runtime, clocks []vclock.Clock, cfg Config) (*Fabric, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	n := rt.NumPeers()
	if n == 0 {
		return nil, fmt.Errorf("mortar: runtime has no peers")
	}
	if clocks != nil && len(clocks) != n {
		return nil, fmt.Errorf("mortar: %d clocks for %d peers", len(clocks), n)
	}
	f := &Fabric{
		Rt:        rt,
		Cfg:       cfg,
		tr:        rt.Transport(),
		rng:       rt.Rand(),
		queryTraf: map[string]*QueryTraffic{},
	}
	f.measure, _ = f.tr.(pairMeasurer)
	if bc, ok := f.tr.(runtime.FrameBytesConsumer); ok {
		f.consumesBytes = bc.ConsumesFrameBytes()
	}
	f.wireVer = wire.Version
	if cfg.WireCompat != 0 {
		f.wireVer = cfg.WireCompat
	}
	f.batchBytes = cfg.SummaryBatchBytes
	if mf := f.tr.MaxFrame(); mf > 0 && f.batchBytes > mf-mf/8 {
		// Leave headroom for the key table and frame header: the threshold
		// is checked before the entry that crosses it is encoded.
		f.batchBytes = mf - mf/8
	}
	// Envelope batches exist only at the current wire version, so a
	// compat-pinned fabric sends every summary the moment it routes.
	f.staging = cfg.SummaryHold > 0 && f.wireVer >= wire.Version
	vr, _ := rt.(vivaldiRuntime)
	for i := 0; i < n; i++ {
		ck := vclock.Perfect()
		if clocks != nil {
			ck = clocks[i]
		}
		p := newPeer(f, i, rt.Clock(i), ck)
		if vr != nil {
			p.nc = vr.VivaldiNode(i)
		}
		f.peers = append(f.peers, p)
		f.tr.Handle(i, p.deliver)
	}
	return f, nil
}

// NumPeers returns the federation size.
func (f *Fabric) NumPeers() int { return len(f.peers) }

// Peer returns the i'th peer.
func (f *Fabric) Peer(i int) *Peer { return f.peers[i] }

// SetDown disconnects (true) or reconnects (false) a peer.
func (f *Fabric) SetDown(i int, down bool) { f.tr.SetDown(i, down) }

// Down reports whether a peer is disconnected.
func (f *Fabric) Down(i int) bool { return f.tr.Down(i) }

// LiveCount returns the number of connected peers.
func (f *Fabric) LiveCount() int {
	n := 0
	for i := range f.peers {
		if !f.Down(i) {
			n++
		}
	}
	return n
}

// Inject delivers a raw sensor tuple to a peer's local source stream, from
// any goroutine. The tuple's At field is stamped by the peer in its own
// windowing frame. An out-of-range peer panics on every backend (the live
// runtime's Exec would otherwise silently drop the tuple).
func (f *Fabric) Inject(peer int, raw tuple.Raw) {
	if peer < 0 || peer >= len(f.peers) {
		panic(fmt.Sprintf("mortar: Inject peer %d out of range [0,%d)", peer, len(f.peers)))
	}
	f.Rt.Exec(peer, func() { f.peers[peer].injectRaw(raw) })
}

// InjectBatch delivers a batch of raw sensor tuples to one peer in a
// single execution hop: one mailbox post and one lock acquisition on the
// live backends, however many tuples the batch carries — the data-plane
// ingest fast path. Ownership of the slice transfers permanently: once the
// peer has absorbed the tuples the slice is recycled into the fabric's
// batch pool for the next GetRawBatch, so the caller must never touch a
// submitted slice again. An out-of-range peer panics, like Inject.
func (f *Fabric) InjectBatch(peer int, raws []tuple.Raw) {
	if peer < 0 || peer >= len(f.peers) {
		panic(fmt.Sprintf("mortar: InjectBatch peer %d out of range [0,%d)", peer, len(f.peers)))
	}
	if len(raws) == 0 {
		return
	}
	f.Rt.Exec(peer, func() { f.peers[peer].injectRawBatch(raws) })
}

// maxFreeBatches bounds the batch pool; beyond it, retired batches fall to
// the garbage collector.
const maxFreeBatches = 64

// GetRawBatch returns a zero-length batch with capacity for at least n
// raws, reusing a slice recycled by an earlier InjectBatch when one is
// available. Pooled batches are not cleared — they are meant to be filled
// by appending before submission. Using GetRawBatch makes a steady-state
// ingest driver allocation-free per batch; plain make works too, at one
// slice allocation (and its eventual GC scan) per batch.
func (f *Fabric) GetRawBatch(n int) []tuple.Raw {
	f.batchMu.Lock()
	for len(f.batchFree) > 0 {
		b := f.batchFree[len(f.batchFree)-1]
		f.batchFree = f.batchFree[:len(f.batchFree)-1]
		if cap(b) >= n {
			f.batchMu.Unlock()
			return b
		}
		// Too small for this request; drop it rather than let undersized
		// slices cycle forever.
	}
	f.batchMu.Unlock()
	return make([]tuple.Raw, 0, n)
}

// putRawBatch recycles an absorbed batch slice. Called from the peer's
// serialization domain after injectRawBatch copied every tuple out.
func (f *Fabric) putRawBatch(b []tuple.Raw) {
	f.batchMu.Lock()
	if len(f.batchFree) < maxFreeBatches {
		f.batchFree = append(f.batchFree, b[:0])
	}
	f.batchMu.Unlock()
}

// framePool recycles the runtime.Frame envelopes handed to transports that
// consume them synchronously (runtime.FrameBytesConsumer).
var framePool = sync.Pool{New: func() any { return new(runtime.Frame) }}

// send transmits a control or data message between peers over the runtime
// transport. The message is encoded exactly once here, into a pooled
// buffer: the encoded length is the size every backend charges, and on
// socket backends the bytes travel alongside the decoded payload
// (runtime.Frame) to be transmitted without re-encoding. Transports that
// consume the frame synchronously get a pooled frame too, making the
// steady-state transmit path allocation-free on the fabric side;
// in-process backends retain the frame in the receiver's mailbox (payload
// only — the encoding existed just to size the message), so they get a
// fresh frame with nil Bytes and the buffer still recycles immediately. A
// message the codec cannot represent is dropped — an unencodable message
// could never cross a real wire.
func (f *Fabric) send(from, to int, class runtime.Class, payload any) {
	w := wire.GetBuffer()
	if err := wire.EncodeMessageVersion(w, payload, f.wireVer); err != nil {
		wire.PutBuffer(w)
		f.Stats.Dropped.Add(1)
		return
	}
	f.account(payload, class, w.Len())
	if f.consumesBytes {
		fr := framePool.Get().(*runtime.Frame)
		fr.Payload, fr.Bytes = payload, w.Bytes()
		f.tr.Send(from, to, class, w.Len(), fr)
		fr.Payload, fr.Bytes = nil, nil
		framePool.Put(fr)
	} else {
		f.tr.Send(from, to, class, w.Len(), &runtime.Frame{Payload: payload})
	}
	wire.PutBuffer(w)
}

// account attributes one transmitted message's encoded bytes: data bytes
// to the query whose summary the envelope carries, control bytes either to
// the query a management message names or to the shared mesh (heartbeats
// and reconciliation serve every installed query at once — the sharing the
// paper's sub-linear overhead claim rests on).
func (f *Fabric) account(payload any, class runtime.Class, size int) {
	sz := uint64(size)
	if class == runtime.ClassData {
		f.Stats.DataBytes.Add(sz)
		f.Stats.DataFrames.Add(1)
	} else {
		f.Stats.ControlBytes.Add(sz)
	}
	switch m := payload.(type) {
	case *envelope:
		f.queryTraffic(m.S.Query).DataBytes.Add(sz)
	case *wire.EnvelopeBatch:
		f.Stats.BatchFrames.Add(1)
		f.Stats.BatchedSummaries.Add(uint64(len(m.Envelopes)))
		// Split the frame's bytes evenly across the summaries it carries;
		// the rounding remainder lands on the first entry's query.
		per := sz / uint64(len(m.Envelopes))
		for i := range m.Envelopes {
			b := per
			if i == 0 {
				b += sz - per*uint64(len(m.Envelopes))
			}
			f.queryTraffic(m.Envelopes[i].S.Query).DataBytes.Add(b)
		}
	case msgInstall:
		f.queryTraffic(m.Meta.Name).ControlBytes.Add(sz)
	case msgRemove:
		f.queryTraffic(m.Name).ControlBytes.Add(sz)
	case msgTopoRequest:
		f.queryTraffic(m.Query).ControlBytes.Add(sz)
	case msgTopoReply:
		f.queryTraffic(m.Query).ControlBytes.Add(sz)
	case msgInstallAck:
		f.queryTraffic(m.Query).ControlBytes.Add(sz)
	default:
		// Heartbeats and reconciliation summaries/defs: the shared mesh.
		if class == runtime.ClassControl {
			f.Stats.SharedCtlBytes.Add(sz)
		}
	}
}

// queryTraffic returns the named query's traffic counters, creating them on
// first use. Counters survive removal — they are a cumulative ledger, and
// the serving plane reports traffic for queries it has already torn down.
func (f *Fabric) queryTraffic(name string) *QueryTraffic {
	f.trafMu.RLock()
	qt := f.queryTraf[name]
	f.trafMu.RUnlock()
	if qt != nil {
		return qt
	}
	f.trafMu.Lock()
	defer f.trafMu.Unlock()
	if qt = f.queryTraf[name]; qt == nil {
		qt = &QueryTraffic{}
		f.queryTraf[name] = qt
	}
	return qt
}

// QueryTraffic reports the cumulative bytes the local peers have sent on
// behalf of one query (see the QueryTraffic type for what is and is not
// attributed). Safe from any goroutine.
func (f *Fabric) QueryTraffic(name string) (controlBytes, dataBytes uint64) {
	f.trafMu.RLock()
	qt := f.queryTraf[name]
	f.trafMu.RUnlock()
	if qt == nil {
		return 0, 0
	}
	return qt.ControlBytes.Load(), qt.DataBytes.Load()
}

// Compile plans a query over the given member peers (all peers when members
// is nil) using their network coordinates, producing bf-ary trees with a
// tree set of size d rooted at the issuing peer. Call from the driving
// goroutine (planning uses the runtime's unsynchronized random source).
func (f *Fabric) Compile(meta QueryMeta, members []int, coords []cluster.Point, bf, d int) (*QueryDef, error) {
	return f.CompileWith(meta, members, coords, bf, d, f.rng)
}

// CompileWith is Compile with an explicit random source, for callers that
// plan off the driving goroutine (the replanning monitor) and must not
// share the runtime's unsynchronized rng.
func (f *Fabric) CompileWith(meta QueryMeta, members []int, coords []cluster.Point, bf, d int, rng *rand.Rand) (*QueryDef, error) {
	if members == nil {
		members = make([]int, f.NumPeers())
		for i := range members {
			members[i] = i
		}
	}
	if len(coords) != len(members) {
		return nil, fmt.Errorf("mortar: %d coords for %d members", len(coords), len(members))
	}
	rootIdx := -1
	for i, m := range members {
		if m == meta.Root {
			rootIdx = i
			break
		}
	}
	if rootIdx < 0 {
		return nil, fmt.Errorf("mortar: root %d not in member set", meta.Root)
	}
	trees := plan.Build(coords, rootIdx, bf, d, rng)
	def := &QueryDef{Meta: meta, Trees: trees}
	def.Members = members
	return def, nil
}

// Install starts the chunked install multicast from the issuing peer
// (§6): the primary tree is broken into components — InstallChunks of them
// on unbounded transports, or as many as Transport.MaxFrame-sized messages
// require on bounded ones — each multicast in parallel down its tree
// edges. Reconciliation guarantees eventual installation on nodes the
// multicast misses.
func (f *Fabric) Install(issuer int, def *QueryDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	if issuer != def.Meta.Root {
		return fmt.Errorf("mortar: issuer %d must host the root operator (root %d)", issuer, def.Meta.Root)
	}
	if !f.Rt.Exec(issuer, func() { f.peers[issuer].startInstall(def) }) {
		return fmt.Errorf("mortar: runtime is shut down")
	}
	return nil
}

// Remove multicasts removal of a query — every epoch of it — from the
// issuing peer, using the cached definition at the root for chunking. A
// removal whose seq does not exceed an instance's install seq is a
// documented no-op at every peer: a stale or replayed remove can never
// undo a newer install. Call from the driving goroutine, never from
// inside a peer callback.
func (f *Fabric) Remove(issuer int, name string, seq uint64) error {
	var err error
	if !runtime.ExecWait(f.Rt, issuer, func() {
		err = f.peers[issuer].startRemove(name, seq, wire.AllEpochs)
	}) {
		return fmt.Errorf("mortar: runtime is shut down")
	}
	return err
}

// InstalledCount returns how many peers currently host an operator for the
// query — any epoch of it (Figure 11's y-axis). It reads peer state
// directly: call it only while the runtime is quiescent (the simulator
// between steps, or a live runtime after Shutdown).
func (f *Fabric) InstalledCount(name string) int {
	n := 0
	for _, p := range f.peers {
		for k := range p.insts {
			if k.name == name {
				n++
				break
			}
		}
	}
	return n
}

// WiredCount returns how many peers host at least one wired operator for
// the query. Quiescent-only, like InstalledCount.
func (f *Fabric) WiredCount(name string) int {
	n := 0
	for _, p := range f.peers {
		for k, inst := range p.insts {
			if k.name == name && inst.wired {
				n++
				break
			}
		}
	}
	return n
}

// EpochInstalledCount returns how many peers host the given epoch of the
// query. Quiescent-only, like InstalledCount.
func (f *Fabric) EpochInstalledCount(name string, epoch uint32) int {
	n := 0
	for _, p := range f.peers {
		if _, ok := p.insts[instKey{name: name, epoch: epoch}]; ok {
			n++
		}
	}
	return n
}

// EpochWiredCount returns how many of those operators know their tree
// positions. Quiescent-only.
func (f *Fabric) EpochWiredCount(name string, epoch uint32) int {
	n := 0
	for _, p := range f.peers {
		if inst, ok := p.insts[instKey{name: name, epoch: epoch}]; ok && inst.wired {
			n++
		}
	}
	return n
}

// EpochCounts reports, live-safely, how many of this process's local peers
// host (and have wired) the given epoch: each count runs inside the
// peer's serialization domain, so callers may poll it while the federation
// is running — how tests watch a migration complete. Peers hosted by other
// processes are not visible.
func (f *Fabric) EpochCounts(name string, epoch uint32) (installed, wired int) {
	for i, p := range f.peers {
		p := p
		runtime.ExecWait(f.Rt, i, func() {
			if inst, ok := p.insts[instKey{name: name, epoch: epoch}]; ok {
				installed++
				if inst.wired {
					wired++
				}
			}
		})
	}
	return installed, wired
}

// InstalledAnywhere reports, live-safely, whether any local peer still
// hosts any epoch of the query — how a removal is watched draining to
// completion while the federation keeps running.
func (f *Fabric) InstalledAnywhere(name string) bool {
	found := false
	for i, p := range f.peers {
		p := p
		runtime.ExecWait(f.Rt, i, func() {
			for k := range p.insts {
				if k.name == name {
					found = true
					break
				}
			}
		})
		if found {
			return true
		}
	}
	return false
}
