package mortar

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/netem"
	"repro/internal/plan"
	"repro/internal/tuple"
	"repro/internal/vclock"
)

// Config tunes the peer runtime. Defaults reproduce the paper's settings:
// 2-second heartbeats, reconciliation every third heartbeat, netDist EWMA
// with alpha 10%, TTL-down limit of 3, and 16 install chunks.
type Config struct {
	// HeartbeatPeriod is the parent-to-child heartbeat interval.
	HeartbeatPeriod time.Duration
	// ReconcileEveryBeats piggybacks the reconciliation hash on every n'th
	// heartbeat ("reconciliation runs every third heartbeat", §7.1).
	ReconcileEveryBeats int
	// LivenessMultiple: a parent is presumed unreachable after
	// HeartbeatPeriod * LivenessMultiple of silence.
	LivenessMultiple float64
	// NetDistAlpha is the EWMA weight for the netDist estimate (§4.3,
	// footnote: alpha = 10% worked well in practice).
	NetDistAlpha float64
	// MinTimeout and MaxTimeout clamp TS-list entry timeouts; TimeoutSlack
	// is added on top. TimeoutFactor scales netDist-age ("the TS list sets
	// the timeout in proportion to netDist - T.age", §4.3); values above 1
	// give each operator headroom over the most-delayed path.
	MinTimeout    time.Duration
	MaxTimeout    time.Duration
	TimeoutSlack  time.Duration
	TimeoutFactor float64
	// TTLDownMax bounds flex-down steps before a tuple is dropped (§3.3).
	TTLDownMax int
	// MaxStage caps the staged routing policy for ablations: 1 same-tree
	// only, 2 adds up*, 3 adds flex, 4 adds flex-down (the default).
	MaxStage int
	// Syncless selects age-based indexing (§5); false selects traditional
	// timestamp indexing for comparison.
	Syncless bool
	// InstallChunks is the number of components the install multicast is
	// split into (§7.1 uses 16).
	InstallChunks int
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{
		HeartbeatPeriod:     2 * time.Second,
		ReconcileEveryBeats: 3,
		LivenessMultiple:    2.5,
		NetDistAlpha:        0.10,
		MinTimeout:          100 * time.Millisecond,
		MaxTimeout:          60 * time.Second,
		TimeoutSlack:        250 * time.Millisecond,
		TimeoutFactor:       1.5,
		TTLDownMax:          3,
		MaxStage:            4,
		Syncless:            true,
		InstallChunks:       16,
	}
}

// Stats aggregates fabric-wide counters for the experiment harness.
type Stats struct {
	// ResultsReported counts results emitted by query roots.
	ResultsReported uint64
	// LateAtRoot counts summaries that reached the root after their window
	// had been reported (data lost to the result).
	LateAtRoot uint64
	// Dropped counts tuples dropped by the routing policy (no live
	// destination or TTL exhausted).
	Dropped uint64
	// Relayed counts tuples forwarded without merging (late at an interior
	// operator, §4.3 path).
	Relayed uint64
	// FlexDownHops counts stage-4 descents.
	FlexDownHops uint64
}

// Fabric is an emulated Mortar federation: one peer per host of the
// underlying topology, driven by a shared event simulator.
type Fabric struct {
	Sim *eventsim.Sim
	Net *netem.Network
	Cfg Config

	peers  []*Peer
	hosts  []netem.NodeID
	peerOf map[netem.NodeID]int
	rng    *rand.Rand

	// OnResult receives every root-reported result.
	OnResult func(Result)
	// Stats holds fabric-wide counters.
	Stats Stats
}

// NewFabric creates one peer per host. clocks may be nil (perfect clocks)
// or one per host.
func NewFabric(net *netem.Network, clocks []vclock.Clock, cfg Config) (*Fabric, error) {
	hosts := net.Topology().Hosts()
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mortar: topology has no hosts")
	}
	if clocks != nil && len(clocks) != len(hosts) {
		return nil, fmt.Errorf("mortar: %d clocks for %d hosts", len(clocks), len(hosts))
	}
	f := &Fabric{
		Sim:    net.Sim(),
		Net:    net,
		Cfg:    cfg,
		hosts:  hosts,
		peerOf: make(map[netem.NodeID]int, len(hosts)),
		rng:    rand.New(rand.NewSource(net.Sim().Rand().Int63())),
	}
	for i, h := range hosts {
		f.peerOf[h] = i
		ck := vclock.Perfect()
		if clocks != nil {
			ck = clocks[i]
		}
		p := newPeer(f, i, h, ck)
		f.peers = append(f.peers, p)
		h := h
		net.Handle(h, p.deliver)
	}
	return f, nil
}

// NumPeers returns the federation size.
func (f *Fabric) NumPeers() int { return len(f.peers) }

// Peer returns the i'th peer.
func (f *Fabric) Peer(i int) *Peer { return f.peers[i] }

// SetDown disconnects (true) or reconnects (false) a peer's host.
func (f *Fabric) SetDown(i int, down bool) { f.Net.SetDown(f.hosts[i], down) }

// Down reports whether a peer is disconnected.
func (f *Fabric) Down(i int) bool { return f.Net.Down(f.hosts[i]) }

// LiveCount returns the number of connected peers.
func (f *Fabric) LiveCount() int {
	n := 0
	for i := range f.peers {
		if !f.Down(i) {
			n++
		}
	}
	return n
}

// Inject delivers a raw sensor tuple to a peer's local source stream. The
// tuple's At field is stamped by the peer in its own windowing frame.
func (f *Fabric) Inject(peer int, raw tuple.Raw) { f.peers[peer].injectRaw(raw) }

// send transmits a control or data message between peers over the emulated
// network, charging the encoded size.
func (f *Fabric) send(from, to int, class netem.TrafficClass, payload any) {
	f.Net.Send(f.hosts[from], f.hosts[to], class, msgSize(payload), payload)
}

// Compile plans a query over the given member peers (all peers when members
// is nil) using their network coordinates, producing bf-ary trees with a
// tree set of size d rooted at the issuing peer.
func (f *Fabric) Compile(meta QueryMeta, members []int, coords []cluster.Point, bf, d int) (*QueryDef, error) {
	if members == nil {
		members = make([]int, f.NumPeers())
		for i := range members {
			members[i] = i
		}
	}
	if len(coords) != len(members) {
		return nil, fmt.Errorf("mortar: %d coords for %d members", len(coords), len(members))
	}
	rootIdx := -1
	for i, m := range members {
		if m == meta.Root {
			rootIdx = i
			break
		}
	}
	if rootIdx < 0 {
		return nil, fmt.Errorf("mortar: root %d not in member set", meta.Root)
	}
	trees := plan.Build(coords, rootIdx, bf, d, f.rng)
	def := &QueryDef{Meta: meta, Trees: trees}
	def.Members = members
	return def, nil
}

// Install starts the chunked install multicast from the issuing peer
// (§6): the primary tree is broken into InstallChunks components, each
// multicast in parallel down its tree edges. Reconciliation guarantees
// eventual installation on nodes the multicast misses.
func (f *Fabric) Install(issuer int, def *QueryDef) error {
	if err := def.Validate(); err != nil {
		return err
	}
	if issuer != def.Meta.Root {
		return fmt.Errorf("mortar: issuer %d must host the root operator (root %d)", issuer, def.Meta.Root)
	}
	f.peers[issuer].startInstall(def)
	return nil
}

// Remove multicasts removal of a query from the issuing peer, using the
// cached definition at the root for chunking.
func (f *Fabric) Remove(issuer int, name string, seq uint64) error {
	return f.peers[issuer].startRemove(name, seq)
}

// InstalledCount returns how many peers currently host an operator for the
// query (Figure 11's y-axis).
func (f *Fabric) InstalledCount(name string) int {
	n := 0
	for _, p := range f.peers {
		if _, ok := p.insts[name]; ok {
			n++
		}
	}
	return n
}

// WiredCount returns how many installed operators know their tree
// positions.
func (f *Fabric) WiredCount(name string) int {
	n := 0
	for _, p := range f.peers {
		if inst, ok := p.insts[name]; ok && inst.wired {
			n++
		}
	}
	return n
}
