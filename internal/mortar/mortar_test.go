package mortar

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
	"repro/internal/vclock"
)

// testbed builds a small fabric over a simulated transit-stub topology.
func testbed(t *testing.T, hosts int, seed int64, cfg Config, clocks []vclock.Clock) (*Fabric, *simrt.Runtime) {
	t.Helper()
	rt := simrt.NewPaper(seed, hosts, simrt.TopoOptions{Stubs: 8, Transits: 2})
	fab, err := NewFabric(rt, clocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fab, rt
}

// uniformCoords gives every peer a random 2-D coordinate (tests don't need
// network awareness).
func uniformCoords(n int, seed int64) []cluster.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]cluster.Point, n)
	for i := range out {
		out[i] = cluster.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	return out
}

// sumQuery compiles and installs a 1s/1s sum query over all peers, rooted
// at peer 0, and starts per-peer sensors emitting value 1 every second
// (the paper's §7.2 microbenchmark).
func sumQuery(t *testing.T, fab *Fabric, rt *simrt.Runtime, bf, d int) *QueryDef {
	t.Helper()
	meta := QueryMeta{
		Name:      "sum1",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(fab.NumPeers(), 7), bf, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fab.NumPeers(); i++ {
		startSensor(fab, rt, i)
	}
	return def
}

// startSensor emits value 1 every second from the given peer, with a
// per-peer phase offset so sensors are not phase-locked to window
// boundaries (as on a real testbed).
func startSensor(fab *Fabric, rt *simrt.Runtime, i int) {
	phase := time.Duration(137*(i+1)%997)*time.Millisecond + 500*time.Microsecond
	rt.After(phase, func() {
		rt.Every(time.Second, func() {
			fab.Inject(i, tuple.Raw{Vals: []float64{1}})
		})
	})
}

func TestInstallCoversAllLiveNodes(t *testing.T) {
	fab, rt := testbed(t, 60, 1, DefaultConfig(), nil)
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(5 * time.Second)
	if got := fab.InstalledCount("sum1"); got != 60 {
		t.Fatalf("installed = %d, want 60", got)
	}
	if got := fab.WiredCount("sum1"); got != 60 {
		t.Fatalf("wired = %d, want 60", got)
	}
}

func TestSumQueryReachesFullCompleteness(t *testing.T) {
	fab, rt := testbed(t, 60, 2, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(60 * time.Second)
	if len(results) < 20 {
		t.Fatalf("only %d results", len(results))
	}
	// After warm-up the root should reflect all 60 peers, both in the
	// completeness count and in the summed value.
	late := results[len(results)-5:]
	for _, r := range late {
		if r.Count != 60 {
			t.Fatalf("completeness count = %d, want 60 (result %+v)", r.Count, r)
		}
		if r.Value.(float64) != 60 {
			t.Fatalf("sum = %v, want 60", r.Value)
		}
	}
}

func TestResultLatencyBounded(t *testing.T) {
	fab, rt := testbed(t, 60, 3, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	def := sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(45 * time.Second)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results[5:] {
		due := def.Meta.IssuedSim + time.Duration(r.WindowIndex+1)*time.Second
		lat := r.At - due
		if lat < 0 || lat > 10*time.Second {
			t.Fatalf("result latency %v out of range for window %d", lat, r.WindowIndex)
		}
	}
}

func TestWindowIndicesAdvanceMonotonically(t *testing.T) {
	fab, rt := testbed(t, 30, 4, DefaultConfig(), nil)
	var idxs []int64
	fab.OnResult = func(r Result) { idxs = append(idxs, r.WindowIndex) }
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(30 * time.Second)
	for i := 1; i < len(idxs); i++ {
		if idxs[i] <= idxs[i-1] {
			t.Fatalf("window indices not strictly increasing: %v", idxs)
		}
	}
}

func TestFailureReroutesAroundDeadParents(t *testing.T) {
	cfg := DefaultConfig()
	fab, rt := testbed(t, 60, 5, cfg, nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	sumQuery(t, fab, rt, 4, 4)
	rt.RunFor(15 * time.Second)

	// Disconnect 20% of non-root peers.
	rng := rand.New(rand.NewSource(5))
	down := map[int]bool{}
	for len(down) < 12 {
		v := 1 + rng.Intn(59)
		if !down[v] {
			down[v] = true
			fab.SetDown(v, true)
		}
	}
	results = nil
	rt.RunFor(40 * time.Second)
	if len(results) < 10 {
		t.Fatalf("only %d results during failure", len(results))
	}
	// Steady-state completeness should reflect nearly all live peers (48).
	tail := results[len(results)-5:]
	for _, r := range tail {
		if r.Count < 44 {
			t.Fatalf("completeness %d of 48 live peers after failures", r.Count)
		}
	}
	// Reconnect: completeness returns to 60.
	for v := range down {
		fab.SetDown(v, false)
	}
	results = nil
	rt.RunFor(40 * time.Second)
	tail = results[len(results)-3:]
	for _, r := range tail {
		if r.Count != 60 {
			t.Fatalf("completeness %d after recovery, want 60", r.Count)
		}
	}
}

func TestReconciliationInstallsOnRecoveredNodes(t *testing.T) {
	fab, rt := testbed(t, 40, 6, DefaultConfig(), nil)
	// Disconnect 10 peers before install.
	for v := 5; v < 15; v++ {
		fab.SetDown(v, true)
	}
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(10 * time.Second)
	got := fab.InstalledCount("sum1")
	if got > 30 {
		t.Fatalf("installed %d while 10 peers down", got)
	}
	// Reconnect; reconciliation must install on all, eventually.
	for v := 5; v < 15; v++ {
		fab.SetDown(v, false)
	}
	rt.RunFor(60 * time.Second)
	if got := fab.InstalledCount("sum1"); got != 40 {
		t.Fatalf("installed = %d after recovery, want 40", got)
	}
	if got := fab.WiredCount("sum1"); got != 40 {
		t.Fatalf("wired = %d after recovery, want 40", got)
	}
}

func TestRemoveEventuallyEverywhere(t *testing.T) {
	fab, rt := testbed(t, 40, 7, DefaultConfig(), nil)
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(5 * time.Second)
	// Disconnect a few peers so they miss the removal multicast.
	for v := 20; v < 25; v++ {
		fab.SetDown(v, true)
	}
	if err := fab.Remove(0, "sum1", 2); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10 * time.Second)
	remaining := fab.InstalledCount("sum1")
	if remaining == 0 {
		t.Fatal("down peers should still hold the query")
	}
	for v := 20; v < 25; v++ {
		fab.SetDown(v, false)
	}
	rt.RunFor(120 * time.Second)
	if got := fab.InstalledCount("sum1"); got != 0 {
		t.Fatalf("%d peers still hold the removed query", got)
	}
}

func TestRemoveRequiresDefinition(t *testing.T) {
	fab, _ := testbed(t, 10, 8, DefaultConfig(), nil)
	if err := fab.Remove(3, "nope", 1); err == nil {
		t.Fatal("remove without definition must fail")
	}
}

func TestInstallValidation(t *testing.T) {
	fab, _ := testbed(t, 10, 9, DefaultConfig(), nil)
	meta := QueryMeta{
		Name:   "q",
		OpName: "sum",
		Window: tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:   0,
	}
	def, err := fab.Compile(meta, nil, uniformCoords(10, 1), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(3, def); err == nil {
		t.Fatal("install from non-root issuer must fail")
	}
	bad := *def
	bad.Meta.OpName = "bogus"
	if err := fab.Install(0, &bad); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestSynclessToleratesClockOffset(t *testing.T) {
	// Give every peer except the root a large offset; syncless results
	// should still aggregate everyone into the right windows.
	n := 40
	rng := rand.New(rand.NewSource(10))
	clocks := make([]vclock.Clock, n)
	clocks[0] = vclock.Perfect()
	for i := 1; i < n; i++ {
		off := time.Duration(rng.Intn(600)-300) * time.Second
		clocks[i] = vclock.Clock{Offset: off, Skew: 1}
	}
	cfg := DefaultConfig()
	fab, rt := testbed(t, n, 10, cfg, clocks)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(45 * time.Second)
	if len(results) < 10 {
		t.Fatalf("only %d results", len(results))
	}
	tail := results[len(results)-5:]
	for _, r := range tail {
		if r.Count < n-1 {
			t.Fatalf("syncless completeness %d, want >= %d", r.Count, n-1)
		}
	}
}

func TestTimestampModeSuffersUnderOffset(t *testing.T) {
	n := 40
	rng := rand.New(rand.NewSource(11))
	clocks := make([]vclock.Clock, n)
	clocks[0] = vclock.Perfect()
	for i := 1; i < n; i++ {
		off := time.Duration(rng.Intn(600)-300) * time.Second
		clocks[i] = vclock.Clock{Offset: off, Skew: 1}
	}
	cfg := DefaultConfig()
	cfg.Syncless = false
	fab, rt := testbed(t, n, 11, cfg, clocks)
	counts := map[int64]int{}
	fab.OnResult = func(r Result) {
		if r.Count > counts[r.WindowIndex] {
			counts[r.WindowIndex] = r.Count
		}
	}
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(45 * time.Second)
	// With +-300s offsets and 1s windows, data lands in wildly wrong
	// windows: no window near the true range should see full completeness.
	full := 0
	for idx, c := range counts {
		if idx >= 0 && idx < 45 && c == n {
			full++
		}
	}
	if full > 0 {
		t.Fatalf("timestamp mode achieved full completeness despite offsets (%d windows)", full)
	}
}

func TestScopedQueryOnlyInvolvesMembers(t *testing.T) {
	fab, rt := testbed(t, 30, 12, DefaultConfig(), nil)
	members := []int{0, 3, 4, 9, 12, 17, 21, 25}
	meta := QueryMeta{
		Name:      "scoped",
		Seq:       1,
		OpName:    "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, err := fab.Compile(meta, members, uniformCoords(len(members), 3), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	var last Result
	fab.OnResult = func(r Result) { last = r }
	for _, m := range members {
		startSensor(fab, rt, m)
	}
	// Non-members also produce data; it must not leak into the query.
	startSensor(fab, rt, 5)
	rt.RunFor(30 * time.Second)
	if got := fab.InstalledCount("scoped"); got != len(members) {
		t.Fatalf("installed on %d peers, want %d", got, len(members))
	}
	if last.Value == nil || last.Value.(float64) != float64(len(members)) {
		t.Fatalf("count = %v, want %d", last.Value, len(members))
	}
}

func TestFilterKeySelectsTuples(t *testing.T) {
	fab, rt := testbed(t, 12, 13, DefaultConfig(), nil)
	meta := QueryMeta{
		Name:      "sel",
		Seq:       1,
		OpName:    "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		FilterKey: "wanted",
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(12, 2), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	var last Result
	fab.OnResult = func(r Result) {
		if r.Value != nil {
			last = r
		}
	}
	for i := 0; i < 12; i++ {
		i := i
		phase := time.Duration(137*(i+1)%997) * time.Millisecond
		rt.After(phase, func() {
			rt.Every(time.Second, func() {
				fab.Inject(i, tuple.Raw{Key: "wanted", Vals: []float64{1}})
				fab.Inject(i, tuple.Raw{Key: "other", Vals: []float64{1}})
			})
		})
	}
	rt.RunFor(20 * time.Second)
	if last.Value == nil || last.Value.(float64) != 12 {
		t.Fatalf("filtered count = %v, want 12", last.Value)
	}
}

func TestBoundaryTuplesKeepCompletenessDuringStalls(t *testing.T) {
	fab, rt := testbed(t, 12, 14, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	meta := QueryMeta{
		Name:      "stall",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, _ := fab.Compile(meta, nil, uniformCoords(12, 4), 3, 2)
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	// All peers emit for 10s; then peer 1 goes silent (stalls) while
	// others continue.
	for i := 0; i < 12; i++ {
		i := i
		phase := time.Duration(137*(i+1)%997) * time.Millisecond
		rt.After(phase, func() {
			rt.Every(time.Second, func() {
				if i == 1 && rt.Now() > 10*time.Second {
					return
				}
				fab.Inject(i, tuple.Raw{Vals: []float64{1}})
			})
		})
	}
	rt.RunFor(30 * time.Second)
	tail := results[len(results)-3:]
	for _, r := range tail {
		if r.Value.(float64) != 11 {
			t.Fatalf("sum = %v, want 11 (stalled peer contributes no value)", r.Value)
		}
		if r.Count != 12 {
			t.Fatalf("completeness = %d, want 12 (boundary tuples keep the stalled peer counted)", r.Count)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	fab, rt := testbed(t, 30, 15, DefaultConfig(), nil)
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(20 * time.Second)
	if fab.Stats.ResultsReported.Load() == 0 {
		t.Fatal("no results counted")
	}
}

func TestHeartbeatTrafficIsAccounted(t *testing.T) {
	fab, rt := testbed(t, 30, 16, DefaultConfig(), nil)
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(30 * time.Second)
	ctl := rt.ControlBytes()
	data := rt.DataBytes()
	if ctl == 0 || data == 0 {
		t.Fatalf("traffic accounting: control %d data %d", ctl, data)
	}
}
