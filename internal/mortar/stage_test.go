package mortar

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// coalesceRun executes the §7.2 microbenchmark with three co-hosted sum
// queries (the multi-tenant shape where hold-and-merge pays: every peer
// emits several summaries per window) and returns the fabric for counter
// inspection plus the per-query sums observed once warm.
func coalesceRun(t *testing.T, cfg Config) (*Fabric, map[string]float64, map[string]int) {
	t.Helper()
	fab, rt := testbed(t, 60, 11, cfg, nil)
	sums := map[string]float64{}
	counts := map[string]int{}
	fab.OnResult = func(r Result) {
		// Keep the last warm result per query.
		if r.At > 20*time.Second {
			sums[r.Query] = r.Value.(float64)
			counts[r.Query] = r.Count
		}
	}
	for qi := 0; qi < 3; qi++ {
		meta := QueryMeta{
			Name:      fmt.Sprintf("sum%d", qi),
			Seq:       1,
			OpName:    "sum",
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			Root:      0,
			IssuedSim: rt.Now(),
		}
		// A pinned planning rng gives every query the same trees — the
		// multi-tenant shape where co-hosted queries share next-hops and
		// their summaries ride one frame.
		def, err := fab.CompileWith(meta, nil, uniformCoords(fab.NumPeers(), 7), 4, 2,
			rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		if err := fab.Install(0, def); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < fab.NumPeers(); i++ {
		startSensor(fab, rt, i)
	}
	rt.RunFor(30 * time.Second)
	return fab, sums, counts
}

// The tentpole claim at the unit level: with hold-and-merge on (the
// default), a multi-query federation moves at least 3x fewer data-class
// frames than the send-immediately ablation while reporting the identical
// warm results. Summaries must actually merge in staging buffers and
// leave in multi-summary batches, not merely be delayed.
func TestCoalescingSavesFrames(t *testing.T) {
	off := DefaultConfig()
	off.SummaryHold = -1 // ablation: transmit the moment the policy routes
	fabOff, sumsOff, countsOff := coalesceRun(t, off)

	// A batch-oriented hold: wide enough that an interior peer's window
	// boundary work — its own eviction plus every child's summaries for
	// the three queries — lands in one staging cycle. The default hold is
	// deliberately smaller (latency first); the knob trades the two.
	onCfg := DefaultConfig()
	onCfg.SummaryHold = 200 * time.Millisecond
	fabOn, sumsOn, countsOn := coalesceRun(t, onCfg)

	for qi := 0; qi < 3; qi++ {
		q := fmt.Sprintf("sum%d", qi)
		if countsOn[q] != 60 || countsOff[q] != 60 {
			t.Fatalf("%s warm completeness: staged %d, unstaged %d, want 60", q, countsOn[q], countsOff[q])
		}
		if sumsOn[q] != sumsOff[q] {
			t.Fatalf("%s warm sum diverged: staged %v, unstaged %v", q, sumsOn[q], sumsOff[q])
		}
	}

	if s := fabOff.Stats.SummariesStaged.Load(); s != 0 {
		t.Fatalf("ablation staged %d summaries, want 0", s)
	}
	if fabOn.Stats.SummariesStaged.Load() == 0 {
		t.Fatal("coalescing run staged nothing")
	}
	if fabOn.Stats.SummariesCoalesced.Load() == 0 {
		t.Fatal("no summary merged in a staging buffer")
	}
	if fabOn.Stats.BatchFrames.Load() == 0 {
		t.Fatal("no multi-summary batch left a staging buffer")
	}
	on, offFrames := fabOn.Stats.DataFrames.Load(), fabOff.Stats.DataFrames.Load()
	t.Logf("staged=%d coalesced=%d batchframes=%d batched=%d on=%d off=%d",
		fabOn.Stats.SummariesStaged.Load(), fabOn.Stats.SummariesCoalesced.Load(),
		fabOn.Stats.BatchFrames.Load(), fabOn.Stats.BatchedSummaries.Load(), on, offFrames)
	if on == 0 || offFrames == 0 {
		t.Fatalf("missing data frames: staged %d, unstaged %d", on, offFrames)
	}
	if 3*on > offFrames {
		t.Fatalf("coalescing saved too little: %d frames vs %d unstaged (want >= 3x fewer)", on, offFrames)
	}
	// The accounting behind the frames-saved counter: every summary that
	// entered a buffer merged away, left in a frame, or is still parked at
	// snapshot time — so the flushed population can never exceed what was
	// staged, and batches can never outnumber data frames.
	staged := fabOn.Stats.SummariesStaged.Load()
	coalesced := fabOn.Stats.SummariesCoalesced.Load()
	batched := fabOn.Stats.BatchedSummaries.Load()
	batchFrames := fabOn.Stats.BatchFrames.Load()
	if coalesced+batched > staged {
		t.Fatalf("flushed more than was staged: staged=%d coalesced=%d batched=%d",
			staged, coalesced, batched)
	}
	if batchFrames > on {
		t.Fatalf("batch frames %d exceed data frames %d", batchFrames, on)
	}
}

// The compat knobs: pinning the wire to v3 or setting a negative hold
// must disable staging entirely — full completeness through the old
// single-envelope path, zero touched staging counters — and out-of-range
// settings must be rejected up front.
func TestCoalescingKnobs(t *testing.T) {
	run := func(t *testing.T, cfg Config) *Fabric {
		t.Helper()
		fab, rt := testbed(t, 40, 5, cfg, nil)
		var last Result
		fab.OnResult = func(r Result) { last = r }
		sumQuery(t, fab, rt, 4, 2)
		rt.RunFor(25 * time.Second)
		if last.Count != 40 {
			t.Fatalf("warm completeness %d, want 40", last.Count)
		}
		return fab
	}

	t.Run("wire-compat-v3", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.WireCompat = wire.VersionNoBatch
		fab := run(t, cfg)
		if s := fab.Stats.SummariesStaged.Load(); s != 0 {
			t.Fatalf("v3-pinned fabric staged %d summaries", s)
		}
		if bfr := fab.Stats.BatchFrames.Load(); bfr != 0 {
			t.Fatalf("v3-pinned fabric sent %d batch frames", bfr)
		}
	})

	t.Run("negative-hold-disables", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.SummaryHold = -time.Millisecond
		fab := run(t, cfg)
		if s := fab.Stats.SummariesStaged.Load(); s != 0 {
			t.Fatalf("hold-disabled fabric staged %d summaries", s)
		}
	})

	t.Run("rejects-nonsense", func(t *testing.T) {
		for _, mut := range []func(*Config){
			func(c *Config) { c.WireCompat = 2 },
			func(c *Config) { c.WireCompat = wire.Version + 1 },
			func(c *Config) { c.SummaryBatchBytes = -1 },
		} {
			c := DefaultConfig()
			mut(&c)
			if _, err := c.Validate(); err == nil {
				t.Fatalf("invalid config accepted: %+v", c)
			}
		}
	})

	t.Run("zero-hold-defaults", func(t *testing.T) {
		c := DefaultConfig()
		c.SummaryHold = 0
		v, err := c.Validate()
		if err != nil {
			t.Fatal(err)
		}
		if want := c.HeartbeatPeriod / 100; v.SummaryHold != want {
			t.Fatalf("zero hold normalized to %v, want %v", v.SummaryHold, want)
		}
	})
}

// The epoch-retirement barrier: migrating a query to a new plan epoch
// with coalescing on must not strand the old epoch's last windows in a
// staging buffer. Warm completeness must hold straight through the
// migration. (The make-before-break mechanics themselves are covered by
// the epoch tests; this pins the interaction with staged summaries.)
func TestMigrationFlushesStagedSummaries(t *testing.T) {
	fab, rt := testbed(t, 40, 13, DefaultConfig(), nil)
	winMax := map[int64]int{}
	fab.OnResult = func(r Result) {
		if r.Count > winMax[r.WindowIndex] {
			winMax[r.WindowIndex] = r.Count
		}
	}
	def := sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(15 * time.Second)

	// Replan the same query into epoch 1 (same issue time, so window
	// indexes align across epochs) and let the migration complete.
	meta := def.Meta
	meta.Seq++
	meta.Epoch++
	next, err := fab.Compile(meta, nil, uniformCoords(fab.NumPeers(), 8), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, next); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(40 * time.Second)

	if fab.Stats.SummariesStaged.Load() == 0 {
		t.Fatal("migration test ran without staging anything")
	}
	if got := fab.Stats.EpochsRetired.Load(); got != 1 {
		t.Fatalf("EpochsRetired = %d, want 1", got)
	}
	// Completeness never dips: once warm, every window up to the tail
	// reaches full completeness in at least one epoch's report.
	var first, last int64 = -1, -1
	for w, c := range winMax {
		if c == 40 && (first < 0 || w < first) {
			first = w
		}
		if w > last {
			last = w
		}
	}
	if first < 0 {
		t.Fatal("no fully complete window at all")
	}
	for w := first; w <= last-5; w++ {
		if winMax[w] != 40 {
			t.Fatalf("window %d best completeness %d across the migration, want 40", w, winMax[w])
		}
	}
}
