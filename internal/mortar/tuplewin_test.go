package mortar

import (
	"testing"
	"time"

	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// tupleWinQuery installs a tuple-window query: the topk of the last RangeN
// tuples from each source, sliding every SlideN tuples (§4.1: "Mortar's
// query operators process the last n tuples from each source").
func tupleWinQuery(t *testing.T, fab *Fabric, rt *simrt.Runtime, rangeN, slideN int) {
	t.Helper()
	meta := QueryMeta{
		Name:      "tw",
		Seq:       1,
		OpName:    "max",
		Window:    tuple.WindowSpec{Kind: tuple.TupleWindow, RangeN: rangeN, SlideN: slideN},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(fab.NumPeers(), 7), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
}

func TestTupleWindowEmitsPerSlideCount(t *testing.T) {
	fab, rt := testbed(t, 12, 21, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	tupleWinQuery(t, fab, rt, 4, 4)
	// Each peer emits one tuple per second with increasing values.
	for i := 0; i < 12; i++ {
		i := i
		n := 0
		phase := time.Duration(137*(i+1)%997) * time.Millisecond
		rt.After(phase, func() {
			rt.Every(time.Second, func() {
				n++
				fab.Inject(i, tuple.Raw{Vals: []float64{float64(n)}})
			})
		})
	}
	rt.RunFor(30 * time.Second)
	if len(results) == 0 {
		t.Fatal("no tuple-window results")
	}
	// Results reflect the max over the last 4 tuples of each source, so
	// values must grow over time and completeness should cover many peers
	// once intervals merge.
	last := results[len(results)-1]
	if last.Value.(float64) < 10 {
		t.Fatalf("final max = %v, want the latest tuples", last.Value)
	}
	best := 0
	for _, r := range results {
		if r.Count > best {
			best = r.Count
		}
	}
	if best < 8 {
		t.Fatalf("max completeness %d of 12; interval merging failed", best)
	}
}

func TestTupleWindowIntervalsValid(t *testing.T) {
	fab, rt := testbed(t, 8, 22, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	tupleWinQuery(t, fab, rt, 6, 3)
	for i := 0; i < 8; i++ {
		i := i
		phase := time.Duration(211*(i+1)%997) * time.Millisecond
		rt.After(phase, func() {
			rt.Every(500*time.Millisecond, func() {
				fab.Inject(i, tuple.Raw{Vals: []float64{1}})
			})
		})
	}
	rt.RunFor(20 * time.Second)
	for _, r := range results {
		if r.Index.Empty() {
			t.Fatalf("empty validity interval in result %+v", r)
		}
		// Arrival spans of 6 tuples at 500ms spacing are ~2.5s, plus
		// overlap splits can produce smaller pieces — but never larger
		// than the span plus boundary extension.
		if r.Index.Duration() > 10*time.Second {
			t.Fatalf("interval %v implausibly long", r.Index)
		}
	}
}

func TestTupleWindowStallBoundaryExtends(t *testing.T) {
	fab, rt := testbed(t, 4, 23, DefaultConfig(), nil)
	tupleWinQuery(t, fab, rt, 2, 2)
	// Only peer 1 produces data, then stalls; boundary tuples must keep
	// the pipeline alive without fabricating values.
	for k := 0; k < 4; k++ {
		k := k
		rt.After(time.Duration(k)*time.Second, func() {
			fab.Inject(1, tuple.Raw{Vals: []float64{float64(k)}})
		})
	}
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	rt.RunFor(30 * time.Second)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.Value != nil && r.Value.(float64) > 3 {
			t.Fatalf("fabricated value %v", r.Value)
		}
	}
}

// The Wi-Fi scenario's natural form: a tuple window over the last frames
// per sniffer rather than a time window.
func TestTupleWindowTopK(t *testing.T) {
	fab, rt := testbed(t, 6, 24, DefaultConfig(), nil)
	meta := QueryMeta{
		Name:      "twk",
		Seq:       1,
		OpName:    "topk",
		OpArgs:    []string{"2", "0"},
		Window:    tuple.WindowSpec{Kind: tuple.TupleWindow, RangeN: 3, SlideN: 3},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(6, 3), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	var got []wire.ScoredEntry
	fab.OnResult = func(r Result) {
		if r.Value != nil {
			got = r.Value.([]wire.ScoredEntry)
		}
	}
	for i := 0; i < 6; i++ {
		i := i
		phase := time.Duration(93*(i+1)) * time.Millisecond
		rt.After(phase, func() {
			rt.Every(time.Second, func() {
				fab.Inject(i, tuple.Raw{Key: "s" + string(rune('a'+i)), Vals: []float64{float64(10 * i)}})
			})
		})
	}
	rt.RunFor(25 * time.Second)
	if len(got) == 0 {
		t.Fatal("no topk results")
	}
	if got[0].Score < 40 {
		t.Fatalf("topk missed the loudest source: %+v", got)
	}
}
