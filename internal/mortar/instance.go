package mortar

import (
	"math"
	"time"

	"repro/internal/ops"
	"repro/internal/runtime"
	"repro/internal/tslist"
	"repro/internal/tuple"
)

// instance is one peer's operator for one query: the local window over its
// raw source stream ("merging across time"), the time-space list merging
// children's summaries ("merging across space"), and the routing state that
// stripes evicted summaries up the tree set.
type instance struct {
	peer *Peer
	meta QueryMeta
	op   ops.Operator
	fin  ops.Finalizer // nil when the partial value is the final value
	// combineIP is the operator's in-place combiner when it has one; the
	// staging buffer uses it to fold a parked summary's value without
	// allocating, provided the parked value is exclusively owned.
	combineIP ops.InPlaceCombiner

	// Tree position; zero until wired (install multicast carries it; peers
	// adopted via reconciliation fetch it from the root topology service).
	nb    neighbors
	wired bool
	// own caches ownLevels' vector, recomputed on (re)wire; read-only to
	// callers.
	own []int16

	// draining marks an instance retired by an epoch-scoped removal: it
	// opens no new local windows but keeps merging, evicting, and routing
	// its in-flight windows until the drain timer tears it down — the
	// "break" half of make-before-break happens only after the old epoch's
	// data has had time to reach the root.
	draining   bool
	drainTimer runtime.Timer

	// acked tracks, at the root of an epoch > 0 instance, which members
	// have reported the epoch installed and wired (wire.InstallAck). Once
	// every member has acked — and the new epoch's completeness has caught
	// up with the old one's — the root retires the previous epoch.
	acked   map[int]struct{}
	retired bool // this instance already triggered the old epoch's removal

	// lastCount is the completeness of this root's most recent report;
	// reportsAfterAck counts reports made after the member set fully
	// acked. Together they drive the retirement criterion.
	lastCount       int
	reportsAfterAck int

	// Full definition; held only at the query root / issuer (§6.1).
	def *QueryDef

	// Local source window state.
	win        ops.Window
	raws       []tuple.Raw // tuples currently inside the window range
	rawInSlide bool        // saw a raw tuple during the current slide
	everRaw    bool

	// Tuple-window state (§4.1): counts since the last emission, and the
	// end of the last emitted validity interval so stall boundaries can
	// extend it (§4.3).
	sinceSlide int
	lastTE     time.Duration
	stallTick  runtime.Timer

	// Reference clock (§5.1): local frame used for indexing. For syncless
	// operation, frameNow = refBase + (localNow - installLocal); for
	// timestamp operation, frameNow = localNow.
	installLocal time.Duration
	refBase      time.Duration

	curSlide   int64 // next local slide boundary to close
	slideTimer runtime.Timer

	ts           *tslist.List
	evictTimer   runtime.Timer
	lastEvicted  int64 // highest window index already evicted (late detection)
	lastReported int64 // highest window index reported (root only)

	// netDist: EWMA of the maximum received age sample (syncless) or of
	// the maximum timestamp lag (timestamp mode). Samples accumulate into
	// sampleMax and fold into the EWMA once per slide, so one straggler
	// cannot ratchet the estimate permanently.
	netDist   time.Duration
	sampleMax time.Duration

	stripe int // round-robin tree pointer for newly created tuples
}

func (p *Peer) newInstance(meta QueryMeta) (*instance, error) {
	op, err := ops.New(meta.OpName, meta.OpArgs)
	if err != nil {
		return nil, err
	}
	inst := &instance{
		peer:         p,
		meta:         meta,
		op:           op,
		win:          op.NewWindow(),
		installLocal: p.localNow(),
		lastEvicted:  math.MinInt64,
		lastReported: math.MinInt64,
	}
	if f, ok := op.(ops.Finalizer); ok {
		inst.fin = f
	}
	if ip, ok := op.(ops.InPlaceCombiner); ok {
		inst.combineIP = ip
	}
	// Time windows always produce slide-aligned indices, so TS-list
	// entries never split and no value is ever shared between entries —
	// the precondition for folding summaries into the entry's value in
	// place. Tuple windows split unaligned intervals (cloneInterval shares
	// the value), so they keep the copying combiner.
	if meta.Window.Kind == tuple.TimeWindow {
		inst.ts = tslist.New(ops.CombineInPlaceNilAware(op))
	} else {
		inst.ts = tslist.New(ops.CombineNilAware(op))
	}
	inst.ts.SetCounters(&p.fab.DataPath)
	if p.fab.Cfg.Syncless {
		// t_ref begins at the age of the install message: the operator
		// pretends it started when the query was issued (§5.1).
		inst.refBase = p.clock.Elapsed(p.now() - meta.IssuedSim)
	}
	return inst, nil
}

// frameNow returns the instance's indexing-frame time.
func (inst *instance) frameNow() time.Duration {
	if inst.peer.fab.Cfg.Syncless {
		return inst.refBase + (inst.peer.localNow() - inst.installLocal)
	}
	return inst.peer.localNow()
}

// start begins slide processing. Called once the operator is installed
// (wiring may complete later; an unwired operator still windows its local
// source, it just cannot forward).
func (inst *instance) start() {
	if inst.meta.Window.Kind == tuple.TupleWindow {
		// Tuple windows emit on arrival counts; a stall ticker injects
		// boundary tuples that extend the previous summary's validity
		// interval when the raw stream goes quiet (§4.3).
		inst.lastTE = inst.frameNow()
		inst.scheduleStall()
		return
	}
	now := inst.frameNow()
	inst.curSlide = int64(now / inst.meta.Window.Slide)
	if now < 0 {
		inst.curSlide--
	}
	inst.scheduleSlide()
}

func (inst *instance) stop() {
	if inst.slideTimer != nil {
		inst.slideTimer.Cancel()
	}
	if inst.evictTimer != nil {
		inst.evictTimer.Cancel()
	}
	if inst.stallTick != nil {
		inst.stallTick.Cancel()
	}
	if inst.drainTimer != nil {
		inst.drainTimer.Cancel()
	}
}

// beginDrain puts a retired instance into draining mode: the slide and
// stall timers stop (no new local windows open), while the TS list keeps
// merging arriving summaries and evicting expired windows toward the root.
// After the drain period the instance is torn down for good. Idempotent —
// the removal multicast and reconciliation may both deliver the retirement.
func (inst *instance) beginDrain(drain time.Duration) {
	if inst.draining {
		return
	}
	inst.draining = true
	if inst.slideTimer != nil {
		inst.slideTimer.Cancel()
	}
	if inst.stallTick != nil {
		inst.stallTick.Cancel()
	}
	p := inst.peer
	// Retirement barrier: anything parked in the staging buffers leaves now,
	// so the retiring epoch's last windows are in flight before its drain
	// period starts counting.
	p.flushStages()
	key := instKey{name: inst.meta.Name, epoch: inst.meta.Epoch}
	inst.drainTimer = p.rtc.After(drain, func() {
		if cur, ok := p.insts[key]; ok && cur == inst {
			inst.stop()
			delete(p.insts, key)
			p.pruneNeighborState()
		}
	})
}

// stallPeriod is how long a tuple-window source stays quiet before a
// boundary tuple extends its last summary.
const stallPeriod = 2 * time.Second

func (inst *instance) scheduleStall() {
	inst.stallTick = inst.peer.rtc.After(stallPeriod, func() {
		if !inst.rawInSlide && inst.everRaw {
			now := inst.frameNow()
			inst.absorb(tuple.Summary{
				Query:    inst.meta.Name,
				Index:    tuple.Index{TB: inst.lastTE, TE: now},
				Count:    1,
				Boundary: true,
				Age:      now - (inst.lastTE+now)/2,
			})
			inst.lastTE = now
		}
		inst.rawInSlide = false
		inst.foldNetDist()
		inst.scheduleStall()
	})
}

// tupleArrived handles tuple-window accounting for one raw arrival,
// emitting a summary over the last RangeN tuples every SlideN arrivals.
// The index is the arrival span of the window's tuples (§4.1: "tb
// indicates the arrival time of the first tuple and te the arrival time of
// the last").
func (inst *instance) tupleArrived() {
	w := inst.meta.Window
	inst.sinceSlide++
	// Trim the raw queue to the window range.
	for len(inst.raws) > w.RangeN {
		inst.win.Remove(inst.raws[0])
		inst.raws = inst.raws[1:]
	}
	if inst.sinceSlide < w.SlideN {
		return
	}
	inst.sinceSlide = 0
	if len(inst.raws) == 0 {
		return
	}
	now := inst.frameNow()
	first, last := inst.raws[0].At, inst.raws[len(inst.raws)-1].At
	idx := tuple.Index{TB: first, TE: last + 1} // half-open: include the last arrival
	var ageSum time.Duration
	for _, r := range inst.raws {
		ageSum += now - r.At
	}
	s := tuple.Summary{
		Query: inst.meta.Name,
		Index: idx,
		Value: inst.win.Value(),
		Count: 1,
		Age:   ageSum / time.Duration(len(inst.raws)),
	}
	inst.lastTE = idx.TE
	inst.absorb(s)
}

func (inst *instance) scheduleSlide() {
	boundary := time.Duration(inst.curSlide+1) * inst.meta.Window.Slide
	delay := inst.peer.runtimeDelayForLocal(boundary - inst.frameNow())
	inst.slideTimer = inst.peer.rtc.After(delay, inst.closeSlide)
}

// injectRaw feeds a raw sensor tuple into every matching local operator.
// During a migration both epochs of a query are fed: the old epoch keeps
// producing complete windows while the new one wires up, so completeness
// never dips (make-before-break). Draining instances open no new windows
// and take no raws.
func (p *Peer) injectRaw(raw tuple.Raw) {
	p.fab.Stats.TuplesIngested.Add(1)
	p.fab.Stats.IngestBatches.Add(1)
	for _, inst := range p.insts {
		inst.takeRaw(raw)
	}
}

// injectRawBatch feeds a batch of raw tuples into every matching local
// operator. The instance loop is outermost so the per-batch cost — the
// instance-map walk, the frame-clock read, the filter checks' branch
// history — is paid once per instance, not once per tuple. The batch slice
// is recycled into the fabric pool once every instance has absorbed it.
func (p *Peer) injectRawBatch(raws []tuple.Raw) {
	p.fab.Stats.TuplesIngested.Add(uint64(len(raws)))
	p.fab.Stats.IngestBatches.Add(1)
	for _, inst := range p.insts {
		if inst.draining {
			continue
		}
		at := inst.frameNow() // one clock read per batch: the tuples arrived together
		for _, raw := range raws {
			inst.takeRawAt(raw, at)
		}
	}
	p.fab.putRawBatch(raws)
}

// takeRaw feeds one raw tuple into one instance (the shared per-tuple half
// of injectRaw/injectRawBatch).
func (inst *instance) takeRaw(raw tuple.Raw) {
	inst.takeRawAt(raw, inst.frameNow())
}

// takeRawAt is takeRaw with the arrival frame time supplied by the caller,
// letting the batch path stamp a whole batch with one clock read.
func (inst *instance) takeRawAt(raw tuple.Raw, at time.Duration) {
	if inst.draining {
		return
	}
	if inst.meta.FilterKey != "" && raw.Key != inst.meta.FilterKey {
		return // the select stage (§7.4) drops non-matching tuples
	}
	r := raw
	if r.SubKey != "" {
		r.Key = r.SubKey // select consumed the match key; group by sub-key
	}
	r.At = at
	inst.win.Merge(r)
	inst.raws = append(inst.raws, r)
	inst.rawInSlide = true
	inst.everRaw = true
	if inst.meta.Window.Kind == tuple.TupleWindow {
		inst.tupleArrived()
	}
}

// closeSlide fires at each local slide boundary: expire raws that left the
// window range, emit the window summary (or a boundary tuple if the source
// stalled, §4.3), and reschedule.
func (inst *instance) closeSlide() {
	w := inst.meta.Window
	n := inst.curSlide
	inst.curSlide++
	boundary := time.Duration(n+1) * w.Slide

	// Expire raws older than the window range.
	cutoff := boundary - w.Range
	kept := inst.raws[:0]
	for _, r := range inst.raws {
		if r.At < cutoff {
			inst.win.Remove(r)
		} else {
			kept = append(kept, r)
		}
	}
	inst.raws = kept

	idx := tuple.Index{TB: time.Duration(n) * w.Slide, TE: boundary}
	val := inst.win.Value()
	s := tuple.Summary{
		Query: inst.meta.Name,
		Index: idx,
		Count: 1,
		Hops:  0,
	}
	// A summary's age is anchored at the mean inception time of its
	// constituent raw tuples: downstream operators recover the window via
	// index = (t_ref - age) / slide, so the age must place the summary in
	// the middle of the data it represents, not at the moment of emission
	// (§5.1: ages weight toward the majority of the constituent data).
	now := inst.frameNow()
	if val != nil {
		s.Value = val
		var sum time.Duration
		cnt := 0
		for _, r := range inst.raws {
			if r.At >= idx.TB && r.At < idx.TE {
				sum += now - r.At
				cnt++
			}
		}
		if cnt > 0 {
			s.Age = sum / time.Duration(cnt)
		} else {
			// Value produced by raws from earlier slides still in range
			// (sliding windows): anchor mid-window.
			s.Age = now - (idx.TB + w.Slide/2)
		}
	} else {
		// The stream stalled this window: inject a boundary tuple so
		// downstream completeness still counts this participant. Only emit
		// once the source has ever produced data (an idle peer with no
		// sensor contributes nothing).
		s.Boundary = true
		s.Age = now - (idx.TB + w.Slide/2)
	}
	inst.rawInSlide = false
	inst.foldNetDist()
	if val != nil || inst.everRaw {
		inst.absorb(s)
	}
	inst.scheduleSlide()
}

// --- TS list management (§4.2, §4.3) ---

// absorb inserts a summary (local or remote) into the time-space list and
// arms the eviction timer.
func (inst *instance) absorb(s tuple.Summary) {
	if s.Levels == nil && inst.wired {
		s.Levels = inst.ownLevels()
	}
	now := inst.frameNow()
	if s.Boundary && inst.meta.Window.Kind == tuple.TupleWindow {
		// A stalled tuple-window source: first try to extend the validity
		// interval of the summary it last produced (§4.3); fall through to
		// a normal insert only if there is nothing to extend.
		if inst.ts.ExtendLast(s.Index.TB, s.Index.TE) {
			return
		}
	}
	dl := now + inst.timeoutFor(s, now)
	inst.ts.Insert(s, now, dl)
	inst.armEvict()
}

// ownLevels is this operator's level on each tree, the starting routing
// history for newly created tuples. The returned vector is the cached copy
// built at wiring time: callers must not mutate it (they merge it into
// vectors they own via tuple.MergeLevelsInto).
func (inst *instance) ownLevels() []int16 { return inst.own }

// cacheOwnLevels rebuilds the cached level vector from the current tree
// position; called whenever the instance is (re)wired.
func (inst *instance) cacheOwnLevels() {
	inst.own = inst.own[:0]
	for _, l := range inst.nb.Levels {
		inst.own = append(inst.own, int16(l))
	}
}

// timeoutFor computes the dynamic timeout for a newly opened entry. For
// syncless operation it is proportional to netDist - T.age: by the time
// this tuple arrived, age time had already passed, so the most delayed
// tuple should already be in flight (§4.3). For timestamp operation it is
// the observed timestamp lag.
func (inst *instance) timeoutFor(s tuple.Summary, frameNow time.Duration) time.Duration {
	cfg := inst.peer.fab.Cfg
	var to time.Duration
	if cfg.Syncless {
		to = time.Duration(cfg.TimeoutFactor * float64(inst.netDist-s.Age))
	} else {
		// Hold the window open until its end plus the observed lag.
		to = (s.Index.TE - frameNow) + time.Duration(cfg.TimeoutFactor*float64(inst.netDist))
	}
	if to < cfg.MinTimeout {
		to = cfg.MinTimeout
	}
	if to > cfg.MaxTimeout {
		to = cfg.MaxTimeout
	}
	return to + cfg.TimeoutSlack
}

// observe records an arriving summary's delay sample toward the per-slide
// maximum.
func (inst *instance) observe(s tuple.Summary, frameNow time.Duration) {
	var sample time.Duration
	if inst.peer.fab.Cfg.Syncless {
		sample = s.Age
	} else {
		sample = frameNow - s.Index.TE // how late this window's data runs
	}
	if sample < 0 {
		sample = 0
	}
	if sample > inst.sampleMax {
		inst.sampleMax = sample
	}
	if inst.netDist == 0 {
		// Cold start: adopt the first sample immediately so early windows
		// are not all evicted at the minimum timeout.
		inst.netDist = sample
	}
	if sample > inst.netDist && inst.isRoot() {
		// The root judges final completeness and its hold feeds no other
		// operator's estimate, so it can safely jump straight to the
		// slowest observed end-to-end path. Interior operators must not:
		// with mutual parent pairs across sibling trees, jump-to-max there
		// ratchets holds without bound (see handleSummary).
		inst.netDist = sample
	}
}

// foldNetDist folds the per-slide maximum sample into the EWMA ("an EWMA
// of the maximum received sample", §4.3; alpha = 10%).
func (inst *instance) foldNetDist() {
	if inst.sampleMax == 0 {
		return
	}
	a := inst.peer.fab.Cfg.NetDistAlpha
	inst.netDist = time.Duration((1-a)*float64(inst.netDist) + a*float64(inst.sampleMax))
	inst.sampleMax = 0
}

// armEvict keeps a single timer pointed at the earliest entry deadline.
func (inst *instance) armEvict() {
	dl, ok := inst.ts.NextDeadline()
	if !ok {
		return
	}
	delay := inst.peer.runtimeDelayForLocal(dl - inst.frameNow())
	if inst.evictTimer != nil && !inst.evictTimer.Stopped() {
		// Keep the existing timer if it already fires early enough.
		if inst.evictTimer.When() <= inst.peer.now()+delay {
			return
		}
		inst.evictTimer.Cancel()
	}
	inst.evictTimer = inst.peer.rtc.After(delay, inst.evictExpired)
}

func (inst *instance) evictExpired() {
	now := inst.frameNow()
	tupleWin := inst.meta.Window.Kind == tuple.TupleWindow
	// Pop with a small tolerance: converting local-frame deadlines to
	// simulator delays through a skewed clock rounds, so at timer fire the
	// frame clock can sit an epsilon short of the deadline; without the
	// tolerance the evict timer would re-arm with zero delay forever.
	for _, e := range inst.ts.PopExpired(now + time.Millisecond) {
		var n int64
		if tupleWin {
			// Tuple-window indices are unaligned intervals; order reports
			// by interval start at millisecond granularity.
			n = int64(e.Index.TB / time.Millisecond)
		} else {
			n = int64(e.Index.TB / inst.meta.Window.Slide)
		}
		if n > inst.lastEvicted {
			inst.lastEvicted = n
		}
		s := e.Summary(inst.meta.Name, now)
		if inst.isRoot() {
			if tupleWin {
				inst.reportInterval(n, s)
			} else {
				inst.report(n, s)
			}
		} else {
			// Time-window entries never share values (slide-aligned indices,
			// see newInstance), so an evicted value is exclusively this
			// summary's; tuple-window splitting (cloneInterval) may leave the
			// value shared with a live entry.
			inst.routeNew(s, !tupleWin)
		}
		// The summary took its own Levels clone and the value travels on
		// by reference; the entry shell goes back to the list's pool.
		inst.ts.Recycle(e)
	}
	inst.armEvict()
}

// noteReport updates the root's completeness view and, for a migrating
// epoch, re-checks the retirement criterion — the hand-off happens from
// the root's report path, where completeness is finally judged.
func (inst *instance) noteReport(count int) {
	inst.lastCount = count
	if inst.meta.Epoch > 0 && !inst.retired && inst.def != nil &&
		inst.acked != nil && len(inst.acked) >= len(inst.def.Members) {
		inst.reportsAfterAck++
		inst.peer.maybeRetireOld(inst)
	}
}

// reportInterval reports a tuple-window result. Unlike time windows, the
// unaligned intervals of different sources legitimately evict out of
// order, so every eviction is reported.
func (inst *instance) reportInterval(n int64, s tuple.Summary) {
	f := inst.peer.fab
	inst.noteReport(s.Count)
	f.Stats.ResultsReported.Add(1)
	val := s.Value
	if inst.fin != nil && val != nil {
		val = inst.fin.Finalize(val)
	}
	f.emitResult(Result{
		Query:       s.Query,
		Epoch:       inst.meta.Epoch,
		WindowIndex: n,
		Index:       s.Index,
		Value:       val,
		Count:       s.Count,
		Hops:        s.Hops,
		At:          inst.peer.now(),
		Age:         s.Age,
	})
}

// isRoot reports whether this operator is the query root (no parent in any
// tree).
func (inst *instance) isRoot() bool {
	if !inst.wired {
		return false
	}
	for _, pa := range inst.nb.Parents {
		if pa >= 0 {
			return false
		}
	}
	return true
}

// report emits a final result from the root operator. Each window is
// reported at most once, in order; data evicted for an already-reported
// window is counted as late.
func (inst *instance) report(n int64, s tuple.Summary) {
	f := inst.peer.fab
	if n <= inst.lastReported {
		f.Stats.LateAtRoot.Add(1)
		return
	}
	inst.lastReported = n
	inst.noteReport(s.Count)
	f.Stats.ResultsReported.Add(1)
	val := s.Value
	if inst.fin != nil && val != nil {
		val = inst.fin.Finalize(val)
	}
	f.emitResult(Result{
		Query:       s.Query,
		Epoch:       inst.meta.Epoch,
		WindowIndex: n,
		Index:       s.Index,
		Value:       val,
		Count:       s.Count,
		Hops:        s.Hops,
		At:          inst.peer.now(),
		Age:         s.Age,
	})
}

// --- Summary arrival (§3.3, §4) ---

func (p *Peer) handleSummary(src int, env *envelope) {
	// Summaries merge only into the instance of their own epoch: two live
	// epochs of a query are two disjoint tree sets, and cross-epoch merging
	// would double-count the sources that feed both.
	inst, ok := p.insts[instKey{name: env.S.Query, epoch: env.Epoch}]
	if !ok || !inst.wired {
		// We cannot process or even consult tree levels; best-effort drop.
		p.fab.Stats.Dropped.Add(1)
		return
	}
	s := env.S
	// The transport measures one-hop flight time (UdpCC RTT/2) and adds it
	// to the tuple's age, measured with the local oscillator.
	s.Age += p.clock.Elapsed(p.now() - env.SentAt)
	s.Hops++

	now := inst.frameNow()

	if inst.meta.Window.Kind == tuple.TupleWindow {
		// Tuple-window summaries keep their arrival-span indices; the
		// TS list's overlap splitting reconciles the unaligned intervals
		// of different sources (§4.2).
		inst.observe(s, now)
		inst.absorb(s)
		return
	}

	// Re-index in the local frame for syncless operation: the operator
	// merges tuples that have been alive for similar periods (§5.1,
	// Figure 7: index <- (t_ref - T.age) / slide).
	var n int64
	if p.fab.Cfg.Syncless {
		n = int64((now - s.Age) / inst.meta.Window.Slide)
		if now-s.Age < 0 && (now-s.Age)%inst.meta.Window.Slide != 0 {
			n--
		}
		s.Index = tuple.Index{
			TB: time.Duration(n) * inst.meta.Window.Slide,
			TE: time.Duration(n+1) * inst.meta.Window.Slide,
		}
	} else {
		n = int64(s.Index.TB / inst.meta.Window.Slide)
	}

	if n <= inst.lastEvicted {
		// Late for this operator: the window was already sent upstream.
		if inst.isRoot() {
			// The root is where completeness is finally judged, so it
			// alone learns from stragglers and stretches its timeout to
			// the slowest end-to-end path.
			inst.observe(s, now)
			p.fab.Stats.LateAtRoot.Add(1)
			return
		}
		// Interior operators relay the straggler toward the root without
		// feeding it into their own netDist. Interior operators waiting
		// for relayed (cross-tree) paths would deadlock-by-creep: with
		// mutual parent pairs across sibling trees, each operator would
		// wait for the other's hold plus slack, ratcheting result latency
		// without bound. Stragglers keep moving; only the root waits for
		// them.
		p.fab.Stats.Relayed.Add(1)
		// Clone before forward mutates the vector: an in-process transport
		// that duplicates delivery hands the same envelope (and Levels
		// array) to this handler twice.
		s.Levels = append([]int16(nil), s.Levels...)
		// The value still aliases the received envelope (a duplicate delivery
		// would hand it to us again), so downstream must not mutate it.
		inst.forward(s, env.Tree, env.TTLDown, false)
		return
	}
	inst.observe(s, now)
	inst.absorb(s)
}

// --- Dynamic tuple striping (§3.3) ---

// routeNew sends a freshly created (merged) summary toward the root,
// striping across trees in round-robin order and falling back to the
// staged policy when the preferred parent is unreachable. owned reports
// whether s.Value is exclusively the caller's (see stagedEnv.owned).
func (inst *instance) routeNew(s tuple.Summary, owned bool) {
	if !inst.wired {
		inst.peer.fab.Stats.Dropped.Add(1)
		return
	}
	// s.Levels is caller-owned (cloned at eviction or freshly decoded), so
	// the routing constraint folds in place.
	s.Levels = tuple.MergeLevelsInto(s.Levels, inst.ownLevels())
	d := len(inst.nb.Parents)
	if inst.peer.fab.Cfg.MaxStage == 1 {
		// Ablation: stage 1 alone cannot migrate stripes — the tuple uses
		// its round-robin tree or nothing, like static striping.
		t := inst.stripe
		inst.stripe = (t + 1) % d
		pa := inst.nb.Parents[t]
		if pa >= 0 && inst.peer.alive(pa) {
			inst.send(s, t, pa, 0, owned)
		} else if pa < 0 {
			// This operator is the root on tree t but not overall; fall
			// through to another tree to avoid self-delivery artifacts.
			inst.forward(s, t, 0, owned)
		} else {
			inst.peer.fab.Stats.Dropped.Add(1)
		}
		return
	}
	// Default policy: stripe newly created tuples round-robin across trees
	// with a live parent ("the operator migrates the stripe to a
	// remaining, live parent").
	for i := 0; i < d; i++ {
		t := (inst.stripe + i) % d
		pa := inst.nb.Parents[t]
		if pa >= 0 && inst.peer.alive(pa) {
			inst.stripe = (t + 1) % d
			inst.send(s, t, pa, 0, owned)
			return
		}
	}
	// No live parent on any tree: let the staged policy explore downward.
	inst.forward(s, -1, 0, owned)
}

// forward applies the staged multipath routing policy (Figure 5) for a
// tuple that arrived on tree `arrived` (-1 for locally created tuples with
// no preferred tree). owned as in routeNew.
func (inst *instance) forward(s tuple.Summary, arrived int, ttlDown uint8, owned bool) {
	if !inst.wired {
		inst.peer.fab.Stats.Dropped.Add(1)
		return
	}
	s.Levels = tuple.MergeLevelsInto(s.Levels, inst.ownLevels())
	nb := &inst.nb
	d := len(nb.Parents)
	tl := func(t int) int {
		if t < len(s.Levels) && s.Levels[t] >= 0 {
			return int(s.Levels[t])
		}
		return math.MaxInt32 // never visited: no constraint
	}
	ol := func(t int) int { return nb.Levels[t] }
	liveParent := func(t int) bool {
		return nb.Parents[t] >= 0 && inst.peer.alive(nb.Parents[t])
	}

	maxStage := inst.peer.fab.Cfg.MaxStage
	if maxStage < 1 {
		maxStage = 4
	}
	// Stage 1 — same tree: route to P(t).
	if arrived >= 0 && liveParent(arrived) {
		inst.send(s, arrived, nb.Parents[arrived], ttlDown, owned)
		return
	}
	// Stage 2 — up*: a tree at least as close to the root as the arrival
	// tree; choose the minimum level.
	if arrived >= 0 && maxStage >= 2 {
		best, bestLevel := -1, math.MaxInt32
		for t := 0; t < d; t++ {
			if t != arrived && liveParent(t) && ol(t) <= tl(arrived) && ol(t) < bestLevel {
				best, bestLevel = t, ol(t)
			}
		}
		if best >= 0 {
			inst.send(s, best, nb.Parents[best], ttlDown, owned)
			return
		}
	}
	// Stage 3 — flex: forward progress on any tree not yet re-entered at a
	// visited level.
	if maxStage >= 3 {
		best, bestLevel := -1, math.MaxInt32
		for t := 0; t < d; t++ {
			if t != arrived && liveParent(t) && ol(t) <= tl(t) && ol(t) < bestLevel {
				best, bestLevel = t, ol(t)
			}
		}
		if best >= 0 {
			inst.send(s, best, nb.Parents[best], ttlDown, owned)
			return
		}
	}
	// Stage 4 — flex down: descend to a live child, bounded by TTL-down.
	if maxStage >= 4 && int(ttlDown) < inst.peer.fab.Cfg.TTLDownMax {
		for t := 0; t < d; t++ {
			if ol(t) > tl(t) {
				continue
			}
			for _, c := range nb.Children[t] {
				if inst.peer.alive(c) {
					inst.peer.fab.Stats.FlexDownHops.Add(1)
					inst.send(s, t, c, ttlDown+1, owned)
					return
				}
			}
		}
	}
	// Stage 5 — drop.
	inst.peer.fab.Stats.Dropped.Add(1)
}

// send transmits the summary on tree t, recording the level visited. With
// coalescing enabled the summary parks in the peer's staging buffer
// instead of leaving immediately (see stage.go); owned as in routeNew.
func (inst *instance) send(s tuple.Summary, t, to int, ttlDown uint8, owned bool) {
	if t < len(s.Levels) {
		s.Levels[t] = int16(inst.nb.Levels[t])
	}
	p := inst.peer
	if p.fab.staging {
		p.stageSummary(inst, s, t, to, ttlDown, owned)
		return
	}
	env := &envelope{S: s, Tree: t, TTLDown: ttlDown, SentAt: p.now(), Epoch: inst.meta.Epoch}
	p.fab.send(p.id, to, runtime.ClassData, env)
}
