package mortar

import (
	"sort"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Hold-and-merge coalescing for the upstream summary path. Instead of
// transmitting every summary the moment the routing policy picks its next
// hop, interior peers park summaries in a small per-next-hop staging
// buffer. While parked, a summary destined for the same (query, epoch,
// window, tree) merges in place through the operator's combine — a bf-16
// interior node sends one merged summary where it used to send 16 — and
// everything still distinct at flush time leaves as one multi-summary
// envelope batch (wire v4) instead of one frame each.
//
// Three events flush a buffer: the batch approaching the configured byte
// ceiling (Config.SummaryBatchBytes), the hold timer (Config.SummaryHold,
// a fraction of the heartbeat period — the bound on added per-hop
// latency), and the epoch-retirement barrier (beginDrain flushes so a
// retiring epoch's last windows are not still parked when its drain
// period starts counting).
//
// Age bookkeeping is exact: each staged entry records when it was parked,
// its age advances by the park time (local-frame, via the peer's clock
// model) whenever it merges or flushes, and the batch's shared SentAt is
// stamped at flush — so the receiver's flight-time addition and syncless
// re-indexing see the same ages an unstaged path would have produced.

// stagedEnv is one parked summary. Stored by value in the buffer's slice:
// recycling the slice recycles the entries, so steady-state staging
// allocates nothing per summary.
type stagedEnv struct {
	env    envelope
	inst   *instance
	parkAt time.Duration // runtime time the age was last brought current
	n      int           // merged constituents (age weighting, as in tslist)
	// owned marks the value as exclusively this entry's, making in-place
	// combining safe. Values relayed from a received envelope are borrowed
	// (an in-process transport that duplicates delivery hands the same
	// envelope — and value — to the handler twice); the first copying
	// combine produces a fresh, owned value.
	owned bool
}

// stageBuf holds the summaries parked for one next-hop peer. The hold
// timer is per destination and armed when the first summary parks in an
// empty buffer, so an undisturbed buffer's hold is a constant — a variable
// hold would jitter the phase of periodic result streams, and a chained
// query windowing another query's results would see its inputs straddle
// slide boundaries.
type stageBuf struct {
	entries []stagedEnv
	bytes   int // running wire-size estimate
	timer   runtime.Timer
	// flush is the hold-timer callback, built once when the buffer is
	// created: arming the timer with a fresh closure would put one on the
	// heap per hold cycle.
	flush func()
}

// batchPool recycles envelope-batch shells (and their entry slices) on
// transports that consume frame bytes synchronously; in-process backends
// retain the payload in the receiver's mailbox and get fresh ones.
var batchPool = sync.Pool{New: func() any { return new(wire.EnvelopeBatch) }}

// envPool recycles single-envelope shells under the same rule.
var envPool = sync.Pool{New: func() any { return new(envelope) }}

// stageSummary parks a summary bound for peer `to` on tree t, merging it
// into an already-parked summary of the same (query, epoch, window, tree)
// when one exists. owned reports whether s.Value is exclusively the
// caller's (see stagedEnv.owned).
func (p *Peer) stageSummary(inst *instance, s tuple.Summary, t, to int, ttlDown uint8, owned bool) {
	p.fab.Stats.SummariesStaged.Add(1)
	buf := p.stage[to]
	if buf == nil {
		buf = &stageBuf{}
		buf.flush = func() { p.flushStage(to, buf) }
		if p.stage == nil {
			p.stage = make(map[int]*stageBuf)
		}
		p.stage[to] = buf
	}
	now := p.now()
	for i := range buf.entries {
		e := &buf.entries[i]
		if e.inst != inst || e.env.Tree != t || !e.env.S.Index.Equal(s.Index) {
			continue
		}
		// Bring the parked age current, then fold in the arrival the way
		// the time-space list does: count accumulates, ages average over
		// constituents, hops and TTL-down take the conservative maximum.
		e.env.S.Age += p.clock.Elapsed(now - e.parkAt)
		e.parkAt = now
		if !s.Boundary {
			e.env.S.Boundary = false
			switch {
			case s.Value == nil:
				// Nothing to fold; the parked value (possibly nil) stands.
			case e.env.S.Value == nil:
				e.env.S.Value = s.Value
				e.owned = owned
			case e.owned && inst.combineIP != nil:
				e.env.S.Value = inst.combineIP.CombineInto(e.env.S.Value, s.Value)
			default:
				e.env.S.Value = inst.op.Combine(e.env.S.Value, s.Value)
				e.owned = true // Combine allocated a fresh value
			}
		}
		e.env.S.Count += s.Count
		e.env.S.Age = (e.env.S.Age*time.Duration(e.n) + s.Age) / time.Duration(e.n+1)
		e.n++
		if s.Hops > e.env.S.Hops {
			e.env.S.Hops = s.Hops
		}
		if ttlDown > e.env.TTLDown {
			e.env.TTLDown = ttlDown
		}
		// Both vectors are exclusively ours by the time send() stages them
		// (cloned at eviction or before relay), so the fold is in place.
		e.env.S.Levels = tuple.MergeLevelsInto(e.env.S.Levels, s.Levels)
		p.fab.Stats.SummariesCoalesced.Add(1)
		return
	}
	buf.entries = append(buf.entries, stagedEnv{
		env:    envelope{S: s, Tree: t, TTLDown: ttlDown, Epoch: inst.meta.Epoch},
		inst:   inst,
		parkAt: now,
		n:      1,
		owned:  owned,
	})
	buf.bytes += wire.SummaryWireSize(&s)
	if buf.bytes >= p.fab.batchBytes {
		p.flushStage(to, buf)
		return
	}
	if len(buf.entries) == 1 {
		buf.timer = p.rtc.After(p.fab.Cfg.SummaryHold, buf.flush)
	}
}

// flushStages transmits every staged buffer — the hold-timer path and the
// drain barrier. Destinations flush in ascending order: map iteration must
// never order anything behavior-visible (simulated runs are bit-for-bit
// deterministic).
func (p *Peer) flushStages() {
	if len(p.stage) == 0 {
		return
	}
	dests := make([]int, 0, len(p.stage))
	for to, buf := range p.stage {
		if len(buf.entries) > 0 {
			dests = append(dests, to)
		}
	}
	sort.Ints(dests)
	for _, to := range dests {
		p.flushStage(to, p.stage[to])
	}
}

// flushStage transmits one buffer: a single envelope when one summary is
// parked, an envelope batch otherwise. Entry ages advance by their park
// time and the transmit stamp is taken here, so flight-time accounting at
// the receiver is exact.
func (p *Peer) flushStage(to int, buf *stageBuf) {
	if len(buf.entries) == 0 {
		return
	}
	if buf.timer != nil {
		buf.timer.Cancel()
		buf.timer = nil
	}
	now := p.now()
	fab := p.fab
	if len(buf.entries) == 1 {
		e := &buf.entries[0]
		e.env.S.Age += p.clock.Elapsed(now - e.parkAt)
		e.env.SentAt = now
		var env *envelope
		if fab.consumesBytes {
			env = envPool.Get().(*envelope)
		} else {
			env = new(envelope)
		}
		*env = e.env
		fab.send(p.id, to, runtime.ClassData, env)
		if fab.consumesBytes {
			*env = envelope{}
			envPool.Put(env)
		}
	} else {
		var b *wire.EnvelopeBatch
		if fab.consumesBytes {
			b = batchPool.Get().(*wire.EnvelopeBatch)
		} else {
			b = new(wire.EnvelopeBatch)
		}
		b.SentAt = now
		b.Envelopes = b.Envelopes[:0]
		for i := range buf.entries {
			e := &buf.entries[i]
			e.env.S.Age += p.clock.Elapsed(now - e.parkAt)
			e.env.SentAt = now
			b.Envelopes = append(b.Envelopes, e.env)
		}
		fab.send(p.id, to, runtime.ClassData, b)
		if fab.consumesBytes {
			for i := range b.Envelopes {
				b.Envelopes[i] = envelope{}
			}
			batchPool.Put(b)
		}
	}
	for i := range buf.entries {
		buf.entries[i] = stagedEnv{}
	}
	buf.entries = buf.entries[:0]
	buf.bytes = 0
}
