package mortar

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/tuple"
)

// runSeeded executes the §7.2 microbenchmark over the simulated backend
// and returns the full root result stream.
func runSeeded(t *testing.T, seed int64) []Result {
	t.Helper()
	fab, rt := testbed(t, 40, seed, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(30 * time.Second)
	if len(results) < 10 {
		t.Fatalf("only %d results", len(results))
	}
	return results
}

// The simulated backend must stay bit-for-bit deterministic through the
// runtime abstraction: the same seed yields the identical result stream —
// values, completeness counts, hop counts, and report times. This is the
// property the figure experiments rely on, and the regression guard for
// any future change to the simrt adapter.
func TestSimBackendDeterministic(t *testing.T) {
	a := runSeeded(t, 77)
	b := runSeeded(t, 77)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: run1 %d results, run2 %d results", len(a), len(b))
	}
	c := runSeeded(t, 78)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams; seeding is broken")
	}
}

// Zero-valued configs must pick up paper defaults instead of dividing by
// zero or ticking at 0s; nonsense values must be rejected.
func TestConfigValidate(t *testing.T) {
	got, err := Config{}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	def.Syncless = false // bools cannot be defaulted; zero keeps timestamp mode
	def.TTLDownMax = 0   // zero is the flex-down-disabled ablation, preserved
	def.TimeoutSlack = 0 // zero slack is likewise a legal setting
	if got != def {
		t.Fatalf("zero config normalized to %+v, want paper defaults", got)
	}

	ok := DefaultConfig()
	ok.TTLDownMax = 0 // ablation setting: flex-down disabled, not defaulted
	if v, err := ok.Validate(); err != nil || v.TTLDownMax != 0 {
		t.Fatalf("TTLDownMax 0 not preserved: %+v, %v", v, err)
	}

	bad := []Config{
		func() Config { c := DefaultConfig(); c.HeartbeatPeriod = -time.Second; return c }(),
		func() Config { c := DefaultConfig(); c.ReconcileEveryBeats = -1; return c }(),
		func() Config { c := DefaultConfig(); c.MaxStage = 7; return c }(),
		func() Config { c := DefaultConfig(); c.MaxStage = -2; return c }(),
		func() Config { c := DefaultConfig(); c.InstallChunks = -4; return c }(),
		func() Config { c := DefaultConfig(); c.NetDistAlpha = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.MaxTimeout = time.Millisecond; return c }(),
		func() Config { c := DefaultConfig(); c.TTLDownMax = -1; return c }(),
	}
	for i, c := range bad {
		if _, err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
}

// The fabric constructor must apply Validate: a zero-value config yields a
// working federation, an invalid one an error.
func TestNewFabricValidatesConfig(t *testing.T) {
	fab, rt := testbed(t, 20, 55, Config{}, nil)
	if fab.Cfg.HeartbeatPeriod != 2*time.Second || fab.Cfg.InstallChunks != 16 {
		t.Fatalf("fabric config not normalized: %+v", fab.Cfg)
	}
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(10 * time.Second)
	if fab.Stats.ResultsReported.Load() == 0 {
		t.Fatal("zero-value config produced no results")
	}

	bad := DefaultConfig()
	bad.MaxStage = 9
	// Config validation runs before any handler registration, so probing
	// with the same runtime is safe.
	if _, err := NewFabric(fab.Rt, nil, bad); err == nil {
		t.Fatal("invalid config accepted by NewFabric")
	}
}

// Removing a query must prune the liveness and duplicate-suppression maps
// its tree edges populated — otherwise long-lived peers leak an entry per
// former neighbor under churn.
func TestRemovePrunesNeighborState(t *testing.T) {
	fab, rt := testbed(t, 30, 66, DefaultConfig(), nil)
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(10 * time.Second)

	populated := 0
	for i := 0; i < fab.NumPeers(); i++ {
		if fab.Peer(i).NeighborStateSize() > 0 {
			populated++
		}
	}
	if populated < fab.NumPeers()/2 {
		t.Fatalf("only %d peers track neighbor state while the query runs", populated)
	}

	if err := fab.Remove(0, "sum1", 2); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(30 * time.Second)
	if got := fab.InstalledCount("sum1"); got != 0 {
		t.Fatalf("%d peers still host the removed query", got)
	}
	for i := 0; i < fab.NumPeers(); i++ {
		if n := fab.Peer(i).LivenessEntries(); n != 0 {
			t.Fatalf("peer %d retains %d liveness entries after removal", i, n)
		}
		// Heartbeat dedup seqs may leave a residue for the final in-flight
		// heartbeats (kept so their duplicates stay suppressed), bounded
		// by the ex-parent count — one per tree.
		if n := fab.Peer(i).NeighborStateSize(); n > 2 {
			t.Fatalf("peer %d retains %d neighbor-state entries after removal", i, n)
		}
	}
}

// Replacing a query with a higher-seq reinstall rewires trees; neighbors
// only the old wiring referenced must not linger forever. (The new trees
// are planned over the same coordinates, so most edges persist — this
// checks the maps stay bounded by the current neighbor sets, not that
// they empty.)
func TestReinstallBoundsNeighborState(t *testing.T) {
	fab, rt := testbed(t, 20, 67, DefaultConfig(), nil)
	coords := uniformCoords(20, 9)
	mk := func(seq uint64) *QueryDef {
		meta := QueryMeta{
			Name: "q", Seq: seq, OpName: "sum",
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			Root:      0,
			IssuedSim: rt.Now(),
		}
		def, err := fab.Compile(meta, nil, coords, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return def
	}
	if err := fab.Install(0, mk(1)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10 * time.Second)
	if err := fab.Install(0, mk(2)); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10 * time.Second)
	for i := 0; i < fab.NumPeers(); i++ {
		p := fab.Peer(i)
		bound := len(p.uniqueChildren()) + len(p.uniqueParents())
		// lastHeard + hbSeqSeen each track at most the current neighbor
		// set (hbSeqSeen only senders, lastHeard both directions).
		if n := p.NeighborStateSize(); n > 2*bound {
			t.Fatalf("peer %d neighbor state %d exceeds 2x current neighbors %d", i, n, bound)
		}
	}
}
