package mortar

import (
	"fmt"

	"repro/internal/runtime"
	"repro/internal/wire"
)

// This file implements query persistence (§6): the chunked install/remove
// multicast and the pair-wise reconciliation protocol that guarantees
// eventual installation and removal.

// chunk is one component of the install multicast: the set of member peers
// plus the tree edges used to forward within the component.
type chunk struct {
	head    int
	members map[int]neighbors
	forward map[int][]int
}

// chunkBudget returns the per-chunk encoded-size budget for the install
// multicast. A transport that bounds a frame (Transport.MaxFrame > 0)
// gets chunks sized to its ceiling, with headroom for the per-member
// estimate being approximate; unbounded transports (simrt, livert) return
// 0, keeping the paper's fixed InstallChunks count.
func (f *Fabric) chunkBudget() int {
	mf := f.tr.MaxFrame()
	if mf <= 0 {
		return 0
	}
	return mf - mf/8
}

// memberCost estimates the encoded bytes one member adds to an install
// chunk: its neighbors record plus the peer key and its forward-edge
// share. It encodes the real record rather than guessing, so the estimate
// tracks tree depth and fan-out.
func memberCost(nb neighbors) int {
	var w wire.Buffer
	wire.EncodeNeighbors(&w, nb)
	return w.Len() + 12
}

// buildChunks partitions the primary tree into connected components in BFS
// order; each component is multicast in parallel down its tree edges (§6:
// "the peer breaks the tree into n components and multicasts the query
// down each component in parallel"). With budgetBytes > 0 — a transport
// that bounds a frame — components close when their estimated encoding
// reaches the budget, so every install message fits the transport's
// MaxFrame; otherwise the tree splits into roughly nchunks components by
// member count, exactly the paper's fixed-count chunking.
func buildChunks(def *QueryDef, nchunks, budgetBytes int) []*chunk {
	primary := def.Trees.Trees[0]
	n := primary.NumPeers()
	if nchunks < 1 {
		nchunks = 1
	}
	limit := (n + nchunks - 1) / nchunks // members per chunk (count mode)
	var base int
	if budgetBytes > 0 {
		// Every chunk message pays the metadata plus framing; members fill
		// the rest of the budget.
		var w wire.Buffer
		wire.EncodeQueryMeta(&w, def.Meta)
		base = w.Len() + 16
		limit = budgetBytes
	}

	chunkOf := make([]int, n)
	for i := range chunkOf {
		chunkOf[i] = -1
	}
	var chunks []*chunk
	newChunk := func(head int) int {
		c := &chunk{
			head:    def.Members[head],
			members: map[int]neighbors{},
			forward: map[int][]int{},
		}
		chunks = append(chunks, c)
		return len(chunks) - 1
	}
	sizes := []int{}
	queue := []int{primary.Root}
	chunkOf[primary.Root] = newChunk(primary.Root)
	sizes = append(sizes, base)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		ci := chunkOf[v]
		c := chunks[ci]
		peer := def.Members[v]
		nb := neighborsFor(def, v)
		c.members[peer] = nb
		if budgetBytes > 0 {
			sizes[ci] += memberCost(nb)
		} else {
			sizes[ci]++
		}
		for _, ch := range primary.Children[v] {
			if sizes[ci] >= limit {
				// Component full: the child heads a new component.
				chunkOf[ch] = newChunk(ch)
				sizes = append(sizes, base)
			} else {
				chunkOf[ch] = ci
				c.forward[peer] = append(c.forward[peer], def.Members[ch])
			}
			queue = append(queue, ch)
		}
	}
	return chunks
}

// subChunk restricts an install message to the subtree reachable from a
// forwarding target, so forwarded messages shrink as they descend.
func subChunk(m msgInstall, from int) msgInstall {
	out := msgInstall{
		Meta:    m.Meta,
		Members: map[int]neighbors{},
		Forward: map[int][]int{},
	}
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if nb, ok := m.Members[v]; ok {
			out.Members[v] = nb
		}
		if kids, ok := m.Forward[v]; ok {
			out.Forward[v] = kids
			queue = append(queue, kids...)
		}
	}
	return out
}

// startInstall runs at the issuing peer (the query root): install locally,
// then multicast.
func (p *Peer) startInstall(def *QueryDef) {
	chunks := buildChunks(def, p.fab.Cfg.InstallChunks, p.fab.chunkBudget())
	// Install locally first (the issuer is a member).
	for _, c := range chunks {
		if nb, ok := c.members[p.id]; ok {
			p.installLocal(def.Meta, &nb, def)
		}
	}
	for _, c := range chunks {
		m := msgInstall{Meta: def.Meta, Members: c.members, Forward: c.forward}
		if c.head == p.id {
			// Forward our own chunk's children directly.
			for _, next := range c.forward[p.id] {
				p.fab.send(p.id, next, runtime.ClassControl, subChunk(m, next))
			}
			continue
		}
		p.fab.send(p.id, c.head, runtime.ClassControl, m)
	}
}

// installLocal creates (or refreshes) the operator instance. def is non-nil
// only at the root/issuer.
func (p *Peer) installLocal(meta QueryMeta, nb *neighbors, def *QueryDef) {
	if seq, ok := p.removed[meta.Name]; ok && seq >= meta.Seq {
		return // removal supersedes this install
	}
	replaced := false
	if old, ok := p.insts[meta.Name]; ok {
		if old.meta.Seq >= meta.Seq {
			if nb != nil && !old.wired {
				old.wire(*nb)
			}
			return
		}
		old.stop()
		delete(p.insts, meta.Name)
		replaced = true
	}
	inst, err := p.newInstance(meta)
	if err != nil {
		if replaced {
			p.pruneNeighborState()
		}
		return // unknown operator on this peer; reconciliation may retry
	}
	inst.def = def
	p.insts[meta.Name] = inst
	if nb != nil {
		inst.wire(*nb)
		if replaced {
			// The superseded instance's tree positions are gone; any
			// neighbors not shared with the new wiring are stale.
			p.pruneNeighborState()
		}
	} else {
		p.pendingTopo[meta.Name] = true
		p.fab.send(p.id, meta.Root, runtime.ClassControl, msgTopoRequest{Query: meta.Name, Peer: p.id})
	}
	p.ensureHeartbeats()
	inst.start()
}

// wire attaches the instance to its tree positions and joins the heartbeat
// mesh.
func (inst *instance) wire(nb neighbors) {
	inst.nb = nb
	inst.wired = true
	p := inst.peer
	for _, pa := range nb.Parents {
		if pa >= 0 {
			p.markHeard(pa)
		}
	}
	for _, kids := range nb.Children {
		for _, c := range kids {
			p.markHeard(c)
		}
	}
	p.ensureHeartbeats()
	delete(p.pendingTopo, inst.meta.Name)
}

func (p *Peer) handleInstall(src int, m msgInstall) {
	p.markHeard(src)
	nb, ok := m.Members[p.id]
	if ok {
		p.installLocal(m.Meta, &nb, nil)
	}
	for _, next := range m.Forward[p.id] {
		p.fab.send(p.id, next, runtime.ClassControl, subChunk(m, next))
	}
}

// startRemove multicasts removal using the definition cached at the root.
func (p *Peer) startRemove(name string, seq uint64) error {
	inst, ok := p.insts[name]
	if !ok || inst.def == nil {
		return fmt.Errorf("mortar: peer %d does not hold the definition of %q", p.id, name)
	}
	chunks := buildChunks(inst.def, p.fab.Cfg.InstallChunks, p.fab.chunkBudget())
	p.removeLocal(name, seq)
	for _, c := range chunks {
		m := msgRemove{Name: name, Seq: seq, Forward: c.forward}
		if c.head == p.id {
			for _, next := range c.forward[p.id] {
				p.fab.send(p.id, next, runtime.ClassControl, m)
			}
			continue
		}
		p.fab.send(p.id, c.head, runtime.ClassControl, m)
	}
	return nil
}

func (p *Peer) removeLocal(name string, seq uint64) {
	if old, ok := p.removed[name]; ok && old >= seq {
		return
	}
	p.removed[name] = seq
	if inst, ok := p.insts[name]; ok && inst.meta.Seq < seq {
		inst.stop()
		delete(p.insts, name)
		// The removed query's tree edges may have been the only reason we
		// tracked some neighbors; drop their liveness and dedup state.
		p.pruneNeighborState()
	}
	delete(p.pendingTopo, name)
}

func (p *Peer) handleRemove(src int, m msgRemove) {
	p.markHeard(src)
	p.removeLocal(m.Name, m.Seq)
	for _, next := range m.Forward[p.id] {
		p.fab.send(p.id, next, runtime.ClassControl, m)
	}
}

// --- Pair-wise reconciliation (§6.1) ---

// reconSummary describes this peer's installed queries and cached
// removals.
func (p *Peer) reconSummary() msgReconSummary {
	m := msgReconSummary{
		Installed: make(map[string]uint64, len(p.insts)),
		Removed:   make(map[string]uint64, len(p.removed)),
	}
	for name, inst := range p.insts {
		m.Installed[name] = inst.meta.Seq
		m.Metas = append(m.Metas, inst.meta)
	}
	for name, seq := range p.removed {
		m.Removed[name] = seq
	}
	return m
}

// handleReconSummary performs the reconciliation set computation: adopt
// installs we missed (IC), apply removals we missed (RC), and reply with
// what the sender is missing.
func (p *Peer) handleReconSummary(src int, m msgReconSummary) {
	// RC for us: removals the peer knows that supersede our installs.
	for name, seq := range m.Removed {
		p.removeLocal(name, seq)
	}
	// IC for us: installs we missed (and have not removed at >= seq).
	for _, meta := range m.Metas {
		if inst, ok := p.insts[meta.Name]; ok && inst.meta.Seq >= meta.Seq {
			continue
		}
		if seq, ok := p.removed[meta.Name]; ok && seq >= meta.Seq {
			continue
		}
		p.installLocal(meta, nil, nil)
	}
	// Reply with what the sender is missing.
	reply := msgReconDefs{Removed: map[string]uint64{}}
	for name, inst := range p.insts {
		if seq, ok := m.Installed[name]; !ok || seq < inst.meta.Seq {
			if rseq, ok := m.Removed[name]; ok && rseq >= inst.meta.Seq {
				continue
			}
			reply.Metas = append(reply.Metas, inst.meta)
		}
	}
	for name, seq := range p.removed {
		if old, ok := m.Removed[name]; !ok || old < seq {
			reply.Removed[name] = seq
		}
	}
	if len(reply.Metas) > 0 || len(reply.Removed) > 0 {
		p.fab.send(p.id, src, runtime.ClassControl, reply)
	}
}

func (p *Peer) handleReconDefs(src int, m msgReconDefs) {
	for name, seq := range m.Removed {
		p.removeLocal(name, seq)
	}
	for _, meta := range m.Metas {
		if inst, ok := p.insts[meta.Name]; ok && inst.meta.Seq >= meta.Seq {
			continue
		}
		if seq, ok := p.removed[meta.Name]; ok && seq >= meta.Seq {
			continue
		}
		p.installLocal(meta, nil, nil)
	}
}

// --- Topology service (§6.1) ---

// handleTopoRequest runs at a query root: return the requester's
// parent/child sets per tree, "acting as a topology server".
func (p *Peer) handleTopoRequest(src int, m msgTopoRequest) {
	if seq, ok := p.removed[m.Query]; ok {
		p.fab.send(p.id, src, runtime.ClassControl, msgTopoReply{Query: m.Query, Seq: seq, Unknown: true})
		return
	}
	inst, ok := p.insts[m.Query]
	if !ok || inst.def == nil {
		return // not the topology server for this query; requester retries
	}
	mi := inst.def.memberIndex(m.Peer)
	if mi < 0 {
		p.fab.send(p.id, src, runtime.ClassControl, msgTopoReply{Query: m.Query, Seq: inst.meta.Seq, Unknown: true})
		return
	}
	p.fab.send(p.id, src, runtime.ClassControl, msgTopoReply{
		Query: m.Query,
		Seq:   inst.meta.Seq,
		NB:    neighborsFor(inst.def, mi),
	})
}

func (p *Peer) handleTopoReply(src int, m msgTopoReply) {
	inst, ok := p.insts[m.Query]
	if !ok {
		return
	}
	if m.Unknown {
		p.removeLocal(m.Query, m.Seq)
		return
	}
	if !inst.wired {
		inst.wire(m.NB)
	}
}

// retryPendingTopo re-requests tree positions for adopted-but-unwired
// queries; called on reconciliation beats.
func (p *Peer) retryPendingTopo() {
	for name := range p.pendingTopo {
		if inst, ok := p.insts[name]; ok && !inst.wired {
			p.fab.send(p.id, inst.meta.Root, runtime.ClassControl, msgTopoRequest{Query: name, Peer: p.id})
		}
	}
}
