package mortar

import (
	"fmt"
	"time"

	"repro/internal/runtime"
	"repro/internal/wire"
)

// This file implements query persistence (§6): the chunked install/remove
// multicast and the pair-wise reconciliation protocol that guarantees
// eventual installation and removal — both keyed on (name, epoch) so a
// replanned query can run its old and new epochs side by side — plus the
// epoch hand-off of a live replan: install acknowledgements flowing back
// to the root, and the root's make-before-break retirement of the old
// epoch once the new one is fully wired.

// chunk is one component of the install multicast: the set of member peers
// plus the tree edges used to forward within the component.
type chunk struct {
	head    int
	members map[int]neighbors
	forward map[int][]int
}

// chunkBudget returns the per-chunk encoded-size budget for the install
// multicast. A transport that bounds a frame (Transport.MaxFrame > 0)
// gets chunks sized to its ceiling, with headroom for the per-member
// estimate being approximate; unbounded transports (simrt, livert) return
// 0, keeping the paper's fixed InstallChunks count.
func (f *Fabric) chunkBudget() int {
	mf := f.tr.MaxFrame()
	if mf <= 0 {
		return 0
	}
	return mf - mf/8
}

// memberCost estimates the encoded bytes one member adds to an install
// chunk: its neighbors record plus the peer key and its forward-edge
// share. It encodes the real record rather than guessing, so the estimate
// tracks tree depth and fan-out.
func memberCost(nb neighbors) int {
	var w wire.Buffer
	wire.EncodeNeighbors(&w, nb)
	return w.Len() + 12
}

// buildChunks partitions the primary tree into connected components in BFS
// order; each component is multicast in parallel down its tree edges (§6:
// "the peer breaks the tree into n components and multicasts the query
// down each component in parallel"). With budgetBytes > 0 — a transport
// that bounds a frame — components close when their estimated encoding
// reaches the budget, so every install message fits the transport's
// MaxFrame; otherwise the tree splits into roughly nchunks components by
// member count, exactly the paper's fixed-count chunking.
func buildChunks(def *QueryDef, nchunks, budgetBytes int) []*chunk {
	primary := def.Trees.Trees[0]
	n := primary.NumPeers()
	if nchunks < 1 {
		nchunks = 1
	}
	limit := (n + nchunks - 1) / nchunks // members per chunk (count mode)
	var base int
	if budgetBytes > 0 {
		// Every chunk message pays the metadata plus framing; members fill
		// the rest of the budget.
		var w wire.Buffer
		wire.EncodeQueryMeta(&w, def.Meta)
		base = w.Len() + 16
		limit = budgetBytes
	}

	chunkOf := make([]int, n)
	for i := range chunkOf {
		chunkOf[i] = -1
	}
	var chunks []*chunk
	newChunk := func(head int) int {
		c := &chunk{
			head:    def.Members[head],
			members: map[int]neighbors{},
			forward: map[int][]int{},
		}
		chunks = append(chunks, c)
		return len(chunks) - 1
	}
	sizes := []int{}
	queue := []int{primary.Root}
	chunkOf[primary.Root] = newChunk(primary.Root)
	sizes = append(sizes, base)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		ci := chunkOf[v]
		c := chunks[ci]
		peer := def.Members[v]
		nb := neighborsFor(def, v)
		c.members[peer] = nb
		if budgetBytes > 0 {
			sizes[ci] += memberCost(nb)
		} else {
			sizes[ci]++
		}
		for _, ch := range primary.Children[v] {
			if sizes[ci] >= limit {
				// Component full: the child heads a new component.
				chunkOf[ch] = newChunk(ch)
				sizes = append(sizes, base)
			} else {
				chunkOf[ch] = ci
				c.forward[peer] = append(c.forward[peer], def.Members[ch])
			}
			queue = append(queue, ch)
		}
	}
	return chunks
}

// subChunk restricts an install message to the subtree reachable from a
// forwarding target, so forwarded messages shrink as they descend.
func subChunk(m msgInstall, from int) msgInstall {
	out := msgInstall{
		Meta:    m.Meta,
		Members: map[int]neighbors{},
		Forward: map[int][]int{},
	}
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if nb, ok := m.Members[v]; ok {
			out.Members[v] = nb
		}
		if kids, ok := m.Forward[v]; ok {
			out.Forward[v] = kids
			queue = append(queue, kids...)
		}
	}
	return out
}

// startInstall runs at the issuing peer (the query root): install locally,
// then multicast.
func (p *Peer) startInstall(def *QueryDef) {
	chunks := buildChunks(def, p.fab.Cfg.InstallChunks, p.fab.chunkBudget())
	// Install locally first (the issuer is a member).
	for _, c := range chunks {
		if nb, ok := c.members[p.id]; ok {
			p.installLocal(def.Meta, &nb, def)
		}
	}
	for _, c := range chunks {
		m := msgInstall{Meta: def.Meta, Members: c.members, Forward: c.forward}
		if c.head == p.id {
			// Forward our own chunk's children directly.
			for _, next := range c.forward[p.id] {
				p.fab.send(p.id, next, runtime.ClassControl, subChunk(m, next))
			}
			continue
		}
		p.fab.send(p.id, c.head, runtime.ClassControl, m)
	}
}

// installLocal creates (or refreshes) the operator instance for
// (meta.Name, meta.Epoch). def is non-nil only at the root/issuer.
func (p *Peer) installLocal(meta QueryMeta, nb *neighbors, def *QueryDef) {
	if p.covered(meta.Name, meta.Seq, meta.Epoch) {
		return // removal supersedes this install
	}
	key := instKey{name: meta.Name, epoch: meta.Epoch}
	replaced := false
	if old, ok := p.insts[key]; ok {
		if old.meta.Seq >= meta.Seq {
			if nb != nil && !old.wired {
				old.wire(*nb)
			}
			return
		}
		old.stop()
		delete(p.insts, key)
		replaced = true
	}
	inst, err := p.newInstance(meta)
	if err != nil {
		if replaced {
			p.pruneNeighborState()
		}
		return // unknown operator on this peer; reconciliation may retry
	}
	inst.def = def
	p.insts[key] = inst
	if nb != nil {
		inst.wire(*nb)
		if replaced {
			// The superseded instance's tree positions are gone; any
			// neighbors not shared with the new wiring are stale.
			p.pruneNeighborState()
		}
	} else {
		p.pendingTopo[key] = true
		p.fab.send(p.id, meta.Root, runtime.ClassControl,
			msgTopoRequest{Query: meta.Name, Epoch: meta.Epoch, Peer: p.id})
	}
	p.ensureHeartbeats()
	inst.start()
}

// wire attaches the instance to its tree positions and joins the heartbeat
// mesh.
func (inst *instance) wire(nb neighbors) {
	inst.nb = nb
	inst.wired = true
	inst.cacheOwnLevels()
	p := inst.peer
	for _, pa := range nb.Parents {
		if pa >= 0 {
			p.markHeard(pa)
		}
	}
	for _, kids := range nb.Children {
		for _, c := range kids {
			p.markHeard(c)
		}
	}
	p.ensureHeartbeats()
	delete(p.pendingTopo, instKey{name: inst.meta.Name, epoch: inst.meta.Epoch})
	inst.maybeAck()
}

// maybeAck reports a wired epoch back to the query root, which counts the
// acks to drive make-before-break retirement. Epoch-0 installs are silent:
// the initial install has nothing to retire, so the paper's install
// traffic is unchanged. The root records its own ack directly.
func (inst *instance) maybeAck() {
	if inst.meta.Epoch == 0 || !inst.wired {
		return
	}
	p := inst.peer
	if inst.meta.Root == p.id {
		p.recordAck(inst, p.id)
		return
	}
	p.fab.send(p.id, inst.meta.Root, runtime.ClassControl, msgInstallAck{
		Query: inst.meta.Name,
		Epoch: inst.meta.Epoch,
		Seq:   inst.meta.Seq,
		Peer:  p.id,
	})
}

// reackMigratingEpochs re-sends install acks on reconciliation beats while
// this peer still hosts an older epoch of the same query: a lost ack must
// not stall a retirement, and the loop terminates on its own because the
// retirement removes the older epoch that triggers the re-ack.
func (p *Peer) reackMigratingEpochs() {
	for _, k := range p.sortedInstKeys() {
		inst := p.insts[k]
		if k.epoch == 0 || !inst.wired {
			continue
		}
		for other := range p.insts {
			if other.name == k.name && other.epoch < k.epoch {
				inst.maybeAck()
				break
			}
		}
	}
}

func (p *Peer) handleInstall(src int, m msgInstall) {
	p.markHeard(src)
	nb, ok := m.Members[p.id]
	if ok {
		p.installLocal(m.Meta, &nb, nil)
	}
	for _, next := range m.Forward[p.id] {
		p.fab.send(p.id, next, runtime.ClassControl, subChunk(m, next))
	}
}

// --- Epoch hand-off (make-before-break) ---

// handleInstallAck runs at a query root: record that a member wired the
// epoch, and retire the previous epoch once every member has.
func (p *Peer) handleInstallAck(src int, m msgInstallAck) {
	inst, ok := p.insts[instKey{name: m.Query, epoch: m.Epoch}]
	if !ok || inst.def == nil || inst.meta.Seq != m.Seq {
		return // not (or no longer) the issuer of this epoch
	}
	p.recordAck(inst, m.Peer)
}

func (p *Peer) recordAck(inst *instance, peer int) {
	if inst.def == nil || inst.def.memberIndex(peer) < 0 {
		return
	}
	if inst.acked == nil {
		inst.acked = make(map[int]struct{}, len(inst.def.Members))
	}
	inst.acked[peer] = struct{}{}
	p.maybeRetireOld(inst)
}

// retireReportCap bounds how long a fully-acked new epoch waits for its
// completeness to catch the old epoch's before retiring it anyway — the
// safety valve that keeps a migration from stalling behind a permanently
// degraded old plan.
const retireReportCap = 10

// maybeRetireOld completes a migration. Two conditions gate the hand-off:
// every member of the new epoch has acked it installed-and-wired, and the
// new epoch's root has reported completeness at least matching the old
// epoch's most recent report (wiring alone is not enough — a fresh epoch
// still needs a few windows to learn netDist, and retiring early would
// dip completeness the moment the old epoch stops windowing at the
// sources). Then the root multicasts an epoch-scoped removal retiring
// every older epoch: make-before-break.
func (p *Peer) maybeRetireOld(inst *instance) {
	if inst.retired || inst.meta.Epoch == 0 || inst.def == nil {
		return
	}
	if len(inst.acked) < len(inst.def.Members) {
		return
	}
	// The newest older epoch's definition drives the removal multicast's
	// chunking (it is that tree set being torn down).
	var old *instance
	for k, cand := range p.insts {
		if k.name != inst.meta.Name || k.epoch >= inst.meta.Epoch || cand.draining {
			continue
		}
		if old == nil || k.epoch > old.meta.Epoch {
			old = cand
		}
	}
	if old == nil {
		inst.retired = true
		return // nothing left to retire
	}
	if inst.lastCount < old.lastCount && inst.reportsAfterAck < retireReportCap {
		return // new epoch not yet performing at the old one's level
	}
	inst.retired = true
	p.fab.Stats.EpochsRetired.Add(1)
	p.startRemoveWith(old.def, inst.meta.Name, inst.meta.Seq, inst.meta.Epoch-1)
}

// --- Removal ---

// startRemove multicasts a removal using a definition cached at the root;
// epoch scopes it (wire.AllEpochs removes the whole query).
func (p *Peer) startRemove(name string, seq uint64, epoch uint32) error {
	def := p.defOf(name, epoch)
	if def == nil {
		return fmt.Errorf("mortar: peer %d does not hold a definition of %q", p.id, name)
	}
	p.startRemoveWith(def, name, seq, epoch)
	return nil
}

func (p *Peer) startRemoveWith(def *QueryDef, name string, seq uint64, epoch uint32) {
	if def == nil {
		return
	}
	chunks := buildChunks(def, p.fab.Cfg.InstallChunks, p.fab.chunkBudget())
	p.removeLocal(name, seq, epoch)
	for _, c := range chunks {
		m := msgRemove{Name: name, Seq: seq, Epoch: epoch, Forward: c.forward}
		if c.head == p.id {
			for _, next := range c.forward[p.id] {
				p.fab.send(p.id, next, runtime.ClassControl, m)
			}
			continue
		}
		p.fab.send(p.id, c.head, runtime.ClassControl, m)
	}
}

// defOf returns the cached definition of the given epoch if this peer
// holds it, else the newest definition of the name it holds at all (a
// whole-query removal chunks along whatever tree set the root still has).
func (p *Peer) defOf(name string, epoch uint32) *QueryDef {
	if inst, ok := p.insts[instKey{name: name, epoch: epoch}]; ok && inst.def != nil {
		return inst.def
	}
	var best *instance
	for k, inst := range p.insts {
		if k.name != name || inst.def == nil {
			continue
		}
		if best == nil || k.epoch > best.meta.Epoch {
			best = inst
		}
	}
	if best == nil {
		return nil
	}
	return best.def
}

// maxMarksPerName bounds one query name's removal antichain. Marks from
// one management history are totally ordered (each later removal has a
// higher seq and an equal or wider scope), so the set only grows past one
// entry through whole-query-removal + re-creation cycles; the cap is a
// hostile-input backstop, evicting the oldest command if ever reached.
const maxMarksPerName = 8

// marksCover reports whether any mark in the set covers (seq, epoch).
func marksCover(marks []wire.RemovedMark, seq uint64, epoch uint32) bool {
	for _, m := range marks {
		if m.Covers(seq, epoch) {
			return true
		}
	}
	return false
}

// covered reports whether a cached removal supersedes an install of the
// given (seq, epoch).
func (p *Peer) covered(name string, seq uint64, epoch uint32) bool {
	return marksCover(p.removed[name], seq, epoch)
}

// addMark folds one removal command into the name's non-dominated mark
// set; it reports false when an existing mark already dominates it (a
// duplicate delivery, already applied).
func (p *Peer) addMark(name string, mark wire.RemovedMark) bool {
	marks := p.removed[name]
	for _, m := range marks {
		if m.Dominates(mark) {
			return false
		}
	}
	kept := make([]wire.RemovedMark, 0, len(marks)+1)
	for _, m := range marks {
		if !mark.Dominates(m) {
			kept = append(kept, m)
		}
	}
	kept = append(kept, mark)
	if len(kept) > maxMarksPerName {
		wire.SortMarks(kept)
		kept = kept[1:] // evict the oldest command
	}
	p.removed[name] = kept
	return true
}

// removeLocal applies one removal command: record the mark (so delayed
// installs of covered epochs are suppressed) and tear down covered
// instances. Two guards make stale removes documented no-ops at every
// peer: an instance with seq >= the removal's is never touched (a stale
// or replayed remove cannot undo a newer install), and an instance with
// epoch > the removal's is never touched (a delayed old-epoch retirement
// cannot tear down the epoch that replaced it). Whole-query removals
// (wire.AllEpochs) tear down immediately, as the paper's removal does;
// epoch-scoped retirements drain — in-flight windows keep merging and
// routing until the drain period ends.
func (p *Peer) removeLocal(name string, seq uint64, epoch uint32) {
	if !p.addMark(name, wire.RemovedMark{Seq: seq, Epoch: epoch}) {
		return // duplicate of the multicast, already applied
	}
	drain := time.Duration(float64(p.fab.Cfg.HeartbeatPeriod) * p.fab.Cfg.LivenessMultiple)
	for k, inst := range p.insts {
		if k.name != name || k.epoch > epoch || inst.meta.Seq >= seq {
			continue
		}
		if epoch == wire.AllEpochs {
			inst.stop()
			delete(p.insts, k)
			// The removed query's tree edges may have been the only reason
			// we tracked some neighbors; drop their liveness and dedup
			// state.
			p.pruneNeighborState()
		} else {
			inst.beginDrain(drain)
		}
	}
	for k := range p.pendingTopo {
		if k.name == name && k.epoch <= epoch {
			delete(p.pendingTopo, k)
		}
	}
}

func (p *Peer) handleRemove(src int, m msgRemove) {
	p.markHeard(src)
	p.removeLocal(m.Name, m.Seq, m.Epoch)
	for _, next := range m.Forward[p.id] {
		p.fab.send(p.id, next, runtime.ClassControl, m)
	}
}

// --- Pair-wise reconciliation (§6.1) ---

// missingMarks returns the marks of ours the sender's set does not
// dominate — what it still needs to learn.
func missingMarks(ours, theirs []wire.RemovedMark) []wire.RemovedMark {
	var out []wire.RemovedMark
	for _, mark := range ours {
		dominated := false
		for _, t := range theirs {
			if t.Dominates(mark) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, mark)
		}
	}
	return out
}

// reconSummary describes this peer's installed instances — keyed
// (name, epoch) — and cached removals. Draining instances are omitted:
// they are on their way out and must not be re-offered.
func (p *Peer) reconSummary() msgReconSummary {
	m := msgReconSummary{
		Installed: make(map[wire.QueryKey]uint64, len(p.insts)),
		Removed:   make(map[string][]wire.RemovedMark, len(p.removed)),
	}
	for _, k := range p.sortedInstKeys() {
		inst := p.insts[k]
		if inst.draining {
			continue
		}
		m.Installed[wire.QueryKey{Name: k.name, Epoch: k.epoch}] = inst.meta.Seq
		m.Metas = append(m.Metas, inst.meta)
	}
	for name, marks := range p.removed {
		m.Removed[name] = append([]wire.RemovedMark(nil), marks...)
	}
	return m
}

// handleReconSummary performs the reconciliation set computation: adopt
// installs we missed (IC), apply removals we missed (RC), and reply with
// what the sender is missing.
func (p *Peer) handleReconSummary(src int, m msgReconSummary) {
	// RC for us: removals the peer knows that supersede our installs.
	for name, marks := range m.Removed {
		for _, mark := range marks {
			p.removeLocal(name, mark.Seq, mark.Epoch)
		}
	}
	// IC for us: (name, epoch) instances we missed and have not removed.
	for _, meta := range m.Metas {
		if inst, ok := p.insts[instKey{name: meta.Name, epoch: meta.Epoch}]; ok && inst.meta.Seq >= meta.Seq {
			continue
		}
		if p.covered(meta.Name, meta.Seq, meta.Epoch) {
			continue
		}
		p.installLocal(meta, nil, nil)
	}
	// Reply with what the sender is missing.
	reply := msgReconDefs{Removed: map[string][]wire.RemovedMark{}}
	for _, k := range p.sortedInstKeys() {
		inst := p.insts[k]
		if inst.draining {
			continue
		}
		if seq, ok := m.Installed[wire.QueryKey{Name: k.name, Epoch: k.epoch}]; !ok || seq < inst.meta.Seq {
			if marksCover(m.Removed[k.name], inst.meta.Seq, k.epoch) {
				continue
			}
			reply.Metas = append(reply.Metas, inst.meta)
		}
	}
	for name, marks := range p.removed {
		if missing := missingMarks(marks, m.Removed[name]); len(missing) > 0 {
			reply.Removed[name] = missing
		}
	}
	if len(reply.Metas) > 0 || len(reply.Removed) > 0 {
		p.fab.send(p.id, src, runtime.ClassControl, reply)
	}
}

func (p *Peer) handleReconDefs(src int, m msgReconDefs) {
	for name, marks := range m.Removed {
		for _, mark := range marks {
			p.removeLocal(name, mark.Seq, mark.Epoch)
		}
	}
	for _, meta := range m.Metas {
		if inst, ok := p.insts[instKey{name: meta.Name, epoch: meta.Epoch}]; ok && inst.meta.Seq >= meta.Seq {
			continue
		}
		if p.covered(meta.Name, meta.Seq, meta.Epoch) {
			continue
		}
		p.installLocal(meta, nil, nil)
	}
}

// --- Topology service (§6.1) ---

// handleTopoRequest runs at a query root: return the requester's
// parent/child sets per tree of the named epoch, "acting as a topology
// server".
func (p *Peer) handleTopoRequest(src int, m msgTopoRequest) {
	inst, ok := p.insts[instKey{name: m.Query, epoch: m.Epoch}]
	if !ok || inst.def == nil || inst.draining {
		// A covering removal mark is authoritative: tell the requester the
		// epoch is gone, quoting the widest covering mark's seq. (The live
		// instance is consulted first — a removal of a prior incarnation
		// must not shadow a re-created query.)
		var best wire.RemovedMark
		found := false
		for _, mark := range p.removed[m.Query] {
			if m.Epoch <= mark.Epoch && (!found || mark.Seq > best.Seq) {
				best, found = mark, true
			}
		}
		if found {
			p.fab.send(p.id, src, runtime.ClassControl,
				msgTopoReply{Query: m.Query, Epoch: m.Epoch, Seq: best.Seq, Unknown: true})
		}
		return // else: not the topology server for this epoch; requester retries
	}
	mi := inst.def.memberIndex(m.Peer)
	if mi < 0 {
		p.fab.send(p.id, src, runtime.ClassControl,
			msgTopoReply{Query: m.Query, Epoch: m.Epoch, Seq: inst.meta.Seq, Unknown: true})
		return
	}
	p.fab.send(p.id, src, runtime.ClassControl, msgTopoReply{
		Query: m.Query,
		Epoch: m.Epoch,
		Seq:   inst.meta.Seq,
		NB:    neighborsFor(inst.def, mi),
	})
}

func (p *Peer) handleTopoReply(src int, m msgTopoReply) {
	inst, ok := p.insts[instKey{name: m.Query, epoch: m.Epoch}]
	if !ok {
		return
	}
	if m.Unknown {
		p.removeLocal(m.Query, m.Seq, m.Epoch)
		return
	}
	if !inst.wired {
		inst.wire(m.NB)
	}
}

// retryPendingTopo re-requests tree positions for adopted-but-unwired
// instances; called on reconciliation beats.
func (p *Peer) retryPendingTopo() {
	for key := range p.pendingTopo {
		if inst, ok := p.insts[key]; ok && !inst.wired {
			p.fab.send(p.id, inst.meta.Root, runtime.ClassControl,
				msgTopoRequest{Query: key.name, Epoch: key.epoch, Peer: p.id})
		}
	}
}
