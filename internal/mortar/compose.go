package mortar

import (
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Query composition (§2.2): a query "may take as input one or more raw
// sensor data streams or subscribe to existing data streams to compose
// complex data processing operations". Subscriptions attach to a query's
// root output stream; Chain converts each result into raw tuples for a
// downstream query whose source operator runs at the same peer. The Wi-Fi
// location service composes select -> topk -> trilat this way (§7.4).

// Subscribe invokes fn for every result the named query's root reports, in
// addition to the fabric-wide OnResult hook.
func (f *Fabric) Subscribe(query string, fn func(Result)) {
	prev := f.OnResult
	f.OnResult = func(r Result) {
		if prev != nil {
			prev(r)
		}
		if r.Query == query {
			fn(r)
		}
	}
}

// Chain feeds the results of query `from` into query `to` as raw tuples at
// the downstream query's root peer. Scored-entry results (top-k, union)
// fan out into one raw per entry with Vals = payload + score; scalar
// results become a single raw.
func (f *Fabric) Chain(from string, toRoot int) {
	f.Subscribe(from, func(r Result) {
		for _, raw := range ResultToRaws(r) {
			f.Inject(toRoot, raw)
		}
	})
}

// ResultToRaws converts a root result into raw tuples for a downstream
// operator.
func ResultToRaws(r Result) []tuple.Raw {
	switch v := r.Value.(type) {
	case nil:
		return nil
	case []wire.ScoredEntry:
		out := make([]tuple.Raw, 0, len(v))
		for _, e := range v {
			vals := append(append([]float64(nil), e.Payload...), e.Score)
			out = append(out, tuple.Raw{Key: e.Key, Vals: vals})
		}
		return out
	case float64:
		return []tuple.Raw{{Vals: []float64{v}}}
	case []float64:
		return []tuple.Raw{{Vals: append([]float64(nil), v...)}}
	case wire.Coord:
		return []tuple.Raw{{Vals: []float64{v.X, v.Y}}}
	case map[string]float64:
		out := make([]tuple.Raw, 0, len(v))
		for k, c := range v {
			out = append(out, tuple.Raw{Key: k, Vals: []float64{c}})
		}
		return out
	default:
		return nil
	}
}
