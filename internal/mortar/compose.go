package mortar

import (
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Query composition (§2.2): a query "may take as input one or more raw
// sensor data streams or subscribe to existing data streams to compose
// complex data processing operations". Subscriptions attach to a query's
// root output stream; Chain converts each result into raw tuples for a
// downstream query whose source operator runs at the same peer. The Wi-Fi
// location service composes select -> topk -> trilat this way (§7.4).

// Subscribe invokes fn for every result the named query's root reports, in
// addition to the fabric-wide OnResult hook. Unlike assigning OnResult,
// subscribing is synchronized and safe while queries are already live. The
// returned cancel func detaches the callback; without it a long-lived
// fabric serving transient consumers (the HTTP gateway's streams) would
// leak one callback per departed client. Cancel is idempotent and safe
// concurrently with emission — a callback already snapshotted by an
// in-flight emit may run once more after cancel returns.
func (f *Fabric) Subscribe(query string, fn func(Result)) (cancel func()) {
	return f.SubscribeAll(func(r Result) {
		if r.Query == query {
			fn(r)
		}
	})
}

// SubscribeAll invokes fn for every root-reported result of every query,
// returning a cancel func that detaches it (see Subscribe).
func (f *Fabric) SubscribeAll(fn func(Result)) (cancel func()) {
	f.subMu.Lock()
	f.subSeq++
	id := f.subSeq
	// Copy-on-write so emitResult can iterate a snapshot without holding
	// the lock across callbacks.
	subs := make([]subEntry, len(f.subs), len(f.subs)+1)
	copy(subs, f.subs)
	f.subs = append(subs, subEntry{id: id, fn: fn})
	f.subMu.Unlock()
	return func() {
		f.subMu.Lock()
		kept := make([]subEntry, 0, len(f.subs))
		for _, s := range f.subs {
			if s.id != id {
				kept = append(kept, s)
			}
		}
		f.subs = kept
		f.subMu.Unlock()
	}
}

// Chain feeds the results of query `from` into query `to` as raw tuples at
// the downstream query's root peer. Scored-entry results (top-k, union)
// fan out into one raw per entry with Vals = payload + score; scalar
// results become a single raw. The returned cancel func severs the chain
// (removing the downstream query must also stop feeding it).
func (f *Fabric) Chain(from string, toRoot int) (cancel func()) {
	return f.Subscribe(from, func(r Result) {
		for _, raw := range ResultToRaws(r) {
			f.Inject(toRoot, raw)
		}
	})
}

// ResultToRaws converts a root result into raw tuples for a downstream
// operator.
func ResultToRaws(r Result) []tuple.Raw {
	switch v := r.Value.(type) {
	case nil:
		return nil
	case []wire.ScoredEntry:
		out := make([]tuple.Raw, 0, len(v))
		for _, e := range v {
			vals := append(append([]float64(nil), e.Payload...), e.Score)
			out = append(out, tuple.Raw{Key: e.Key, Vals: vals})
		}
		return out
	case float64:
		return []tuple.Raw{{Vals: []float64{v}}}
	case []float64:
		return []tuple.Raw{{Vals: append([]float64(nil), v...)}}
	case wire.Coord:
		return []tuple.Raw{{Vals: []float64{v.X, v.Y}}}
	case map[string]float64:
		out := make([]tuple.Raw, 0, len(v))
		for k, c := range v {
			out = append(out, tuple.Raw{Key: k, Vals: []float64{c}})
		}
		return out
	default:
		return nil
	}
}
