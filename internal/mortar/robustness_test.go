package mortar

import (
	"testing"
	"time"

	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
)

// lossyTestbed builds a fabric whose links drop a fraction of packets —
// Mortar is best-effort and must degrade gracefully, not wedge.
func lossyTestbed(t *testing.T, hosts int, loss float64, seed int64) (*Fabric, *simrt.Runtime) {
	t.Helper()
	rt := simrt.NewPaper(seed, hosts, simrt.TopoOptions{Stubs: 8, Transits: 2, Loss: loss})
	fab, err := NewFabric(rt, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return fab, rt
}

func TestLossyNetworkDegradesGracefully(t *testing.T) {
	// 1% per-link loss compounds over ~10-link physical paths per overlay
	// hop; best-effort Mortar must keep reporting with degraded
	// completeness, never wedge.
	fab, rt := lossyTestbed(t, 40, 0.01, 31)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	sumQuery(t, fab, rt, 4, 4)
	rt.RunFor(60 * time.Second)
	if len(results) < 30 {
		t.Fatalf("only %d results under 1%% loss", len(results))
	}
	var tail float64
	for _, r := range results[len(results)-10:] {
		tail += float64(r.Count)
	}
	tail /= 10
	if tail < 28 {
		t.Fatalf("mean completeness %.1f of 40 under 1%% loss", tail)
	}
}

func TestConcurrentQueriesShareHeartbeats(t *testing.T) {
	fab, rt := testbed(t, 40, 32, DefaultConfig(), nil)
	counts := map[string]int{}
	fab.OnResult = func(r Result) {
		if r.Count == 40 {
			counts[r.Query]++
		}
	}
	coords := uniformCoords(40, 5)
	for qi, op := range []string{"sum", "max", "avg"} {
		meta := QueryMeta{
			Name:      op + "-q",
			Seq:       uint64(qi + 1),
			OpName:    op,
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			Root:      0,
			IssuedSim: rt.Now(),
		}
		def, err := fab.Compile(meta, nil, coords, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := fab.Install(0, def); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		startSensor(fab, rt, i)
	}
	rt.RunFor(40 * time.Second)
	for _, op := range []string{"sum-q", "max-q", "avg-q"} {
		if counts[op] < 10 {
			t.Fatalf("query %s reached full completeness only %d times", op, counts[op])
		}
	}
	// Heartbeat traffic must be shared: with 3 queries over similar trees,
	// control bytes should be well under 3x a single query's.
	ctl3 := rt.ControlBytes()

	fab1, rt1 := testbed(t, 40, 32, DefaultConfig(), nil)
	meta := QueryMeta{
		Name: "solo", Seq: 1, OpName: "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt1.Now(),
	}
	def, _ := fab1.Compile(meta, nil, coords, 8, 2)
	if err := fab1.Install(0, def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		startSensor(fab1, rt1, i)
	}
	rt1.RunFor(40 * time.Second)
	ctl1 := rt1.ControlBytes()
	// Trees planned over the same coordinates are similar but not
	// identical (k-means seeding is randomized), so sharing is partial:
	// well under 3x, not 1x.
	if float64(ctl3) > 2.8*float64(ctl1) {
		t.Fatalf("3 queries cost %d control bytes vs %d for 1 — heartbeats not shared", ctl3, ctl1)
	}
}

func TestReinstallHigherSeqReplaces(t *testing.T) {
	fab, rt := testbed(t, 20, 33, DefaultConfig(), nil)
	coords := uniformCoords(20, 9)
	mk := func(seq uint64, op string) *QueryDef {
		meta := QueryMeta{
			Name: "q", Seq: seq, OpName: op,
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			Root:      0,
			IssuedSim: rt.Now(),
		}
		def, err := fab.Compile(meta, nil, coords, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		return def
	}
	if err := fab.Install(0, mk(1, "sum")); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(5 * time.Second)
	// Re-issue the query under the same name with a higher sequence.
	if err := fab.Install(0, mk(3, "max")); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(10 * time.Second)
	replaced := 0
	for i := 0; i < 20; i++ {
		if inst, ok := fab.Peer(i).insts[instKey{name: "q"}]; ok && inst.meta.Seq == 3 {
			replaced++
		}
	}
	if replaced != 20 {
		t.Fatalf("only %d/20 peers upgraded to seq 3", replaced)
	}
	// A stale lower-seq install arriving later must not downgrade.
	fab.Peer(5).installLocal(mk(2, "sum").Meta, nil, nil)
	if fab.Peer(5).insts[instKey{name: "q"}].meta.Seq != 3 {
		t.Fatal("stale install downgraded the query")
	}
}

func TestRemoveSupersedesLaterLowSeqInstall(t *testing.T) {
	fab, rt := testbed(t, 20, 34, DefaultConfig(), nil)
	coords := uniformCoords(20, 9)
	meta := QueryMeta{
		Name: "q", Seq: 1, OpName: "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: rt.Now(),
	}
	def, _ := fab.Compile(meta, nil, coords, 4, 2)
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(3 * time.Second)
	if err := fab.Remove(0, "q", 2); err != nil {
		t.Fatal(err)
	}
	rt.RunFor(5 * time.Second)
	// The cached removal (seq 2) must beat a replayed install (seq 1).
	fab.Peer(7).installLocal(meta, nil, nil)
	if _, ok := fab.Peer(7).insts[instKey{name: "q"}]; ok {
		t.Fatal("removed query re-installed by a stale message")
	}
	if got := fab.InstalledCount("q"); got != 0 {
		t.Fatalf("%d peers still host the removed query", got)
	}
}

func TestResultAgesArePlausible(t *testing.T) {
	fab, rt := testbed(t, 30, 35, DefaultConfig(), nil)
	var results []Result
	fab.OnResult = func(r Result) { results = append(results, r) }
	sumQuery(t, fab, rt, 4, 2)
	rt.RunFor(40 * time.Second)
	for _, r := range results[5:] {
		if r.Age <= 0 || r.Age > 15*time.Second {
			t.Fatalf("result age %v implausible", r.Age)
		}
		if r.Hops < 0 || r.Hops > 12 {
			t.Fatalf("hops %d implausible", r.Hops)
		}
	}
}
