package workload

import (
	"time"

	"repro/internal/tuple"
)

// BatchSink receives one batch of raw tuples for one peer;
// mortar.(*Fabric).InjectBatch fits directly. Ownership of the slice
// passes to the sink — the driver never touches a submitted batch again.
type BatchSink func(peer int, raws []tuple.Raw)

// Replay paces raw-tuple injection against a live federation at a target
// aggregate rate, round-robin across peers in batches: the trace-replay
// half of the LoGS-style high-rate many-source workload. Unlike Periodic
// (one simulator ticker per peer), Replay is a single wall-clock pacing
// loop built for rates far beyond one tuple per peer per second.
type Replay struct {
	// Peers are fed round-robin; every batch goes to one peer.
	Peers []int
	// Rate is the target aggregate injection rate in tuples/second
	// across all peers.
	Rate float64
	// Batch caps tuples per injection (default 64): one mailbox hop and
	// one lock acquisition per Batch tuples on the live runtimes.
	Batch int
	// Gen produces the raw tuple for a peer. The default emits a shared
	// one-element Vals of {1} (the §7.2 microbenchmark sensor). Generated
	// Raws may share backing arrays — sinks treat tuples as immutable.
	Gen func(peer int) tuple.Raw
	// NewBatch supplies the empty slice each batch is appended into
	// (default: a fresh make per batch). Sinks that recycle absorbed
	// batches expose their pool here — mortar.(*Fabric).GetRawBatch paired
	// with InjectBatch makes the replay loop allocation-free per batch.
	NewBatch func(n int) []tuple.Raw
	// Now and Sleep default to time.Now and time.Sleep; tests substitute
	// a fake clock to exercise the pacing loop deterministically.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Run replays for duration d, returning the tuples injected and the
// achieved aggregate rate. The loop runs token accounting against the
// clock — inject when behind the rate line, sleep briefly when ahead — so
// the achieved rate tracks the target until the sink itself becomes the
// bottleneck.
func (r *Replay) Run(d time.Duration, sink BatchSink) (injected uint64, achieved float64) {
	if len(r.Peers) == 0 || r.Rate <= 0 || d <= 0 {
		return 0, 0
	}
	batch := r.Batch
	if batch <= 0 {
		batch = 64
	}
	gen := r.Gen
	if gen == nil {
		shared := []float64{1}
		gen = func(int) tuple.Raw { return tuple.Raw{Vals: shared} }
	}
	newBatch := r.NewBatch
	if newBatch == nil {
		newBatch = func(n int) []tuple.Raw { return make([]tuple.Raw, 0, n) }
	}
	now := r.Now
	if now == nil {
		now = time.Now
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	start := now()
	deadline := start.Add(d)
	next := 0
	for {
		t := now()
		if !t.Before(deadline) {
			break
		}
		target := uint64(r.Rate * t.Sub(start).Seconds())
		if injected >= target {
			// Ahead of the rate line: sleep until the next batch is due,
			// bounded so the loop stays responsive to the deadline.
			wait := time.Duration(float64(batch) / r.Rate * float64(time.Second))
			if wait > time.Millisecond {
				wait = time.Millisecond
			}
			sleep(wait)
			continue
		}
		n := target - injected
		if n > uint64(batch) {
			n = uint64(batch)
		}
		peer := r.Peers[next%len(r.Peers)]
		next++
		raws := newBatch(int(n))
		for i := uint64(0); i < n; i++ {
			raws = append(raws, gen(peer))
		}
		sink(peer, raws)
		injected += n
	}
	if total := now().Sub(start).Seconds(); total > 0 {
		achieved = float64(injected) / total
	}
	return injected, achieved
}

// Trial runs one load trial at an aggregate rate (tuples/s) and reports
// whether the system stayed healthy — kept reporting windows at acceptable
// completeness and absorbed the offered rate.
type Trial func(rate float64) bool

// FindMaxRate locates the maximum sustainable rate: double from start
// until a trial fails (at most maxDoublings doublings), then binary-search
// the pass/fail boundary with steps refinement trials. It returns the
// highest rate that passed, or 0 if start itself failed. Trials at higher
// rates are assumed to fail once one has — the saturation curve is
// monotone over the few-second horizons a trial measures.
func FindMaxRate(start float64, maxDoublings, steps int, trial Trial) float64 {
	if start <= 0 {
		return 0
	}
	lo, hi := 0.0, start
	for i := 0; i <= maxDoublings; i++ {
		if !trial(hi) {
			break
		}
		lo = hi
		hi *= 2
	}
	if lo == 0 {
		return 0
	}
	if lo == hi {
		return lo
	}
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		if trial(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
