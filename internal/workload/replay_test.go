package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/tuple"
)

// fakeClock advances only when the pacing loop sleeps, so Replay.Run is
// exercised deterministically without wall time.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time        { return c.now }
func (c *fakeClock) Sleep(d time.Duration) { c.now = c.now.Add(d) }

func TestReplayPacesToTargetRate(t *testing.T) {
	c := &fakeClock{now: time.Unix(0, 0)}
	r := &Replay{
		Peers: []int{3, 4, 5},
		Rate:  1000,
		Batch: 50,
		Now:   c.Now,
		Sleep: c.Sleep,
	}
	var injected uint64
	var batches int
	perPeer := map[int]uint64{}
	last := -1
	injectedInOrder := true
	injected = 0
	n, achieved := r.Run(time.Second, func(peer int, raws []tuple.Raw) {
		batches++
		if len(raws) == 0 || len(raws) > 50 {
			t.Fatalf("batch of %d tuples (cap 50)", len(raws))
		}
		for _, raw := range raws {
			if len(raw.Vals) != 1 || raw.Vals[0] != 1 {
				t.Fatalf("default generator produced %+v", raw)
			}
		}
		perPeer[peer] += uint64(len(raws))
		injected += uint64(len(raws))
		// Round-robin: 3, 4, 5, 3, ...
		if last >= 0 {
			next := []int{3, 4, 5}[(batchIndex(last)+1)%3]
			if peer != next {
				injectedInOrder = false
			}
		}
		last = peer
		// Injection itself takes no fake time; the clock only moves on
		// sleeps, so the loop must keep pace purely by token accounting.
	})
	if n != injected {
		t.Fatalf("Run reported %d injected, sink saw %d", n, injected)
	}
	if !injectedInOrder {
		t.Fatal("batches did not rotate round-robin over peers")
	}
	// 1000 tuples/s for 1s: expect within one batch of the target.
	if n < 950 || n > 1050 {
		t.Fatalf("injected %d tuples, want ~1000", n)
	}
	if math.Abs(achieved-1000) > 100 {
		t.Fatalf("achieved rate %.0f, want ~1000", achieved)
	}
	if len(perPeer) != 3 {
		t.Fatalf("fed %d peers, want 3", len(perPeer))
	}
}

func batchIndex(peer int) int {
	switch peer {
	case 3:
		return 0
	case 4:
		return 1
	default:
		return 2
	}
}

func TestReplayDegenerateInputs(t *testing.T) {
	sink := func(int, []tuple.Raw) { t.Fatal("sink called") }
	for _, r := range []*Replay{
		{Peers: nil, Rate: 100},
		{Peers: []int{0}, Rate: 0},
		{Peers: []int{0}, Rate: -5},
	} {
		if n, a := r.Run(time.Second, sink); n != 0 || a != 0 {
			t.Fatalf("degenerate replay injected %d (rate %f)", n, a)
		}
	}
	c := &fakeClock{now: time.Unix(0, 0)}
	r := &Replay{Peers: []int{0}, Rate: 100, Now: c.Now, Sleep: c.Sleep}
	if n, _ := r.Run(0, sink); n != 0 {
		t.Fatalf("zero-duration replay injected %d", n)
	}
}

func TestReplayCustomGenerator(t *testing.T) {
	c := &fakeClock{now: time.Unix(0, 0)}
	r := &Replay{
		Peers: []int{7},
		Rate:  100,
		Batch: 10,
		Gen:   func(peer int) tuple.Raw { return tuple.Raw{Key: "k", Vals: []float64{float64(peer)}} },
		Now:   c.Now,
		Sleep: c.Sleep,
	}
	n, _ := r.Run(100*time.Millisecond, func(peer int, raws []tuple.Raw) {
		for _, raw := range raws {
			if raw.Key != "k" || raw.Vals[0] != 7 {
				t.Fatalf("generator tuple %+v", raw)
			}
		}
	})
	if n == 0 {
		t.Fatal("no tuples injected")
	}
}

// FindMaxRate against a synthetic monotone system: trials pass strictly
// below capacity. The search must land within the refinement resolution of
// the true capacity, from below.
func TestFindMaxRateConverges(t *testing.T) {
	const capacity = 70000.0
	trials := 0
	trial := func(rate float64) bool {
		trials++
		return rate <= capacity
	}
	got := FindMaxRate(1000, 10, 8, trial)
	if got > capacity {
		t.Fatalf("found rate %.0f above capacity %.0f", got, capacity)
	}
	// Doubling reaches 64000 (pass) then 128000 (fail); 8 bisection steps
	// narrow [64000, 128000] to within 64000/2^8 ≈ 250.
	if capacity-got > 500 {
		t.Fatalf("found rate %.0f too far below capacity %.0f", got, capacity)
	}
	if trials > 20 {
		t.Fatalf("%d trials for one search — ramp not geometric?", trials)
	}
}

func TestFindMaxRateStartFails(t *testing.T) {
	if got := FindMaxRate(1000, 6, 4, func(float64) bool { return false }); got != 0 {
		t.Fatalf("got %.0f, want 0 when the first trial fails", got)
	}
}

func TestFindMaxRateAllPass(t *testing.T) {
	// Every trial passes: the search must still terminate and return at
	// least the last doubled rate that was actually tested.
	got := FindMaxRate(1000, 5, 4, func(float64) bool { return true })
	if got < 32000 { // 1000 * 2^5
		t.Fatalf("got %.0f, want >= 32000 when everything passes", got)
	}
}

func TestFindMaxRateBadStart(t *testing.T) {
	if got := FindMaxRate(0, 6, 4, func(float64) bool { return true }); got != 0 {
		t.Fatalf("got %.0f for zero start", got)
	}
}
