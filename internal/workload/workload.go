// Package workload generates the sensor streams the experiments feed into
// Mortar: periodic numeric sensors (the §7.2 microbenchmarks' "integer
// value 1 every second") and instrumented sensors that tag each tuple with
// its ground-truth window for the true-completeness metric of §5.
package workload

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/eventsim"
	"repro/internal/tuple"
)

// Sink receives generated raw tuples for one peer.
type Sink func(peer int, raw tuple.Raw)

// Periodic drives one tuple per period per peer into sink, with a stable
// per-peer phase offset so sensors are not phase-locked to each other or to
// window boundaries (as on a real testbed).
type Periodic struct {
	Sim    *eventsim.Sim
	Period time.Duration
	Value  float64
	// TrueWindowKey, when set, stamps each tuple's Key with its ground
	// truth window index floor((now-Epoch)/TrueWindowKey) for
	// true-completeness measurement.
	TrueWindowKey time.Duration
	Epoch         time.Duration

	tickers []*eventsim.Ticker
}

// Start launches sensors for peers [0, n).
func (p *Periodic) Start(n int, sink Sink, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		i := i
		phase := time.Duration(rng.Int63n(int64(p.Period)))
		p.Sim.After(phase, func() {
			tk := p.Sim.Every(p.Period, func() {
				raw := tuple.Raw{Vals: []float64{p.Value}}
				if p.TrueWindowKey > 0 {
					w := int64((p.Sim.Now() - p.Epoch) / p.TrueWindowKey)
					raw.Key = strconv.FormatInt(w, 10)
				}
				sink(i, raw)
			})
			p.tickers = append(p.tickers, tk)
		})
	}
}

// Stop halts all sensors.
func (p *Periodic) Stop() {
	for _, tk := range p.tickers {
		tk.Stop()
	}
	p.tickers = nil
}

// ZipfKeys draws keys with a Zipf-like distribution, for entropy/anomaly
// workloads.
type ZipfKeys struct {
	zipf *rand.Zipf
}

// NewZipfKeys creates a key generator over `n` distinct keys with skew s
// (s > 1; larger is more skewed).
func NewZipfKeys(rng *rand.Rand, s float64, n uint64) *ZipfKeys {
	return &ZipfKeys{zipf: rand.NewZipf(rng, s, 1, n-1)}
}

// Next returns the next key.
func (z *ZipfKeys) Next() string {
	return "k" + strconv.FormatUint(z.zipf.Uint64(), 10)
}
