package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/tuple"
)

func TestPeriodicRateAndPhases(t *testing.T) {
	sim := eventsim.New(1)
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	firstAt := map[int]time.Duration{}
	p := &Periodic{Sim: sim, Period: time.Second, Value: 1}
	p.Start(10, func(peer int, raw tuple.Raw) {
		counts[peer]++
		if _, ok := firstAt[peer]; !ok {
			firstAt[peer] = sim.Now()
		}
		if raw.Vals[0] != 1 {
			t.Errorf("value = %v", raw.Vals)
		}
	}, rng)
	sim.RunUntil(20 * time.Second)
	for peer, c := range counts {
		if c < 18 || c > 20 {
			t.Fatalf("peer %d emitted %d tuples in 20s", peer, c)
		}
	}
	// Phases must differ across peers.
	distinct := map[time.Duration]bool{}
	for _, at := range firstAt {
		distinct[at] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("only %d distinct phases for 10 sensors", len(distinct))
	}
	p.Stop()
	before := len(counts)
	_ = before
	c0 := counts[0]
	sim.RunFor(5 * time.Second)
	if counts[0] != c0 {
		t.Fatal("sensor kept emitting after Stop")
	}
}

func TestTrueWindowStamping(t *testing.T) {
	sim := eventsim.New(2)
	rng := rand.New(rand.NewSource(2))
	p := &Periodic{Sim: sim, Period: 500 * time.Millisecond, Value: 1, TrueWindowKey: time.Second}
	bad := 0
	p.Start(3, func(peer int, raw tuple.Raw) {
		want := int64(sim.Now() / time.Second)
		if raw.Key != itoa(want) {
			bad++
		}
	}, rng)
	sim.RunUntil(10 * time.Second)
	if bad != 0 {
		t.Fatalf("%d tuples stamped with wrong true window", bad)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestZipfKeysSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipfKeys(rng, 1.5, 100)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	if counts["k0"] < 3000 {
		t.Fatalf("zipf head k0 = %d of 10000, want dominant", counts["k0"])
	}
	if len(counts) < 10 {
		t.Fatalf("only %d distinct keys", len(counts))
	}
}
