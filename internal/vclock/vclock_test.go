package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPerfectClockIsIdentity(t *testing.T) {
	c := Perfect()
	for _, d := range []time.Duration{0, time.Second, time.Hour} {
		if c.Reported(d) != d {
			t.Fatalf("Reported(%v) = %v", d, c.Reported(d))
		}
		if c.Elapsed(d) != d {
			t.Fatalf("Elapsed(%v) = %v", d, c.Elapsed(d))
		}
	}
}

func TestOffsetShiftsEpochOnly(t *testing.T) {
	c := Clock{Offset: 3 * time.Second, Skew: 1}
	if got := c.Reported(10 * time.Second); got != 13*time.Second {
		t.Fatalf("Reported = %v, want 13s", got)
	}
	if got := c.Elapsed(10 * time.Second); got != 10*time.Second {
		t.Fatalf("Elapsed = %v, want 10s (offset must not affect intervals)", got)
	}
}

func TestSkewScalesIntervals(t *testing.T) {
	c := Clock{Skew: 1.5}
	if got := c.Elapsed(10 * time.Second); got != 15*time.Second {
		t.Fatalf("Elapsed = %v, want 15s", got)
	}
}

func TestPlanetLabShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clocks := PlanetLab(1).SamplePopulation(rng, 20000)
	frac := FractionBeyond(clocks, 500*time.Millisecond)
	if frac < 0.15 || frac > 0.27 {
		t.Fatalf("fraction beyond 500ms = %.3f, want ~0.20", frac)
	}
	huge := FractionBeyond(clocks, 3000*time.Second)
	if huge <= 0 || huge > 0.02 {
		t.Fatalf("fraction beyond 3000s = %.4f, want small but nonzero", huge)
	}
}

func TestScaleZeroRemovesOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	clocks := PlanetLab(0).SamplePopulation(rng, 100)
	for _, c := range clocks {
		if c.Offset != 0 {
			t.Fatalf("scale 0 produced offset %v", c.Offset)
		}
	}
}

func TestScaleIsLinear(t *testing.T) {
	a := rand.New(rand.NewSource(3))
	b := rand.New(rand.NewSource(3))
	one := PlanetLab(1).SamplePopulation(a, 500)
	two := PlanetLab(2).SamplePopulation(b, 500)
	for i := range one {
		diff := two[i].Offset - 2*one[i].Offset
		if diff < 0 {
			diff = -diff
		}
		if diff > 2 { // float64->Duration rounding
			t.Fatalf("offset at scale 2 (%v) != 2x offset at scale 1 (%v)",
				two[i].Offset, one[i].Offset)
		}
	}
}

// Property: Reported is strictly monotonic in true time for any sampled
// clock (skew is bounded well away from zero).
func TestPropertyReportedMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(aMS, bMS uint32) bool {
		c := PlanetLab(1.7).Sample(rng)
		x, y := time.Duration(aMS)*time.Millisecond, time.Duration(bMS)*time.Millisecond
		if x > y {
			x, y = y, x
		}
		if x == y {
			return true
		}
		return c.Reported(x) < c.Reported(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Elapsed is additive: Elapsed(a+b) == Elapsed(a)+Elapsed(b)
// within rounding of one nanosecond per term.
func TestPropertyElapsedAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(aMS, bMS uint16) bool {
		c := PlanetLab(1).Sample(rng)
		a := time.Duration(aMS) * time.Millisecond
		b := time.Duration(bMS) * time.Millisecond
		sum := c.Elapsed(a + b)
		parts := c.Elapsed(a) + c.Elapsed(b)
		diff := sum - parts
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
