// Package vclock models per-node clocks with offset and skew, and provides
// an offset distribution shaped like the one the Mortar paper observed
// across PlanetLab (§5: 20% of nodes offset by more than half a second, a
// handful in excess of 3000 seconds).
//
// Terminology follows the network-measurement community, as the paper does:
// *offset* is a difference in reported time, *skew* is a difference in clock
// frequency.
package vclock

import (
	"math"
	"math/rand"
	"time"
)

// Clock converts simulation ("true") time into the time a node's local clock
// reports. Reported(t) = t + Offset + (Skew-1)*t: a node with Skew 1.001
// gains one millisecond per second of true time.
type Clock struct {
	Offset time.Duration
	Skew   float64 // frequency ratio; 1.0 means a perfect oscillator
}

// Perfect returns a clock with no offset and no skew.
func Perfect() Clock { return Clock{Skew: 1} }

// Reported returns the node-local reading at true time t.
func (c Clock) Reported(t time.Duration) time.Duration {
	return c.Offset + time.Duration(float64(t)*c.Skew)
}

// Elapsed returns the node-local measurement of a true interval d. Only skew
// matters here: offset shifts the epoch, not interval measurement. This is
// how syncless ages accumulate on a node.
func (c Clock) Elapsed(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.Skew)
}

// Distribution describes a population of node clocks. Offsets come from a
// three-component mixture that matches the paper's description of PlanetLab:
// most nodes are NTP-disciplined and sit within tens of milliseconds, a
// substantial minority (tuned to 20% beyond 500 ms) have second-scale
// offsets, and a small fraction are wildly off (hours — dead NTP daemons).
type Distribution struct {
	// Scale multiplies every sampled offset; the paper's Figures 9-10 sweep
	// this "skew scale" factor along [0, 2].
	Scale float64
	// MaxSkewPPM bounds the sampled frequency error in parts per million.
	MaxSkewPPM float64
}

// PlanetLab returns the distribution used throughout the evaluation, at the
// given scale.
func PlanetLab(scale float64) Distribution {
	return Distribution{Scale: scale, MaxSkewPPM: 200}
}

// Sample draws one node clock.
func (d Distribution) Sample(rng *rand.Rand) Clock {
	var off float64 // seconds
	u := rng.Float64()
	switch {
	case u < 0.78:
		// NTP-disciplined: zero-mean normal, sigma 25 ms.
		off = rng.NormFloat64() * 0.025
	case u < 0.98:
		// Mis-configured: exponential with mean 4 s, past a 0.4 s floor, so
		// that at scale 1 roughly 20% of nodes exceed half a second.
		off = 0.4 + rng.ExpFloat64()*4
		if rng.Intn(2) == 0 {
			off = -off
		}
	default:
		// Dead NTP: log-uniform between 100 s and 4000 s; "a handful in
		// excess of 3000 seconds" at population sizes of a few hundred.
		off = math.Exp(math.Log(100) + rng.Float64()*(math.Log(4000)-math.Log(100)))
		if rng.Intn(2) == 0 {
			off = -off
		}
	}
	skew := 1 + (rng.Float64()*2-1)*d.MaxSkewPPM/1e6
	return Clock{
		Offset: time.Duration(off * d.Scale * float64(time.Second)),
		Skew:   skew,
	}
}

// SamplePopulation draws n clocks.
func (d Distribution) SamplePopulation(rng *rand.Rand, n int) []Clock {
	out := make([]Clock, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// FractionBeyond reports the fraction of the clocks whose absolute offset
// exceeds lim. Used by tests to validate the distribution's shape.
func FractionBeyond(clocks []Clock, lim time.Duration) float64 {
	if len(clocks) == 0 {
		return 0
	}
	n := 0
	for _, c := range clocks {
		off := c.Offset
		if off < 0 {
			off = -off
		}
		if off > lim {
			n++
		}
	}
	return float64(n) / float64(len(clocks))
}
