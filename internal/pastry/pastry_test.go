package pastry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int, seed int64) (*Ring, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return NewRing(n, rng), rng
}

func TestRingDistinctIDs(t *testing.T) {
	r, _ := ring(200, 1)
	seen := map[ID]bool{}
	for _, id := range r.IDs {
		if seen[id] {
			t.Fatal("duplicate ID")
		}
		seen[id] = true
	}
}

func TestRootForIsClosest(t *testing.T) {
	r, rng := ring(100, 2)
	for i := 0; i < 50; i++ {
		key := ID(rng.Uint64())
		root := r.RootFor(key, nil)
		for p := range r.IDs {
			if dist(r.IDs[p], key) < dist(r.IDs[root], key) {
				t.Fatalf("peer %d closer to key than root %d", p, root)
			}
		}
	}
}

// Property: routing always terminates at the key's root when all nodes are
// alive and states are fresh.
func TestRoutingConvergesToRoot(t *testing.T) {
	r, rng := ring(150, 3)
	states := make([]*State, 150)
	for i := range states {
		states[i] = NewState(r, i, 8, rand.New(rand.NewSource(rng.Int63())))
	}
	f := func(keyRaw uint64, startRaw uint8) bool {
		key := ID(keyRaw)
		cur := int(startRaw) % 150
		trueRoot := r.RootFor(key, nil)
		for hops := 0; hops < 64; hops++ {
			next, isRoot := states[cur].NextHop(key)
			if isRoot {
				return cur == trueRoot
			}
			cur = next
		}
		return false // routing loop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLengthLogarithmic(t *testing.T) {
	r, rng := ring(300, 4)
	states := make([]*State, 300)
	for i := range states {
		states[i] = NewState(r, i, 8, rand.New(rand.NewSource(rng.Int63())))
	}
	total, paths := 0, 0
	for i := 0; i < 100; i++ {
		key := ID(rng.Uint64())
		cur := rng.Intn(300)
		for hops := 0; hops < 64; hops++ {
			next, isRoot := states[cur].NextHop(key)
			if isRoot {
				total += hops
				paths++
				break
			}
			cur = next
		}
	}
	if paths != 100 {
		t.Fatalf("only %d/100 lookups terminated", paths)
	}
	if avg := float64(total) / 100; avg > 8 {
		t.Fatalf("average path length %.1f too long for 300 nodes", avg)
	}
}

func TestDeadNodesRoutedAround(t *testing.T) {
	r, rng := ring(100, 5)
	states := make([]*State, 100)
	for i := range states {
		states[i] = NewState(r, i, 8, rand.New(rand.NewSource(rng.Int63())))
	}
	key := ID(rng.Uint64())
	trueRoot := r.RootFor(key, nil)
	// Everyone learns the root died and rebuilds.
	for i, s := range states {
		if i == trueRoot {
			continue
		}
		s.MarkDead(trueRoot)
		s.Rebuild()
	}
	newRoot := r.RootFor(key, func(p int) bool { return p != trueRoot })
	cur := (trueRoot + 1) % 100
	for hops := 0; hops < 64; hops++ {
		next, isRoot := states[cur].NextHop(key)
		if isRoot {
			if cur != newRoot {
				t.Fatalf("converged to %d, want new root %d", cur, newRoot)
			}
			return
		}
		cur = next
	}
	t.Fatal("routing did not terminate after failure")
}

func TestMarkAliveRestores(t *testing.T) {
	r, rng := ring(50, 6)
	s := NewState(r, 0, 8, rng)
	s.MarkDead(5)
	if !s.BelievedDead(5) {
		t.Fatal("belief not recorded")
	}
	s.MarkAlive(5)
	s.Rebuild()
	if s.BelievedDead(5) {
		t.Fatal("belief not cleared")
	}
	found := false
	for _, p := range s.Neighbors() {
		if p == 5 {
			found = true
		}
	}
	_ = found // 5 may or may not be a neighbor; Rebuild must simply not panic
}

func TestNeighborsNonEmpty(t *testing.T) {
	r, rng := ring(64, 7)
	s := NewState(r, 3, 8, rng)
	if len(s.Neighbors()) < 8 {
		t.Fatalf("only %d neighbors", len(s.Neighbors()))
	}
}
