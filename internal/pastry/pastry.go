// Package pastry implements the routing state of a Pastry-style structured
// overlay (Rowstron & Druschel): 64-bit node IDs split into 4-bit digits,
// per-node routing tables indexed by (shared prefix length, next digit),
// and leaf sets of numerically adjacent nodes. It underpins the SDIMS
// baseline (internal/sdims) the paper compares against in §7.2.3.
//
// The package is pure routing state — liveness beliefs are injected by the
// caller, and staleness of those beliefs is exactly what produces the
// routing inconsistencies and aggregation over-counting the comparison
// demonstrates.
package pastry

import (
	"math/rand"
	"sort"
)

// ID is a 64-bit node identifier, treated as 16 hex digits for prefix
// routing.
type ID uint64

const (
	digits    = 16 // 64 bits / 4 bits per digit
	digitBits = 4
)

func digit(id ID, pos int) int {
	shift := uint((digits - 1 - pos) * digitBits)
	return int(id>>shift) & 0xF
}

// sharedPrefix returns the number of leading hex digits a and b share.
func sharedPrefix(a, b ID) int {
	n := 0
	for n < digits && digit(a, n) == digit(b, n) {
		n++
	}
	return n
}

// dist is the circular numeric distance between two IDs.
func dist(a, b ID) uint64 {
	d := uint64(a - b)
	if d2 := uint64(b - a); d2 < d {
		return d2
	}
	return d
}

// Ring is the global ID assignment: one random ID per peer.
type Ring struct {
	IDs    []ID
	sorted []int // peer indices sorted by ID
}

// NewRing assigns distinct random IDs to n peers.
func NewRing(n int, rng *rand.Rand) *Ring {
	r := &Ring{IDs: make([]ID, n)}
	seen := map[ID]bool{}
	for i := range r.IDs {
		for {
			id := ID(rng.Uint64())
			if !seen[id] {
				seen[id] = true
				r.IDs[i] = id
				break
			}
		}
	}
	r.sorted = make([]int, n)
	for i := range r.sorted {
		r.sorted[i] = i
	}
	sort.Slice(r.sorted, func(a, b int) bool { return r.IDs[r.sorted[a]] < r.IDs[r.sorted[b]] })
	return r
}

// RootFor returns the peer whose ID is numerically closest to key among
// peers accepted by alive (ground truth; used by tests and to key
// aggregations).
func (r *Ring) RootFor(key ID, alive func(int) bool) int {
	best, bd := -1, uint64(0)
	for p, id := range r.IDs {
		if alive != nil && !alive(p) {
			continue
		}
		d := dist(id, key)
		if best < 0 || d < bd {
			best, bd = p, d
		}
	}
	return best
}

// State is one node's routing state: its view of the overlay.
type State struct {
	ring *Ring
	self int
	// table[row][col]: a peer whose ID shares `row` digits with ours and
	// has digit `col` at position row; -1 if none known.
	table [digits][16]int
	leaf  []int // numerically adjacent peers (both sides)
	dead  map[int]bool
	rng   *rand.Rand
	// LeafSize is the total leaf-set size (split across both sides).
	LeafSize int
}

// NewState builds a node's initial routing state from the ring, as a
// freshly joined Pastry node would after exchanging state with its
// neighbors.
func NewState(ring *Ring, self int, leafSize int, rng *rand.Rand) *State {
	s := &State{
		ring:     ring,
		self:     self,
		dead:     map[int]bool{},
		rng:      rng,
		LeafSize: leafSize,
	}
	for row := range s.table {
		for col := range s.table[row] {
			s.table[row][col] = -1
		}
	}
	s.Rebuild()
	return s
}

// Rebuild refreshes the routing table and leaf set from the ring, keeping
// current death beliefs. Existing live entries are preserved — maintenance
// repairs holes, it does not reshuffle working routes (reshuffling would
// re-parent aggregation subtrees every round and over-count even without
// failures).
func (s *State) Rebuild() {
	myID := s.ring.IDs[s.self]
	for row := range s.table {
		for col := range s.table[row] {
			if p := s.table[row][col]; p >= 0 && !s.dead[p] {
				continue
			}
			s.table[row][col] = -1
		}
	}
	// Collect candidates per (row, col); choose uniformly among them so
	// different nodes hold different entries (as proximity-based Pastry
	// tables do).
	buckets := map[[2]int][]int{}
	for p, id := range s.ring.IDs {
		if p == s.self || s.dead[p] {
			continue
		}
		row := sharedPrefix(myID, id)
		if row >= digits {
			continue
		}
		col := digit(id, row)
		if s.table[row][col] >= 0 {
			continue // live entry kept
		}
		key := [2]int{row, col}
		buckets[key] = append(buckets[key], p)
	}
	for key, cands := range buckets {
		s.table[key[0]][key[1]] = cands[s.rng.Intn(len(cands))]
	}
	s.rebuildLeaf()
}

func (s *State) rebuildLeaf() {
	n := len(s.ring.sorted)
	pos := 0
	for i, p := range s.ring.sorted {
		if p == s.self {
			pos = i
			break
		}
	}
	s.leaf = s.leaf[:0]
	half := s.LeafSize / 2
	for side := 0; side < 2; side++ {
		got := 0
		for off := 1; off < n && got < half; off++ {
			var idx int
			if side == 0 {
				idx = (pos + off) % n
			} else {
				idx = (pos - off + n) % n
			}
			p := s.ring.sorted[idx]
			if p == s.self || s.dead[p] {
				continue
			}
			s.leaf = append(s.leaf, p)
			got++
		}
	}
}

// MarkDead records a failed peer and removes it from routing state.
func (s *State) MarkDead(p int) {
	if s.dead[p] {
		return
	}
	s.dead[p] = true
	for row := range s.table {
		for col := range s.table[row] {
			if s.table[row][col] == p {
				s.table[row][col] = -1
			}
		}
	}
	s.rebuildLeaf()
}

// MarkAlive clears a death belief (the peer recovered).
func (s *State) MarkAlive(p int) {
	if !s.dead[p] {
		return
	}
	delete(s.dead, p)
}

// BelievedDead reports the current belief about p.
func (s *State) BelievedDead(p int) bool { return s.dead[p] }

// Neighbors returns the peers this node monitors: leaf set plus populated
// routing entries (the ping targets).
func (s *State) Neighbors() []int {
	set := map[int]struct{}{}
	for _, p := range s.leaf {
		set[p] = struct{}{}
	}
	for row := range s.table {
		for col := range s.table[row] {
			if p := s.table[row][col]; p >= 0 {
				set[p] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// circularBetween reports whether x lies on the ring arc from lo to hi
// (walking upward with wraparound).
func circularBetween(lo, x, hi ID) bool {
	return uint64(x-lo) <= uint64(hi-lo)
}

// NextHop routes toward key: it returns the next peer, or (self, true) if
// this node believes it is the key's root. Standard Pastry: when the key
// falls within the leaf-set span, deliver to the numerically closest
// member; otherwise take the routing-table entry for the key's next digit
// (strictly growing the shared prefix); otherwise the rare case — any
// known node with at least the same prefix that is strictly closer.
// Termination: each hop grows (prefix, -numeric distance)
// lexicographically.
func (s *State) NextHop(key ID) (int, bool) {
	myID := s.ring.IDs[s.self]
	myDist := dist(myID, key)
	if len(s.leaf) > 0 {
		// Span bounds: the leaves furthest below and above self on the
		// ring.
		lo, hi := myID, myID
		var loOff, hiOff uint64
		for _, p := range s.leaf {
			id := s.ring.IDs[p]
			up := uint64(id - myID)
			down := uint64(myID - id)
			if up <= down { // on the upper arc
				if up > hiOff {
					hiOff, hi = up, id
				}
			} else {
				if down > loOff {
					loOff, lo = down, id
				}
			}
		}
		if circularBetween(lo, key, hi) {
			best, bd := s.self, myDist
			for _, p := range s.leaf {
				if d := dist(s.ring.IDs[p], key); d < bd {
					best, bd = p, d
				}
			}
			if best == s.self {
				return s.self, true
			}
			return best, false
		}
	}
	row := sharedPrefix(myID, key)
	if row < digits {
		col := digit(key, row)
		if p := s.table[row][col]; p >= 0 {
			return p, false
		}
	}
	// Rare case: any known node at least as prefix-close and strictly
	// numerically closer.
	for _, p := range s.Neighbors() {
		id := s.ring.IDs[p]
		if sharedPrefix(id, key) >= row && dist(id, key) < myDist {
			return p, false
		}
	}
	return s.self, true
}
