package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestFragmentRoundTrip(t *testing.T) {
	in := Fragment{Stream: 77, Index: 3, Count: 9, Payload: []byte("hello fragment")}
	var w Buffer
	EncodeFragment(&w, in)
	got, err := DecodeFragment(NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != in.Stream || got.Index != in.Index || got.Count != in.Count ||
		!bytes.Equal(got.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
	// The decoded payload must not alias the encoding (receive buffers are
	// reused under the reassembler).
	w.Bytes()[len(w.Bytes())-1] ^= 0xff
	if !bytes.Equal(got.Payload, in.Payload) {
		t.Fatal("decoded payload aliases the wire buffer")
	}
}

func TestFragmentTruncationsAreCorrupt(t *testing.T) {
	var w Buffer
	EncodeFragment(&w, Fragment{Stream: 1, Index: 0, Count: 2, Payload: []byte("abcdef")})
	full := w.Bytes()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeFragment(NewReader(full[:i])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v", i, err)
		}
	}
}

func TestFragmentRejectsBadShape(t *testing.T) {
	cases := []Fragment{
		{Stream: 1, Index: 2, Count: 2, Payload: nil}, // index == count
		{Stream: 1, Index: 9, Count: 2, Payload: nil}, // index > count
	}
	for _, f := range cases {
		var w Buffer
		w.PutUvarint(f.Stream)
		w.PutUvarint(uint64(f.Index))
		w.PutUvarint(uint64(f.Count))
		w.PutBytes(f.Payload)
		if _, err := DecodeFragment(NewReader(w.Bytes())); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("fragment %+v decoded: err = %v", f, err)
		}
	}
	// Count of zero.
	var w Buffer
	w.PutUvarint(1)
	w.PutUvarint(0)
	w.PutUvarint(0)
	w.PutBytes(nil)
	if _, err := DecodeFragment(NewReader(w.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-count fragment decoded: err = %v", err)
	}
}

func TestNackRoundTrip(t *testing.T) {
	for _, in := range []Nack{
		{Stream: 5},
		{Stream: 123456, Missing: []uint32{0, 7, 8, 4096}},
	} {
		var w Buffer
		EncodeNack(&w, in)
		got, err := DecodeNack(NewReader(w.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Stream != in.Stream || len(got.Missing) != len(in.Missing) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
		for i := range in.Missing {
			if got.Missing[i] != in.Missing[i] {
				t.Fatalf("missing[%d] = %d, want %d", i, got.Missing[i], in.Missing[i])
			}
		}
	}
}

func TestNackBoundsAllocation(t *testing.T) {
	// A huge claimed index count with no bytes behind it must fail before
	// allocating, not after.
	var w Buffer
	w.PutUvarint(1)
	w.PutUvarint(1 << 40)
	if _, err := DecodeNack(NewReader(w.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized nack count decoded: err = %v", err)
	}
	var w2 Buffer
	EncodeNack(&w2, Nack{Stream: 9, Missing: []uint32{1, 2, 3}})
	full := w2.Bytes()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeNack(NewReader(full[:i])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v", i, err)
		}
	}
}
