package wire

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tuple"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var w Buffer
	w.PutUvarint(300)
	w.PutVarint(-42)
	w.PutF64(3.14)
	w.PutDuration(5 * time.Second)
	w.PutString("hello")
	w.PutBytes([]byte{1, 2, 3})
	w.PutBool(true)

	r := NewReader(w.Bytes())
	if v, err := r.Uvarint(); err != nil || v != 300 {
		t.Fatalf("uvarint = %v %v", v, err)
	}
	if v, err := r.Varint(); err != nil || v != -42 {
		t.Fatalf("varint = %v %v", v, err)
	}
	if v, err := r.F64(); err != nil || v != 3.14 {
		t.Fatalf("f64 = %v %v", v, err)
	}
	if v, err := r.Duration(); err != nil || v != 5*time.Second {
		t.Fatalf("duration = %v %v", v, err)
	}
	if v, err := r.String(); err != nil || v != "hello" {
		t.Fatalf("string = %q %v", v, err)
	}
	if v, err := r.Bytes(); err != nil || !reflect.DeepEqual(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v %v", v, err)
	}
	if v, err := r.Bool(); err != nil || !v {
		t.Fatalf("bool = %v %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestValueRoundTrip(t *testing.T) {
	values := []any{
		nil,
		float64(42.5),
		[]float64{1, 2, 3},
		"text",
		map[string]float64{"a": 1, "b": 2},
		[]ScoredEntry{{Key: "mac1", Score: -30, Payload: []float64{1, 2}}, {Key: "mac2", Score: -55}},
		[]uint64{0, 1, math.MaxUint64},
		Coord{X: 3, Y: 4},
	}
	for _, v := range values {
		var w Buffer
		if err := w.PutValue(v); err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		got, err := NewReader(w.Bytes()).Value()
		if err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip %T: got %#v want %#v", v, got, v)
		}
	}
}

func TestUnsupportedValue(t *testing.T) {
	var w Buffer
	if err := w.PutValue(struct{}{}); err == nil {
		t.Fatal("no error for unsupported type")
	}
	if SizeOfValue(struct{}{}) <= 0 {
		t.Fatal("SizeOfValue fallback must be positive")
	}
}

func TestCorruptBuffers(t *testing.T) {
	// Truncations of a valid encoding must error, never panic.
	var w Buffer
	s := tuple.Summary{
		Query:  "q1",
		Index:  tuple.Index{TB: time.Second, TE: 2 * time.Second},
		Value:  []float64{1, 2, 3},
		Age:    time.Second,
		Count:  7,
		Levels: []int16{0, 1, -1, 2},
	}
	if err := EncodeSummary(&w, s, 3); err != nil {
		t.Fatal(err)
	}
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeSummary(NewReader(full[:cut])); err == nil {
			t.Fatalf("no error at truncation %d", cut)
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := tuple.Summary{
		Query:    "cpu-sum",
		Index:    tuple.Index{TB: -2 * time.Second, TE: 3 * time.Second},
		Value:    float64(17),
		Age:      1500 * time.Millisecond,
		Count:    42,
		Boundary: false,
		Hops:     3,
		Levels:   []int16{2, -1, 3, 0},
	}
	var w Buffer
	if err := EncodeSummary(&w, s, 2); err != nil {
		t.Fatal(err)
	}
	got, ttl, err := DecodeSummary(NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("summary: got %+v want %+v", got, s)
	}
	if ttl != 2 {
		t.Fatalf("ttl = %d", ttl)
	}
}

func TestSummarySizeReasonable(t *testing.T) {
	s := tuple.Summary{Query: "q", Value: float64(1), Count: 1, Levels: make([]int16, 4)}
	var w Buffer
	if err := EncodeSummary(&w, s, 0); err != nil {
		t.Fatal(err)
	}
	if sz := w.Len(); sz < 10 || sz > 200 {
		t.Fatalf("summary size = %d, implausible", sz)
	}
}

// Property: varints and strings of arbitrary content round-trip.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, fl float64) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		var w Buffer
		w.PutUvarint(u)
		w.PutVarint(i)
		w.PutString(s)
		w.PutF64(fl)
		r := NewReader(w.Bytes())
		gu, e1 := r.Uvarint()
		gi, e2 := r.Varint()
		gs, e3 := r.String()
		gf, e4 := r.F64()
		return e1 == nil && e2 == nil && e3 == nil && e4 == nil &&
			gu == u && gi == i && gs == s && gf == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: summaries with arbitrary envelope state round-trip.
func TestPropertySummaryRoundTrip(t *testing.T) {
	f := func(q string, tb, te, age int32, count uint16, boundary bool, v float64, nl uint8, ttl uint8) bool {
		levels := make([]int16, int(nl)%8)
		for i := range levels {
			levels[i] = int16(i) - 1
		}
		s := tuple.Summary{
			Query:    q,
			Index:    tuple.Index{TB: time.Duration(tb), TE: time.Duration(te)},
			Age:      time.Duration(age),
			Count:    int(count),
			Boundary: boundary,
			Value:    v,
			Levels:   levels,
		}
		var w Buffer
		if err := EncodeSummary(&w, s, ttl); err != nil {
			return false
		}
		got, gttl, err := DecodeSummary(NewReader(w.Bytes()))
		return err == nil && reflect.DeepEqual(got, s) && gttl == ttl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
