package wire

import (
	"encoding/binary"
	"fmt"
)

// This file is the coalesced-train codec: the inverse of the fragment
// layer. Where fragments split one oversized frame across many datagrams,
// a train packs many small frames bound for the same remote socket into
// one datagram. The layout after the transport's train kind byte is simply
// repeated `[uvarint length][frame bytes]` items; appending an item is
// Buffer.PutBytes, and decoding walks the items in place without copying.
// Like every decoder here, the walk validates each length against the
// remaining bytes before touching them, returns an error wrapping
// ErrCorrupt on garbage, and never panics (FuzzDecodeTrain pins this).

// ForEachTrainFrame iterates the frames of a coalesced train, calling fn
// with each frame's bytes. The slices passed to fn alias b — callers must
// copy anything they retain past the callback. An empty train, a
// zero-length item, or a length overrunning the buffer is corrupt; frames
// already yielded before the corruption was reached have been processed
// (they are independent datagram payloads, the same exposure as a
// truncated datagram).
func ForEachTrainFrame(b []byte, fn func(frame []byte)) error {
	if len(b) == 0 {
		return fmt.Errorf("wire: empty train: %w", ErrCorrupt)
	}
	off := 0
	for off < len(b) {
		l, n := binary.Uvarint(b[off:])
		if n <= 0 || l == 0 || l > uint64(len(b)-off-n) {
			return fmt.Errorf("wire: train item at %d: %w", off, ErrCorrupt)
		}
		off += n
		fn(b[off : off+int(l)])
		off += int(l)
	}
	return nil
}
