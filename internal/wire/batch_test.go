package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/tuple"
)

// sampleBatch returns the envelope-batch sample from sampleMessages.
func sampleBatch(t testing.TB) *EnvelopeBatch {
	for _, msg := range sampleMessages() {
		if b, ok := msg.(*EnvelopeBatch); ok {
			return b
		}
	}
	t.Fatal("no batch in sampleMessages")
	return nil
}

// Level vectors reconstruct exactly from the base + sparse diff for every
// shape: identical to base, shorter, longer, and absent.
func TestEnvelopeBatchLevelDelta(t *testing.T) {
	mk := func(levels []int16) Envelope {
		return Envelope{
			S:      tuple.Summary{Query: "q", Count: 1, Levels: levels},
			SentAt: time.Second,
		}
	}
	b := &EnvelopeBatch{
		SentAt: time.Second,
		Envelopes: []Envelope{
			mk([]int16{2, -1, 3, 0}),       // the base itself
			mk([]int16{2, -1, 3, 0}),       // identical: empty diff
			mk([]int16{2, 5, 3, 0}),        // one slot diffs
			mk([]int16{2, -1}),             // shorter than base
			mk([]int16{2, -1, 3, 0, -1}),   // longer: slot 4 defaults to -1
			mk([]int16{2, -1, 3, 0, 7, 1}), // longer with diffs beyond base
			mk(nil),                        // no routing state at all
		},
	}
	var w Buffer
	if err := EncodeMessage(&w, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("delta round trip:\n got %#v\nwant %#v", got, b)
	}
}

// The key table dedups (query, epoch) pairs: the same query under two
// epochs gets two refs, and every entry resolves to its own pair.
func TestEnvelopeBatchKeyTable(t *testing.T) {
	b := &EnvelopeBatch{Envelopes: []Envelope{
		{S: tuple.Summary{Query: "a", Count: 1}, Epoch: 0},
		{S: tuple.Summary{Query: "a", Count: 1}, Epoch: 1},
		{S: tuple.Summary{Query: "b", Count: 1}, Epoch: 0},
		{S: tuple.Summary{Query: "a", Count: 1}, Epoch: 0},
	}}
	var w Buffer
	if err := EncodeMessage(&w, b); err != nil {
		t.Fatal(err)
	}
	// Three distinct keys: "a" appears in the table once per epoch, "b"
	// once — four entries, but no name travels per entry.
	frame := string(w.Bytes())
	if n := countOccurrences(frame, "a"); n != 2 { // one per ("a", epoch) pair
		t.Fatalf("query name 'a' appears %d times in the frame, want 2", n)
	}
	got, err := DecodeMessage(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("key table round trip:\n got %#v\nwant %#v", got, b)
	}
}

func countOccurrences(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}

// Structural corruption is rejected, never panics: out-of-table query
// refs, diff positions beyond the entry's vector, empty batches, and
// batch frames claiming a pre-batch version.
func TestEnvelopeBatchCorrupt(t *testing.T) {
	var w Buffer
	if err := EncodeMessage(&w, &EnvelopeBatch{}); err == nil {
		t.Fatal("empty batch encoded")
	}

	// A valid single-entry batch, then surgical corruption.
	encode := func(mutate func(w *Buffer)) []byte {
		var w Buffer
		w.b = append(w.b, Version, MsgEnvelopeBatch)
		w.PutUvarint(1) // one key
		w.PutString("q")
		w.PutUvarint(0) // epoch
		w.PutUvarint(0) // no base levels
		w.PutDuration(time.Second)
		w.PutUvarint(1) // one entry
		mutate(&w)
		return w.Bytes()
	}
	entry := func(w *Buffer, ref uint64, nLevels, diffPos uint64) {
		w.PutUvarint(ref)
		w.PutVarint(0)        // tree
		w.b = append(w.b, 0)  // ttlDown
		w.PutDuration(0)      // TB
		w.PutDuration(0)      // TE
		w.PutDuration(0)      // age
		w.PutUvarint(1)       // count
		w.PutBool(false)      // boundary
		w.PutUvarint(0)       // hops
		w.b = append(w.b, 0)  // nil value
		w.PutUvarint(nLevels) // L
		w.PutUvarint(1)       // one diff
		w.PutUvarint(diffPos) // position
		w.PutVarint(2)        // level
	}

	if got, err := DecodeMessage(encode(func(w *Buffer) { entry(w, 0, 2, 0) })); err != nil {
		t.Fatalf("valid batch rejected: %v (%#v)", err, got)
	}
	if _, err := DecodeMessage(encode(func(w *Buffer) { entry(w, 5, 2, 0) })); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-table query ref: %v", err)
	}
	if _, err := DecodeMessage(encode(func(w *Buffer) { entry(w, 0, 2, 7) })); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("diff position beyond vector: %v", err)
	}
	if _, err := DecodeMessage(encode(func(w *Buffer) { entry(w, 0, 1<<40, 0) })); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd level count: %v", err)
	}

	// Zero entries is corrupt (an encoder never produces it).
	var z Buffer
	z.b = append(z.b, Version, MsgEnvelopeBatch)
	z.PutUvarint(0) // no keys
	z.PutUvarint(0) // no base
	z.PutDuration(0)
	z.PutUvarint(0) // no entries
	if _, err := DecodeMessage(z.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-entry batch: %v", err)
	}

	// The batch kind does not exist before v4.
	b := sampleBatch(t)
	var w3 Buffer
	if err := EncodeMessage(&w3, b); err != nil {
		t.Fatal(err)
	}
	frame := w3.Bytes()
	frame[0] = VersionNoBatch
	if _, err := DecodeMessage(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("batch under v3: %v", err)
	}
}

// EncodeMessageVersion emits v3 frames that v4 decoders read unchanged —
// the sender side of a rolling upgrade. Batches have no v3 form.
func TestEncodeMessageVersionCompat(t *testing.T) {
	for _, msg := range sampleMessages() {
		var w Buffer
		err := EncodeMessageVersion(&w, msg, VersionNoBatch)
		if _, isBatch := msg.(*EnvelopeBatch); isBatch {
			if err == nil {
				t.Fatal("batch encoded at v3")
			}
			continue
		}
		if err != nil {
			t.Fatalf("encode %T at v3: %v", msg, err)
		}
		if v := w.Bytes()[0]; v != VersionNoBatch {
			t.Fatalf("%T frame stamped v%d, want v%d", msg, v, VersionNoBatch)
		}
		got, err := DecodeMessage(w.Bytes())
		if err != nil {
			t.Fatalf("v3 %T rejected by v4 decoder: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("v3 round trip %T:\n got %#v\nwant %#v", msg, got, msg)
		}
	}
	var w Buffer
	if err := EncodeMessageVersion(&w, Heartbeat{Seq: 1}, VersionNoEpoch); err == nil {
		t.Fatal("v2 encoding accepted (payload layouts differ below v3)")
	}
}

// The steady-state flush path encodes batches with zero allocations: the
// key-table scratch is pooled and every field appends into the caller's
// buffer.
func BenchmarkEnvelopeBatchEncode(b *testing.B) {
	batch := sampleBatch(b)
	var w Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := EncodeMessage(&w, batch); err != nil {
			b.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		w.Reset()
		_ = EncodeMessage(&w, batch)
	}); allocs != 0 {
		b.Fatalf("batch encode allocates %v/op", allocs)
	}
}

// SummaryWireSize never under-estimates an entry's encoded footprint (the
// staging buffer uses it to stay under the transport frame ceiling).
func TestSummaryWireSizeBounds(t *testing.T) {
	b := sampleBatch(t)
	for i := range b.Envelopes {
		e := &b.Envelopes[i]
		var w Buffer
		if err := EncodeEnvelopeBatch(&w, &EnvelopeBatch{SentAt: b.SentAt, Envelopes: []Envelope{*e}}); err != nil {
			t.Fatal(err)
		}
		if est, real := SummaryWireSize(&e.S), len(w.Bytes()); est < real-16 {
			// The single-entry frame carries the whole key table and base
			// vector; the estimate covers the entry plus its table share.
			t.Fatalf("entry %d: estimate %d far below encoded %d", i, est, real)
		}
	}
}
