package wire

import "fmt"

// This file is the fragment-layer codec used by socket backends
// (runtime/netrt) to carry frames larger than one datagram: an oversized
// wire frame is split into fragments — `[stream id][frag index][frag
// count][payload]` — reassembled by stream on the far side, and repaired by
// NACK frames listing the fragment indices a receiver is still missing.
// Fragments sit *below* EncodeMessage/DecodeMessage framing: the payloads
// concatenate back into exactly the bytes a single-datagram frame would
// have carried. The decoders follow the same discipline as every other
// decoder here: counts are validated against the remaining buffer before
// allocating, corrupt input returns an error wrapping ErrCorrupt, and
// nothing panics (fuzz targets pin this).

// Fragment is one piece of a fragmented transport frame. Index is the
// zero-based position within the stream's Count fragments; every fragment
// of a stream carries the same Count so a receiver can size the reassembly
// from whichever fragment arrives first.
type Fragment struct {
	Stream  uint64
	Index   uint32
	Count   uint32
	Payload []byte
}

// Nack asks the sender of a fragment stream to retransmit the listed
// fragment indices.
type Nack struct {
	Stream  uint64
	Missing []uint32
}

// EncodeFragment appends a fragment: stream id, index, count, then the
// length-prefixed payload.
func EncodeFragment(w *Buffer, f Fragment) {
	w.PutUvarint(f.Stream)
	w.PutUvarint(uint64(f.Index))
	w.PutUvarint(uint64(f.Count))
	w.PutBytes(f.Payload)
}

// DecodeFragment reads a fragment. A fragment whose index is outside its
// own count, or whose count is zero, is corrupt — such a frame could not
// have been produced by the splitter.
func DecodeFragment(r *Reader) (f Fragment, err error) {
	if f.Stream, err = r.Uvarint(); err != nil {
		return
	}
	var v uint64
	if v, err = r.Uvarint(); err != nil || v > 1<<32-1 {
		err = ErrCorrupt
		return
	}
	f.Index = uint32(v)
	if v, err = r.Uvarint(); err != nil || v == 0 || v > 1<<32-1 {
		err = ErrCorrupt
		return
	}
	f.Count = uint32(v)
	if f.Index >= f.Count {
		err = fmt.Errorf("wire: fragment index %d outside count %d: %w", f.Index, f.Count, ErrCorrupt)
		return
	}
	f.Payload, err = r.Bytes()
	return
}

// EncodeNack appends a retransmission request: stream id, then the missing
// fragment indices.
func EncodeNack(w *Buffer, n Nack) {
	w.PutUvarint(n.Stream)
	w.PutUvarint(uint64(len(n.Missing)))
	for _, idx := range n.Missing {
		w.PutUvarint(uint64(idx))
	}
}

// DecodeNack reads a retransmission request. The index count is bounded
// against the remaining bytes before allocating.
func DecodeNack(r *Reader) (n Nack, err error) {
	if n.Stream, err = r.Uvarint(); err != nil {
		return
	}
	var c uint64
	if c, err = r.Uvarint(); err != nil || c > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if c == 0 {
		return
	}
	n.Missing = make([]uint32, c)
	for i := range n.Missing {
		var v uint64
		if v, err = r.Uvarint(); err != nil || v > 1<<32-1 {
			err = ErrCorrupt
			return
		}
		n.Missing[i] = uint32(v)
	}
	return
}
