package wire

import "sync"

// The data plane decodes the same handful of query names on every summary
// envelope; a process-wide intern table turns those per-message string
// allocations into map lookups. The m[string(b)] form below compiles to a
// no-allocation map access, so interning an already-known key costs no
// heap at all.
var (
	internMu  sync.RWMutex
	internTab = make(map[string]string)
)

// maxInterned bounds the table. A decoder fed adversarial names (fuzzed
// or hostile datagrams) must not grow it without limit; on overflow the
// table resets wholesale and re-warms with the live working set — simpler
// than LRU, and the steady state (few long-lived query names) re-interns
// in a handful of messages.
const maxInterned = 1024

// Intern returns a canonical string equal to b, allocating only the first
// time a value is seen.
func Intern(b []byte) string {
	internMu.RLock()
	s, ok := internTab[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(internTab) >= maxInterned {
		internTab = make(map[string]string, maxInterned)
	}
	internTab[s] = s
	internMu.Unlock()
	return s
}

// InternedString reads a length-prefixed string through the intern table:
// recurring keys decode without allocating.
func (r *Reader) InternedString() (string, error) {
	n, err := r.Uvarint()
	if err != nil || uint64(r.Remaining()) < n {
		return "", ErrCorrupt
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return Intern(b), nil
}
