package wire

import (
	"repro/internal/tuple"
)

// EncodeSummary appends a summary tuple, including its routing state:
// per-tree last-visited levels and the TTL-down counter (§3.3).
func EncodeSummary(w *Buffer, s tuple.Summary, ttlDown uint8) error {
	w.PutString(s.Query)
	w.PutDuration(s.Index.TB)
	w.PutDuration(s.Index.TE)
	w.PutDuration(s.Age)
	w.PutUvarint(uint64(s.Count))
	w.PutBool(s.Boundary)
	w.PutUvarint(uint64(s.Hops))
	if err := w.PutValue(s.Value); err != nil {
		return err
	}
	w.PutUvarint(uint64(len(s.Levels)))
	for _, l := range s.Levels {
		w.PutVarint(int64(l))
	}
	w.b = append(w.b, ttlDown)
	return nil
}

// DecodeSummary reads a summary encoded by EncodeSummary. The query name
// is interned: every envelope of a query carries the same few names, so
// steady-state decode performs no string allocation for them.
func DecodeSummary(r *Reader) (s tuple.Summary, ttlDown uint8, err error) {
	if s.Query, err = r.InternedString(); err != nil {
		return
	}
	if s.Index.TB, err = r.Duration(); err != nil {
		return
	}
	if s.Index.TE, err = r.Duration(); err != nil {
		return
	}
	if s.Age, err = r.Duration(); err != nil {
		return
	}
	var cnt uint64
	if cnt, err = r.Uvarint(); err != nil {
		return
	}
	s.Count = int(cnt)
	if s.Boundary, err = r.Bool(); err != nil {
		return
	}
	var hops uint64
	if hops, err = r.Uvarint(); err != nil {
		return
	}
	s.Hops = int(hops)
	if s.Value, err = r.Value(); err != nil {
		return
	}
	var n uint64
	if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining())+1 {
		err = ErrCorrupt
		return
	}
	s.Levels = make([]int16, n)
	for i := range s.Levels {
		var v int64
		if v, err = r.Varint(); err != nil {
			return
		}
		s.Levels[i] = int16(v)
	}
	if r.Remaining() < 1 {
		err = ErrCorrupt
		return
	}
	ttlDown = r.b[r.off]
	r.off++
	return
}
