package wire

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/tuple"
)

// This file is the multi-summary envelope codec (wire Version 4). An
// EnvelopeBatch carries every summary a peer has staged for one next-hop
// neighbor in a single frame, amortizing the per-frame costs that dominate
// the upstream path at scale: the version/kind header, the query key (one
// table entry per distinct query instead of one string per summary), the
// transmit timestamp (shared), and the Levels routing vector (delta-encoded
// against the batch's base vector — summaries staged at one peer mostly
// share identical levels, so the common case is an empty diff).
//
// Payload layout, after the [Version][kind] frame header:
//
//	[K uvarint] K × ([name string][epoch uvarint])   query key table
//	[B uvarint] B × [level varint]                   base level vector
//	[sentAt duration]                                shared transmit stamp
//	[N uvarint] N × entry
//
// and each entry:
//
//	[queryRef uvarint][tree varint][ttlDown byte]
//	[TB][TE][Age durations][count uvarint][boundary bool][hops uvarint]
//	[value][L uvarint][D uvarint] D × ([pos uvarint][level varint])
//
// An entry's level vector has length L and reconstructs as base[i] for
// i < min(L, B) and -1 (never visited) beyond the base, with the D diff
// positions overriding. The encoder takes the first entry's levels as the
// base, so entry 0's diff is always empty.

// maxBatchLevels bounds a decoded entry's level-vector length. L is not
// backed by wire bytes (levels are reconstructed, not read), so without a
// cap a corrupt frame could demand an arbitrarily large allocation. Real
// vectors have one slot per tree; plans use a handful.
const maxBatchLevels = 4096

// EnvelopeBatch is N summaries bound for the same next-hop peer in one
// frame. Envelopes are fully materialized on decode — each entry owns its
// Levels and carries the batch's shared SentAt — so receivers process them
// exactly like single envelopes.
type EnvelopeBatch struct {
	SentAt    time.Duration
	Envelopes []Envelope
}

// batchScratch is the reusable key-table workspace for the batch codec;
// pooled so the steady-state encode path performs no allocation.
type batchScratch struct {
	names  []string
	epochs []uint32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// find returns the table index of (name, epoch), or -1.
func (s *batchScratch) find(name string, epoch uint32) int {
	for i := range s.names {
		if s.epochs[i] == epoch && s.names[i] == name {
			return i
		}
	}
	return -1
}

// baseLevelAt is the reconstruction default for level slot i: the base
// vector where it reaches, never-visited beyond it.
func baseLevelAt(base []int16, i int) int16 {
	if i < len(base) {
		return base[i]
	}
	return -1
}

// EncodeEnvelopeBatch appends a batch payload. The batch must carry at
// least one envelope (an empty batch has no frame to save and no base
// vector to take).
func EncodeEnvelopeBatch(w *Buffer, b *EnvelopeBatch) error {
	if len(b.Envelopes) == 0 {
		return fmt.Errorf("wire: empty envelope batch")
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.names, sc.epochs = sc.names[:0], sc.epochs[:0]
	for i := range b.Envelopes {
		e := &b.Envelopes[i]
		if sc.find(e.S.Query, e.Epoch) < 0 {
			sc.names = append(sc.names, e.S.Query)
			sc.epochs = append(sc.epochs, e.Epoch)
		}
	}
	w.PutUvarint(uint64(len(sc.names)))
	for i := range sc.names {
		w.PutString(sc.names[i])
		w.PutUvarint(uint64(sc.epochs[i]))
	}
	base := b.Envelopes[0].S.Levels
	w.PutUvarint(uint64(len(base)))
	for _, l := range base {
		w.PutVarint(int64(l))
	}
	w.PutDuration(b.SentAt)
	w.PutUvarint(uint64(len(b.Envelopes)))
	var err error
	for i := range b.Envelopes {
		e := &b.Envelopes[i]
		w.PutUvarint(uint64(sc.find(e.S.Query, e.Epoch)))
		w.PutVarint(int64(e.Tree))
		w.b = append(w.b, e.TTLDown)
		w.PutDuration(e.S.Index.TB)
		w.PutDuration(e.S.Index.TE)
		w.PutDuration(e.S.Age)
		w.PutUvarint(uint64(e.S.Count))
		w.PutBool(e.S.Boundary)
		w.PutUvarint(uint64(e.S.Hops))
		if err = w.PutValue(e.S.Value); err != nil {
			break
		}
		w.PutUvarint(uint64(len(e.S.Levels)))
		diffs := 0
		for j, l := range e.S.Levels {
			if l != baseLevelAt(base, j) {
				diffs++
			}
		}
		w.PutUvarint(uint64(diffs))
		for j, l := range e.S.Levels {
			if l != baseLevelAt(base, j) {
				w.PutUvarint(uint64(j))
				w.PutVarint(int64(l))
			}
		}
	}
	batchScratchPool.Put(sc)
	return err
}

// DecodeEnvelopeBatch reads a batch payload, materializing every entry as
// a standalone envelope: levels reconstructed from the base vector plus
// the entry's diff, query name and epoch resolved through the key table,
// SentAt copied from the batch. Query names are interned, as in
// DecodeSummary.
func DecodeEnvelopeBatch(r *Reader) (*EnvelopeBatch, error) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.names, sc.epochs = sc.names[:0], sc.epochs[:0]
	k, err := r.Uvarint()
	if err != nil || k > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	for i := uint64(0); i < k; i++ {
		name, err := r.InternedString()
		if err != nil {
			return nil, err
		}
		ep, err := r.epoch()
		if err != nil {
			return nil, err
		}
		sc.names = append(sc.names, name)
		sc.epochs = append(sc.epochs, ep)
	}
	nb, err := r.Uvarint()
	if err != nil || nb > uint64(r.Remaining())+1 || nb > maxBatchLevels {
		return nil, ErrCorrupt
	}
	var base []int16
	if nb > 0 {
		base = make([]int16, nb)
		for i := range base {
			v, err := r.Varint()
			if err != nil {
				return nil, err
			}
			base[i] = int16(v)
		}
	}
	b := &EnvelopeBatch{}
	if b.SentAt, err = r.Duration(); err != nil {
		return nil, err
	}
	n, err := r.Uvarint()
	if err != nil || n == 0 || n > uint64(r.Remaining())+1 {
		return nil, ErrCorrupt
	}
	b.Envelopes = make([]Envelope, n)
	for i := range b.Envelopes {
		e := &b.Envelopes[i]
		ref, err := r.Uvarint()
		if err != nil || ref >= uint64(len(sc.names)) {
			return nil, ErrCorrupt
		}
		e.S.Query, e.Epoch = sc.names[ref], sc.epochs[ref]
		tree, err := r.Varint()
		if err != nil {
			return nil, err
		}
		e.Tree = int(tree)
		if r.Remaining() < 1 {
			return nil, ErrCorrupt
		}
		e.TTLDown = r.b[r.off]
		r.off++
		if e.S.Index.TB, err = r.Duration(); err != nil {
			return nil, err
		}
		if e.S.Index.TE, err = r.Duration(); err != nil {
			return nil, err
		}
		if e.S.Age, err = r.Duration(); err != nil {
			return nil, err
		}
		cnt, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		e.S.Count = int(cnt)
		if e.S.Boundary, err = r.Bool(); err != nil {
			return nil, err
		}
		hops, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		e.S.Hops = int(hops)
		if e.S.Value, err = r.Value(); err != nil {
			return nil, err
		}
		lv, err := r.Uvarint()
		if err != nil || lv > maxBatchLevels {
			return nil, ErrCorrupt
		}
		if lv > 0 {
			e.S.Levels = make([]int16, lv)
			for j := range e.S.Levels {
				e.S.Levels[j] = baseLevelAt(base, j)
			}
		}
		d, err := r.Uvarint()
		if err != nil || d > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		for j := uint64(0); j < d; j++ {
			pos, err := r.Uvarint()
			if err != nil || pos >= lv {
				return nil, ErrCorrupt
			}
			v, err := r.Varint()
			if err != nil {
				return nil, err
			}
			e.S.Levels[pos] = int16(v)
		}
		e.SentAt = b.SentAt
	}
	return b, nil
}

// SummaryWireSize estimates the encoded size of one batch entry without
// allocating: the fixed fields at varint widths plus the value's encoded
// size. Staging buffers use it to decide when a batch approaches the
// transport frame ceiling; a few bytes of slack per entry is fine (the
// flush threshold sits well under the ceiling).
func SummaryWireSize(s *tuple.Summary) int {
	n := 1 + // queryRef (tables are tiny)
		1 + // tree
		1 + // ttlDown
		durationWireSize(s.Index.TB) +
		durationWireSize(s.Index.TE) +
		durationWireSize(s.Age) +
		uvarintWireSize(uint64(s.Count)) +
		1 + // boundary
		uvarintWireSize(uint64(s.Hops)) +
		valueWireSize(s.Value) +
		uvarintWireSize(uint64(len(s.Levels))) +
		1 + // diff count
		3*len(s.Levels) // worst case: every slot diffs
	return n + len(s.Query) + 2 // key-table share, counted once per entry for safety
}

// uvarintWireSize is the encoded length of a uvarint.
func uvarintWireSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// durationWireSize is the encoded length of a PutDuration varint.
func durationWireSize(d time.Duration) int {
	v := int64(d)
	return uvarintWireSize(uint64((v << 1) ^ (v >> 63)))
}

// valueWireSize is the encoded length of a summary value, computed
// arithmetically (SizeOfValue allocates a scratch buffer, which the
// 0-alloc staging path cannot afford). Unknown types get a conservative
// guess; PutValue will reject them at encode time anyway.
func valueWireSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 1
	case float64:
		return 9
	case string:
		return 1 + uvarintWireSize(uint64(len(x))) + len(x)
	case []float64:
		return 1 + uvarintWireSize(uint64(len(x))) + 8*len(x)
	case []uint64:
		n := 1 + uvarintWireSize(uint64(len(x)))
		for _, u := range x {
			n += uvarintWireSize(u)
		}
		return n
	case map[string]float64:
		n := 1 + uvarintWireSize(uint64(len(x)))
		for k := range x {
			n += uvarintWireSize(uint64(len(k))) + len(k) + 8
		}
		return n
	case []ScoredEntry:
		n := 1 + uvarintWireSize(uint64(len(x)))
		for _, e := range x {
			n += uvarintWireSize(uint64(len(e.Key))) + len(e.Key) + 8 +
				uvarintWireSize(uint64(len(e.Payload))) + 8*len(e.Payload)
		}
		return n
	case Coord:
		return 17
	default:
		return 64
	}
}
