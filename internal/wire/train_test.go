package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestTrainRoundTrip(t *testing.T) {
	frames := [][]byte{
		[]byte("x"),
		[]byte("a heartbeat-sized frame with a bit more to it"),
		bytes.Repeat([]byte{0xAB}, 300),
	}
	var w Buffer
	for _, f := range frames {
		w.PutBytes(f)
	}
	var got [][]byte
	err := ForEachTrainFrame(w.Bytes(), func(f []byte) {
		got = append(got, append([]byte(nil), f...))
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d mismatch: %q != %q", i, got[i], frames[i])
		}
	}
}

func TestTrainCorruptInputs(t *testing.T) {
	overrun := Buffer{}
	overrun.PutUvarint(100)
	overrun.PutRaw([]byte("short"))
	zeroLen := Buffer{}
	zeroLen.PutUvarint(0)
	cases := map[string][]byte{
		"empty":       {},
		"overrun len": overrun.Bytes(),
		"zero len":    zeroLen.Bytes(),
		"bad varint":  bytes.Repeat([]byte{0xFF}, 12),
	}
	for name, b := range cases {
		if err := ForEachTrainFrame(b, func([]byte) {}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// A corrupt tail must still yield the frames before it — they are
// independent payloads, so the exposure matches a truncated datagram.
func TestTrainYieldsFramesBeforeCorruptTail(t *testing.T) {
	var w Buffer
	w.PutBytes([]byte("intact"))
	w.PutUvarint(1 << 20) // length overruns the buffer
	var got int
	err := ForEachTrainFrame(w.Bytes(), func(f []byte) { got++ })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if got != 1 {
		t.Fatalf("yielded %d frames before corruption, want 1", got)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	w := GetBuffer()
	w.PutString("hello")
	if w.Len() == 0 {
		t.Fatal("pooled buffer did not accumulate")
	}
	PutBuffer(w)
	w2 := GetBuffer()
	if w2.Len() != 0 {
		t.Fatalf("reused buffer not reset: len=%d", w2.Len())
	}
	buf := w2.Reserve(4096)
	if len(buf) != 4096 {
		t.Fatalf("Reserve returned %d bytes, want 4096", len(buf))
	}
	PutBuffer(w2)
	// Oversized buffers must be dropped, not pooled.
	big := GetBuffer()
	big.Reserve(maxPooledCap + 1)
	PutBuffer(big) // must not panic; the buffer is simply discarded
	PutBuffer(nil) // nil is tolerated
}

func TestDecodeHeartbeatIntoMatchesDecodeMessage(t *testing.T) {
	hb := Heartbeat{Seq: 42, Hash: 7, Coord: []float64{1.5, -2.25, 0.5}, CoordErr: 0.125}
	var w Buffer
	if err := EncodeMessage(&w, hb); err != nil {
		t.Fatal(err)
	}
	var m Heartbeat
	m.Coord = make([]float64, 0, 8)
	if err := DecodeHeartbeatInto(w.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Seq != hb.Seq || m.Hash != hb.Hash || m.CoordErr != hb.CoordErr {
		t.Fatalf("decoded %+v, want %+v", m, hb)
	}
	if len(m.Coord) != len(hb.Coord) {
		t.Fatalf("coord dims %d, want %d", len(m.Coord), len(hb.Coord))
	}
	for i := range hb.Coord {
		if m.Coord[i] != hb.Coord[i] {
			t.Fatalf("coord[%d] = %v, want %v", i, m.Coord[i], hb.Coord[i])
		}
	}
	// The same struct decodes a coordinate-free heartbeat without keeping
	// stale components.
	var w2 Buffer
	if err := EncodeMessage(&w2, Heartbeat{Seq: 43, Hash: 9}); err != nil {
		t.Fatal(err)
	}
	if err := DecodeHeartbeatInto(w2.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Coord) != 0 || m.CoordErr != 0 {
		t.Fatalf("stale coordinate survived reuse: %+v", m)
	}
	// Non-heartbeat frames and trailing garbage are rejected.
	var w3 Buffer
	if err := EncodeMessage(&w3, Remove{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	if err := DecodeHeartbeatInto(w3.Bytes(), &m); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong-kind err = %v, want ErrCorrupt", err)
	}
	trailing := append(append([]byte(nil), w.Bytes()...), 0xFF)
	if err := DecodeHeartbeatInto(trailing, &m); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing-bytes err = %v, want ErrCorrupt", err)
	}
}
