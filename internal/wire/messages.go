package wire

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/tuple"
)

// This file is the full peer-message codec: every message Mortar peers
// exchange has an Encode/Decode pair here, and EncodeMessage/DecodeMessage
// frame them with a version byte and a one-byte kind tag. The fabric
// encodes each message once at transmit — the encoded length is the size
// the emulator charges, and socket backends (runtime/netrt) put exactly
// these bytes on the wire as UDP datagrams, the way the prototype's UdpCC
// datagrams carried the real protocol.
//
// Frame layout: [Version][kind][payload]. All decoders validate counts
// against the remaining buffer before allocating, return errors wrapping
// ErrCorrupt, and never panic on corrupt input (fuzz targets pin this).

// Version is the wire-format version byte leading every message frame.
// Decoders reject frames from unknown versions as corrupt but accept the
// previous version. The tolerance is decode-side only: new binaries read
// old frames, while old binaries reject the new version — so a rolling
// upgrade finishes cleanly once every sender is upgraded, but a mixed
// federation is not a steady state.
const Version = 2

// VersionNoCoords is the previous wire format: identical except that
// heartbeats end after the reconciliation hash, with no Vivaldi coordinate
// extension. Decoders still accept it (version-tolerant decode).
const VersionNoCoords = 1

// Message kind tags.
const (
	MsgEnvelope     = 1 // a summary tuple in flight (data plane)
	MsgHeartbeat    = 2
	MsgInstall      = 3
	MsgRemove       = 4
	MsgReconSummary = 5
	MsgReconDefs    = 6
	MsgTopoRequest  = 7
	MsgTopoReply    = 8
)

// QueryMeta is the part of a query definition every hosting peer keeps: the
// operator type, its query-specific arguments, and the window. It is small
// and travels in install and reconciliation messages; tree topology stays
// at the query root, which acts as the topology server (§6.1).
type QueryMeta struct {
	// Name identifies the query; the storage layer guarantees single-writer
	// semantics per name.
	Name string
	// Seq is the management command sequence number issued by the object
	// store; peers use it to order installs against removals.
	Seq uint64
	// OpName and OpArgs choose the in-network operator from the registry.
	OpName string
	OpArgs []string
	// Window is the operator's sliding window.
	Window tuple.WindowSpec
	// FilterKey, when non-empty, makes source operators drop raw tuples
	// whose Key differs (the Wi-Fi select stage, §7.4).
	FilterKey string
	// Root is the peer hosting the root operator and topology service.
	Root int
	// IssuedSim records when the query was issued. Installing peers
	// subtract the install message's age from their reference clock so
	// syncless indices share an epoch despite install deltas (§5.1).
	IssuedSim time.Duration
}

// Neighbors is one peer's position in a query's tree set: its parent,
// children, and level per tree. This is what the install multicast carries
// per node and what the topology service returns during recovery.
type Neighbors struct {
	Parents  []int   // per tree; -1 at the root
	Children [][]int // per tree
	Levels   []int   // per tree
}

// Envelope wraps a summary tuple with its per-hop routing state (§3.3):
// the tree the current hop travels on and the TTL-down counter bounding
// flex-down steps. The per-tree level history lives in the summary itself
// (tuple.Summary.Levels) because it survives merging.
type Envelope struct {
	S       tuple.Summary
	Tree    int // tree of the current hop
	TTLDown uint8
	SentAt  time.Duration // runtime time at transmit; receiver derives flight time (UdpCC RTT/2)
}

// Heartbeat flows parent -> child every heartbeat period. Every few beats
// it piggybacks the reconciliation hash of the sender's query set. On
// runtimes that run decentralized Vivaldi (runtime/netrt) it also carries
// the sender's network coordinate, the way the prototype gossiped Bamboo's
// Vivaldi state on the traffic peers already exchange.
type Heartbeat struct {
	Seq  uint64
	Hash uint64 // 0 when not piggybacked this beat
	// Coord is the sender's Vivaldi coordinate in milliseconds, empty when
	// the sending runtime maintains none. CoordErr is the sender's error
	// estimate, meaningful only when Coord is present.
	Coord    []float64
	CoordErr float64
}

// Install carries a chunk of the install multicast: per-member metadata
// and tree position, plus the forwarding edges within the chunk.
type Install struct {
	Meta QueryMeta
	// Members maps peer -> its neighbors record.
	Members map[int]Neighbors
	// Forward maps peer -> the chunk members it must forward to.
	Forward map[int][]int
}

// Remove multicasts a query removal along the same chunking.
type Remove struct {
	Name    string
	Seq     uint64
	Forward map[int][]int
}

// ReconSummary opens pair-wise reconciliation: the full (small) summary of
// the sender's installed queries and cached removals (§6.1).
type ReconSummary struct {
	Installed map[string]uint64 // name -> seq
	Removed   map[string]uint64
	Metas     []QueryMeta // metadata for everything installed, so the peer can adopt
}

// ReconDefs is the reply: metadata the receiver was missing and removals
// it had not seen.
type ReconDefs struct {
	Metas   []QueryMeta
	Removed map[string]uint64
}

// TopoRequest asks a query root (the topology server) for the requester's
// parent/child sets (§6.1).
type TopoRequest struct {
	Query string
	Peer  int
}

// TopoReply returns the requester's position in the tree set.
type TopoReply struct {
	Query string
	Seq   uint64
	NB    Neighbors
	// Unknown is set when the root no longer knows the query (removed).
	Unknown bool
}

func (w *Buffer) appendKind(k byte) { w.b = append(w.b, Version, k) }

// EncodeMessage appends a complete message frame: version byte, kind tag,
// payload. It accepts exactly the message types above (the envelope by
// pointer, matching how the data path passes it).
func EncodeMessage(w *Buffer, msg any) error {
	switch m := msg.(type) {
	case *Envelope:
		w.appendKind(MsgEnvelope)
		return EncodeEnvelope(w, m)
	case Heartbeat:
		w.appendKind(MsgHeartbeat)
		EncodeHeartbeat(w, m)
	case Install:
		w.appendKind(MsgInstall)
		return EncodeInstall(w, m)
	case Remove:
		w.appendKind(MsgRemove)
		EncodeRemove(w, m)
	case ReconSummary:
		w.appendKind(MsgReconSummary)
		EncodeReconSummary(w, m)
	case ReconDefs:
		w.appendKind(MsgReconDefs)
		EncodeReconDefs(w, m)
	case TopoRequest:
		w.appendKind(MsgTopoRequest)
		EncodeTopoRequest(w, m)
	case TopoReply:
		w.appendKind(MsgTopoReply)
		EncodeTopoReply(w, m)
	default:
		return fmt.Errorf("wire: unsupported message type %T", msg)
	}
	return nil
}

// DecodeMessage decodes a complete message frame produced by
// EncodeMessage. Envelopes come back as *Envelope, everything else by
// value, so the result feeds a type switch directly. Trailing bytes after
// the payload are corruption.
func DecodeMessage(b []byte) (any, error) {
	r := NewReader(b)
	v, err := r.Byte()
	if err != nil || (v != Version && v != VersionNoCoords) {
		return nil, fmt.Errorf("wire: bad version: %w", ErrCorrupt)
	}
	kind, err := r.Byte()
	if err != nil {
		return nil, err
	}
	var msg any
	switch kind {
	case MsgEnvelope:
		var e Envelope
		if e, err = DecodeEnvelope(r); err == nil {
			msg = &e
		}
	case MsgHeartbeat:
		msg, err = decodeHeartbeatVersion(r, v)
	case MsgInstall:
		msg, err = DecodeInstall(r)
	case MsgRemove:
		msg, err = DecodeRemove(r)
	case MsgReconSummary:
		msg, err = DecodeReconSummary(r)
	case MsgReconDefs:
		msg, err = DecodeReconDefs(r)
	case MsgTopoRequest:
		msg, err = DecodeTopoRequest(r)
	case MsgTopoReply:
		msg, err = DecodeTopoReply(r)
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d: %w", kind, ErrCorrupt)
	}
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes: %w", r.Remaining(), ErrCorrupt)
	}
	return msg, nil
}

// --- Envelope ---

// EncodeEnvelope appends an envelope payload: the summary with its routing
// state, the hop's tree, and the transmit timestamp.
func EncodeEnvelope(w *Buffer, e *Envelope) error {
	if err := EncodeSummary(w, e.S, e.TTLDown); err != nil {
		return err
	}
	w.PutVarint(int64(e.Tree))
	w.PutDuration(e.SentAt)
	return nil
}

// DecodeEnvelope reads an envelope payload.
func DecodeEnvelope(r *Reader) (e Envelope, err error) {
	if e.S, e.TTLDown, err = DecodeSummary(r); err != nil {
		return
	}
	var tree int64
	if tree, err = r.Varint(); err != nil {
		return
	}
	e.Tree = int(tree)
	e.SentAt, err = r.Duration()
	return
}

// --- Heartbeat ---

// PutCoordExt appends the Vivaldi coordinate extension shared by
// heartbeats and netrt's probe frames: a dimension count (0 when no
// coordinate is attached), the components, then the error estimate (only
// when a coordinate is present).
func (w *Buffer) PutCoordExt(c []float64, errEst float64) {
	w.PutUvarint(uint64(len(c)))
	for _, v := range c {
		w.PutF64(v)
	}
	if len(c) > 0 {
		w.PutF64(errEst)
	}
}

// CoordExt reads the coordinate extension written by PutCoordExt. A zero
// dimension count yields a nil coordinate; the count is bounded against
// the remaining bytes before allocating.
func (r *Reader) CoordExt() ([]float64, float64, error) {
	d, err := r.Uvarint()
	if err != nil || d > uint64(r.Remaining())/8 {
		return nil, 0, ErrCorrupt
	}
	if d == 0 {
		return nil, 0, nil
	}
	c := make([]float64, d)
	for i := range c {
		if c[i], err = r.F64(); err != nil {
			return nil, 0, err
		}
	}
	e, err := r.F64()
	if err != nil {
		return nil, 0, err
	}
	return c, e, nil
}

// EncodeHeartbeat appends a heartbeat payload: seq, hash, then the
// coordinate extension.
func EncodeHeartbeat(w *Buffer, m Heartbeat) {
	w.PutUvarint(m.Seq)
	w.PutUvarint(m.Hash)
	w.PutCoordExt(m.Coord, m.CoordErr)
}

// DecodeHeartbeat reads a current-version heartbeat payload.
func DecodeHeartbeat(r *Reader) (Heartbeat, error) {
	return decodeHeartbeatVersion(r, Version)
}

// decodeHeartbeatVersion reads a heartbeat payload in the given frame
// version: VersionNoCoords payloads end after the hash.
func decodeHeartbeatVersion(r *Reader, v byte) (m Heartbeat, err error) {
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	if m.Hash, err = r.Uvarint(); err != nil {
		return
	}
	if v == VersionNoCoords {
		return
	}
	m.Coord, m.CoordErr, err = r.CoordExt()
	return
}

// --- QueryMeta / Neighbors ---

// EncodeQueryMeta appends query metadata.
func EncodeQueryMeta(w *Buffer, m QueryMeta) {
	w.PutString(m.Name)
	w.PutUvarint(m.Seq)
	w.PutString(m.OpName)
	w.PutUvarint(uint64(len(m.OpArgs)))
	for _, a := range m.OpArgs {
		w.PutString(a)
	}
	w.PutByte(byte(m.Window.Kind))
	w.PutDuration(m.Window.Range)
	w.PutDuration(m.Window.Slide)
	w.PutVarint(int64(m.Window.RangeN))
	w.PutVarint(int64(m.Window.SlideN))
	w.PutString(m.FilterKey)
	w.PutVarint(int64(m.Root))
	w.PutDuration(m.IssuedSim)
}

// DecodeQueryMeta reads query metadata.
func DecodeQueryMeta(r *Reader) (m QueryMeta, err error) {
	if m.Name, err = r.String(); err != nil {
		return
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	if m.OpName, err = r.String(); err != nil {
		return
	}
	var n uint64
	if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if n > 0 {
		m.OpArgs = make([]string, n)
		for i := range m.OpArgs {
			if m.OpArgs[i], err = r.String(); err != nil {
				return
			}
		}
	}
	var kind byte
	if kind, err = r.Byte(); err != nil {
		return
	}
	m.Window.Kind = tuple.WindowKind(kind)
	if m.Window.Range, err = r.Duration(); err != nil {
		return
	}
	if m.Window.Slide, err = r.Duration(); err != nil {
		return
	}
	var v int64
	if v, err = r.Varint(); err != nil {
		return
	}
	m.Window.RangeN = int(v)
	if v, err = r.Varint(); err != nil {
		return
	}
	m.Window.SlideN = int(v)
	if m.FilterKey, err = r.String(); err != nil {
		return
	}
	if v, err = r.Varint(); err != nil {
		return
	}
	m.Root = int(v)
	m.IssuedSim, err = r.Duration()
	return
}

// EncodeNeighbors appends a neighbors record. Parents, Children, and
// Levels must be parallel (one entry per tree), as neighborsFor builds
// them.
func EncodeNeighbors(w *Buffer, nb Neighbors) {
	w.PutUvarint(uint64(len(nb.Parents)))
	for t := range nb.Parents {
		w.PutVarint(int64(nb.Parents[t]))
		w.PutVarint(int64(nb.Levels[t]))
		w.PutUvarint(uint64(len(nb.Children[t])))
		for _, c := range nb.Children[t] {
			w.PutVarint(int64(c))
		}
	}
}

// DecodeNeighbors reads a neighbors record.
func DecodeNeighbors(r *Reader) (nb Neighbors, err error) {
	var d uint64
	if d, err = r.Uvarint(); err != nil || d > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if d == 0 {
		return
	}
	nb.Parents = make([]int, d)
	nb.Children = make([][]int, d)
	nb.Levels = make([]int, d)
	for t := uint64(0); t < d; t++ {
		var v int64
		if v, err = r.Varint(); err != nil {
			return
		}
		nb.Parents[t] = int(v)
		if v, err = r.Varint(); err != nil {
			return
		}
		nb.Levels[t] = int(v)
		var n uint64
		if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining()) {
			err = ErrCorrupt
			return
		}
		if n > 0 {
			nb.Children[t] = make([]int, n)
			for i := range nb.Children[t] {
				if v, err = r.Varint(); err != nil {
					return
				}
				nb.Children[t][i] = int(v)
			}
		}
	}
	return
}

// --- Install / Remove ---

// sortedPeers returns a map's peer keys in ascending order, for
// deterministic encoding.
func sortedPeers[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedNames returns a map's name keys in ascending order.
func sortedNames(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func encodeForward(w *Buffer, fwd map[int][]int) {
	w.PutUvarint(uint64(len(fwd)))
	for _, p := range sortedPeers(fwd) {
		w.PutVarint(int64(p))
		w.PutUvarint(uint64(len(fwd[p])))
		for _, q := range fwd[p] {
			w.PutVarint(int64(q))
		}
	}
}

func decodeForward(r *Reader) (map[int][]int, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	fwd := make(map[int][]int, n)
	for i := uint64(0); i < n; i++ {
		p, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m, err := r.Uvarint()
		if err != nil || m > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		list := make([]int, m)
		for j := range list {
			q, err := r.Varint()
			if err != nil {
				return nil, err
			}
			list[j] = int(q)
		}
		fwd[int(p)] = list
	}
	return fwd, nil
}

// EncodeInstall appends an install-chunk payload.
func EncodeInstall(w *Buffer, m Install) error {
	EncodeQueryMeta(w, m.Meta)
	w.PutUvarint(uint64(len(m.Members)))
	for _, p := range sortedPeers(m.Members) {
		w.PutVarint(int64(p))
		EncodeNeighbors(w, m.Members[p])
	}
	encodeForward(w, m.Forward)
	return nil
}

// DecodeInstall reads an install-chunk payload.
func DecodeInstall(r *Reader) (m Install, err error) {
	if m.Meta, err = DecodeQueryMeta(r); err != nil {
		return
	}
	var n uint64
	if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if n > 0 {
		m.Members = make(map[int]Neighbors, n)
	}
	for i := uint64(0); i < n; i++ {
		var p int64
		if p, err = r.Varint(); err != nil {
			return
		}
		var nb Neighbors
		if nb, err = DecodeNeighbors(r); err != nil {
			return
		}
		m.Members[int(p)] = nb
	}
	m.Forward, err = decodeForward(r)
	return
}

// EncodeRemove appends a remove-multicast payload.
func EncodeRemove(w *Buffer, m Remove) {
	w.PutString(m.Name)
	w.PutUvarint(m.Seq)
	encodeForward(w, m.Forward)
}

// DecodeRemove reads a remove-multicast payload.
func DecodeRemove(r *Reader) (m Remove, err error) {
	if m.Name, err = r.String(); err != nil {
		return
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	m.Forward, err = decodeForward(r)
	return
}

// --- Reconciliation ---

func encodeNameSeqs(w *Buffer, m map[string]uint64) {
	w.PutUvarint(uint64(len(m)))
	for _, name := range sortedNames(m) {
		w.PutString(name)
		w.PutUvarint(m[name])
	}
}

func decodeNameSeqs(r *Reader) (map[string]uint64, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]uint64, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		seq, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		m[name] = seq
	}
	return m, nil
}

func encodeMetas(w *Buffer, metas []QueryMeta) {
	w.PutUvarint(uint64(len(metas)))
	for _, m := range metas {
		EncodeQueryMeta(w, m)
	}
}

func decodeMetas(r *Reader) ([]QueryMeta, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	metas := make([]QueryMeta, n)
	for i := range metas {
		if metas[i], err = DecodeQueryMeta(r); err != nil {
			return nil, err
		}
	}
	return metas, nil
}

// EncodeReconSummary appends a reconciliation-summary payload.
func EncodeReconSummary(w *Buffer, m ReconSummary) {
	encodeNameSeqs(w, m.Installed)
	encodeNameSeqs(w, m.Removed)
	encodeMetas(w, m.Metas)
}

// DecodeReconSummary reads a reconciliation-summary payload.
func DecodeReconSummary(r *Reader) (m ReconSummary, err error) {
	if m.Installed, err = decodeNameSeqs(r); err != nil {
		return
	}
	if m.Removed, err = decodeNameSeqs(r); err != nil {
		return
	}
	m.Metas, err = decodeMetas(r)
	return
}

// EncodeReconDefs appends a reconciliation-reply payload.
func EncodeReconDefs(w *Buffer, m ReconDefs) {
	encodeMetas(w, m.Metas)
	encodeNameSeqs(w, m.Removed)
}

// DecodeReconDefs reads a reconciliation-reply payload.
func DecodeReconDefs(r *Reader) (m ReconDefs, err error) {
	if m.Metas, err = decodeMetas(r); err != nil {
		return
	}
	m.Removed, err = decodeNameSeqs(r)
	return
}

// --- Topology service ---

// EncodeTopoRequest appends a topology-request payload.
func EncodeTopoRequest(w *Buffer, m TopoRequest) {
	w.PutString(m.Query)
	w.PutVarint(int64(m.Peer))
}

// DecodeTopoRequest reads a topology-request payload.
func DecodeTopoRequest(r *Reader) (m TopoRequest, err error) {
	if m.Query, err = r.String(); err != nil {
		return
	}
	var p int64
	if p, err = r.Varint(); err != nil {
		return
	}
	m.Peer = int(p)
	return
}

// EncodeTopoReply appends a topology-reply payload.
func EncodeTopoReply(w *Buffer, m TopoReply) {
	w.PutString(m.Query)
	w.PutUvarint(m.Seq)
	EncodeNeighbors(w, m.NB)
	w.PutBool(m.Unknown)
}

// DecodeTopoReply reads a topology-reply payload.
func DecodeTopoReply(r *Reader) (m TopoReply, err error) {
	if m.Query, err = r.String(); err != nil {
		return
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	if m.NB, err = DecodeNeighbors(r); err != nil {
		return
	}
	m.Unknown, err = r.Bool()
	return
}
