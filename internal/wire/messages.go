package wire

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/tuple"
)

// This file is the full peer-message codec: every message Mortar peers
// exchange has an Encode/Decode pair here, and EncodeMessage/DecodeMessage
// frame them with a version byte and a one-byte kind tag. The fabric
// encodes each message once at transmit — the encoded length is the size
// the emulator charges, and socket backends (runtime/netrt) put exactly
// these bytes on the wire as UDP datagrams, the way the prototype's UdpCC
// datagrams carried the real protocol.
//
// Frame layout: [Version][kind][payload]. All decoders validate counts
// against the remaining buffer before allocating, return errors wrapping
// ErrCorrupt, and never panic on corrupt input (fuzz targets pin this).

// Version is the wire-format version byte leading every message frame.
// Decoders reject frames from unknown versions as corrupt but accept the
// earlier versions (the rule, recorded since v2: a version bump may only
// append fields, and decoders must read every prior version by filling the
// missing fields with that version's semantics). The tolerance is
// decode-side only: new binaries read old frames, while old binaries
// reject the new version — so a rolling upgrade finishes cleanly once
// every sender is upgraded, but a mixed federation is not a steady state.
//
// Version 3 adds the query epoch: QueryMeta carries Epoch (so install and
// reconciliation frames key queries on (name, epoch)), envelopes carry the
// epoch their summary belongs to, removes carry the highest epoch they
// retire, topology requests/replies name the epoch they resolve, and the
// new InstallAck kind reports a wired epoch back to the query root.
// Version-2 frames decode with Epoch 0 (the only epoch that existed) and
// with removals covering every epoch (a v2 remove was a whole-query
// remove).
//
// Version 4 adds the EnvelopeBatch kind: N summaries bound for the same
// next-hop peer in one frame, with a per-batch query key table and level
// vectors delta-encoded against the batch's base vector. Every v3 payload
// is byte-identical under v4 — the bump only gates the new kind — so v3
// frames decode unchanged and EncodeMessageVersion can emit v3 frames for
// rolling upgrades (it refuses batches, which have no v3 form).
const Version = 4

// VersionNoBatch is the wire format before multi-summary envelope batches
// (no EnvelopeBatch kind; single envelopes only). Payloads of all other
// kinds are identical to Version 4. Decoders still accept it.
const VersionNoBatch = 3

// VersionNoEpoch is the wire format before query epochs: no Epoch fields
// anywhere and no InstallAck kind. Decoders still accept it.
const VersionNoEpoch = 2

// VersionNoCoords is the wire format before the heartbeat Vivaldi
// coordinate extension (heartbeats end after the reconciliation hash).
// Decoders still accept it.
const VersionNoCoords = 1

// AllEpochs is the Remove.Epoch / RemovedMark.Epoch value meaning the
// removal covers every epoch of the query — a whole-query removal, and the
// semantics of every pre-epoch (v2) removal.
const AllEpochs = ^uint32(0)

// Message kind tags.
const (
	MsgEnvelope      = 1 // a summary tuple in flight (data plane)
	MsgHeartbeat     = 2
	MsgInstall       = 3
	MsgRemove        = 4
	MsgReconSummary  = 5
	MsgReconDefs     = 6
	MsgTopoRequest   = 7
	MsgTopoReply     = 8
	MsgInstallAck    = 9  // a peer reports a wired epoch to the query root
	MsgEnvelopeBatch = 10 // N summaries to one next hop in one frame (v4)
)

// QueryMeta is the part of a query definition every hosting peer keeps: the
// operator type, its query-specific arguments, and the window. It is small
// and travels in install and reconciliation messages; tree topology stays
// at the query root, which acts as the topology server (§6.1).
type QueryMeta struct {
	// Name identifies the query; the storage layer guarantees single-writer
	// semantics per name.
	Name string
	// Seq is the management command sequence number issued by the object
	// store; peers use it to order installs against removals.
	Seq uint64
	// Epoch versions the query's physical plan: a replan reinstalls the
	// same logical query under the next epoch, the two epochs run side by
	// side while the new one wires up, and the old epoch is then retired
	// with an epoch-scoped removal (make-before-break). Peers key instances
	// on (Name, Epoch).
	Epoch uint32
	// OpName and OpArgs choose the in-network operator from the registry.
	OpName string
	OpArgs []string
	// Window is the operator's sliding window.
	Window tuple.WindowSpec
	// FilterKey, when non-empty, makes source operators drop raw tuples
	// whose Key differs (the Wi-Fi select stage, §7.4).
	FilterKey string
	// Root is the peer hosting the root operator and topology service.
	Root int
	// IssuedSim records when the query was issued. Installing peers
	// subtract the install message's age from their reference clock so
	// syncless indices share an epoch despite install deltas (§5.1).
	IssuedSim time.Duration
}

// Neighbors is one peer's position in a query's tree set: its parent,
// children, and level per tree. This is what the install multicast carries
// per node and what the topology service returns during recovery.
type Neighbors struct {
	Parents  []int   // per tree; -1 at the root
	Children [][]int // per tree
	Levels   []int   // per tree
}

// Envelope wraps a summary tuple with its per-hop routing state (§3.3):
// the tree the current hop travels on and the TTL-down counter bounding
// flex-down steps. The per-tree level history lives in the summary itself
// (tuple.Summary.Levels) because it survives merging.
type Envelope struct {
	S       tuple.Summary
	Tree    int // tree of the current hop
	TTLDown uint8
	SentAt  time.Duration // runtime time at transmit; receiver derives flight time (UdpCC RTT/2)
	// Epoch is the query epoch the summary belongs to: during a migration
	// both epochs of a query run side by side and a summary must only ever
	// merge into the instance of its own tree set.
	Epoch uint32
}

// Heartbeat flows parent -> child every heartbeat period. Every few beats
// it piggybacks the reconciliation hash of the sender's query set. On
// runtimes that run decentralized Vivaldi (runtime/netrt) it also carries
// the sender's network coordinate, the way the prototype gossiped Bamboo's
// Vivaldi state on the traffic peers already exchange.
type Heartbeat struct {
	Seq  uint64
	Hash uint64 // 0 when not piggybacked this beat
	// Coord is the sender's Vivaldi coordinate in milliseconds, empty when
	// the sending runtime maintains none. CoordErr is the sender's error
	// estimate, meaningful only when Coord is present.
	Coord    []float64
	CoordErr float64
}

// Install carries a chunk of the install multicast: per-member metadata
// and tree position, plus the forwarding edges within the chunk.
type Install struct {
	Meta QueryMeta
	// Members maps peer -> its neighbors record.
	Members map[int]Neighbors
	// Forward maps peer -> the chunk members it must forward to.
	Forward map[int][]int
}

// Remove multicasts a query removal along the same chunking. Epoch scopes
// it: only instances with epoch <= Epoch are torn down, so a delayed
// old-epoch removal can never take a newer epoch with it. AllEpochs means
// a whole-query removal (and is what every v2 frame decodes to).
type Remove struct {
	Name    string
	Seq     uint64
	Epoch   uint32
	Forward map[int][]int
}

// QueryKey identifies one installed instance in reconciliation state: the
// query name plus the plan epoch. During a migration a peer legitimately
// hosts two epochs of the same name side by side.
type QueryKey struct {
	Name  string
	Epoch uint32
}

// RemovedMark is a cached removal: the removal's sequence number and the
// highest epoch it covers (AllEpochs for whole-query removals). An install
// is superseded when its seq does not exceed the mark's AND its epoch is
// covered — the epoch condition is what keeps a stale old-epoch removal
// from suppressing the newer epoch's reinstalls.
//
// A query name carries a *set* of marks, not one: a whole-query removal
// followed by a re-creation and an epoch retirement yields two removals
// whose coverage rectangles (seq ≤ S, epoch ≤ E) are incomparable, and
// collapsing them into either one would leak zombie instances in some
// replay ordering. Peers keep the non-dominated set (an antichain, tiny
// in practice) and reconciliation exchanges it whole.
type RemovedMark struct {
	Seq   uint64
	Epoch uint32
}

// Dominates reports whether mark m covers at least everything o does.
func (m RemovedMark) Dominates(o RemovedMark) bool {
	return m.Seq >= o.Seq && m.Epoch >= o.Epoch
}

// Covers reports whether the mark supersedes an install of the given
// (seq, epoch).
func (m RemovedMark) Covers(seq uint64, epoch uint32) bool {
	return m.Seq >= seq && epoch <= m.Epoch
}

// ReconSummary opens pair-wise reconciliation: the full (small) summary of
// the sender's installed queries and cached removals (§6.1), keyed on
// (name, epoch) so migrating queries reconcile both live epochs.
type ReconSummary struct {
	Installed map[QueryKey]uint64 // (name, epoch) -> seq
	Removed   map[string][]RemovedMark
	Metas     []QueryMeta // metadata for everything installed, so the peer can adopt
}

// ReconDefs is the reply: metadata the receiver was missing and removals
// it had not seen.
type ReconDefs struct {
	Metas   []QueryMeta
	Removed map[string][]RemovedMark
}

// TopoRequest asks a query root (the topology server) for the requester's
// parent/child sets in one epoch's tree set (§6.1).
type TopoRequest struct {
	Query string
	Epoch uint32
	Peer  int
}

// TopoReply returns the requester's position in the tree set.
type TopoReply struct {
	Query string
	Epoch uint32
	Seq   uint64
	NB    Neighbors
	// Unknown is set when the root no longer knows the query (removed).
	Unknown bool
}

// InstallAck reports to the query root that Peer has installed and wired
// the given epoch. The root retires the previous epoch once every member
// has acked the new one (make-before-break); peers that still host an
// older epoch re-ack on reconciliation beats, so a lost ack cannot stall a
// migration forever. Epoch-0 installs are never acked — the initial
// install has nothing to retire.
type InstallAck struct {
	Query string
	Epoch uint32
	Seq   uint64
	Peer  int
}

func (w *Buffer) appendKind(k byte) { w.b = append(w.b, Version, k) }

// EncodeMessage appends a complete message frame: version byte, kind tag,
// payload. It accepts exactly the message types above (the envelope by
// pointer, matching how the data path passes it).
func EncodeMessage(w *Buffer, msg any) error {
	switch m := msg.(type) {
	case *Envelope:
		w.appendKind(MsgEnvelope)
		return EncodeEnvelope(w, m)
	case *EnvelopeBatch:
		w.appendKind(MsgEnvelopeBatch)
		return EncodeEnvelopeBatch(w, m)
	case Heartbeat:
		w.appendKind(MsgHeartbeat)
		EncodeHeartbeat(w, m)
	case Install:
		w.appendKind(MsgInstall)
		return EncodeInstall(w, m)
	case Remove:
		w.appendKind(MsgRemove)
		EncodeRemove(w, m)
	case ReconSummary:
		w.appendKind(MsgReconSummary)
		EncodeReconSummary(w, m)
	case ReconDefs:
		w.appendKind(MsgReconDefs)
		EncodeReconDefs(w, m)
	case TopoRequest:
		w.appendKind(MsgTopoRequest)
		EncodeTopoRequest(w, m)
	case TopoReply:
		w.appendKind(MsgTopoReply)
		EncodeTopoReply(w, m)
	case InstallAck:
		w.appendKind(MsgInstallAck)
		EncodeInstallAck(w, m)
	default:
		return fmt.Errorf("wire: unsupported message type %T", msg)
	}
	return nil
}

// EncodeMessageVersion appends a message frame carrying an explicit
// version byte, for senders talking to peers that have not upgraded yet
// (Config.WireCompat). Only VersionNoBatch is supported below the current
// version — every other kind's payload is byte-identical between v3 and
// v4, so the frame is re-stamped after a normal encode. Envelope batches
// have no v3 form and are refused.
func EncodeMessageVersion(w *Buffer, msg any, version byte) error {
	if version == Version {
		return EncodeMessage(w, msg)
	}
	if version != VersionNoBatch {
		return fmt.Errorf("wire: cannot encode version %d frames", version)
	}
	if _, ok := msg.(*EnvelopeBatch); ok {
		return fmt.Errorf("wire: envelope batch has no v%d encoding", version)
	}
	start := len(w.b)
	if err := EncodeMessage(w, msg); err != nil {
		return err
	}
	w.b[start] = version
	return nil
}

// DecodeMessage decodes a complete message frame produced by
// EncodeMessage. Envelopes come back as *Envelope, everything else by
// value, so the result feeds a type switch directly. Trailing bytes after
// the payload are corruption.
func DecodeMessage(b []byte) (any, error) {
	r := NewReader(b)
	v, err := r.Byte()
	if err != nil || v < VersionNoCoords || v > Version {
		return nil, fmt.Errorf("wire: bad version: %w", ErrCorrupt)
	}
	kind, err := r.Byte()
	if err != nil {
		return nil, err
	}
	var msg any
	switch kind {
	case MsgEnvelope:
		var e Envelope
		if e, err = decodeEnvelopeVersion(r, v); err == nil {
			msg = &e
		}
	case MsgHeartbeat:
		msg, err = decodeHeartbeatVersion(r, v)
	case MsgInstall:
		msg, err = decodeInstallVersion(r, v)
	case MsgRemove:
		msg, err = decodeRemoveVersion(r, v)
	case MsgReconSummary:
		msg, err = decodeReconSummaryVersion(r, v)
	case MsgReconDefs:
		msg, err = decodeReconDefsVersion(r, v)
	case MsgTopoRequest:
		msg, err = decodeTopoRequestVersion(r, v)
	case MsgTopoReply:
		msg, err = decodeTopoReplyVersion(r, v)
	case MsgInstallAck:
		msg, err = DecodeInstallAck(r)
	case MsgEnvelopeBatch:
		if v <= VersionNoBatch {
			return nil, fmt.Errorf("wire: envelope batch in a v%d frame: %w", v, ErrCorrupt)
		}
		var b *EnvelopeBatch
		if b, err = DecodeEnvelopeBatch(r); err == nil {
			msg = b
		}
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d: %w", kind, ErrCorrupt)
	}
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes: %w", r.Remaining(), ErrCorrupt)
	}
	return msg, nil
}

// --- Envelope ---

// EncodeEnvelope appends an envelope payload: the summary with its routing
// state, the hop's tree, the transmit timestamp, and the query epoch.
func EncodeEnvelope(w *Buffer, e *Envelope) error {
	if err := EncodeSummary(w, e.S, e.TTLDown); err != nil {
		return err
	}
	w.PutVarint(int64(e.Tree))
	w.PutDuration(e.SentAt)
	w.PutUvarint(uint64(e.Epoch))
	return nil
}

// DecodeEnvelope reads a current-version envelope payload.
func DecodeEnvelope(r *Reader) (Envelope, error) {
	return decodeEnvelopeVersion(r, Version)
}

// decodeEnvelopeVersion reads an envelope payload in the given frame
// version: pre-epoch payloads end after the transmit timestamp.
func decodeEnvelopeVersion(r *Reader, v byte) (e Envelope, err error) {
	if e.S, e.TTLDown, err = DecodeSummary(r); err != nil {
		return
	}
	var tree int64
	if tree, err = r.Varint(); err != nil {
		return
	}
	e.Tree = int(tree)
	if e.SentAt, err = r.Duration(); err != nil {
		return
	}
	if v <= VersionNoEpoch {
		return
	}
	e.Epoch, err = r.epoch()
	return
}

// epoch reads one epoch field, bounds-checked against uint32.
func (r *Reader) epoch() (uint32, error) {
	v, err := r.Uvarint()
	if err != nil || v > uint64(AllEpochs) {
		return 0, ErrCorrupt
	}
	return uint32(v), nil
}

// --- Heartbeat ---

// PutCoordExt appends the Vivaldi coordinate extension shared by
// heartbeats and netrt's probe frames: a dimension count (0 when no
// coordinate is attached), the components, then the error estimate (only
// when a coordinate is present).
func (w *Buffer) PutCoordExt(c []float64, errEst float64) {
	w.PutUvarint(uint64(len(c)))
	for _, v := range c {
		w.PutF64(v)
	}
	if len(c) > 0 {
		w.PutF64(errEst)
	}
}

// CoordExt reads the coordinate extension written by PutCoordExt. A zero
// dimension count yields a nil coordinate; the count is bounded against
// the remaining bytes before allocating.
func (r *Reader) CoordExt() ([]float64, float64, error) {
	d, err := r.Uvarint()
	if err != nil || d > uint64(r.Remaining())/8 {
		return nil, 0, ErrCorrupt
	}
	if d == 0 {
		return nil, 0, nil
	}
	c := make([]float64, d)
	for i := range c {
		if c[i], err = r.F64(); err != nil {
			return nil, 0, err
		}
	}
	e, err := r.F64()
	if err != nil {
		return nil, 0, err
	}
	return c, e, nil
}

// EncodeHeartbeat appends a heartbeat payload: seq, hash, then the
// coordinate extension.
func EncodeHeartbeat(w *Buffer, m Heartbeat) {
	w.PutUvarint(m.Seq)
	w.PutUvarint(m.Hash)
	w.PutCoordExt(m.Coord, m.CoordErr)
}

// DecodeHeartbeat reads a current-version heartbeat payload.
func DecodeHeartbeat(r *Reader) (Heartbeat, error) {
	return decodeHeartbeatVersion(r, Version)
}

// decodeHeartbeatVersion reads a heartbeat payload in the given frame
// version: VersionNoCoords payloads end after the hash.
func decodeHeartbeatVersion(r *Reader, v byte) (m Heartbeat, err error) {
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	if m.Hash, err = r.Uvarint(); err != nil {
		return
	}
	if v == VersionNoCoords {
		return
	}
	m.Coord, m.CoordErr, err = r.CoordExt()
	return
}

// CoordExtInto reads a coordinate extension into c's backing array,
// reusing its capacity; it is the allocation-free counterpart of CoordExt
// for callers that decode the same message struct repeatedly. A zero
// dimension count yields c[:0].
func (r *Reader) CoordExtInto(c []float64) ([]float64, float64, error) {
	d, err := r.Uvarint()
	if err != nil || d > uint64(r.Remaining())/8 {
		return nil, 0, ErrCorrupt
	}
	c = c[:0]
	if d == 0 {
		return c, 0, nil
	}
	for i := uint64(0); i < d; i++ {
		v, err := r.F64()
		if err != nil {
			return nil, 0, err
		}
		c = append(c, v)
	}
	e, err := r.F64()
	if err != nil {
		return nil, 0, err
	}
	return c, e, nil
}

// DecodeHeartbeatInto decodes a complete heartbeat frame (version byte,
// kind tag, payload) into m, reusing m.Coord's capacity so steady-state
// heartbeat receive costs 0 allocs/op. It enforces the same version, kind,
// and trailing-byte checks as DecodeMessage.
func DecodeHeartbeatInto(b []byte, m *Heartbeat) error {
	var r Reader
	r.b = b
	v, err := r.Byte()
	if err != nil || v < VersionNoCoords || v > Version {
		return fmt.Errorf("wire: bad version: %w", ErrCorrupt)
	}
	kind, err := r.Byte()
	if err != nil {
		return err
	}
	if kind != MsgHeartbeat {
		return fmt.Errorf("wire: kind %d is not a heartbeat: %w", kind, ErrCorrupt)
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return err
	}
	if m.Hash, err = r.Uvarint(); err != nil {
		return err
	}
	if v == VersionNoCoords {
		m.Coord, m.CoordErr = m.Coord[:0], 0
	} else if m.Coord, m.CoordErr, err = r.CoordExtInto(m.Coord); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes: %w", r.Remaining(), ErrCorrupt)
	}
	return nil
}

// --- QueryMeta / Neighbors ---

// EncodeQueryMeta appends query metadata.
func EncodeQueryMeta(w *Buffer, m QueryMeta) {
	w.PutString(m.Name)
	w.PutUvarint(m.Seq)
	w.PutUvarint(uint64(m.Epoch))
	w.PutString(m.OpName)
	w.PutUvarint(uint64(len(m.OpArgs)))
	for _, a := range m.OpArgs {
		w.PutString(a)
	}
	w.PutByte(byte(m.Window.Kind))
	w.PutDuration(m.Window.Range)
	w.PutDuration(m.Window.Slide)
	w.PutVarint(int64(m.Window.RangeN))
	w.PutVarint(int64(m.Window.SlideN))
	w.PutString(m.FilterKey)
	w.PutVarint(int64(m.Root))
	w.PutDuration(m.IssuedSim)
}

// DecodeQueryMeta reads current-version query metadata.
func DecodeQueryMeta(r *Reader) (QueryMeta, error) {
	return decodeQueryMetaVersion(r, Version)
}

// decodeQueryMetaVersion reads query metadata in the given frame version:
// pre-epoch metadata has no Epoch field (it decodes as epoch 0, the only
// epoch that existed).
func decodeQueryMetaVersion(r *Reader, v byte) (m QueryMeta, err error) {
	if m.Name, err = r.String(); err != nil {
		return
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	if v > VersionNoEpoch {
		if m.Epoch, err = r.epoch(); err != nil {
			return
		}
	}
	if m.OpName, err = r.String(); err != nil {
		return
	}
	var n uint64
	if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if n > 0 {
		m.OpArgs = make([]string, n)
		for i := range m.OpArgs {
			if m.OpArgs[i], err = r.String(); err != nil {
				return
			}
		}
	}
	var kind byte
	if kind, err = r.Byte(); err != nil {
		return
	}
	m.Window.Kind = tuple.WindowKind(kind)
	if m.Window.Range, err = r.Duration(); err != nil {
		return
	}
	if m.Window.Slide, err = r.Duration(); err != nil {
		return
	}
	var iv int64
	if iv, err = r.Varint(); err != nil {
		return
	}
	m.Window.RangeN = int(iv)
	if iv, err = r.Varint(); err != nil {
		return
	}
	m.Window.SlideN = int(iv)
	if m.FilterKey, err = r.String(); err != nil {
		return
	}
	if iv, err = r.Varint(); err != nil {
		return
	}
	m.Root = int(iv)
	m.IssuedSim, err = r.Duration()
	return
}

// EncodeNeighbors appends a neighbors record. Parents, Children, and
// Levels must be parallel (one entry per tree), as neighborsFor builds
// them.
func EncodeNeighbors(w *Buffer, nb Neighbors) {
	w.PutUvarint(uint64(len(nb.Parents)))
	for t := range nb.Parents {
		w.PutVarint(int64(nb.Parents[t]))
		w.PutVarint(int64(nb.Levels[t]))
		w.PutUvarint(uint64(len(nb.Children[t])))
		for _, c := range nb.Children[t] {
			w.PutVarint(int64(c))
		}
	}
}

// DecodeNeighbors reads a neighbors record.
func DecodeNeighbors(r *Reader) (nb Neighbors, err error) {
	var d uint64
	if d, err = r.Uvarint(); err != nil || d > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if d == 0 {
		return
	}
	nb.Parents = make([]int, d)
	nb.Children = make([][]int, d)
	nb.Levels = make([]int, d)
	for t := uint64(0); t < d; t++ {
		var v int64
		if v, err = r.Varint(); err != nil {
			return
		}
		nb.Parents[t] = int(v)
		if v, err = r.Varint(); err != nil {
			return
		}
		nb.Levels[t] = int(v)
		var n uint64
		if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining()) {
			err = ErrCorrupt
			return
		}
		if n > 0 {
			nb.Children[t] = make([]int, n)
			for i := range nb.Children[t] {
				if v, err = r.Varint(); err != nil {
					return
				}
				nb.Children[t][i] = int(v)
			}
		}
	}
	return
}

// --- Install / Remove ---

// sortedPeers returns a map's peer keys in ascending order, for
// deterministic encoding.
func sortedPeers[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func encodeForward(w *Buffer, fwd map[int][]int) {
	w.PutUvarint(uint64(len(fwd)))
	for _, p := range sortedPeers(fwd) {
		w.PutVarint(int64(p))
		w.PutUvarint(uint64(len(fwd[p])))
		for _, q := range fwd[p] {
			w.PutVarint(int64(q))
		}
	}
}

func decodeForward(r *Reader) (map[int][]int, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	fwd := make(map[int][]int, n)
	for i := uint64(0); i < n; i++ {
		p, err := r.Varint()
		if err != nil {
			return nil, err
		}
		m, err := r.Uvarint()
		if err != nil || m > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		list := make([]int, m)
		for j := range list {
			q, err := r.Varint()
			if err != nil {
				return nil, err
			}
			list[j] = int(q)
		}
		fwd[int(p)] = list
	}
	return fwd, nil
}

// EncodeInstall appends an install-chunk payload.
func EncodeInstall(w *Buffer, m Install) error {
	EncodeQueryMeta(w, m.Meta)
	w.PutUvarint(uint64(len(m.Members)))
	for _, p := range sortedPeers(m.Members) {
		w.PutVarint(int64(p))
		EncodeNeighbors(w, m.Members[p])
	}
	encodeForward(w, m.Forward)
	return nil
}

// DecodeInstall reads a current-version install-chunk payload.
func DecodeInstall(r *Reader) (Install, error) {
	return decodeInstallVersion(r, Version)
}

func decodeInstallVersion(r *Reader, v byte) (m Install, err error) {
	if m.Meta, err = decodeQueryMetaVersion(r, v); err != nil {
		return
	}
	var n uint64
	if n, err = r.Uvarint(); err != nil || n > uint64(r.Remaining()) {
		err = ErrCorrupt
		return
	}
	if n > 0 {
		m.Members = make(map[int]Neighbors, n)
	}
	for i := uint64(0); i < n; i++ {
		var p int64
		if p, err = r.Varint(); err != nil {
			return
		}
		var nb Neighbors
		if nb, err = DecodeNeighbors(r); err != nil {
			return
		}
		m.Members[int(p)] = nb
	}
	m.Forward, err = decodeForward(r)
	return
}

// EncodeRemove appends a remove-multicast payload.
func EncodeRemove(w *Buffer, m Remove) {
	w.PutString(m.Name)
	w.PutUvarint(m.Seq)
	w.PutUvarint(uint64(m.Epoch))
	encodeForward(w, m.Forward)
}

// DecodeRemove reads a current-version remove-multicast payload.
func DecodeRemove(r *Reader) (Remove, error) {
	return decodeRemoveVersion(r, Version)
}

// decodeRemoveVersion reads a remove payload in the given frame version: a
// pre-epoch remove has no Epoch field and was a whole-query removal, so it
// decodes as AllEpochs.
func decodeRemoveVersion(r *Reader, v byte) (m Remove, err error) {
	if m.Name, err = r.String(); err != nil {
		return
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	m.Epoch = AllEpochs
	if v > VersionNoEpoch {
		if m.Epoch, err = r.epoch(); err != nil {
			return
		}
	}
	m.Forward, err = decodeForward(r)
	return
}

// --- Reconciliation ---

// sortedKeys returns an installed map's keys ordered by (name, epoch), for
// deterministic encoding.
func sortedKeys(m map[QueryKey]uint64) []QueryKey {
	keys := make([]QueryKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Epoch < keys[j].Epoch
	})
	return keys
}

func encodeInstalled(w *Buffer, m map[QueryKey]uint64) {
	w.PutUvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		w.PutString(k.Name)
		w.PutUvarint(uint64(k.Epoch))
		w.PutUvarint(m[k])
	}
}

// decodeInstalled reads the installed set: (name, epoch, seq) triples in
// the current version, (name, seq) pairs — epoch 0 — before it.
func decodeInstalled(r *Reader, v byte) (map[QueryKey]uint64, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[QueryKey]uint64, n)
	for i := uint64(0); i < n; i++ {
		var k QueryKey
		if k.Name, err = r.String(); err != nil {
			return nil, err
		}
		if v > VersionNoEpoch {
			if k.Epoch, err = r.epoch(); err != nil {
				return nil, err
			}
		}
		seq, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		m[k] = seq
	}
	return m, nil
}

// SortMarks orders a mark set by (seq, epoch) — the canonical order the
// codec encodes and peers iterate.
func SortMarks(marks []RemovedMark) {
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].Seq != marks[j].Seq {
			return marks[i].Seq < marks[j].Seq
		}
		return marks[i].Epoch < marks[j].Epoch
	})
}

func encodeRemovedMarks(w *Buffer, m map[string][]RemovedMark) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	w.PutUvarint(uint64(len(names)))
	for _, name := range names {
		w.PutString(name)
		marks := append([]RemovedMark(nil), m[name]...)
		SortMarks(marks)
		w.PutUvarint(uint64(len(marks)))
		for _, mark := range marks {
			w.PutUvarint(mark.Seq)
			w.PutUvarint(uint64(mark.Epoch))
		}
	}
}

// decodeRemovedMarks reads the removal set. Pre-epoch (v2) removals carry
// one seq per name and were whole-query, so they decode as a single
// {seq, AllEpochs} mark.
func decodeRemovedMarks(r *Reader, v byte) (map[string][]RemovedMark, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string][]RemovedMark, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		if v <= VersionNoEpoch {
			seq, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			m[name] = []RemovedMark{{Seq: seq, Epoch: AllEpochs}}
			continue
		}
		cnt, err := r.Uvarint()
		if err != nil || cnt > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		marks := make([]RemovedMark, cnt)
		for j := range marks {
			if marks[j].Seq, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if marks[j].Epoch, err = r.epoch(); err != nil {
				return nil, err
			}
		}
		m[name] = marks
	}
	return m, nil
}

func encodeMetas(w *Buffer, metas []QueryMeta) {
	w.PutUvarint(uint64(len(metas)))
	for _, m := range metas {
		EncodeQueryMeta(w, m)
	}
}

func decodeMetas(r *Reader, v byte) ([]QueryMeta, error) {
	n, err := r.Uvarint()
	if err != nil || n > uint64(r.Remaining()) {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	metas := make([]QueryMeta, n)
	for i := range metas {
		if metas[i], err = decodeQueryMetaVersion(r, v); err != nil {
			return nil, err
		}
	}
	return metas, nil
}

// EncodeReconSummary appends a reconciliation-summary payload.
func EncodeReconSummary(w *Buffer, m ReconSummary) {
	encodeInstalled(w, m.Installed)
	encodeRemovedMarks(w, m.Removed)
	encodeMetas(w, m.Metas)
}

// DecodeReconSummary reads a current-version reconciliation-summary
// payload.
func DecodeReconSummary(r *Reader) (ReconSummary, error) {
	return decodeReconSummaryVersion(r, Version)
}

func decodeReconSummaryVersion(r *Reader, v byte) (m ReconSummary, err error) {
	if m.Installed, err = decodeInstalled(r, v); err != nil {
		return
	}
	if m.Removed, err = decodeRemovedMarks(r, v); err != nil {
		return
	}
	m.Metas, err = decodeMetas(r, v)
	return
}

// EncodeReconDefs appends a reconciliation-reply payload.
func EncodeReconDefs(w *Buffer, m ReconDefs) {
	encodeMetas(w, m.Metas)
	encodeRemovedMarks(w, m.Removed)
}

// DecodeReconDefs reads a current-version reconciliation-reply payload.
func DecodeReconDefs(r *Reader) (ReconDefs, error) {
	return decodeReconDefsVersion(r, Version)
}

func decodeReconDefsVersion(r *Reader, v byte) (m ReconDefs, err error) {
	if m.Metas, err = decodeMetas(r, v); err != nil {
		return
	}
	m.Removed, err = decodeRemovedMarks(r, v)
	return
}

// --- Topology service ---

// EncodeTopoRequest appends a topology-request payload.
func EncodeTopoRequest(w *Buffer, m TopoRequest) {
	w.PutString(m.Query)
	w.PutUvarint(uint64(m.Epoch))
	w.PutVarint(int64(m.Peer))
}

// DecodeTopoRequest reads a current-version topology-request payload.
func DecodeTopoRequest(r *Reader) (TopoRequest, error) {
	return decodeTopoRequestVersion(r, Version)
}

func decodeTopoRequestVersion(r *Reader, v byte) (m TopoRequest, err error) {
	if m.Query, err = r.String(); err != nil {
		return
	}
	if v > VersionNoEpoch {
		if m.Epoch, err = r.epoch(); err != nil {
			return
		}
	}
	var p int64
	if p, err = r.Varint(); err != nil {
		return
	}
	m.Peer = int(p)
	return
}

// EncodeTopoReply appends a topology-reply payload.
func EncodeTopoReply(w *Buffer, m TopoReply) {
	w.PutString(m.Query)
	w.PutUvarint(uint64(m.Epoch))
	w.PutUvarint(m.Seq)
	EncodeNeighbors(w, m.NB)
	w.PutBool(m.Unknown)
}

// DecodeTopoReply reads a current-version topology-reply payload.
func DecodeTopoReply(r *Reader) (TopoReply, error) {
	return decodeTopoReplyVersion(r, Version)
}

func decodeTopoReplyVersion(r *Reader, v byte) (m TopoReply, err error) {
	if m.Query, err = r.String(); err != nil {
		return
	}
	if v > VersionNoEpoch {
		if m.Epoch, err = r.epoch(); err != nil {
			return
		}
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	if m.NB, err = DecodeNeighbors(r); err != nil {
		return
	}
	m.Unknown, err = r.Bool()
	return
}

// --- Install acknowledgement ---

// EncodeInstallAck appends an install-ack payload.
func EncodeInstallAck(w *Buffer, m InstallAck) {
	w.PutString(m.Query)
	w.PutUvarint(uint64(m.Epoch))
	w.PutUvarint(m.Seq)
	w.PutVarint(int64(m.Peer))
}

// DecodeInstallAck reads an install-ack payload. The kind itself is new in
// Version 3, so there is no prior version to tolerate.
func DecodeInstallAck(r *Reader) (m InstallAck, err error) {
	if m.Query, err = r.String(); err != nil {
		return
	}
	if m.Epoch, err = r.epoch(); err != nil {
		return
	}
	if m.Seq, err = r.Uvarint(); err != nil {
		return
	}
	var p int64
	if p, err = r.Varint(); err != nil {
		return
	}
	m.Peer = int(p)
	return
}
