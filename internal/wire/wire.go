// Package wire is a compact binary codec for the messages Mortar peers
// exchange. The emulator charges bandwidth by real encoded size, so the
// codec determines the "total network load" numbers the experiments report,
// the way UdpCC datagram sizes did for the paper's prototype.
//
// The format is self-describing for values: a one-byte kind tag followed by
// the payload. Integers use unsigned LEB128 varints; durations and floats
// are fixed 8 bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// ErrCorrupt is returned when a buffer cannot be decoded.
var ErrCorrupt = errors.New("wire: corrupt buffer")

// Buffer accumulates an encoding.
type Buffer struct {
	b []byte
}

// Bytes returns the encoded bytes.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the encoded size so far.
func (w *Buffer) Len() int { return len(w.b) }

// Reset empties the buffer, keeping its capacity for reuse.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// Reserve resets the buffer and returns a length-n scratch slice backed by
// it, growing the backing array if needed. Socket read loops use this to
// borrow a receive buffer from the pool instead of allocating their own.
func (w *Buffer) Reserve(n int) []byte {
	if cap(w.b) < n {
		w.b = make([]byte, n)
	}
	w.b = w.b[:n]
	return w.b
}

// bufferPool recycles encode and receive buffers across the hot send and
// receive paths; see GetBuffer/PutBuffer for the ownership rules.
var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// maxPooledCap bounds the capacity a returned buffer may retain: a buffer
// that grew past this (a fragmented multi-megabyte send) is dropped rather
// than pinned in the pool forever.
const maxPooledCap = 128 << 10

// GetBuffer returns an empty buffer from the pool. The caller owns it until
// it is handed off (netrt's pacer takes ownership of submitted buffers) or
// returned with PutBuffer.
func GetBuffer() *Buffer {
	w := bufferPool.Get().(*Buffer)
	w.Reset()
	return w
}

// PutBuffer returns a buffer to the pool. Callers must not retain any slice
// aliasing the buffer (Bytes, Reserve results) past this call. Oversized
// buffers are dropped so the pool holds only datagram-scale allocations.
func PutBuffer(w *Buffer) {
	if w == nil || cap(w.b) > maxPooledCap {
		return
	}
	bufferPool.Put(w)
}

// PutUvarint appends an unsigned varint.
func (w *Buffer) PutUvarint(v uint64) {
	w.b = binary.AppendUvarint(w.b, v)
}

// PutVarint appends a signed varint.
func (w *Buffer) PutVarint(v int64) {
	w.b = binary.AppendVarint(w.b, v)
}

// PutF64 appends a float64.
func (w *Buffer) PutF64(f float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(f))
}

// PutDuration appends a time.Duration.
func (w *Buffer) PutDuration(d time.Duration) { w.PutVarint(int64(d)) }

// PutString appends a length-prefixed string.
func (w *Buffer) PutString(s string) {
	w.PutUvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// PutBytes appends length-prefixed raw bytes.
func (w *Buffer) PutBytes(p []byte) {
	w.PutUvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// PutByte appends a single raw byte.
func (w *Buffer) PutByte(b byte) { w.b = append(w.b, b) }

// PutRaw appends raw bytes without a length prefix (framing headers).
func (w *Buffer) PutRaw(p []byte) { w.b = append(w.b, p...) }

// PutBool appends a boolean.
func (w *Buffer) PutBool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Reader decodes a buffer produced by Buffer.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps encoded bytes.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.off += n
	return v, nil
}

// Varint reads a signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.off += n
	return v, nil
}

// F64 reads a float64.
func (r *Reader) F64() (float64, error) {
	if r.Remaining() < 8 {
		return 0, ErrCorrupt
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

// Duration reads a time.Duration.
func (r *Reader) Duration() (time.Duration, error) {
	v, err := r.Varint()
	return time.Duration(v), err
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil || uint64(r.Remaining()) < n {
		return "", ErrCorrupt
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Bytes reads length-prefixed raw bytes.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil || uint64(r.Remaining()) < n {
		return nil, ErrCorrupt
	}
	p := make([]byte, n)
	copy(p, r.b[r.off:])
	r.off += int(n)
	return p, nil
}

// Byte reads a single raw byte.
func (r *Reader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, ErrCorrupt
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

// Rest returns the unread remainder of the buffer without copying; the
// reader is advanced past it.
func (r *Reader) Rest() []byte {
	p := r.b[r.off:]
	r.off = len(r.b)
	return p
}

// Bool reads a boolean.
func (r *Reader) Bool() (bool, error) {
	if r.Remaining() < 1 {
		return false, ErrCorrupt
	}
	v := r.b[r.off] != 0
	r.off++
	return v, nil
}

// Value kind tags. Operator values are one of these shapes.
const (
	kindNil     = 0
	kindF64     = 1
	kindF64s    = 2
	kindString  = 3
	kindKV      = 4 // map[string]float64 (histograms)
	kindEntries = 5 // []ScoredEntry (top-k)
	kindBits    = 6 // []uint64 (bloom filters)
	kindCoord   = 7 // Coord (trilateration output)
)

// ScoredEntry is a (key, score, payload) element used by top-k values.
type ScoredEntry struct {
	Key     string
	Score   float64
	Payload []float64
}

// Coord is a located position (Wi-Fi trilateration output).
type Coord struct {
	X, Y float64
}

// PutValue appends a tagged operator value. Supported shapes: nil, float64,
// []float64, string, map[string]float64, []ScoredEntry, []uint64, Coord.
func (w *Buffer) PutValue(v any) error {
	switch x := v.(type) {
	case nil:
		w.b = append(w.b, kindNil)
	case float64:
		w.b = append(w.b, kindF64)
		w.PutF64(x)
	case []float64:
		w.b = append(w.b, kindF64s)
		w.PutUvarint(uint64(len(x)))
		for _, f := range x {
			w.PutF64(f)
		}
	case string:
		w.b = append(w.b, kindString)
		w.PutString(x)
	case map[string]float64:
		w.b = append(w.b, kindKV)
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic encoding
		w.PutUvarint(uint64(len(keys)))
		for _, k := range keys {
			w.PutString(k)
			w.PutF64(x[k])
		}
	case []ScoredEntry:
		w.b = append(w.b, kindEntries)
		w.PutUvarint(uint64(len(x)))
		for _, e := range x {
			w.PutString(e.Key)
			w.PutF64(e.Score)
			w.PutUvarint(uint64(len(e.Payload)))
			for _, f := range e.Payload {
				w.PutF64(f)
			}
		}
	case []uint64:
		w.b = append(w.b, kindBits)
		w.PutUvarint(uint64(len(x)))
		for _, u := range x {
			w.PutUvarint(u)
		}
	case Coord:
		w.b = append(w.b, kindCoord)
		w.PutF64(x.X)
		w.PutF64(x.Y)
	default:
		return fmt.Errorf("wire: unsupported value type %T", v)
	}
	return nil
}

// Value reads a tagged operator value.
func (r *Reader) Value() (any, error) {
	if r.Remaining() < 1 {
		return nil, ErrCorrupt
	}
	kind := r.b[r.off]
	r.off++
	switch kind {
	case kindNil:
		return nil, nil
	case kindF64:
		return r.F64()
	case kindF64s:
		n, err := r.Uvarint()
		if err != nil || n > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		out := make([]float64, n)
		for i := range out {
			if out[i], err = r.F64(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case kindString:
		return r.String()
	case kindKV:
		n, err := r.Uvarint()
		if err != nil || n > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		out := make(map[string]float64, n)
		for i := uint64(0); i < n; i++ {
			k, err := r.String()
			if err != nil {
				return nil, err
			}
			v, err := r.F64()
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case kindEntries:
		n, err := r.Uvarint()
		if err != nil || n > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		out := make([]ScoredEntry, n)
		for i := range out {
			if out[i].Key, err = r.String(); err != nil {
				return nil, err
			}
			if out[i].Score, err = r.F64(); err != nil {
				return nil, err
			}
			m, err := r.Uvarint()
			if err != nil || m > uint64(r.Remaining()) {
				return nil, ErrCorrupt
			}
			if m > 0 {
				out[i].Payload = make([]float64, m)
				for j := range out[i].Payload {
					if out[i].Payload[j], err = r.F64(); err != nil {
						return nil, err
					}
				}
			}
		}
		return out, nil
	case kindBits:
		n, err := r.Uvarint()
		if err != nil || n > uint64(r.Remaining()) {
			return nil, ErrCorrupt
		}
		out := make([]uint64, n)
		for i := range out {
			if out[i], err = r.Uvarint(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case kindCoord:
		var c Coord
		var err error
		if c.X, err = r.F64(); err != nil {
			return nil, err
		}
		if c.Y, err = r.F64(); err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("wire: unknown value kind %d: %w", kind, ErrCorrupt)
	}
}

// SizeOfValue returns the encoded size of a value without retaining the
// encoding.
func SizeOfValue(v any) int {
	var w Buffer
	if err := w.PutValue(v); err != nil {
		return 16 // conservative default for exotic values
	}
	return w.Len()
}
