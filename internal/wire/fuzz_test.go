package wire

import (
	"errors"
	"testing"
)

// Fuzz targets for every decoder: corrupt input must return an error
// wrapping ErrCorrupt — never panic, never over-allocate (every count is
// bounded against the remaining buffer before allocation). CI runs these
// in short smoke mode (-fuzztime 10s); locally, go test -fuzz digs deeper.

// seedFrames returns valid encodings of every message kind as fuzz seeds,
// so mutation starts from structurally interesting input.
func seedFrames(t interface{ Fatal(...any) }) [][]byte {
	var out [][]byte
	for _, msg := range sampleMessages() {
		var w Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatal(err)
		}
		out = append(out, w.Bytes())
	}
	return out
}

// requireCorrupt fails the fuzz run when a decode error does not wrap
// ErrCorrupt.
func requireCorrupt(t *testing.T, err error) {
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
	}
}

func FuzzDecodeMessage(f *testing.F) {
	for _, b := range seedFrames(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := DecodeMessage(b)
		requireCorrupt(t, err)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode: the codec's domain is closed.
		var w Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
	})
}

// fuzzDecoder drives one payload decoder with raw bytes.
func fuzzDecoder[T any](f *testing.F, dec func(*Reader) (T, error)) {
	f.Helper()
	for _, b := range seedFrames(f) {
		if len(b) > 2 {
			f.Add(b[2:]) // strip version+kind: these fuzz bare payloads
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		_, err := dec(NewReader(b))
		requireCorrupt(t, err)
	})
}

func FuzzDecodeEnvelope(f *testing.F)     { fuzzDecoder(f, DecodeEnvelope) }
func FuzzDecodeHeartbeat(f *testing.F)    { fuzzDecoder(f, DecodeHeartbeat) }
func FuzzDecodeInstall(f *testing.F)      { fuzzDecoder(f, DecodeInstall) }
func FuzzDecodeRemove(f *testing.F)       { fuzzDecoder(f, DecodeRemove) }
func FuzzDecodeReconSummary(f *testing.F) { fuzzDecoder(f, DecodeReconSummary) }
func FuzzDecodeReconDefs(f *testing.F)    { fuzzDecoder(f, DecodeReconDefs) }
func FuzzDecodeTopoRequest(f *testing.F)  { fuzzDecoder(f, DecodeTopoRequest) }
func FuzzDecodeTopoReply(f *testing.F)    { fuzzDecoder(f, DecodeTopoReply) }
func FuzzDecodeQueryMeta(f *testing.F)    { fuzzDecoder(f, DecodeQueryMeta) }
func FuzzDecodeNeighbors(f *testing.F)    { fuzzDecoder(f, DecodeNeighbors) }
func FuzzDecodeInstallAck(f *testing.F)   { fuzzDecoder(f, DecodeInstallAck) }

func FuzzDecodeEnvelopeBatch(f *testing.F) {
	fuzzDecoder(f, DecodeEnvelopeBatch)
}

func FuzzDecodeSummary(f *testing.F) {
	fuzzDecoder(f, func(r *Reader) (any, error) {
		s, _, err := DecodeSummary(r)
		return s, err
	})
}

func FuzzDecodeValue(f *testing.F) {
	fuzzDecoder(f, func(r *Reader) (any, error) { return r.Value() })
}

// The fragment-layer decoders are not message kinds (they sit below the
// message framing, on netrt's datagram path), so they seed from their own
// valid encodings instead of sampleMessages.

func FuzzDecodeFragment(f *testing.F) {
	var w Buffer
	EncodeFragment(&w, Fragment{Stream: 7, Index: 2, Count: 5, Payload: []byte("payload")})
	f.Add(w.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		_, err := DecodeFragment(NewReader(b))
		requireCorrupt(t, err)
	})
}

func FuzzDecodeNack(f *testing.F) {
	var w Buffer
	EncodeNack(&w, Nack{Stream: 7, Missing: []uint32{0, 3, 4}})
	f.Add(w.Bytes())
	f.Fuzz(func(t *testing.T, b []byte) {
		_, err := DecodeNack(NewReader(b))
		requireCorrupt(t, err)
	})
}

func FuzzDecodeTrain(f *testing.F) {
	var w Buffer
	for _, frame := range [][]byte{[]byte("ping"), []byte("a much longer small frame"), {1}} {
		w.PutBytes(frame)
	}
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		var total int
		err := ForEachTrainFrame(b, func(frame []byte) {
			if len(frame) == 0 {
				t.Fatal("train yielded an empty frame")
			}
			total += len(frame)
		})
		requireCorrupt(t, err)
		if err == nil && total > len(b) {
			t.Fatalf("train yielded %d bytes from a %d-byte buffer", total, len(b))
		}
	})
}
