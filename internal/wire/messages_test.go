package wire

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tuple"
)

// sampleMeta returns a representative query metadata record.
func sampleMeta() QueryMeta {
	return QueryMeta{
		Name:      "wifi-top5",
		Seq:       7,
		Epoch:     2,
		OpName:    "topk",
		OpArgs:    []string{"5", "rssi"},
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 2 * time.Second, Slide: time.Second},
		FilterKey: "aa:bb:cc",
		Root:      3,
		IssuedSim: 1500 * time.Millisecond,
	}
}

func sampleNeighbors() Neighbors {
	return Neighbors{
		Parents:  []int{-1, 4},
		Children: [][]int{{1, 2, 9}, nil},
		Levels:   []int{0, 3},
	}
}

// sampleMessages returns one instance of every message kind, the full set
// the peers exchange.
func sampleMessages() []any {
	return []any{
		&Envelope{
			S: tuple.Summary{
				Query:  "cpu-sum",
				Index:  tuple.Index{TB: -2 * time.Second, TE: 3 * time.Second},
				Value:  float64(17),
				Age:    1500 * time.Millisecond,
				Count:  42,
				Hops:   3,
				Levels: []int16{2, -1, 3, 0},
			},
			Tree:    2,
			TTLDown: 1,
			SentAt:  123456 * time.Microsecond,
			Epoch:   3,
		},
		&EnvelopeBatch{
			SentAt: 2 * time.Second,
			Envelopes: []Envelope{
				{
					S: tuple.Summary{
						Query:  "cpu-sum",
						Index:  tuple.Index{TB: time.Second, TE: 2 * time.Second},
						Value:  float64(4),
						Age:    40 * time.Millisecond,
						Count:  3,
						Hops:   1,
						Levels: []int16{1, -1, 2, 0},
					},
					Tree: 0, TTLDown: 2, SentAt: 2 * time.Second, Epoch: 3,
				},
				{
					S: tuple.Summary{
						Query:  "cpu-sum",
						Index:  tuple.Index{TB: 2 * time.Second, TE: 3 * time.Second},
						Value:  float64(9),
						Count:  1,
						Levels: []int16{1, -1, 2, 0}, // identical to base: empty diff
					},
					Tree: 0, SentAt: 2 * time.Second, Epoch: 3,
				},
				{
					S: tuple.Summary{
						Query:    "mem-max",
						Index:    tuple.Index{TB: time.Second, TE: 2 * time.Second},
						Boundary: true, // boundary: nil value
						Count:    1,
						Levels:   []int16{0, 0}, // shorter than base, one diff
					},
					Tree: 1, TTLDown: 1, SentAt: 2 * time.Second, Epoch: 0,
				},
			},
		},
		Heartbeat{Seq: 300, Hash: 0xdeadbeefcafe},
		Heartbeat{Seq: 1}, // no piggybacked hash
		Heartbeat{Seq: 2, Coord: []float64{3.25, -1.5, 40}, CoordErr: 0.4},
		Install{
			Meta: sampleMeta(),
			Members: map[int]Neighbors{
				3: sampleNeighbors(),
				9: {Parents: []int{3, 3}, Children: [][]int{nil, nil}, Levels: []int{1, 1}},
			},
			Forward: map[int][]int{3: {9, 12}, 9: {14}},
		},
		Remove{Name: "cpu-sum", Seq: 9, Epoch: AllEpochs, Forward: map[int][]int{0: {1, 2}}},
		Remove{Name: "cpu-sum", Seq: 12, Epoch: 3}, // epoch-scoped retirement
		ReconSummary{
			Installed: map[QueryKey]uint64{{Name: "a", Epoch: 0}: 1, {Name: "a", Epoch: 1}: 4, {Name: "b", Epoch: 0}: 2},
			Removed:   map[string][]RemovedMark{"c": {{Seq: 3, Epoch: AllEpochs}, {Seq: 7, Epoch: 1}}},
			Metas:     []QueryMeta{sampleMeta()},
		},
		ReconSummary{}, // an idle peer's summary: everything empty
		ReconDefs{
			Metas:   []QueryMeta{sampleMeta(), {Name: "bare", OpName: "count", Window: tuple.WindowSpec{Kind: tuple.TupleWindow, RangeN: 20, SlideN: 10}}},
			Removed: map[string][]RemovedMark{"gone": {{Seq: 4, Epoch: 2}}},
		},
		TopoRequest{Query: "cpu-sum", Epoch: 2, Peer: 17},
		TopoReply{Query: "cpu-sum", Epoch: 2, Seq: 2, NB: sampleNeighbors()},
		TopoReply{Query: "gone", Seq: 5, Unknown: true}, // zero NB
		InstallAck{Query: "cpu-sum", Epoch: 2, Seq: 11, Peer: 6},
	}
}

// Every message kind must round-trip through the framed codec unchanged —
// this is the property the socket runtime relies on: what a netrt receiver
// decodes is exactly what the sender's fabric passed to send.
func TestMessageRoundTripAllKinds(t *testing.T) {
	for _, msg := range sampleMessages() {
		var w Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		got, err := DecodeMessage(w.Bytes())
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", msg, got, msg)
		}
	}
}

// Unknown message types are encode errors; unknown kinds, bad versions,
// and trailing garbage are ErrCorrupt on decode.
func TestMessageFraming(t *testing.T) {
	var w Buffer
	if err := EncodeMessage(&w, struct{}{}); err == nil {
		t.Fatal("no error for unsupported message type")
	}
	if _, err := DecodeMessage([]byte{Version + 1, MsgHeartbeat, 1, 0}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := DecodeMessage([]byte{Version, 200, 1, 0}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind: %v", err)
	}
	w = Buffer{}
	if err := EncodeMessage(&w, Heartbeat{Seq: 1, Hash: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMessage(append(w.Bytes(), 0xff)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v", err)
	}
	if _, err := DecodeMessage(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty frame: %v", err)
	}
}

// Every truncation of every message kind must fail with ErrCorrupt —
// never panic, never decode successfully (varint continuation bits and the
// trailing-bytes check make strict prefixes invalid).
func TestMessageTruncations(t *testing.T) {
	for _, msg := range sampleMessages() {
		var w Buffer
		if err := EncodeMessage(&w, msg); err != nil {
			t.Fatal(err)
		}
		full := w.Bytes()
		for cut := 0; cut < len(full); cut++ {
			if _, err := DecodeMessage(full[:cut]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%T truncated at %d of %d: err = %v", msg, cut, len(full), err)
			}
		}
	}
}

// Version-1 frames predate the heartbeat coordinate extension; decoders
// must still accept them (a federation can mix binaries across one format
// step), while versions beyond the current stay corrupt.
func TestHeartbeatVersionTolerance(t *testing.T) {
	var w Buffer
	w.b = append(w.b, VersionNoCoords, MsgHeartbeat)
	w.PutUvarint(42)
	w.PutUvarint(7)
	got, err := DecodeMessage(w.Bytes())
	if err != nil {
		t.Fatalf("v1 heartbeat rejected: %v", err)
	}
	hb, ok := got.(Heartbeat)
	if !ok || hb.Seq != 42 || hb.Hash != 7 || hb.Coord != nil {
		t.Fatalf("v1 heartbeat decoded as %#v", got)
	}

	// The same payload under the current version is truncated (the
	// mandatory dimension count is missing).
	w = Buffer{}
	w.b = append(w.b, Version, MsgHeartbeat)
	w.PutUvarint(42)
	w.PutUvarint(7)
	if _, err := DecodeMessage(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2 heartbeat without extension: %v", err)
	}

	// A claimed dimensionality beyond the remaining bytes must not drive
	// allocation.
	w = Buffer{}
	w.b = append(w.b, Version, MsgHeartbeat)
	w.PutUvarint(42)
	w.PutUvarint(7)
	w.PutUvarint(1 << 40)
	if _, err := DecodeMessage(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd coord dimension: %v", err)
	}
}

// encodeV2 builds a version-2 frame by hand: the pre-epoch layouts, which
// v3 decoders must still read with epoch 0 (installs) / AllEpochs
// (removals).
func encodeV2(kind byte, payload func(w *Buffer)) []byte {
	var w Buffer
	w.b = append(w.b, VersionNoEpoch, kind)
	payload(&w)
	return w.Bytes()
}

// putV2Meta appends query metadata in the v2 layout (no Epoch field).
func putV2Meta(w *Buffer, name string, seq uint64) {
	w.PutString(name)
	w.PutUvarint(seq)
	w.PutString("count")
	w.PutUvarint(0) // no op args
	w.PutByte(byte(tuple.TimeWindow))
	w.PutDuration(time.Second) // range
	w.PutDuration(time.Second) // slide
	w.PutVarint(0)             // RangeN
	w.PutVarint(0)             // SlideN
	w.PutString("")            // filter key
	w.PutVarint(0)             // root
	w.PutDuration(0)           // issued
}

// Version-2 frames predate query epochs; v3 decoders must read every kind
// that grew an epoch field, filling it with that version's semantics:
// epoch 0 for installs and topology traffic (the only epoch that existed),
// AllEpochs for removals (a v2 remove was a whole-query remove).
func TestEpochVersionTolerance(t *testing.T) {
	// Install: meta without epoch, no members, no forward edges.
	b := encodeV2(MsgInstall, func(w *Buffer) {
		putV2Meta(w, "q", 5)
		w.PutUvarint(0)
		w.PutUvarint(0)
	})
	got, err := DecodeMessage(b)
	if err != nil {
		t.Fatalf("v2 install rejected: %v", err)
	}
	if m := got.(Install); m.Meta.Name != "q" || m.Meta.Seq != 5 || m.Meta.Epoch != 0 {
		t.Fatalf("v2 install decoded as %#v", m.Meta)
	}

	// Remove: no epoch field -> whole-query removal.
	b = encodeV2(MsgRemove, func(w *Buffer) {
		w.PutString("q")
		w.PutUvarint(9)
		w.PutUvarint(0) // empty forward map
	})
	if got, err = DecodeMessage(b); err != nil {
		t.Fatalf("v2 remove rejected: %v", err)
	}
	if m := got.(Remove); m.Epoch != AllEpochs || m.Seq != 9 {
		t.Fatalf("v2 remove decoded as %#v", m)
	}

	// ReconSummary: name->seq pairs, no epochs.
	b = encodeV2(MsgReconSummary, func(w *Buffer) {
		w.PutUvarint(1) // installed
		w.PutString("q")
		w.PutUvarint(5)
		w.PutUvarint(1) // removed
		w.PutString("gone")
		w.PutUvarint(3)
		w.PutUvarint(0) // metas
	})
	if got, err = DecodeMessage(b); err != nil {
		t.Fatalf("v2 recon summary rejected: %v", err)
	}
	rs := got.(ReconSummary)
	if rs.Installed[QueryKey{Name: "q"}] != 5 {
		t.Fatalf("v2 installed decoded as %#v", rs.Installed)
	}
	if len(rs.Removed["gone"]) != 1 || rs.Removed["gone"][0] != (RemovedMark{Seq: 3, Epoch: AllEpochs}) {
		t.Fatalf("v2 removed decoded as %#v", rs.Removed)
	}

	// Envelope: ends after SentAt; epoch 0.
	b = encodeV2(MsgEnvelope, func(w *Buffer) {
		if err := EncodeSummary(w, tuple.Summary{Query: "q", Count: 1, Levels: []int16{0}}, 0); err != nil {
			t.Fatal(err)
		}
		w.PutVarint(1)
		w.PutDuration(time.Millisecond)
	})
	if got, err = DecodeMessage(b); err != nil {
		t.Fatalf("v2 envelope rejected: %v", err)
	}
	if e := got.(*Envelope); e.Epoch != 0 || e.Tree != 1 {
		t.Fatalf("v2 envelope decoded as %#v", e)
	}

	// TopoRequest: no epoch field.
	b = encodeV2(MsgTopoRequest, func(w *Buffer) {
		w.PutString("q")
		w.PutVarint(4)
	})
	if got, err = DecodeMessage(b); err != nil {
		t.Fatalf("v2 topo request rejected: %v", err)
	}
	if m := got.(TopoRequest); m.Epoch != 0 || m.Peer != 4 {
		t.Fatalf("v2 topo request decoded as %#v", m)
	}

	// An epoch field beyond uint32 is corrupt, not silently truncated.
	var w Buffer
	w.b = append(w.b, Version, MsgRemove)
	w.PutString("q")
	w.PutUvarint(1)
	w.PutUvarint(1 << 40)
	w.PutUvarint(0)
	if _, err := DecodeMessage(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized epoch: %v", err)
	}
}

// A corrupt length prefix must not drive allocation: a frame claiming 2^40
// members is rejected by the remaining-bytes bound before any make().
func TestDecodeBoundsAllocation(t *testing.T) {
	var w Buffer
	w.appendKind(MsgInstall)
	EncodeQueryMeta(&w, QueryMeta{Name: "q", OpName: "count"})
	w.PutUvarint(1 << 40) // absurd member count, then nothing
	if _, err := DecodeMessage(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd member count: %v", err)
	}

	w = Buffer{}
	w.appendKind(MsgReconSummary)
	w.PutUvarint(1 << 50)
	if _, err := DecodeMessage(w.Bytes()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd installed count: %v", err)
	}
}

// Property: envelopes with arbitrary summary state survive the framed
// round trip.
func TestPropertyEnvelopeRoundTrip(t *testing.T) {
	f := func(q string, tb, te, age int32, count uint16, hops uint8, v float64, nl, ttl uint8, tree uint8, sentAt int32) bool {
		levels := make([]int16, int(nl)%6)
		for i := range levels {
			levels[i] = int16(i) - 1
		}
		e := &Envelope{
			S: tuple.Summary{
				Query:  q,
				Index:  tuple.Index{TB: time.Duration(tb), TE: time.Duration(te)},
				Age:    time.Duration(age),
				Count:  int(count),
				Hops:   int(hops),
				Value:  v,
				Levels: levels,
			},
			Tree:    int(tree),
			TTLDown: ttl,
			SentAt:  time.Duration(sentAt),
		}
		var w Buffer
		if err := EncodeMessage(&w, e); err != nil {
			return false
		}
		got, err := DecodeMessage(w.Bytes())
		return err == nil && reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: install chunks with arbitrary membership survive the round
// trip (maps and nested slices are the codec's hairiest shapes).
func TestPropertyInstallRoundTrip(t *testing.T) {
	f := func(peers []uint8, fanout uint8) bool {
		m := Install{Meta: sampleMeta()}
		if len(peers) > 0 {
			m.Members = map[int]Neighbors{}
			m.Forward = map[int][]int{}
			for _, p := range peers {
				nb := Neighbors{Parents: []int{int(p) - 1}, Children: [][]int{nil}, Levels: []int{int(p) % 7}}
				for c := 0; c < int(fanout)%4; c++ {
					nb.Children[0] = append(nb.Children[0], c)
				}
				m.Members[int(p)] = nb
				if fanout%2 == 0 {
					m.Forward[int(p)] = []int{int(p) + 1}
				}
			}
			if len(m.Forward) == 0 {
				m.Forward = nil
			}
		}
		var w Buffer
		if err := EncodeMessage(&w, m); err != nil {
			return false
		}
		got, err := DecodeMessage(w.Bytes())
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
