// Package central implements the centralized stream processor baseline of
// Figures 9-10: all raw streams are shipped to a single node and pass
// through a bounded tuple re-order buffer (the paper configured
// StreamBase's BSort operator to hold 5k tuples) before tumbling-window
// aggregation on the tuples' source timestamps. Because windows are keyed
// by the unsynchronized source clocks, clock offset sends tuples to the
// wrong windows; because the buffer is a fixed size, result latency stays
// nearly constant regardless of offset.
package central

import (
	"container/heap"
	"time"
)

// Tuple is one raw tuple as it arrives at the central processor.
type Tuple struct {
	// SourceTS is the timestamp assigned by the source's local clock.
	SourceTS time.Duration
	// TrueWindow is ground-truth instrumentation: the window the tuple
	// actually belongs to. It does not influence processing.
	TrueWindow int64
	// Value is the tuple's payload.
	Value float64
}

// WindowResult is one closed window.
type WindowResult struct {
	Window int64 // source-timestamp window index
	Sum    float64
	Count  int
	// ByTrueWindow histograms the constituents' ground-truth windows, for
	// the true-completeness metric.
	ByTrueWindow map[int64]int
	// ClosedAt is the (true) arrival time at which the window closed.
	ClosedAt time.Duration
}

// Processor is the centralized engine.
type Processor struct {
	slide   time.Duration
	cap     int
	buf     tupleHeap // BSort re-order buffer, min-heap on SourceTS
	open    map[int64]*WindowResult
	emitted map[int64]bool
	out     []WindowResult
	// watermark is the highest SourceTS popped from the buffer; windows
	// ending at or before it close.
	watermark time.Duration
	first     bool
}

// New creates a processor with the given window slide and BSort capacity.
func New(slide time.Duration, bufCap int) *Processor {
	return &Processor{
		slide:   slide,
		cap:     bufCap,
		open:    map[int64]*WindowResult{},
		emitted: map[int64]bool{},
	}
}

// Ingest accepts a tuple at (true) time now. When the re-order buffer
// exceeds its capacity, the oldest tuples flow into window processing.
func (p *Processor) Ingest(t Tuple, now time.Duration) {
	heap.Push(&p.buf, t)
	for p.buf.Len() > p.cap {
		p.pop(now)
	}
}

func (p *Processor) pop(now time.Duration) {
	t := heap.Pop(&p.buf).(Tuple)
	if !p.first || t.SourceTS > p.watermark {
		p.watermark = t.SourceTS
		p.first = true
	}
	w := int64(t.SourceTS / p.slide)
	if t.SourceTS < 0 && t.SourceTS%p.slide != 0 {
		w--
	}
	if p.emitted[w] {
		return // window already closed; BSort could not reorder far enough
	}
	win, ok := p.open[w]
	if !ok {
		win = &WindowResult{Window: w, ByTrueWindow: map[int64]int{}}
		p.open[w] = win
	}
	win.Sum += t.Value
	win.Count++
	win.ByTrueWindow[t.TrueWindow]++
	// Close every open window whose end precedes the watermark.
	for idx, ow := range p.open {
		if time.Duration(idx+1)*p.slide <= p.watermark {
			ow.ClosedAt = now
			p.out = append(p.out, *ow)
			p.emitted[idx] = true
			delete(p.open, idx)
		}
	}
}

// Flush drains the buffer and closes all windows (end of experiment).
func (p *Processor) Flush(now time.Duration) {
	for p.buf.Len() > 0 {
		p.pop(now)
	}
	for idx, ow := range p.open {
		ow.ClosedAt = now
		p.out = append(p.out, *ow)
		p.emitted[idx] = true
		delete(p.open, idx)
	}
}

// Results returns the windows closed so far, in close order.
func (p *Processor) Results() []WindowResult { return p.out }

// Buffered returns the number of tuples waiting in the re-order buffer.
func (p *Processor) Buffered() int { return p.buf.Len() }

type tupleHeap []Tuple

func (h tupleHeap) Len() int           { return len(h) }
func (h tupleHeap) Less(i, j int) bool { return h[i].SourceTS < h[j].SourceTS }
func (h tupleHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *tupleHeap) Push(x any)        { *h = append(*h, x.(Tuple)) }
func (h *tupleHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
