package central

import (
	"testing"
	"time"
)

func TestInOrderProcessing(t *testing.T) {
	p := New(time.Second, 10)
	for i := 0; i < 30; i++ {
		ts := time.Duration(i) * 250 * time.Millisecond
		p.Ingest(Tuple{SourceTS: ts, TrueWindow: int64(ts / time.Second), Value: 1},
			ts)
	}
	p.Flush(10 * time.Second)
	res := p.Results()
	if len(res) < 6 {
		t.Fatalf("only %d windows", len(res))
	}
	for _, w := range res[:6] {
		if w.Count != 4 || w.Sum != 4 {
			t.Fatalf("window %d: count %d sum %v, want 4", w.Window, w.Count, w.Sum)
		}
		if w.ByTrueWindow[w.Window] != 4 {
			t.Fatalf("window %d: true-window histogram %v", w.Window, w.ByTrueWindow)
		}
	}
}

func TestReorderWithinBuffer(t *testing.T) {
	p := New(time.Second, 100)
	// Two tuples out of order by 500ms: the buffer reorders them.
	p.Ingest(Tuple{SourceTS: 1500 * time.Millisecond, TrueWindow: 1, Value: 1}, 0)
	p.Ingest(Tuple{SourceTS: 1000 * time.Millisecond, TrueWindow: 1, Value: 1}, 0)
	p.Flush(2 * time.Second)
	res := p.Results()
	if len(res) != 1 || res[0].Count != 2 {
		t.Fatalf("results = %+v", res)
	}
}

func TestOffsetSendsTuplesToWrongWindow(t *testing.T) {
	p := New(time.Second, 8)
	// One source offset by +10s: its tuples land 10 windows ahead.
	for i := 0; i < 20; i++ {
		now := time.Duration(i) * 500 * time.Millisecond
		trueWin := int64(now / time.Second)
		p.Ingest(Tuple{SourceTS: now, TrueWindow: trueWin, Value: 1}, now)
		p.Ingest(Tuple{SourceTS: now + 10*time.Second, TrueWindow: trueWin, Value: 1}, now)
	}
	p.Flush(20 * time.Second)
	misassigned := 0
	total := 0
	for _, w := range p.Results() {
		for tw, c := range w.ByTrueWindow {
			total += c
			if tw != w.Window {
				misassigned += c
			}
		}
	}
	if total == 0 || misassigned < total/3 {
		t.Fatalf("misassigned %d of %d; offset should pollute windows", misassigned, total)
	}
}

func TestBoundedBufferBoundsLatency(t *testing.T) {
	// A tuple delayed beyond the buffer's reorder horizon is dropped from
	// its (already closed) window rather than delaying results.
	p := New(time.Second, 4)
	var lastClose time.Duration
	for i := 0; i < 40; i++ {
		now := time.Duration(i) * 250 * time.Millisecond
		p.Ingest(Tuple{SourceTS: now, TrueWindow: int64(now / time.Second), Value: 1}, now)
	}
	for _, w := range p.Results() {
		if w.ClosedAt > lastClose {
			lastClose = w.ClosedAt
		}
		// Close lag bounded by buffer size x inter-arrival (4 x 250ms) plus
		// one window.
		due := time.Duration(w.Window+1) * time.Second
		if lag := w.ClosedAt - due; lag > 2*time.Second {
			t.Fatalf("window %d closed %v after due", w.Window, lag)
		}
	}
	if p.Buffered() > 4 {
		t.Fatalf("buffer exceeded cap: %d", p.Buffered())
	}
}

func TestNegativeTimestamps(t *testing.T) {
	p := New(time.Second, 2)
	p.Ingest(Tuple{SourceTS: -1500 * time.Millisecond, TrueWindow: 0, Value: 1}, 0)
	p.Ingest(Tuple{SourceTS: -500 * time.Millisecond, TrueWindow: 0, Value: 1}, 0)
	p.Flush(time.Second)
	for _, w := range p.Results() {
		if w.Window > 0 {
			t.Fatalf("negative timestamps produced window %d", w.Window)
		}
	}
}
