// Package runtime defines the execution-environment abstraction the Mortar
// peer core runs against. A peer needs exactly four things from its world: a
// clock to read time and schedule callbacks (Clock, Timer, Ticker), a
// best-effort datagram transport with per-peer serialized delivery
// (Transport), and an execution context that serializes everything a peer
// does (Spawner). Runtime bundles them for a fixed-size federation.
//
// Two implementations exist:
//
//   - runtime/simrt adapts the deterministic discrete-event pair
//     eventsim+netem. Every peer shares one virtual clock and one event
//     loop, so a whole federation runs single-threaded and every run is
//     exactly reproducible from a seed. The figure experiments and most
//     tests use it.
//   - runtime/livert runs each peer as its own goroutine with a mailbox,
//     timers on real time, and an in-process loss/latency/duplication
//     injecting transport. It is the skeleton of a deployable system and is
//     exercised under the race detector.
//
// The peer core (internal/mortar) imports only this package, never a
// backend, so the same protocol code runs simulated or live.
package runtime

import (
	"math/rand"
	"time"
)

// Class labels a message for accounting purposes, so backends can split
// network load into data and control overhead (the paper reports heartbeat
// overhead separately from query traffic).
type Class uint8

const (
	// ClassData carries query tuples.
	ClassData Class = iota
	// ClassControl carries heartbeats, reconciliation, installs, probes.
	ClassControl
)

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Cancel prevents the callback from running. Cancelling an already
	// fired or cancelled timer is a no-op.
	Cancel()
	// Stopped reports whether the timer has fired or been cancelled.
	Stopped() bool
	// When returns the runtime time at which the timer is (or was) due.
	When() time.Duration
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker interface {
	// Stop halts the ticker; an in-flight tick is cancelled.
	Stop()
}

// Clock schedules work for one peer. Time is measured from the start of the
// runtime (virtual time under simulation, wall time since startup live).
// Callbacks run inside the owning peer's serialization domain: they never
// overlap with each other or with message delivery to that peer.
type Clock interface {
	// Now returns the current runtime time.
	Now() time.Duration
	// After schedules fn to run d from now. A non-positive d schedules fn
	// for the earliest opportunity.
	After(d time.Duration, fn func()) Timer
	// Every schedules fn to run every period, starting one period from
	// now. Period must be positive.
	Every(period time.Duration, fn func()) Ticker
}

// Handler receives a message delivered to a peer. from is the sending
// peer's index, or negative when the sender is unknown.
type Handler func(from int, payload any, size int)

// Frame pairs a message's decoded form with its wire encoding. The sender
// encodes each message exactly once; in-process transports pass the Frame
// through (receivers use Payload; Bytes may be nil there), while socket
// transports (runtime/netrt) transmit Bytes verbatim and deliver the
// re-decoded payload on the far side. Size accounting always uses the
// encoded length, so the emulator's network load numbers match what a
// deployed system would put on the wire.
type Frame struct {
	Payload any
	Bytes   []byte
}

// FrameBytesConsumer is implemented by transports that consume Frame.Bytes
// synchronously inside Send — copying them onto their own wire path before
// returning. When ConsumesFrameBytes reports true, the sender may recycle
// both the *Frame and the array backing Frame.Bytes as soon as Send
// returns; the transport retains neither. Senders must not recycle frames
// handed to transports without this capability: in-process backends hold
// the Frame in the receiver's mailbox until delivery.
type FrameBytesConsumer interface {
	ConsumesFrameBytes() bool
}

// Locality is implemented by runtimes that host only a subset of the
// federation's peers — a netrt process hosting a peer range. Exec, Clock
// callbacks, and message receipt work only for local peers; drivers use
// Local to scope per-peer work (sensor injection, failure control) to the
// peers this process owns. Runtimes that do not implement Locality host
// every peer.
type Locality interface {
	// Local reports whether the peer runs in this process.
	Local(peer int) bool
}

// IsLocal reports whether a peer is hosted by this runtime process: true
// unless the runtime implements Locality and disowns the peer.
func IsLocal(rt Runtime, peer int) bool {
	if l, ok := rt.(Locality); ok {
		return l.Local(peer)
	}
	return true
}

// Transport moves messages between peers, addressed by federation index.
// Delivery is best-effort (messages may be lost, delayed, or — on some
// backends — duplicated) but always serialized per receiving peer: a peer's
// handler never runs concurrently with itself or with that peer's timer
// callbacks.
type Transport interface {
	// Send transmits payload of the given application size in bytes. It
	// never blocks; it returns false only if the source itself is down or
	// the destination is unreachable.
	Send(from, to int, class Class, size int, payload any) bool
	// Handle registers the delivery handler for a peer, replacing any
	// previous handler. Register handlers before any traffic flows.
	Handle(peer int, h Handler)
	// SetDown disconnects (true) or reconnects (false) a peer. A down peer
	// neither sends nor receives; messages in flight to it are dropped at
	// delivery time.
	SetDown(peer int, down bool)
	// Down reports whether a peer is disconnected.
	Down(peer int) bool
	// Latency estimates the one-way network latency between two peers,
	// for planner input (Vivaldi measurements in the prototype).
	Latency(a, b int) time.Duration
	// MaxFrame returns the largest encoded frame, in bytes, one Send can
	// carry, or 0 when the transport is unbounded. In-process backends
	// (simrt, livert) pass payloads by reference and return 0; socket
	// backends return the ceiling of their fragmentation path. Senders of
	// bulk messages — the install multicast — size their messages from
	// this hint instead of assuming a frame fits anywhere.
	MaxFrame() int
}

// Spawner manages the execution contexts peers run in. Under the simulator
// every peer shares the single event loop and Exec is a direct call; under
// the live runtime each peer is a goroutine draining a mailbox and Exec
// posts to it.
type Spawner interface {
	// Exec runs fn inside the peer's serialization domain. It reports
	// whether fn was accepted (false after Shutdown). Exec never blocks on
	// fn's completion; use ExecWait for synchronous semantics.
	Exec(peer int, fn func()) bool
	// Shutdown stops message and timer delivery and waits for peer
	// contexts to drain. After Shutdown returns, no peer code runs and
	// peer state may be inspected from the caller's goroutine.
	Shutdown()
}

// Runtime binds per-peer clocks, the shared transport, and peer execution
// contexts for a federation of NumPeers peers.
type Runtime interface {
	// NumPeers returns the federation size.
	NumPeers() int
	// Clock returns the scheduling clock for a peer.
	Clock(peer int) Clock
	// Transport returns the shared transport.
	Transport() Transport
	// Rand returns the runtime's deterministic random source, for setup
	// work such as query planning. It is not synchronized: use it only
	// from the driving goroutine, not from peer callbacks.
	Rand() *rand.Rand
	Spawner
}

// ExecWait runs fn inside the peer's serialization domain and blocks until
// it returns; it reports whether fn ran. It must be called from a driving
// goroutine, never from inside a peer callback of another peer (that would
// deadlock a live backend).
func ExecWait(rt Runtime, peer int, fn func()) bool {
	done := make(chan struct{})
	if !rt.Exec(peer, func() {
		fn()
		close(done)
	}) {
		return false
	}
	<-done
	return true
}
