// Package actor provides the building blocks shared by the live runtime
// backends (runtime/livert, runtime/netrt): an unbounded per-peer mailbox
// whose single draining goroutine is the peer's serialization domain, and a
// wall-clock scheduler whose callbacks post into that domain. Both backends
// give every peer one Mailbox and one Clock; they differ only in how
// messages travel between peers (in-process closures vs UDP datagrams).
package actor

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
)

// --- Mailbox: an unbounded FIFO work queue, one goroutine draining it ---

// Mailbox is unbounded so that cyclic peer-to-peer sends can never
// deadlock: posting never blocks, only the draining goroutine runs work.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []func()
	closed bool
}

// NewMailbox returns an empty mailbox; the owner must run Loop on its own
// goroutine.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Post enqueues fn; it reports false (dropping fn) after Close.
func (m *Mailbox) Post(fn func()) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.q = append(m.q, fn)
	m.cond.Signal()
	return true
}

// Close stops intake; already queued work still drains.
func (m *Mailbox) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Loop drains the queue until closed and empty.
func (m *Mailbox) Loop() {
	for {
		m.mu.Lock()
		for len(m.q) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.q) == 0 {
			m.mu.Unlock()
			return
		}
		fn := m.q[0]
		m.q[0] = nil // release the closure (and its captured payload) now
		m.q = m.q[1:]
		m.mu.Unlock()
		fn()
	}
}

// --- Clock: wall-clock scheduling into a serialization domain ---

// Clock schedules wall-clock callbacks into one peer's serialization
// domain. Post must enqueue a closure into the peer's mailbox (reporting
// false once the runtime shut down); Closed reports runtime shutdown and
// stops tickers from re-arming forever.
type Clock struct {
	Start  time.Time
	Post   func(fn func()) bool
	Closed func() bool
}

var _ runtime.Clock = Clock{}

// Now returns wall time elapsed since the runtime started.
func (c Clock) Now() time.Duration { return time.Since(c.Start) }

// After schedules fn to run d from now inside the peer's domain.
func (c Clock) After(d time.Duration, fn func()) runtime.Timer {
	if d < 0 {
		d = 0
	}
	t := &timer{at: c.Now() + d}
	t.real = time.AfterFunc(d, func() {
		c.Post(func() {
			// Decided inside the peer's domain so Cancel from the same
			// domain is always honoured.
			if t.state.CompareAndSwap(0, 1) {
				fn()
			}
		})
	})
	return t
}

// Every schedules fn to run every period inside the peer's domain.
func (c Clock) Every(period time.Duration, fn func()) runtime.Ticker {
	if period <= 0 {
		panic("actor: non-positive ticker period")
	}
	tk := &ticker{c: c, period: period, fn: fn}
	tk.arm()
	return tk
}

// timer's state: 0 pending, 1 fired, 2 cancelled.
type timer struct {
	at    time.Duration
	state atomic.Int32
	real  *time.Timer
}

func (t *timer) Cancel() {
	if t == nil {
		return
	}
	t.state.CompareAndSwap(0, 2)
	t.real.Stop()
}

func (t *timer) Stopped() bool { return t == nil || t.state.Load() != 0 }

func (t *timer) When() time.Duration { return t.at }

// ticker re-arms on the wall-clock side of each fire, so the tick rate
// holds steady even when the peer's mailbox is backlogged — heartbeat
// intervals must not stretch with queueing delay or busy peers would be
// presumed dead. Ticks that land while the previous one is still queued
// coalesce instead of piling up.
type ticker struct {
	c       Clock
	period  time.Duration
	fn      func()
	stopped atomic.Bool
	pending atomic.Bool
	mu      sync.Mutex
	real    *time.Timer
}

func (tk *ticker) arm() {
	tk.mu.Lock()
	// A ticker on a shut-down runtime must not keep re-arming: its ticks
	// can never run, and the orphan timer would fire forever.
	if !tk.stopped.Load() && !tk.c.Closed() {
		tk.real = time.AfterFunc(tk.period, tk.fire)
	}
	tk.mu.Unlock()
}

func (tk *ticker) fire() {
	tk.arm() // fixed rate: independent of mailbox drain time
	if tk.stopped.Load() {
		return
	}
	if !tk.pending.CompareAndSwap(false, true) {
		return // previous tick still queued; coalesce
	}
	if !tk.c.Post(func() {
		tk.pending.Store(false)
		if !tk.stopped.Load() {
			tk.fn()
		}
	}) {
		tk.pending.Store(false) // runtime closed; the closure never runs
	}
}

func (tk *ticker) Stop() {
	tk.stopped.Store(true)
	tk.mu.Lock()
	if tk.real != nil {
		tk.real.Stop()
	}
	tk.mu.Unlock()
}
