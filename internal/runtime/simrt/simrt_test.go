package simrt

import (
	"testing"
	"time"

	"repro/internal/runtime"
)

// The adapter must present the emulated hosts as peer indices with
// serialized (direct-call) execution and class-mapped accounting.
func TestAdapterBasics(t *testing.T) {
	rt := NewPaper(1, 12, TopoOptions{Stubs: 4, Transits: 2})
	if rt.NumPeers() != 12 {
		t.Fatalf("NumPeers = %d, want 12", rt.NumPeers())
	}
	if lat := rt.Latency(0, 1); lat <= 0 {
		t.Fatalf("latency %v between distinct peers", lat)
	}

	var got []int
	rt.Handle(1, func(from int, payload any, size int) { got = append(got, from) })
	rt.Send(0, 1, runtime.ClassControl, 16, "hi")
	rt.Send(2, 1, runtime.ClassData, 16, "yo")
	rt.RunFor(time.Second)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("delivered senders %v, want [0 2]", got)
	}
	if rt.ControlBytes() == 0 || rt.DataBytes() == 0 {
		t.Fatalf("accounting: control %d data %d", rt.ControlBytes(), rt.DataBytes())
	}

	ran := false
	if !rt.Exec(3, func() { ran = true }) || !ran {
		t.Fatal("Exec must run synchronously on the simulator")
	}

	rt.SetDown(4, true)
	if !rt.Down(4) {
		t.Fatal("SetDown not reflected")
	}

	// Clock callbacks share the virtual event loop.
	fired := time.Duration(-1)
	ck := rt.Clock(5)
	ck.After(3*time.Second, func() { fired = ck.Now() })
	rt.RunFor(5 * time.Second)
	if fired != rt.Now()-2*time.Second {
		t.Fatalf("timer fired at %v, clock now %v", fired, rt.Now())
	}
}

// Two adapters over the same seed must drive identical virtual schedules.
func TestNewPaperDeterministic(t *testing.T) {
	trace := func() []time.Duration {
		rt := NewPaper(9, 20, TopoOptions{})
		var at []time.Duration
		rt.Handle(1, func(from int, payload any, size int) { at = append(at, rt.Now()) })
		for i := 0; i < 10; i++ {
			rt.Clock(0).After(time.Duration(i)*time.Second, func() {
				rt.Send(0, 1, runtime.ClassData, 64, i)
			})
		}
		rt.RunFor(20 * time.Second)
		return at
	}
	a, b := trace(), trace()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}
