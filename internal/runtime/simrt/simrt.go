// Package simrt adapts the deterministic discrete-event pair
// internal/eventsim + internal/netem to the runtime interfaces. Every peer
// shares the single virtual clock and event loop, and messages ride the
// emulated topology with its latency, bandwidth, loss, and failure models —
// so a federation built over simrt reproduces results bit-for-bit from a
// seed, which is what the paper-figure experiments and the deterministic
// tests rely on.
package simrt

import (
	"math/rand"
	"time"

	"repro/internal/eventsim"
	"repro/internal/netem"
	"repro/internal/runtime"
)

// Runtime drives one peer per host of an emulated network. It implements
// runtime.Runtime and runtime.Transport.
type Runtime struct {
	sim    *eventsim.Sim
	net    *netem.Network
	hosts  []netem.NodeID
	peerOf map[netem.NodeID]int
	rng    *rand.Rand
}

var _ runtime.Runtime = (*Runtime)(nil)
var _ runtime.Transport = (*Runtime)(nil)

// New adapts an existing network: one peer per host, in host order. It
// draws one value from the simulator's random stream to seed the planning
// RNG (exactly as the pre-runtime fabric constructor did, preserving
// deterministic results).
func New(net *netem.Network) *Runtime {
	hosts := net.Topology().Hosts()
	r := &Runtime{
		sim:    net.Sim(),
		net:    net,
		hosts:  hosts,
		peerOf: make(map[netem.NodeID]int, len(hosts)),
		rng:    rand.New(rand.NewSource(net.Sim().Rand().Int63())),
	}
	for i, h := range hosts {
		r.peerOf[h] = i
	}
	return r
}

// TopoOptions tweak the paper transit-stub parameters for NewPaper. Zero
// fields keep netem.PaperTopology's defaults.
type TopoOptions struct {
	Stubs    int
	Transits int
	Loss     float64
}

// NewPaper builds a self-contained simulated runtime over the paper's
// transit-stub topology: a fresh simulator and network seeded from seed,
// with one peer per host. This is the one-call testbed most tests want.
func NewPaper(seed int64, hosts int, o TopoOptions) *Runtime {
	sim := eventsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	p := netem.PaperTopology(hosts)
	if o.Stubs > 0 {
		p.Stubs = o.Stubs
	}
	if o.Transits > 0 {
		p.Transits = o.Transits
	}
	if o.Loss > 0 {
		p.Loss = o.Loss
	}
	topo := netem.GenerateTransitStub(p, rng)
	return New(netem.New(sim, topo))
}

// Sim returns the driving simulator.
func (r *Runtime) Sim() *eventsim.Sim { return r.sim }

// Net returns the underlying emulated network.
func (r *Runtime) Net() *netem.Network { return r.net }

// --- runtime.Runtime ---

// NumPeers returns the federation size.
func (r *Runtime) NumPeers() int { return len(r.hosts) }

// Clock returns the shared virtual clock (identical for every peer).
func (r *Runtime) Clock(peer int) runtime.Clock { return simClock{r.sim} }

// Transport returns the emulated network as a peer-indexed transport.
func (r *Runtime) Transport() runtime.Transport { return r }

// Rand returns the planning RNG derived from the simulator's stream.
func (r *Runtime) Rand() *rand.Rand { return r.rng }

// Exec runs fn immediately: the caller is, by construction, the single
// simulation goroutine, which is every peer's serialization domain.
func (r *Runtime) Exec(peer int, fn func()) bool { fn(); return true }

// Shutdown is a no-op: the simulation stops when its driver stops stepping.
func (r *Runtime) Shutdown() {}

// --- runtime.Transport ---

func classOf(c runtime.Class) netem.TrafficClass {
	if c == runtime.ClassControl {
		return netem.ClassControl
	}
	return netem.ClassData
}

// Send transmits over the emulated topology, charging the wire size.
func (r *Runtime) Send(from, to int, class runtime.Class, size int, payload any) bool {
	return r.net.Send(r.hosts[from], r.hosts[to], classOf(class), size, payload)
}

// Handle registers a peer's delivery handler, translating host IDs back to
// peer indices.
func (r *Runtime) Handle(peer int, h runtime.Handler) {
	r.net.Handle(r.hosts[peer], func(from netem.NodeID, payload any, size int) {
		src, ok := r.peerOf[from]
		if !ok {
			src = -1
		}
		h(src, payload, size)
	})
}

// SetDown fails or recovers a peer's host.
func (r *Runtime) SetDown(peer int, down bool) { r.net.SetDown(r.hosts[peer], down) }

// Down reports whether a peer's host is failed.
func (r *Runtime) Down(peer int) bool { return r.net.Down(r.hosts[peer]) }

// Latency returns the shortest-path propagation delay between two peers.
func (r *Runtime) Latency(a, b int) time.Duration {
	return r.net.Latency(r.hosts[a], r.hosts[b])
}

// MaxFrame reports the emulated transport as unbounded: payloads travel by
// reference and only their size is charged to the emulated links.
func (r *Runtime) MaxFrame() int { return 0 }

// --- driving helpers (sim-only surface used by tests and experiments) ---

// Now returns the current virtual time.
func (r *Runtime) Now() time.Duration { return r.sim.Now() }

// After schedules fn on the shared virtual clock.
func (r *Runtime) After(d time.Duration, fn func()) *eventsim.Timer { return r.sim.After(d, fn) }

// Every schedules a repeating callback on the shared virtual clock.
func (r *Runtime) Every(period time.Duration, fn func()) *eventsim.Ticker {
	return r.sim.Every(period, fn)
}

// RunFor executes events for the next d of virtual time.
func (r *Runtime) RunFor(d time.Duration) { r.sim.RunFor(d) }

// RunUntil executes events up to virtual time t.
func (r *Runtime) RunUntil(t time.Duration) { r.sim.RunUntil(t) }

// ControlBytes returns cumulative control-plane bytes across all links.
func (r *Runtime) ControlBytes() int64 {
	return r.net.Accounting().TotalBytes(netem.ClassControl)
}

// DataBytes returns cumulative data-plane bytes across all links.
func (r *Runtime) DataBytes() int64 {
	return r.net.Accounting().TotalBytes(netem.ClassData)
}

// simClock adapts the simulator to runtime.Clock. eventsim's Timer and
// Ticker already satisfy the runtime interfaces.
type simClock struct{ sim *eventsim.Sim }

func (c simClock) Now() time.Duration { return c.sim.Now() }

func (c simClock) After(d time.Duration, fn func()) runtime.Timer { return c.sim.After(d, fn) }

func (c simClock) Every(period time.Duration, fn func()) runtime.Ticker {
	return c.sim.Every(period, fn)
}
