package netrt_test

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runtime/netrt"
)

func writePeers(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "peers.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The peers file is the one artifact every process of a federation must
// agree on; malformed lines and genuinely conflicting entries must be
// rejected loudly, not bound into a half-working directory.
func TestLoadDirectoryFailurePaths(t *testing.T) {
	if _, err := netrt.LoadDirectory(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("missing peers file accepted")
	}
	if _, err := netrt.LoadDirectory(writePeers(t, "# only comments\n\n")); err == nil {
		t.Fatal("empty peers file accepted")
	}
	_, err := netrt.LoadDirectory(writePeers(t, "127.0.0.1:9000\nnot-an-address\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v", err)
	}
	// A ranged line conflicting with an earlier assignment (same peer,
	// different address) is a real error: the peer's datagrams would go to
	// one socket while it listens on another.
	_, err = netrt.LoadDirectory(writePeers(t, "127.0.0.1:9000 0-3\n127.0.0.1:9001 3-5\n"))
	if err == nil || !strings.Contains(err.Error(), "already mapped") {
		t.Fatalf("conflicting range error = %v", err)
	}
	// Ranges must cover the index space contiguously from 0.
	_, err = netrt.LoadDirectory(writePeers(t, "127.0.0.1:9000 0-1\n127.0.0.1:9001 3-4\n"))
	if err == nil || !strings.Contains(err.Error(), "no peer 2") {
		t.Fatalf("gap error = %v", err)
	}
	// The two shapes must not blend — a mixed file is ambiguous about
	// which lines carry implicit indices.
	_, err = netrt.LoadDirectory(writePeers(t, "127.0.0.1:9000 0-1\n127.0.0.1:9001\n"))
	if err == nil {
		t.Fatal("mixed plain/ranged file accepted")
	}
	dir, err := netrt.LoadDirectory(writePeers(t, "# federation\n127.0.0.1:9000\n\n127.0.0.1:9001\n"))
	if err != nil || len(dir) != 2 {
		t.Fatalf("valid file: dir=%v err=%v", dir, err)
	}
}

// Many peers per address is the multiplexed layout, not an error — in both
// the plain shape (repeated lines) and the ranged shape.
func TestLoadDirectoryMultiplexedAddresses(t *testing.T) {
	dir, err := netrt.LoadDirectory(writePeers(t, "127.0.0.1:9000\n127.0.0.1:9000\n127.0.0.1:9001\n127.0.0.1:9000\n"))
	if err != nil {
		t.Fatalf("plain multiplexed file rejected: %v", err)
	}
	want := []string{"127.0.0.1:9000", "127.0.0.1:9000", "127.0.0.1:9001", "127.0.0.1:9000"}
	if len(dir) != len(want) {
		t.Fatalf("dir = %v, want %v", dir, want)
	}
	for i := range want {
		if dir[i] != want[i] {
			t.Fatalf("dir[%d] = %q, want %q", i, dir[i], want[i])
		}
	}

	dir, err = netrt.LoadDirectory(writePeers(t, "# ranged, out of order\n127.0.0.1:9001 4-5\n127.0.0.1:9000 0-3\n127.0.0.1:9001 4\n"))
	if err != nil {
		t.Fatalf("ranged file rejected: %v", err)
	}
	want = []string{"127.0.0.1:9000", "127.0.0.1:9000", "127.0.0.1:9000", "127.0.0.1:9000", "127.0.0.1:9001", "127.0.0.1:9001"}
	if len(dir) != len(want) {
		t.Fatalf("dir = %v, want %v", dir, want)
	}
	for i := range want {
		if dir[i] != want[i] {
			t.Fatalf("dir[%d] = %q, want %q", i, dir[i], want[i])
		}
	}
}

// freePort reserves an ephemeral TCP port and releases it for the test to
// reuse immediately.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// The barrier must count overlapping JOIN ranges once, drop malformed
// lines, and complete exactly when the directory is covered.
func TestAwaitWorkersCoverage(t *testing.T) {
	addr := freePort(t)
	type result struct {
		conns []net.Conn
		err   error
	}
	done := make(chan result, 1)
	go func() {
		conns, err := netrt.AwaitWorkers(addr, []int{0}, 4, 10*time.Second)
		done <- result{conns, err}
	}()

	dial := func(line string) net.Conn {
		t.Helper()
		var c net.Conn
		var err error
		for i := 0; i < 40; i++ {
			c, err = net.Dial("tcp", addr)
			if err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("dial barrier: %v", err)
		}
		if _, err := c.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
		return c
	}
	defer dial("JOIN 1-2\n").Close()
	defer dial("HELLO\n").Close()     // malformed: ignored
	defer dial("JOIN 1-2\n").Close()  // duplicate range: counted once
	defer dial("JOIN 9-12\n").Close() // out of range: ignored
	select {
	case r := <-done:
		t.Fatalf("barrier completed with peer 3 uncovered: %v %v", r.conns, r.err)
	case <-time.After(500 * time.Millisecond):
	}
	defer dial("JOIN 3-3\n").Close()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("barrier failed: %v", r.err)
		}
		for _, c := range r.conns {
			c.Close()
		}
	case <-time.After(10 * time.Second):
		t.Fatal("barrier did not complete after full coverage")
	}
}

// A coordinator whose workers never arrive must give up after the barrier
// timeout, reporting the uncovered count — and a worker that joins after
// that finds nobody listening and fails its own join timeout instead of
// hanging forever.
func TestJoinAfterBarrierTimeout(t *testing.T) {
	addr := freePort(t)
	start := time.Now()
	_, err := netrt.AwaitWorkers(addr, []int{0}, 3, 400*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "2 of 3 peers uncovered") {
		t.Fatalf("barrier timeout error = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("barrier held for %v past its 400ms timeout", elapsed)
	}

	// The late worker: the listener is gone, so the join retries until its
	// own deadline and errors out.
	if _, err := netrt.JoinBarrier(addr, []int{1, 2}, 700*time.Millisecond); err == nil {
		t.Fatal("late join succeeded against a closed barrier")
	}
	if _, err := netrt.JoinBarrier(addr, nil, time.Second); err == nil {
		t.Fatal("join with no local peers accepted")
	}
}

// A worker that joins in time gets a connection that stays open until the
// coordinator hangs up; WaitHangup returns promptly on the hangup.
func TestJoinBarrierHandshake(t *testing.T) {
	addr := freePort(t)
	conns := make(chan []net.Conn, 1)
	go func() {
		cs, err := netrt.AwaitWorkers(addr, []int{0}, 2, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		conns <- cs
	}()
	wc, err := netrt.JoinBarrier(addr, []int{1}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cs := <-conns
	if len(cs) != 1 {
		t.Fatalf("coordinator holds %d worker connections, want 1", len(cs))
	}
	done := make(chan struct{})
	go func() {
		netrt.WaitHangup(wc, 30*time.Second)
		close(done)
	}()
	cs[0].Close() // end of run
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitHangup missed the coordinator hangup")
	}
}

// A connection that joins the barrier but never sends its JOIN line (a
// port scan, a hung worker) must not hold the barrier open past its
// timeout: the read is bounded by the same deadline as the accept loop.
func TestAwaitWorkersSilentConnection(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		_, err := netrt.AwaitWorkers(addr, []int{0}, 2, 600*time.Millisecond)
		done <- err
	}()
	var c net.Conn
	var err error
	for i := 0; i < 40; i++ {
		c, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial barrier: %v", err)
	}
	defer c.Close() // connected, silent: write nothing
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "uncovered") {
			t.Fatalf("barrier ended with %v, want timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent connection held the barrier past its timeout")
	}
}
