package netrt

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// LoadDirectory reads a peers file in either of two shapes:
//
//   - one UDP host:port per line, line order giving the peer index — many
//     lines may share one address (those peers are multiplexed behind one
//     socket);
//   - ranged lines "host:port lo-hi" (or "host:port i") assigning an
//     explicit peer range to one address, in any order, covering peers
//     0..max contiguously.
//
// Blank lines and lines starting with # are skipped; the two shapes may
// not be mixed in one file. Two ranged lines assigning one peer index to
// different addresses conflict and reject the file — the peer's datagrams
// would go to one socket while it listens on another. This is the
// -peers-file format mortard's multi-process mode consumes; every process
// of a federation must read the same file.
func LoadDirectory(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dir []string           // plain shape: line order
	byPeer := map[int]string{} // ranged shape: explicit indices
	maxPeer := -1
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addr, rng, ranged := strings.Cut(line, " ")
		addr = strings.TrimSpace(addr)
		if !strings.Contains(addr, ":") {
			return nil, fmt.Errorf("netrt: peers file %s line %d: %q is not host:port", path, ln+1, line)
		}
		if !ranged {
			if len(byPeer) > 0 {
				return nil, fmt.Errorf("netrt: peers file %s line %d: plain line %q after ranged lines", path, ln+1, line)
			}
			dir = append(dir, addr)
			continue
		}
		if len(dir) > 0 {
			return nil, fmt.Errorf("netrt: peers file %s line %d: ranged line %q after plain lines", path, ln+1, line)
		}
		lo, hi, err := parseRawRange(strings.TrimSpace(rng))
		if err != nil {
			return nil, fmt.Errorf("netrt: peers file %s line %d: %v", path, ln+1, err)
		}
		for p := lo; p <= hi; p++ {
			if prev, ok := byPeer[p]; ok && prev != addr {
				return nil, fmt.Errorf("netrt: peers file %s line %d: peer %d already mapped to %q", path, ln+1, p, prev)
			}
			byPeer[p] = addr
			if p > maxPeer {
				maxPeer = p
			}
		}
	}
	if len(byPeer) > 0 {
		dir = make([]string, maxPeer+1)
		for p := range dir {
			a, ok := byPeer[p]
			if !ok {
				return nil, fmt.Errorf("netrt: peers file %s covers no peer %d (ranges must cover 0..%d)", path, p, maxPeer)
			}
			dir[p] = a
		}
	}
	if len(dir) == 0 {
		return nil, fmt.Errorf("netrt: peers file %s lists no peers", path)
	}
	return dir, nil
}

// parseRawRange parses "lo-hi" or "i" without an upper federation bound
// (LoadDirectory discovers the federation size from the ranges).
func parseRawRange(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, "-"); ok {
		var err1, err2 error
		lo, err1 = strconv.Atoi(strings.TrimSpace(a))
		hi, err2 = strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil || lo < 0 || hi < lo {
			return 0, 0, fmt.Errorf("bad peer range %q", s)
		}
		return lo, hi, nil
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || v < 0 {
		return 0, 0, fmt.Errorf("bad peer range %q", s)
	}
	return v, v, nil
}

// ParseRange parses a peer range "lo-hi" (inclusive) or a single index
// "i" against a federation of n peers.
func ParseRange(s string, n int) ([]int, error) {
	lo, hi := 0, 0
	if a, b, ok := strings.Cut(s, "-"); ok {
		var err1, err2 error
		lo, err1 = strconv.Atoi(strings.TrimSpace(a))
		hi, err2 = strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("netrt: bad peer range %q", s)
		}
	} else {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("netrt: bad peer range %q", s)
		}
		lo, hi = v, v
	}
	if lo < 0 || hi < lo || hi >= n {
		return nil, fmt.Errorf("netrt: peer range %q outside federation of %d", s, n)
	}
	out := make([]int, 0, hi-lo+1)
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out, nil
}
