package netrt

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// LoadDirectory reads a peers file: one UDP host:port per line, line i
// giving peer i's address. Blank lines and lines starting with # are
// skipped. This is the -peers-file format mortard's multi-process mode
// consumes; every process of a federation must read the same file.
func LoadDirectory(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dir []string
	seen := map[string]int{}
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, ":") {
			return nil, fmt.Errorf("netrt: peers file %s line %d: %q is not host:port", path, ln+1, line)
		}
		// Two peers on one address would steal each other's datagrams (and
		// the second bind fails anyway); reject the file outright.
		if first, dup := seen[line]; dup {
			return nil, fmt.Errorf("netrt: peers file %s line %d: address %q duplicates line %d", path, ln+1, line, first)
		}
		seen[line] = ln + 1
		dir = append(dir, line)
	}
	if len(dir) == 0 {
		return nil, fmt.Errorf("netrt: peers file %s lists no peers", path)
	}
	return dir, nil
}

// ParseRange parses a peer range "lo-hi" (inclusive) or a single index
// "i" against a federation of n peers.
func ParseRange(s string, n int) ([]int, error) {
	lo, hi := 0, 0
	if a, b, ok := strings.Cut(s, "-"); ok {
		var err1, err2 error
		lo, err1 = strconv.Atoi(strings.TrimSpace(a))
		hi, err2 = strconv.Atoi(strings.TrimSpace(b))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("netrt: bad peer range %q", s)
		}
	} else {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("netrt: bad peer range %q", s)
		}
		lo, hi = v, v
	}
	if lo < 0 || hi < lo || hi >= n {
		return nil, fmt.Errorf("netrt: peer range %q outside federation of %d", s, n)
	}
	out := make([]int, 0, hi-lo+1)
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out, nil
}
