package netrt

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// This file is netrt's reliable large-message machinery: the fragmenter
// that splits an oversized wire frame into MTU-sized pieces, the bounded
// per-receiver Reassembler that puts them back together (with stale-stream
// eviction and NACK-driven repair), the bounded retransmit buffer serving
// those NACKs, and the token-bucket pacer every outgoing datagram flows
// through so a multi-fragment burst does not overrun the first queue it
// meets. Together they turn the transport's one-datagram ceiling into a
// fragmentation threshold: Send carries any frame up to Options.MaxMessage.

// fragHeadroom is the datagram budget reserved for the fragment framing:
// frame kind, sender/destination indices, stream id, index, count, and the
// payload length prefix — all varints, 36 bytes in the worst case. The
// remainder of the MTU carries fragment payload.
const fragHeadroom = 64

// SplitFragments splits a frame into fragments of at most maxPayload bytes
// each, all tagged with the stream id. The payloads alias b — callers that
// retain fragments past b's lifetime must copy. A frame that already fits
// in one fragment still yields a single-element train (netrt's Send never
// asks for that; the single-datagram path keeps the lighter frameMsg
// layout and its RTT echo).
func SplitFragments(stream uint64, b []byte, maxPayload int) []wire.Fragment {
	if maxPayload <= 0 {
		maxPayload = 1
	}
	count := (len(b) + maxPayload - 1) / maxPayload
	if count == 0 {
		count = 1
	}
	out := make([]wire.Fragment, 0, count)
	for i := 0; i < count; i++ {
		lo := i * maxPayload
		hi := lo + maxPayload
		if hi > len(b) {
			hi = len(b)
		}
		out = append(out, wire.Fragment{
			Stream:  stream,
			Index:   uint32(i),
			Count:   uint32(count),
			Payload: b[lo:hi],
		})
	}
	return out
}

// --- reassembly ---

// ReasmOptions bounds a Reassembler. Every limit exists because a UDP peer
// can be fed garbage: without them a hostile (or merely lossy) sender
// could pin unbounded memory in half-finished streams.
type ReasmOptions struct {
	// MaxMessage is the largest reassembled frame; streams that grow past
	// it are evicted. Default 4 MiB.
	MaxMessage int
	// MaxBytes bounds the total buffered payload across all partial
	// streams; the oldest stream is evicted to make room. Default
	// 2×MaxMessage.
	MaxBytes int
	// MaxStreams bounds concurrent partial streams. Default 64.
	MaxStreams int
	// StaleAfter evicts a stream that has received nothing for this long.
	// Default 3s.
	StaleAfter time.Duration
	// NackDelay is the quiet time before an incomplete stream requests
	// repair (and between repeat requests). Default 40ms.
	NackDelay time.Duration
	// MaxNacks bounds repair rounds per stream; afterwards the stream just
	// ages out. Default 20.
	MaxNacks int
	// MaxNackIndices caps the missing-index list of one NACK so the NACK
	// itself fits a datagram. Default 256.
	MaxNackIndices int
}

func (o ReasmOptions) withDefaults() ReasmOptions {
	if o.MaxMessage <= 0 {
		o.MaxMessage = 4 << 20
	}
	if o.MaxBytes < o.MaxMessage {
		o.MaxBytes = 2 * o.MaxMessage
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 64
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 3 * time.Second
	}
	if o.NackDelay <= 0 {
		o.NackDelay = 40 * time.Millisecond
	}
	if o.MaxNacks <= 0 {
		o.MaxNacks = 20
	}
	if o.MaxNackIndices <= 0 {
		o.MaxNackIndices = 256
	}
	return o
}

// NackRequest is a repair request Sweep wants sent: the stream's sender
// and the fragment indices still missing.
type NackRequest struct {
	Src     int
	Stream  uint64
	Missing []uint32
}

type reasmKey struct {
	src    int
	stream uint64
}

type reasmStream struct {
	parts    [][]byte
	have     int
	bytes    int
	last     time.Time // newest fragment arrival
	lastNack time.Time
	nacks    int
}

// Reassembler rebuilds fragmented frames per (sender, stream) under hard
// memory bounds. It is safe for concurrent use: the owning peer's receive
// loop calls Add while the runtime's sweeper calls Sweep. Time flows in
// explicitly so tests drive eviction deterministically.
type Reassembler struct {
	opt ReasmOptions

	mu      sync.Mutex
	streams map[reasmKey]*reasmStream
	bytes   int

	completed, evicted uint64
}

// NewReassembler builds a bounded reassembler.
func NewReassembler(opt ReasmOptions) *Reassembler {
	return &Reassembler{opt: opt.withDefaults(), streams: map[reasmKey]*reasmStream{}}
}

// Bytes returns the payload bytes currently buffered in partial streams.
func (ra *Reassembler) Bytes() int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.bytes
}

// Streams returns the number of partial streams currently held.
func (ra *Reassembler) Streams() int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return len(ra.streams)
}

// Stats returns cumulative counters: frames fully reassembled and streams
// evicted (stale, oversized, or displaced by the memory bound).
func (ra *Reassembler) Stats() (completed, evicted uint64) {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return ra.completed, ra.evicted
}

// Add folds one fragment in, retaining f.Payload. It returns the complete
// frame once the stream's last fragment lands, nil while the stream is
// still partial, and an error for fragments no honest splitter produces
// (the stream is evicted then — a sender that contradicts itself cannot be
// reassembled).
func (ra *Reassembler) Add(src int, f wire.Fragment, now time.Time) ([]byte, error) {
	if f.Count == 0 || f.Index >= f.Count {
		return nil, fmt.Errorf("netrt: fragment %d/%d malformed", f.Index, f.Count)
	}
	// An honest fragment train has at least fragHeadroom payload bytes per
	// fragment (the minimum MTU minus the header budget), so Count beyond
	// MaxMessage/fragHeadroom cannot describe an acceptable frame; checking
	// first keeps a forged Count from sizing a huge parts slice.
	if int64(f.Count) > int64(ra.opt.MaxMessage/fragHeadroom)+1 {
		return nil, fmt.Errorf("netrt: fragment count %d exceeds the %d-byte frame bound", f.Count, ra.opt.MaxMessage)
	}
	ra.mu.Lock()
	defer ra.mu.Unlock()
	key := reasmKey{src: src, stream: f.Stream}
	st, ok := ra.streams[key]
	if !ok {
		for len(ra.streams) >= ra.opt.MaxStreams || ra.bytes+len(f.Payload) > ra.opt.MaxBytes {
			if !ra.evictOldestLocked() {
				break
			}
		}
		st = &reasmStream{parts: make([][]byte, f.Count)}
		ra.streams[key] = st
	}
	if int(f.Count) != len(st.parts) {
		ra.dropLocked(key, st)
		return nil, fmt.Errorf("netrt: stream %d changed fragment count", f.Stream)
	}
	st.last = now
	if st.parts[f.Index] != nil {
		return nil, nil // duplicate fragment (retransmit raced the NACK)
	}
	st.parts[f.Index] = f.Payload
	st.have++
	st.bytes += len(f.Payload)
	ra.bytes += len(f.Payload)
	if st.bytes > ra.opt.MaxMessage {
		ra.dropLocked(key, st)
		return nil, fmt.Errorf("netrt: stream %d exceeds the %d-byte frame bound", f.Stream, ra.opt.MaxMessage)
	}
	// Growth must honour the total bound too, not just stream creation:
	// otherwise MaxStreams tiny streams could each swell toward MaxMessage
	// and pin MaxStreams×MaxMessage. Evicting may displace this very
	// stream; the frame is then lost like any other and the protocol
	// layers above repair it.
	for ra.bytes > ra.opt.MaxBytes {
		if !ra.evictOldestLocked() {
			break
		}
		if _, alive := ra.streams[key]; !alive {
			return nil, nil
		}
	}
	if st.have < len(st.parts) {
		return nil, nil
	}
	msg := make([]byte, 0, st.bytes)
	for _, p := range st.parts {
		msg = append(msg, p...)
	}
	ra.bytes -= st.bytes
	delete(ra.streams, key)
	ra.completed++
	return msg, nil
}

// Sweep evicts streams idle past StaleAfter and returns repair requests
// for incomplete streams that have been quiet for NackDelay and still have
// repair rounds left.
func (ra *Reassembler) Sweep(now time.Time) []NackRequest {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	var reqs []NackRequest
	for key, st := range ra.streams {
		if now.Sub(st.last) >= ra.opt.StaleAfter {
			ra.dropLocked(key, st)
			continue
		}
		if st.nacks >= ra.opt.MaxNacks ||
			now.Sub(st.last) < ra.opt.NackDelay || now.Sub(st.lastNack) < ra.opt.NackDelay {
			continue
		}
		missing := make([]uint32, 0, len(st.parts)-st.have)
		for i, p := range st.parts {
			if p == nil {
				missing = append(missing, uint32(i))
				if len(missing) >= ra.opt.MaxNackIndices {
					break
				}
			}
		}
		st.nacks++
		st.lastNack = now
		reqs = append(reqs, NackRequest{Src: key.src, Stream: key.stream, Missing: missing})
	}
	return reqs
}

// dropLocked removes one stream and counts the eviction.
func (ra *Reassembler) dropLocked(key reasmKey, st *reasmStream) {
	ra.bytes -= st.bytes
	delete(ra.streams, key)
	ra.evicted++
}

// evictOldestLocked drops the stream with the oldest last-arrival time; it
// reports false when there is nothing left to evict.
func (ra *Reassembler) evictOldestLocked() bool {
	var oldestKey reasmKey
	var oldest *reasmStream
	for key, st := range ra.streams {
		if oldest == nil || st.last.Before(oldest.last) {
			oldestKey, oldest = key, st
		}
	}
	if oldest == nil {
		return false
	}
	ra.dropLocked(oldestKey, oldest)
	return true
}

// --- retransmit buffer ---

// fragSender is one local peer's send-side fragment state: a monotonically
// increasing stream id and a FIFO-bounded buffer of the fragment datagrams
// of recent streams, kept so NACKs can be served without re-encoding (or
// re-reading) the original message.
type fragSender struct {
	mu       sync.Mutex
	next     uint64
	streams  map[uint64]*sentStream
	order    []uint64
	bytes    int
	maxBytes int
}

type sentStream struct {
	to     int
	dgrams [][]byte
	bytes  int
}

func newFragSender(maxBytes int) *fragSender {
	return &fragSender{streams: map[uint64]*sentStream{}, maxBytes: maxBytes}
}

// register stores a stream's encoded fragment datagrams for NACK service,
// evicting oldest streams past the byte bound, and returns the stream id
// the datagrams were built against (the caller allocated it via nextID).
func (fs *fragSender) register(stream uint64, to int, dgrams [][]byte) {
	bytes := 0
	for _, d := range dgrams {
		bytes += len(d)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.streams[stream] = &sentStream{to: to, dgrams: dgrams, bytes: bytes}
	fs.order = append(fs.order, stream)
	fs.bytes += bytes
	for fs.bytes > fs.maxBytes && len(fs.order) > 1 {
		old := fs.order[0]
		fs.order = fs.order[1:]
		if st, ok := fs.streams[old]; ok {
			fs.bytes -= st.bytes
			delete(fs.streams, old)
		}
	}
}

// nextID allocates the next stream id.
func (fs *fragSender) nextID() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.next++
	return fs.next
}

// lookup returns the datagrams of a stream if it is still buffered and was
// addressed to `to` — a NACK from anyone else is ignored.
func (fs *fragSender) lookup(stream uint64, to int) [][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, ok := fs.streams[stream]
	if !ok || st.to != to {
		return nil
	}
	return st.dgrams
}

// --- pacing ---

// packet is one frame queued for a paced write. buf, when non-nil, is the
// pooled buffer backing b: the pacer takes ownership on submit and returns
// it to the pool once the bytes are written, coalesced, or dropped.
// Fragment datagrams travel with buf == nil because the retransmit buffer
// retains them for NACK service. dst is the destination address-group id
// used as the coalescing key; -1 means never coalesce.
type packet struct {
	b   []byte
	buf *wire.Buffer
	to  netip.AddrPort
	dst int
}

// pendTrain is a coalesced datagram under construction for one remote
// socket: the frameTrain kind byte followed by length-prefixed frames.
type pendTrain struct {
	buf    *wire.Buffer
	to     netip.AddrPort
	frames int
}

// pacerCounters are the runtime-owned counters a pacer feeds.
type pacerCounters struct {
	dropped     *atomic.Uint64
	datagrams   *atomic.Uint64
	trains      *atomic.Uint64
	trainFrames *atomic.Uint64
}

// pacerOptions tunes one paced socket writer.
type pacerOptions struct {
	rate     float64 // bytes per second; 0 = unpaced
	burst    float64
	loss     float64
	seed     int64
	coalesce bool
	delay    time.Duration // max time a frame waits in a pending train
	mtu      int
}

// pacer is one shared socket's single writer: every outgoing frame of
// every peer on the socket — messages, fragments, probes, NACKs — is
// submitted to its queue and written by one goroutine under a token
// bucket, so a multi-fragment install drains at the configured rate
// instead of bursting into the first full queue. Submission never blocks;
// a full queue drops the frame (the loss path NACK repair and
// reconciliation already handle). The pacer also owns the simulated-loss
// roll — rolled per frame before coalescing, giving tests a precise
// every-frame loss point — and, when coalescing is on, batches small
// frames bound for the same remote socket into one frameTrain datagram,
// flushed when the train would exceed the MTU, when the delay timer
// fires, or before a pass-through write to the same destination (so
// per-destination ordering holds).
//
// Timestamps (transmit stamps, echo holds) are taken when a frame is
// built, so time spent queued or pending here counts toward the RTT the
// far side measures. That is deliberate: pacer queueing is genuine path
// delay, the same congestion any real bottleneck adds, and the RTT EWMA
// smooths the transient inflation a bulk transfer causes. Consumers
// wanting uncongested floors should probe when idle (ProbeAll/Gossip
// already do), ideally with coalescing off.
type pacer struct {
	conn *net.UDPConn
	opt  pacerOptions
	rng  *rand.Rand // owned by the drain goroutine
	ch   chan packet
	done chan struct{}
	ct   pacerCounters

	// loss is the live datagram-loss probability (float64 bits), seeded
	// from opt.loss and swappable mid-run via setLoss — how a chaos
	// schedule's loss ramp reaches a running socket.
	loss atomic.Uint64

	// Drain-goroutine state: the token bucket and the pending trains.
	tokens  float64
	last    time.Time
	pending map[int]*pendTrain // by destination address-group id
	live    int                // pending trains holding frames
	timer   *time.Timer
	timerC  <-chan time.Time // nil when coalescing is off
	armed   bool
}

// pacerQueue bounds the frames queued behind a paced socket.
const pacerQueue = 8192

func newPacer(conn *net.UDPConn, opt pacerOptions, ct pacerCounters) *pacer {
	p := &pacer{
		conn: conn,
		opt:  opt,
		rng:  rand.New(rand.NewSource(opt.seed)),
		ch:   make(chan packet, pacerQueue),
		done: make(chan struct{}),
		ct:   ct,
	}
	p.loss.Store(math.Float64bits(opt.loss))
	if opt.coalesce {
		p.pending = map[int]*pendTrain{}
		p.timer = time.NewTimer(time.Hour)
		if !p.timer.Stop() {
			<-p.timer.C
		}
		p.timerC = p.timer.C
	}
	return p
}

// submit queues one frame; it reports false (and counts a drop, releasing
// the pooled buffer) when the queue is full.
func (p *pacer) submit(b []byte, buf *wire.Buffer, to netip.AddrPort, dst int) bool {
	select {
	case p.ch <- packet{b: b, buf: buf, to: to, dst: dst}:
		return true
	default:
		p.ct.dropped.Add(1)
		wire.PutBuffer(buf)
		return false
	}
}

// loop drains the queue until the pacer is stopped.
func (p *pacer) loop() {
	p.tokens = p.opt.burst
	p.last = time.Now()
	for {
		select {
		case <-p.done:
			return
		case <-p.timerC:
			p.armed = false
			p.flushAll()
		case pkt := <-p.ch:
			p.handle(pkt)
		}
	}
}

// handle disposes of one submitted frame: loss roll, then either append it
// to the destination's pending train or write it through.
// setLoss swaps the loss probability; the drain goroutine sees it on its
// next frame.
func (p *pacer) setLoss(v float64) { p.loss.Store(math.Float64bits(v)) }

func (p *pacer) handle(pkt packet) {
	if loss := math.Float64frombits(p.loss.Load()); loss > 0 && p.rng.Float64() < loss {
		p.ct.dropped.Add(1)
		wire.PutBuffer(pkt.buf)
		return
	}
	if p.pending != nil && pkt.dst >= 0 && 1+trainItem(len(pkt.b)) <= p.opt.mtu {
		p.appendTrain(pkt)
		return
	}
	// Pass-through: flush any train pending for the same destination first
	// so frames to one remote socket are written in submission order.
	if p.pending != nil {
		if t := p.pending[pkt.dst]; t != nil && t.frames > 0 {
			p.flushTrain(t)
		}
	}
	p.write(pkt.b, pkt.to)
	wire.PutBuffer(pkt.buf)
}

// appendTrain adds a frame to its destination's pending train, flushing
// the train first when the frame would push it past the MTU.
func (p *pacer) appendTrain(pkt packet) {
	t := p.pending[pkt.dst]
	if t == nil {
		t = &pendTrain{} // one map entry per destination, reused forever
		p.pending[pkt.dst] = t
	}
	if t.frames > 0 && t.buf.Len()+trainItem(len(pkt.b)) > p.opt.mtu {
		p.flushTrain(t)
	}
	if t.frames == 0 {
		t.buf = wire.GetBuffer()
		t.buf.PutByte(frameTrain)
		t.to = pkt.to
		p.live++
		if !p.armed {
			p.timer.Reset(p.opt.delay)
			p.armed = true
		}
	}
	t.buf.PutBytes(pkt.b)
	t.frames++
	wire.PutBuffer(pkt.buf)
}

// flushAll writes out every pending train (the delay timer fired).
func (p *pacer) flushAll() {
	if p.live == 0 {
		return
	}
	for _, t := range p.pending {
		if t.frames > 0 {
			p.flushTrain(t)
		}
	}
}

// flushTrain writes one pending train. A train holding a single frame is
// unwrapped to the bare frame — the train framing would cost bytes and a
// decode step for nothing.
func (p *pacer) flushTrain(t *pendTrain) {
	b := t.buf.Bytes()
	if t.frames == 1 {
		_, l := binary.Uvarint(b[1:])
		p.write(b[1+l:], t.to)
	} else {
		p.write(b, t.to)
		p.ct.trains.Add(1)
		p.ct.trainFrames.Add(uint64(t.frames))
	}
	wire.PutBuffer(t.buf)
	t.buf, t.to, t.frames = nil, netip.AddrPort{}, 0
	p.live--
}

// trainItem is the train-datagram cost of an n-byte frame: the frame plus
// its uvarint length prefix.
func trainItem(n int) int {
	l := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		l++
	}
	return n + l
}

// write performs the token-bucket wait and the socket write. Token refill
// happens lazily per datagram; waits are sliced so shutdown is never held
// hostage by a low rate.
func (p *pacer) write(b []byte, to netip.AddrPort) {
	if p.opt.rate > 0 {
		need := float64(len(b))
		if need > p.opt.burst {
			need = p.opt.burst // oversized datagrams cost at most one full bucket
		}
		for {
			now := time.Now()
			p.tokens += now.Sub(p.last).Seconds() * p.opt.rate
			p.last = now
			if p.tokens > p.opt.burst {
				p.tokens = p.opt.burst
			}
			if p.tokens >= need {
				break
			}
			wait := time.Duration((need - p.tokens) / p.opt.rate * float64(time.Second))
			if wait > 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			select {
			case <-p.done:
				return
			case <-time.After(wait):
			}
		}
		p.tokens -= need
	}
	// WriteToUDPAddrPort is the allocation-free datagram send — WriteToUDP's
	// sockaddr conversion allocates per call, which the 0 allocs/op send
	// path cannot afford.
	_, _ = p.conn.WriteToUDPAddrPort(b, to)
	p.ct.datagrams.Add(1)
}

// stop ends the drain goroutine; queued frames and pending trains are
// abandoned.
func (p *pacer) stop() { close(p.done) }
