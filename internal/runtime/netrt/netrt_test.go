package netrt_test

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/plan"
	"repro/internal/runtime"
	"repro/internal/runtime/livert"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
	"repro/internal/vivaldi"
	"repro/internal/wire"
)

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// Messages must cross real loopback sockets: a bare message Sent from one
// peer arrives at another decoded, with the datagram length as its size.
func TestLoopbackSendReceive(t *testing.T) {
	rts, dir, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := rts[0]
	defer rt.Shutdown()
	if len(dir) != 2 || rt.NumPeers() != 2 || !rt.Local(0) || !rt.Local(1) {
		t.Fatalf("group shape wrong: dir=%v local0=%v local1=%v", dir, rt.Local(0), rt.Local(1))
	}

	var mu sync.Mutex
	var got []any
	var sizes []int
	rt.Handle(1, func(from int, payload any, size int) {
		mu.Lock()
		got = append(got, payload)
		sizes = append(sizes, size)
		mu.Unlock()
	})
	if !rt.Send(0, 1, runtime.ClassControl, 0, wire.Heartbeat{Seq: 7, Hash: 99}) {
		t.Fatal("send refused")
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	hb, ok := got[0].(wire.Heartbeat)
	if !ok || hb.Seq != 7 || hb.Hash != 99 {
		t.Fatalf("received %#v", got[0])
	}
	if sizes[0] <= 0 {
		t.Fatalf("size %d", sizes[0])
	}
	mu.Unlock()

	// A fabric-style Frame payload transmits its pre-encoded bytes.
	env := &wire.Envelope{S: tuple.Summary{Query: "q", Value: float64(3), Count: 1, Levels: []int16{0}}}
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, env); err != nil {
		t.Fatal(err)
	}
	rt.Send(0, 1, runtime.ClassData, w.Len(), &runtime.Frame{Payload: env, Bytes: w.Bytes()})
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	got2, ok := got[1].(*wire.Envelope)
	mu.Unlock()
	if !ok || got2.S.Query != "q" || got2.S.Value.(float64) != 3 {
		t.Fatalf("envelope arrived as %#v", got[1])
	}
}

// With PeersPerSocket several local peers share one socket; frames must
// still demux to the peer they address, in both directions, within a
// socket and across sockets.
func TestSharedSocketMultiplexedDelivery(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}, {2, 3}}, netrt.Options{Seed: 5, PeersPerSocket: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rts[0].Shutdown()
	defer rts[1].Shutdown()
	for _, rt := range rts {
		if st := rt.NetStats(); st.Sockets != 1 {
			t.Fatalf("expected 1 shared socket for 2 peers, got %d", st.Sockets)
		}
	}
	var mu sync.Mutex
	got := map[int][]int{} // dst -> srcs seen
	for _, rt := range rts {
		for _, p := range rt.LocalPeers() {
			p := p
			rt.Handle(p, func(from int, payload any, size int) {
				mu.Lock()
				got[p] = append(got[p], from)
				mu.Unlock()
			})
		}
	}
	// Same socket (0->1), across runtimes to both peers of one socket
	// (0->2, 1->3), and back (3->0).
	sends := [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 0}}
	for i, s := range sends {
		from, to := s[0], s[1]
		rt := rts[0]
		if from >= 2 {
			rt = rts[1]
		}
		if !rt.Send(from, to, runtime.ClassControl, 0, wire.Heartbeat{Seq: uint64(i + 1)}) {
			t.Fatalf("send %d->%d refused", from, to)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, srcs := range got {
			n += len(srcs)
		}
		return n == len(sends)
	})
	mu.Lock()
	defer mu.Unlock()
	for _, s := range sends {
		found := false
		for _, src := range got[s[1]] {
			if src == s[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("frame %d->%d not delivered to its peer: got %v", s[0], s[1], got)
		}
	}
}

// With Coalesce on, a burst of small frames to one remote socket must
// travel in far fewer datagrams than frames — the train layer working —
// while every frame still arrives.
func TestCoalescedSmallFramesShareDatagrams(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 9, PeersPerSocket: 2, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	rt := rts[0]
	defer rt.Shutdown()
	const frames = 200
	var delivered atomic.Uint64
	rt.Handle(1, func(from int, payload any, size int) { delivered.Add(1) })
	for i := 0; i < frames; i++ {
		if !rt.Send(0, 1, runtime.ClassControl, 0, wire.Heartbeat{Seq: uint64(i + 1)}) {
			t.Fatalf("send %d refused", i)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return delivered.Load() == frames })
	st := rt.NetStats()
	if st.Trains == 0 {
		t.Fatal("no coalesced trains were written")
	}
	if st.TrainFrames <= st.Trains {
		t.Fatalf("trains carried no extra frames: %+v", st)
	}
	if st.Datagrams >= frames {
		t.Fatalf("coalescing did not reduce datagrams: %d datagrams for %d frames", st.Datagrams, frames)
	}
}

// New must multiplex peers whose directory entries share an address onto
// one socket, and must reject a directory where an address mixes local
// and non-local peers.
func TestNewSharedAddressDirectory(t *testing.T) {
	reserve := func() string {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addr := c.LocalAddr().String()
		c.Close()
		return addr
	}
	a, b := reserve(), reserve()
	dir := []string{a, a, b, b}
	rt, err := netrt.New(dir, []int{0, 1, 2, 3}, netrt.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if st := rt.NetStats(); st.Sockets != 2 {
		t.Fatalf("4 peers on 2 addresses bound %d sockets", st.Sockets)
	}
	var gotFrom atomic.Int64
	gotFrom.Store(-1)
	rt.Handle(3, func(from int, payload any, size int) { gotFrom.Store(int64(from)) })
	if !rt.Send(0, 3, runtime.ClassControl, 0, wire.Heartbeat{Seq: 1}) {
		t.Fatal("send refused")
	}
	waitFor(t, 5*time.Second, func() bool { return gotFrom.Load() == 0 })

	if _, err := netrt.New([]string{a, a}, []int{0}, netrt.Options{Seed: 12}); err == nil {
		t.Fatal("address mixing local and non-local peers accepted")
	}
}

// SetDown must gate both directions locally, and Shutdown must be clean
// and idempotent.
func TestDownAndShutdown(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt := rts[0]
	var delivered sync.Map
	rt.Handle(1, func(from int, payload any, size int) { delivered.Store(time.Now(), payload) })

	rt.SetDown(1, true)
	if !rt.Down(1) {
		t.Fatal("down flag lost")
	}
	if rt.Send(0, 1, runtime.ClassData, 0, wire.Heartbeat{Seq: 1}) {
		t.Fatal("send to down peer accepted")
	}
	rt.SetDown(0, true)
	rt.SetDown(1, false)
	if rt.Send(0, 1, runtime.ClassData, 0, wire.Heartbeat{Seq: 2}) {
		t.Fatal("send from down peer accepted")
	}
	rt.SetDown(0, false)
	rt.Shutdown()
	if rt.Send(0, 1, runtime.ClassData, 0, wire.Heartbeat{Seq: 3}) {
		t.Fatal("send accepted after shutdown")
	}
	if rt.Exec(0, func() {}) {
		t.Fatal("Exec accepted after shutdown")
	}
	rt.Shutdown() // idempotent
}

// ProbeAll must produce measured RTTs across runtimes (the directory pairs
// a coordinator can feed to Vivaldi), and message echoes must measure
// passively once traffic flows both ways.
func TestRTTMeasurement(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0}, {1}}, netrt.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := rts[0], rts[1]
	defer a.Shutdown()
	defer b.Shutdown()

	if _, ok := a.Measured(0, 1); ok {
		t.Fatal("measurement before any traffic")
	}
	if a.Latency(0, 1) != time.Millisecond {
		t.Fatalf("default latency = %v", a.Latency(0, 1))
	}
	a.ProbeAll(3, 20*time.Millisecond)
	d, ok := a.Measured(0, 1)
	if !ok {
		t.Fatal("ProbeAll produced no measurement")
	}
	if d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("implausible loopback latency %v", d)
	}
	if a.Latency(0, 1) != d || a.Latency(1, 0) != d {
		t.Fatalf("Latency does not serve the measurement: %v vs %v", a.Latency(0, 1), d)
	}

	// Passive echo: traffic b->a then a->b gives b a measurement too.
	b.Handle(1, func(int, any, int) {})
	a.Handle(0, func(int, any, int) {})
	for i := 0; i < 5; i++ {
		b.Send(1, 0, runtime.ClassControl, 0, wire.Heartbeat{Seq: uint64(i + 1)})
		time.Sleep(5 * time.Millisecond)
		a.Send(0, 1, runtime.ClassControl, 0, wire.Heartbeat{Seq: uint64(i + 1)})
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, 5*time.Second, func() bool {
		_, ok := b.Measured(1, 0)
		return ok
	})
}

// runFederations starts sensors on every federation, watches the first
// federation's best root completeness until it reaches target (or 12s
// pass), shuts everything down, and returns the best count seen.
func runFederations(feds []*federation.Federation, target int, shutdown func()) int {
	watch := feds[0].WatchCompleteness("")
	defer watch.Close()
	for i, fed := range feds {
		fed.StartSensors(500*time.Millisecond, func(peer int) tuple.Raw {
			return tuple.Raw{Vals: []float64{1}}
		}, rand.New(rand.NewSource(int64(100+i))))
	}
	deadline := time.Now().Add(12 * time.Second)
	for time.Now().Before(deadline) && watch.Best() != target {
		time.Sleep(100 * time.Millisecond)
	}
	shutdown()
	return watch.Best()
}

// The acceptance test: several netrt runtimes in one process — each
// hosting a peer range, every message crossing the kernel's UDP stack on
// loopback — run the default MSL count query end to end. The coordinator
// process plans and installs; the workers' operators arrive over the wire.
// Result completeness must reach the live-node count and match a livert
// run of the same program.
func TestNetFederationMatchesLive(t *testing.T) {
	const peers = 12
	prog, err := msl.Parse("query peers as count() from sensors window time 1s slide 1s trees 4 bf 16")
	if err != nil {
		t.Fatal(err)
	}

	// --- netrt: three "processes" over loopback UDP ---
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}, netrt.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Workers first: their handlers must exist before the coordinator's
	// install multicast lands.
	w1, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}
	rts[0].ProbeAll(3, 20*time.Millisecond) // latency-aware planning input
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	netBest := runFederations([]*federation.Federation{coord, w1, w2}, peers, func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	})
	sent, delivered, _ := rts[1].Stats()
	if sent == 0 || delivered == 0 {
		t.Fatalf("worker runtime moved no datagrams: sent=%d delivered=%d", sent, delivered)
	}

	// --- livert: the same program in-process ---
	liveBest := livertBaseline(t, prog, peers)

	if netBest != liveBest {
		t.Fatalf("netrt completeness %d != livert completeness %d", netBest, liveBest)
	}
}

// The multiplexed data path must be a drop-in: the same federation as
// TestNetFederationMatchesLive, but with peers sharing sockets and
// coalescing on, must still reach full completeness.
func TestMultiplexedCoalescedFederation(t *testing.T) {
	const peers = 12
	prog, err := msl.Parse("query peers as count() from sensors window time 1s slide 1s trees 4 bf 16")
	if err != nil {
		t.Fatal(err)
	}
	rts, _, err := netrt.NewGroup(
		[][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}},
		netrt.Options{Seed: 42, PeersPerSocket: 2, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range rts {
		if st := rt.NetStats(); st.Sockets != 2 {
			t.Fatalf("4 peers at 2 per socket bound %d sockets", st.Sockets)
		}
	}
	w1, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}
	rts[0].ProbeAll(3, 20*time.Millisecond)
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	best := runFederations([]*federation.Federation{coord, w1, w2}, peers, func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	})
	if best != peers {
		t.Fatalf("multiplexed+coalesced completeness %d of %d", best, peers)
	}
}

// The tentpole acceptance: a 1,000-peer federation on one machine over
// real sockets — two runtime "processes" of 500 peers each, 125 peers per
// socket, coalescing on — joins, installs, and reaches full completeness,
// with coalescing holding the datagram count under the frame count. No
// probing or gossip runs (O(n²) datagrams at this scale); planning falls
// back to the coordinator-local embedding over default latencies.
func TestThousandPeerMultiplexedFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-peer federation run skipped in -short mode")
	}
	const peers = 1000
	prog, err := msl.Parse("query peers as count() from sensors window time 2s slide 2s trees 2 bf 32")
	if err != nil {
		t.Fatal(err)
	}
	ranges := make([][]int, 2)
	for p := 0; p < peers; p++ {
		ranges[p/(peers/2)] = append(ranges[p/(peers/2)], p)
	}
	rts, _, err := netrt.NewGroup(ranges, netrt.Options{
		Seed:           1009,
		PeersPerSocket: 125,
		Coalesce:       true,
		ReadBuffer:     4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := rts[0].NetStats(); st.Sockets != 4 {
		t.Fatalf("500 peers at 125 per socket bound %d sockets", st.Sockets)
	}
	worker, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	best := 0
	coord.Fab.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		if r.Count > best {
			best = r.Count
		}
		mu.Unlock()
	})
	for i, fed := range []*federation.Federation{coord, worker} {
		fed.StartSensors(time.Second, func(peer int) tuple.Raw {
			return tuple.Raw{Vals: []float64{1}}
		}, rand.New(rand.NewSource(int64(100+i))))
	}
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		b := best
		mu.Unlock()
		if b == peers {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	var sentTotal, datagrams, trains uint64
	for _, rt := range rts {
		sent, _, _ := rt.Stats()
		sentTotal += sent
		st := rt.NetStats()
		datagrams += st.Datagrams
		trains += st.Trains
	}
	for _, rt := range rts {
		rt.Shutdown()
	}
	mu.Lock()
	b := best
	mu.Unlock()
	if b != peers {
		t.Fatalf("1,000-peer federation reached completeness %d of %d", b, peers)
	}
	if trains == 0 {
		t.Fatal("no coalesced trains at 1,000-peer scale")
	}
	if datagrams >= sentTotal {
		t.Fatalf("coalescing ineffective: %d datagrams for %d frames", datagrams, sentTotal)
	}
}

// livertBaseline runs the program on the in-process live runtime and
// returns the completeness it reaches — the baseline socket runs are held
// to.
func livertBaseline(t *testing.T, prog *msl.Program, peers int) int {
	t.Helper()
	lrt := livert.New(peers, livert.Options{Seed: 42, MinDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond})
	lfed, err := federation.NewRuntime(lrt, prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	best := runFederations([]*federation.Federation{lfed}, peers, lrt.Shutdown)
	if best != peers {
		t.Fatalf("livert run reached completeness %d of %d", best, peers)
	}
	return best
}

// The Vivaldi tentpole acceptance: a multi-runtime federation plans its
// trees from gossiped coordinates with no ProbeAll anywhere on the
// planning path. Every "process" gossips concurrently — worker peers embed
// themselves from RTTs they measure, which the coordinator cannot — then
// the coordinator's view must cover all peers, the embedding must predict
// measured latency within tolerance, planning must consume the gossiped
// coordinates, and the run must reach the livert completeness baseline.
func TestVivaldiFederationPlansFromGossipedCoords(t *testing.T) {
	const peers = 12
	prog, err := msl.Parse("query peers as count() from sensors window time 1s slide 1s trees 4 bf 16")
	if err != nil {
		t.Fatal(err)
	}
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}, netrt.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Workers before any traffic, so their handlers exist when the install
	// multicast lands.
	w1, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}

	// Decentralized Vivaldi: all processes gossip concurrently, ten rounds
	// each (the prototype let Vivaldi run "for at least ten rounds before
	// interconnecting operators").
	var wg sync.WaitGroup
	for _, rt := range rts {
		wg.Add(1)
		go func(rt *netrt.Runtime) {
			defer wg.Done()
			rt.Gossip(10, 0, 20*time.Millisecond)
		}(rt)
	}
	wg.Wait()

	_, _, known := rts[0].Coordinates()
	for p, k := range known {
		if !k {
			t.Fatalf("coordinator missing peer %d's coordinate after gossip", p)
		}
	}
	med, pairs := rts[0].CoordError()
	if pairs == 0 {
		t.Fatal("no (coordinate, measurement) pairs to judge convergence")
	}
	if med > 2.0 {
		t.Fatalf("median |coord dist - measured| = %.3fms over %d pairs; embedding did not converge", med, pairs)
	}

	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !coord.PlannedFromCoords {
		t.Fatal("planning fell back to the coordinator-local embedding")
	}
	if _, ok := coord.Model.(plan.CoordModel); !ok {
		t.Fatalf("planning model is %T, want plan.CoordModel", coord.Model)
	}

	netBest := runFederations([]*federation.Federation{coord, w1, w2}, peers, func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	})
	if liveBest := livertBaseline(t, prog, peers); netBest != liveBest {
		t.Fatalf("gossip-planned completeness %d != livert completeness %d", netBest, liveBest)
	}
}

// Heartbeats piggyback the sender's coordinate, so once trees are wired a
// child keeps updating its Vivaldi node from its parent's beats with no
// probe traffic at all: worker-side coordinates must keep being touched
// after gossip stops.
func TestHeartbeatsCarryCoordinates(t *testing.T) {
	const peers = 6
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2}, {3, 4, 5}}, netrt.Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	_ = worker
	prog, err := msl.Parse("query peers as count() from sensors window time 500ms slide 500ms trees 2 bf 3")
	if err != nil {
		t.Fatal(err)
	}
	// One gossip round seeds remote coordinates; afterwards only protocol
	// traffic (heartbeats with HeartbeatPeriod 2s, envelopes, recon) flows.
	for _, rt := range rts {
		rt.Gossip(1, 0, 20*time.Millisecond)
	}
	if _, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	before := make([]vivaldi.Coordinate, peers)
	cc, _, _ := rts[1].Coordinates()
	copy(before, cc)
	// Heartbeats flow every 2s once wiring lands; wait long enough for a
	// few beats, then require some worker-local coordinate to have moved —
	// updates driven purely by coordinate-carrying protocol traffic.
	deadline := time.Now().Add(10 * time.Second)
	moved := false
	for time.Now().Before(deadline) && !moved {
		time.Sleep(250 * time.Millisecond)
		now, _, _ := rts[1].Coordinates()
		for _, p := range []int{3, 4, 5} {
			if now[p].Dist(before[p]) > 0 {
				moved = true
				break
			}
		}
	}
	for _, rt := range rts {
		rt.Shutdown()
	}
	if !moved {
		t.Fatal("worker coordinates never moved after gossip stopped; heartbeat piggyback inert")
	}
}

// Worker peers adopted over the wire must end up installed and wired: the
// install multicast and the topology service both work across sockets.
func TestInstallCrossesSockets(t *testing.T) {
	const peers = 6
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2}, {3, 4, 5}}, netrt.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := msl.Parse("query peers as sum() from sensors window time 500ms slide 500ms trees 2 bf 3")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Give the install multicast (and a topology fetch, if a chunk was
	// lost) time to land; peer-state inspection is quiescent-only, so the
	// checks run after shutdown.
	time.Sleep(2 * time.Second)
	for _, rt := range rts {
		rt.Shutdown()
	}
	// Post-shutdown state inspection is safe.
	if got := coord.Fab.InstalledCount("peers"); got != 3 {
		t.Fatalf("coordinator hosts %d of its 3 peers' operators", got)
	}
	if got := worker.Fab.InstalledCount("peers"); got != 3 {
		t.Fatalf("worker hosts %d of its 3 peers' operators", got)
	}
	if got := worker.Fab.WiredCount("peers"); got != 3 {
		t.Fatalf("worker wired %d of its 3 operators", got)
	}
}

// A gossiped coordinate whose dimensionality differs from the
// federation's embedding (a corrupt or hostile datagram) must be dropped
// before caching: caching it would panic distance computations in
// CoordError and coordinate-based planning.
func TestForeignDimensionCoordinateRejected(t *testing.T) {
	rts, dir, err := netrt.NewGroup([][]int{{0}, {1}}, netrt.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rt := rts[0]
	defer rt.Shutdown()
	defer rts[1].Shutdown()

	attacker, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	dst, err := net.ResolveUDPAddr("udp", dir[0])
	if err != nil {
		t.Fatal(err)
	}
	// A ping claiming to be peer 1, carrying a 2-dimensional coordinate
	// (the federation embeds in 3 dimensions).
	var w wire.Buffer
	w.PutByte(2) // framePing
	w.PutUvarint(1)
	w.PutUvarint(0)
	w.PutVarint(12345)
	w.PutUvarint(2)
	w.PutF64(1.5)
	w.PutF64(2.5)
	w.PutF64(0.3) // error estimate
	if _, err := attacker.WriteToUDP(w.Bytes(), dst); err != nil {
		t.Fatal(err)
	}
	// Give the frame time to land, then require the malformed coordinate
	// was not cached and distance computations still work.
	time.Sleep(200 * time.Millisecond)
	_, _, known := rt.Coordinates()
	if known[1] {
		t.Fatal("foreign-dimension coordinate was cached")
	}
	rt.ProbeAll(1, 20*time.Millisecond)
	_, _ = rt.CoordError() // must not panic
}
