package netrt_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/runtime"
	"repro/internal/runtime/livert"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
	"repro/internal/wire"
)

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// Messages must cross real loopback sockets: a bare message Sent from one
// peer arrives at another decoded, with the datagram length as its size.
func TestLoopbackSendReceive(t *testing.T) {
	rts, dir, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := rts[0]
	defer rt.Shutdown()
	if len(dir) != 2 || rt.NumPeers() != 2 || !rt.Local(0) || !rt.Local(1) {
		t.Fatalf("group shape wrong: dir=%v local0=%v local1=%v", dir, rt.Local(0), rt.Local(1))
	}

	var mu sync.Mutex
	var got []any
	var sizes []int
	rt.Handle(1, func(from int, payload any, size int) {
		mu.Lock()
		got = append(got, payload)
		sizes = append(sizes, size)
		mu.Unlock()
	})
	if !rt.Send(0, 1, runtime.ClassControl, 0, wire.Heartbeat{Seq: 7, Hash: 99}) {
		t.Fatal("send refused")
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	hb, ok := got[0].(wire.Heartbeat)
	if !ok || hb.Seq != 7 || hb.Hash != 99 {
		t.Fatalf("received %#v", got[0])
	}
	if sizes[0] <= 0 {
		t.Fatalf("size %d", sizes[0])
	}
	mu.Unlock()

	// A fabric-style Frame payload transmits its pre-encoded bytes.
	env := &wire.Envelope{S: tuple.Summary{Query: "q", Value: float64(3), Count: 1, Levels: []int16{0}}}
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, env); err != nil {
		t.Fatal(err)
	}
	rt.Send(0, 1, runtime.ClassData, w.Len(), &runtime.Frame{Payload: env, Bytes: w.Bytes()})
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	got2, ok := got[1].(*wire.Envelope)
	mu.Unlock()
	if !ok || got2.S.Query != "q" || got2.S.Value.(float64) != 3 {
		t.Fatalf("envelope arrived as %#v", got[1])
	}
}

// SetDown must gate both directions locally, and Shutdown must be clean
// and idempotent.
func TestDownAndShutdown(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}}, netrt.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt := rts[0]
	var delivered sync.Map
	rt.Handle(1, func(from int, payload any, size int) { delivered.Store(time.Now(), payload) })

	rt.SetDown(1, true)
	if !rt.Down(1) {
		t.Fatal("down flag lost")
	}
	if rt.Send(0, 1, runtime.ClassData, 0, wire.Heartbeat{Seq: 1}) {
		t.Fatal("send to down peer accepted")
	}
	rt.SetDown(0, true)
	rt.SetDown(1, false)
	if rt.Send(0, 1, runtime.ClassData, 0, wire.Heartbeat{Seq: 2}) {
		t.Fatal("send from down peer accepted")
	}
	rt.SetDown(0, false)
	rt.Shutdown()
	if rt.Send(0, 1, runtime.ClassData, 0, wire.Heartbeat{Seq: 3}) {
		t.Fatal("send accepted after shutdown")
	}
	if rt.Exec(0, func() {}) {
		t.Fatal("Exec accepted after shutdown")
	}
	rt.Shutdown() // idempotent
}

// ProbeAll must produce measured RTTs across runtimes (the directory pairs
// a coordinator can feed to Vivaldi), and message echoes must measure
// passively once traffic flows both ways.
func TestRTTMeasurement(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0}, {1}}, netrt.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := rts[0], rts[1]
	defer a.Shutdown()
	defer b.Shutdown()

	if _, ok := a.Measured(0, 1); ok {
		t.Fatal("measurement before any traffic")
	}
	if a.Latency(0, 1) != time.Millisecond {
		t.Fatalf("default latency = %v", a.Latency(0, 1))
	}
	a.ProbeAll(3, 20*time.Millisecond)
	d, ok := a.Measured(0, 1)
	if !ok {
		t.Fatal("ProbeAll produced no measurement")
	}
	if d <= 0 || d > 100*time.Millisecond {
		t.Fatalf("implausible loopback latency %v", d)
	}
	if a.Latency(0, 1) != d || a.Latency(1, 0) != d {
		t.Fatalf("Latency does not serve the measurement: %v vs %v", a.Latency(0, 1), d)
	}

	// Passive echo: traffic b->a then a->b gives b a measurement too.
	b.Handle(1, func(int, any, int) {})
	a.Handle(0, func(int, any, int) {})
	for i := 0; i < 5; i++ {
		b.Send(1, 0, runtime.ClassControl, 0, wire.Heartbeat{Seq: uint64(i + 1)})
		time.Sleep(5 * time.Millisecond)
		a.Send(0, 1, runtime.ClassControl, 0, wire.Heartbeat{Seq: uint64(i + 1)})
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, 5*time.Second, func() bool {
		_, ok := b.Measured(1, 0)
		return ok
	})
}

// The acceptance test: several netrt runtimes in one process — each
// hosting a peer range, every message crossing the kernel's UDP stack on
// loopback — run the default MSL count query end to end. The coordinator
// process plans and installs; the workers' operators arrive over the wire.
// Result completeness must reach the live-node count and match a livert
// run of the same program.
func TestNetFederationMatchesLive(t *testing.T) {
	const peers = 12
	prog, err := msl.Parse("query peers as count() from sensors window time 1s slide 1s trees 4 bf 16")
	if err != nil {
		t.Fatal(err)
	}

	run := func(feds []*federation.Federation, shutdown func()) int {
		var mu sync.Mutex
		best := 0
		feds[0].Fab.SubscribeAll(func(r mortar.Result) {
			mu.Lock()
			if r.Count > best {
				best = r.Count
			}
			mu.Unlock()
		})
		for i, fed := range feds {
			fed.StartSensors(500*time.Millisecond, func(peer int) tuple.Raw {
				return tuple.Raw{Vals: []float64{1}}
			}, rand.New(rand.NewSource(int64(100+i))))
		}
		deadline := time.Now().Add(12 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			b := best
			mu.Unlock()
			if b == peers {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		shutdown()
		mu.Lock()
		defer mu.Unlock()
		return best
	}

	// --- netrt: three "processes" over loopback UDP ---
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}, netrt.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Workers first: their handlers must exist before the coordinator's
	// install multicast lands.
	w1, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}
	rts[0].ProbeAll(3, 20*time.Millisecond) // latency-aware planning input
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	netBest := run([]*federation.Federation{coord, w1, w2}, func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	})
	sent, delivered, _ := rts[1].Stats()
	if sent == 0 || delivered == 0 {
		t.Fatalf("worker runtime moved no datagrams: sent=%d delivered=%d", sent, delivered)
	}

	// --- livert: the same program in-process ---
	lrt := livert.New(peers, livert.Options{Seed: 42, MinDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond})
	lfed, err := federation.NewRuntime(lrt, prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	liveBest := run([]*federation.Federation{lfed}, lrt.Shutdown)

	if liveBest != peers {
		t.Fatalf("livert run reached completeness %d of %d", liveBest, peers)
	}
	if netBest != liveBest {
		t.Fatalf("netrt completeness %d != livert completeness %d", netBest, liveBest)
	}
}

// Worker peers adopted over the wire must end up installed and wired: the
// install multicast and the topology service both work across sockets.
func TestInstallCrossesSockets(t *testing.T) {
	const peers = 6
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2}, {3, 4, 5}}, netrt.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := msl.Parse("query peers as sum() from sensors window time 500ms slide 500ms trees 2 bf 3")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Give the install multicast (and a topology fetch, if a chunk was
	// lost) time to land; peer-state inspection is quiescent-only, so the
	// checks run after shutdown.
	time.Sleep(2 * time.Second)
	for _, rt := range rts {
		rt.Shutdown()
	}
	// Post-shutdown state inspection is safe.
	if got := coord.Fab.InstalledCount("peers"); got != 3 {
		t.Fatalf("coordinator hosts %d of its 3 peers' operators", got)
	}
	if got := worker.Fab.InstalledCount("peers"); got != 3 {
		t.Fatalf("worker hosts %d of its 3 peers' operators", got)
	}
	if got := worker.Fab.WiredCount("peers"); got != 3 {
		t.Fatalf("worker wired %d of its 3 operators", got)
	}
}
