package netrt_test

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mortar"
	"repro/internal/runtime"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// SplitFragments must partition any payload exactly, and the Reassembler
// must rebuild it from fragments arriving in any order.
func TestSplitReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ra := netrt.NewReassembler(netrt.ReasmOptions{})
	now := time.Now()
	for _, size := range []int{1, 63, 64, 65, 4096, 100_000} {
		payload := make([]byte, size)
		rng.Read(payload)
		frags := netrt.SplitFragments(42, payload, 64)
		perm := rng.Perm(len(frags))
		var got []byte
		for i, pi := range perm {
			msg, err := ra.Add(3, frags[pi], now)
			if err != nil {
				t.Fatal(err)
			}
			if i < len(perm)-1 {
				if msg != nil {
					t.Fatalf("size %d: frame completed after %d of %d fragments", size, i+1, len(frags))
				}
			} else {
				got = msg
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: reassembly mismatch", size)
		}
		if ra.Bytes() != 0 || ra.Streams() != 0 {
			t.Fatalf("size %d: reassembler retains %d bytes / %d streams after completion", size, ra.Bytes(), ra.Streams())
		}
	}
}

// On a shared socket one reassembler serves fragment streams from many
// senders at once, their fragments interleaving arbitrarily. Every stream
// must rebuild exactly (no cross-stream or cross-sender bleed), memory
// must stay within the configured bound throughout, and completion must
// drain the reassembler back to empty.
func TestReassemblerInterleavedSenders(t *testing.T) {
	const (
		senders    = 16
		perSender  = 3 // concurrent streams per sender
		payloadLen = 4096
		fragSize   = 256
	)
	rng := rand.New(rand.NewSource(77))
	maxBytes := senders * perSender * payloadLen * 2
	ra := netrt.NewReassembler(netrt.ReasmOptions{
		MaxMessage: 1 << 20,
		MaxBytes:   maxBytes,
		MaxStreams: senders * perSender,
	})
	type key struct{ src, stream int }
	payloads := map[key][]byte{}
	type step struct {
		src  int
		frag wire.Fragment
	}
	var steps []step
	for src := 0; src < senders; src++ {
		for s := 0; s < perSender; s++ {
			// Distinct per-stream pattern: any cross-stream byte bleed
			// breaks the equality check below.
			payload := make([]byte, payloadLen)
			for i := range payload {
				payload[i] = byte(src*31 + s*7 + i)
			}
			payloads[key{src, s}] = payload
			for _, f := range netrt.SplitFragments(uint64(s), payload, fragSize) {
				steps = append(steps, step{src: src, frag: f})
			}
		}
	}
	rng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
	now := time.Now()
	done := map[key][]byte{}
	for _, st := range steps {
		msg, err := ra.Add(st.src, st.frag, now)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Bytes() > maxBytes {
			t.Fatalf("reassembler holds %d bytes, bound %d", ra.Bytes(), maxBytes)
		}
		if msg != nil {
			done[key{st.src, int(st.frag.Stream)}] = msg
		}
	}
	if len(done) != senders*perSender {
		t.Fatalf("completed %d of %d interleaved streams", len(done), senders*perSender)
	}
	for k, want := range payloads {
		if !bytes.Equal(done[k], want) {
			t.Fatalf("stream %v reassembled corrupted", k)
		}
	}
	if ra.Bytes() != 0 || ra.Streams() != 0 {
		t.Fatalf("reassembler retains %d bytes / %d streams after all completions", ra.Bytes(), ra.Streams())
	}
}

// The reassembler's memory must stay bounded no matter how many partial
// streams a (lossy or hostile) sender opens, and stale streams must be
// evicted back to zero — the bounded-memory acceptance criterion.
func TestReassemblerBoundedAndEvictsStaleStreams(t *testing.T) {
	const (
		maxBytes   = 64 << 10
		maxStreams = 8
	)
	ra := netrt.NewReassembler(netrt.ReasmOptions{
		MaxMessage: 1 << 20,
		MaxBytes:   maxBytes,
		MaxStreams: maxStreams,
		StaleAfter: 100 * time.Millisecond,
		NackDelay:  10 * time.Millisecond,
		MaxNacks:   3,
	})
	base := time.Now()
	payload := make([]byte, 1024)
	// 100 streams from 5 senders, each missing fragment 1 of 4 — none can
	// ever complete.
	for s := 0; s < 100; s++ {
		now := base.Add(time.Duration(s) * time.Millisecond)
		for _, idx := range []uint32{0, 2, 3} {
			f := wire.Fragment{Stream: uint64(s), Index: idx, Count: 4, Payload: payload}
			if _, err := ra.Add(s%5, f, now); err != nil {
				t.Fatal(err)
			}
			if ra.Bytes() > maxBytes {
				t.Fatalf("reassembly memory %d exceeds the %d bound", ra.Bytes(), maxBytes)
			}
			if ra.Streams() > maxStreams {
				t.Fatalf("%d concurrent streams exceed the %d bound", ra.Streams(), maxStreams)
			}
		}
	}
	if ra.Streams() == 0 {
		t.Fatal("no partial streams held at all")
	}
	// Quiet streams ask for repair, naming exactly the missing fragment.
	reqs := ra.Sweep(base.Add(150 * time.Millisecond))
	if len(reqs) == 0 {
		t.Fatal("no NACKs for incomplete streams")
	}
	for _, req := range reqs {
		if len(req.Missing) != 1 || req.Missing[0] != 1 {
			t.Fatalf("stream %d: missing = %v, want [1]", req.Stream, req.Missing)
		}
	}
	// Once stale, everything is evicted and the memory drains to zero.
	ra.Sweep(base.Add(time.Hour))
	if ra.Bytes() != 0 || ra.Streams() != 0 {
		t.Fatalf("stale eviction left %d bytes / %d streams", ra.Bytes(), ra.Streams())
	}
	if _, evicted := ra.Stats(); evicted < 92 {
		t.Fatalf("evicted %d streams, want >= 92", evicted)
	}
}

// The total-bytes bound must hold while existing streams grow, not only
// at stream creation: many tiny streams each swelling toward MaxMessage
// would otherwise pin MaxStreams×MaxMessage of memory.
func TestReassemblerBoundsStreamGrowth(t *testing.T) {
	const maxBytes = 2 << 20
	ra := netrt.NewReassembler(netrt.ReasmOptions{MaxMessage: 1 << 20, MaxBytes: maxBytes, MaxStreams: 64})
	now := time.Now()
	payload := make([]byte, 32<<10)
	// 16 streams open with a one-byte fragment each, then grow round-robin
	// toward MaxMessage without ever completing (index 31 never arrives).
	for s := 0; s < 16; s++ {
		f := wire.Fragment{Stream: uint64(s), Index: 0, Count: 32, Payload: []byte{1}}
		if _, err := ra.Add(s%4, f, now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 31; i++ {
		for s := 0; s < 16; s++ {
			f := wire.Fragment{Stream: uint64(s), Index: uint32(i), Count: 32, Payload: payload}
			if _, err := ra.Add(s%4, f, now.Add(time.Duration(i)*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			if ra.Bytes() > maxBytes {
				t.Fatalf("stream growth pushed reassembly memory to %d, over the %d bound", ra.Bytes(), maxBytes)
			}
		}
	}
	if _, evicted := ra.Stats(); evicted == 0 {
		t.Fatal("15 MB of growth against a 2 MB bound evicted nothing")
	}
}

// A forged fragment count must be rejected before it can size a huge
// reassembly buffer.
func TestReassemblerRejectsForgedCount(t *testing.T) {
	ra := netrt.NewReassembler(netrt.ReasmOptions{MaxMessage: 1 << 16})
	f := wire.Fragment{Stream: 1, Index: 0, Count: 1 << 30, Payload: []byte("x")}
	if _, err := ra.Add(0, f, time.Now()); err == nil {
		t.Fatal("forged count accepted")
	}
	if ra.Streams() != 0 {
		t.Fatal("forged stream retained")
	}
}

// A frame far larger than one datagram must cross loopback sockets intact
// under simulated datagram loss: fragments drop, NACKs request repair, the
// retransmit buffer serves it, and the receiver hands up the reassembled
// message.
func TestLargeFrameSurvivesLoss(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0}, {1}}, netrt.Options{
		Seed: 5,
		MTU:  512,
		Loss: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := rts[0], rts[1]
	defer a.Shutdown()
	defer b.Shutdown()

	vals := make([]float64, 40_000) // ~320 KB encoded
	for i := range vals {
		vals[i] = float64(i)
	}
	env := &wire.Envelope{S: tuple.Summary{Query: "big", Value: vals, Count: 1}}
	var w wire.Buffer
	if err := wire.EncodeMessage(&w, env); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got *wire.Envelope
	b.Handle(1, func(from int, payload any, size int) {
		if e, ok := payload.(*wire.Envelope); ok {
			mu.Lock()
			got = e
			mu.Unlock()
		}
	})
	if !a.Send(0, 1, runtime.ClassData, w.Len(), &runtime.Frame{Payload: env, Bytes: w.Bytes()}) {
		t.Fatal("send refused")
	}
	waitFor(t, 20*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	})
	mu.Lock()
	rv := got.S.Value.([]float64)
	mu.Unlock()
	if len(rv) != len(vals) || rv[0] != 0 || rv[len(rv)-1] != float64(len(vals)-1) {
		t.Fatalf("reassembled envelope corrupt: %d values", len(rv))
	}
	fs := a.FragStats()
	if fs.StreamsSent != 1 {
		t.Fatalf("sender fragmented %d streams, want 1", fs.StreamsSent)
	}
	if fs.Retransmits == 0 {
		t.Fatal("10%% loss over hundreds of fragments produced no retransmissions")
	}
	if rb := b.FragStats(); rb.Reassembled != 1 || rb.NacksSent == 0 {
		t.Fatalf("receiver reassembled=%d nacks=%d", rb.Reassembled, rb.NacksSent)
	}
}

// The tentpole acceptance test: a three-"process" loopback federation
// installs a query whose encoded install message is more than 3× the
// configured MTU, under 10% simulated datagram loss on every datagram, and
// still reaches full completeness — the livert baseline, where every live
// peer's sensor reaches the window (livertBaseline pins that at the
// federation size). The install multicast, heartbeats, reconciliation, and
// the fat data envelopes all share the fragmentation path.
func TestLargeInstallUnderLossReachesCompleteness(t *testing.T) {
	const (
		peers = 9
		mtu   = 512
	)
	opt := netrt.Options{Seed: 99, MTU: mtu, Loss: 0.10}
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()

	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 500 * time.Millisecond
	// A fat query name rides in the install metadata AND in every summary
	// envelope, so the data plane exercises fragmentation continuously.
	meta := mortar.QueryMeta{
		Name:      "big-" + strings.Repeat("q", 2000),
		Seq:       1,
		OpName:    "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 500 * time.Millisecond, Slide: 500 * time.Millisecond},
		Root:      0,
		IssuedSim: rts[0].Clock(0).Now(),
	}
	// The acceptance bound: even an empty install chunk of this query is
	// bigger than 3 MTUs, so every install message must fragment.
	var iw wire.Buffer
	if err := wire.EncodeMessage(&iw, wire.Install{Meta: meta}); err != nil {
		t.Fatal(err)
	}
	if iw.Len() <= 3*mtu {
		t.Fatalf("install message is %d bytes, want > %d", iw.Len(), 3*mtu)
	}

	// Worker fabrics first, so handlers exist when the multicast lands.
	fabs := make([]*mortar.Fabric, len(rts))
	for i := len(rts) - 1; i >= 0; i-- {
		fab, err := mortar.NewFabric(rts[i], nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fabs[i] = fab
	}
	coord := fabs[0]

	rng := rand.New(rand.NewSource(1))
	coords := make([]cluster.Point, peers)
	for i := range coords {
		coords[i] = cluster.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	def, err := coord.Compile(meta, nil, coords, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	best := 0
	coord.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		if r.Count > best {
			best = r.Count
		}
		mu.Unlock()
	})
	if err := coord.Install(0, def); err != nil {
		t.Fatal(err)
	}
	// Sensors on every process's local peers.
	for gi, rt := range rts {
		fab := fabs[gi]
		for p := 0; p < peers; p++ {
			if !runtime.IsLocal(rt, p) {
				continue
			}
			p := p
			ck := rt.Clock(p)
			ck.After(time.Duration(rng.Int63n(int64(250*time.Millisecond))), func() {
				ck.Every(500*time.Millisecond, func() {
					fab.Inject(p, tuple.Raw{Vals: []float64{1}})
				})
			})
		}
	}

	deadline := time.Now().Add(25 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		b := best
		mu.Unlock()
		if b == peers {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	mu.Lock()
	got := best
	mu.Unlock()
	if got != peers {
		t.Fatalf("completeness %d, want the livert-level baseline %d", got, peers)
	}

	fs := rts[0].FragStats()
	if fs.StreamsSent == 0 {
		t.Fatal("coordinator never fragmented a frame")
	}
	// The longest train proves a frame bigger than 3 MTUs crossed the wire.
	if fs.MaxStreamFrags*uint64(mtu-64) <= 3*mtu {
		t.Fatalf("longest fragment train %d × %d payload bytes does not exceed 3×MTU", fs.MaxStreamFrags, mtu-64)
	}
	var retrans uint64
	for _, rt := range rts {
		retrans += rt.FragStats().Retransmits
	}
	if retrans == 0 {
		t.Fatal("10%% loss never exercised NACK retransmission")
	}
}
