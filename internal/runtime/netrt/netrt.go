// Package netrt is the socket-backed runtime backend: every message between
// peers crosses the wire as a real UDP datagram carrying the internal/wire
// encoding, the way the paper's prototype exchanged UdpCC datagrams between
// hosts. A netrt Runtime hosts a subset of the federation's peers (possibly
// all of them); each local peer binds its own UDP socket from a shared
// peer-index -> address directory, and several processes — or several
// Runtimes in one process, for loopback tests — form one federation by
// agreeing on that directory.
//
// Per local peer the Runtime runs a receive goroutine (socket -> decode ->
// mailbox) and a mailbox goroutine (the peer's serialization domain, shared
// machinery with runtime/livert via runtime/actor). Datagrams carry a small
// transport header ahead of the wire frame: sender/destination indices and
// three timestamp fields implementing UdpCC-style passive RTT measurement —
// each frame echoes the newest timestamp received from the destination plus
// the local hold time, so any two peers with bidirectional traffic converge
// on a smoothed RTT without dedicated probes. Explicit ping/pong probes
// (ProbeAll) prime the table before traffic flows, and Latency feeds the
// measured half-RTTs to the planner (Vivaldi's input in the prototype).
package netrt

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/runtime/actor"
	"repro/internal/vivaldi"
	"repro/internal/wire"
)

// Datagram framing: a one-byte frame kind ahead of the header fields.
const (
	frameMsg  = 1 // header + wire message frame
	framePing = 2 // RTT probe
	framePong = 3 // RTT probe reply
)

// maxDatagram is the largest frame Send will put on the wire (the UDP
// payload ceiling); oversized messages are dropped and counted.
const maxDatagram = 65507

// Options tunes the socket runtime.
type Options struct {
	// Seed drives the planning random source.
	Seed int64
	// DefaultLatency is Latency's answer for pairs with no RTT measurement
	// yet (no traffic and no probe). Default 1ms.
	DefaultLatency time.Duration
	// RTTAlpha is the EWMA weight for new RTT samples. Default 0.3.
	RTTAlpha float64
	// ReadBuffer, when positive, sets SO_RCVBUF on every local socket.
	ReadBuffer int
}

func (o Options) withDefaults() Options {
	if o.DefaultLatency <= 0 {
		o.DefaultLatency = time.Millisecond
	}
	if o.RTTAlpha <= 0 || o.RTTAlpha > 1 {
		o.RTTAlpha = 0.3
	}
	return o
}

// Runtime hosts a contiguous-or-not set of local peers over UDP sockets.
// It implements runtime.Runtime, runtime.Transport, and runtime.Locality.
type Runtime struct {
	n       int
	local   []int
	isLocal []bool
	addrs   []*net.UDPAddr
	conns   []*net.UDPConn   // nil for non-local peers
	boxes   []*actor.Mailbox // nil for non-local peers
	start   time.Time
	opt     Options
	planRng *rand.Rand

	hmu   sync.RWMutex
	hands []runtime.Handler

	down   []atomic.Bool
	closed atomic.Bool
	wg     sync.WaitGroup

	// Per local peer: the newest transmit stamp received from each remote
	// (for echoing) and the smoothed RTT per remote. Guarded by peerMu of
	// the local peer; touched by its receive loop and by Send.
	peerMu []sync.Mutex
	echo   []map[int]echoState
	rtt    []map[int]time.Duration

	// Decentralized Vivaldi (§3.1): every local peer owns a coordinate it
	// updates from the RTT samples the transport already collects; probe
	// frames piggyback coordinates, so the last coordinate seen from every
	// remote peer is cached here for planning and for feeding updates.
	nodes      []*vivaldi.Node // nil for non-local peers
	coordMu    sync.RWMutex
	peerCoords []vivaldi.Coordinate // last coordinate gossiped per peer
	peerErrs   []float64

	sent, delivered, dropped atomic.Uint64
}

// echoState remembers the latest remote transmit stamp and when it
// arrived, so the next frame to that remote can echo it with a hold time.
type echoState struct {
	stamp int64     // remote's nanos-since-start at its transmit
	at    time.Time // local wall time of receipt
}

var _ runtime.Runtime = (*Runtime)(nil)
var _ runtime.Transport = (*Runtime)(nil)
var _ runtime.Locality = (*Runtime)(nil)

// New binds a UDP socket for every local peer at its directory address and
// starts the receive and mailbox goroutines. directory[i] is peer i's UDP
// host:port; local lists the peer indices this process hosts. The caller
// owns shutting the runtime down.
func New(directory []string, local []int, opt Options) (*Runtime, error) {
	addrs := make([]*net.UDPAddr, len(directory))
	for i, d := range directory {
		a, err := net.ResolveUDPAddr("udp", d)
		if err != nil {
			return nil, fmt.Errorf("netrt: peer %d address %q: %w", i, d, err)
		}
		addrs[i] = a
	}
	conns := make([]*net.UDPConn, len(directory))
	for _, p := range local {
		if p < 0 || p >= len(directory) {
			return nil, fmt.Errorf("netrt: local peer %d outside directory of %d", p, len(directory))
		}
		c, err := net.ListenUDP("udp", addrs[p])
		if err != nil {
			for _, cc := range conns {
				if cc != nil {
					cc.Close()
				}
			}
			return nil, fmt.Errorf("netrt: bind peer %d: %w", p, err)
		}
		conns[p] = c
		// The socket may have been bound to :0; record the actual address.
		addrs[p] = c.LocalAddr().(*net.UDPAddr)
	}
	return assemble(addrs, local, conns, opt), nil
}

// assemble wires an already-bound socket set into a running Runtime.
func assemble(addrs []*net.UDPAddr, local []int, conns []*net.UDPConn, opt Options) *Runtime {
	opt = opt.withDefaults()
	n := len(addrs)
	r := &Runtime{
		n:          n,
		local:      append([]int(nil), local...),
		isLocal:    make([]bool, n),
		addrs:      addrs,
		conns:      conns,
		boxes:      make([]*actor.Mailbox, n),
		start:      time.Now(),
		opt:        opt,
		planRng:    rand.New(rand.NewSource(opt.Seed)),
		hands:      make([]runtime.Handler, n),
		down:       make([]atomic.Bool, n),
		peerMu:     make([]sync.Mutex, n),
		echo:       make([]map[int]echoState, n),
		rtt:        make([]map[int]time.Duration, n),
		nodes:      make([]*vivaldi.Node, n),
		peerCoords: make([]vivaldi.Coordinate, n),
		peerErrs:   make([]float64, n),
	}
	for _, p := range local {
		r.isLocal[p] = true
		r.echo[p] = make(map[int]echoState)
		r.rtt[p] = make(map[int]time.Duration)
		r.nodes[p] = vivaldi.NewNode(vivaldi.DefaultConfig(),
			rand.New(rand.NewSource(opt.Seed*7919+int64(p)+1)))
		if opt.ReadBuffer > 0 {
			_ = conns[p].SetReadBuffer(opt.ReadBuffer)
		}
		r.boxes[p] = actor.NewMailbox()
		r.wg.Add(2)
		go func(box *actor.Mailbox) {
			defer r.wg.Done()
			box.Loop()
		}(r.boxes[p])
		go r.recvLoop(p)
	}
	return r
}

// NewGroup builds one federation of several Runtimes inside a single
// process, each hosting one peer range, with every socket bound to an
// ephemeral loopback port. This is the in-process stand-in for a
// multi-process deployment — messages still cross the kernel's UDP stack —
// used by the loopback tests and available to experiments. The returned
// directory lists the bound addresses.
func NewGroup(ranges [][]int, opt Options) ([]*Runtime, []string, error) {
	n := 0
	owner := map[int]int{}
	for gi, g := range ranges {
		for _, p := range g {
			if _, dup := owner[p]; dup {
				return nil, nil, fmt.Errorf("netrt: peer %d in two ranges", p)
			}
			owner[p] = gi
			n++
		}
	}
	for p := 0; p < n; p++ {
		if _, ok := owner[p]; !ok {
			return nil, nil, fmt.Errorf("netrt: ranges do not cover peer %d", p)
		}
	}
	addrs := make([]*net.UDPAddr, n)
	conns := make([]*net.UDPConn, n)
	fail := func(err error) ([]*Runtime, []string, error) {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		return nil, nil, err
	}
	for p := 0; p < n; p++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			return fail(fmt.Errorf("netrt: bind peer %d: %w", p, err))
		}
		conns[p] = c
		addrs[p] = c.LocalAddr().(*net.UDPAddr)
	}
	directory := make([]string, n)
	for p, a := range addrs {
		directory[p] = a.String()
	}
	rts := make([]*Runtime, len(ranges))
	for gi, g := range ranges {
		groupConns := make([]*net.UDPConn, n)
		for _, p := range g {
			groupConns[p] = conns[p]
		}
		rts[gi] = assemble(append([]*net.UDPAddr(nil), addrs...), g, groupConns, opt)
	}
	return rts, directory, nil
}

// --- runtime.Runtime ---

// NumPeers returns the federation size (all processes combined).
func (r *Runtime) NumPeers() int { return r.n }

// Local reports whether a peer is hosted by this Runtime.
func (r *Runtime) Local(peer int) bool {
	return peer >= 0 && peer < r.n && r.isLocal[peer]
}

// LocalPeers returns the peer indices this Runtime hosts.
func (r *Runtime) LocalPeers() []int { return append([]int(nil), r.local...) }

// Directory returns the federation's address directory, with local entries
// resolved to their actually-bound addresses.
func (r *Runtime) Directory() []string {
	out := make([]string, r.n)
	for i, a := range r.addrs {
		out[i] = a.String()
	}
	return out
}

// Clock returns a wall clock whose callbacks run in the peer's mailbox.
// Clocks of non-local peers read time but cannot schedule.
func (r *Runtime) Clock(peer int) runtime.Clock {
	return actor.Clock{
		Start:  r.start,
		Post:   func(fn func()) bool { return r.Exec(peer, fn) },
		Closed: r.closed.Load,
	}
}

// Transport returns the socket transport.
func (r *Runtime) Transport() runtime.Transport { return r }

// Rand returns the planning random source. Driving goroutine only.
func (r *Runtime) Rand() *rand.Rand { return r.planRng }

// Exec posts fn to a local peer's mailbox; it reports false for non-local
// peers and after Shutdown.
func (r *Runtime) Exec(peer int, fn func()) bool {
	if peer < 0 || peer >= r.n || r.boxes[peer] == nil {
		return false
	}
	return r.boxes[peer].Post(fn)
}

// Shutdown closes every local socket (unblocking the receive loops), stops
// mailbox intake, drains queued work, and joins all goroutines. Afterwards
// local peer state may be inspected from the caller's goroutine.
func (r *Runtime) Shutdown() {
	if r.closed.Swap(true) {
		return
	}
	for _, p := range r.local {
		r.conns[p].Close()
	}
	for _, p := range r.local {
		r.boxes[p].Close()
	}
	r.wg.Wait()
}

// Stats returns cumulative transport counters: datagrams sent, messages
// delivered into mailboxes, and messages dropped (down peers, decode
// failures, closed mailboxes, oversized frames).
func (r *Runtime) Stats() (sent, delivered, dropped uint64) {
	return r.sent.Load(), r.delivered.Load(), r.dropped.Load()
}

// --- runtime.Transport ---

// Handle registers a peer's delivery handler. Handlers registered for
// non-local peers are kept but never invoked in this process.
func (r *Runtime) Handle(peer int, h runtime.Handler) {
	r.hmu.Lock()
	r.hands[peer] = h
	r.hmu.Unlock()
}

// SetDown gates a peer locally: a down local peer neither sends nor
// receives; marking a remote peer down stops this process from sending to
// it. Other processes keep their own view — a real deployment has no
// global kill switch.
func (r *Runtime) SetDown(peer int, down bool) { r.down[peer].Store(down) }

// Down reports this process's view of a peer's gate.
func (r *Runtime) Down(peer int) bool { return r.down[peer].Load() }

// Latency returns the measured one-way latency (smoothed RTT/2) between
// the pair when either side is local and has a measurement, and
// DefaultLatency otherwise. Measurements accumulate passively from message
// echoes and actively from ProbeAll.
func (r *Runtime) Latency(a, b int) time.Duration {
	if d, ok := r.Measured(a, b); ok {
		return d
	}
	return r.opt.DefaultLatency
}

// Measured returns the smoothed one-way latency for a pair, if this
// process has measured it from either end.
func (r *Runtime) Measured(a, b int) (time.Duration, bool) {
	if a < 0 || b < 0 || a >= r.n || b >= r.n {
		return 0, false
	}
	for _, pair := range [2][2]int{{a, b}, {b, a}} {
		l, rem := pair[0], pair[1]
		if !r.isLocal[l] {
			continue
		}
		r.peerMu[l].Lock()
		rtt, ok := r.rtt[l][rem]
		r.peerMu[l].Unlock()
		if ok {
			return rtt / 2, true
		}
	}
	return 0, false
}

// Send encodes the frame header, appends the message's wire bytes, and
// writes one UDP datagram from the sending peer's socket. The payload is
// normally the runtime.Frame the fabric built (its Bytes go on the wire
// unchanged — the message was encoded exactly once); any other payload is
// encoded here, so tests can Send bare messages.
func (r *Runtime) Send(from, to int, class runtime.Class, size int, payload any) bool {
	if from == to || from < 0 || from >= r.n || to < 0 || to >= r.n || !r.isLocal[from] {
		return false
	}
	if r.closed.Load() || r.down[from].Load() || r.down[to].Load() {
		return false
	}
	var body []byte
	switch p := payload.(type) {
	case *runtime.Frame:
		body = p.Bytes
	default:
		var w wire.Buffer
		if err := wire.EncodeMessage(&w, payload); err != nil {
			r.dropped.Add(1)
			return false
		}
		body = w.Bytes()
	}

	var w wire.Buffer
	w.PutByte(frameMsg)
	w.PutUvarint(uint64(from))
	w.PutUvarint(uint64(to))
	w.PutVarint(stampNow(r.start)) // transmit stamp
	echoStamp, hold := r.takeEcho(from, to)
	w.PutVarint(echoStamp)
	w.PutVarint(hold)
	w.PutByte(byte(class))
	w.PutRaw(body)
	if w.Len() > maxDatagram {
		r.dropped.Add(1)
		return false
	}
	if _, err := r.conns[from].WriteToUDP(w.Bytes(), r.addrs[to]); err != nil {
		r.dropped.Add(1)
		return false
	}
	r.sent.Add(1)
	return true
}

// takeEcho returns the newest transmit stamp received from `to` at local
// peer `from`, plus how long ago it arrived — the passive RTT echo.
func (r *Runtime) takeEcho(from, to int) (stamp, hold int64) {
	r.peerMu[from].Lock()
	defer r.peerMu[from].Unlock()
	e, ok := r.echo[from][to]
	if !ok {
		return 0, 0
	}
	return e.stamp, int64(time.Since(e.at))
}

// noteRTT folds one RTT sample for (local, remote) into the EWMA.
func (r *Runtime) noteRTT(local, remote int, sample time.Duration) {
	if sample < 0 {
		return
	}
	r.peerMu[local].Lock()
	if old, ok := r.rtt[local][remote]; ok {
		a := r.opt.RTTAlpha
		r.rtt[local][remote] = time.Duration((1-a)*float64(old) + a*float64(sample))
	} else {
		r.rtt[local][remote] = sample
	}
	r.peerMu[local].Unlock()
}

// observe handles one RTT sample at a local peer: it feeds the smoothed
// table and, when the remote's coordinate is known from gossip, runs one
// Vivaldi update — the passive measurements the transport already collects
// are exactly the algorithm's input.
func (r *Runtime) observe(local, remote int, sample time.Duration) {
	if sample < 0 {
		return
	}
	r.noteRTT(local, remote, sample)
	r.coordMu.RLock()
	c, e := r.peerCoords[remote], r.peerErrs[remote]
	r.coordMu.RUnlock()
	if c != nil {
		// The embedding is in one-way milliseconds; a datagram RTT is two
		// flights.
		r.nodes[local].Update(sample/2, c, e)
	}
}

// noteCoord caches the latest coordinate gossiped by a peer.
func (r *Runtime) noteCoord(peer int, c vivaldi.Coordinate, errEst float64) {
	r.coordMu.Lock()
	r.peerCoords[peer] = c
	r.peerErrs[peer] = errEst
	r.coordMu.Unlock()
}

// recvLoop reads datagrams for one local peer until its socket closes.
func (r *Runtime) recvLoop(peer int) {
	defer r.wg.Done()
	buf := make([]byte, 1<<16)
	conn := r.conns[peer]
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Shutdown
		}
		r.handleFrame(peer, buf[:n])
	}
}

// handleFrame parses one datagram addressed to a local peer. Decoding runs
// on the receive goroutine; only the decoded message enters the mailbox,
// so nothing retains the read buffer.
func (r *Runtime) handleFrame(peer int, b []byte) {
	rd := wire.NewReader(b)
	kind, err := rd.Byte()
	if err != nil {
		return
	}
	srcU, err := rd.Uvarint()
	if err != nil || srcU >= uint64(r.n) {
		return
	}
	dstU, err := rd.Uvarint()
	if err != nil || int(dstU) != peer {
		return // misrouted or stale directory entry
	}
	src := int(srcU)
	now := time.Since(r.start)

	switch kind {
	case framePing:
		stamp, err := rd.Varint()
		if err != nil || r.down[peer].Load() {
			return
		}
		if c, e, ok := readCoord(rd); ok {
			r.noteCoord(src, c, e)
		}
		var w wire.Buffer
		w.PutByte(framePong)
		w.PutUvarint(uint64(peer))
		w.PutUvarint(srcU)
		w.PutVarint(stamp)
		w.PutVarint(0) // replied immediately: no hold
		putCoord(&w, r.nodes[peer])
		_, _ = r.conns[peer].WriteToUDP(w.Bytes(), r.addrs[src])

	case framePong:
		stamp, err := rd.Varint()
		if err != nil {
			return
		}
		hold, err := rd.Varint()
		if err != nil {
			return
		}
		if c, e, ok := readCoord(rd); ok {
			r.noteCoord(src, c, e)
		}
		r.observe(peer, src, now-time.Duration(stamp)-time.Duration(hold))

	case frameMsg:
		stamp, err := rd.Varint()
		if err != nil {
			return
		}
		echoStamp, err := rd.Varint()
		if err != nil {
			return
		}
		hold, err := rd.Varint()
		if err != nil {
			return
		}
		if _, err := rd.Byte(); err != nil { // class: accounted by the sender
			return
		}
		if r.down[peer].Load() {
			r.dropped.Add(1)
			return
		}
		r.peerMu[peer].Lock()
		r.echo[peer][src] = echoState{stamp: stamp, at: time.Now()}
		r.peerMu[peer].Unlock()
		if echoStamp != 0 {
			r.observe(peer, src, now-time.Duration(echoStamp)-time.Duration(hold))
		}
		frame := rd.Rest()
		msg, err := wire.DecodeMessage(frame)
		if err != nil {
			r.dropped.Add(1)
			return
		}
		if env, ok := msg.(*wire.Envelope); ok {
			// The envelope's SentAt was stamped against the sender's clock
			// base, which a different process does not share. Rewrite it in
			// the receiver's frame using the transport's measured one-way
			// flight time — the peer derives exactly that from it (UdpCC
			// measures RTT/2 at the transport, not via host timestamps).
			flight := r.opt.DefaultLatency
			if d, ok := r.Measured(peer, src); ok {
				flight = d
			}
			env.SentAt = now - flight
		}
		r.hmu.RLock()
		h := r.hands[peer]
		r.hmu.RUnlock()
		if h == nil {
			r.dropped.Add(1)
			return
		}
		// Report the wire-frame length, not the datagram's: it is the size
		// the sending fabric charged, so accounting agrees across backends.
		size := len(frame)
		if r.boxes[peer].Post(func() { h(src, msg, size) }) {
			r.delivered.Add(1)
		} else {
			r.dropped.Add(1)
		}
	}
}

// --- probing ---

// stampNow returns a transmit timestamp that is never 0, since 0 is the
// "no echo" sentinel in the frame header.
func stampNow(start time.Time) int64 {
	if s := int64(time.Since(start)); s != 0 {
		return s
	}
	return 1
}

// sendPing writes one RTT probe from a local peer, carrying its Vivaldi
// coordinate.
func (r *Runtime) sendPing(from, to int) {
	var w wire.Buffer
	w.PutByte(framePing)
	w.PutUvarint(uint64(from))
	w.PutUvarint(uint64(to))
	w.PutVarint(stampNow(r.start))
	putCoord(&w, r.nodes[from])
	_, _ = r.conns[from].WriteToUDP(w.Bytes(), r.addrs[to])
}

// coordDims is the embedding dimensionality every node in the federation
// uses (the paper's experiments use 3-dimensional coordinates). Gossiped
// coordinates of any other dimensionality are rejected before caching —
// a foreign-sized coordinate would panic distance computations in
// CoordError and the planner's clustering.
var coordDims = vivaldi.DefaultConfig().Dims

// putCoord appends a coordinate extension to a probe frame (the same
// wire.PutCoordExt layout heartbeats use).
func putCoord(w *wire.Buffer, n *vivaldi.Node) {
	c, e := n.Snapshot()
	w.PutCoordExt(c, e)
}

// readCoord reads the optional trailing coordinate extension of a probe
// frame. Frames from binaries predating the extension simply end here;
// malformed extensions and coordinates of the wrong dimensionality are
// ignored rather than poisoning the probe.
func readCoord(rd *wire.Reader) (vivaldi.Coordinate, float64, bool) {
	c, e, err := rd.CoordExt()
	if err != nil || len(c) != coordDims {
		return nil, 0, false
	}
	return vivaldi.Coordinate(c), e, true
}

// ProbeAll primes the RTT table: every local peer pings every other peer,
// rounds times, sleeping wait between rounds for the pongs to land. Run it
// before planning so Latency answers from measurement instead of the
// default (the prototype let Vivaldi run "for at least ten rounds before
// interconnecting operators").
func (r *Runtime) ProbeAll(rounds int, wait time.Duration) {
	for k := 0; k < rounds; k++ {
		if r.closed.Load() {
			return
		}
		for _, p := range r.local {
			for q := 0; q < r.n; q++ {
				if q != p {
					r.sendPing(p, q)
				}
			}
		}
		time.Sleep(wait)
	}
}

// --- decentralized Vivaldi ---

// VivaldiNode returns a local peer's Vivaldi coordinate state (nil for
// peers this process does not host). The peer core piggybacks the
// coordinate on heartbeats and updates it from measured RTTs.
func (r *Runtime) VivaldiNode(peer int) *vivaldi.Node {
	if peer < 0 || peer >= r.n {
		return nil
	}
	return r.nodes[peer]
}

// Gossip runs coordinate gossip rounds: each local peer probes fanout
// random peers (every peer when fanout <= 0) with a coordinate-carrying
// ping; each pong delivers an RTT sample plus the responder's coordinate —
// one Vivaldi update. Every process of a federation gossips, so worker
// peers embed themselves from their own measurements; the prototype let
// Vivaldi run "for at least ten rounds before interconnecting operators".
func (r *Runtime) Gossip(rounds, fanout int, wait time.Duration) {
	rng := rand.New(rand.NewSource(r.opt.Seed ^ 0x5deece66d))
	for k := 0; k < rounds; k++ {
		if r.closed.Load() {
			return
		}
		for _, p := range r.local {
			sent := 0
			for _, q := range rng.Perm(r.n) {
				if q == p {
					continue
				}
				r.sendPing(p, q)
				if sent++; fanout > 0 && sent >= fanout {
					break
				}
			}
		}
		time.Sleep(wait)
	}
}

// Coordinates returns this process's view of every peer's coordinate:
// local peers report their node state, remote peers the last coordinate
// they gossiped. known[i] is false where nothing has been heard yet —
// planning from coordinates needs the full federation covered.
func (r *Runtime) Coordinates() ([]vivaldi.Coordinate, []float64, []bool) {
	coords := make([]vivaldi.Coordinate, r.n)
	errs := make([]float64, r.n)
	known := make([]bool, r.n)
	for p := 0; p < r.n; p++ {
		if r.isLocal[p] {
			coords[p], errs[p] = r.nodes[p].Snapshot()
			known[p] = true
		}
	}
	r.coordMu.RLock()
	for p := 0; p < r.n; p++ {
		if !known[p] && r.peerCoords[p] != nil {
			coords[p] = r.peerCoords[p].Clone()
			errs[p] = r.peerErrs[p]
			known[p] = true
		}
	}
	r.coordMu.RUnlock()
	return coords, errs, known
}

// CoordError measures embedding quality against the transport's own
// measurements: the median over (local, remote) pairs with both a known
// coordinate and a measured RTT of |coordinate distance - measured one-way|
// in milliseconds, plus the number of pairs compared. Convergence logging
// and tests assert this shrinks below a tolerance.
func (r *Runtime) CoordError() (medianMs float64, pairs int) {
	coords, _, known := r.Coordinates()
	var errs []float64
	for _, p := range r.local {
		for q := 0; q < r.n; q++ {
			if q == p || !known[q] {
				continue
			}
			m, ok := r.Measured(p, q)
			if !ok {
				continue
			}
			pred := coords[p].Dist(coords[q])
			actual := float64(m) / float64(time.Millisecond)
			errs = append(errs, math.Abs(pred-actual))
		}
	}
	if len(errs) == 0 {
		return 0, 0
	}
	sort.Float64s(errs)
	return errs[len(errs)/2], len(errs)
}
