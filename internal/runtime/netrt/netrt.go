// Package netrt is the socket-backed runtime backend: every message between
// peers crosses the wire as a real UDP datagram carrying the internal/wire
// encoding, the way the paper's prototype exchanged UdpCC datagrams between
// hosts. A netrt Runtime hosts a subset of the federation's peers (possibly
// all of them); local peers bind UDP sockets from a shared peer-index ->
// address directory — peers whose directory entries share one address are
// multiplexed behind one socket — and several processes, or several
// Runtimes in one process for loopback tests, form one federation by
// agreeing on that directory.
//
// Per shared socket the Runtime runs one receive goroutine (socket ->
// decode -> mailbox, demuxed on the destination index every frame carries)
// and one paced writer; per local peer it runs a mailbox goroutine (the
// peer's serialization domain, shared machinery with runtime/livert via
// runtime/actor). With Options.Coalesce the writer batches small frames
// bound for the same remote socket into one frameTrain datagram, so peer
// density scales without a matching datagram storm. Datagrams carry a small
// transport header ahead of the wire frame: sender/destination indices and
// three timestamp fields implementing UdpCC-style passive RTT measurement —
// each frame echoes the newest timestamp received from the destination plus
// the local hold time, so any two peers with bidirectional traffic converge
// on a smoothed RTT without dedicated probes. Explicit ping/pong probes
// (ProbeAll) prime the table before traffic flows, and Latency feeds the
// measured half-RTTs to the planner (Vivaldi's input in the prototype).
//
// Frames larger than the configured MTU do not fit one datagram; they take
// the reliable large-message path (frag.go): MTU-sized fragments,
// NACK-driven selective retransmission from a bounded retransmit buffer,
// bounded reassembly with stale-stream eviction, and token-bucket pacing on
// every outgoing datagram. Transport.MaxFrame reports the path's ceiling
// (Options.MaxMessage) so bulk senders — the install multicast — can size
// their messages to it.
package netrt

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/runtime/actor"
	"repro/internal/vivaldi"
	"repro/internal/wire"
)

// Datagram framing: a one-byte frame kind ahead of the header fields.
const (
	frameMsg   = 1 // header + wire message frame
	framePing  = 2 // RTT probe
	framePong  = 3 // RTT probe reply
	frameFrag  = 4 // one fragment of a frame larger than the MTU
	frameNack  = 5 // retransmission request for missing fragments
	frameTrain = 6 // coalesced train of small frames (wire.ForEachTrainFrame)
)

// maxDatagram is the absolute UDP payload ceiling; the configured MTU is
// clamped to it.
const maxDatagram = 65507

// minMTU keeps the fragment payload positive after the framing headroom.
const minMTU = 2 * fragHeadroom

// sweepInterval is how often the runtime scans reassemblers for stale
// streams and NACK-worthy gaps.
const sweepInterval = 20 * time.Millisecond

// Options tunes the socket runtime.
type Options struct {
	// Seed drives the planning random source.
	Seed int64
	// DefaultLatency is Latency's answer for pairs with no RTT measurement
	// yet (no traffic and no probe). Default 1ms.
	DefaultLatency time.Duration
	// RTTAlpha is the EWMA weight for new RTT samples. Default 0.3.
	RTTAlpha float64
	// ReadBuffer, when positive, sets SO_RCVBUF on every local socket.
	ReadBuffer int
	// MTU is the largest datagram Send writes; frames that do not fit are
	// split into fragments reassembled on the far side and repaired by
	// NACK retransmission. Default 1400 (a practical path MTU), clamped to
	// [128, 65507].
	MTU int
	// Pace is the outgoing token-bucket rate per local peer in bytes per
	// second — the discipline that keeps a multi-fragment install from
	// burst-dropping at the first full queue. Default 8 MiB/s; negative
	// disables pacing.
	Pace int
	// Loss simulates datagram loss: every outgoing datagram (messages,
	// fragments, probes, NACKs alike) is dropped with this probability
	// just before the socket write. Zero in production; tests use it to
	// prove NACK repair end-to-end.
	Loss float64
	// MaxMessage bounds one logical frame through the fragmentation path
	// (it is also Transport.MaxFrame). Default 4 MiB.
	MaxMessage int
	// ReassemblyBuffer bounds per-local-peer partial-stream memory.
	// Default 2×MaxMessage.
	ReassemblyBuffer int
	// RetransmitBuffer bounds per-local-peer sent-fragment memory held for
	// NACK service. Default 2×MaxMessage.
	RetransmitBuffer int
	// StaleAfter evicts an incomplete reassembly stream that has received
	// nothing for this long. Default 3s.
	StaleAfter time.Duration
	// PairDelay, when non-nil, holds every outgoing datagram for the given
	// synthetic one-way delay before it reaches the paced writer — an
	// injected latency topology over real loopback sockets. The passive
	// RTT echoes measure the inflated path, so Vivaldi embeds the
	// synthetic topology exactly as it would a real one; SetPairDelay
	// swaps the function mid-run, which is how tests shift the topology
	// under a live federation.
	PairDelay func(from, to int) time.Duration
	// VivaldiHeight runs the peers' coordinates under the height-vector
	// model: each coordinate carries a trailing height component modeling
	// the peer's access-link latency (gossiped coordinates of the other
	// shape are rejected — the models must not blend).
	VivaldiHeight bool
	// PeersPerSocket is how many local peers NewGroup multiplexes onto one
	// UDP socket (demuxed on the destination index every frame carries).
	// Default 1 — one socket per peer, the pre-multiplexing layout. New
	// ignores it: there the directory decides which peers share an address.
	PeersPerSocket int
	// Coalesce batches small frames bound for the same remote socket into
	// one frameTrain datagram, flushed by the pacer when the train reaches
	// the MTU or after CoalesceDelay. A 1k-peer heartbeat round then costs
	// hundreds of datagrams instead of hundreds of thousands. Off by
	// default: the pending delay inflates measured RTTs by up to
	// 2×CoalesceDelay, which latency-sensitive tests do not want.
	Coalesce bool
	// CoalesceDelay bounds how long a frame may wait in a pending train.
	// Default 1ms.
	CoalesceDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.DefaultLatency <= 0 {
		o.DefaultLatency = time.Millisecond
	}
	if o.RTTAlpha <= 0 || o.RTTAlpha > 1 {
		o.RTTAlpha = 0.3
	}
	if o.MTU == 0 {
		o.MTU = 1400
	}
	if o.MTU < minMTU {
		o.MTU = minMTU
	}
	if o.MTU > maxDatagram {
		o.MTU = maxDatagram
	}
	if o.Pace == 0 {
		o.Pace = 8 << 20
	}
	if o.Pace < 0 {
		o.Pace = 0 // unpaced
	}
	if o.MaxMessage <= 0 {
		o.MaxMessage = 4 << 20
	}
	if o.ReassemblyBuffer < o.MaxMessage {
		o.ReassemblyBuffer = 2 * o.MaxMessage
	}
	if o.RetransmitBuffer < o.MaxMessage {
		o.RetransmitBuffer = 2 * o.MaxMessage
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 3 * time.Second
	}
	if o.PeersPerSocket <= 0 {
		o.PeersPerSocket = 1
	}
	if o.CoalesceDelay <= 0 {
		o.CoalesceDelay = time.Millisecond
	}
	return o
}

// fragPayload is the fragment payload size the configured MTU leaves.
func (o Options) fragPayload() int { return o.MTU - fragHeadroom }

// lsock is one shared local socket hosting one or more local peers: a
// single receive loop demuxes inbound frames on the destination index
// every frame carries, and a single paced writer serializes the outbound
// side. With Options.PeersPerSocket (or a ranged directory) a thousand
// local peers need a handful of sockets, not a thousand.
type lsock struct {
	conn  *net.UDPConn
	pacer *pacer
	peers []int
}

// Runtime hosts a contiguous-or-not set of local peers over UDP sockets.
// It implements runtime.Runtime, runtime.Transport, and runtime.Locality.
type Runtime struct {
	n       int
	local   []int
	isLocal []bool
	addrs   []*net.UDPAddr
	ports   []netip.AddrPort // addrs as AddrPort, the pacer's alloc-free write key
	boxes   []*actor.Mailbox // nil for non-local peers
	start   time.Time
	opt     Options
	planRng *rand.Rand

	hmu   sync.RWMutex
	hands []runtime.Handler

	down   []atomic.Bool
	closed atomic.Bool
	wg     sync.WaitGroup
	done   chan struct{} // closed by Shutdown; stops pacers and the sweeper

	// The shared local sockets, each with its receive loop and paced
	// writer; sockOf maps a local peer to its socket (-1 for non-local
	// peers), addrID maps every peer to its address group — the coalescing
	// destination key, shared by peers multiplexed behind one remote
	// socket.
	socks  []*lsock
	sockOf []int
	addrID []int

	// Per local peer: the send-side fragment state (stream ids +
	// retransmit buffer) and the bounded reassembler. All nil for
	// non-local peers.
	frags []*fragSender
	reasm []*Reassembler

	// Fragmentation counters (see FragStats).
	fragStreams, fragsSent, retransmits, nacksSent atomic.Uint64
	maxStreamFrags                                 atomic.Uint64

	// Per local peer: the newest transmit stamp received from each remote
	// (for echoing) and the smoothed RTT per remote. Guarded by peerMu of
	// the local peer; touched by its receive loop and by Send.
	peerMu []sync.Mutex
	echo   []map[int]echoState
	rtt    []map[int]time.Duration

	// Decentralized Vivaldi (§3.1): every local peer owns a coordinate it
	// updates from the RTT samples the transport already collects; probe
	// frames piggyback coordinates, so the last coordinate seen from every
	// remote peer is cached here for planning and for feeding updates.
	vcfg       vivaldi.Config
	nodes      []*vivaldi.Node // nil for non-local peers
	coordMu    sync.RWMutex
	peerCoords []vivaldi.Coordinate // last coordinate gossiped per peer
	peerErrs   []float64

	// pairDelay is the synthetic latency topology (Options.PairDelay),
	// swappable mid-run via SetPairDelay.
	pairDelay atomic.Pointer[func(from, to int) time.Duration]

	// peerLoss holds per-peer datagram-loss overrides (float64 bits; 0 =
	// no override): every outgoing datagram of local peer p is dropped
	// with this probability before it reaches the paced writer. The chaos
	// harness uses it to ramp loss on individual peers while the rest of
	// the federation stays clean.
	peerLoss []atomic.Uint64
	lossMu   sync.Mutex
	lossRng  *rand.Rand

	sent, delivered, dropped atomic.Uint64

	// Per-class wire bytes transmitted (frame header + body, before
	// fragmentation overhead): the split the serving plane reports so
	// control-plane cost is observable per process (ClassBytes). The frame
	// counts alongside them make upstream coalescing observable at the
	// transport: with hold-and-merge on, DataFrames falls well below the
	// summary count (see NetStats).
	ctlBytes, dataBytes   atomic.Uint64
	ctlFrames, dataFrames atomic.Uint64

	// Datagram-level counters (see NetStats): datagrams actually written,
	// coalesced trains among them, and the frames those trains carried.
	datagrams, trains, trainFrames atomic.Uint64
}

// echoState remembers the latest remote transmit stamp and when it
// arrived, so the next frame to that remote can echo it with a hold time.
type echoState struct {
	stamp int64     // remote's nanos-since-start at its transmit
	at    time.Time // local wall time of receipt
}

var _ runtime.Runtime = (*Runtime)(nil)
var _ runtime.Transport = (*Runtime)(nil)
var _ runtime.Locality = (*Runtime)(nil)

// New binds the UDP sockets the directory asks for and starts the receive
// and mailbox goroutines. directory[i] is peer i's UDP host:port; peers
// sharing one host:port are multiplexed behind one socket (the ranged
// directory format LoadDirectory parses produces exactly that), except
// that every :0 entry always gets its own ephemerally-bound socket. local
// lists the peer indices this process hosts; an address may not mix local
// and non-local peers — the remote half's frames would land on this
// process's socket and be dropped. The caller owns shutting the runtime
// down.
func New(directory []string, local []int, opt Options) (*Runtime, error) {
	addrs := make([]*net.UDPAddr, len(directory))
	for i, d := range directory {
		a, err := net.ResolveUDPAddr("udp", d)
		if err != nil {
			return nil, fmt.Errorf("netrt: peer %d address %q: %w", i, d, err)
		}
		addrs[i] = a
	}
	isLocal := make([]bool, len(directory))
	conns := make([]*net.UDPConn, len(directory))
	fail := func(err error) (*Runtime, error) {
		closed := map[*net.UDPConn]bool{}
		for _, c := range conns {
			if c != nil && !closed[c] {
				closed[c] = true
				c.Close()
			}
		}
		return nil, err
	}
	byAddr := map[string]*net.UDPConn{}
	for _, p := range local {
		if p < 0 || p >= len(directory) {
			return fail(fmt.Errorf("netrt: local peer %d outside directory of %d", p, len(directory)))
		}
		isLocal[p] = true
		ephemeral := addrs[p].Port == 0
		key := addrs[p].String()
		if !ephemeral {
			if c, ok := byAddr[key]; ok {
				conns[p] = c
				addrs[p] = c.LocalAddr().(*net.UDPAddr)
				continue
			}
		}
		c, err := net.ListenUDP("udp", addrs[p])
		if err != nil {
			return fail(fmt.Errorf("netrt: bind peer %d: %w", p, err))
		}
		conns[p] = c
		if !ephemeral {
			byAddr[key] = c
		}
		// The socket may have been bound to :0; record the actual address.
		addrs[p] = c.LocalAddr().(*net.UDPAddr)
	}
	for q := range directory {
		if !isLocal[q] && byAddr[addrs[q].String()] != nil {
			return fail(fmt.Errorf("netrt: address %q hosts local peers but peer %d is not local", addrs[q], q))
		}
	}
	return assemble(addrs, local, conns, opt), nil
}

// assemble wires an already-bound socket set into a running Runtime.
// conns is indexed by peer; local peers sharing a socket hold the same
// *net.UDPConn, and assemble groups them into one lsock with one receive
// loop and one paced writer (rate and burst scaled by the peer count, so
// a shared socket is not throttled below what its peers had separately).
func assemble(addrs []*net.UDPAddr, local []int, conns []*net.UDPConn, opt Options) *Runtime {
	opt = opt.withDefaults()
	n := len(addrs)
	r := &Runtime{
		n:          n,
		local:      append([]int(nil), local...),
		isLocal:    make([]bool, n),
		addrs:      addrs,
		boxes:      make([]*actor.Mailbox, n),
		start:      time.Now(),
		opt:        opt,
		planRng:    rand.New(rand.NewSource(opt.Seed)),
		hands:      make([]runtime.Handler, n),
		down:       make([]atomic.Bool, n),
		done:       make(chan struct{}),
		sockOf:     make([]int, n),
		addrID:     make([]int, n),
		frags:      make([]*fragSender, n),
		reasm:      make([]*Reassembler, n),
		peerMu:     make([]sync.Mutex, n),
		echo:       make([]map[int]echoState, n),
		rtt:        make([]map[int]time.Duration, n),
		nodes:      make([]*vivaldi.Node, n),
		peerCoords: make([]vivaldi.Coordinate, n),
		peerErrs:   make([]float64, n),
		peerLoss:   make([]atomic.Uint64, n),
		lossRng:    rand.New(rand.NewSource(opt.Seed*31337 + 17)),
	}
	r.vcfg = vivaldi.DefaultConfig()
	r.vcfg.Height = opt.VivaldiHeight
	if opt.PairDelay != nil {
		pd := opt.PairDelay
		r.pairDelay.Store(&pd)
	}
	// Address groups: peers sharing a remote socket share a coalescing
	// destination.
	groups := map[string]int{}
	r.ports = make([]netip.AddrPort, n)
	for p, a := range addrs {
		key := a.String()
		id, ok := groups[key]
		if !ok {
			id = len(groups)
			groups[key] = id
		}
		r.addrID[p] = id
		ap := a.AddrPort()
		r.ports[p] = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	for i := range r.sockOf {
		r.sockOf[i] = -1
	}
	sockIdx := map[*net.UDPConn]int{}
	for _, p := range local {
		r.isLocal[p] = true
		si, ok := sockIdx[conns[p]]
		if !ok {
			si = len(r.socks)
			sockIdx[conns[p]] = si
			r.socks = append(r.socks, &lsock{conn: conns[p]})
		}
		r.sockOf[p] = si
		r.socks[si].peers = append(r.socks[si].peers, p)

		r.echo[p] = make(map[int]echoState)
		r.rtt[p] = make(map[int]time.Duration)
		r.nodes[p] = vivaldi.NewNode(r.vcfg,
			rand.New(rand.NewSource(opt.Seed*7919+int64(p)+1)))
		r.frags[p] = newFragSender(opt.RetransmitBuffer)
		r.reasm[p] = NewReassembler(ReasmOptions{
			MaxMessage:     opt.MaxMessage,
			MaxBytes:       opt.ReassemblyBuffer,
			StaleAfter:     opt.StaleAfter,
			MaxNackIndices: (opt.MTU - 32) / 5, // one NACK must fit one datagram
		})
		r.boxes[p] = actor.NewMailbox()
		r.wg.Add(1)
		go func(box *actor.Mailbox) {
			defer r.wg.Done()
			box.Loop()
		}(r.boxes[p])
	}
	baseBurst := float64(64 << 10)
	if b := float64(4 * opt.MTU); b > baseBurst {
		baseBurst = b
	}
	ct := pacerCounters{
		dropped:     &r.dropped,
		datagrams:   &r.datagrams,
		trains:      &r.trains,
		trainFrames: &r.trainFrames,
	}
	for si, s := range r.socks {
		if opt.ReadBuffer > 0 {
			_ = s.conn.SetReadBuffer(opt.ReadBuffer)
		}
		k := float64(len(s.peers))
		burst := baseBurst * k
		if burst > 16<<20 {
			burst = 16 << 20
		}
		s.pacer = newPacer(s.conn, pacerOptions{
			rate:     float64(opt.Pace) * k,
			burst:    burst,
			loss:     opt.Loss,
			seed:     opt.Seed*104729 + int64(si) + 1,
			coalesce: opt.Coalesce,
			delay:    opt.CoalesceDelay,
			mtu:      opt.MTU,
		}, ct)
		r.wg.Add(2)
		go r.recvLoop(s)
		go func(pc *pacer) {
			defer r.wg.Done()
			pc.loop()
		}(s.pacer)
	}
	if len(local) > 0 {
		r.wg.Add(1)
		go r.sweepLoop()
	}
	return r
}

// NetStats is the datagram-level view of the transport: how many
// datagrams actually hit the wire, how many were coalesced trains, how
// many frames those trains carried, and how many sockets host the local
// peers. With coalescing effective, Datagrams is well below the frame
// count (sent + probes + NACKs).
type NetStats struct {
	Datagrams   uint64
	Trains      uint64
	TrainFrames uint64
	Sockets     int
	// Per-class frame counts (a frame is one transport Send; a train packs
	// several into one datagram). DataFrames is the number the upstream
	// summary path's hold-and-merge coalescing drives down: merged and
	// batched summaries share frames instead of taking one each.
	CtlFrames  uint64
	DataFrames uint64
}

// NetStats returns the datagram-level counters.
func (r *Runtime) NetStats() NetStats {
	return NetStats{
		Datagrams:   r.datagrams.Load(),
		Trains:      r.trains.Load(),
		TrainFrames: r.trainFrames.Load(),
		Sockets:     len(r.socks),
		CtlFrames:   r.ctlFrames.Load(),
		DataFrames:  r.dataFrames.Load(),
	}
}

// SetPairDelay swaps the synthetic latency topology at run time. The
// next outgoing datagram of every local peer sees the new delays, the
// passive RTT measurements follow, and Vivaldi re-embeds — the injected
// equivalent of a route change under a live federation. nil removes the
// topology.
func (r *Runtime) SetPairDelay(f func(from, to int) time.Duration) {
	if f == nil {
		r.pairDelay.Store(nil)
		return
	}
	r.pairDelay.Store(&f)
}

// SetLoss replaces the simulated datagram-loss probability (Options.Loss)
// on every local socket at run time — the knob loss ramps in a chaos
// schedule turn. Values outside [0, 1) are clamped.
func (r *Runtime) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 1
	}
	for _, s := range r.socks {
		s.pacer.setLoss(p)
	}
}

// SetPeerLoss overrides the datagram-loss probability for one local peer:
// every outgoing datagram of that peer — messages, fragments, probes,
// NACKs — is dropped with probability p before it reaches the paced
// writer, while the rest of the federation keeps the socket-wide rate. 0
// removes the override. A no-op for peers this process does not host.
func (r *Runtime) SetPeerLoss(peer int, p float64) {
	if peer < 0 || peer >= r.n || !r.isLocal[peer] {
		return
	}
	if p <= 0 {
		r.peerLoss[peer].Store(0)
		return
	}
	if p > 1 {
		p = 1
	}
	r.peerLoss[peer].Store(math.Float64bits(p))
}

// AddressGroups returns the federation's peers grouped by shared directory
// address, in directory order: group g holds every peer multiplexed behind
// the g'th distinct address. Every process of a federation derives the
// same grouping from the shared directory, which is what lets a chaos
// schedule's correlated per-socket outage kill the same peer set in every
// process.
func (r *Runtime) AddressGroups() [][]int {
	ng := 0
	for _, id := range r.addrID {
		if id >= ng {
			ng = id + 1
		}
	}
	groups := make([][]int, ng)
	for p, id := range r.addrID {
		groups[id] = append(groups[id], p)
	}
	return groups
}

// xmit submits one outgoing frame to the sending peer's paced writer,
// first holding it for the synthetic pair delay when a topology is
// configured. buf, when non-nil, is the pooled buffer backing b — the
// pacer takes ownership of it whether or not the frame is accepted.
// c1/c2 (either may be nil) increment only when the frame is accepted by
// the pacer, exactly as direct submission would. The common no-delay path
// stays closure- and allocation-free — this sits under every heartbeat,
// fragment, probe, and NACK.
func (r *Runtime) xmit(from, to int, b []byte, buf *wire.Buffer, c1, c2 *atomic.Uint64) {
	if pd := r.pairDelay.Load(); pd != nil {
		if d := (*pd)(from, to); d > 0 {
			// A held datagram that outlives Shutdown lands in a stopped
			// pacer's queue and is never written — dropped like any other
			// in-flight packet at process death.
			time.AfterFunc(d, func() { r.xmitNow(from, to, b, buf, c1, c2) })
			return
		}
	}
	r.xmitNow(from, to, b, buf, c1, c2)
}

func (r *Runtime) xmitNow(from, to int, b []byte, buf *wire.Buffer, c1, c2 *atomic.Uint64) {
	// Per-peer loss override (SetPeerLoss): rolled here rather than in the
	// pacer because the pacer serves a whole shared socket and only the
	// frame's origin identifies the faulted peer. Zero (the default) costs
	// one atomic load on the hot path.
	if bits := r.peerLoss[from].Load(); bits != 0 {
		p := math.Float64frombits(bits)
		r.lossMu.Lock()
		drop := r.lossRng.Float64() < p
		r.lossMu.Unlock()
		if drop {
			r.dropped.Add(1)
			wire.PutBuffer(buf)
			return
		}
	}
	if r.socks[r.sockOf[from]].pacer.submit(b, buf, r.ports[to], r.addrID[to]) {
		if c1 != nil {
			c1.Add(1)
		}
		if c2 != nil {
			c2.Add(1)
		}
	}
}

// sweepLoop periodically evicts stale reassembly streams and sends the
// NACKs repair wants, for every local peer.
func (r *Runtime) sweepLoop() {
	defer r.wg.Done()
	t := time.NewTicker(sweepInterval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case now := <-t.C:
			for _, p := range r.local {
				for _, req := range r.reasm[p].Sweep(now) {
					r.sendNack(p, req)
				}
			}
		}
	}
}

// sendNack writes one retransmission request from a local peer to the
// sender of an incomplete stream.
func (r *Runtime) sendNack(from int, req NackRequest) {
	if req.Src < 0 || req.Src >= r.n || r.down[from].Load() || r.down[req.Src].Load() {
		return
	}
	w := wire.GetBuffer()
	w.PutByte(frameNack)
	w.PutUvarint(uint64(from))
	w.PutUvarint(uint64(req.Src))
	wire.EncodeNack(w, wire.Nack{Stream: req.Stream, Missing: req.Missing})
	r.xmit(from, req.Src, w.Bytes(), w, &r.nacksSent, nil)
}

// NewGroup builds one federation of several Runtimes inside a single
// process, each hosting one peer range, with every socket bound to an
// ephemeral loopback port. This is the in-process stand-in for a
// multi-process deployment — messages still cross the kernel's UDP stack —
// used by the loopback tests and available to experiments.
// Options.PeersPerSocket multiplexes that many consecutive peers of each
// range behind one socket. The returned directory lists the bound
// addresses.
func NewGroup(ranges [][]int, opt Options) ([]*Runtime, []string, error) {
	n := 0
	owner := map[int]int{}
	for gi, g := range ranges {
		for _, p := range g {
			if _, dup := owner[p]; dup {
				return nil, nil, fmt.Errorf("netrt: peer %d in two ranges", p)
			}
			owner[p] = gi
			n++
		}
	}
	for p := 0; p < n; p++ {
		if _, ok := owner[p]; !ok {
			return nil, nil, fmt.Errorf("netrt: ranges do not cover peer %d", p)
		}
	}
	perSock := opt.PeersPerSocket
	if perSock <= 0 {
		perSock = 1
	}
	addrs := make([]*net.UDPAddr, n)
	conns := make([]*net.UDPConn, n)
	fail := func(err error) ([]*Runtime, []string, error) {
		closed := map[*net.UDPConn]bool{}
		for _, c := range conns {
			if c != nil && !closed[c] {
				closed[c] = true
				c.Close()
			}
		}
		return nil, nil, err
	}
	for _, g := range ranges {
		for i, p := range g {
			if i%perSock == 0 {
				c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
				if err != nil {
					return fail(fmt.Errorf("netrt: bind peer %d: %w", p, err))
				}
				conns[p] = c
				addrs[p] = c.LocalAddr().(*net.UDPAddr)
				continue
			}
			conns[p] = conns[g[i-i%perSock]]
			addrs[p] = addrs[g[i-i%perSock]]
		}
	}
	directory := make([]string, n)
	for p, a := range addrs {
		directory[p] = a.String()
	}
	rts := make([]*Runtime, len(ranges))
	for gi, g := range ranges {
		groupConns := make([]*net.UDPConn, n)
		for _, p := range g {
			groupConns[p] = conns[p]
		}
		rts[gi] = assemble(append([]*net.UDPAddr(nil), addrs...), g, groupConns, opt)
	}
	return rts, directory, nil
}

// --- runtime.Runtime ---

// NumPeers returns the federation size (all processes combined).
func (r *Runtime) NumPeers() int { return r.n }

// Local reports whether a peer is hosted by this Runtime.
func (r *Runtime) Local(peer int) bool {
	return peer >= 0 && peer < r.n && r.isLocal[peer]
}

// LocalPeers returns the peer indices this Runtime hosts.
func (r *Runtime) LocalPeers() []int { return append([]int(nil), r.local...) }

// Directory returns the federation's address directory, with local entries
// resolved to their actually-bound addresses.
func (r *Runtime) Directory() []string {
	out := make([]string, r.n)
	for i, a := range r.addrs {
		out[i] = a.String()
	}
	return out
}

// Clock returns a wall clock whose callbacks run in the peer's mailbox.
// Clocks of non-local peers read time but cannot schedule.
func (r *Runtime) Clock(peer int) runtime.Clock {
	return actor.Clock{
		Start:  r.start,
		Post:   func(fn func()) bool { return r.Exec(peer, fn) },
		Closed: r.closed.Load,
	}
}

// Transport returns the socket transport.
func (r *Runtime) Transport() runtime.Transport { return r }

// Rand returns the planning random source. Driving goroutine only.
func (r *Runtime) Rand() *rand.Rand { return r.planRng }

// Exec posts fn to a local peer's mailbox; it reports false for non-local
// peers and after Shutdown.
func (r *Runtime) Exec(peer int, fn func()) bool {
	if peer < 0 || peer >= r.n || r.boxes[peer] == nil {
		return false
	}
	return r.boxes[peer].Post(fn)
}

// Shutdown stops the pacers and the reassembly sweeper, closes every local
// socket (unblocking the receive loops), stops mailbox intake, drains
// queued work, and joins all goroutines. Afterwards local peer state may be
// inspected from the caller's goroutine.
func (r *Runtime) Shutdown() {
	if r.closed.Swap(true) {
		return
	}
	close(r.done)
	for _, s := range r.socks {
		s.pacer.stop()
		s.conn.Close()
	}
	for _, p := range r.local {
		r.boxes[p].Close()
	}
	r.wg.Wait()
}

// Stats returns cumulative transport counters: datagrams sent, messages
// delivered into mailboxes, and drops (down peers, decode failures, closed
// mailboxes, frames over MaxFrame, simulated loss, full pacer queues).
func (r *Runtime) Stats() (sent, delivered, dropped uint64) {
	return r.sent.Load(), r.delivered.Load(), r.dropped.Load()
}

// ClassBytes returns cumulative transmitted wire bytes split by message
// class (frame header + encoded body; fragment and retransmit framing
// overhead is not double-counted). Control bytes cover heartbeats,
// reconciliation, install/remove multicast, and topology/ack traffic —
// the quantity the paper's sharing argument (Fig 13) bounds as query
// count grows over one mesh.
func (r *Runtime) ClassBytes() (controlBytes, dataBytes uint64) {
	return r.ctlBytes.Load(), r.dataBytes.Load()
}

// --- runtime.Transport ---

// Handle registers a peer's delivery handler. Handlers registered for
// non-local peers are kept but never invoked in this process.
func (r *Runtime) Handle(peer int, h runtime.Handler) {
	r.hmu.Lock()
	r.hands[peer] = h
	r.hmu.Unlock()
}

// SetDown gates a peer locally: a down local peer neither sends nor
// receives; marking a remote peer down stops this process from sending to
// it. Other processes keep their own view — a real deployment has no
// global kill switch.
func (r *Runtime) SetDown(peer int, down bool) { r.down[peer].Store(down) }

// Down reports this process's view of a peer's gate.
func (r *Runtime) Down(peer int) bool { return r.down[peer].Load() }

// Latency returns the measured one-way latency (smoothed RTT/2) between
// the pair when either side is local and has a measurement, and
// DefaultLatency otherwise. Measurements accumulate passively from message
// echoes and actively from ProbeAll.
func (r *Runtime) Latency(a, b int) time.Duration {
	if d, ok := r.Measured(a, b); ok {
		return d
	}
	return r.opt.DefaultLatency
}

// Measured returns the smoothed one-way latency for a pair, if this
// process has measured it from either end.
func (r *Runtime) Measured(a, b int) (time.Duration, bool) {
	if a < 0 || b < 0 || a >= r.n || b >= r.n {
		return 0, false
	}
	for _, pair := range [2][2]int{{a, b}, {b, a}} {
		l, rem := pair[0], pair[1]
		if !r.isLocal[l] {
			continue
		}
		r.peerMu[l].Lock()
		rtt, ok := r.rtt[l][rem]
		r.peerMu[l].Unlock()
		if ok {
			return rtt / 2, true
		}
	}
	return 0, false
}

// Send encodes the frame header, appends the message's wire bytes, and
// submits the datagram(s) to the sending peer's paced writer. The payload
// is normally the runtime.Frame the fabric built (its Bytes go on the wire
// unchanged — the message was encoded exactly once); any other payload is
// encoded here, so tests can Send bare messages. A frame that fits the MTU
// travels as a single frameMsg datagram carrying the passive RTT echo; a
// larger frame — an install chunk of a realistic program — is split into a
// fragment train, buffered for NACK retransmission, and reassembled on the
// far side, so every fabric transmit shares this one path regardless of
// size up to Options.MaxMessage.
func (r *Runtime) Send(from, to int, class runtime.Class, size int, payload any) bool {
	if from == to || from < 0 || from >= r.n || to < 0 || to >= r.n || !r.isLocal[from] {
		return false
	}
	if r.closed.Load() || r.down[from].Load() || r.down[to].Load() {
		return false
	}
	// One pooled buffer carries header and body; the common in-MTU path
	// hands it to the pacer without a single heap allocation.
	w := wire.GetBuffer()
	w.PutByte(frameMsg)
	w.PutUvarint(uint64(from))
	w.PutUvarint(uint64(to))
	w.PutVarint(stampNow(r.start)) // transmit stamp
	echoStamp, hold := r.takeEcho(from, to)
	w.PutVarint(echoStamp)
	w.PutVarint(hold)
	w.PutByte(byte(class))
	head := w.Len()
	switch p := payload.(type) {
	case *runtime.Frame:
		// The Frame's Bytes go on the wire unchanged — the message was
		// encoded exactly once by the fabric.
		w.PutRaw(p.Bytes)
	default:
		if err := wire.EncodeMessage(w, payload); err != nil {
			wire.PutBuffer(w)
			r.dropped.Add(1)
			return false
		}
	}
	if w.Len()-head > r.opt.MaxMessage {
		wire.PutBuffer(w)
		r.dropped.Add(1)
		return false
	}
	if class == runtime.ClassData {
		r.dataBytes.Add(uint64(w.Len()))
		r.dataFrames.Add(1)
	} else {
		r.ctlBytes.Add(uint64(w.Len()))
		r.ctlFrames.Add(1)
	}
	if w.Len() <= r.opt.MTU {
		r.xmit(from, to, w.Bytes(), w, &r.sent, nil)
		return true
	}
	// The fragment datagrams embed copies of the body, so the frame buffer
	// can go back to the pool as soon as the split is done.
	r.sendFragmented(from, to, w.Bytes()[head:])
	wire.PutBuffer(w)
	return true
}

var _ runtime.FrameBytesConsumer = (*Runtime)(nil)

// ConsumesFrameBytes implements runtime.FrameBytesConsumer: Send copies a
// Frame's Bytes into its own pooled buffer synchronously, so the sender
// may recycle the frame and the array backing its Bytes the moment Send
// returns.
func (r *Runtime) ConsumesFrameBytes() bool { return true }

// sendFragmented splits an over-MTU frame into a fragment train, registers
// it with the sender's retransmit buffer, and submits every fragment to
// the paced writer.
func (r *Runtime) sendFragmented(from, to int, body []byte) {
	fs := r.frags[from]
	stream := fs.nextID()
	frags := SplitFragments(stream, body, r.opt.fragPayload())
	dgrams := make([][]byte, len(frags))
	for i, f := range frags {
		var w wire.Buffer
		w.PutByte(frameFrag)
		w.PutUvarint(uint64(from))
		w.PutUvarint(uint64(to))
		wire.EncodeFragment(&w, f)
		dgrams[i] = w.Bytes()
	}
	// The datagrams embed copies of body's chunks (wire.Buffer appends), so
	// the retransmit buffer holds them safely past the caller's frame.
	// Because that buffer retains them indefinitely for NACK service, they
	// are built in plain (unpooled) buffers and travel with buf == nil.
	fs.register(stream, to, dgrams)
	for _, d := range dgrams {
		r.xmit(from, to, d, nil, &r.sent, &r.fragsSent)
	}
	r.fragStreams.Add(1)
	for {
		cur := r.maxStreamFrags.Load()
		if uint64(len(dgrams)) <= cur || r.maxStreamFrags.CompareAndSwap(cur, uint64(len(dgrams))) {
			break
		}
	}
}

// MaxFrame reports the largest frame the fragmentation path carries in one
// Send — the runtime.Transport hint bulk senders (the install multicast)
// size their messages from.
func (r *Runtime) MaxFrame() int { return r.opt.MaxMessage }

// FragStats reports the fragmentation layer's counters across this
// runtime's local peers.
type FragStats struct {
	// StreamsSent counts fragment trains transmitted (frames over the MTU).
	StreamsSent uint64
	// FragsSent counts fragment datagrams submitted (first transmissions).
	FragsSent uint64
	// MaxStreamFrags is the longest train sent — MaxStreamFrags × the
	// fragment payload bounds the largest frame that crossed the wire.
	MaxStreamFrags uint64
	// Retransmits counts fragments resent in answer to NACKs.
	Retransmits uint64
	// NacksSent counts repair requests this runtime's receivers issued.
	NacksSent uint64
	// Reassembled counts frames successfully rebuilt from fragments.
	Reassembled uint64
	// ReassemblyEvicted counts partial streams dropped (stale, oversized,
	// or displaced by the memory bound).
	ReassemblyEvicted uint64
}

// FragStats returns the fragmentation counters.
func (r *Runtime) FragStats() FragStats {
	st := FragStats{
		StreamsSent:    r.fragStreams.Load(),
		FragsSent:      r.fragsSent.Load(),
		MaxStreamFrags: r.maxStreamFrags.Load(),
		Retransmits:    r.retransmits.Load(),
		NacksSent:      r.nacksSent.Load(),
	}
	for _, p := range r.local {
		done, evicted := r.reasm[p].Stats()
		st.Reassembled += done
		st.ReassemblyEvicted += evicted
	}
	return st
}

// takeEcho returns the newest transmit stamp received from `to` at local
// peer `from`, plus how long ago it arrived — the passive RTT echo.
func (r *Runtime) takeEcho(from, to int) (stamp, hold int64) {
	r.peerMu[from].Lock()
	defer r.peerMu[from].Unlock()
	e, ok := r.echo[from][to]
	if !ok {
		return 0, 0
	}
	return e.stamp, int64(time.Since(e.at))
}

// noteRTT folds one RTT sample for (local, remote) into the EWMA.
func (r *Runtime) noteRTT(local, remote int, sample time.Duration) {
	if sample < 0 {
		return
	}
	r.peerMu[local].Lock()
	if old, ok := r.rtt[local][remote]; ok {
		a := r.opt.RTTAlpha
		r.rtt[local][remote] = time.Duration((1-a)*float64(old) + a*float64(sample))
	} else {
		r.rtt[local][remote] = sample
	}
	r.peerMu[local].Unlock()
}

// observe handles one RTT sample at a local peer: it feeds the smoothed
// table and, when the remote's coordinate is known from gossip, runs one
// Vivaldi update — the passive measurements the transport already collects
// are exactly the algorithm's input.
func (r *Runtime) observe(local, remote int, sample time.Duration) {
	if sample < 0 {
		return
	}
	r.noteRTT(local, remote, sample)
	r.coordMu.RLock()
	c, e := r.peerCoords[remote], r.peerErrs[remote]
	r.coordMu.RUnlock()
	if c != nil {
		// The embedding is in one-way milliseconds; a datagram RTT is two
		// flights.
		r.nodes[local].Update(sample/2, c, e)
	}
}

// noteCoord caches the latest coordinate gossiped by a peer.
func (r *Runtime) noteCoord(peer int, c vivaldi.Coordinate, errEst float64) {
	r.coordMu.Lock()
	r.peerCoords[peer] = c
	r.peerErrs[peer] = errEst
	r.coordMu.Unlock()
}

// recvLoop reads datagrams for one shared socket until it closes,
// demuxing each frame to its destination peer. The read buffer comes from
// the shared pool and is sized from the MTU — datagrams never exceed it
// (over-MTU frames travel fragmented) — so a thousand sockets do not pin
// 64 KiB each. The loop owns the buffer for its lifetime; nothing
// downstream retains it (decoders copy what they keep).
func (r *Runtime) recvLoop(s *lsock) {
	defer r.wg.Done()
	size := r.opt.MTU + 512
	if size < 2048 {
		size = 2048
	}
	pb := wire.GetBuffer()
	defer wire.PutBuffer(pb)
	buf := pb.Reserve(size)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Shutdown
		}
		r.handleDatagram(buf[:n])
	}
}

// handleDatagram unpacks one datagram: a coalesced train is walked frame
// by frame, anything else is a single frame.
func (r *Runtime) handleDatagram(b []byte) {
	if len(b) > 0 && b[0] == frameTrain {
		if err := wire.ForEachTrainFrame(b[1:], r.handleFrame); err != nil {
			r.dropped.Add(1)
		}
		return
	}
	r.handleFrame(b)
}

// handleFrame parses one frame, accepting it for whichever local peer it
// addresses — frames for every peer multiplexed behind a socket arrive on
// that one socket. Decoding runs on the receive goroutine; only the
// decoded message enters the mailbox, so nothing retains the read buffer.
func (r *Runtime) handleFrame(b []byte) {
	rd := wire.NewReader(b)
	kind, err := rd.Byte()
	if err != nil {
		return
	}
	srcU, err := rd.Uvarint()
	if err != nil || srcU >= uint64(r.n) {
		return
	}
	dstU, err := rd.Uvarint()
	if err != nil || dstU >= uint64(r.n) || !r.isLocal[dstU] {
		return // misrouted or stale directory entry
	}
	peer := int(dstU)
	src := int(srcU)
	now := time.Since(r.start)

	switch kind {
	case framePing:
		stamp, err := rd.Varint()
		if err != nil || r.down[peer].Load() {
			return
		}
		if c, e, ok := r.readCoord(rd); ok {
			r.noteCoord(src, c, e)
		}
		w := wire.GetBuffer()
		w.PutByte(framePong)
		w.PutUvarint(uint64(peer))
		w.PutUvarint(srcU)
		w.PutVarint(stamp)
		w.PutVarint(0) // replied immediately: no hold
		putCoord(w, r.nodes[peer])
		r.xmit(peer, src, w.Bytes(), w, nil, nil)

	case framePong:
		stamp, err := rd.Varint()
		if err != nil {
			return
		}
		hold, err := rd.Varint()
		if err != nil {
			return
		}
		if c, e, ok := r.readCoord(rd); ok {
			r.noteCoord(src, c, e)
		}
		r.observe(peer, src, now-time.Duration(stamp)-time.Duration(hold))

	case frameMsg:
		stamp, err := rd.Varint()
		if err != nil {
			return
		}
		echoStamp, err := rd.Varint()
		if err != nil {
			return
		}
		hold, err := rd.Varint()
		if err != nil {
			return
		}
		if _, err := rd.Byte(); err != nil { // class: accounted by the sender
			return
		}
		if r.down[peer].Load() {
			r.dropped.Add(1)
			return
		}
		r.peerMu[peer].Lock()
		r.echo[peer][src] = echoState{stamp: stamp, at: time.Now()}
		r.peerMu[peer].Unlock()
		if echoStamp != 0 {
			r.observe(peer, src, now-time.Duration(echoStamp)-time.Duration(hold))
		}
		r.deliverWire(peer, src, rd.Rest())

	case frameFrag:
		if r.down[peer].Load() {
			r.dropped.Add(1)
			return
		}
		f, err := wire.DecodeFragment(rd)
		if err != nil || rd.Remaining() != 0 {
			return
		}
		msg, err := r.reasm[peer].Add(src, f, time.Now())
		if err != nil {
			r.dropped.Add(1)
			return
		}
		if msg != nil {
			r.deliverWire(peer, src, msg)
		}

	case frameNack:
		// The down gate covers repair too: a "down" peer must not keep
		// serving retransmissions (nor push them toward a peer it regards
		// as down) or failure injection would leak deliveries.
		if r.down[peer].Load() || r.down[src].Load() {
			return
		}
		n, err := wire.DecodeNack(rd)
		if err != nil || rd.Remaining() != 0 || len(n.Missing) == 0 {
			return
		}
		r.resendFragments(peer, src, n)
	}
}

// deliverWire decodes one complete wire frame addressed to a local peer —
// a single-datagram frameMsg body or a reassembled fragment stream — and
// posts it into the peer's mailbox.
func (r *Runtime) deliverWire(peer, src int, frame []byte) {
	msg, err := wire.DecodeMessage(frame)
	if err != nil {
		r.dropped.Add(1)
		return
	}
	switch m := msg.(type) {
	case *wire.Envelope:
		// The envelope's SentAt was stamped against the sender's clock
		// base, which a different process does not share. Rewrite it in
		// the receiver's frame using the transport's measured one-way
		// flight time — the peer derives exactly that from it (UdpCC
		// measures RTT/2 at the transport, not via host timestamps).
		m.SentAt = r.rewriteSentAt(peer, src)
	case *wire.EnvelopeBatch:
		// A batch shares one transmit stamp; every entry inherited it at
		// decode, so all of them rewrite together.
		sentAt := r.rewriteSentAt(peer, src)
		m.SentAt = sentAt
		for i := range m.Envelopes {
			m.Envelopes[i].SentAt = sentAt
		}
	}
	r.hmu.RLock()
	h := r.hands[peer]
	r.hmu.RUnlock()
	if h == nil {
		r.dropped.Add(1)
		return
	}
	// Report the wire-frame length, not the datagram's: it is the size
	// the sending fabric charged, so accounting agrees across backends.
	size := len(frame)
	if r.boxes[peer].Post(func() { h(src, msg, size) }) {
		r.delivered.Add(1)
	} else {
		r.dropped.Add(1)
	}
}

// rewriteSentAt computes the receiver-frame transmit stamp for an arriving
// summary: local time now minus the measured one-way flight to the sender.
func (r *Runtime) rewriteSentAt(peer, src int) time.Duration {
	flight := r.opt.DefaultLatency
	if d, ok := r.Measured(peer, src); ok {
		flight = d
	}
	return time.Since(r.start) - flight
}

// resendFragments answers a NACK at the original sender: the still-buffered
// fragment datagrams of the stream are resubmitted to the paced writer.
// A stream already evicted from the retransmit buffer is simply gone — the
// receiver ages the partial stream out and the protocol layers above
// (reconciliation, the topology service) repair the loss.
func (r *Runtime) resendFragments(peer, src int, n wire.Nack) {
	dgrams := r.frags[peer].lookup(n.Stream, src)
	if dgrams == nil {
		return
	}
	for _, idx := range n.Missing {
		if int(idx) >= len(dgrams) {
			continue
		}
		// Retransmit buffer keeps owning the datagram: buf stays nil.
		r.xmit(peer, src, dgrams[idx], nil, &r.retransmits, nil)
	}
}

// --- probing ---

// stampNow returns a transmit timestamp that is never 0, since 0 is the
// "no echo" sentinel in the frame header.
func stampNow(start time.Time) int64 {
	if s := int64(time.Since(start)); s != 0 {
		return s
	}
	return 1
}

// sendPing writes one RTT probe from a local peer, carrying its Vivaldi
// coordinate.
func (r *Runtime) sendPing(from, to int) {
	w := wire.GetBuffer()
	w.PutByte(framePing)
	w.PutUvarint(uint64(from))
	w.PutUvarint(uint64(to))
	w.PutVarint(stampNow(r.start))
	putCoord(w, r.nodes[from])
	r.xmit(from, to, w.Bytes(), w, nil, nil)
}

// putCoord appends a coordinate extension to a probe frame (the same
// wire.PutCoordExt layout heartbeats use).
func putCoord(w *wire.Buffer, n *vivaldi.Node) {
	c, e := n.Snapshot()
	w.PutCoordExt(c, e)
}

// readCoord reads the optional trailing coordinate extension of a probe
// frame. Frames from binaries predating the extension simply end here;
// malformed extensions and coordinates whose component count does not
// match this federation's embedding (3 dimensions, plus the height under
// Options.VivaldiHeight) are ignored rather than poisoning the probe — a
// foreign-sized coordinate would corrupt distance computations in
// CoordError and the planner's clustering.
func (r *Runtime) readCoord(rd *wire.Reader) (vivaldi.Coordinate, float64, bool) {
	c, e, err := rd.CoordExt()
	if err != nil || len(c) != r.vcfg.WireDims() {
		return nil, 0, false
	}
	return vivaldi.Coordinate(c), e, true
}

// VivaldiHeight reports whether this federation's coordinates carry the
// height-vector component (federation planning consults it to build a
// height-aware latency model).
func (r *Runtime) VivaldiHeight() bool { return r.vcfg.Height }

// ProbeAll primes the RTT table: every local peer pings every other peer,
// rounds times, sleeping wait between rounds for the pongs to land. Run it
// before planning so Latency answers from measurement instead of the
// default (the prototype let Vivaldi run "for at least ten rounds before
// interconnecting operators").
func (r *Runtime) ProbeAll(rounds int, wait time.Duration) {
	for k := 0; k < rounds; k++ {
		if r.closed.Load() {
			return
		}
		for _, p := range r.local {
			for q := 0; q < r.n; q++ {
				if q != p {
					r.sendPing(p, q)
				}
			}
		}
		time.Sleep(wait)
	}
}

// --- decentralized Vivaldi ---

// VivaldiNode returns a local peer's Vivaldi coordinate state (nil for
// peers this process does not host). The peer core piggybacks the
// coordinate on heartbeats and updates it from measured RTTs.
func (r *Runtime) VivaldiNode(peer int) *vivaldi.Node {
	if peer < 0 || peer >= r.n {
		return nil
	}
	return r.nodes[peer]
}

// Gossip runs coordinate gossip rounds: each local peer probes fanout
// random peers (every peer when fanout <= 0) with a coordinate-carrying
// ping; each pong delivers an RTT sample plus the responder's coordinate —
// one Vivaldi update. Every process of a federation gossips, so worker
// peers embed themselves from their own measurements; the prototype let
// Vivaldi run "for at least ten rounds before interconnecting operators".
func (r *Runtime) Gossip(rounds, fanout int, wait time.Duration) {
	rng := rand.New(rand.NewSource(r.opt.Seed ^ 0x5deece66d))
	for k := 0; k < rounds; k++ {
		if r.closed.Load() {
			return
		}
		for _, p := range r.local {
			sent := 0
			for _, q := range rng.Perm(r.n) {
				if q == p {
					continue
				}
				r.sendPing(p, q)
				if sent++; fanout > 0 && sent >= fanout {
					break
				}
			}
		}
		time.Sleep(wait)
	}
}

// Coordinates returns this process's view of every peer's coordinate:
// local peers report their node state, remote peers the last coordinate
// they gossiped. known[i] is false where nothing has been heard yet —
// planning from coordinates needs the full federation covered.
func (r *Runtime) Coordinates() ([]vivaldi.Coordinate, []float64, []bool) {
	coords := make([]vivaldi.Coordinate, r.n)
	errs := make([]float64, r.n)
	known := make([]bool, r.n)
	for p := 0; p < r.n; p++ {
		if r.isLocal[p] {
			coords[p], errs[p] = r.nodes[p].Snapshot()
			known[p] = true
		}
	}
	r.coordMu.RLock()
	for p := 0; p < r.n; p++ {
		if !known[p] && r.peerCoords[p] != nil {
			coords[p] = r.peerCoords[p].Clone()
			errs[p] = r.peerErrs[p]
			known[p] = true
		}
	}
	r.coordMu.RUnlock()
	return coords, errs, known
}

// CoordError measures embedding quality against the transport's own
// measurements: the median over (local, remote) pairs with both a known
// coordinate and a measured RTT of |coordinate distance - measured one-way|
// in milliseconds, plus the number of pairs compared. Convergence logging
// and tests assert this shrinks below a tolerance.
func (r *Runtime) CoordError() (medianMs float64, pairs int) {
	coords, _, known := r.Coordinates()
	var errs []float64
	for _, p := range r.local {
		for q := 0; q < r.n; q++ {
			if q == p || !known[q] {
				continue
			}
			m, ok := r.Measured(p, q)
			if !ok {
				continue
			}
			pred := r.vcfg.Distance(coords[p], coords[q])
			actual := float64(m) / float64(time.Millisecond)
			errs = append(errs, math.Abs(pred-actual))
		}
	}
	if len(errs) == 0 {
		return 0, 0
	}
	sort.Float64s(errs)
	return errs[len(errs)/2], len(errs)
}
