package netrt_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/plan"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
)

// The two latency topologies of the drift tests: 9 peers in three 1ms
// clusters with 25ms between clusters. Before the shift peers cluster by
// thirds ({0,1,2}, {3,4,5}, {6,7,8}); after it by residue ({0,3,6},
// {1,4,7}, {2,5,8}) — a route change that re-homes every peer, small
// enough relative to the protocol's timeout slack that the shift itself
// cannot dent completeness.
func delayByThirds(a, b int) time.Duration {
	if a/3 == b/3 {
		return time.Millisecond
	}
	return 25 * time.Millisecond
}

func delayByResidue(a, b int) time.Duration {
	if a%3 == b%3 {
		return time.Millisecond
	}
	return 25 * time.Millisecond
}

// gossipUntilStopped keeps every runtime's Vivaldi gossip running in the
// background so the coordinator's view tracks the embedding for the whole
// run (what `mortard -vivaldi` workers do). Gossip returns on Shutdown.
func gossipUntilStopped(rts []*netrt.Runtime, stop <-chan struct{}, wg *sync.WaitGroup) {
	for _, rt := range rts {
		wg.Add(1)
		go func(rt *netrt.Runtime) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.Gossip(1, 0, 50*time.Millisecond)
			}
		}(rt)
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s not reached within %v", what, d)
}

// The tentpole acceptance test: a 9-peer, 3-runtime loopback federation
// plans from gossiped coordinates under one PairDelay topology; the
// topology shifts mid-run; the drift monitor detects it from the moving
// embedding, replans into epoch 1, the query migrates make-before-break —
// per-window completeness (max across epochs) never drops below the
// pre-shift level — the old epoch's state drains to zero on every
// runtime, and the new plan is strictly cheaper than the stale one under
// the true shifted topology. Race-clean (the tier-1 suite runs -race).
func TestDriftReplanMigratesEpoch(t *testing.T) {
	const peers = 9
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}},
		netrt.Options{Seed: 71, PairDelay: delayByThirds})
	if err != nil {
		t.Fatal(err)
	}
	stopGossip := make(chan struct{})
	var gwg sync.WaitGroup
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
		close(stopGossip)
		gwg.Wait()
	}()

	// Workers before any traffic, so their handlers exist when the install
	// multicast lands.
	w1, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}
	gossipUntilStopped(rts, stopGossip, &gwg)
	waitUntil(t, 15*time.Second, "initial embedding coverage", func() bool {
		_, _, known := rts[0].Coordinates()
		for _, k := range known {
			if !k {
				return false
			}
		}
		med, pairs := rts[0].CoordError()
		return pairs > 0 && med < 6.0
	})

	prog, err := msl.Parse("query q as count() from sensors window time 500ms slide 500ms trees 2 bf 4")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !fed.PlannedFromCoords {
		t.Fatal("planning fell back to the coordinator-local embedding")
	}
	oldDef := fed.Def("q")

	var mu sync.Mutex
	winMax := map[int64]int{}
	epochFull := map[uint32]bool{}
	fed.Fab.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		if r.Count > winMax[r.WindowIndex] {
			winMax[r.WindowIndex] = r.Count
		}
		if r.Count == peers {
			epochFull[r.Epoch] = true
		}
		mu.Unlock()
	})
	for i, f := range []*federation.Federation{fed, w1, w2} {
		f.StartSensors(500*time.Millisecond, func(int) tuple.Raw {
			return tuple.Raw{Vals: []float64{1}}
		}, rand.New(rand.NewSource(int64(40+i))))
	}
	waitUntil(t, 20*time.Second, "pre-shift completeness", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return epochFull[0]
	})

	// The route change: every runtime's outgoing datagrams now see the
	// residue clustering. Passive RTT echoes re-measure, Vivaldi
	// re-embeds, gossip spreads the moved coordinates.
	for _, rt := range rts {
		rt.SetPairDelay(delayByResidue)
	}

	// Threshold note: with the root pinned at peer 0, even the optimal
	// post-shift tree still pays inter-cluster hops to reach it, so the
	// deployed-versus-candidate cost ratio settles near 1.4 once the
	// embedding re-converges — the default 0.25 threshold detects that
	// steady state; a 0.5 threshold would only fire on the transient.
	var replans []federation.ReplanResult
	var rmu sync.Mutex
	mon := fed.StartMonitor(federation.MonitorOptions{
		Interval:          250 * time.Millisecond,
		Threshold:         0.25,
		Hysteresis:        2,
		MinReplanInterval: 10 * time.Second,
		OnReplan: func(r federation.ReplanResult) {
			rmu.Lock()
			replans = append(replans, r)
			rmu.Unlock()
		},
	})
	defer mon.Stop()

	waitUntil(t, 45*time.Second, "drift-triggered replan", func() bool {
		return mon.Replans() >= 1
	})
	rmu.Lock()
	first := replans[0]
	rmu.Unlock()
	if first.Epoch != 1 || !first.FromCoords {
		t.Fatalf("replan result %+v — want epoch 1 planned from gossiped coordinates", first)
	}
	if first.NewCost >= first.OldCost {
		t.Fatalf("replanned cost %v not below stale plan's %v", first.NewCost, first.OldCost)
	}

	// Migration completes across all three runtimes.
	waitUntil(t, 60*time.Second, "epoch retirement at the root", func() bool {
		return fed.Fab.Stats.EpochsRetired.Load() >= 1
	})
	feds := []*federation.Federation{fed, w1, w2}
	waitUntil(t, 30*time.Second, "old epoch drained everywhere", func() bool {
		for _, f := range feds {
			if installed, _ := f.Fab.EpochCounts("q", 0); installed != 0 {
				return false
			}
		}
		return true
	})
	waitUntil(t, 30*time.Second, "new epoch completeness", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return epochFull[1]
	})
	newDef := fed.Def("q")
	mon.Stop()
	for _, rt := range rts {
		rt.Shutdown()
	}

	// Post-shutdown state: old epoch fully gone, new epoch wired on every
	// runtime's local peers (each fabric sees only the 3 peers it hosts).
	for gi, f := range feds {
		if got := f.Fab.EpochInstalledCount("q", 0); got != 0 {
			t.Fatalf("runtime %d: epoch 0 still installed on %d peers", gi, got)
		}
		if got := f.Fab.EpochWiredCount("q", 1); got != 3 {
			t.Fatalf("runtime %d: epoch 1 wired on %d of its 3 peers", gi, got)
		}
	}

	// The migrated plan must beat the stale plan under the TRUE shifted
	// topology — not merely under the embedding's view of it.
	trueModel := plan.LatencyFunc(delayByResidue)
	staleQ := plan.Quality(trueModel, oldDef.Trees)
	newQ := plan.Quality(trueModel, newDef.Trees)
	if newQ >= staleQ {
		t.Fatalf("post-migration tree cost %v not strictly below the stale plan's %v under the shifted topology", newQ, staleQ)
	}

	// Completeness never dropped below the pre-shift level: from the first
	// full window to the shutdown tail, every window's best report reached
	// all 9 peers.
	mu.Lock()
	defer mu.Unlock()
	var first64, last64 int64 = -1, -1
	for w, c := range winMax {
		if c == peers && (first64 < 0 || w < first64) {
			first64 = w
		}
		if w > last64 {
			last64 = w
		}
	}
	if first64 < 0 {
		t.Fatal("no fully complete window")
	}
	for w := first64; w <= last64-6; w++ {
		if winMax[w] != peers {
			t.Fatalf("window %d best completeness %d of %d — dipped during migration", w, winMax[w], peers)
		}
	}
}

// Churn during migration: the federation replans while two peers (one per
// worker runtime) are down, so their install chunks and acks are lost
// mid-migration. Reconciliation re-adopts the new epoch on recovery, the
// re-ack path completes the retirement, and the run still reaches full
// completeness on the new epoch with the old epoch's state fully drained.
func TestReplanUnderChurnReachesCompleteness(t *testing.T) {
	const peers = 9
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}},
		netrt.Options{Seed: 72, PairDelay: delayByThirds})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()
	w1, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}
	prog, err := msl.Parse("query q as count() from sensors window time 500ms slide 500ms trees 2 bf 4")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	epochFull := map[uint32]bool{}
	var bestNew atomic.Int64
	fed.Fab.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		if r.Count == peers {
			epochFull[r.Epoch] = true
		}
		mu.Unlock()
		if r.Epoch == 1 && int64(r.Count) > bestNew.Load() {
			bestNew.Store(int64(r.Count))
		}
	})
	for i, f := range []*federation.Federation{fed, w1, w2} {
		f.StartSensors(500*time.Millisecond, func(int) tuple.Raw {
			return tuple.Raw{Vals: []float64{1}}
		}, rand.New(rand.NewSource(int64(50+i))))
	}
	waitUntil(t, 20*time.Second, "pre-churn completeness", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return epochFull[0]
	})

	// Shift the topology, then replan with two peers down — their install
	// chunks and acks vanish mid-migration (FailRandom on the worker
	// runtimes: the owning runtime's gate blocks both directions).
	for _, rt := range rts {
		rt.SetPairDelay(delayByResidue)
	}
	downed := []struct{ rt, peer int }{{1, 4}, {2, 7}}
	for _, d := range downed {
		rts[d.rt].SetDown(d.peer, true)
	}
	res, err := fed.Replan("q")
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("replan produced epoch %d", res.Epoch)
	}
	time.Sleep(2 * time.Second) // migration proceeds against the holes
	if fed.Fab.Stats.EpochsRetired.Load() != 0 {
		t.Fatal("retirement fired while members were down — make-before-break violated")
	}
	for _, d := range downed {
		rts[d.rt].SetDown(d.peer, false)
	}

	// Recovery: reconciliation re-adopts, re-acks complete the hand-off.
	waitUntil(t, 90*time.Second, "retirement after recovery", func() bool {
		return fed.Fab.Stats.EpochsRetired.Load() >= 1
	})
	waitUntil(t, 30*time.Second, "post-churn completeness on the new epoch", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return epochFull[1]
	})
	feds := []*federation.Federation{fed, w1, w2}
	waitUntil(t, 30*time.Second, "old epoch drained everywhere", func() bool {
		for _, f := range feds {
			if installed, _ := f.Fab.EpochCounts("q", 0); installed != 0 {
				return false
			}
		}
		return true
	})
	for _, rt := range rts {
		rt.Shutdown()
	}
	for gi, f := range feds {
		if got := f.Fab.EpochInstalledCount("q", 0); got != 0 {
			t.Fatalf("runtime %d: epoch 0 survived the churned migration on %d peers", gi, got)
		}
	}
}

// Height-vector coordinates over netrt: with Options.VivaldiHeight every
// gossiped coordinate carries the extra height component, the embedding
// still converges against the measured RTTs, and flat 3-component
// coordinates (a mixed-model sender) are rejected before caching.
func TestVivaldiHeightGossip(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}, {2, 3}},
		netrt.Options{Seed: 73, VivaldiHeight: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()
	if !rts[0].VivaldiHeight() {
		t.Fatal("VivaldiHeight not reported")
	}
	for _, rt := range rts {
		rt.Gossip(5, 0, 20*time.Millisecond)
	}
	coords, _, known := rts[0].Coordinates()
	for p, k := range known {
		if !k {
			t.Fatalf("peer %d coordinate unknown after gossip", p)
		}
		if len(coords[p]) != 4 {
			t.Fatalf("peer %d coordinate has %d components, want 4 (3 dims + height)", p, len(coords[p]))
		}
		if h := coords[p][3]; h <= 0 {
			t.Fatalf("peer %d height %v not positive", p, h)
		}
	}
	if med, pairs := rts[0].CoordError(); pairs == 0 || med > 5.0 {
		t.Fatalf("height embedding did not converge: median %.3fms over %d pairs", med, pairs)
	}
}
