package netrt_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/runtime/netrt"
	"repro/internal/wire"
)

// A rolling upgrade leaves the federation version-mixed: one worker
// process still sends the pre-batch v3 wire (single summary envelopes,
// no staging) while the coordinator and the other worker run the v4
// coalescing path. The query must reach full completeness anyway — v4
// decoders accept v3 frames, and the v3 process's decoder (the shared
// codec) accepts v4 batches — and the v4 side must actually exercise
// batching while the pinned side never does.
func TestMixedWireVersionFederation(t *testing.T) {
	const peers = 12
	prog, err := msl.Parse("query peers as count() from sensors window time 1s slide 1s trees 4 bf 16")
	if err != nil {
		t.Fatal(err)
	}
	rts, _, err := netrt.NewGroup([][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}, netrt.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 is the straggler process: frames pinned to v3, staging off.
	pinned := mortar.DefaultConfig()
	pinned.WireCompat = wire.VersionNoBatch
	w1, err := federation.NewWorkerCfg(rts[1], pinned)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := federation.NewWorker(rts[2])
	if err != nil {
		t.Fatal(err)
	}
	rts[0].ProbeAll(3, 20*time.Millisecond)
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	best := runFederations([]*federation.Federation{coord, w1, w2}, peers, func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	})
	if best != peers {
		t.Fatalf("mixed-version completeness %d of %d", best, peers)
	}
	if s := w1.Fab.Stats.SummariesStaged.Load(); s != 0 {
		t.Fatalf("v3-pinned worker staged %d summaries", s)
	}
	if bf := w1.Fab.Stats.BatchFrames.Load(); bf != 0 {
		t.Fatalf("v3-pinned worker sent %d batch frames", bf)
	}
	staged := coord.Fab.Stats.SummariesStaged.Load() + w2.Fab.Stats.SummariesStaged.Load()
	if staged == 0 {
		t.Fatal("v4 processes staged nothing — the coalescing path never ran")
	}
}
