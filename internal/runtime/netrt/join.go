package netrt

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"
)

// The join barrier is how a multi-process federation starts in lockstep:
// worker processes dial the coordinator over TCP and announce the peer
// range they host ("JOIN lo-hi\n"); the coordinator accepts until its own
// range plus the joined ranges cover the whole directory, then plans. The
// accepted connections stay open for the run — the coordinator hanging up
// is the end-of-run signal workers wait on.

// AwaitWorkers accepts JOIN lines on a TCP listener until the local range
// plus the joined ranges cover every peer of an n-peer directory, or until
// timeout (when positive) elapses. Malformed join lines are dropped and
// the connection closed; overlapping or duplicate ranges are counted once.
// On success the accepted connections are returned still open; closing
// them signals the end of the run. On timeout the error reports how many
// peers were still uncovered, and every accepted connection is closed — a
// worker joining after the barrier timed out finds nobody listening.
func AwaitWorkers(listen string, local []int, n int, timeout time.Duration) ([]net.Conn, error) {
	covered := make([]bool, n)
	remaining := n
	for _, p := range local {
		if p >= 0 && p < n && !covered[p] {
			covered[p] = true
			remaining--
		}
	}
	if remaining == 0 {
		return nil, nil
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	defer l.Close()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		if tl, ok := l.(*net.TCPListener); ok {
			_ = tl.SetDeadline(deadline)
		}
	}
	var conns []net.Conn
	abort := func(err error) ([]net.Conn, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for remaining > 0 {
		c, err := l.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return abort(fmt.Errorf("netrt: join barrier timed out after %v with %d of %d peers uncovered", timeout, remaining, n))
			}
			return abort(err)
		}
		// The JOIN line must arrive within the barrier deadline too — a
		// connection that sends nothing (a port scan, a hung worker) must
		// not hold the barrier open past its timeout.
		if !deadline.IsZero() {
			_ = c.SetReadDeadline(deadline)
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			c.Close()
			continue
		}
		_ = c.SetReadDeadline(time.Time{}) // joined: the conn stays open for the run
		spec, ok := strings.CutPrefix(strings.TrimSpace(line), "JOIN ")
		if !ok {
			c.Close()
			continue
		}
		peersRange, err := ParseRange(spec, n)
		if err != nil {
			c.Close()
			continue
		}
		for _, p := range peersRange {
			if !covered[p] {
				covered[p] = true
				remaining--
			}
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// JoinBarrier dials the coordinator's barrier address, retrying until
// timeout (the coordinator may start after its workers), and announces the
// local peer range. The returned connection stays open; the coordinator
// hanging up on it signals the end of the run (WaitHangup blocks on that).
func JoinBarrier(addr string, local []int, timeout time.Duration) (net.Conn, error) {
	if len(local) == 0 {
		return nil, fmt.Errorf("netrt: join with no local peers")
	}
	deadline := time.Now().Add(timeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("netrt: join barrier at %s unreachable after %v: %w", addr, timeout, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	if _, err := fmt.Fprintf(conn, "JOIN %d-%d\n", local[0], local[len(local)-1]); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// WaitHangup blocks until the coordinator closes the join connection (the
// end-of-run signal) or the fallback timeout elapses, then closes conn.
func WaitHangup(conn net.Conn, fallback time.Duration) {
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		_, _ = bufio.NewReader(conn).ReadString('\n')
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(fallback):
	}
}
