package netrt_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/federation"
	"repro/internal/msl"
	"repro/internal/runtime"
	"repro/internal/runtime/netrt"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// SetPeerLoss drops every datagram a gagged peer originates while the
// rest of the runtime keeps flowing, and clears back to normal.
func TestPeerLossOverride(t *testing.T) {
	rts, _, err := netrt.NewGroup([][]int{{0, 1}, {2, 3}}, netrt.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()
	a, b := rts[0], rts[1]
	runtime0Drops := func() uint64 {
		_, _, d := a.Stats()
		return d
	}
	var from1, from0 atomic.Uint64
	b.Handle(2, func(from int, payload any, size int) {
		switch from {
		case 1:
			from1.Add(1)
		case 0:
			from0.Add(1)
		}
	})

	a.SetPeerLoss(1, 1.0)
	base := runtime0Drops()
	var seq uint64
	send := func(from int) {
		seq++
		a.Send(from, 2, runtime.ClassControl, 0, wire.Heartbeat{Seq: seq})
	}
	send(1)
	waitFor(t, 5*time.Second, func() bool {
		send(1)
		return runtime0Drops() > base
	})
	if from1.Load() != 0 {
		t.Fatal("datagram delivered through a 100% peer-loss gag")
	}

	// Peer 0 on the same runtime is unaffected.
	waitFor(t, 5*time.Second, func() bool {
		send(0)
		return from0.Load() > 0
	})

	// Clearing the override un-gags the peer.
	a.SetPeerLoss(1, 0)
	waitFor(t, 5*time.Second, func() bool {
		send(1)
		return from1.Load() > 0
	})
}

// AddressGroups reflects the shared-socket layout: with k peers behind
// each socket, the directory collapses into n/k groups, identically in
// every process — the unit a socket-outage event fails together.
func TestAddressGroups(t *testing.T) {
	ranges := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	rts, _, err := netrt.NewGroup(ranges, netrt.Options{Seed: 11, PeersPerSocket: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()
	g0, g1 := rts[0].AddressGroups(), rts[1].AddressGroups()
	if len(g0) != 4 {
		t.Fatalf("8 peers at 2 per socket grouped into %d address groups: %v", len(g0), g0)
	}
	seen := make(map[int]bool)
	for _, g := range g0 {
		if len(g) != 2 {
			t.Fatalf("group size %d, want 2: %v", len(g), g0)
		}
		for _, p := range g {
			if seen[p] {
				t.Fatalf("peer %d in two groups: %v", p, g0)
			}
			seen[p] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("groups cover %d of 8 peers", len(seen))
	}
	// Both processes derive the same grouping from the shared directory.
	if len(g0) != len(g1) {
		t.Fatalf("processes disagree on group count: %d vs %d", len(g0), len(g1))
	}
	for i := range g0 {
		if len(g0[i]) != len(g1[i]) {
			t.Fatalf("group %d differs across processes: %v vs %v", i, g0[i], g1[i])
		}
		for j := range g0[i] {
			if g0[i][j] != g1[i][j] {
				t.Fatalf("group %d differs across processes: %v vs %v", i, g0[i], g1[i])
			}
		}
	}
}

// The ISSUE 8 acceptance run: a 1,000-peer federation over real loopback
// UDP sockets is driven through a scripted 40% fail-stop with staggered
// recovery — the netrt analogue of the paper's Fig 11/12 failure
// experiments. Per-window completeness must track the schedule's
// live-node count within the multi-tree tolerance band while the faults
// hold, and return to the full federation after recovery.
func TestThousandPeerCompletenessUnderFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("1,000-peer failure run skipped in -short mode")
	}
	const peers = 1000
	prog, err := msl.Parse("query peers as count() from sensors window time 2s slide 2s trees 4 bf 32")
	if err != nil {
		t.Fatal(err)
	}
	ranges := make([][]int, 2)
	for p := 0; p < peers; p++ {
		ranges[p/(peers/2)] = append(ranges[p/(peers/2)], p)
	}
	rts, _, err := netrt.NewGroup(ranges, netrt.Options{
		Seed:           4099,
		PeersPerSocket: 125,
		Coalesce:       true,
		ReadBuffer:     4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := federation.NewWorker(rts[1])
	if err != nil {
		t.Fatal(err)
	}
	coord, err := federation.NewRuntime(rts[0], prog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, rt := range rts {
			rt.Shutdown()
		}
	}()

	watch := coord.WatchCompleteness("peers")
	defer watch.Close()
	for i, fed := range []*federation.Federation{coord, worker} {
		fed.StartSensors(time.Second, func(peer int) tuple.Raw {
			return tuple.Raw{Vals: []float64{1}}
		}, rand.New(rand.NewSource(int64(100+i))))
	}

	// Pre-fault baseline: the full federation must report before faults
	// make the target a moving one.
	baselineDeadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(baselineDeadline) && watch.Best() != peers {
		time.Sleep(250 * time.Millisecond)
	}
	if watch.Best() != peers {
		t.Fatalf("baseline completeness %d of %d never reached", watch.Best(), peers)
	}

	// The scripted scenario, through the same DSL the mortard -chaos path
	// parses: 40% fail-stop staggered over ~4s, held ~15s, then staggered
	// recovery of everything.
	sched, err := chaos.Parse([]byte(`{
		"scenario": "kill40-netrt",
		"seed": 20080417,
		"sample_ms": 250,
		"events": [
			{"kind": "kill", "at_ms": 0, "frac": 0.4, "stagger_ms": 10},
			{"kind": "recover", "at_ms": 15000, "all": true, "stagger_ms": 10}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	// Recorder first, so the curve carries pre-fault baseline samples;
	// its live probe reads the schedule-truth runner once that starts.
	var runnerPtr atomic.Pointer[chaos.Runner]
	rec := chaos.NewRecorder(sched.Scenario, peers, sched.SamplePeriod(), chaos.Probe{
		Live: func() int {
			if r := runnerPtr.Load(); r != nil {
				return r.Live()
			}
			return peers
		},
		Completeness: watch.Latest,
	})
	rec.Start()
	time.Sleep(1500 * time.Millisecond)

	// One runner per "process": both expand the identical action list
	// from the shared seed; each gates only its local peers.
	r0, err := chaos.Start(rts[0], sched)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := chaos.Start(rts[1], sched)
	if err != nil {
		t.Fatal(err)
	}
	runnerPtr.Store(r0)
	r0.Wait()
	r1.Wait()

	// Recovery: completeness must return to the full federation.
	recoverDeadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(recoverDeadline) {
		if _, c := watch.Latest(); c == peers {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	// Let a few post-recovery windows land on the curve before stopping.
	time.Sleep(2 * time.Second)
	rec.Stop()

	fs, fe, ok := r0.FaultSpan()
	if !ok {
		t.Fatal("schedule expanded with no fault span")
	}
	curve := rec.Curve(fs, fe)
	dir := t.TempDir()
	path, err := curve.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}

	if curve.Summary.MinLive != peers-400 {
		t.Errorf("min live %d, want %d (40%% of %d killed)", curve.Summary.MinLive, peers-400, peers)
	}
	if curve.Summary.Baseline != peers {
		t.Errorf("pre-fault baseline %d on the curve, want %d", curve.Summary.Baseline, peers)
	}
	if _, c := watch.Latest(); c != peers {
		t.Errorf("completeness %d after recovery, want %d", c, peers)
	}

	// Steady-state band on the fault plateau: once the kill transition
	// settles (windows spanning the stagger drain through) and while live
	// sits at its minimum — the ramps on either side are excluded because
	// the latest *closed* window necessarily lags a moving live count —
	// per-window completeness must stay within the multi-tree tolerance
	// of the live-node count. The paper measures ~94% of live for 4 trees
	// at 40% failures (Fig 12); we gate at 70% to absorb race-detector
	// and loopback scheduling noise. It must also not exceed live once
	// only live peers feed the windows.
	settleMs := curve.FaultStartMs + 9000
	steady := 0
	for _, s := range curve.Samples {
		if s.TMs < settleMs || s.TMs > curve.FaultEndMs || s.Live != curve.Summary.MinLive {
			continue
		}
		steady++
		if s.Completeness < (s.Live*7)/10 {
			t.Errorf("t=%dms: completeness %d below 70%% of live %d", s.TMs, s.Completeness, s.Live)
		}
		if s.Completeness > s.Live+peers/20 {
			t.Errorf("t=%dms: completeness %d far above live %d", s.TMs, s.Completeness, s.Live)
		}
	}
	if steady < 8 {
		t.Errorf("only %d steady-state fault samples on the curve", steady)
	}

	// The artifact must round-trip as the pipeline consumes it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back chaos.Curve
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("curve artifact does not parse: %v", err)
	}
	if back.Scenario != "kill40-netrt" || back.Peers != peers || len(back.Samples) == 0 {
		t.Fatalf("curve artifact header %+v", back)
	}
	t.Logf("curve: baseline=%d fault_min=%d min_live=%d recovered=%d samples=%d",
		back.Summary.Baseline, back.Summary.FaultMin, back.Summary.MinLive,
		back.Summary.Recovered, len(back.Samples))
}
