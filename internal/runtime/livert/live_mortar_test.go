package livert_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/mortar"
	"repro/internal/runtime/livert"
	"repro/internal/tuple"
)

// liveConfig shrinks the paper's timing constants so a live federation
// converges within a second or two of wall time.
func liveConfig() mortar.Config {
	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 50 * time.Millisecond
	cfg.MinTimeout = 20 * time.Millisecond
	cfg.MaxTimeout = 2 * time.Second
	cfg.TimeoutSlack = 30 * time.Millisecond
	return cfg
}

func uniformCoords(n int, seed int64) []cluster.Point {
	out := make([]cluster.Point, n)
	s := seed
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = cluster.Point{float64(uint64(s)>>40) / float64(1<<24) * 100,
			float64(uint64(s*31)>>40) / float64(1<<24) * 100}
	}
	return out
}

// A whole Mortar federation on the live runtime: peers run concurrently on
// goroutines, the transport injects loss and control-plane duplicates, and
// the run must produce sane windowed results and shut down cleanly. Run
// with -race this covers concurrent delivery, duplicate suppression
// (heartbeat sequence numbers and idempotent control handlers), and clean
// shutdown.
func TestLiveFederationEndToEnd(t *testing.T) {
	const peers = 30
	rt := livert.New(peers, livert.Options{
		Seed:     42,
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 3 * time.Millisecond,
		Loss:     0.02,
		CtrlDup:  0.25,
	})
	fab, err := mortar.NewFabric(rt, nil, liveConfig())
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var results []mortar.Result
	fab.OnResult = func(r mortar.Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}

	meta := mortar.QueryMeta{
		Name:      "live-sum",
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 200 * time.Millisecond, Slide: 200 * time.Millisecond},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(peers, 9), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}

	// Every peer emits value 1 every 50ms from its own goroutine.
	for i := 0; i < peers; i++ {
		i := i
		rt.Clock(i).Every(50*time.Millisecond, func() {
			fab.Inject(i, tuple.Raw{Vals: []float64{1}})
		})
	}

	time.Sleep(1500 * time.Millisecond)
	rt.Shutdown()

	// Post-shutdown the runtime is quiescent: aggregate inspection is safe.
	if got := fab.InstalledCount("live-sum"); got != peers {
		t.Fatalf("installed on %d of %d peers", got, peers)
	}
	if got := fab.WiredCount("live-sum"); got != peers {
		t.Fatalf("wired on %d of %d peers", got, peers)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) < 3 {
		t.Fatalf("only %d results from the live federation", len(results))
	}
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].WindowIndex <= results[i-1].WindowIndex {
			t.Fatalf("window indices not increasing: %d then %d",
				results[i-1].WindowIndex, results[i].WindowIndex)
		}
		if results[i].Count > peers {
			// More participants than peers would mean duplicate data
			// summaries were double-counted somewhere.
			t.Fatalf("completeness %d exceeds federation size %d", results[i].Count, peers)
		}
		if results[i].Count > best {
			best = results[i].Count
		}
	}
	if best < peers/2 {
		t.Fatalf("best completeness %d of %d; live federation never converged", best, peers)
	}
	if fab.Stats.ResultsReported.Load() == 0 {
		t.Fatal("stats counters silent")
	}

	// Removal on the quiesced runtime must refuse cleanly, not hang.
	if err := fab.Remove(0, "live-sum", 2); err == nil {
		t.Fatal("Remove succeeded after Shutdown")
	}

	sent, delivered, dropped, duplicated := rt.Stats()
	if duplicated == 0 {
		t.Fatal("transport injected no duplicates; the dup-suppression path went unexercised")
	}
	if delivered+dropped != sent+duplicated {
		t.Fatalf("ledger does not reconcile: sent=%d delivered=%d dropped=%d duplicated=%d",
			sent, delivered, dropped, duplicated)
	}
}

// Query removal must propagate across live goroutine peers and prune the
// per-peer liveness/dedup state the tree edges had created.
func TestLiveRemovePrunesNeighborState(t *testing.T) {
	const peers = 12
	rt := livert.New(peers, livert.Options{
		Seed:     7,
		MinDelay: 100 * time.Microsecond,
		MaxDelay: time.Millisecond,
	})
	fab, err := mortar.NewFabric(rt, nil, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	meta := mortar.QueryMeta{
		Name:      "q",
		Seq:       1,
		OpName:    "count",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 200 * time.Millisecond, Slide: 200 * time.Millisecond},
		Root:      0,
		IssuedSim: rt.Clock(0).Now(),
	}
	def, err := fab.Compile(meta, nil, uniformCoords(peers, 3), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Install(0, def); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := fab.Remove(0, "q", 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	rt.Shutdown()
	if got := fab.InstalledCount("q"); got != 0 {
		t.Fatalf("%d peers still host the removed query", got)
	}
	for i := 0; i < peers; i++ {
		if n := fab.Peer(i).LivenessEntries(); n != 0 {
			t.Fatalf("peer %d retains %d liveness entries after removal", i, n)
		}
		// A bounded heartbeat-dedup residue (one seq per ex-parent, kept
		// to suppress late duplicates) is allowed; growth is not.
		if n := fab.Peer(i).NeighborStateSize(); n > 2 {
			t.Fatalf("peer %d retains %d neighbor-state entries after removal", i, n)
		}
	}
}
