// Package livert is the real-concurrency runtime backend: each peer is a
// goroutine draining an unbounded mailbox, timers fire on the wall clock,
// and an in-process transport injects configurable latency, loss, and
// control-plane duplication. Everything a peer does — message handling,
// timer callbacks, externally Exec'd work — funnels through its mailbox, so
// peer code keeps the single-threaded semantics it was written for while
// the federation as a whole runs genuinely parallel. The package is safe
// under the race detector by construction: cross-peer communication happens
// only through mailboxes and atomics.
package livert

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
)

// Options tunes the in-process transport and the runtime's random stream.
type Options struct {
	// Seed drives loss, duplication, and per-message delay jitter.
	Seed int64
	// MinDelay and MaxDelay bound the uniformly drawn one-way message
	// delay. Defaults: 200µs .. 2ms.
	MinDelay, MaxDelay time.Duration
	// Loss is the probability a message is silently dropped.
	Loss float64
	// CtrlDup is the probability a control-plane message is delivered
	// twice, modelling datagram duplication; the peer protocol must
	// suppress duplicates (heartbeat sequence numbers) or be idempotent
	// (install, remove, reconciliation). Data envelopes are never
	// duplicated, matching a transport that dedups the data plane.
	CtrlDup float64
}

func (o Options) withDefaults() Options {
	if o.MinDelay <= 0 {
		o.MinDelay = 200 * time.Microsecond
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = o.MinDelay + 1800*time.Microsecond
	}
	if o.MaxDelay < o.MinDelay {
		panic("livert: MaxDelay < MinDelay")
	}
	return o
}

// Runtime runs n peers on their own goroutines. It implements
// runtime.Runtime and runtime.Transport.
type Runtime struct {
	n     int
	start time.Time
	opt   Options

	// Per-sender transport RNGs: sends normally originate from the
	// sender's own goroutine, so striping the lock by sender keeps the
	// hot data path from serializing the whole federation on one mutex
	// while still honouring Send's any-goroutine contract.
	sendMu []sync.Mutex
	rngs   []*rand.Rand

	// planRng is a separate stream for Rand(): the driving goroutine's
	// planning draws must not race with the transport's per-sender
	// draws on peer goroutines.
	planRng *rand.Rand

	hmu   sync.RWMutex
	hands []runtime.Handler

	down  []atomic.Bool
	boxes []*mailbox
	wg    sync.WaitGroup
	// inflight tracks delivery timers not yet resolved; flmu orders Add
	// against Shutdown's Wait (a bare Add concurrent with a zero-counter
	// Wait is WaitGroup misuse).
	flmu     sync.Mutex
	inflight sync.WaitGroup
	closed   atomic.Bool

	sent, delivered, dropped, duplicated atomic.Uint64
}

var _ runtime.Runtime = (*Runtime)(nil)
var _ runtime.Transport = (*Runtime)(nil)

// New starts a live runtime of n peers. Peer goroutines start immediately
// and idle until work arrives; register transport handlers before sending.
func New(n int, opt Options) *Runtime {
	r := &Runtime{
		n:      n,
		start:  time.Now(),
		opt:    opt.withDefaults(),
		sendMu: make([]sync.Mutex, n),
		rngs:   make([]*rand.Rand, n),
		hands:  make([]runtime.Handler, n),
		down:   make([]atomic.Bool, n),
		boxes:  make([]*mailbox, n),
	}
	// All streams derive from one seeded source before any goroutine
	// runs, so the unsynchronized draws here are safe.
	seeder := rand.New(rand.NewSource(opt.Seed))
	for i := range r.rngs {
		r.rngs[i] = rand.New(rand.NewSource(seeder.Int63()))
	}
	r.planRng = rand.New(rand.NewSource(seeder.Int63()))
	for i := range r.boxes {
		r.boxes[i] = newMailbox()
		r.wg.Add(1)
		go func(box *mailbox) {
			defer r.wg.Done()
			box.loop()
		}(r.boxes[i])
	}
	return r
}

// --- runtime.Runtime ---

// NumPeers returns the federation size.
func (r *Runtime) NumPeers() int { return r.n }

// Clock returns a wall clock whose callbacks run in the peer's mailbox.
func (r *Runtime) Clock(peer int) runtime.Clock { return liveClock{rt: r, peer: peer} }

// Transport returns the in-process transport.
func (r *Runtime) Transport() runtime.Transport { return r }

// Rand returns the runtime's planning random source. Unsynchronized:
// driving goroutine only. It is a stream of its own — the transport's
// loss/delay draws on peer goroutines never touch it.
func (r *Runtime) Rand() *rand.Rand { return r.planRng }

// Exec posts fn to the peer's mailbox.
func (r *Runtime) Exec(peer int, fn func()) bool {
	if peer < 0 || peer >= r.n {
		return false
	}
	return r.boxes[peer].post(fn)
}

// Shutdown stops delivery, resolves in-flight messages (bounded by
// MaxDelay), lets every mailbox drain, and waits for all peer goroutines
// to exit. Afterwards peer state may be inspected from the caller's
// goroutine (the joins establish the happens-before edge), and the Stats
// ledger reconciles: delivered + dropped == sent + duplicated (each
// injected duplicate adds a second delivery outcome to one send).
func (r *Runtime) Shutdown() {
	if r.closed.Swap(true) {
		return
	}
	for _, b := range r.boxes {
		b.close()
	}
	// Barrier: any deliverAfter that won the race against closed has
	// finished registering with inflight once we can take flmu.
	r.flmu.Lock()
	r.flmu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	r.inflight.Wait()
	r.wg.Wait()
}

// Stats returns cumulative transport counters: sent, delivered, dropped,
// and duplicate deliveries injected. After Shutdown the ledger satisfies
// delivered + dropped == sent + duplicated.
func (r *Runtime) Stats() (sent, delivered, dropped, duplicated uint64) {
	return r.sent.Load(), r.delivered.Load(), r.dropped.Load(), r.duplicated.Load()
}

// --- runtime.Transport ---

// Handle registers a peer's delivery handler.
func (r *Runtime) Handle(peer int, h runtime.Handler) {
	r.hmu.Lock()
	r.hands[peer] = h
	r.hmu.Unlock()
}

// SetDown disconnects or reconnects a peer.
func (r *Runtime) SetDown(peer int, down bool) { r.down[peer].Store(down) }

// Down reports whether a peer is disconnected.
func (r *Runtime) Down(peer int) bool { return r.down[peer].Load() }

// Latency reports the transport's mean one-way delay, the planner's
// latency estimate for every pair.
func (r *Runtime) Latency(a, b int) time.Duration {
	return (r.opt.MinDelay + r.opt.MaxDelay) / 2
}

// Send draws loss, duplication, and delay, then schedules delivery into the
// destination's mailbox. Safe to call from any goroutine.
func (r *Runtime) Send(from, to int, class runtime.Class, size int, payload any) bool {
	if from == to || from < 0 || from >= r.n || to < 0 || to >= r.n {
		return false
	}
	if r.closed.Load() || r.down[from].Load() {
		return false
	}
	r.sent.Add(1)
	r.sendMu[from].Lock()
	rng := r.rngs[from]
	lost := r.opt.Loss > 0 && rng.Float64() < r.opt.Loss
	dup := class == runtime.ClassControl && r.opt.CtrlDup > 0 && rng.Float64() < r.opt.CtrlDup
	span := int64(r.opt.MaxDelay - r.opt.MinDelay)
	delay := r.opt.MinDelay
	if span > 0 {
		delay += time.Duration(rng.Int63n(span + 1))
	}
	r.sendMu[from].Unlock()
	if lost {
		r.dropped.Add(1)
		return true
	}
	r.deliverAfter(delay, from, to, payload, size)
	if dup {
		r.duplicated.Add(1)
		r.deliverAfter(delay+delay/2, from, to, payload, size)
	}
	return true
}

func (r *Runtime) deliverAfter(delay time.Duration, from, to int, payload any, size int) {
	r.flmu.Lock()
	if r.closed.Load() {
		r.flmu.Unlock()
		r.dropped.Add(1)
		return
	}
	r.inflight.Add(1)
	r.flmu.Unlock()
	time.AfterFunc(delay, func() {
		defer r.inflight.Done()
		if r.down[to].Load() {
			r.dropped.Add(1)
			return
		}
		r.hmu.RLock()
		h := r.hands[to]
		r.hmu.RUnlock()
		if h == nil {
			r.dropped.Add(1)
			return
		}
		if r.boxes[to].post(func() { h(from, payload, size) }) {
			r.delivered.Add(1)
		} else {
			// Mailbox already closed by Shutdown: the message is lost.
			r.dropped.Add(1)
		}
	})
}

// --- mailbox: an unbounded FIFO work queue, one goroutine draining it ---

// mailbox is unbounded so that cyclic peer-to-peer sends can never
// deadlock: posting never blocks, only the draining goroutine runs work.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []func()
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// post enqueues fn; it reports false (dropping fn) after close.
func (m *mailbox) post(fn func()) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.q = append(m.q, fn)
	m.cond.Signal()
	return true
}

// close stops intake; already queued work still drains.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// loop drains the queue until closed and empty.
func (m *mailbox) loop() {
	for {
		m.mu.Lock()
		for len(m.q) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.q) == 0 {
			m.mu.Unlock()
			return
		}
		fn := m.q[0]
		m.q[0] = nil // release the closure (and its captured payload) now
		m.q = m.q[1:]
		m.mu.Unlock()
		fn()
	}
}

// --- clock ---

// liveClock schedules wall-clock callbacks into one peer's mailbox.
type liveClock struct {
	rt   *Runtime
	peer int
}

func (c liveClock) Now() time.Duration { return time.Since(c.rt.start) }

func (c liveClock) After(d time.Duration, fn func()) runtime.Timer {
	if d < 0 {
		d = 0
	}
	t := &liveTimer{at: c.Now() + d}
	t.real = time.AfterFunc(d, func() {
		c.rt.Exec(c.peer, func() {
			// Decided inside the peer's domain so Cancel from the same
			// domain is always honoured.
			if t.state.CompareAndSwap(0, 1) {
				fn()
			}
		})
	})
	return t
}

func (c liveClock) Every(period time.Duration, fn func()) runtime.Ticker {
	if period <= 0 {
		panic("livert: non-positive ticker period")
	}
	tk := &liveTicker{c: c, period: period, fn: fn}
	tk.arm()
	return tk
}

// liveTimer's state: 0 pending, 1 fired, 2 cancelled.
type liveTimer struct {
	at    time.Duration
	state atomic.Int32
	real  *time.Timer
}

func (t *liveTimer) Cancel() {
	if t == nil {
		return
	}
	t.state.CompareAndSwap(0, 2)
	t.real.Stop()
}

func (t *liveTimer) Stopped() bool { return t == nil || t.state.Load() != 0 }

func (t *liveTimer) When() time.Duration { return t.at }

// liveTicker re-arms on the wall-clock side of each fire, so the tick rate
// holds steady even when the peer's mailbox is backlogged — heartbeat
// intervals must not stretch with queueing delay or busy peers would be
// presumed dead. Ticks that land while the previous one is still queued
// coalesce instead of piling up.
type liveTicker struct {
	c       liveClock
	period  time.Duration
	fn      func()
	stopped atomic.Bool
	pending atomic.Bool
	mu      sync.Mutex
	real    *time.Timer
}

func (tk *liveTicker) arm() {
	tk.mu.Lock()
	// A ticker on a shut-down runtime must not keep re-arming: its ticks
	// can never run, and the orphan timer would fire forever.
	if !tk.stopped.Load() && !tk.c.rt.closed.Load() {
		tk.real = time.AfterFunc(tk.period, tk.fire)
	}
	tk.mu.Unlock()
}

func (tk *liveTicker) fire() {
	tk.arm() // fixed rate: independent of mailbox drain time
	if tk.stopped.Load() {
		return
	}
	if !tk.pending.CompareAndSwap(false, true) {
		return // previous tick still queued; coalesce
	}
	if !tk.c.rt.Exec(tk.c.peer, func() {
		tk.pending.Store(false)
		if !tk.stopped.Load() {
			tk.fn()
		}
	}) {
		tk.pending.Store(false) // runtime closed; the closure never runs
	}
}

func (tk *liveTicker) Stop() {
	tk.stopped.Store(true)
	tk.mu.Lock()
	if tk.real != nil {
		tk.real.Stop()
	}
	tk.mu.Unlock()
}
