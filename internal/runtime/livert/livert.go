// Package livert is the real-concurrency runtime backend: each peer is a
// goroutine draining an unbounded mailbox, timers fire on the wall clock,
// and an in-process transport injects configurable latency, loss, and
// control-plane duplication. Everything a peer does — message handling,
// timer callbacks, externally Exec'd work — funnels through its mailbox, so
// peer code keeps the single-threaded semantics it was written for while
// the federation as a whole runs genuinely parallel. The package is safe
// under the race detector by construction: cross-peer communication happens
// only through mailboxes and atomics. The mailbox and wall-clock machinery
// is shared with the socket backend (runtime/netrt) via runtime/actor.
package livert

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/runtime/actor"
)

// Options tunes the in-process transport and the runtime's random stream.
type Options struct {
	// Seed drives loss, duplication, and per-message delay jitter.
	Seed int64
	// MinDelay and MaxDelay bound the uniformly drawn one-way message
	// delay. Defaults: 200µs .. 2ms. Ignored when PairDelay is set.
	MinDelay, MaxDelay time.Duration
	// PairDelay, when non-nil, gives the deterministic base one-way delay
	// between an ordered pair of peers — an in-process stand-in for a real
	// topology. Each message is delayed PairDelay(from, to) plus a uniform
	// draw from [0, Jitter], and Latency reports the pair's configured
	// delay (plus mean jitter), so planners see the injected topology
	// instead of a constant mean.
	PairDelay func(from, to int) time.Duration
	// Jitter bounds the per-message random delay added on top of
	// PairDelay. Zero means deterministic per-pair delays.
	Jitter time.Duration
	// Loss is the probability a message is silently dropped.
	Loss float64
	// CtrlDup is the probability a control-plane message is delivered
	// twice, modelling datagram duplication; the peer protocol must
	// suppress duplicates (heartbeat sequence numbers) or be idempotent
	// (install, remove, reconciliation). Data envelopes are never
	// duplicated, matching a transport that dedups the data plane.
	CtrlDup float64
}

func (o Options) withDefaults() Options {
	if o.MinDelay <= 0 {
		o.MinDelay = 200 * time.Microsecond
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = o.MinDelay + 1800*time.Microsecond
	}
	if o.MaxDelay < o.MinDelay {
		panic("livert: MaxDelay < MinDelay")
	}
	if o.Jitter < 0 {
		panic("livert: negative Jitter")
	}
	return o
}

// Runtime runs n peers on their own goroutines. It implements
// runtime.Runtime and runtime.Transport.
type Runtime struct {
	n     int
	start time.Time
	opt   Options

	// Per-sender transport RNGs: sends normally originate from the
	// sender's own goroutine, so striping the lock by sender keeps the
	// hot data path from serializing the whole federation on one mutex
	// while still honouring Send's any-goroutine contract.
	sendMu []sync.Mutex
	rngs   []*rand.Rand

	// planRng is a separate stream for Rand(): the driving goroutine's
	// planning draws must not race with the transport's per-sender
	// draws on peer goroutines.
	planRng *rand.Rand

	hmu   sync.RWMutex
	hands []runtime.Handler

	down  []atomic.Bool
	boxes []*actor.Mailbox
	wg    sync.WaitGroup
	// inflight tracks delivery timers not yet resolved; flmu orders Add
	// against Shutdown's Wait (a bare Add concurrent with a zero-counter
	// Wait is WaitGroup misuse).
	flmu     sync.Mutex
	inflight sync.WaitGroup
	closed   atomic.Bool

	sent, delivered, dropped, duplicated atomic.Uint64
}

var _ runtime.Runtime = (*Runtime)(nil)
var _ runtime.Transport = (*Runtime)(nil)

// New starts a live runtime of n peers. Peer goroutines start immediately
// and idle until work arrives; register transport handlers before sending.
func New(n int, opt Options) *Runtime {
	r := &Runtime{
		n:      n,
		start:  time.Now(),
		opt:    opt.withDefaults(),
		sendMu: make([]sync.Mutex, n),
		rngs:   make([]*rand.Rand, n),
		hands:  make([]runtime.Handler, n),
		down:   make([]atomic.Bool, n),
		boxes:  make([]*actor.Mailbox, n),
	}
	// All streams derive from one seeded source before any goroutine
	// runs, so the unsynchronized draws here are safe.
	seeder := rand.New(rand.NewSource(opt.Seed))
	for i := range r.rngs {
		r.rngs[i] = rand.New(rand.NewSource(seeder.Int63()))
	}
	r.planRng = rand.New(rand.NewSource(seeder.Int63()))
	for i := range r.boxes {
		r.boxes[i] = actor.NewMailbox()
		r.wg.Add(1)
		go func(box *actor.Mailbox) {
			defer r.wg.Done()
			box.Loop()
		}(r.boxes[i])
	}
	return r
}

// --- runtime.Runtime ---

// NumPeers returns the federation size.
func (r *Runtime) NumPeers() int { return r.n }

// Clock returns a wall clock whose callbacks run in the peer's mailbox.
func (r *Runtime) Clock(peer int) runtime.Clock {
	return actor.Clock{
		Start:  r.start,
		Post:   func(fn func()) bool { return r.Exec(peer, fn) },
		Closed: r.closed.Load,
	}
}

// Transport returns the in-process transport.
func (r *Runtime) Transport() runtime.Transport { return r }

// Rand returns the runtime's planning random source. Unsynchronized:
// driving goroutine only. It is a stream of its own — the transport's
// loss/delay draws on peer goroutines never touch it.
func (r *Runtime) Rand() *rand.Rand { return r.planRng }

// Exec posts fn to the peer's mailbox.
func (r *Runtime) Exec(peer int, fn func()) bool {
	if peer < 0 || peer >= r.n {
		return false
	}
	return r.boxes[peer].Post(fn)
}

// Shutdown stops delivery, resolves in-flight messages (bounded by
// MaxDelay), lets every mailbox drain, and waits for all peer goroutines
// to exit. Afterwards peer state may be inspected from the caller's
// goroutine (the joins establish the happens-before edge), and the Stats
// ledger reconciles: delivered + dropped == sent + duplicated (each
// injected duplicate adds a second delivery outcome to one send).
func (r *Runtime) Shutdown() {
	if r.closed.Swap(true) {
		return
	}
	for _, b := range r.boxes {
		b.Close()
	}
	// Barrier: any deliverAfter that won the race against closed has
	// finished registering with inflight once we can take flmu.
	r.flmu.Lock()
	r.flmu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	r.inflight.Wait()
	r.wg.Wait()
}

// Stats returns cumulative transport counters: sent, delivered, dropped,
// and duplicate deliveries injected. After Shutdown the ledger satisfies
// delivered + dropped == sent + duplicated.
func (r *Runtime) Stats() (sent, delivered, dropped, duplicated uint64) {
	return r.sent.Load(), r.delivered.Load(), r.dropped.Load(), r.duplicated.Load()
}

// --- runtime.Transport ---

// Handle registers a peer's delivery handler.
func (r *Runtime) Handle(peer int, h runtime.Handler) {
	r.hmu.Lock()
	r.hands[peer] = h
	r.hmu.Unlock()
}

// SetDown disconnects or reconnects a peer.
func (r *Runtime) SetDown(peer int, down bool) { r.down[peer].Store(down) }

// Down reports whether a peer is disconnected.
func (r *Runtime) Down(peer int) bool { return r.down[peer].Load() }

// Latency reports the configured one-way delay for a pair: PairDelay plus
// mean jitter when a pair-delay topology is configured, otherwise the
// uniform draw's mean. This is the planner's latency estimate, so with
// PairDelay set, live planning sees the injected topology (Vivaldi
// embedding in the prototype).
func (r *Runtime) Latency(a, b int) time.Duration {
	if r.opt.PairDelay != nil {
		return r.opt.PairDelay(a, b) + r.opt.Jitter/2
	}
	return (r.opt.MinDelay + r.opt.MaxDelay) / 2
}

// MaxFrame reports the in-process transport as unbounded: payloads move
// between mailboxes by reference, never through a datagram.
func (r *Runtime) MaxFrame() int { return 0 }

// Send draws loss, duplication, and delay, then schedules delivery into the
// destination's mailbox. Safe to call from any goroutine.
func (r *Runtime) Send(from, to int, class runtime.Class, size int, payload any) bool {
	if from == to || from < 0 || from >= r.n || to < 0 || to >= r.n {
		return false
	}
	if r.closed.Load() || r.down[from].Load() {
		return false
	}
	r.sent.Add(1)
	r.sendMu[from].Lock()
	rng := r.rngs[from]
	lost := r.opt.Loss > 0 && rng.Float64() < r.opt.Loss
	dup := class == runtime.ClassControl && r.opt.CtrlDup > 0 && rng.Float64() < r.opt.CtrlDup
	var delay time.Duration
	if r.opt.PairDelay != nil {
		delay = r.opt.PairDelay(from, to)
		if r.opt.Jitter > 0 {
			delay += time.Duration(rng.Int63n(int64(r.opt.Jitter) + 1))
		}
	} else {
		delay = r.opt.MinDelay
		if span := int64(r.opt.MaxDelay - r.opt.MinDelay); span > 0 {
			delay += time.Duration(rng.Int63n(span + 1))
		}
	}
	r.sendMu[from].Unlock()
	if lost {
		r.dropped.Add(1)
		return true
	}
	r.deliverAfter(delay, from, to, payload, size)
	if dup {
		r.duplicated.Add(1)
		r.deliverAfter(delay+delay/2, from, to, payload, size)
	}
	return true
}

func (r *Runtime) deliverAfter(delay time.Duration, from, to int, payload any, size int) {
	r.flmu.Lock()
	if r.closed.Load() {
		r.flmu.Unlock()
		r.dropped.Add(1)
		return
	}
	r.inflight.Add(1)
	r.flmu.Unlock()
	time.AfterFunc(delay, func() {
		defer r.inflight.Done()
		if r.down[to].Load() {
			r.dropped.Add(1)
			return
		}
		r.hmu.RLock()
		h := r.hands[to]
		r.hmu.RUnlock()
		if h == nil {
			r.dropped.Add(1)
			return
		}
		if r.boxes[to].Post(func() { h(from, payload, size) }) {
			r.delivered.Add(1)
		} else {
			// Mailbox already closed by Shutdown: the message is lost.
			r.dropped.Add(1)
		}
	})
}
