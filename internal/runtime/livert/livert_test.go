package livert

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runtime"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// Delivery to one peer must be serialized: its handler never runs
// concurrently with itself, even when many senders blast it at once.
func TestPerPeerSerializedDelivery(t *testing.T) {
	const peers, msgs = 4, 200
	rt := New(peers, Options{Seed: 1, MinDelay: time.Microsecond, MaxDelay: 50 * time.Microsecond})
	defer rt.Shutdown()

	var received [peers]atomic.Int64
	var inside [peers]atomic.Int32
	var overlaps atomic.Int64
	for i := 0; i < peers; i++ {
		i := i
		rt.Handle(i, func(from int, payload any, size int) {
			if !inside[i].CompareAndSwap(0, 1) {
				overlaps.Add(1)
			}
			received[i].Add(1)
			inside[i].Store(0)
		})
	}
	var wg sync.WaitGroup
	for from := 0; from < peers; from++ {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < msgs; k++ {
				rt.Send(from, (from+1+k%(peers-1))%peers, runtime.ClassData, 8, k)
			}
		}()
	}
	wg.Wait()
	waitFor(t, 5*time.Second, func() bool {
		var n int64
		for i := range received {
			n += received[i].Load()
		}
		return n == peers*msgs
	})
	if overlaps.Load() != 0 {
		t.Fatalf("%d concurrent handler entries on a single peer", overlaps.Load())
	}
}

// CtrlDup must duplicate control messages (and only control messages), the
// condition peer-level duplicate suppression exists for.
func TestControlDuplication(t *testing.T) {
	rt := New(2, Options{Seed: 2, MinDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, CtrlDup: 1})
	defer rt.Shutdown()
	var ctrl, data atomic.Int64
	rt.Handle(1, func(from int, payload any, size int) {
		if payload == "ctrl" {
			ctrl.Add(1)
		} else {
			data.Add(1)
		}
	})
	const n = 50
	for i := 0; i < n; i++ {
		rt.Send(0, 1, runtime.ClassControl, 8, "ctrl")
		rt.Send(0, 1, runtime.ClassData, 8, "data")
	}
	waitFor(t, 5*time.Second, func() bool { return ctrl.Load() == 2*n && data.Load() == n })
}

// Loss must drop roughly the configured fraction.
func TestLossDropsMessages(t *testing.T) {
	rt := New(2, Options{Seed: 3, MinDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Loss: 0.5})
	defer rt.Shutdown()
	var got atomic.Int64
	rt.Handle(1, func(from int, payload any, size int) { got.Add(1) })
	const n = 2000
	for i := 0; i < n; i++ {
		rt.Send(0, 1, runtime.ClassData, 8, i)
	}
	waitFor(t, 5*time.Second, func() bool {
		sent, delivered, dropped, _ := rt.Stats()
		return sent == n && delivered+dropped == n
	})
	if g := got.Load(); g < n/3 || g > 2*n/3 {
		t.Fatalf("delivered %d of %d at 50%% loss", g, n)
	}
}

// A down peer neither sends nor receives; messages in flight to it drop.
func TestDownPeers(t *testing.T) {
	rt := New(2, Options{Seed: 4, MinDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
	defer rt.Shutdown()
	var got atomic.Int64
	rt.Handle(1, func(from int, payload any, size int) { got.Add(1) })
	rt.SetDown(1, true)
	if !rt.Down(1) {
		t.Fatal("peer not down")
	}
	rt.Send(0, 1, runtime.ClassData, 8, "x")
	rt.SetDown(0, true)
	if ok := rt.Send(0, 1, runtime.ClassData, 8, "y"); ok {
		t.Fatal("down sender accepted a send")
	}
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatalf("down peer received %d messages", got.Load())
	}
	rt.SetDown(0, false)
	rt.SetDown(1, false)
	rt.Send(0, 1, runtime.ClassData, 8, "z")
	waitFor(t, 5*time.Second, func() bool { return got.Load() == 1 })
}

// Shutdown drains mailboxes, stops intake, and establishes happens-before
// for post-shutdown inspection.
func TestCleanShutdown(t *testing.T) {
	rt := New(3, Options{Seed: 5, MinDelay: time.Microsecond, MaxDelay: 5 * time.Microsecond})
	var count int // plain int: only peer-0 domain writes, main reads after Shutdown
	rt.Handle(0, func(from int, payload any, size int) { count++ })
	for i := 0; i < 100; i++ {
		rt.Send(1, 0, runtime.ClassData, 8, i)
	}
	waitFor(t, 5*time.Second, func() bool {
		_, delivered, dropped, _ := rt.Stats()
		return delivered+dropped == 100
	})
	rt.Shutdown()
	after := count
	if ok := rt.Exec(0, func() { count++ }); ok {
		t.Fatal("Exec accepted after Shutdown")
	}
	if rt.Send(1, 0, runtime.ClassData, 8, "late") {
		t.Fatal("Send accepted after Shutdown")
	}
	time.Sleep(10 * time.Millisecond)
	if count != after {
		t.Fatalf("work ran after Shutdown: %d -> %d", after, count)
	}
	if sent, delivered, dropped, duplicated := rt.Stats(); delivered+dropped != sent+duplicated {
		t.Fatalf("ledger does not reconcile after Shutdown: sent=%d delivered=%d dropped=%d duplicated=%d",
			sent, delivered, dropped, duplicated)
	}
	rt.Shutdown() // idempotent
}

// Timers fire in the owning peer's domain; Cancel prevents the callback;
// tickers repeat until stopped.
func TestClockTimersAndTickers(t *testing.T) {
	rt := New(1, Options{Seed: 6})
	defer rt.Shutdown()
	ck := rt.Clock(0)

	var fired atomic.Int32
	tm := ck.After(5*time.Millisecond, func() { fired.Add(1) })
	if tm.Stopped() {
		t.Fatal("pending timer reports stopped")
	}
	waitFor(t, 5*time.Second, func() bool { return fired.Load() == 1 })
	if !tm.Stopped() {
		t.Fatal("fired timer not stopped")
	}

	var cancelled atomic.Int32
	tc := ck.After(20*time.Millisecond, func() { cancelled.Add(1) })
	tc.Cancel()
	if !tc.Stopped() {
		t.Fatal("cancelled timer not stopped")
	}

	var ticks atomic.Int32
	tk := ck.Every(2*time.Millisecond, func() { ticks.Add(1) })
	waitFor(t, 5*time.Second, func() bool { return ticks.Load() >= 3 })
	tk.Stop()
	n := ticks.Load()
	time.Sleep(20 * time.Millisecond)
	if ticks.Load() > n+1 { // at most one in-flight tick may land
		t.Fatalf("ticker kept firing after Stop: %d -> %d", n, ticks.Load())
	}
	time.Sleep(30 * time.Millisecond)
	if cancelled.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
	if now := ck.Now(); now <= 0 {
		t.Fatalf("clock not advancing: %v", now)
	}
}

// With a PairDelay topology configured, Latency must report the pair's
// injected delay — the planner's input — and Send must actually impose it.
func TestPairDelayTopology(t *testing.T) {
	pair := func(a, b int) time.Duration {
		return time.Duration(1+a+b) * 5 * time.Millisecond
	}
	rt := New(3, Options{Seed: 8, PairDelay: pair, Jitter: time.Millisecond})
	defer rt.Shutdown()

	if got, want := rt.Latency(0, 1), pair(0, 1)+500*time.Microsecond; got != want {
		t.Fatalf("Latency(0,1) = %v, want configured %v", got, want)
	}
	if rt.Latency(1, 2) <= rt.Latency(0, 1) {
		t.Fatalf("pair delays not distinguished: %v vs %v", rt.Latency(1, 2), rt.Latency(0, 1))
	}

	var arrived atomic.Int64
	start := time.Now()
	rt.Handle(2, func(from int, payload any, size int) {
		arrived.Store(int64(time.Since(start)))
	})
	rt.Send(1, 2, runtime.ClassData, 8, "x")
	waitFor(t, 5*time.Second, func() bool { return arrived.Load() != 0 })
	if got := time.Duration(arrived.Load()); got < pair(1, 2) {
		t.Fatalf("message arrived after %v, before the configured %v", got, pair(1, 2))
	}
}

// ExecWait returns only after the function ran in the peer's domain.
func TestExecWait(t *testing.T) {
	rt := New(2, Options{Seed: 7})
	ran := false
	if !runtime.ExecWait(rt, 1, func() { ran = true }) {
		t.Fatal("ExecWait refused on a live runtime")
	}
	if !ran {
		t.Fatal("ExecWait returned before fn ran")
	}
	rt.Shutdown()
	if runtime.ExecWait(rt, 1, func() {}) {
		t.Fatal("ExecWait accepted after Shutdown")
	}
}
