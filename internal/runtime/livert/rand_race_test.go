package livert_test

import (
	"testing"
	"time"

	"repro/internal/mortar"
	"repro/internal/runtime/livert"
	"repro/internal/tuple"
)

// Regression for the Rand()/Send() race: compile a second query while the
// first query's install traffic is drawing from the transport rng.
func TestRandDoesNotRaceWithTransport(t *testing.T) {
	const peers = 20
	rt := livert.New(peers, livert.Options{Seed: 11, MinDelay: 50 * time.Microsecond, MaxDelay: 500 * time.Microsecond, Loss: 0.1})
	fab, err := mortar.NewFabric(rt, nil, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	coords := uniformCoords(peers, 4)
	for q := 0; q < 5; q++ {
		meta := mortar.QueryMeta{
			Name:      "q" + string(rune('a'+q)),
			Seq:       uint64(q + 1),
			OpName:    "count",
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 200 * time.Millisecond, Slide: 200 * time.Millisecond},
			Root:      0,
			IssuedSim: rt.Clock(0).Now(),
		}
		def, err := fab.Compile(meta, nil, coords, 4, 2) // draws from rt.Rand() while install traffic flows
		if err != nil {
			t.Fatal(err)
		}
		if err := fab.Install(0, def); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	rt.Shutdown()
	for q := 0; q < 5; q++ {
		if got := fab.InstalledCount("q" + string(rune('a'+q))); got == 0 {
			t.Fatalf("query %d installed nowhere", q)
		}
	}
}
