// Package tuple defines Mortar's data model (§4): raw tuples produced by
// sensors, summary tuples exchanged between operators, and the time-division
// indices that identify which summaries belong to the same processing
// window. Indexing by validity interval — rather than by a single timestamp
// — is what lets replicas process different parts of a stream and lets
// tuples take any path through the overlay without duplicate processing.
package tuple

import (
	"fmt"
	"time"
)

// Value is an operator-defined summary payload. Concrete types are defined
// by the operators in internal/ops and must be encodable by internal/wire.
type Value = any

// Raw is a tuple emitted by a local sensor stream: an ordered set of data
// elements, the operator's unit of computation (§2.2).
type Raw struct {
	// Key is an optional discriminator (e.g. a MAC address for the Wi-Fi
	// select operator, or a join key).
	Key string
	// SubKey, when non-empty, replaces Key after a select filter matches:
	// the Wi-Fi query filters frames by MAC but then groups by capturing
	// sniffer (§7.4 composes select -> topk; the fused filter re-keys).
	SubKey string
	// Vals are the numeric data elements.
	Vals []float64
	// At is the node-local arrival time of the tuple at its source.
	At time.Duration
}

// Index is a summary tuple's validity interval [TB, TE): the range of
// (local) time for which the summary is valid. For time windows TB/TE bound
// the window slide; for tuple windows they are the arrival times of the
// first and last tuple (§4.1).
type Index struct {
	TB, TE time.Duration
}

// Empty reports whether the interval contains no time.
func (i Index) Empty() bool { return i.TE <= i.TB }

// Equal reports exact index equality, the fast path for merging.
func (i Index) Equal(o Index) bool { return i.TB == o.TB && i.TE == o.TE }

// Overlaps reports whether two intervals share any time. Empty intervals
// overlap nothing.
func (i Index) Overlaps(o Index) bool {
	return !i.Empty() && !o.Empty() && i.TB < o.TE && o.TB < i.TE
}

// Intersect returns the overlapping region: [max(TB), min(TE)).
func (i Index) Intersect(o Index) Index {
	tb, te := i.TB, i.TE
	if o.TB > tb {
		tb = o.TB
	}
	if o.TE < te {
		te = o.TE
	}
	return Index{TB: tb, TE: te}
}

// Contains reports whether t falls inside the interval.
func (i Index) Contains(t time.Duration) bool { return t >= i.TB && t < i.TE }

// Duration returns the interval length.
func (i Index) Duration() time.Duration { return i.TE - i.TB }

func (i Index) String() string {
	return fmt.Sprintf("[%v,%v)", i.TB, i.TE)
}

// Summary is the unit sent between operators: a partial value labelled with
// the window index it belongs to. All tuples sent on the network are
// summary tuples (§4).
type Summary struct {
	// Query names the continuous query this summary belongs to.
	Query string
	// Index identifies the processing window slice.
	Index Index
	// Value is the operator-specific partial value; nil for boundary
	// tuples.
	Value Value
	// Age is the time since the summary's inception, including residence
	// time at each previous operator and network flight time (§4.3, §5).
	Age time.Duration
	// Count is the completeness metric: the number of participants whose
	// data the summary reflects. Aggregate operator results include a
	// completeness field (§7).
	Count int
	// Boundary marks a tuple injected when a raw input stream stalls; it
	// carries no value and only updates completeness, or extends a tuple
	// window's validity interval (§4.3).
	Boundary bool
	// Hops counts overlay hops travelled; merged summaries carry the
	// maximum over their constituents. Experiments report it as tuple path
	// length (Figures 14-15).
	Hops int
	// Levels is the multipath routing state (§3.3): per tree, the lowest
	// level at which this tuple (or any constituent merged into it) visited
	// that tree; -1 means never visited. The staged routing policy consults
	// it to guarantee forward progress and avoid cycles.
	Levels []int16
}

// MergeLevels returns the element-wise minimum of two level vectors,
// treating -1 (never visited) as no constraint. Merged tuples inherit the
// most conservative history of their constituents. Neither input is
// mutated; callers that own the destination should use MergeLevelsInto.
func MergeLevels(a, b []int16) []int16 {
	if a == nil {
		return append([]int16(nil), b...)
	}
	return MergeLevelsInto(append([]int16(nil), a...), b)
}

// MergeLevelsInto merges b into dst in place and returns dst, allocating
// only when dst is nil (it then clones b, since b stays caller-owned).
// This is the hot-path variant for callers that own dst — the TS-list
// merge and the per-hop routing constraint both fold vectors into storage
// they already hold.
func MergeLevelsInto(dst, b []int16) []int16 {
	if dst == nil {
		return append([]int16(nil), b...)
	}
	n := len(dst)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case dst[i] < 0:
			dst[i] = b[i]
		case b[i] >= 0 && b[i] < dst[i]:
			dst[i] = b[i]
		}
	}
	return dst
}

// WindowKind distinguishes time windows from tuple (count) windows.
type WindowKind uint8

const (
	// TimeWindow computes over the last Range of time, sliding by Slide.
	TimeWindow WindowKind = iota
	// TupleWindow computes over the last RangeN tuples from each source,
	// sliding by SlideN tuples.
	TupleWindow
)

// WindowSpec describes an operator's sliding window: the range summarizes
// the last x seconds or tuples, the slide defines the update frequency
// (§2.2).
type WindowSpec struct {
	Kind   WindowKind
	Range  time.Duration // time windows
	Slide  time.Duration
	RangeN int // tuple windows
	SlideN int
}

// Validate reports whether the spec is well formed.
func (w WindowSpec) Validate() error {
	switch w.Kind {
	case TimeWindow:
		if w.Range <= 0 || w.Slide <= 0 {
			return fmt.Errorf("tuple: time window needs positive range (%v) and slide (%v)", w.Range, w.Slide)
		}
	case TupleWindow:
		if w.RangeN <= 0 || w.SlideN <= 0 {
			return fmt.Errorf("tuple: tuple window needs positive range (%d) and slide (%d)", w.RangeN, w.SlideN)
		}
	default:
		return fmt.Errorf("tuple: unknown window kind %d", w.Kind)
	}
	return nil
}

// SlideIndex returns the logical slide number containing local time t, and
// the corresponding index interval. Only meaningful for time windows.
func (w WindowSpec) SlideIndex(t time.Duration) (int64, Index) {
	n := int64(t / w.Slide)
	if t < 0 && t%w.Slide != 0 {
		n-- // floor division for negative local times (syncless indices may be negative, §5.1)
	}
	return n, Index{TB: time.Duration(n) * w.Slide, TE: time.Duration(n+1) * w.Slide}
}
