package tuple

import (
	"testing"
	"testing/quick"
	"time"
)

func idx(tb, te time.Duration) Index { return Index{TB: tb, TE: te} }

func TestIndexPredicates(t *testing.T) {
	a := idx(0, 10)
	if a.Empty() || !a.Equal(idx(0, 10)) || a.Equal(idx(0, 11)) {
		t.Fatal("basic predicates broken")
	}
	if !a.Overlaps(idx(5, 15)) || a.Overlaps(idx(10, 20)) || a.Overlaps(idx(-5, 0)) {
		t.Fatal("overlap predicate broken")
	}
	if got := a.Intersect(idx(5, 15)); got != idx(5, 10) {
		t.Fatalf("intersect = %v", got)
	}
	if !a.Contains(0) || a.Contains(10) || !a.Contains(9) {
		t.Fatal("contains broken (half-open interval)")
	}
	if a.Duration() != 10 {
		t.Fatalf("duration = %v", a.Duration())
	}
	if idx(5, 5).Empty() != true || idx(7, 3).Empty() != true {
		t.Fatal("empty detection broken")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestWindowSpecValidate(t *testing.T) {
	good := []WindowSpec{
		{Kind: TimeWindow, Range: time.Second, Slide: time.Second},
		{Kind: TupleWindow, RangeN: 20, SlideN: 10},
	}
	for _, w := range good {
		if err := w.Validate(); err != nil {
			t.Fatalf("valid spec rejected: %v", err)
		}
	}
	bad := []WindowSpec{
		{Kind: TimeWindow},
		{Kind: TimeWindow, Range: time.Second, Slide: -time.Second},
		{Kind: TupleWindow, RangeN: 5},
		{Kind: WindowKind(9), Range: time.Second, Slide: time.Second},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestSlideIndex(t *testing.T) {
	w := WindowSpec{Kind: TimeWindow, Range: 5 * time.Second, Slide: 5 * time.Second}
	n, ix := w.SlideIndex(12 * time.Second)
	if n != 2 || ix != idx(10*time.Second, 15*time.Second) {
		t.Fatalf("slide = %d %v", n, ix)
	}
	// Negative local times (possible under syncless install deltas) floor.
	n, ix = w.SlideIndex(-1 * time.Second)
	if n != -1 || ix != idx(-5*time.Second, 0) {
		t.Fatalf("negative slide = %d %v", n, ix)
	}
	n, _ = w.SlideIndex(-5 * time.Second)
	if n != -1 {
		t.Fatalf("boundary slide = %d, want -1", n)
	}
}

// Property: SlideIndex returns an interval containing t, of length Slide.
func TestPropertySlideIndexContains(t *testing.T) {
	w := WindowSpec{Kind: TimeWindow, Range: 3 * time.Second, Slide: 3 * time.Second}
	f := func(ms int32) bool {
		tt := time.Duration(ms) * time.Millisecond
		_, ix := w.SlideIndex(tt)
		return ix.Contains(tt) && ix.Duration() == w.Slide
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect is commutative and contained in both operands.
func TestPropertyIntersect(t *testing.T) {
	f := func(a1, a2, b1, b2 int16) bool {
		a := idx(time.Duration(a1), time.Duration(a2))
		b := idx(time.Duration(b1), time.Duration(b2))
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			return false
		}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		if a.Overlaps(b) && ab.Empty() {
			return false
		}
		if !a.Overlaps(b) && !ab.Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
