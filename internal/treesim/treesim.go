// Package treesim reproduces the motivating simulation of §2.1 (Figure 1):
// build random trees over 10k nodes, uniformly fail links, walk the
// in-memory graph, and count the nodes that remain connected to the root
// under four data-routing disciplines — a single tree, static striping,
// data mirroring (Borealis/Flux style), and Mortar's dynamic striping over
// the union of upward paths.
package treesim

import (
	"math/rand"

	"repro/internal/plan"
)

// Discipline selects the routing scheme being simulated.
type Discipline int

const (
	// SingleTree routes all data up one tree.
	SingleTree Discipline = iota
	// Striping sends 1/D of the data up each of D trees (TAG).
	Striping
	// Mirroring runs a copy of the dataflow across D trees (Borealis, Flux).
	Mirroring
	// DynamicStriping migrates stripes to any live upward path in the
	// union of the D trees (Mortar).
	DynamicStriping
)

func (d Discipline) String() string {
	switch d {
	case SingleTree:
		return "single-tree"
	case Striping:
		return "striping"
	case Mirroring:
		return "mirroring"
	case DynamicStriping:
		return "dynamic-striping"
	default:
		return "unknown"
	}
}

// Params configures one simulation.
type Params struct {
	Nodes      int
	BF         int
	D          int // tree set size
	LinkFail   float64
	Discipline Discipline
}

// trial state: per tree, alive[i] reports whether the link from node i to
// its parent survived.
type trial struct {
	trees []*plan.Tree
	alive [][]bool
}

func newTrial(p Params, rng *rand.Rand) *trial {
	t := &trial{}
	for i := 0; i < p.D; i++ {
		t.trees = append(t.trees, plan.BuildRandom(p.Nodes, 0, p.BF, rng))
	}
	t.failLinks(p.LinkFail, rng)
	return t
}

func (t *trial) failLinks(f float64, rng *rand.Rand) {
	t.alive = make([][]bool, len(t.trees))
	for ti, tr := range t.trees {
		t.alive[ti] = make([]bool, tr.NumPeers())
		for i := range t.alive[ti] {
			t.alive[ti][i] = rng.Float64() >= f
		}
		t.alive[ti][tr.Root] = true
	}
}

// connectedUp returns, for one tree, whether each node has an all-alive
// path to the root.
func (t *trial) connectedUp(ti int) []bool {
	tr := t.trees[ti]
	n := tr.NumPeers()
	ok := make([]bool, n)
	state := make([]int8, n) // 0 unknown, 1 ok, -1 dead
	state[tr.Root] = 1
	ok[tr.Root] = true
	var resolve func(v int) bool
	resolve = func(v int) bool {
		if state[v] != 0 {
			return state[v] == 1
		}
		good := t.alive[ti][v] && resolve(tr.Parent[v])
		if good {
			state[v] = 1
		} else {
			state[v] = -1
		}
		ok[v] = good
		return good
	}
	for v := 0; v < n; v++ {
		resolve(v)
	}
	return ok
}

// unionConnected computes reachability of the root through the union of
// upward (child -> parent) edges across all trees: a node's data survives
// under dynamic striping as long as one live upward path exists (§2.1).
func (t *trial) unionConnected() []bool {
	n := t.trees[0].NumPeers()
	root := t.trees[0].Root
	// Reverse BFS from the root along alive edges: parent -> child means
	// the child could send to that parent.
	reach := make([]bool, n)
	reach[root] = true
	queue := []int{root}
	// children[parent] across all trees with alive child-edge.
	children := make([][]int32, n)
	for ti, tr := range t.trees {
		for v := 0; v < n; v++ {
			if v == tr.Root || !t.alive[ti][v] {
				continue
			}
			pa := tr.Parent[v]
			children[pa] = append(children[pa], int32(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range children[v] {
			if !reach[c] {
				reach[c] = true
				queue = append(queue, int(c))
			}
		}
	}
	return reach
}

// Completeness runs one trial and returns the fraction of node data that
// reaches the root, in [0, 1].
func Completeness(p Params, rng *rand.Rand) float64 {
	if p.D < 1 {
		p.D = 1
	}
	if p.Discipline == SingleTree {
		p.D = 1
	}
	t := newTrial(p, rng)
	n := p.Nodes
	switch p.Discipline {
	case SingleTree:
		ok := t.connectedUp(0)
		return fraction(ok)
	case Striping:
		// Each node sends 1/D of its data up each tree; the surviving
		// fraction is the mean across trees of per-tree connectivity.
		var sum float64
		for ti := range t.trees {
			ok := t.connectedUp(ti)
			sum += fraction(ok)
		}
		return sum / float64(len(t.trees))
	case Mirroring:
		// A node's data survives if any tree delivers it.
		any := make([]bool, n)
		for ti := range t.trees {
			ok := t.connectedUp(ti)
			for v, b := range ok {
				if b {
					any[v] = true
				}
			}
		}
		return fraction(any)
	case DynamicStriping:
		return fraction(t.unionConnected())
	default:
		return 0
	}
}

// MeanCompleteness averages over the given number of independent trials
// (the paper uses 400).
func MeanCompleteness(p Params, trials int, rng *rand.Rand) float64 {
	var sum float64
	for i := 0; i < trials; i++ {
		sum += Completeness(p, rng)
	}
	return sum / float64(trials)
}

// BandwidthFactor returns the relative bandwidth footprint of a discipline
// at tree set size D, normalized to a single tree (§2.1: mirroring across
// 10 trees increases the footprint by an order of magnitude).
func BandwidthFactor(d Discipline, D int) float64 {
	if d == Mirroring {
		return float64(D)
	}
	return 1
}

func fraction(ok []bool) float64 {
	n := 0
	for _, b := range ok {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(ok))
}
