package treesim

import (
	"math/rand"
	"testing"
)

func TestNoFailuresFullCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []Discipline{SingleTree, Striping, Mirroring, DynamicStriping} {
		p := Params{Nodes: 500, BF: 8, D: 4, LinkFail: 0, Discipline: d}
		if got := Completeness(p, rng); got != 1 {
			t.Fatalf("%v completeness = %v with no failures", d, got)
		}
	}
}

func TestAllLinksFailedOnlyRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Params{Nodes: 100, BF: 8, D: 4, LinkFail: 1, Discipline: DynamicStriping}
	if got := Completeness(p, rng); got > 0.011 {
		t.Fatalf("completeness = %v with all links failed", got)
	}
}

// The ordering the paper's Figure 1 shows: dynamic striping > mirroring(D)
// > striping ~ single tree, at moderate failure rates.
func TestDisciplineOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := Params{Nodes: 2000, BF: 32, D: 4, LinkFail: 0.2}
	get := func(d Discipline, D int) float64 {
		p := base
		p.Discipline = d
		p.D = D
		return MeanCompleteness(p, 20, rng)
	}
	dyn := get(DynamicStriping, 4)
	mir := get(Mirroring, 2)
	str := get(Striping, 4)
	single := get(SingleTree, 1)
	if !(dyn > mir && mir > str) {
		t.Fatalf("ordering violated: dyn %.3f, mir2 %.3f, str %.3f", dyn, mir, str)
	}
	if diff := str - single; diff < -0.05 || diff > 0.05 {
		t.Fatalf("striping (%.3f) should track single tree (%.3f)", str, single)
	}
	if dyn < 0.90 {
		t.Fatalf("dynamic striping D=4 = %.3f at 20%% failures, want >= 0.90", dyn)
	}
}

// Headline claim: even when 40% of links fail, dynamic striping with D=4
// keeps ~94% of remaining nodes connected.
func TestDynamicStripingAt40Percent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Params{Nodes: 5000, BF: 32, D: 4, LinkFail: 0.4, Discipline: DynamicStriping}
	got := MeanCompleteness(p, 10, rng)
	if got < 0.80 {
		t.Fatalf("completeness = %.3f at 40%% failures, want >= 0.80", got)
	}
}

func TestMoreTreesMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prev := -1.0
	for _, d := range []int{1, 2, 3, 4} {
		p := Params{Nodes: 1000, BF: 16, D: d, LinkFail: 0.3, Discipline: DynamicStriping}
		got := MeanCompleteness(p, 20, rng)
		if got < prev-0.02 {
			t.Fatalf("completeness decreased with more trees: D=%d %.3f < %.3f", d, got, prev)
		}
		prev = got
	}
}

func TestBandwidthFactor(t *testing.T) {
	if BandwidthFactor(Mirroring, 10) != 10 {
		t.Fatal("mirroring bandwidth must scale with D")
	}
	if BandwidthFactor(DynamicStriping, 10) != 1 {
		t.Fatal("dynamic striping keeps single-tree bandwidth")
	}
	for _, d := range []Discipline{SingleTree, Striping, Mirroring, DynamicStriping, Discipline(99)} {
		if d.String() == "" {
			t.Fatal("empty discipline name")
		}
	}
}
