// Package ops implements Mortar's in-network operator API and the built-in
// operator suite. Per §2.2, an operator provides a merge function the
// runtime calls to inject a tuple into its window, and a remove function
// called as tuples exit the window; both have access to all tuples in the
// window. Because the time-division data model guarantees duplicate-free
// operation, user-defined aggregates need no duplicate- or order-
// insensitive synopses: the same Combine function merges summaries both
// across time and across space.
package ops

import (
	"math"
	"sort"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// Window is an operator's local computation over raw tuples ("merging
// across time", §4). The runtime owns the queue of raw tuples and informs
// the window as tuples enter and leave.
type Window interface {
	// Merge injects a new tuple into the window.
	Merge(t tuple.Raw)
	// Remove is called as a tuple exits the window.
	Remove(t tuple.Raw)
	// Value returns the summary value of the current window contents, or
	// nil if the window holds no data.
	Value() tuple.Value
}

// Operator defines an in-network operator type. One operator type defines a
// query (§2.2); its Combine is used by the time-space list to merge summary
// tuples from different children ("merging across space").
type Operator interface {
	// Name identifies the operator type.
	Name() string
	// NewWindow creates fresh local window state.
	NewWindow() Window
	// Combine merges two summary values belonging to the same window index.
	// It must be commutative and associative, and must treat values as
	// disjoint contributions (the data model guarantees no duplicates).
	Combine(a, b tuple.Value) tuple.Value
}

// Finalizer is implemented by operators whose partial value differs from
// the user-facing result (e.g. avg carries [sum, count]; entropy carries a
// histogram).
type Finalizer interface {
	Finalize(v tuple.Value) tuple.Value
}

// CombineNilAware wraps an operator's Combine with identity handling for
// nil operands, which arise from boundary tuples.
func CombineNilAware(op Operator) func(a, b tuple.Value) tuple.Value {
	return func(a, b tuple.Value) tuple.Value {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		return op.Combine(a, b)
	}
}

// InPlaceCombiner is implemented by operators whose Combine can fold b
// into a's storage, returning a (same boxed value) instead of allocating a
// fresh one. CombineInto must leave b unmodified and must be equivalent to
// Combine(a, b) in result. Callers must hold exclusive ownership of a.
type InPlaceCombiner interface {
	CombineInto(a, b tuple.Value) tuple.Value
}

// CombineInPlaceNilAware returns a nil-aware combiner that folds b into
// a's storage when the operator supports it, falling back to the copying
// CombineNilAware otherwise. Only use it where the destination value is
// exclusively owned: in the time-space list that holds for time-window
// operators, whose slide-aligned indices mean entries never split, so no
// value is ever shared between entries.
func CombineInPlaceNilAware(op Operator) func(a, b tuple.Value) tuple.Value {
	ip, ok := op.(InPlaceCombiner)
	if !ok {
		return CombineNilAware(op)
	}
	return func(a, b tuple.Value) tuple.Value {
		if a == nil {
			return b
		}
		if b == nil {
			return a
		}
		return ip.CombineInto(a, b)
	}
}

func field(t tuple.Raw, i int) float64 {
	if i < len(t.Vals) {
		return t.Vals[i]
	}
	return 0
}

// --- Sum ---

// Sum aggregates the sum of one field across all sources.
type Sum struct{ Field int }

// Name implements Operator.
func (s Sum) Name() string { return "sum" }

// NewWindow implements Operator.
func (s Sum) NewWindow() Window { return &sumWindow{field: s.Field} }

// Combine implements Operator.
func (s Sum) Combine(a, b tuple.Value) tuple.Value { return a.(float64) + b.(float64) }

type sumWindow struct {
	field int
	sum   float64
	n     int
}

func (w *sumWindow) Merge(t tuple.Raw)  { w.sum += field(t, w.field); w.n++ }
func (w *sumWindow) Remove(t tuple.Raw) { w.sum -= field(t, w.field); w.n-- }
func (w *sumWindow) Value() tuple.Value {
	if w.n == 0 {
		return nil
	}
	return w.sum
}

// --- Count ---

// Count counts tuples across all sources.
type Count struct{}

// Name implements Operator.
func (Count) Name() string { return "count" }

// NewWindow implements Operator.
func (Count) NewWindow() Window { return &countWindow{} }

// Combine implements Operator.
func (Count) Combine(a, b tuple.Value) tuple.Value { return a.(float64) + b.(float64) }

type countWindow struct{ n int }

func (w *countWindow) Merge(tuple.Raw)  { w.n++ }
func (w *countWindow) Remove(tuple.Raw) { w.n-- }
func (w *countWindow) Value() tuple.Value {
	if w.n == 0 {
		return nil
	}
	return float64(w.n)
}

// --- Min / Max ---

// Extremum aggregates the minimum or maximum of a field.
type Extremum struct {
	Field int
	Max   bool
}

// Name implements Operator.
func (e Extremum) Name() string {
	if e.Max {
		return "max"
	}
	return "min"
}

// NewWindow implements Operator.
func (e Extremum) NewWindow() Window { return &extWindow{op: e} }

// Combine implements Operator.
func (e Extremum) Combine(a, b tuple.Value) tuple.Value {
	x, y := a.(float64), b.(float64)
	if e.Max == (x > y) {
		return x
	}
	return y
}

type extWindow struct {
	op   Extremum
	vals []float64 // window contents; extremum needs them for Remove
}

func (w *extWindow) Merge(t tuple.Raw) { w.vals = append(w.vals, field(t, w.op.Field)) }
func (w *extWindow) Remove(t tuple.Raw) {
	v := field(t, w.op.Field)
	for i, x := range w.vals {
		if x == v {
			w.vals = append(w.vals[:i], w.vals[i+1:]...)
			return
		}
	}
}
func (w *extWindow) Value() tuple.Value {
	if len(w.vals) == 0 {
		return nil
	}
	best := w.vals[0]
	for _, v := range w.vals[1:] {
		if w.op.Max == (v > best) {
			best = v
		}
	}
	return best
}

// --- Avg ---

// Avg aggregates the mean of a field. Its partial value is [sum, count];
// Finalize divides.
type Avg struct{ Field int }

// Name implements Operator.
func (Avg) Name() string { return "avg" }

// NewWindow implements Operator.
func (a Avg) NewWindow() Window { return &avgWindow{field: a.Field} }

// Combine implements Operator.
func (Avg) Combine(a, b tuple.Value) tuple.Value {
	x, y := a.([]float64), b.([]float64)
	return []float64{x[0] + y[0], x[1] + y[1]}
}

// CombineInto implements InPlaceCombiner: the [sum, count] pair
// accumulates into a's storage. Returning a (not the unboxed slice) keeps
// the path allocation-free — re-boxing a slice header allocates.
func (Avg) CombineInto(a, b tuple.Value) tuple.Value {
	x, y := a.([]float64), b.([]float64)
	x[0] += y[0]
	x[1] += y[1]
	return a
}

// Finalize implements Finalizer.
func (Avg) Finalize(v tuple.Value) tuple.Value {
	x := v.([]float64)
	if x[1] == 0 {
		return float64(0)
	}
	return x[0] / x[1]
}

type avgWindow struct {
	field int
	sum   float64
	n     float64
}

func (w *avgWindow) Merge(t tuple.Raw)  { w.sum += field(t, w.field); w.n++ }
func (w *avgWindow) Remove(t tuple.Raw) { w.sum -= field(t, w.field); w.n-- }
func (w *avgWindow) Value() tuple.Value {
	if w.n == 0 {
		return nil
	}
	return []float64{w.sum, w.n}
}

// --- TopK ---

// TopK keeps the k highest-scoring keys; the score is the given field, and
// remaining fields travel as the entry payload. The Wi-Fi location query
// uses topk(3) over RSSI (§7.4).
type TopK struct {
	K     int
	Field int
}

// Name implements Operator.
func (TopK) Name() string { return "topk" }

// NewWindow implements Operator.
func (t TopK) NewWindow() Window { return &topkWindow{op: t, best: map[string]wire.ScoredEntry{}} }

// Combine implements Operator.
func (t TopK) Combine(a, b tuple.Value) tuple.Value {
	merged := map[string]wire.ScoredEntry{}
	for _, list := range []tuple.Value{a, b} {
		for _, e := range list.([]wire.ScoredEntry) {
			if old, ok := merged[e.Key]; !ok || e.Score > old.Score {
				merged[e.Key] = e
			}
		}
	}
	return topOf(merged, t.K)
}

func topOf(m map[string]wire.ScoredEntry, k int) []wire.ScoredEntry {
	out := make([]wire.ScoredEntry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key < out[j].Key // deterministic ties
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

type topkWindow struct {
	op   TopK
	all  []tuple.Raw
	best map[string]wire.ScoredEntry
}

func (w *topkWindow) Merge(t tuple.Raw) {
	w.all = append(w.all, t)
	w.rebuild()
}

func (w *topkWindow) Remove(t tuple.Raw) {
	for i := range w.all {
		if w.all[i].Key == t.Key && w.all[i].At == t.At {
			w.all = append(w.all[:i], w.all[i+1:]...)
			break
		}
	}
	w.rebuild()
}

func (w *topkWindow) rebuild() {
	clear(w.best)
	for _, t := range w.all {
		score := field(t, w.op.Field)
		var payload []float64
		for i, v := range t.Vals {
			if i != w.op.Field {
				payload = append(payload, v)
			}
		}
		if old, ok := w.best[t.Key]; !ok || score > old.Score {
			w.best[t.Key] = wire.ScoredEntry{Key: t.Key, Score: score, Payload: payload}
		}
	}
}

func (w *topkWindow) Value() tuple.Value {
	if len(w.best) == 0 {
		return nil
	}
	return topOf(w.best, w.op.K)
}

// --- Union ---

// Union collects tuples from all sources without aggregation, as entries
// keyed by source. Mortar uses a union query to bring network coordinates
// to the compiling peer (§3.1).
type Union struct{}

// Name implements Operator.
func (Union) Name() string { return "union" }

// NewWindow implements Operator.
func (Union) NewWindow() Window { return &unionWindow{} }

// Combine implements Operator.
func (Union) Combine(a, b tuple.Value) tuple.Value {
	x := a.([]wire.ScoredEntry)
	y := b.([]wire.ScoredEntry)
	out := make([]wire.ScoredEntry, 0, len(x)+len(y))
	out = append(out, x...)
	out = append(out, y...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

type unionWindow struct {
	items []wire.ScoredEntry
	raws  []tuple.Raw
}

func (w *unionWindow) Merge(t tuple.Raw) {
	w.raws = append(w.raws, t)
	w.items = append(w.items, wire.ScoredEntry{Key: t.Key, Payload: append([]float64(nil), t.Vals...)})
}

func (w *unionWindow) Remove(t tuple.Raw) {
	for i := range w.raws {
		if w.raws[i].Key == t.Key && w.raws[i].At == t.At {
			w.raws = append(w.raws[:i], w.raws[i+1:]...)
			w.items = append(w.items[:i], w.items[i+1:]...)
			return
		}
	}
}

func (w *unionWindow) Value() tuple.Value {
	if len(w.items) == 0 {
		return nil
	}
	out := make([]wire.ScoredEntry, len(w.items))
	copy(out, w.items)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// --- Entropy ---

// Entropy aggregates a histogram over tuple keys; Finalize computes the
// Shannon entropy in bits. The paper motivates it for detecting anomalous
// traffic features (§2.2).
type Entropy struct{}

// Name implements Operator.
func (Entropy) Name() string { return "entropy" }

// NewWindow implements Operator.
func (Entropy) NewWindow() Window { return &histWindow{counts: map[string]float64{}} }

// Combine implements Operator.
func (Entropy) Combine(a, b tuple.Value) tuple.Value {
	x := a.(map[string]float64)
	y := b.(map[string]float64)
	out := make(map[string]float64, len(x)+len(y))
	for k, v := range x {
		out[k] = v
	}
	for k, v := range y {
		out[k] += v
	}
	return out
}

// CombineInto implements InPlaceCombiner: b's histogram folds into a's map
// (maps are pointer-shaped, so returning a is allocation-free; the map
// only grows when b carries unseen keys).
func (Entropy) CombineInto(a, b tuple.Value) tuple.Value {
	x := a.(map[string]float64)
	for k, v := range b.(map[string]float64) {
		x[k] += v
	}
	return a
}

// Finalize implements Finalizer: Shannon entropy of the histogram, in bits.
func (Entropy) Finalize(v tuple.Value) tuple.Value {
	h := v.(map[string]float64)
	var total float64
	for _, c := range h {
		total += c
	}
	if total == 0 {
		return float64(0)
	}
	var ent float64
	for _, c := range h {
		if c > 0 {
			p := c / total
			ent -= p * math.Log2(p)
		}
	}
	return ent
}

type histWindow struct{ counts map[string]float64 }

func (w *histWindow) Merge(t tuple.Raw) { w.counts[t.Key]++ }
func (w *histWindow) Remove(t tuple.Raw) {
	if w.counts[t.Key] <= 1 {
		delete(w.counts, t.Key)
	} else {
		w.counts[t.Key]--
	}
}
func (w *histWindow) Value() tuple.Value {
	if len(w.counts) == 0 {
		return nil
	}
	out := make(map[string]float64, len(w.counts))
	for k, v := range w.counts {
		out[k] = v
	}
	return out
}

// --- Bloom ---

// Bloom maintains a Bloom-filter index over tuple keys (the paper's example
// of a user-defined aggregate for maintaining an index). Partial filters
// from different children combine by bitwise OR.
type Bloom struct {
	// Bits is the filter size in bits (must be a power of two); Hashes the
	// number of hash functions.
	Bits   int
	Hashes int
}

// DefaultBloom returns a 1024-bit filter with 3 hashes.
func DefaultBloom() Bloom { return Bloom{Bits: 1024, Hashes: 3} }

// Name implements Operator.
func (Bloom) Name() string { return "bloom" }

// NewWindow implements Operator.
func (b Bloom) NewWindow() Window { return &bloomWindow{op: b, keys: map[string]int{}} }

// Combine implements Operator.
func (b Bloom) Combine(a, c tuple.Value) tuple.Value {
	x := a.([]uint64)
	y := c.([]uint64)
	out := make([]uint64, len(x))
	copy(out, x)
	for i := range y {
		if i < len(out) {
			out[i] |= y[i]
		}
	}
	return out
}

// CombineInto implements InPlaceCombiner: c's filter ORs into a's words.
func (b Bloom) CombineInto(a, c tuple.Value) tuple.Value {
	x := a.([]uint64)
	for i, w := range c.([]uint64) {
		if i < len(x) {
			x[i] |= w
		}
	}
	return a
}

// Contains tests membership of key in an aggregated filter value.
func (b Bloom) Contains(v tuple.Value, key string) bool {
	bits := v.([]uint64)
	for h := 0; h < b.Hashes; h++ {
		i := b.position(key, h)
		if bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

func (b Bloom) position(key string, h int) int {
	// FNV-1a with per-hash seed.
	hash := uint64(14695981039346656037) ^ uint64(h)*0x9E3779B97F4A7C15
	for i := 0; i < len(key); i++ {
		hash ^= uint64(key[i])
		hash *= 1099511628211
	}
	return int(hash % uint64(b.Bits))
}

type bloomWindow struct {
	op   Bloom
	keys map[string]int // key -> multiplicity in window
}

func (w *bloomWindow) Merge(t tuple.Raw) { w.keys[t.Key]++ }
func (w *bloomWindow) Remove(t tuple.Raw) {
	if w.keys[t.Key] <= 1 {
		delete(w.keys, t.Key)
	} else {
		w.keys[t.Key]--
	}
}
func (w *bloomWindow) Value() tuple.Value {
	if len(w.keys) == 0 {
		return nil
	}
	bits := make([]uint64, (w.op.Bits+63)/64)
	for k := range w.keys {
		for h := 0; h < w.op.Hashes; h++ {
			i := w.op.position(k, h)
			bits[i/64] |= 1 << (i % 64)
		}
	}
	return bits
}

// --- Quantile ---

// Quantile estimates a quantile of a field by merging bounded uniform
// samples.
type Quantile struct {
	Field int
	Q     float64 // in (0,1)
	Cap   int     // sample bound per summary
}

// DefaultQuantile returns a median estimator with 128-element samples.
func DefaultQuantile() Quantile { return Quantile{Q: 0.5, Cap: 128} }

// Name implements Operator.
func (Quantile) Name() string { return "quantile" }

// NewWindow implements Operator.
func (q Quantile) NewWindow() Window { return &quantWindow{op: q} }

// Combine implements Operator: concatenate and down-sample
// deterministically (every other element of the sorted union) to stay
// within the cap.
func (q Quantile) Combine(a, b tuple.Value) tuple.Value {
	x := append([]float64(nil), a.([]float64)...)
	x = append(x, b.([]float64)...)
	sort.Float64s(x)
	for len(x) > q.Cap {
		half := x[:0]
		for i := 0; i < len(x); i += 2 {
			half = append(half, x[i])
		}
		x = half
	}
	return x
}

// Finalize implements Finalizer: the q'th quantile of the sample.
func (q Quantile) Finalize(v tuple.Value) tuple.Value {
	x := append([]float64(nil), v.([]float64)...)
	if len(x) == 0 {
		return float64(0)
	}
	sort.Float64s(x)
	idx := int(q.Q * float64(len(x)-1))
	return x[idx]
}

type quantWindow struct {
	op   Quantile
	vals []float64
}

func (w *quantWindow) Merge(t tuple.Raw) { w.vals = append(w.vals, field(t, w.op.Field)) }
func (w *quantWindow) Remove(t tuple.Raw) {
	v := field(t, w.op.Field)
	for i, x := range w.vals {
		if x == v {
			w.vals = append(w.vals[:i], w.vals[i+1:]...)
			return
		}
	}
}
func (w *quantWindow) Value() tuple.Value {
	if len(w.vals) == 0 {
		return nil
	}
	out := append([]float64(nil), w.vals...)
	sort.Float64s(out)
	for len(out) > w.op.Cap {
		half := out[:0]
		for i := 0; i < len(out); i += 2 {
			half = append(half, out[i])
		}
		out = half
	}
	return out
}
