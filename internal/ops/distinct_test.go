package ops

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/wire"
)

// The estimate tracks true cardinality within the sketch's standard error
// band across three orders of magnitude.
func TestDistinctAccuracy(t *testing.T) {
	d := DefaultDistinct()
	for _, n := range []int{10, 100, 1000, 10000} {
		w := d.NewWindow()
		for i := 0; i < n; i++ {
			w.Merge(raw(fmt.Sprintf("key-%d", i), time.Duration(i)))
		}
		est := d.Finalize(w.Value()).(float64)
		// 1.04/sqrt(256) ~ 6.5% standard error; allow 4 sigma.
		if tol := 4 * 1.04 / math.Sqrt(float64(d.Registers)); math.Abs(est-float64(n)) > tol*float64(n) {
			t.Fatalf("n=%d: estimate %.1f off by more than %.0f%%", n, est, tol*100)
		}
	}
}

// Duplicate keys never move the estimate: the sketch is idempotent over
// keys, which is what lets union-style re-striping avoid double counting.
func TestDistinctDuplicatesIdempotent(t *testing.T) {
	d := DefaultDistinct()
	w := d.NewWindow()
	for i := 0; i < 50; i++ {
		w.Merge(raw(fmt.Sprintf("k%d", i), 0))
	}
	once := d.Finalize(w.Value()).(float64)
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 50; i++ {
			w.Merge(raw(fmt.Sprintf("k%d", i), 0))
		}
	}
	if again := d.Finalize(w.Value()).(float64); again != once {
		t.Fatalf("duplicates moved the estimate: %v -> %v", once, again)
	}
}

// Combining disjoint partial sketches equals sketching the union directly,
// and CombineInto folds in place without touching its second operand.
func TestDistinctCombine(t *testing.T) {
	d := DefaultDistinct()
	wa, wb, wu := d.NewWindow(), d.NewWindow(), d.NewWindow()
	for i := 0; i < 300; i++ {
		k := raw(fmt.Sprintf("k%d", i), 0)
		if i%2 == 0 {
			wa.Merge(k)
		} else {
			wb.Merge(k)
		}
		wu.Merge(k)
	}
	a, b, u := wa.Value(), wb.Value(), wu.Value()
	combined := d.Combine(a, b)
	if got, want := d.Finalize(combined).(float64), d.Finalize(u).(float64); got != want {
		t.Fatalf("combined estimate %v, union estimate %v", got, want)
	}
	// Combine must not have mutated a.
	if d.Finalize(a).(float64) == d.Finalize(combined).(float64) {
		t.Fatal("Combine mutated its first operand")
	}
	bBefore := append([]uint64(nil), b.([]uint64)...)
	inPlace := d.CombineInto(a, b)
	if &inPlace.([]uint64)[0] != &a.([]uint64)[0] {
		t.Fatal("CombineInto did not reuse a's storage")
	}
	for i, w := range b.([]uint64) {
		if w != bBefore[i] {
			t.Fatal("CombineInto mutated its second operand")
		}
	}
	if got := d.Finalize(inPlace).(float64); got != d.Finalize(combined).(float64) {
		t.Fatalf("in-place combine diverges from copying combine: %v", got)
	}
}

// Window Remove with multiplicity mirrors the Bloom index semantics: a key
// merged twice survives one removal.
func TestDistinctWindowRemove(t *testing.T) {
	d := DefaultDistinct()
	w := d.NewWindow()
	k := raw("dup", 0)
	w.Merge(k)
	w.Merge(k)
	w.Remove(k)
	if w.Value() == nil {
		t.Fatal("key with remaining multiplicity vanished")
	}
	w.Remove(k)
	if w.Value() != nil {
		t.Fatal("drained window must yield nil")
	}
}

// The registry builds the operator, validates the register count, and the
// sketch value survives the wire codec (it is a plain bit array).
func TestDistinctRegistryAndWire(t *testing.T) {
	op, err := New("distinct", []string{"512"})
	if err != nil {
		t.Fatal(err)
	}
	if op.(Distinct).Registers != 512 {
		t.Fatalf("registers = %d", op.(Distinct).Registers)
	}
	if _, err := New("distinct", []string{"100"}); err == nil {
		t.Fatal("non-power-of-two register count accepted")
	}
	if _, err := New("distinct", []string{"8"}); err == nil {
		t.Fatal("undersized register count accepted")
	}
	d := DefaultDistinct()
	w := d.NewWindow()
	for i := 0; i < 40; i++ {
		w.Merge(raw(fmt.Sprintf("k%d", i), 0))
	}
	var buf wire.Buffer
	buf.PutValue(w.Value())
	got, err := wire.NewReader(buf.Bytes()).Value()
	if err != nil {
		t.Fatal(err)
	}
	if want, have := d.Finalize(w.Value()).(float64), d.Finalize(got).(float64); want != have {
		t.Fatalf("wire round trip changed the estimate: %v -> %v", want, have)
	}
}
