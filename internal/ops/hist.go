package ops

import "repro/internal/tuple"

// Hist aggregates a histogram over tuple keys without finalization — the
// aggregated value IS the histogram. The experiment harness uses it as an
// instrumentation operator: sensors stamp each tuple's key with its
// ground-truth window so the root can measure true completeness and tuple
// dispersion (§5) without altering the runtime's behaviour.
type Hist struct{}

// Name implements Operator.
func (Hist) Name() string { return "hist" }

// NewWindow implements Operator.
func (Hist) NewWindow() Window { return &histWindow{counts: map[string]float64{}} }

// Combine implements Operator.
func (Hist) Combine(a, b tuple.Value) tuple.Value { return Entropy{}.Combine(a, b) }

// CombineInto implements InPlaceCombiner.
func (Hist) CombineInto(a, b tuple.Value) tuple.Value { return Entropy{}.CombineInto(a, b) }

func init() {
	Register("hist", func(args []string) (Operator, error) { return Hist{}, nil })
}
