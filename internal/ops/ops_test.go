package ops

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tuple"
	"repro/internal/wire"
)

func raw(key string, at time.Duration, vals ...float64) tuple.Raw {
	return tuple.Raw{Key: key, Vals: vals, At: at}
}

func TestSumWindowMergeRemove(t *testing.T) {
	w := Sum{}.NewWindow()
	if w.Value() != nil {
		t.Fatal("empty window must yield nil")
	}
	a, b := raw("", 1, 5), raw("", 2, 7)
	w.Merge(a)
	w.Merge(b)
	if w.Value().(float64) != 12 {
		t.Fatalf("sum = %v", w.Value())
	}
	w.Remove(a)
	if w.Value().(float64) != 7 {
		t.Fatalf("after remove = %v", w.Value())
	}
	w.Remove(b)
	if w.Value() != nil {
		t.Fatal("drained window must yield nil")
	}
}

func TestSumCombine(t *testing.T) {
	if got := (Sum{}).Combine(float64(3), float64(4)).(float64); got != 7 {
		t.Fatalf("combine = %v", got)
	}
}

func TestCount(t *testing.T) {
	w := Count{}.NewWindow()
	w.Merge(raw("", 1, 9))
	w.Merge(raw("", 2, 9))
	if w.Value().(float64) != 2 {
		t.Fatalf("count = %v", w.Value())
	}
	if got := (Count{}).Combine(float64(2), float64(3)).(float64); got != 5 {
		t.Fatalf("combine = %v", got)
	}
}

func TestExtrema(t *testing.T) {
	minW := Extremum{}.NewWindow()
	maxW := Extremum{Max: true}.NewWindow()
	for _, v := range []float64{5, 1, 9, 3} {
		minW.Merge(raw("", time.Duration(v), v))
		maxW.Merge(raw("", time.Duration(v), v))
	}
	if minW.Value().(float64) != 1 || maxW.Value().(float64) != 9 {
		t.Fatalf("min/max = %v/%v", minW.Value(), maxW.Value())
	}
	minW.Remove(raw("", 1, 1))
	if minW.Value().(float64) != 3 {
		t.Fatalf("min after remove = %v", minW.Value())
	}
	if got := (Extremum{Max: true}).Combine(float64(2), float64(8)).(float64); got != 8 {
		t.Fatalf("max combine = %v", got)
	}
	if got := (Extremum{}).Combine(float64(2), float64(8)).(float64); got != 2 {
		t.Fatalf("min combine = %v", got)
	}
}

func TestAvgFinalize(t *testing.T) {
	op := Avg{}
	w := op.NewWindow()
	w.Merge(raw("", 1, 10))
	w.Merge(raw("", 2, 20))
	v := w.Value()
	combined := op.Combine(v, []float64{30, 1}) // another partial: one tuple of 30
	if got := op.Finalize(combined).(float64); got != 20 {
		t.Fatalf("avg = %v, want 20", got)
	}
	if got := op.Finalize([]float64{0, 0}).(float64); got != 0 {
		t.Fatalf("empty avg = %v", got)
	}
}

func TestTopKWindowAndCombine(t *testing.T) {
	op := TopK{K: 2, Field: 0}
	w := op.NewWindow()
	w.Merge(raw("a", 1, -40, 7))
	w.Merge(raw("b", 2, -30, 8))
	w.Merge(raw("c", 3, -60, 9))
	w.Merge(raw("a", 4, -20, 10)) // louder frame from a
	v := w.Value().([]wire.ScoredEntry)
	if len(v) != 2 || v[0].Key != "a" || v[0].Score != -20 || v[1].Key != "b" {
		t.Fatalf("topk = %+v", v)
	}
	if v[0].Payload[0] != 10 {
		t.Fatalf("payload = %v", v[0].Payload)
	}
	other := []wire.ScoredEntry{{Key: "d", Score: -10}, {Key: "a", Score: -50}}
	merged := op.Combine(v, other).([]wire.ScoredEntry)
	if len(merged) != 2 || merged[0].Key != "d" || merged[1].Key != "a" || merged[1].Score != -20 {
		t.Fatalf("combined = %+v", merged)
	}
	// Remove the loud frame; a's best drops back.
	w.Remove(raw("a", 4, -20, 10))
	v = w.Value().([]wire.ScoredEntry)
	if v[0].Key != "b" {
		t.Fatalf("after remove = %+v", v)
	}
}

func TestUnion(t *testing.T) {
	op := Union{}
	w := op.NewWindow()
	w.Merge(raw("n2", 1, 5, 6))
	w.Merge(raw("n1", 2, 1, 2))
	v := w.Value().([]wire.ScoredEntry)
	if len(v) != 2 || v[0].Key != "n1" || v[1].Key != "n2" {
		t.Fatalf("union = %+v", v)
	}
	more := op.Combine(v, []wire.ScoredEntry{{Key: "n3"}}).([]wire.ScoredEntry)
	if len(more) != 3 {
		t.Fatalf("combined union = %+v", more)
	}
	w.Remove(raw("n2", 1, 5, 6))
	if got := w.Value().([]wire.ScoredEntry); len(got) != 1 || got[0].Key != "n1" {
		t.Fatalf("after remove = %+v", got)
	}
}

func TestEntropy(t *testing.T) {
	op := Entropy{}
	w := op.NewWindow()
	w.Merge(raw("x", 1))
	w.Merge(raw("x", 2))
	w.Merge(raw("y", 3))
	w.Merge(raw("y", 4))
	h := w.Value().(map[string]float64)
	if h["x"] != 2 || h["y"] != 2 {
		t.Fatalf("hist = %v", h)
	}
	if got := op.Finalize(h).(float64); math.Abs(got-1) > 1e-12 {
		t.Fatalf("entropy = %v, want 1 bit", got)
	}
	combined := op.Combine(h, map[string]float64{"x": 2}).(map[string]float64)
	if combined["x"] != 4 {
		t.Fatalf("combined = %v", combined)
	}
	w.Remove(raw("y", 3))
	w.Remove(raw("y", 4))
	if got := op.Finalize(w.Value()).(float64); got != 0 {
		t.Fatalf("single-key entropy = %v", got)
	}
}

func TestBloom(t *testing.T) {
	op := DefaultBloom()
	w := op.NewWindow()
	w.Merge(raw("alpha", 1))
	w.Merge(raw("beta", 2))
	v := w.Value()
	if !op.Contains(v, "alpha") || !op.Contains(v, "beta") {
		t.Fatal("bloom missing inserted keys")
	}
	misses := 0
	for i := 0; i < 100; i++ {
		if !op.Contains(v, string(rune('A'+i%26))+string(rune('0'+i/26))) {
			misses++
		}
	}
	if misses < 90 {
		t.Fatalf("false positive rate too high: %d/100 misses", 100-misses)
	}
	other := op.NewWindow()
	other.Merge(raw("gamma", 3))
	merged := op.Combine(v, other.Value())
	if !op.Contains(merged, "alpha") || !op.Contains(merged, "gamma") {
		t.Fatal("OR-combine lost keys")
	}
	w.Remove(raw("alpha", 1))
	if op.Contains(w.Value(), "alpha") && !op.Contains(w.Value(), "beta") {
		t.Fatal("remove broke the window")
	}
}

func TestQuantile(t *testing.T) {
	op := DefaultQuantile()
	w := op.NewWindow()
	for i := 1; i <= 101; i++ {
		w.Merge(raw("", time.Duration(i), float64(i)))
	}
	if got := op.Finalize(w.Value()).(float64); got != 51 {
		t.Fatalf("median = %v, want 51", got)
	}
	w.Remove(raw("", 101, 101))
	v := w.Value().([]float64)
	if len(v) != 100 {
		t.Fatalf("window size = %d", len(v))
	}
	// Combine keeps the sample within the cap.
	big := op.Combine(v, v).([]float64)
	if len(big) > op.Cap {
		t.Fatalf("combined sample %d exceeds cap %d", len(big), op.Cap)
	}
}

func TestTrilatPullsTowardLoudestSniffer(t *testing.T) {
	w := Trilat{}.NewWindow()
	// Sniffers at (0,0), (10,0), (0,10); the loudest by far is (10,0).
	w.Merge(raw("s1", 1, 0, 0, -80))
	w.Merge(raw("s2", 2, 10, 0, -30))
	w.Merge(raw("s3", 3, 0, 10, -80))
	c := w.Value().(wire.Coord)
	if c.X < 9 || c.Y > 1 {
		t.Fatalf("position = %+v, want near (10,0)", c)
	}
	w.Remove(raw("s2", 2, 10, 0, -30))
	c = w.Value().(wire.Coord)
	if c.X > 1 || math.Abs(c.Y-5) > 1 {
		t.Fatalf("position after remove = %+v, want near (0,5)", c)
	}
}

func TestTrilatFromEntries(t *testing.T) {
	entries := []wire.ScoredEntry{
		{Key: "s1", Score: -30, Payload: []float64{5, 5}},
		{Key: "s2", Score: -80, Payload: []float64{100, 100}},
	}
	c, ok := TrilatFromEntries(entries)
	if !ok || c.X < 5 || c.X > 10 {
		t.Fatalf("trilat = %+v %v", c, ok)
	}
	if _, ok := TrilatFromEntries(nil); ok {
		t.Fatal("empty entries located")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"sum", "count", "min", "max", "avg", "topk", "union", "entropy", "bloom", "quantile", "trilat"} {
		if !Known(name) {
			t.Fatalf("%s not registered", name)
		}
		op, err := New(name, nil)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if op.Name() == "" {
			t.Fatalf("%s has empty name", name)
		}
	}
	if _, err := New("nope", nil); err == nil {
		t.Fatal("unknown operator accepted")
	}
	if _, err := New("topk", []string{"abc"}); err == nil {
		t.Fatal("bad arg accepted")
	}
	op, err := New("topk", []string{"5", "1"})
	if err != nil || op.(TopK).K != 5 || op.(TopK).Field != 1 {
		t.Fatalf("topk args: %+v %v", op, err)
	}
	q, err := New("quantile", []string{"0.9", "64"})
	if err != nil || q.(Quantile).Q != 0.9 || q.(Quantile).Cap != 64 {
		t.Fatalf("quantile args: %+v %v", q, err)
	}
}

func TestCombineNilAware(t *testing.T) {
	c := CombineNilAware(Sum{})
	if c(nil, float64(5)).(float64) != 5 || c(float64(5), nil).(float64) != 5 {
		t.Fatal("nil identity broken")
	}
	if c(float64(2), float64(3)).(float64) != 5 {
		t.Fatal("combine broken")
	}
}

// Property: for sum/count/avg/entropy, Combine is commutative and merging
// across space equals computing over the union locally.
func TestPropertyCombineEquivalence(t *testing.T) {
	f := func(seed int64, nA, nB uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) []tuple.Raw {
			out := make([]tuple.Raw, n)
			for i := range out {
				out[i] = raw(string(rune('a'+rng.Intn(4))), time.Duration(i), float64(rng.Intn(100)))
			}
			return out
		}
		a, b := mk(1+int(nA)%10), mk(1+int(nB)%10)
		sumOp := Sum{}
		wa, wb, wAll := sumOp.NewWindow(), sumOp.NewWindow(), sumOp.NewWindow()
		for _, t := range a {
			wa.Merge(t)
			wAll.Merge(t)
		}
		for _, t := range b {
			wb.Merge(t)
			wAll.Merge(t)
		}
		ab := sumOp.Combine(wa.Value(), wb.Value()).(float64)
		ba := sumOp.Combine(wb.Value(), wa.Value()).(float64)
		return ab == ba && ab == wAll.Value().(float64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: windows return to nil after all merged tuples are removed, for
// every operator that tracks contents.
func TestPropertyMergeRemoveSymmetry(t *testing.T) {
	opsToTest := []Operator{Sum{}, Count{}, Extremum{}, Extremum{Max: true},
		Avg{}, TopK{K: 3}, Union{}, Entropy{}, DefaultBloom(), DefaultQuantile()}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tuples := make([]tuple.Raw, 1+int(n)%12)
		for i := range tuples {
			tuples[i] = raw(string(rune('a'+rng.Intn(3))), time.Duration(i), float64(rng.Intn(50)), float64(i))
		}
		for _, op := range opsToTest {
			w := op.NewWindow()
			for _, tp := range tuples {
				w.Merge(tp)
			}
			for _, tp := range tuples {
				w.Remove(tp)
			}
			if w.Value() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
