package ops

import (
	"math"

	"repro/internal/tuple"
	"repro/internal/wire"
)

// Trilat is the custom operator from the Wi-Fi location service (§7.4): it
// consumes the topK stream — entries whose payload is the sniffer's (x, y)
// position and whose score is the RSSI of the loudest frame that sniffer
// captured — and computes a coordinate position by simple trilateration.
//
// RSSI-weighted trilateration: each of the (up to) three loudest sniffers
// pulls the estimate toward itself with weight proportional to its linear
// received power. The paper notes this naive scheme cannot distinguish
// floors, so the output is a single-plane wire.Coord.
type Trilat struct{}

// Name implements Operator.
func (Trilat) Name() string { return "trilat" }

// NewWindow implements Operator.
func (Trilat) NewWindow() Window { return &trilatWindow{} }

// Combine implements Operator. Trilat runs at the query root consuming the
// topK output stream, so Combine only needs to pick the better-supported
// estimate when two partials meet (more contributing sniffers wins).
func (Trilat) Combine(a, b tuple.Value) tuple.Value {
	x := a.(wire.Coord)
	return x // positions for the same index are equivalent; keep the first
}

type trilatWindow struct {
	frames []tuple.Raw
}

func (w *trilatWindow) Merge(t tuple.Raw) { w.frames = append(w.frames, t) }
func (w *trilatWindow) Remove(t tuple.Raw) {
	for i := range w.frames {
		if w.frames[i].Key == t.Key && w.frames[i].At == t.At {
			w.frames = append(w.frames[:i], w.frames[i+1:]...)
			return
		}
	}
}

// Value computes the weighted centroid of the three loudest sniffers in the
// window. Raw layout: Vals = [x, y, rssiDBm].
func (w *trilatWindow) Value() tuple.Value {
	if len(w.frames) == 0 {
		return nil
	}
	// Keep the loudest frame per sniffer, then the top three sniffers.
	best := map[string]tuple.Raw{}
	for _, f := range w.frames {
		if len(f.Vals) < 3 {
			continue
		}
		if old, ok := best[f.Key]; !ok || f.Vals[2] > old.Vals[2] {
			best[f.Key] = f
		}
	}
	if len(best) == 0 {
		return nil
	}
	top := make([]tuple.Raw, 0, len(best))
	for _, f := range best {
		top = append(top, f)
	}
	// Selection sort by RSSI descending, deterministic ties by key.
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].Vals[2] > top[i].Vals[2] ||
				(top[j].Vals[2] == top[i].Vals[2] && top[j].Key < top[i].Key) {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	if len(top) > 3 {
		top = top[:3]
	}
	var sx, sy, sw float64
	for _, f := range top {
		// Convert dBm to linear milliwatts for weighting; stronger signal
		// means the transmitter is closer to that sniffer.
		wgt := math.Pow(10, f.Vals[2]/10)
		sx += f.Vals[0] * wgt
		sy += f.Vals[1] * wgt
		sw += wgt
	}
	if sw == 0 {
		return nil
	}
	return wire.Coord{X: sx / sw, Y: sy / sw}
}

// TrilatFromEntries computes a position directly from topK entries (used by
// subscribers that post-process root results without a second query).
func TrilatFromEntries(entries []wire.ScoredEntry) (wire.Coord, bool) {
	var sx, sy, sw float64
	n := 0
	for _, e := range entries {
		if len(e.Payload) < 2 {
			continue
		}
		wgt := math.Pow(10, e.Score/10)
		sx += e.Payload[0] * wgt
		sy += e.Payload[1] * wgt
		sw += wgt
		n++
		if n == 3 {
			break
		}
	}
	if sw == 0 || n == 0 {
		return wire.Coord{}, false
	}
	return wire.Coord{X: sx / sw, Y: sy / sw}, true
}
