package ops

import (
	"math"

	"repro/internal/tuple"
)

// --- Distinct ---

// Distinct estimates the number of distinct tuple keys in a window with a
// fixed-size register sketch (the HyperLogLog construction): each key
// hashes to one of M registers, which remembers the longest run of leading
// zero bits any of its keys produced. Partial sketches from different
// children combine by register-wise maximum — a commutative, associative,
// idempotent union, so the re-striping and relaying the routing policy
// performs can never double-count a key. The partial value is the packed
// register array ([]uint64, 8 registers per word), which rides the wire's
// bit-array value kind; Finalize turns it into the cardinality estimate.
type Distinct struct {
	// Registers is the sketch size M (must be a power of two ≥ 16). More
	// registers mean lower variance: the standard error is ≈ 1.04/√M.
	Registers int
}

// DefaultDistinct returns a 256-register sketch (≈ 6.5% standard error,
// 32 bytes on the wire).
func DefaultDistinct() Distinct { return Distinct{Registers: 256} }

// Name implements Operator.
func (Distinct) Name() string { return "distinct" }

// NewWindow implements Operator.
func (d Distinct) NewWindow() Window {
	return &distinctWindow{op: d, keys: map[string]int{}}
}

// words is the packed array length: 8 six-bit-capable byte registers per
// uint64.
func (d Distinct) words() int { return (d.Registers + 7) / 8 }

// Combine implements Operator: register-wise maximum into a fresh array.
func (d Distinct) Combine(a, b tuple.Value) tuple.Value {
	x := a.([]uint64)
	out := make([]uint64, len(x))
	copy(out, x)
	return d.CombineInto(out, b)
}

// CombineInto implements InPlaceCombiner: b's registers fold into a's
// storage by byte-wise maximum.
func (d Distinct) CombineInto(a, b tuple.Value) tuple.Value {
	x := a.([]uint64)
	for i, w := range b.([]uint64) {
		if i >= len(x) {
			break
		}
		have := x[i]
		var out uint64
		for s := 0; s < 64; s += 8 {
			ra, rb := (have>>s)&0xff, (w>>s)&0xff
			if rb > ra {
				ra = rb
			}
			out |= ra << s
		}
		x[i] = out
	}
	return a
}

// Finalize implements Finalizer: the HyperLogLog estimate with the
// small-range linear-counting correction.
func (d Distinct) Finalize(v tuple.Value) tuple.Value {
	regs := v.([]uint64)
	m := float64(d.Registers)
	var sum float64
	zeros := 0
	for i := 0; i < d.Registers; i++ {
		r := (regs[i/8] >> ((i % 8) * 8)) & 0xff
		if r == 0 {
			zeros++
		}
		sum += math.Ldexp(1, -int(r))
	}
	est := alpha(d.Registers) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small cardinalities: most registers still empty; the ball-in-bins
		// occupancy estimate is far more accurate there.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// alpha is the standard bias-correction constant for M registers.
func alpha(m int) float64 {
	switch {
	case m <= 16:
		return 0.673
	case m <= 32:
		return 0.697
	case m <= 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// add folds one key into a packed register array.
func (d Distinct) add(regs []uint64, key string) {
	// FNV-1a, the same base hash the Bloom index uses.
	hash := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		hash ^= uint64(key[i])
		hash *= 1099511628211
	}
	idx := int(hash & uint64(d.Registers-1))
	rest := hash>>uint(bits(d.Registers)) | 1<<62 // sentinel bounds the rank
	rank := uint64(1)
	for rest&1 == 0 {
		rank++
		rest >>= 1
	}
	shift := (idx % 8) * 8
	if cur := (regs[idx/8] >> shift) & 0xff; rank > cur {
		regs[idx/8] = regs[idx/8]&^(0xff<<shift) | rank<<shift
	}
}

// bits returns log2 of a power of two.
func bits(m int) int {
	n := 0
	for m > 1 {
		m >>= 1
		n++
	}
	return n
}

type distinctWindow struct {
	op   Distinct
	keys map[string]int // key -> multiplicity in window
}

func (w *distinctWindow) Merge(t tuple.Raw) { w.keys[t.Key]++ }
func (w *distinctWindow) Remove(t tuple.Raw) {
	if w.keys[t.Key] <= 1 {
		delete(w.keys, t.Key)
	} else {
		w.keys[t.Key]--
	}
}

func (w *distinctWindow) Value() tuple.Value {
	if len(w.keys) == 0 {
		return nil
	}
	regs := make([]uint64, w.op.words())
	for k := range w.keys {
		w.op.add(regs, k)
	}
	return regs
}
