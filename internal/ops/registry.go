package ops

import (
	"fmt"
	"strconv"
)

// Factory constructs an operator from string arguments (the Mortar Stream
// Language compiler resolves operator calls through this registry).
type Factory func(args []string) (Operator, error)

var registry = map[string]Factory{}

// Register installs a factory; later registrations for a name replace
// earlier ones so applications can override built-ins.
func Register(name string, f Factory) { registry[name] = f }

// New builds a named operator. Arguments are positional strings from MSL.
func New(name string, args []string) (Operator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ops: unknown operator %q", name)
	}
	return f(args)
}

// Known reports whether an operator name is registered.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

func intArg(args []string, i, dflt int) (int, error) {
	if i >= len(args) {
		return dflt, nil
	}
	v, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, fmt.Errorf("ops: argument %d: %v", i, err)
	}
	return v, nil
}

func floatArg(args []string, i int, dflt float64) (float64, error) {
	if i >= len(args) {
		return dflt, nil
	}
	v, err := strconv.ParseFloat(args[i], 64)
	if err != nil {
		return 0, fmt.Errorf("ops: argument %d: %v", i, err)
	}
	return v, nil
}

func init() {
	Register("sum", func(args []string) (Operator, error) {
		f, err := intArg(args, 0, 0)
		return Sum{Field: f}, err
	})
	Register("count", func(args []string) (Operator, error) {
		return Count{}, nil
	})
	Register("min", func(args []string) (Operator, error) {
		f, err := intArg(args, 0, 0)
		return Extremum{Field: f}, err
	})
	Register("max", func(args []string) (Operator, error) {
		f, err := intArg(args, 0, 0)
		return Extremum{Field: f, Max: true}, err
	})
	Register("avg", func(args []string) (Operator, error) {
		f, err := intArg(args, 0, 0)
		return Avg{Field: f}, err
	})
	Register("topk", func(args []string) (Operator, error) {
		k, err := intArg(args, 0, 3)
		if err != nil {
			return nil, err
		}
		f, err := intArg(args, 1, 0)
		return TopK{K: k, Field: f}, err
	})
	Register("union", func(args []string) (Operator, error) {
		return Union{}, nil
	})
	Register("entropy", func(args []string) (Operator, error) {
		return Entropy{}, nil
	})
	Register("bloom", func(args []string) (Operator, error) {
		bits, err := intArg(args, 0, 1024)
		if err != nil {
			return nil, err
		}
		hashes, err := intArg(args, 1, 3)
		if err != nil {
			return nil, err
		}
		return Bloom{Bits: bits, Hashes: hashes}, nil
	})
	Register("distinct", func(args []string) (Operator, error) {
		m, err := intArg(args, 0, 256)
		if err != nil {
			return nil, err
		}
		if m < 16 || m&(m-1) != 0 {
			return nil, fmt.Errorf("ops: distinct registers %d must be a power of two >= 16", m)
		}
		return Distinct{Registers: m}, nil
	})
	Register("quantile", func(args []string) (Operator, error) {
		q, err := floatArg(args, 0, 0.5)
		if err != nil {
			return nil, err
		}
		cap_, err := intArg(args, 1, 128)
		if err != nil {
			return nil, err
		}
		return Quantile{Q: q, Cap: cap_}, nil
	})
	Register("trilat", func(args []string) (Operator, error) {
		return Trilat{}, nil
	})
}
