package eventsim

import (
	"time"
)

// RunRealtime executes events paced to the wall clock: an event due at
// virtual time T runs no earlier than start + T/speed of real time. With
// speed 1 the federation behaves like a live deployment (the examples use
// this when run interactively); large speeds approach plain Run. It
// returns when no events remain or the virtual deadline is reached.
//
// Pacing is cooperative, not preemptive: a long-running callback delays
// its successors, exactly as in the prototype's single-threaded
// event-driven peers.
func (s *Sim) RunRealtime(until time.Duration, speed float64, sleep func(time.Duration)) {
	if speed <= 0 {
		speed = 1
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	start := time.Now()
	for {
		// Drop cancelled events to find the true next deadline.
		for len(s.events) > 0 && s.events[0].fn == nil {
			s.Step()
		}
		if len(s.events) == 0 {
			if s.now < until {
				s.now = until
			}
			return
		}
		next := s.events[0].at
		if next > until {
			s.now = until
			return
		}
		real := time.Duration(float64(next) / speed)
		if ahead := real - time.Since(start); ahead > 0 {
			sleep(ahead)
		}
		s.Step()
	}
}
