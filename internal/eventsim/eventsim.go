// Package eventsim provides a deterministic discrete-event simulation
// kernel: a virtual clock, an event queue ordered by (time, sequence), and
// cancellable timers. Every experiment in this repository runs on top of it,
// which makes each paper figure exactly reproducible from a seed.
//
// The kernel is single-threaded by design, mirroring the SEDA-style
// event-driven peers of the Mortar prototype: callbacks run one at a time in
// timestamp order and may schedule further events.
package eventsim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Clock is the narrow view of the simulator that most components need: read
// virtual time and schedule callbacks. Peer code is written against Clock so
// the same logic runs under simulation and under the live (wall-clock)
// runtime.
type Clock interface {
	// Now returns the current virtual time, measured from the start of the
	// simulation.
	Now() time.Duration
	// After schedules fn to run d from now and returns a handle that can
	// cancel it. A non-positive d schedules fn for the current instant.
	After(d time.Duration, fn func()) *Timer
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	fn     func()
	at     time.Duration
	seq    uint64
	index  int    // heap index; -1 once fired or cancelled
	cancel func() // extra hook used by wall-clock timers
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	if t.cancel != nil {
		c := t.cancel
		t.cancel = nil
		c()
	}
	if t.index >= 0 {
		t.fn = nil
	}
}

// Stopped reports whether the timer has fired or been cancelled.
func (t *Timer) Stopped() bool { return t == nil || t.index < 0 || t.fn == nil }

// When returns the virtual time at which the timer is (or was) due.
func (t *Timer) When() time.Duration { return t.at }

// Sim is a discrete-event simulator. It is not safe for concurrent use; all
// interaction must happen from the goroutine driving Run/Step (normally via
// event callbacks).
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	fired  uint64
}

// New returns a simulator whose random stream is derived from seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source. Components that
// need independent streams should derive their own via rand.New(
// rand.NewSource(s.Rand().Int63())).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn at absolute virtual time t. Times in the past run at the
// current instant, after already-queued events for that instant.
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	ev := &Timer{fn: fn, at: t, seq: s.seq}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn to run every period, starting one period from now, and
// returns a handle that stops the repetition when cancelled. The first run
// can be offset by calling After manually. Period must be positive.
func (s *Sim) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	tk := &Ticker{sim: s, period: period, fn: fn}
	tk.schedule()
	return tk
}

// Ticker repeatedly invokes a callback at a fixed virtual-time period.
type Ticker struct {
	sim     *Sim
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

func (tk *Ticker) schedule() {
	tk.timer = tk.sim.After(tk.period, func() {
		if tk.stopped {
			return
		}
		tk.fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop halts the ticker. The in-flight tick, if any, is cancelled.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.timer.Cancel()
}

// Step executes the next pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		ev.index = -1
		if ev.fn == nil { // cancelled
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines <= t, then advances the clock to
// exactly t (even if no event fired at t).
func (s *Sim) RunUntil(t time.Duration) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.fn == nil {
			heap.Pop(&s.events)
			next.index = -1
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events for the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Timer)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
