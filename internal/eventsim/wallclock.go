package eventsim

import (
	"sync"
	"time"
)

// WallClock implements Clock against real time, for the live runtime used by
// the examples. Callbacks run on timer goroutines; callers that need
// single-threaded semantics must serialize externally (the live Mortar peer
// funnels all callbacks through its event loop channel).
type WallClock struct {
	start time.Time
}

// NewWallClock returns a Clock whose zero instant is the moment of creation.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed real time since the clock was created.
func (w *WallClock) Now() time.Duration { return time.Since(w.start) }

// After schedules fn on a real timer.
func (w *WallClock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{at: w.Now() + d, index: -1}
	var mu sync.Mutex
	cancelled := false
	rt := time.AfterFunc(d, func() {
		mu.Lock()
		dead := cancelled
		mu.Unlock()
		if !dead {
			fn()
		}
	})
	t.cancel = func() {
		mu.Lock()
		cancelled = true
		mu.Unlock()
		rt.Stop()
	}
	return t
}
