package eventsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Fatal("cancelled timer not Stopped")
	}
}

func TestCancelTwiceAndAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(0, func() {})
	s.Run()
	tm.Cancel()
	tm.Cancel() // must not panic
}

func TestNegativeDelayRunsNow(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {
		ran := false
		s.After(-5*time.Second, func() { ran = true })
		if ran {
			t.Fatal("nested event ran synchronously")
		}
	})
	s.Run()
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", s.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	s.After(10*time.Second, func() {})
	s.RunUntil(5 * time.Second)
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(5 * time.Second)
	if s.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", s.Fired())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		n++
		if n == 5 {
			tk.Stop()
		}
	})
	s.RunUntil(time.Minute)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("ticker left %d pending events", s.Pending())
	}
}

func TestTickerStopBeforeFirstTick(t *testing.T) {
	s := New(1)
	n := 0
	tk := s.Every(time.Second, func() { n++ })
	tk.Stop()
	s.Run()
	if n != 0 {
		t.Fatalf("ticks = %d, want 0", n)
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order of their deadlines.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(42)
		var fired []time.Duration
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of timers fires exactly the
// complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		s := New(7)
		fired := 0
		wantFired := 0
		for i, d := range delays {
			tm := s.After(time.Duration(d)*time.Millisecond, func() { fired++ })
			if i < len(mask) && mask[i] {
				tm.Cancel()
			} else {
				wantFired++
			}
		}
		s.Run()
		return fired == wantFired
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWallClockAfterAndCancel(t *testing.T) {
	w := NewWallClock()
	ch := make(chan struct{})
	w.After(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("wall clock timer never fired")
	}
	fired := make(chan struct{})
	tm := w.After(50*time.Millisecond, func() { close(fired) })
	tm.Cancel()
	select {
	case <-fired:
		t.Fatal("cancelled wall timer fired")
	case <-time.After(100 * time.Millisecond):
	}
	if w.Now() <= 0 {
		t.Fatal("wall clock did not advance")
	}
}
