package eventsim

import (
	"testing"
	"time"
)

func TestRunRealtimePacesEvents(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * 10 * time.Millisecond
		s.After(d, func() { fired = append(fired, s.Now()) })
	}
	var slept time.Duration
	s.RunRealtime(time.Second, 1, func(d time.Duration) { slept += d })
	if len(fired) != 5 {
		t.Fatalf("fired %d events", len(fired))
	}
	// The injected sleep does not advance the wall clock, so the pacer
	// requests each event's absolute deadline: 10+20+30+40+50 = 150ms.
	if slept < 140*time.Millisecond || slept > 160*time.Millisecond {
		t.Fatalf("slept %v, want ~150ms", slept)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", s.Now())
	}
}

func TestRunRealtimeSpeedup(t *testing.T) {
	s := New(1)
	s.After(100*time.Millisecond, func() {})
	var slept time.Duration
	s.RunRealtime(200*time.Millisecond, 10, func(d time.Duration) { slept += d })
	if slept > 15*time.Millisecond {
		t.Fatalf("slept %v at 10x speed, want ~10ms", slept)
	}
}

func TestRunRealtimeStopsAtDeadline(t *testing.T) {
	s := New(1)
	ran := false
	s.After(time.Hour, func() { ran = true })
	s.RunRealtime(time.Millisecond, 1e9, nil)
	if ran {
		t.Fatal("event beyond deadline ran")
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRunRealtimeCancelledEventsSkipped(t *testing.T) {
	s := New(1)
	tm := s.After(10*time.Millisecond, func() { t.Fatal("cancelled event ran") })
	tm.Cancel()
	var slept time.Duration
	s.RunRealtime(20*time.Millisecond, 1, func(d time.Duration) { slept += d })
	if slept > time.Millisecond {
		t.Fatalf("paced for a cancelled event: %v", slept)
	}
}
