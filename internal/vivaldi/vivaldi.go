// Package vivaldi implements the Vivaldi decentralized network coordinate
// algorithm (Dabek et al., SIGCOMM 2004). The Mortar prototype sourced its
// network coordinates from Bamboo's Vivaldi implementation; here the
// algorithm runs over emulated shortest-path latencies. Coordinates feed the
// physical dataflow planner (internal/plan), which clusters them to build
// network-aware primary trees.
//
// Per the paper's footnote, experiments use 3-dimensional coordinates.
package vivaldi

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Coordinate is a point in a Euclidean embedding of network latency. The
// units are milliseconds: the Euclidean distance between two coordinates
// predicts the one-way latency between their nodes. Under the
// height-vector model (Config.Height) the last component is the scalar
// height — the node's access-link latency, paid on every path regardless
// of direction — and it travels as one extra component dimension, so the
// wire shape is unchanged; use HeightDist for distances then.
type Coordinate []float64

// Dist returns the Euclidean distance between two coordinates.
func (c Coordinate) Dist(o Coordinate) float64 {
	var s float64
	for i := range c {
		d := c[i] - o[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// HeightDist returns the height-model distance between two wire
// coordinates whose last component is the height: the Euclidean distance
// of the vector parts plus both heights (Dabek et al. §5.4 — every path
// descends one access link, crosses the core, and climbs the other).
func HeightDist(a, b Coordinate) float64 {
	if len(a) < 2 || len(a) != len(b) {
		return a.Dist(b)
	}
	n := len(a) - 1
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s) + a[n] + b[n]
}

// Clone returns a copy of c.
func (c Coordinate) Clone() Coordinate {
	out := make(Coordinate, len(c))
	copy(out, c)
	return out
}

// Config holds the Vivaldi tuning constants; the defaults are those from the
// paper's adaptive-timestep algorithm.
type Config struct {
	Dims int
	// CE scales the adaptive timestep; CC scales the error EWMA.
	CE, CC float64
	// Gravity, when positive, is the distance scale (in ms) of a
	// polynomial gravity well pulling coordinates toward the origin: after
	// every update the coordinate moves (||x||/Gravity)² ms toward it.
	// Spring forces are translation-invariant, so without this term a
	// long-lived embedding drifts as a whole — accurate relative distances
	// around a wandering centroid (Ledlie et al., "Network Coordinates in
	// the Wild"). The well is negligible near the origin and steep far
	// away, so it anchors the embedding without distorting it. Zero
	// disables the term.
	Gravity float64
	// Height enables the height-vector model (Vivaldi §5.4): each node
	// carries a scalar height modeling its access-link latency, paid on
	// every path in both directions — the asymmetry a pure Euclidean
	// space cannot express. The height travels as one extra wire
	// component (WireDims), so the coordinate extension's shape is
	// unchanged; distances come from HeightDist.
	Height bool
}

// minHeight keeps the height component strictly positive (a zero height
// would let the spring forces trap nodes on the Euclidean subspace).
const minHeight = 1e-3 // ms

// DefaultConfig returns 3-dimensional coordinates with the standard
// constants ce = cc = 0.25 and a gravity scale of 256ms.
func DefaultConfig() Config { return Config{Dims: 3, CE: 0.25, CC: 0.25, Gravity: 256} }

// WireDims returns the component count of this configuration's wire
// coordinates: the Euclidean dimensions plus, under the height model, the
// height as one extra trailing component.
func (c Config) WireDims() int {
	if c.Height {
		return c.Dims + 1
	}
	return c.Dims
}

// Distance predicts the one-way latency in milliseconds between two wire
// coordinates of this configuration.
func (c Config) Distance(a, b Coordinate) float64 {
	if c.Height {
		return HeightDist(a, b)
	}
	return a.Dist(b)
}

// Node is one participant's coordinate state. It is safe for concurrent
// use: under a live runtime the receive path updates the coordinate (one
// sample per heartbeat or probe reply) while the planner and the heartbeat
// sender read it from other goroutines.
type Node struct {
	cfg Config

	mu    sync.Mutex
	coord Coordinate
	err   float64
	rng   *rand.Rand
}

// NewNode returns a node at a small random initial position with error 1.
// Starting near (but not exactly at) the origin avoids the degenerate
// all-zero configuration. Under the height model the coordinate carries
// one extra trailing component, the height, floored at minHeight.
func NewNode(cfg Config, rng *rand.Rand) *Node {
	c := make(Coordinate, cfg.WireDims())
	for i := 0; i < cfg.Dims; i++ {
		c[i] = rng.Float64() * 0.1
	}
	if cfg.Height {
		c[cfg.Dims] = minHeight
	}
	return &Node{cfg: cfg, coord: c, err: 1, rng: rng}
}

// Coord returns a copy of the node's current coordinate. It never returns
// a live reference: the receive loop may move the coordinate concurrently
// with the caller reading it.
func (n *Node) Coord() Coordinate {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coord.Clone()
}

// Error returns the node's current error estimate.
func (n *Node) Error() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Snapshot returns the coordinate (copied) and error estimate read under
// one lock, so the pair is consistent — what heartbeat piggybacking sends.
func (n *Node) Snapshot() (Coordinate, float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coord.Clone(), n.err
}

// Update incorporates one latency sample to a remote node, moving this
// node's coordinate along the spring force between the two. Coordinates
// whose component count does not match this node's configuration —
// including a flat coordinate offered to a height node or vice versa —
// are ignored: mixing the two models would corrupt the embedding.
func (n *Node) Update(rtt time.Duration, remote Coordinate, remoteErr float64) {
	lat := float64(rtt) / float64(time.Millisecond)
	if lat <= 0 || len(remote) != n.cfg.WireDims() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d := n.cfg.Dims
	// Vector-part separation, and the model's predicted distance: pure
	// Euclidean, or Euclidean plus both heights under the height model.
	var vecDist float64
	for i := 0; i < d; i++ {
		dd := n.coord[i] - remote[i]
		vecDist += dd * dd
	}
	vecDist = math.Sqrt(vecDist)
	dist := vecDist
	if n.cfg.Height {
		dist += n.coord[d] + remote[d]
	}
	// Weight: balance of local vs remote error.
	w := 0.5
	if n.err+remoteErr > 0 {
		w = n.err / (n.err + remoteErr)
	}
	// Relative error of this sample.
	var relErr float64
	if lat > 0 {
		relErr = math.Abs(dist-lat) / lat
	}
	// Update error EWMA and adaptive timestep.
	n.err = relErr*n.cfg.CC*w + n.err*(1-n.cfg.CC*w)
	if n.err > 1 {
		n.err = 1
	}
	delta := n.cfg.CE * w
	// Unit vector from remote toward us; if coincident, pick a random
	// direction so co-located nodes can separate.
	dir := make(Coordinate, d)
	if vecDist > 1e-9 {
		for i := range dir {
			dir[i] = (n.coord[i] - remote[i]) / vecDist
		}
	} else {
		var norm float64
		for i := range dir {
			dir[i] = n.rng.NormFloat64()
			norm += dir[i] * dir[i]
		}
		norm = math.Sqrt(norm)
		for i := range dir {
			dir[i] /= norm
		}
	}
	force := delta * (lat - dist)
	for i := range dir {
		n.coord[i] += force * dir[i]
	}
	if n.cfg.Height {
		// The height absorbs force in proportion to the heights' share of
		// the path (Dabek et al. §5.4): both access links stretch or
		// shrink together, scaled by how dominant they are relative to
		// the core crossing.
		if vecDist > 1e-9 {
			n.coord[d] += force * (n.coord[d] + remote[d]) / vecDist
		}
		if n.coord[d] < minHeight {
			n.coord[d] = minHeight
		}
	}
	n.applyGravity()
}

// applyGravity pulls the vector part toward the origin by (||x||/Gravity)²
// ms, capped so it never overshoots past the origin. Called with the lock
// held, after each spring update — drift control, not a measurement. The
// height is untouched: it is a magnitude, not a position.
func (n *Node) applyGravity() {
	if n.cfg.Gravity <= 0 {
		return
	}
	var norm float64
	for _, v := range n.coord[:n.cfg.Dims] {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm < 1e-9 {
		return
	}
	pull := (norm / n.cfg.Gravity) * (norm / n.cfg.Gravity)
	if pull > norm {
		pull = norm
	}
	scale := (norm - pull) / norm
	for i := 0; i < n.cfg.Dims; i++ {
		n.coord[i] *= scale
	}
}

// System runs Vivaldi for a set of nodes against a latency oracle, the way
// the Mortar evaluation lets Vivaldi run "for at least ten rounds before
// interconnecting operators".
type System struct {
	Nodes []*Node
	rng   *rand.Rand
}

// NewSystem creates n Vivaldi nodes.
func NewSystem(n int, cfg Config, rng *rand.Rand) *System {
	s := &System{rng: rng}
	for i := 0; i < n; i++ {
		s.Nodes = append(s.Nodes, NewNode(cfg, rand.New(rand.NewSource(rng.Int63()))))
	}
	return s
}

// Round has every node sample `samples` random peers through the latency
// oracle (a one-way delay; the RTT passed to Update is twice that, matching
// how deployed Vivaldi measures ping RTTs but embeds one-way distance by
// halving — we keep the embedding in one-way ms by passing one-way
// directly).
func (s *System) Round(samples int, oneWay func(i, j int) time.Duration) {
	n := len(s.Nodes)
	for i := 0; i < n; i++ {
		for k := 0; k < samples; k++ {
			j := s.rng.Intn(n)
			if j == i {
				continue
			}
			lat := oneWay(i, j)
			if lat < 0 {
				continue
			}
			remote, remoteErr := s.Nodes[j].Snapshot()
			s.Nodes[i].Update(lat, remote, remoteErr)
		}
	}
}

// Run executes the given number of rounds.
func (s *System) Run(rounds, samplesPerRound int, oneWay func(i, j int) time.Duration) {
	for r := 0; r < rounds; r++ {
		s.Round(samplesPerRound, oneWay)
	}
}

// Coordinates returns a snapshot of all node coordinates.
func (s *System) Coordinates() []Coordinate {
	out := make([]Coordinate, len(s.Nodes))
	for i, n := range s.Nodes {
		out[i] = n.Coord()
	}
	return out
}

// MedianRelativeError measures embedding quality: the median over sampled
// pairs of |predicted - actual| / actual.
func (s *System) MedianRelativeError(pairs int, oneWay func(i, j int) time.Duration) float64 {
	n := len(s.Nodes)
	var errs []float64
	for k := 0; k < pairs; k++ {
		i, j := s.rng.Intn(n), s.rng.Intn(n)
		if i == j {
			continue
		}
		actual := float64(oneWay(i, j)) / float64(time.Millisecond)
		if actual <= 0 {
			continue
		}
		pred := s.Nodes[i].cfg.Distance(s.Nodes[i].Coord(), s.Nodes[j].Coord())
		errs = append(errs, math.Abs(pred-actual)/actual)
	}
	if len(errs) == 0 {
		return 0
	}
	// Median by partial sort.
	for i := 0; i < len(errs); i++ {
		for j := i + 1; j < len(errs); j++ {
			if errs[j] < errs[i] {
				errs[i], errs[j] = errs[j], errs[i]
			}
		}
	}
	return errs[len(errs)/2]
}
