// Package vivaldi implements the Vivaldi decentralized network coordinate
// algorithm (Dabek et al., SIGCOMM 2004). The Mortar prototype sourced its
// network coordinates from Bamboo's Vivaldi implementation; here the
// algorithm runs over emulated shortest-path latencies. Coordinates feed the
// physical dataflow planner (internal/plan), which clusters them to build
// network-aware primary trees.
//
// Per the paper's footnote, experiments use 3-dimensional coordinates.
package vivaldi

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Coordinate is a point in a Euclidean embedding of network latency. The
// units are milliseconds: the Euclidean distance between two coordinates
// predicts the one-way latency between their nodes.
type Coordinate []float64

// Dist returns the Euclidean distance between two coordinates.
func (c Coordinate) Dist(o Coordinate) float64 {
	var s float64
	for i := range c {
		d := c[i] - o[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Clone returns a copy of c.
func (c Coordinate) Clone() Coordinate {
	out := make(Coordinate, len(c))
	copy(out, c)
	return out
}

// Config holds the Vivaldi tuning constants; the defaults are those from the
// paper's adaptive-timestep algorithm.
type Config struct {
	Dims int
	// CE scales the adaptive timestep; CC scales the error EWMA.
	CE, CC float64
	// Gravity, when positive, is the distance scale (in ms) of a
	// polynomial gravity well pulling coordinates toward the origin: after
	// every update the coordinate moves (||x||/Gravity)² ms toward it.
	// Spring forces are translation-invariant, so without this term a
	// long-lived embedding drifts as a whole — accurate relative distances
	// around a wandering centroid (Ledlie et al., "Network Coordinates in
	// the Wild"). The well is negligible near the origin and steep far
	// away, so it anchors the embedding without distorting it. Zero
	// disables the term.
	Gravity float64
}

// DefaultConfig returns 3-dimensional coordinates with the standard
// constants ce = cc = 0.25 and a gravity scale of 256ms.
func DefaultConfig() Config { return Config{Dims: 3, CE: 0.25, CC: 0.25, Gravity: 256} }

// Node is one participant's coordinate state. It is safe for concurrent
// use: under a live runtime the receive path updates the coordinate (one
// sample per heartbeat or probe reply) while the planner and the heartbeat
// sender read it from other goroutines.
type Node struct {
	cfg Config

	mu    sync.Mutex
	coord Coordinate
	err   float64
	rng   *rand.Rand
}

// NewNode returns a node at a small random initial position with error 1.
// Starting near (but not exactly at) the origin avoids the degenerate
// all-zero configuration.
func NewNode(cfg Config, rng *rand.Rand) *Node {
	c := make(Coordinate, cfg.Dims)
	for i := range c {
		c[i] = rng.Float64() * 0.1
	}
	return &Node{cfg: cfg, coord: c, err: 1, rng: rng}
}

// Coord returns a copy of the node's current coordinate. It never returns
// a live reference: the receive loop may move the coordinate concurrently
// with the caller reading it.
func (n *Node) Coord() Coordinate {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coord.Clone()
}

// Error returns the node's current error estimate.
func (n *Node) Error() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Snapshot returns the coordinate (copied) and error estimate read under
// one lock, so the pair is consistent — what heartbeat piggybacking sends.
func (n *Node) Snapshot() (Coordinate, float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coord.Clone(), n.err
}

// Update incorporates one latency sample to a remote node, moving this
// node's coordinate along the spring force between the two.
func (n *Node) Update(rtt time.Duration, remote Coordinate, remoteErr float64) {
	lat := float64(rtt) / float64(time.Millisecond)
	if lat <= 0 || len(remote) != n.cfg.Dims {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	dist := n.coord.Dist(remote)
	// Weight: balance of local vs remote error.
	w := 0.5
	if n.err+remoteErr > 0 {
		w = n.err / (n.err + remoteErr)
	}
	// Relative error of this sample.
	var relErr float64
	if lat > 0 {
		relErr = math.Abs(dist-lat) / lat
	}
	// Update error EWMA and adaptive timestep.
	n.err = relErr*n.cfg.CC*w + n.err*(1-n.cfg.CC*w)
	if n.err > 1 {
		n.err = 1
	}
	delta := n.cfg.CE * w
	// Unit vector from remote toward us; if coincident, pick a random
	// direction so co-located nodes can separate.
	dir := make(Coordinate, len(n.coord))
	if dist > 1e-9 {
		for i := range dir {
			dir[i] = (n.coord[i] - remote[i]) / dist
		}
	} else {
		var norm float64
		for i := range dir {
			dir[i] = n.rng.NormFloat64()
			norm += dir[i] * dir[i]
		}
		norm = math.Sqrt(norm)
		for i := range dir {
			dir[i] /= norm
		}
	}
	force := delta * (lat - dist)
	for i := range n.coord {
		n.coord[i] += force * dir[i]
	}
	n.applyGravity()
}

// applyGravity pulls the coordinate toward the origin by (||x||/Gravity)²
// ms, capped so it never overshoots past the origin. Called with the lock
// held, after each spring update — drift control, not a measurement.
func (n *Node) applyGravity() {
	if n.cfg.Gravity <= 0 {
		return
	}
	var norm float64
	for _, v := range n.coord {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm < 1e-9 {
		return
	}
	pull := (norm / n.cfg.Gravity) * (norm / n.cfg.Gravity)
	if pull > norm {
		pull = norm
	}
	scale := (norm - pull) / norm
	for i := range n.coord {
		n.coord[i] *= scale
	}
}

// System runs Vivaldi for a set of nodes against a latency oracle, the way
// the Mortar evaluation lets Vivaldi run "for at least ten rounds before
// interconnecting operators".
type System struct {
	Nodes []*Node
	rng   *rand.Rand
}

// NewSystem creates n Vivaldi nodes.
func NewSystem(n int, cfg Config, rng *rand.Rand) *System {
	s := &System{rng: rng}
	for i := 0; i < n; i++ {
		s.Nodes = append(s.Nodes, NewNode(cfg, rand.New(rand.NewSource(rng.Int63()))))
	}
	return s
}

// Round has every node sample `samples` random peers through the latency
// oracle (a one-way delay; the RTT passed to Update is twice that, matching
// how deployed Vivaldi measures ping RTTs but embeds one-way distance by
// halving — we keep the embedding in one-way ms by passing one-way
// directly).
func (s *System) Round(samples int, oneWay func(i, j int) time.Duration) {
	n := len(s.Nodes)
	for i := 0; i < n; i++ {
		for k := 0; k < samples; k++ {
			j := s.rng.Intn(n)
			if j == i {
				continue
			}
			lat := oneWay(i, j)
			if lat < 0 {
				continue
			}
			remote, remoteErr := s.Nodes[j].Snapshot()
			s.Nodes[i].Update(lat, remote, remoteErr)
		}
	}
}

// Run executes the given number of rounds.
func (s *System) Run(rounds, samplesPerRound int, oneWay func(i, j int) time.Duration) {
	for r := 0; r < rounds; r++ {
		s.Round(samplesPerRound, oneWay)
	}
}

// Coordinates returns a snapshot of all node coordinates.
func (s *System) Coordinates() []Coordinate {
	out := make([]Coordinate, len(s.Nodes))
	for i, n := range s.Nodes {
		out[i] = n.Coord()
	}
	return out
}

// MedianRelativeError measures embedding quality: the median over sampled
// pairs of |predicted - actual| / actual.
func (s *System) MedianRelativeError(pairs int, oneWay func(i, j int) time.Duration) float64 {
	n := len(s.Nodes)
	var errs []float64
	for k := 0; k < pairs; k++ {
		i, j := s.rng.Intn(n), s.rng.Intn(n)
		if i == j {
			continue
		}
		actual := float64(oneWay(i, j)) / float64(time.Millisecond)
		if actual <= 0 {
			continue
		}
		pred := s.Nodes[i].Coord().Dist(s.Nodes[j].Coord())
		errs = append(errs, math.Abs(pred-actual)/actual)
	}
	if len(errs) == 0 {
		return 0
	}
	// Median by partial sort.
	for i := 0; i < len(errs); i++ {
		for j := i + 1; j < len(errs); j++ {
			if errs[j] < errs[i] {
				errs[i], errs[j] = errs[j], errs[i]
			}
		}
	}
	return errs[len(errs)/2]
}
