package vivaldi

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDist(t *testing.T) {
	a := Coordinate{0, 0, 0}
	b := Coordinate{3, 4, 0}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("self Dist = %v", d)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := Coordinate{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestUpdateMovesTowardTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNode(DefaultConfig(), rng)
	remote := Coordinate{100, 0, 0}
	before := n.Coord().Dist(remote)
	// True latency 10ms but embedded distance ~100: node should move toward
	// the remote to shrink the spring.
	for i := 0; i < 50; i++ {
		n.Update(10*time.Millisecond, remote, 0.5)
	}
	after := n.Coord().Dist(remote)
	if after >= before {
		t.Fatalf("distance did not shrink: %v -> %v", before, after)
	}
}

func TestUpdateIgnoresNonPositiveRTT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNode(DefaultConfig(), rng)
	before := n.Coord().Clone()
	n.Update(0, Coordinate{1, 1, 1}, 0.5)
	n.Update(-time.Second, Coordinate{1, 1, 1}, 0.5)
	for i := range before {
		if n.Coord()[i] != before[i] {
			t.Fatal("coordinate moved on invalid sample")
		}
	}
}

func TestCoincidentNodesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewNode(DefaultConfig(), rng)
	at := n.Coord().Clone()
	n.Update(20*time.Millisecond, at, 0.5)
	if n.Coord().Dist(at) == 0 {
		t.Fatal("coincident nodes did not separate")
	}
}

// Embedding a set of points on a synthetic 2-level metric should converge to
// low relative error after the paper's "at least ten rounds".
func TestSystemConvergesOnClusteredMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 60
	// Two sites: intra-site 2ms, inter-site 50ms.
	site := make([]int, n)
	for i := range site {
		site[i] = i % 2
	}
	oneWay := func(i, j int) time.Duration {
		if site[i] == site[j] {
			return 2 * time.Millisecond
		}
		return 50 * time.Millisecond
	}
	s := NewSystem(n, DefaultConfig(), rng)
	s.Run(30, 8, oneWay)
	if err := s.MedianRelativeError(500, oneWay); err > 0.35 {
		t.Fatalf("median relative error = %.3f, want <= 0.35", err)
	}
	// Intra-site embedded distances must be clearly below inter-site ones.
	coords := s.Coordinates()
	var intra, inter float64
	var ni, nx int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := coords[i].Dist(coords[j])
			if site[i] == site[j] {
				intra += d
				ni++
			} else {
				inter += d
				nx++
			}
		}
	}
	if intra/float64(ni) >= inter/float64(nx) {
		t.Fatalf("embedding failed to separate sites: intra %.2f >= inter %.2f",
			intra/float64(ni), inter/float64(nx))
	}
}

func TestErrorStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := NewNode(DefaultConfig(), rng)
	for i := 0; i < 1000; i++ {
		lat := time.Duration(1+rng.Intn(100)) * time.Millisecond
		remote := Coordinate{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		n.Update(lat, remote, rng.Float64())
		if n.Error() < 0 || n.Error() > 1 || math.IsNaN(n.Error()) {
			t.Fatalf("error out of range: %v", n.Error())
		}
		for _, c := range n.Coord() {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatal("coordinate diverged")
			}
		}
	}
}

// A node's coordinate is updated by the receive path while planners and
// heartbeat senders read it concurrently; Coord must return a copy and
// every accessor must be race-clean (run under -race).
func TestNodeConcurrentAccess(t *testing.T) {
	n := NewNode(DefaultConfig(), rand.New(rand.NewSource(3)))
	remote := Coordinate{5, 5, 5}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			n.Update(time.Duration(1+i%20)*time.Millisecond, remote, 0.3)
		}
	}()
	for i := 0; i < 2000; i++ {
		c := n.Coord()
		c[0] = math.Inf(1) // must not alias the live coordinate
		snap, errEst := n.Snapshot()
		if len(snap) != 3 || errEst < 0 || errEst > 1 {
			t.Fatalf("snapshot %v err %v", snap, errEst)
		}
		_ = n.Error()
	}
	<-done
	if c := n.Coord(); math.IsInf(c[0], 1) {
		t.Fatal("Coord returned a live reference")
	}
}

// centroidNorm returns the norm of the mean coordinate — the embedding's
// whole-system translation, which gravity is supposed to control.
func centroidNorm(s *System) float64 {
	cfg := s.Nodes[0].cfg
	mean := make(Coordinate, cfg.Dims)
	for _, n := range s.Nodes {
		c := n.Coord()
		for i := range mean {
			mean[i] += c[i]
		}
	}
	var norm float64
	for i := range mean {
		mean[i] /= float64(len(s.Nodes))
		norm += mean[i] * mean[i]
	}
	return math.Sqrt(norm)
}

// The gravity term is drift control: spring forces are translation-
// invariant, so an embedding displaced as a whole would stay displaced
// forever without it. Displace a converged system far from the origin and
// keep updating: with gravity the centroid must be pulled back toward the
// origin while the embedding stays accurate; without gravity it must stay
// out where it was put — the drift gravity exists to stop.
func TestGravityConvergesTowardOrigin(t *testing.T) {
	const n = 40
	oneWay := func(i, j int) time.Duration {
		if i%2 == j%2 {
			return 2 * time.Millisecond
		}
		return 30 * time.Millisecond
	}
	run := func(cfg Config) (centroid float64, relErr float64) {
		s := NewSystem(n, cfg, rand.New(rand.NewSource(9)))
		s.Run(30, 8, oneWay)
		// Displace the whole embedding: a pure translation, invisible to
		// the spring forces.
		for _, node := range s.Nodes {
			node.mu.Lock()
			for i := range node.coord {
				node.coord[i] += 500
			}
			node.mu.Unlock()
		}
		s.Run(150, 8, oneWay)
		return centroidNorm(s), s.MedianRelativeError(500, oneWay)
	}

	withGrav := DefaultConfig()
	if withGrav.Gravity <= 0 {
		t.Fatal("DefaultConfig carries no gravity term")
	}
	centroid, relErr := run(withGrav)
	noGrav := DefaultConfig()
	noGrav.Gravity = 0
	driftCentroid, _ := run(noGrav)

	if centroid > 100 {
		t.Fatalf("gravity left the centroid %.1fms from the origin", centroid)
	}
	if relErr > 0.35 {
		t.Fatalf("gravity distorted the embedding: median relative error %.3f", relErr)
	}
	if driftCentroid < 500 {
		t.Fatalf("control run without gravity recentred itself (centroid %.1fms); the test proves nothing", driftCentroid)
	}
}

// Samples whose coordinate dimensionality does not match the node's (a
// malformed or foreign-config wire coordinate) must be ignored, not panic.
func TestUpdateRejectsDimensionMismatch(t *testing.T) {
	n := NewNode(DefaultConfig(), rand.New(rand.NewSource(4)))
	before := n.Coord()
	n.Update(5*time.Millisecond, Coordinate{1}, 0.5)
	n.Update(5*time.Millisecond, Coordinate{1, 2, 3, 4}, 0.5)
	if d := n.Coord().Dist(before); d != 0 {
		t.Fatalf("node moved %v on mismatched sample", d)
	}
}

// Mixed-model guard: a height node ignores flat coordinates (Dims
// components) and a flat node ignores heighted ones (Dims+1) — the two
// embeddings must never blend, even though both are legal wire shapes.
func TestHeightMixedDimensionGuard(t *testing.T) {
	hcfg := DefaultConfig()
	hcfg.Height = true
	if hcfg.WireDims() != hcfg.Dims+1 {
		t.Fatalf("WireDims = %d, want %d", hcfg.WireDims(), hcfg.Dims+1)
	}
	hn := NewNode(hcfg, rand.New(rand.NewSource(5)))
	if len(hn.Coord()) != hcfg.Dims+1 {
		t.Fatalf("height node coordinate has %d components", len(hn.Coord()))
	}
	before := hn.Coord()
	hn.Update(5*time.Millisecond, Coordinate{1, 2, 3}, 0.5) // flat: rejected
	if d := hn.Coord().Dist(before); d != 0 {
		t.Fatalf("height node moved %v on a flat coordinate", d)
	}
	hn.Update(5*time.Millisecond, Coordinate{1, 2, 3, 0.5}, 0.5) // heighted: accepted
	if d := hn.Coord().Dist(before); d == 0 {
		t.Fatal("height node ignored a matching heighted coordinate")
	}

	fn := NewNode(DefaultConfig(), rand.New(rand.NewSource(6)))
	before = fn.Coord()
	fn.Update(5*time.Millisecond, Coordinate{1, 2, 3, 0.5}, 0.5) // heighted: rejected
	if d := fn.Coord().Dist(before); d != 0 {
		t.Fatalf("flat node moved %v on a heighted coordinate", d)
	}
}

// The height must stay positive through arbitrary updates (a zero or
// negative height would let paths predict less than the access links
// cost) and HeightDist must count both heights.
func TestHeightStaysPositive(t *testing.T) {
	if d := HeightDist(Coordinate{0, 0, 0, 2}, Coordinate{3, 4, 0, 5}); d != 12 {
		t.Fatalf("HeightDist = %v, want 12 (5 + 2 + 5)", d)
	}
	cfg := DefaultConfig()
	cfg.Height = true
	n := NewNode(cfg, rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		remote := Coordinate{rng.Float64() * 50, rng.Float64() * 50, rng.Float64() * 50, rng.Float64() * 10}
		n.Update(time.Duration(1+rng.Intn(80))*time.Millisecond, remote, rng.Float64())
		c := n.Coord()
		if h := c[cfg.Dims]; h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			t.Fatalf("height went to %v", h)
		}
	}
}

// The height model's reason to exist: a metric with fat access links —
// oneWay(i, j) = core(i, j) + acc(i) + acc(j) — cannot embed in a pure
// Euclidean space (the per-node additive term violates the triangle
// structure), but heights express it directly. The heighted embedding
// must converge clearly tighter than the flat control on the same metric,
// and nodes with fat access links must learn visibly larger heights.
func TestHeightConvergesOnAccessLinkMetric(t *testing.T) {
	const n = 40
	acc := func(i int) time.Duration {
		if i%4 == 0 {
			return 40 * time.Millisecond // DSL-class fat access link
		}
		return 2 * time.Millisecond
	}
	oneWay := func(i, j int) time.Duration {
		core := 10 * time.Millisecond
		if i%2 != j%2 {
			core = 30 * time.Millisecond
		}
		return core + acc(i) + acc(j)
	}

	run := func(height bool) (*System, float64) {
		cfg := DefaultConfig()
		cfg.Height = height
		s := NewSystem(n, cfg, rand.New(rand.NewSource(11)))
		s.Run(60, 8, oneWay)
		return s, s.MedianRelativeError(800, oneWay)
	}
	hs, hErr := run(true)
	_, fErr := run(false)
	if hErr > 0.25 {
		t.Fatalf("height model median relative error %.3f, want <= 0.25", hErr)
	}
	if hErr > 0.8*fErr {
		t.Fatalf("height model (%.3f) should beat the flat control (%.3f) clearly", hErr, fErr)
	}
	// Fat-access nodes carry larger heights than thin ones.
	var fat, thin float64
	var nf, nt int
	for i, node := range hs.Nodes {
		h := node.Coord()[DefaultConfig().Dims]
		if i%4 == 0 {
			fat += h
			nf++
		} else {
			thin += h
			nt++
		}
	}
	if fat/float64(nf) <= thin/float64(nt) {
		t.Fatalf("mean height fat %.2f <= thin %.2f — heights did not learn the access links",
			fat/float64(nf), thin/float64(nt))
	}
}
