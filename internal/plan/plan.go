// Package plan implements Mortar's physical dataflow planner (§3): building
// a network-aware "primary" aggregation tree by recursive clustering of
// network coordinates, deriving sibling trees through random rotations that
// trade a little clustering for path diversity, and random trees as the
// baseline the paper compares against in Figure 17.
//
// The planner works on peer indices 0..n-1; callers map those to transport
// addresses. Every peer in the node set appears in every tree exactly once
// — Mortar deploys an operator at each source so data is reduced before it
// crosses the network.
package plan

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cluster"
)

// LatencyModel is the planner's view of the network: an estimate of the
// one-way latency between any two peers. Two families back it — measured
// RTTs from a transport (LatencyFunc over Transport.Latency) and gossiped
// Vivaldi coordinates (CoordModel), which is how worker processes price
// pairs they cannot measure themselves.
type LatencyModel interface {
	// Latency estimates the one-way latency between peers a and b.
	Latency(a, b int) time.Duration
}

// LatencyFunc adapts a pair-latency function to a LatencyModel.
type LatencyFunc func(a, b int) time.Duration

// Latency implements LatencyModel.
func (f LatencyFunc) Latency(a, b int) time.Duration { return f(a, b) }

// CoordModel is a LatencyModel backed by network coordinates: the
// predicted latency between two peers is the Euclidean distance between
// their coordinates, in milliseconds (Vivaldi's embedding unit). With
// Height set, the last component of every point is a Vivaldi height (the
// node's access-link latency): the prediction is then the Euclidean
// distance of the vector parts plus both heights.
type CoordModel struct {
	Coords []cluster.Point
	Height bool
}

// Latency implements LatencyModel by coordinate distance.
func (m CoordModel) Latency(a, b int) time.Duration {
	if a < 0 || b < 0 || a >= len(m.Coords) || b >= len(m.Coords) {
		return 0
	}
	ca, cb := m.Coords[a], m.Coords[b]
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	var heights float64
	if m.Height && n >= 2 {
		heights = ca[n-1] + cb[n-1]
		n--
	}
	var s float64
	for i := 0; i < n; i++ {
		d := ca[i] - cb[i]
		s += d * d
	}
	return time.Duration((math.Sqrt(s) + heights) * float64(time.Millisecond))
}

// Tree is a rooted aggregation tree over peers 0..n-1.
type Tree struct {
	// BF is the branching factor the tree was built with.
	BF int
	// Root is the peer hosting the root operator.
	Root int
	// Parent[p] is p's parent peer, or -1 for the root.
	Parent []int
	// Children[p] lists p's child peers.
	Children [][]int
	// Level[p] is p's depth; the root is at level 0.
	Level []int
}

// NumPeers returns the number of peers in the tree.
func (t *Tree) NumPeers() int { return len(t.Parent) }

// Height returns the maximum level.
func (t *Tree) Height() int {
	h := 0
	for _, l := range t.Level {
		if l > h {
			h = l
		}
	}
	return h
}

// Validate checks structural invariants: a single root, parent/child
// symmetry, all peers reachable, and levels consistent with parents.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("plan: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("plan: root has parent %d", t.Parent[t.Root])
	}
	if t.Level[t.Root] != 0 {
		return fmt.Errorf("plan: root at level %d", t.Level[t.Root])
	}
	seen := 0
	for p := 0; p < n; p++ {
		if p != t.Root {
			pa := t.Parent[p]
			if pa < 0 || pa >= n {
				return fmt.Errorf("plan: peer %d has invalid parent %d", p, pa)
			}
			if t.Level[p] != t.Level[pa]+1 {
				return fmt.Errorf("plan: peer %d level %d, parent level %d",
					p, t.Level[p], t.Level[pa])
			}
			found := false
			for _, c := range t.Children[pa] {
				if c == p {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("plan: peer %d missing from parent %d's children", p, pa)
			}
		}
		seen++
	}
	// Reachability via BFS from the root.
	visited := make([]bool, n)
	queue := []int{t.Root}
	visited[t.Root] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[v] {
			if visited[c] {
				return fmt.Errorf("plan: peer %d visited twice", c)
			}
			visited[c] = true
			count++
			queue = append(queue, c)
		}
	}
	if count != n {
		return fmt.Errorf("plan: %d of %d peers reachable from root", count, n)
	}
	return nil
}

func newTreeFromParents(root, bf int, parent []int) *Tree {
	n := len(parent)
	t := &Tree{
		BF:       bf,
		Root:     root,
		Parent:   parent,
		Children: make([][]int, n),
		Level:    make([]int, n),
	}
	for p, pa := range parent {
		if pa >= 0 {
			t.Children[pa] = append(t.Children[pa], p)
		}
	}
	// Levels by BFS.
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[v] {
			t.Level[c] = t.Level[v] + 1
			queue = append(queue, c)
		}
	}
	return t
}

// BuildPrimary plans the network-aware primary tree (§3.1): it recursively
// finds bf clusters of the peers' network coordinates, makes the peer
// nearest each cluster centroid a child of the current root, and recurses
// into each cluster. The recursion ends when the node set fits within the
// branching factor. This places the majority of the data close to the root
// operator.
func BuildPrimary(coords []cluster.Point, root, bf int, rng *rand.Rand) *Tree {
	n := len(coords)
	if root < 0 || root >= n {
		panic("plan: root out of range")
	}
	if bf < 2 {
		panic("plan: branching factor must be >= 2")
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	rest := make([]int, 0, n-1)
	for p := 0; p < n; p++ {
		if p != root {
			rest = append(rest, p)
		}
	}
	placeCluster(coords, root, rest, bf, parent, rng)
	return newTreeFromParents(root, bf, parent)
}

// placeCluster attaches the peers in set beneath root.
func placeCluster(coords []cluster.Point, root int, set []int, bf int, parent []int, rng *rand.Rand) {
	if len(set) == 0 {
		return
	}
	if len(set) <= bf {
		for _, p := range set {
			parent[p] = root
		}
		return
	}
	pts := make([]cluster.Point, len(set))
	for i, p := range set {
		pts[i] = cluster.Point(coords[p])
	}
	res := cluster.KMeans(pts, bf, rng)
	for c, members := range res.Members {
		if len(members) == 0 {
			continue
		}
		// The child operator is the member peer nearest the centroid.
		head := set[nearest(pts, members, res.Centroids[c])]
		parent[head] = root
		var sub []int
		for _, m := range members {
			if set[m] != head {
				sub = append(sub, set[m])
			}
		}
		placeCluster(coords, head, sub, bf, parent, rng)
	}
}

func nearest(pts []cluster.Point, members []int, centroid cluster.Point) int {
	best, bd := 0, -1.0
	for i, m := range members {
		var d float64
		for k := range centroid {
			diff := pts[m][k] - centroid[k]
			d += diff * diff
		}
		if bd < 0 || d < bd {
			best, bd = i, d
		}
	}
	return members[best]
}

// DeriveSibling derives one sibling tree from the primary (§3.2): it walks
// the tree in post-order and, at each internal node, exchanges a random
// child with the current parent. Leaves percolate up into the interior,
// creating path diversity while retaining most of the primary's clustering.
// The root's occupant can change; data still drains to the query root
// through dynamic striping across the tree set.
func DeriveSibling(primary *Tree, rng *rand.Rand) *Tree {
	n := primary.NumPeers()
	// occupant[pos] = the peer currently occupying tree position pos, where
	// positions are named by the peers of the primary tree.
	occupant := make([]int, n)
	for i := range occupant {
		occupant[i] = i
	}
	var walk func(pos int)
	walk = func(pos int) {
		for _, c := range primary.Children[pos] {
			walk(c)
		}
		if len(primary.Children[pos]) == 0 {
			return // leaf position: nothing to rotate
		}
		c := primary.Children[pos][rng.Intn(len(primary.Children[pos]))]
		occupant[pos], occupant[c] = occupant[c], occupant[pos]
	}
	walk(primary.Root)
	// The query root operator lives at the injecting peer in every tree of
	// the set (tuples from all trees drain to the same root operator), so if
	// the final rotation displaced the root peer, swap it back into the root
	// position.
	if occupant[primary.Root] != primary.Root {
		for pos, occ := range occupant {
			if occ == primary.Root {
				occupant[pos], occupant[primary.Root] = occupant[primary.Root], occupant[pos]
				break
			}
		}
	}
	// Rebuild parent pointers in peer space: the peer occupying position p
	// has, as parent, the peer occupying p's primary parent position.
	parent := make([]int, n)
	for pos := 0; pos < n; pos++ {
		if pos == primary.Root {
			parent[occupant[pos]] = -1
			continue
		}
		parent[occupant[pos]] = occupant[primary.Parent[pos]]
	}
	return newTreeFromParents(primary.Root, primary.BF, parent)
}

// BuildRandom builds a uniformly random full tree with the given branching
// factor: peers are shuffled and packed into a complete bf-ary tree shape.
// This is the "Random" baseline of Figure 17 and the tree model of the
// Figure 1 simulation.
func BuildRandom(n, root, bf int, rng *rand.Rand) *Tree {
	if bf < 2 {
		panic("plan: branching factor must be >= 2")
	}
	order := rng.Perm(n)
	// Ensure the requested root is first.
	for i, p := range order {
		if p == root {
			order[0], order[i] = order[i], order[0]
			break
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	for i := 1; i < n; i++ {
		parent[order[i]] = order[(i-1)/bf]
	}
	return newTreeFromParents(root, bf, parent)
}

// Set is the planned tree set for one query: the primary tree plus derived
// siblings. Tuples stripe across all D trees.
type Set struct {
	Trees []*Tree
}

// Build plans a full tree set: a primary from the coordinates plus D-1
// siblings.
func Build(coords []cluster.Point, root, bf, d int, rng *rand.Rand) *Set {
	if d < 1 {
		panic("plan: tree set size must be >= 1")
	}
	primary := BuildPrimary(coords, root, bf, rng)
	s := &Set{Trees: []*Tree{primary}}
	for i := 1; i < d; i++ {
		s.Trees = append(s.Trees, DeriveSibling(primary, rng))
	}
	return s
}

// BuildRandomSet builds d independent random trees (used by simulations and
// ablations).
func BuildRandomSet(n, root, bf, d int, rng *rand.Rand) *Set {
	s := &Set{}
	for i := 0; i < d; i++ {
		s.Trees = append(s.Trees, BuildRandom(n, root, bf, rng))
	}
	return s
}

// D returns the tree-set size.
func (s *Set) D() int { return len(s.Trees) }

// NumPeers returns the peer count.
func (s *Set) NumPeers() int { return s.Trees[0].NumPeers() }

// Parents returns p's parent in each tree (-1 where p is the root).
func (s *Set) Parents(p int) []int {
	out := make([]int, len(s.Trees))
	for i, t := range s.Trees {
		out[i] = t.Parent[p]
	}
	return out
}

// UniqueNeighbors returns, for each peer, the set of distinct peers that are
// a parent or child of it in any tree of any of the given sets. Heartbeats
// are exchanged per unique parent-child pair and shared across queries, so
// this is the quantity Figure 13 plots.
func UniqueNeighbors(sets []*Set) []map[int]struct{} {
	if len(sets) == 0 {
		return nil
	}
	n := sets[0].NumPeers()
	out := make([]map[int]struct{}, n)
	for i := range out {
		out[i] = make(map[int]struct{})
	}
	for _, s := range sets {
		for _, t := range s.Trees {
			for p, pa := range t.Parent {
				if pa < 0 {
					continue
				}
				out[p][pa] = struct{}{}
				out[pa][p] = struct{}{}
			}
		}
	}
	return out
}

// UniqueChildren returns, for each peer, the number of distinct children it
// must heartbeat across all trees of all sets.
func UniqueChildren(sets []*Set) []int {
	if len(sets) == 0 {
		return nil
	}
	n := sets[0].NumPeers()
	kids := make([]map[int]struct{}, n)
	for i := range kids {
		kids[i] = make(map[int]struct{})
	}
	for _, s := range sets {
		for _, t := range s.Trees {
			for p, pa := range t.Parent {
				if pa >= 0 {
					kids[pa][p] = struct{}{}
				}
			}
		}
	}
	out := make([]int, n)
	for i, m := range kids {
		out[i] = len(m)
	}
	return out
}

// LatencyToRoot returns, per peer, the summed link latency along the
// overlay path to the tree root — "the minimum amount of time for a summary
// tuple from that peer to reach the query root" (Figure 17). The model may
// be measured latencies (LatencyFunc) or coordinate distance (CoordModel).
func LatencyToRoot(t *Tree, m LatencyModel) []time.Duration {
	n := t.NumPeers()
	out := make([]time.Duration, n)
	done := make([]bool, n)
	done[t.Root] = true
	var resolve func(p int) time.Duration
	resolve = func(p int) time.Duration {
		if done[p] {
			return out[p]
		}
		out[p] = resolve(t.Parent[p]) + m.Latency(p, t.Parent[p])
		done[p] = true
		return out[p]
	}
	for p := 0; p < n; p++ {
		resolve(p)
	}
	return out
}

// Quality scores a deployed tree set against a latency view: the mean,
// over every tree of the set, of the mean overlay latency from each peer
// to the root (the summed link latencies of Figure 17). Lower is better.
// Scoring the same set under two models — the embedding the set was
// planned from versus the current one — measures how far the network has
// drifted from the plan; scoring two sets under the current model ranks a
// deployed plan against a candidate replan, which is how the replanning
// monitor decides a migration is worth its traffic.
func Quality(m LatencyModel, s *Set) time.Duration {
	if s == nil || len(s.Trees) == 0 {
		return 0
	}
	var total time.Duration
	var paths int
	for _, t := range s.Trees {
		for _, d := range LatencyToRoot(t, m) {
			total += d
			paths++
		}
	}
	if paths == 0 {
		return 0
	}
	return total / time.Duration(paths)
}

// Percentile returns the q'th percentile (0..100) of the given durations.
func Percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
