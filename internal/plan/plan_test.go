package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
)

// gridCoords places n peers on a 2-D grid of clustered sites.
func gridCoords(rng *rand.Rand, n, sites int) []cluster.Point {
	out := make([]cluster.Point, n)
	for i := range out {
		site := i % sites
		out[i] = cluster.Point{
			float64(site%8)*100 + rng.NormFloat64()*2,
			float64(site/8)*100 + rng.NormFloat64()*2,
		}
	}
	return out
}

func TestBuildPrimaryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coords := gridCoords(rng, 200, 16)
	tr := BuildPrimary(coords, 0, 8, rng)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root != 0 {
		t.Fatalf("root = %d", tr.Root)
	}
}

func TestBuildPrimaryBranchingRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	coords := gridCoords(rng, 300, 20)
	tr := BuildPrimary(coords, 5, 4, rng)
	for p, ch := range tr.Children {
		if len(ch) > 4 {
			t.Fatalf("peer %d has %d children, bf 4", p, len(ch))
		}
	}
}

func TestBuildPrimaryClustersNetworkAware(t *testing.T) {
	// Peers at two far-apart sites: the tree should rarely make a peer's
	// parent a peer from the other site, except near the root.
	rng := rand.New(rand.NewSource(3))
	n := 128
	coords := make([]cluster.Point, n)
	for i := range coords {
		base := 0.0
		if i >= n/2 {
			base = 1000
		}
		coords[i] = cluster.Point{base + rng.NormFloat64(), rng.NormFloat64()}
	}
	tr := BuildPrimary(coords, 0, 8, rng)
	cross := 0
	for p := 0; p < n; p++ {
		pa := tr.Parent[p]
		if pa < 0 {
			continue
		}
		if (p >= n/2) != (pa >= n/2) {
			cross++
		}
	}
	if cross > 10 {
		t.Fatalf("%d cross-site edges; clustering not network aware", cross)
	}
}

func TestDeriveSiblingValidAndRootPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	coords := gridCoords(rng, 150, 12)
	primary := BuildPrimary(coords, 7, 4, rng)
	for i := 0; i < 5; i++ {
		sib := DeriveSibling(primary, rng)
		if err := sib.Validate(); err != nil {
			t.Fatal(err)
		}
		if sib.Root != 7 {
			t.Fatalf("sibling root moved to %d", sib.Root)
		}
	}
}

func TestSiblingCreatesPathDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coords := gridCoords(rng, 200, 16)
	primary := BuildPrimary(coords, 0, 4, rng)
	sib := DeriveSibling(primary, rng)
	// A substantial fraction of peers must have a different parent in the
	// sibling; and some primary leaves must now be interior.
	moved := 0
	for p := range primary.Parent {
		if primary.Parent[p] != sib.Parent[p] {
			moved++
		}
	}
	if moved < len(primary.Parent)/4 {
		t.Fatalf("only %d/%d parents changed", moved, len(primary.Parent))
	}
	promoted := 0
	for p := range primary.Children {
		if len(primary.Children[p]) == 0 && len(sib.Children[p]) > 0 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no leaves percolated into the interior")
	}
}

func TestBuildRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := BuildRandom(100, 3, 32, rng)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root != 3 {
		t.Fatalf("root = %d", tr.Root)
	}
	// Complete 32-ary tree of 100 nodes has height 2.
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2", tr.Height())
	}
}

func TestBuildSetSharedRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coords := gridCoords(rng, 120, 10)
	s := Build(coords, 11, 16, 4, rng)
	if s.D() != 4 {
		t.Fatalf("D = %d", s.D())
	}
	for i, tr := range s.Trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if tr.Root != 11 {
			t.Fatalf("tree %d rooted at %d", i, tr.Root)
		}
	}
	pars := s.Parents(11)
	for _, pa := range pars {
		if pa != -1 {
			t.Fatalf("root has parent %d in some tree", pa)
		}
	}
}

func TestUniqueChildrenSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	coords := gridCoords(rng, 64, 8)
	// Two queries planned on the same coordinates produce similar primary
	// trees, so unique children should grow sub-linearly (§7.2.1).
	var sets []*Set
	for q := 0; q < 8; q++ {
		sets = append(sets, Build(coords, q%4, 16, 1, rng))
	}
	one := UniqueChildren(sets[:1])
	all := UniqueChildren(sets)
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(all) >= 8*sum(one) {
		t.Fatalf("no sharing: 1 query %d pairs, 8 queries %d", sum(one), sum(all))
	}
	nbr := UniqueNeighbors(sets)
	if len(nbr) != 64 {
		t.Fatalf("neighbors length %d", len(nbr))
	}
}

func TestLatencyToRoot(t *testing.T) {
	// Chain 0 <- 1 <- 2 with unit latencies.
	tr := newTreeFromParents(0, 2, []int{-1, 0, 1})
	lat := LatencyToRoot(tr, LatencyFunc(func(a, b int) time.Duration { return time.Millisecond }))
	if lat[0] != 0 || lat[1] != time.Millisecond || lat[2] != 2*time.Millisecond {
		t.Fatalf("latencies = %v", lat)
	}
}

func TestPlannedBeatsRandomOnClusteredTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 179
	coords := gridCoords(rng, n, 16)
	oneWay := func(a, b int) time.Duration {
		d := 0.0
		for k := range coords[a] {
			diff := coords[a][k] - coords[b][k]
			d += diff * diff
		}
		return time.Duration(d) * time.Microsecond // squared distance as latency proxy
	}
	var planned, random time.Duration
	for trial := 0; trial < 5; trial++ {
		pt := BuildPrimary(coords, 0, 8, rng)
		rt := BuildRandom(n, 0, 8, rng)
		planned += Percentile(LatencyToRoot(pt, LatencyFunc(oneWay)), 90)
		random += Percentile(LatencyToRoot(rt, LatencyFunc(oneWay)), 90)
	}
	if planned >= random {
		t.Fatalf("planned 90th pct (%v) not better than random (%v)", planned/5, random/5)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	if got := Percentile(ds, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(ds, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(ds, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

// Property: every planner output is a valid tree over all peers, for
// arbitrary sizes, roots, and branching factors.
func TestPropertyPlannersProduceValidTrees(t *testing.T) {
	f := func(seed int64, nRaw, rootRaw, bfRaw uint8) bool {
		n := 2 + int(nRaw)%150
		root := int(rootRaw) % n
		bf := 2 + int(bfRaw)%15
		rng := rand.New(rand.NewSource(seed))
		coords := gridCoords(rng, n, 1+n/10)
		primary := BuildPrimary(coords, root, bf, rng)
		if primary.Validate() != nil {
			return false
		}
		sib := DeriveSibling(primary, rng)
		if sib.Validate() != nil || sib.Root != root {
			return false
		}
		rt := BuildRandom(n, root, bf, rng)
		return rt.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// CoordModel prices a pair by coordinate distance in milliseconds, the
// planner's latency view when coordinates are gossiped instead of measured.
func TestCoordModelLatency(t *testing.T) {
	m := CoordModel{Coords: []cluster.Point{{0, 0}, {3, 4}}}
	if got := m.Latency(0, 1); got != 5*time.Millisecond {
		t.Fatalf("Latency = %v, want 5ms", got)
	}
	if got := m.Latency(1, 0); got != 5*time.Millisecond {
		t.Fatalf("Latency not symmetric: %v", got)
	}
	if got := m.Latency(0, 7); got != 0 {
		t.Fatalf("out-of-range pair = %v, want 0", got)
	}
	lat := LatencyToRoot(newTreeFromParents(0, 2, []int{-1, 0}), m)
	if lat[1] != 5*time.Millisecond {
		t.Fatalf("LatencyToRoot over CoordModel = %v", lat)
	}
}

// A height-aware CoordModel adds both endpoints' heights (the trailing
// component) to the vector distance — the Vivaldi §5.4 path model.
func TestCoordModelHeight(t *testing.T) {
	m := CoordModel{Coords: []cluster.Point{{0, 0, 2}, {3, 4, 7}}, Height: true}
	if got := m.Latency(0, 1); got != 14*time.Millisecond {
		t.Fatalf("height Latency = %v, want 14ms (5 + 2 + 7)", got)
	}
	flat := CoordModel{Coords: []cluster.Point{{0, 0, 2}, {3, 4, 7}}}
	if got := flat.Latency(0, 1); got == 14*time.Millisecond {
		t.Fatal("flat model applied heights")
	}
}

// Quality is the planner's drift metric: the mean peer-to-root overlay
// latency across the set's trees. A star rooted at a well-placed peer must
// score better than a chain under the same model, and the same set must
// score worse under a model whose latencies have inflated — the signal the
// replanning monitor watches.
func TestQualityScoresPlans(t *testing.T) {
	// 4 peers on a line at 0, 1, 2, 3 (ms).
	coords := []cluster.Point{{0}, {1}, {2}, {3}}
	m := CoordModel{Coords: coords}
	star := &Set{Trees: []*Tree{newTreeFromParents(0, 3, []int{-1, 0, 0, 0})}}
	// A detouring tree: the near peers route through the far end first.
	detour := &Set{Trees: []*Tree{newTreeFromParents(0, 2, []int{-1, 3, 3, 0})}}
	qs, qc := Quality(m, star), Quality(m, detour)
	if qs <= 0 || qc <= 0 {
		t.Fatalf("quality must be positive: star %v detour %v", qs, qc)
	}
	if qs >= qc {
		t.Fatalf("star %v should beat detour %v", qs, qc)
	}
	// Inflate one pair's latency tenfold: the same plan scores worse.
	drifted := CoordModel{Coords: []cluster.Point{{0}, {10}, {2}, {3}}}
	if Quality(drifted, star) <= qs {
		t.Fatal("drifted model did not degrade the score")
	}
	if Quality(m, nil) != 0 || Quality(m, &Set{}) != 0 {
		t.Fatal("empty set must score 0")
	}
}
