package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Seed: 42, Quick: true} }

// cell parses a table cell as float.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestFigure1Shape(t *testing.T) {
	tab := Figure1(quick())
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At 0% failures everything is 100.
	for c := 1; c < len(tab.Columns); c++ {
		if cell(t, tab, 0, c) != 100 {
			t.Fatalf("col %d not 100 at zero failures", c)
		}
	}
	// At 40%: dynamic D=4 >> mirroring D=2 > striping ~ single.
	last := len(tab.Rows) - 1
	single := cell(t, tab, last, 2)
	striping := cell(t, tab, last, 3)
	mir2 := cell(t, tab, last, 4)
	dyn4 := cell(t, tab, last, 7)
	if !(dyn4 > mir2 && mir2 > striping) {
		t.Fatalf("ordering broken: dyn4 %.1f mir2 %.1f striping %.1f", dyn4, mir2, striping)
	}
	if dyn4 < 75 {
		t.Fatalf("dynamic D=4 at 40%% = %.1f, want high", dyn4)
	}
	if diff := striping - single; diff < -6 || diff > 6 {
		t.Fatalf("striping %.1f should track single tree %.1f", striping, single)
	}
}

func TestFigure9And10Shape(t *testing.T) {
	f9 := Figure9(quick())
	f10 := Figure10(quick())
	// Columns: scale, syncless, timestamp, streambase.
	top, bottom := 0, len(f9.Rows)-1
	syncTop, syncBot := cell(t, f9, top, 1), cell(t, f9, bottom, 1)
	tsTop, tsBot := cell(t, f9, top, 2), cell(t, f9, bottom, 2)
	if syncBot < 80 {
		t.Fatalf("syncless true completeness at scale 2 = %.1f, want >= 80", syncBot)
	}
	if syncBot < syncTop-15 {
		t.Fatalf("syncless degraded with scale: %.1f -> %.1f", syncTop, syncBot)
	}
	if tsBot > syncBot-10 {
		t.Fatalf("timestamp (%.1f) should be well below syncless (%.1f) at scale 2", tsBot, syncBot)
	}
	if tsTop < 90 {
		t.Fatalf("timestamp at scale 0 = %.1f, want accurate", tsTop)
	}
	// Latency: syncless roughly constant; timestamp grows with scale.
	sLatTop, sLatBot := cell(t, f10, top, 1), cell(t, f10, bottom, 1)
	tLatBot := cell(t, f10, bottom, 2)
	if sLatBot > 3*sLatTop+2 {
		t.Fatalf("syncless latency not constant: %.2f -> %.2f", sLatTop, sLatBot)
	}
	if tLatBot < 3*sLatBot {
		t.Fatalf("timestamp latency at scale 2 (%.2f) should dwarf syncless (%.2f)", tLatBot, sLatBot)
	}
}

func TestFigure11Shape(t *testing.T) {
	tab := Figure11(quick())
	// With no failures, install completes fast (paper: <10s for 680).
	for i, row := range tab.Rows {
		ts, _ := strconv.Atoi(row[0])
		if ts >= 10 {
			if v := cell(t, tab, i, 1); v < 99 {
				t.Fatalf("no-failure coverage %.1f%% at t=%d", v, ts)
			}
			break
		}
	}
	last := len(tab.Rows) - 1
	// After reconnect + reconciliation, every arm converges to ~100%.
	for c := 1; c < len(tab.Columns); c++ {
		if v := cell(t, tab, last, c); v < 95 {
			t.Fatalf("column %d final coverage %.1f%%", c, v)
		}
	}
	// Before reconnect, 40% down caps coverage near 60%.
	for i, row := range tab.Rows {
		if row[0] == "25" {
			v := cell(t, tab, i, 5)
			if v > 62 {
				t.Fatalf("coverage %.1f%% with 40%% down", v)
			}
			if v < 40 {
				t.Fatalf("reconciliation achieved only %.1f%% with 40%% down (paper: 54.5%%)", v)
			}
		}
		_ = i
	}
}

func TestFigure12Shape(t *testing.T) {
	tab := Figure12(quick())
	// Columns: fail%, optimal, 1 tree, 2 trees, 4 trees (quick mode).
	for _, row := range tab.Rows {
		if row[0] == "0" {
			for c := 2; c < 5; c++ {
				v, _ := strconv.ParseFloat(row[c], 64)
				if v < 95 {
					t.Fatalf("no-failure completeness %.1f in col %d", v, c)
				}
			}
		}
		if row[0] == "40" {
			one, _ := strconv.ParseFloat(row[2], 64)
			four, _ := strconv.ParseFloat(row[4], 64)
			if four < one+10 {
				t.Fatalf("4 trees (%.1f) should beat 1 tree (%.1f) at 40%% failures", four, one)
			}
			if four < 80 {
				t.Fatalf("4 trees at 40%% = %.1f, want >= 80 (paper: 94)", four)
			}
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	tab := Figure13(quick())
	last := len(tab.Rows) - 1
	n := cell(t, tab, last, 1)
	one := cell(t, tab, last, 2)
	two := cell(t, tab, last, 3)
	four := cell(t, tab, last, 4)
	if !(one < two && two < four) {
		t.Fatalf("children must grow with trees: %v %v %v", one, two, four)
	}
	if four >= n {
		t.Fatalf("sharing broken: 4-tree children %.1f >= N %.0f", four, n)
	}
	// Paper: 2 trees ~ doubles 1 tree; 4 trees ~ +50% over 2 trees.
	if ratio := four / two; ratio > 2.2 {
		t.Fatalf("4 trees / 2 trees = %.2f, want sub-linear (~1.5)", ratio)
	}
}

func TestFigure14Shape(t *testing.T) {
	tab := Figure14(quick())
	if len(tab.Rows) < 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Path length ~ tree height early on; load positive.
	foundLoad := false
	for i := range tab.Rows {
		if cell(t, tab, i, 4) > 0 {
			foundLoad = true
		}
	}
	if !foundLoad {
		t.Fatal("no network load recorded")
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "without in-network aggregation") {
			return
		}
	}
	t.Fatal("missing no-aggregation note")
}

func TestFigure15Shape(t *testing.T) {
	tab := Figure15(quick())
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Final completeness stays high relative to live nodes under churn.
	last := len(tab.Rows) - 1
	if v := cell(t, tab, last, 2); v < 75 {
		t.Fatalf("completeness under churn = %.1f", v)
	}
}

func TestFigure16Shape(t *testing.T) {
	tab := Figure16(quick())
	over := 0.0
	for i := range tab.Rows {
		if v := cell(t, tab, i, 2); v > over {
			over = v
		}
	}
	if over <= 100 {
		t.Fatalf("SDIMS never over-counted (max %.1f%%); churn should push past 100%%", over)
	}
}

func TestFigure17Shape(t *testing.T) {
	tab := Figure17(quick())
	for i := range tab.Rows {
		bf, _ := strconv.Atoi(tab.Rows[i][0])
		rnd := cell(t, tab, i, 1)
		planned := cell(t, tab, i, 2)
		derived := cell(t, tab, i, 3)
		if planned >= rnd {
			t.Fatalf("bf %s: planned (%.1f) not better than random (%.1f)", tab.Rows[i][0], planned, rnd)
		}
		// At large branching factors trees are nearly flat and all
		// schemes converge; require the sibling benefit only while the
		// tree has depth.
		if bf <= 8 && derived >= rnd {
			t.Fatalf("bf %s: derived (%.1f) lost all planning benefit (random %.1f)", tab.Rows[i][0], derived, rnd)
		}
		if derived > rnd*1.1 {
			t.Fatalf("bf %s: derived (%.1f) worse than random (%.1f)", tab.Rows[i][0], derived, rnd)
		}
	}
}

func TestFigure18Shape(t *testing.T) {
	tab := Figure18(quick())
	foundErr, foundSaving := false, false
	for _, n := range tab.Notes {
		if strings.Contains(n, "mean location error") {
			foundErr = true
			var e float64
			if _, err := fmtSscanf(n, &e); err == nil && e > 30 {
				t.Fatalf("location error %.1f m too large", e)
			}
		}
		if strings.Contains(n, "reduction") {
			foundSaving = true
		}
	}
	if !foundErr || !foundSaving {
		t.Fatalf("notes missing: %v", tab.Notes)
	}
}

// fmtSscanf extracts the first float from a note.
func fmtSscanf(s string, out *float64) (int, error) {
	i := strings.IndexAny(s, "0123456789")
	if i < 0 {
		return 0, strings.NewReader("").UnreadByte()
	}
	j := i
	for j < len(s) && (s[j] == '.' || (s[j] >= '0' && s[j] <= '9')) {
		j++
	}
	v, err := strconv.ParseFloat(s[i:j], 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

func TestRegistry(t *testing.T) {
	if len(All) != 11 {
		t.Fatalf("registry has %d figures", len(All))
	}
	for _, e := range All {
		if _, err := Find(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Find("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("n %d", 1)
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "note: n 1") {
		t.Fatalf("print output: %q", out)
	}
}
