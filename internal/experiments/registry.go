package experiments

import "fmt"

// Runner regenerates one of the paper's figures.
type Runner func(Options) *Table

// All maps figure identifiers to their runners, in paper order.
var All = []struct {
	ID   string
	Desc string
	Run  Runner
}{
	{"fig1", "completeness vs link failures: mirroring / striping / dynamic striping", Figure1},
	{"fig9", "true completeness vs clock skew scale (syncless / timestamp / StreamBase)", Figure9},
	{"fig10", "result latency vs clock skew scale", Figure10},
	{"fig11", "query installation rate and coverage with inconsistent node sets", Figure11},
	{"fig12", "completeness vs failed nodes for tree set sizes 1-5", Figure12},
	{"fig13", "unique heartbeat children per node vs number of queries", Figure13},
	{"fig14", "rolling failures time series: completeness, path length, load", Figure14},
	{"fig15", "accuracy under churn", Figure15},
	{"fig16", "SDIMS baseline: over-counting and bandwidth under failures", Figure16},
	{"fig17", "planner quality: 90th-percentile latency to root vs branching factor", Figure17},
	{"fig18", "Wi-Fi location service: select -> topk -> trilateration", Figure18},
}

// Find returns the runner for an identifier.
func Find(id string) (Runner, error) {
	for _, e := range All {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}
