// Package experiments regenerates every data-bearing table and figure of
// the paper's evaluation (§2.1 Figure 1 and §7 Figures 9-18). Each runner
// returns a Table whose rows mirror the series the paper plots;
// EXPERIMENTS.md records paper-vs-measured values.
//
// All runners accept Options. Quick mode shrinks node counts, durations
// and trial counts so the whole suite runs in seconds (used by unit tests
// and the default `go test -bench` invocation); full mode uses the paper's
// parameters.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/mortar"
	"repro/internal/netem"
	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
	"repro/internal/vclock"
	"repro/internal/vivaldi"
)

// Options tunes experiment scale.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Quick shrinks the experiment to seconds of wall-clock time.
	Quick bool
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries headline observations (e.g. measured ratios).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a headline note.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	printRow(dashes(widths))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// testbed bundles an emulated federation plus Vivaldi coordinates for
// planning.
type testbed struct {
	Sim    *eventsim.Sim
	Net    *netem.Network
	Fab    *mortar.Fabric
	Coords []cluster.Point
	rng    *rand.Rand
}

// newTestbed builds the paper topology with the given host count, runs
// Vivaldi for at least ten rounds over the emulated latencies (§7.3), and
// returns a ready fabric.
func newTestbed(seed int64, hosts int, clocks []vclock.Clock, cfg mortar.Config) *testbed {
	sim := eventsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	topo := netem.GenerateTransitStub(netem.PaperTopology(hosts), rng)
	net := netem.New(sim, topo)
	fab, err := mortar.NewFabric(simrt.New(net), clocks, cfg)
	if err != nil {
		panic(err)
	}
	tb := &testbed{Sim: sim, Net: net, Fab: fab, rng: rng}
	tb.Coords = vivaldiCoords(net, rng)
	return tb
}

// vivaldiCoords embeds the topology's hosts with Vivaldi (the paper runs
// "at least ten rounds before interconnecting operators"; we run a few
// more to keep the embedding error well below the inter-site latency
// spread the planner exploits).
func vivaldiCoords(net *netem.Network, rng *rand.Rand) []cluster.Point {
	hosts := net.Topology().Hosts()
	sys := vivaldi.NewSystem(len(hosts), vivaldi.DefaultConfig(), rng)
	sys.Run(30, 12, func(i, j int) time.Duration {
		return net.Latency(hosts[i], hosts[j])
	})
	out := make([]cluster.Point, len(hosts))
	for i, c := range sys.Coordinates() {
		out[i] = cluster.Point(c)
	}
	return out
}

// sumQuery installs the §7.2 microbenchmark: a sum with a one-second
// range-equals-slide window counting peers, plus 1/s sensors.
func (tb *testbed) sumQuery(name string, bf, d int) *mortar.QueryDef {
	meta := mortar.QueryMeta{
		Name:      name,
		Seq:       1,
		OpName:    "sum",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: tb.Sim.Now(),
	}
	def, err := tb.Fab.Compile(meta, nil, tb.Coords, bf, d)
	if err != nil {
		panic(err)
	}
	if err := tb.Fab.Install(0, def); err != nil {
		panic(err)
	}
	return def
}

// startSensors drives one value-1 tuple per second per peer, phase
// jittered.
func (tb *testbed) startSensors() {
	for i := 0; i < tb.Fab.NumPeers(); i++ {
		i := i
		phase := time.Duration(tb.rng.Int63n(int64(time.Second)))
		tb.Sim.After(phase, func() {
			tb.Sim.Every(time.Second, func() {
				tb.Fab.Inject(i, tuple.Raw{Vals: []float64{1}})
			})
		})
	}
}

// randomCoords returns uniform planner coordinates for planner-only
// studies that do not need a network.
func randomCoords(n int, rng *rand.Rand) []cluster.Point {
	out := make([]cluster.Point, n)
	for i := range out {
		out[i] = cluster.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	return out
}

// failRandom disconnects frac of the peers (never the root) and returns
// them.
func (tb *testbed) failRandom(frac float64) []int {
	n := tb.Fab.NumPeers()
	want := int(frac * float64(n))
	var down []int
	for len(down) < want {
		p := 1 + tb.rng.Intn(n-1)
		if !tb.Fab.Down(p) {
			tb.Fab.SetDown(p, true)
			down = append(down, p)
		}
	}
	return down
}
