package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/mortar"
	"repro/internal/plan"
)

// Figure11 measures query installation rate and coverage while a fraction
// of the node set is unreachable (§7.1): install across all peers with 16
// chunks, reconnect the failed peers after 30 seconds, and let pair-wise
// reconciliation (every third heartbeat) finish the job.
func Figure11(opt Options) *Table {
	hosts := 680
	if opt.Quick {
		hosts = 200
	}
	fails := []int{0, 10, 20, 30, 40}
	samples := []int{2, 5, 10, 15, 20, 25, 30, 35, 40, 50, 60}
	series := make(map[int][]float64)
	var cov40at29 float64
	for _, k := range fails {
		tb := newTestbed(opt.Seed+int64(k), hosts, nil, mortar.DefaultConfig())
		tb.failRandom(float64(k) / 100)
		tb.sumQuery("q", 16, 4)
		var vals []float64
		for _, s := range samples {
			tb.Sim.RunUntil(time.Duration(s) * time.Second)
			if s <= 30 {
				// reconnect everything at the 30 second mark (paper setup)
				if s == 30 {
					for p := 0; p < hosts; p++ {
						tb.Fab.SetDown(p, false)
					}
				}
			}
			cov := 100 * float64(tb.Fab.InstalledCount("q")) / float64(hosts)
			vals = append(vals, cov)
			if k == 40 && s == 25 {
				cov40at29 = cov
			}
		}
		series[k] = vals
	}
	t := &Table{
		Title:   "Figure 11: % of nodes installed vs time (reconnect at 30s)",
		Columns: []string{"t(s)", "no failures", "10% failed", "20% failed", "30% failed", "40% failed"},
	}
	for i, s := range samples {
		row := []string{fmt.Sprintf("%d", s)}
		for _, k := range fails {
			row = append(row, f1(series[k][i]))
		}
		t.AddRow(row...)
	}
	t.Note("coverage with 40%% down before reconnect: %.1f%% of all nodes (paper: 54.5%%)", cov40at29)
	return t
}

// Figure12 measures steady-state completeness as a function of the
// percentage of disconnected nodes, for tree set sizes 1-5 (§7.2.1).
func Figure12(opt Options) *Table {
	hosts := 680
	treeSets := []int{1, 2, 3, 4, 5}
	fails := []int{0, 10, 20, 30, 40, 60, 80}
	warm, run := 20*time.Second, 50*time.Second
	if opt.Quick {
		hosts = 170
		treeSets = []int{1, 2, 4}
		fails = []int{0, 20, 40}
	}
	results := map[[2]int]float64{}
	var d4at40 float64
	for _, d := range treeSets {
		for _, k := range fails {
			tb := newTestbed(opt.Seed+int64(d*100+k), hosts, nil, mortar.DefaultConfig())
			tb.sumQuery("q", 16, d)
			tb.startSensors()
			var lastCounts []float64
			tb.Fab.OnResult = func(r mortar.Result) {
				if tb.Sim.Now() > warm+run/2 {
					lastCounts = append(lastCounts, float64(r.Count))
				}
			}
			tb.Sim.RunFor(warm)
			tb.failRandom(float64(k) / 100)
			tb.Sim.RunFor(run)
			live := tb.Fab.LiveCount()
			results[[2]int{d, k}] = metrics.Completeness(int(metrics.Mean(lastCounts)), live)
			if d == 4 && k == 40 {
				d4at40 = results[[2]int{d, k}]
			}
		}
	}
	t := &Table{
		Title:   "Figure 12: completeness (% of live nodes) vs % failed nodes",
		Columns: []string{"fail%", "optimal"},
	}
	for _, d := range treeSets {
		t.Columns = append(t.Columns, fmt.Sprintf("%d tree(s)", d))
	}
	for _, k := range fails {
		row := []string{fmt.Sprintf("%d", k), "100.0"}
		for _, d := range treeSets {
			row = append(row, f1(results[[2]int{d, k}]))
		}
		t.AddRow(row...)
	}
	t.Note("4 trees at 40%% failures: %.1f%% of remaining live nodes (paper: 94%%)", d4at40)
	return t
}

// Figure13 measures heartbeat overhead scaling: the number of unique
// children a node must heartbeat as queries (each sourcing all peers) are
// added, for 1, 2 and 4 trees per query (§7.2.1). Heartbeats are shared
// across queries and sibling trees, so growth is sub-linear.
func Figure13(opt Options) *Table {
	sizes := []int{25, 50, 100, 150, 200}
	if opt.Quick {
		sizes = []int{10, 25, 50}
	}
	t := &Table{
		Title:   "Figure 13: mean unique heartbeat children per node vs #queries (= nodes per query)",
		Columns: []string{"queries", "N (y=x)", "1 tree", "2 trees", "4 trees"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, n := range sizes {
		coords := randomCoords(n, rng)
		row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", n)}
		for _, d := range []int{1, 2, 4} {
			var sets []*plan.Set
			for q := 0; q < n; q++ {
				sets = append(sets, plan.Build(coords, q, 16, d, rng))
			}
			kids := plan.UniqueChildren(sets)
			var sum float64
			for _, k := range kids {
				sum += float64(k)
			}
			row = append(row, f1(sum/float64(n)))
		}
		t.AddRow(row...)
	}
	t.Note("adding a sibling (2 trees) roughly doubles a single tree; 4 trees adds ~50%% over 2 (paper §7.2.1)")
	return t
}
