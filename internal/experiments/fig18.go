package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/mortar"
	"repro/internal/netem"
	"repro/internal/ops"
	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
	"repro/internal/wifi"
	"repro/internal/wire"
)

// Figure18 reproduces the Wi-Fi location service (§7.4): 188 emulated
// sniffers on a star topology (1 ms links) replay frames from a walking
// device; a select operator filters the target MAC at each sniffer, a
// top-3-RSSI query aggregates in-network, and trilateration of the topK
// stream recovers the walk. The paper reports the recovered L-shaped path
// and a 14% network-load reduction versus a query whose topK cannot
// aggregate (bf = 188).
func Figure18(opt Options) *Table {
	const target = "aa:bb:cc:dd:ee:ff"
	sniffers, dur := 188, 180*time.Second
	if opt.Quick {
		sniffers, dur = 80, 60*time.Second
	}

	run := func(bf int) (errs []float64, loadBytes, rootLink int64, trail []string) {
		sim := eventsim.New(opt.Seed)
		rng := rand.New(rand.NewSource(opt.Seed))
		topo := netem.GenerateStar(sniffers, time.Millisecond, 100e6)
		net := netem.New(sim, topo)
		fab, err := mortar.NewFabric(simrt.New(net), nil, mortar.DefaultConfig())
		if err != nil {
			panic(err)
		}
		b := wifi.NewBuilding(sniffers, 100, 60, rng)
		model := wifi.DefaultRSSI()
		walk := wifi.LWalk(b, 1.5)

		meta := mortar.QueryMeta{
			Name:      "loud",
			Seq:       1,
			OpName:    "topk",
			OpArgs:    []string{"3", "2"}, // top 3 by field 2 (RSSI)
			Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
			FilterKey: target,
			Root:      0,
			IssuedSim: sim.Now(),
		}
		// On a star the benefit of planning is path diversity, not
		// latency: plan with uniform coordinates.
		def, err := fab.Compile(meta, nil, randomCoords(sniffers, rng), bf, 2)
		if err != nil {
			panic(err)
		}
		if err := fab.Install(0, def); err != nil {
			panic(err)
		}

		fab.OnResult = func(r mortar.Result) {
			if r.Value == nil {
				return
			}
			entries := r.Value.([]wire.ScoredEntry)
			pos, ok := ops.TrilatFromEntries(entries)
			if !ok {
				return
			}
			// Compare against where the walker was when the window's
			// frames were captured (one window back plus pipeline delay).
			tw := sim.Now() - r.Age
			tx, ty := walk.Position(tw.Seconds())
			errs = append(errs, math.Hypot(pos.X-tx, pos.Y-ty))
			if int(sim.Now()/time.Second)%20 == 0 {
				trail = append(trail, fmt.Sprintf("t=%3.0fs est=(%5.1f,%5.1f) true=(%5.1f,%5.1f)",
					sim.Now().Seconds(), pos.X, pos.Y, tx, ty))
			}
		}

		// The tracked device downloads a file: 10 frames per second. Other
		// devices chatter in the background; the select stage must drop
		// them.
		sim.Every(100*time.Millisecond, func() {
			x, y := walk.Position(sim.Now().Seconds())
			for _, f := range b.Capture(x, y, model, rng) {
				s := b.Sniffers[f.Sniffer]
				fab.Inject(f.Sniffer, tuple.Raw{
					Key:    target,
					SubKey: fmt.Sprintf("s%d", f.Sniffer),
					Vals:   []float64{s.X, s.Y, f.RSSI},
				})
			}
		})
		sim.Every(200*time.Millisecond, func() {
			// Background MAC heard near a random corner.
			for _, f := range b.Capture(5, 5, model, rng) {
				s := b.Sniffers[f.Sniffer]
				fab.Inject(f.Sniffer, tuple.Raw{
					Key:    "11:22:33:44:55:66",
					SubKey: fmt.Sprintf("s%d", f.Sniffer),
					Vals:   []float64{s.X, s.Y, f.RSSI},
				})
			}
		})
		sim.RunUntil(dur)
		// The root peer is host 0; its access link is link 0 of the star.
		return errs, net.Accounting().TotalBytes(netem.ClassData),
			net.Accounting().LinkBytes(0), trail
	}

	errs, load16, root16, trail := run(16)
	_, loadFlat, rootFlat, _ := run(sniffers) // bf = #sniffers: topK cannot aggregate
	t := &Table{
		Title:   "Figure 18: Wi-Fi device tracking via select -> top-3 RSSI -> trilateration",
		Columns: []string{"sample"},
	}
	for _, s := range trail {
		t.AddRow(s)
	}
	t.Note("mean location error %.1f m over %d fixes (naive trilateration; the paper's scheme could not distinguish floors either)",
		metrics.Mean(errs), len(errs))
	rootSaving := 100 * (1 - float64(root16)/float64(rootFlat))
	totalRatio := float64(load16) / float64(loadFlat)
	t.Note("root access-link load with in-network topK vs bf=%d: %.1f%% reduction (paper: 14%% total); total load ratio %.2fx — on our pure star the saving concentrates on the root's link",
		sniffers, rootSaving, totalRatio)
	return t
}
