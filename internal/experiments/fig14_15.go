package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/mortar"
	"repro/internal/netem"
	"repro/internal/tuple"
)

// rollingSeries runs a sum query and drives a failure schedule, recording
// per-second completeness, live fraction, tuple path length, and total
// network load.
type rollingSeries struct {
	tb       *testbed
	compl    *metrics.Series
	hops     *metrics.Series
	lat      *metrics.Series
	liveAt   func(t time.Duration) float64
	liveHist map[int64]int
}

func startRolling(seed int64, hosts, d int) *rollingSeries {
	tb := newTestbed(seed, hosts, nil, mortar.DefaultConfig())
	rs := &rollingSeries{
		tb:       tb,
		compl:    metrics.NewSeries(time.Second),
		hops:     metrics.NewSeries(time.Second),
		lat:      metrics.NewSeries(time.Second),
		liveHist: map[int64]int{},
	}
	def := tb.sumQuery("q", 16, d)
	tb.startSensors()
	issued := def.Meta.IssuedSim
	tb.Fab.OnResult = func(r mortar.Result) {
		// Normalize by the nodes that were live when the window's data was
		// produced, not when the (delayed) result arrived — otherwise a
		// failure instant reads as >100% completeness.
		due := issued + time.Duration(r.WindowIndex+1)*time.Second
		live := tb.Fab.NumPeers()
		if v, ok := rs.liveHist[int64(due/time.Second)]; ok {
			live = v
		}
		rs.compl.Add(r.At, metrics.Completeness(r.Count, live))
		rs.hops.Add(r.At, float64(r.Hops))
		rs.lat.Add(r.At, (r.At - due).Seconds())
	}
	tb.Sim.Every(time.Second, func() {
		rs.liveHist[int64(tb.Sim.Now()/time.Second)] = tb.Fab.LiveCount()
	})
	return rs
}

func (rs *rollingSeries) livePct(t time.Duration) float64 {
	n := rs.tb.Fab.NumPeers()
	if v, ok := rs.liveHist[int64(t/time.Second)]; ok {
		return 100 * float64(v) / float64(n)
	}
	return 100
}

// Figure14 reproduces the rolling-failures time series (§7.2.2):
// disconnect 10, 20, 30, then 40% of the nodes for 60 seconds each with
// recovery gaps, and track completeness, tuple path length, and total
// network load. The paper reports stable results ~7s after each failure,
// 4.5s average result latency, a no-failure path length equal to the tree
// height (4), and 12.5 Mbps steady-state load (3.4 Mbps heartbeats) —
// half the load of the same query without aggregation.
func Figure14(opt Options) *Table {
	hosts := 680
	levels := []int{10, 20, 30, 40}
	downFor, gap := 60*time.Second, 40*time.Second
	warm := 60 * time.Second
	if opt.Quick {
		hosts = 170
		levels = []int{20, 40}
		downFor, gap = 30*time.Second, 20*time.Second
		warm = 30 * time.Second
	}
	rs := startRolling(opt.Seed, hosts, 4)
	tb := rs.tb
	tb.Sim.RunFor(warm)
	for _, k := range levels {
		down := tb.failRandom(float64(k) / 100)
		tb.Sim.RunFor(downFor)
		for _, p := range down {
			tb.Fab.SetDown(p, false)
		}
		tb.Sim.RunFor(gap)
	}
	end := tb.Sim.Now()

	t := &Table{
		Title:   "Figure 14: rolling failures time series (10/20/30/40% down)",
		Columns: []string{"t(s)", "live%", "completeness%", "path len", "load Mbps"},
	}
	step := 10 * time.Second
	if opt.Quick {
		step = 5 * time.Second
	}
	acct := tb.Net.Accounting()
	for ts := step; ts < end; ts += step {
		c, _ := rs.compl.At(ts)
		h, _ := rs.hops.At(ts)
		t.AddRow(
			fmt.Sprintf("%.0f", ts.Seconds()),
			f1(rs.livePct(ts)),
			f1(c),
			f2(h),
			f2(acct.Mbps(ts)),
		)
	}
	steady := acct.MeanMbps(warm/2, warm)
	hb := acct.MeanMbps(warm/2, warm, netem.ClassControl)
	noAgg := noAggregationLoad(opt, hosts)
	t.Note("steady-state load %.2f Mbps, of which %.2f Mbps heartbeats (paper: 12.5 / 3.4 Mbps at 680 nodes)", steady, hb)
	t.Note("same query without in-network aggregation: %.2f Mbps (%.1fx; paper: ~2x)", noAgg, noAgg/steady)
	var lats []float64
	for ts := warm / 2; ts < end; ts += time.Second {
		if v, ok := rs.lat.At(ts); ok {
			lats = append(lats, v)
		}
	}
	t.Note("mean result latency %.1fs (paper: 4.5s)", metrics.Mean(lats))
	return t
}

// noAggregationLoad measures the same workload with a union operator,
// which collects every source tuple without reduction — the paper's
// comparison point for the value of in-network aggregation.
func noAggregationLoad(opt Options, hosts int) float64 {
	tb := newTestbed(opt.Seed+999, hosts, nil, mortar.DefaultConfig())
	meta := mortar.QueryMeta{
		Name:      "noagg",
		Seq:       1,
		OpName:    "union",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: time.Second, Slide: time.Second},
		Root:      0,
		IssuedSim: tb.Sim.Now(),
	}
	def, err := tb.Fab.Compile(meta, nil, tb.Coords, 16, 4)
	if err != nil {
		panic(err)
	}
	if err := tb.Fab.Install(0, def); err != nil {
		panic(err)
	}
	for i := 0; i < hosts; i++ {
		i := i
		phase := time.Duration(tb.rng.Int63n(int64(time.Second)))
		tb.Sim.After(phase, func() {
			tb.Sim.Every(time.Second, func() {
				tb.Fab.Inject(i, tuple.Raw{Key: fmt.Sprintf("n%d", i), Vals: []float64{1}})
			})
		})
	}
	dur := 40 * time.Second
	if opt.Quick {
		dur = 20 * time.Second
	}
	tb.Sim.RunFor(dur)
	return tb.Net.Accounting().MeanMbps(dur/2, dur)
}

// Figure15 reproduces the churn experiment (§7.2.2): 10% of nodes start
// disconnected; every 10 seconds, 5% reconnect and a fresh random 5% fail.
func Figure15(opt Options) *Table {
	hosts := 680
	dur := 90 * time.Second
	if opt.Quick {
		hosts = 170
		dur = 60 * time.Second
	}
	rs := startRolling(opt.Seed, hosts, 4)
	tb := rs.tb
	tb.Sim.RunFor(20 * time.Second)
	down := tb.failRandom(0.10)
	swap := hosts / 20 // 5%
	tk := tb.Sim.Every(10*time.Second, func() {
		for i := 0; i < swap && len(down) > 0; i++ {
			tb.Fab.SetDown(down[0], false)
			down = down[1:]
		}
		down = append(down, tb.failRandom(float64(swap)/float64(hosts))...)
	})
	tb.Sim.RunFor(dur)
	tk.Stop()
	end := tb.Sim.Now()

	t := &Table{
		Title:   "Figure 15: accuracy under 10% churn (5% swapped every 10s)",
		Columns: []string{"t(s)", "live%", "completeness%", "path len"},
	}
	for ts := 5 * time.Second; ts < end; ts += 5 * time.Second {
		c, _ := rs.compl.At(ts)
		h, _ := rs.hops.At(ts)
		t.AddRow(fmt.Sprintf("%.0f", ts.Seconds()), f1(rs.livePct(ts)), f1(c), f2(h))
	}
	var tail []float64
	for ts := end - 20*time.Second; ts < end; ts += time.Second {
		if v, ok := rs.compl.At(ts); ok {
			tail = append(tail, v)
		}
	}
	t.Note("mean completeness over final 20s: %.1f%% of live nodes (paper: reconnects all live nodes within each 10s round)", metrics.Mean(tail))
	return t
}
