package experiments

import (
	"math/rand"
	"strconv"
	"time"

	"repro/internal/central"
	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/mortar"
	"repro/internal/netem"
	"repro/internal/tuple"
	"repro/internal/vclock"
	"repro/internal/workload"
)

// clockMode selects the §5 comparison arm.
type clockMode int

const (
	modeSyncless clockMode = iota
	modeTimestamp
	modeStreamBase
)

const clockWindow = 5 * time.Second

// clockRun executes one arm of the Figures 9-10 experiment: hosts peers
// whose clocks follow the PlanetLab offset distribution scaled by `scale`,
// a 5-second window, and sensors emitting once per second. It returns mean
// true completeness (%), mean result latency (seconds), and mean tuple
// dispersion (windows) — the §5 metric syncless bounds "to a tight
// boundary around the correct window".
func clockRun(seed int64, hosts int, scale float64, mode clockMode, dur time.Duration) (float64, float64, float64) {
	rng := rand.New(rand.NewSource(seed))
	clocks := vclock.PlanetLab(scale).SamplePopulation(rng, hosts)
	clocks[0] = vclock.Perfect() // the measurement/root workstation is NTP-synced

	if mode == modeStreamBase {
		return streamBaseRun(seed, hosts, clocks, dur)
	}

	cfg := mortar.DefaultConfig()
	cfg.Syncless = mode == modeSyncless
	tb := newTestbed(seed, hosts, clocks, cfg)
	meta := mortar.QueryMeta{
		Name:      "truewin",
		Seq:       1,
		OpName:    "hist",
		Window:    tuple.WindowSpec{Kind: tuple.TimeWindow, Range: clockWindow, Slide: clockWindow},
		Root:      0,
		IssuedSim: tb.Sim.Now(),
	}
	def, err := tb.Fab.Compile(meta, nil, tb.Coords, 16, 4)
	if err != nil {
		panic(err)
	}
	if err := tb.Fab.Install(0, def); err != nil {
		panic(err)
	}

	var tcs, lats, disps []float64
	lastWin := int64(dur/clockWindow) - 2
	produced := float64(hosts) * clockWindow.Seconds() // tuples truly in each window
	tb.Fab.OnResult = func(r mortar.Result) {
		if r.WindowIndex < 3 || r.WindowIndex > lastWin || r.Value == nil {
			return
		}
		hist := r.Value.(map[string]float64)
		tcs = append(tcs, metrics.TrueCompleteness(hist, strconv.FormatInt(r.WindowIndex, 10), produced))
		due := meta.IssuedSim + time.Duration(r.WindowIndex+1)*clockWindow
		lats = append(lats, (r.At - due).Seconds())
		disps = append(disps, metrics.Dispersion(toInt64Hist(hist), r.WindowIndex))
	}

	gen := &workload.Periodic{
		Sim: tb.Sim, Period: time.Second, Value: 1,
		TrueWindowKey: clockWindow, Epoch: meta.IssuedSim,
	}
	gen.Start(hosts, func(peer int, raw tuple.Raw) { tb.Fab.Inject(peer, raw) }, tb.rng)

	tb.Sim.RunFor(dur + 30*time.Second) // drain the tail
	return metrics.Mean(tcs), metrics.Mean(lats), metrics.Mean(disps)
}

// toInt64Hist parses a ground-truth-window histogram's string keys.
func toInt64Hist(h map[string]float64) map[int64]float64 {
	out := make(map[int64]float64, len(h))
	for k, v := range h {
		if n, err := strconv.ParseInt(k, 10, 64); err == nil {
			out[n] = v
		}
	}
	return out
}

// streamBaseRun ships every raw tuple to a central node through a 5k-tuple
// BSort re-order buffer (§5's commercial comparison).
func streamBaseRun(seed int64, hosts int, clocks []vclock.Clock, dur time.Duration) (float64, float64, float64) {
	sim := eventsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	topo := netem.GenerateTransitStub(netem.PaperTopology(hosts), rng)
	net := netem.New(sim, topo)
	hostIDs := topo.Hosts()

	proc := central.New(clockWindow, 5000)
	net.Handle(hostIDs[0], func(from netem.NodeID, payload any, size int) {
		proc.Ingest(payload.(central.Tuple), sim.Now())
	})
	for i := 1; i < hosts; i++ {
		i := i
		phase := time.Duration(rng.Int63n(int64(time.Second)))
		sim.After(phase, func() {
			sim.Every(time.Second, func() {
				t := central.Tuple{
					SourceTS:   clocks[i].Reported(sim.Now()),
					TrueWindow: int64(sim.Now() / clockWindow),
					Value:      1,
				}
				net.Send(hostIDs[i], hostIDs[0], netem.ClassData, 40, t)
			})
		})
	}
	sim.RunUntil(dur)
	proc.Flush(sim.Now())

	lastWin := int64(dur/clockWindow) - 2
	produced := float64(hosts-1) * clockWindow.Seconds()
	var tcs, lats, disps []float64
	for _, w := range proc.Results() {
		if w.Window < 3 || w.Window > lastWin {
			continue
		}
		correct := float64(w.ByTrueWindow[w.Window])
		frac := 100 * correct / produced
		if frac > 100 {
			frac = 100
		}
		tcs = append(tcs, frac)
		due := time.Duration(w.Window+1) * clockWindow
		lat := (w.ClosedAt - due).Seconds()
		if lat < 0 {
			lat = 0
		}
		lats = append(lats, lat)
		dh := make(map[int64]float64, len(w.ByTrueWindow))
		for tw, c := range w.ByTrueWindow {
			dh[tw] = float64(c)
		}
		disps = append(disps, metrics.Dispersion(dh, w.Window))
	}
	// Windows that never materialized (all data misassigned) count as zero
	// completeness.
	for miss := int64(3) + int64(len(tcs)); miss <= lastWin && len(tcs) < int(lastWin-2); miss++ {
		tcs = append(tcs, 0)
	}
	return metrics.Mean(tcs), metrics.Mean(lats), metrics.Mean(disps)
}

// Figure9 sweeps the skew scale and reports true completeness for
// syncless, timestamp, and the centralized (StreamBase-like) processor.
func Figure9(opt Options) *Table {
	return clockTable(opt, "Figure 9: true completeness (%) vs skew scale, 5s window", true)
}

// Figure10 reports result latency for the same runs.
func Figure10(opt Options) *Table {
	return clockTable(opt, "Figure 10: result latency (sec) vs skew scale, 5s window", false)
}

func clockTable(opt Options, title string, completeness bool) *Table {
	hosts, dur := 439, 120*time.Second
	scales := []float64{0, 0.5, 1, 1.5, 2}
	if opt.Quick {
		hosts, dur = 120, 60*time.Second
		scales = []float64{0, 1, 2}
	}
	t := &Table{
		Title:   title,
		Columns: []string{"scale", "syncless", "timestamp", "streambase"},
	}
	var syncAt1, tsAt1, syncLatAt1, tsLatAt1 float64
	var syncDispAt1, tsDispAt1 float64
	for _, scale := range scales {
		row := []string{f2(scale)}
		for m, mode := range []clockMode{modeSyncless, modeTimestamp, modeStreamBase} {
			tc, lat, disp := clockRun(opt.Seed+int64(m), hosts, scale, mode, dur)
			if completeness {
				row = append(row, f1(tc))
			} else {
				row = append(row, f2(lat))
			}
			if scale == 1 {
				switch mode {
				case modeSyncless:
					syncAt1, syncLatAt1, syncDispAt1 = tc, lat, disp
				case modeTimestamp:
					tsAt1, tsLatAt1, tsDispAt1 = tc, lat, disp
				}
			}
		}
		t.AddRow(row...)
	}
	if completeness && syncAt1 > 0 {
		t.Note("syncless at scale 1: %.1f%% (paper: ~91%%); timestamp: %.1f%%", syncAt1, tsAt1)
		t.Note("tuple dispersion at scale 1: syncless %.2f windows (bounded, §5.1), timestamp %.2f", syncDispAt1, tsDispAt1)
	}
	if !completeness && syncLatAt1 > 0 {
		t.Note("latency ratio timestamp/syncless at scale 1: %.1fx (paper: ~8x)", tsLatAt1/syncLatAt1)
	}
	return t
}
