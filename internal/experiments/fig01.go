package experiments

import (
	"math/rand"

	"repro/internal/treesim"
)

// Figure1 reproduces the §2.1 motivating simulation: result completeness
// under uniformly random link failures for a single tree, static striping,
// mirroring (D=2 and D=10), and dynamic striping (D=2 and D=4). The paper
// uses random trees of 10k nodes with branching factor 32, averaging 400
// trials per point.
func Figure1(opt Options) *Table {
	nodes, trials := 10000, 400
	if opt.Quick {
		nodes, trials = 2000, 25
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	t := &Table{
		Title: "Figure 1: completeness (%) vs uniformly random link failures",
		Columns: []string{"fail%", "optimal", "single", "striping",
			"mirror D=2", "mirror D=10", "dynamic D=2", "dynamic D=4"},
	}
	configs := []struct {
		disc treesim.Discipline
		d    int
	}{
		{treesim.SingleTree, 1},
		{treesim.Striping, 4},
		{treesim.Mirroring, 2},
		{treesim.Mirroring, 10},
		{treesim.DynamicStriping, 2},
		{treesim.DynamicStriping, 4},
	}
	var dyn4At40 float64
	for _, failPct := range []int{0, 5, 10, 15, 20, 25, 30, 35, 40} {
		row := []string{f1(float64(failPct)), "100.0"}
		for _, c := range configs {
			p := treesim.Params{
				Nodes: nodes, BF: 32, D: c.d,
				LinkFail:   float64(failPct) / 100,
				Discipline: c.disc,
			}
			v := 100 * treesim.MeanCompleteness(p, trials, rng)
			row = append(row, f1(v))
			if c.disc == treesim.DynamicStriping && c.d == 4 && failPct == 40 {
				dyn4At40 = v
			}
		}
		t.AddRow(row...)
	}
	t.Note("dynamic striping D=4 at 40%% failures: %.1f%% (paper: ~94%% of remaining nodes)", dyn4At40)
	t.Note("mirroring D=10 costs 10x bandwidth (paper: 'an order of magnitude')")
	return t
}
