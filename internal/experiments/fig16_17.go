package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/eventsim"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/plan"
	"repro/internal/sdims"
)

// Figure16 runs the SDIMS baseline through the same rolling-failure
// schedule as Figure 14, but with 120-second down times (§7.2.3). The
// qualitative signatures the paper reports: completeness over-counts past
// 100% (approaching 180%) and stays inaccurate after recovery; bandwidth
// spikes with reactive recovery; steady-state load is ~5x Mortar's while
// probing five times less often.
func Figure16(opt Options) *Table {
	hosts := 680
	levels := []int{10, 20, 30, 40}
	downFor, gap := 120*time.Second, 60*time.Second
	warm := 120 * time.Second
	if opt.Quick {
		hosts = 170
		levels = []int{20, 40}
		downFor, gap = 60*time.Second, 30*time.Second
		warm = 60 * time.Second
	}
	sim := eventsim.New(opt.Seed)
	rng := rand.New(rand.NewSource(opt.Seed))
	topo := netem.GenerateTransitStub(netem.PaperTopology(hosts), rng)
	net := netem.New(sim, topo)
	sys := sdims.New(net, sdims.DefaultConfig())
	for i := 0; i < hosts; i++ {
		sys.SetValue(i, 1)
	}
	sys.Start()
	hostsIDs := topo.Hosts()

	compl := metrics.NewSeries(time.Second)
	liveHist := map[int64]int{}
	sim.Every(time.Second, func() {
		live := 0
		for _, h := range hostsIDs {
			if !net.Down(h) {
				live++
			}
		}
		liveHist[int64(sim.Now()/time.Second)] = live
		v, _ := sys.RootValue()
		compl.Add(sim.Now(), 100*v/float64(live))
	})
	// Probes every 5 seconds from a fixed peer, as in the paper.
	sim.Every(5*time.Second, func() { sys.Probe(1) })

	sim.RunFor(warm)
	maxOver := 0.0
	for _, k := range levels {
		var down []int
		want := hosts * k / 100
		for len(down) < want {
			p := rng.Intn(hosts)
			if !net.Down(hostsIDs[p]) {
				net.SetDown(hostsIDs[p], true)
				down = append(down, p)
			}
		}
		sim.RunFor(downFor)
		for _, p := range down {
			net.SetDown(hostsIDs[p], false)
		}
		sim.RunFor(gap)
	}
	end := sim.Now()

	t := &Table{
		Title:   "Figure 16: SDIMS completeness and network load under rolling failures",
		Columns: []string{"t(s)", "live%", "completeness%", "load Mbps"},
	}
	step := 20 * time.Second
	if opt.Quick {
		step = 10 * time.Second
	}
	for ts := step; ts < end; ts += step {
		c, _ := compl.At(ts)
		if c > maxOver {
			maxOver = c
		}
		live := 100.0
		if v, ok := liveHist[int64(ts/time.Second)]; ok {
			live = 100 * float64(v) / float64(hosts)
		}
		t.AddRow(fmt.Sprintf("%.0f", ts.Seconds()), f1(live), f1(c),
			f2(net.Accounting().Mbps(ts)))
	}
	steady := net.Accounting().MeanMbps(warm/2, warm)
	t.Note("max completeness %.1f%% — over-counting past 100%% (paper: ~180%%)", maxOver)
	t.Note("steady-state load %.2f Mbps at 1/5 Mortar's result frequency (paper: 67 Mbps vs Mortar's 12.5, 5.3x)", steady)
	return t
}

// Figure17 evaluates the physical dataflow planner (§7.3): the average
// 90th-percentile peer-to-root overlay latency across 30 random, planned
// (primary), and derived (sibling) trees, for branching factors 2-32, over
// 179 nodes of the Inet-like topology with Vivaldi coordinates.
func Figure17(opt Options) *Table {
	hosts, trees := 179, 30
	bfs := []int{2, 4, 8, 16, 32}
	if opt.Quick {
		hosts, trees = 100, 8
		bfs = []int{2, 8, 32}
	}
	sim := eventsim.New(opt.Seed)
	rng := rand.New(rand.NewSource(opt.Seed))
	topo := netem.GenerateTransitStub(netem.PaperTopology(hosts), rng)
	net := netem.New(sim, topo)
	hostIDs := topo.Hosts()
	coords := vivaldiCoords(net, rng)
	oneWay := plan.LatencyFunc(func(a, b int) time.Duration { return net.Latency(hostIDs[a], hostIDs[b]) })

	t := &Table{
		Title:   "Figure 17: avg 90th-percentile peer-to-root latency (ms) vs branching factor",
		Columns: []string{"bf", "random", "planned", "derived"},
	}
	var rnd16, plan16 float64
	for _, bf := range bfs {
		var rAvg, pAvg, dAvg float64
		for i := 0; i < trees; i++ {
			root := rng.Intn(hosts)
			rt := plan.BuildRandom(hosts, root, bf, rng)
			pt := plan.BuildPrimary(coords, root, bf, rng)
			dt := plan.DeriveSibling(pt, rng)
			rAvg += ms(plan.Percentile(plan.LatencyToRoot(rt, oneWay), 90))
			pAvg += ms(plan.Percentile(plan.LatencyToRoot(pt, oneWay), 90))
			dAvg += ms(plan.Percentile(plan.LatencyToRoot(dt, oneWay), 90))
		}
		n := float64(trees)
		t.AddRow(fmt.Sprintf("%d", bf), f1(rAvg/n), f1(pAvg/n), f1(dAvg/n))
		if bf == 16 || (opt.Quick && bf == 8) {
			rnd16, plan16 = rAvg/n, pAvg/n
		}
	}
	if rnd16 > 0 {
		t.Note("planner improves on random by %.0f%% (paper: 30-50%%); siblings preserve most of it", 100*(1-plan16/rnd16))
	}
	return t
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
