package tslist

import (
	"testing"
	"time"
)

// FuzzTSListInvariants drives a list through an arbitrary interleaving of
// Insert, ExtendLast, PopExpired and Recycle (the full entry life cycle,
// pool included) and checks the structural invariants after every step:
// entries stay sorted and non-overlapping (Validate), and value mass —
// the integral of value over time — is conserved between the list and what
// has been popped, so no interval is ever counted twice or dropped
// (§4.2: "values are counted only once for any given interval of time").
//
// Each operation consumes three bytes of fuzz input: an opcode and two
// operands that choose the interval, value and deadline.
func FuzzTSListInvariants(f *testing.F) {
	f.Add([]byte{0, 3, 7, 0, 3, 7, 3, 9, 0})              // merge then pop
	f.Add([]byte{0, 0, 4, 2, 4, 2, 0, 2, 9})              // insert, extend, overlap
	f.Add([]byte{1, 10, 3, 1, 12, 3, 3, 40, 0, 0, 10, 3}) // pop then refill from pool
	f.Fuzz(func(t *testing.T, data []byte) {
		l := New(sumCombine)
		var ctr Counters
		l.SetCounters(&ctr)
		var now time.Duration
		var wantMass, gotPopped float64
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i]%4, data[i+1], data[i+2]
			switch op {
			case 0, 1: // insert (double weight: it drives everything else)
				tb := time.Duration(a % 48)
				te := tb + time.Duration(1+b%16)
				v := float64(1 + b%8)
				dl := now + time.Duration(1+a%32)
				l.Insert(sum(v, tb, te), now, dl)
				wantMass += v * float64(te-tb)
			case 2: // extend the entry ending exactly at tb, when one exists
				tb := time.Duration(a % 48)
				te := tb + time.Duration(1+b%8)
				var v float64
				for _, e := range l.Entries() {
					if e.Index.TE == tb {
						v = e.Value.(float64) // TEs are strictly increasing: at most one match
					}
				}
				if l.ExtendLast(tb, te) {
					// An extension stretches the entry's value over the new
					// interval, adding mass without an insert.
					wantMass += v * float64(te-tb)
				}
			case 3: // advance time, pop, recycle through the pool
				now += time.Duration(a % 16)
				for _, e := range l.PopExpired(now) {
					gotPopped += e.Value.(float64) * float64(e.Index.Duration())
					l.Recycle(e)
				}
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("after op %d (%d %d %d): %v", i/3, op, a, b, err)
			}
		}
		var gotList float64
		for _, e := range l.Entries() {
			gotList += e.Value.(float64) * float64(e.Index.Duration())
		}
		if got := gotList + gotPopped; got != wantMass {
			t.Fatalf("mass: list %v + popped %v = %v, want %v",
				gotList, gotPopped, gotList+gotPopped, wantMass)
		}
		if int(ctr.Inserts.Load()) == 0 && len(data) >= 3 && l.Len()+int(ctr.Merges.Load()) > 0 {
			t.Fatal("entries exist but no insert was counted")
		}
	})
}
