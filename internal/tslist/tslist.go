// Package tslist implements the per-operator time-space (TS) list (§4.2):
// a sorted list of summary tuples representing potential final values. Upon
// arrival a summary is merged with existing entries with overlapping
// indices — exact matches merge in place; partial overlaps split the
// entries so that values are counted exactly once for any given interval of
// time. Entries are evicted on dynamic timeouts derived from the operator's
// netDist estimate (§4.3).
package tslist

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/tuple"
)

// Combine merges two operator values for the same interval. It must treat a
// nil operand as the identity (boundary tuples carry no value).
type Combine func(a, b tuple.Value) tuple.Value

// Counters aggregates data-path statistics across lists. The fields are
// atomic so one counter set can be shared by every instance of a fabric
// while each list mutates it from its own peer's execution context.
type Counters struct {
	// Inserts counts summaries inserted (one per non-empty Insert call).
	Inserts atomic.Uint64
	// Merges counts in-place merges with an existing entry — the
	// time-space consolidation the paper's §4.2 is about.
	Merges atomic.Uint64
}

// Entry is one summary tuple held by the list.
type Entry struct {
	Index    tuple.Index
	Value    tuple.Value
	Count    int
	Boundary bool // true while only boundary tuples contributed

	// Age bookkeeping (§4.3, §5.1): the evicted summary's age is the
	// average age of its constituents at eviction time. We store, per
	// constituent i, (age_i - arrivalLocal_i) summed, so that the average
	// age at local time t is ageSum/n + t.
	ageSum time.Duration
	n      int

	// Deadline is the local time at which the entry should be evicted; the
	// runtime sets it when the first tuple for the index arrives and keeps
	// the earliest deadline across merges.
	Deadline time.Duration

	// HopMax is the maximum overlay path length among constituents; the
	// experiments report it as tuple path length.
	HopMax int
	// Levels is the element-wise minimum routing history of the
	// constituents (§3.3); the emitting operator further constrains it
	// with its own tree levels.
	Levels []int16
}

// AvgAge returns the mean constituent age as of local time now.
func (e *Entry) AvgAge(now time.Duration) time.Duration {
	if e.n == 0 {
		return 0
	}
	return e.ageSum/time.Duration(e.n) + now
}

// Constituents returns how many summaries were merged into this entry.
func (e *Entry) Constituents() int { return e.n }

// List is a time-space list. It is a pure data structure: the owning
// operator runtime drives insertion, deadline computation, and eviction.
// A list is confined to one peer's execution context and recycles Entry
// storage through a free list, so the steady-state merge path (exact-index
// Insert into an existing entry) performs no allocation.
type List struct {
	combine Combine
	entries []*Entry // sorted by Index.TB, non-overlapping
	free    []*Entry // recycled entries, reused by newEntry/cloneInterval
	created []*Entry // scratch backing Insert's return value
	popped  []*Entry // scratch backing PopExpired's return value
	ctr     *Counters
}

// maxFree bounds the per-list free list so a burst of splits doesn't pin
// entry storage forever.
const maxFree = 256

// New returns an empty list using the given value combiner.
func New(combine Combine) *List {
	return &List{combine: combine}
}

// SetCounters points the list at a (possibly shared) counter set; nil
// disables counting.
func (l *List) SetCounters(c *Counters) { l.ctr = c }

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Entries returns the current entries in index order. The slice is shared;
// callers must not mutate it.
func (l *List) Entries() []*Entry { return l.entries }

// Recycle returns an entry previously removed by PopExpired or PopAll to
// the list's free pool. The caller must be done with the entry (and must
// not recycle it twice); its Levels backing array is retained for reuse
// but Value is dropped.
func (l *List) Recycle(e *Entry) {
	if e == nil || len(l.free) >= maxFree {
		return
	}
	e.Value = nil
	l.free = append(l.free, e)
}

// take pops a recycled entry, or allocates when the pool is dry.
func (l *List) take() *Entry {
	if n := len(l.free); n > 0 {
		e := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return e
	}
	return &Entry{}
}

// reuseLevels copies src into buf's backing array, preserving src == nil
// (nil means "no routing constraint" and must not become an empty vector).
func reuseLevels(buf, src []int16) []int16 {
	if src == nil {
		return nil
	}
	return append(buf[:0], src...)
}

// Insert merges a summary arriving at local time now, whose deadline (if it
// creates new entries) is dl. It returns the entries that are new since the
// call began (so the runtime can schedule eviction timers); the returned
// slice is scratch storage valid only until the next Insert.
func (l *List) Insert(s tuple.Summary, now, dl time.Duration) []*Entry {
	if s.Index.Empty() {
		return nil
	}
	if l.ctr != nil {
		l.ctr.Inserts.Add(1)
	}
	created := l.created[:0]
	cur := s.Index
	i := 0
	for cur.TB < cur.TE {
		// Skip entries entirely before cur.
		for i < len(l.entries) && l.entries[i].Index.TE <= cur.TB {
			i++
		}
		if i == len(l.entries) || l.entries[i].Index.TB >= cur.TE {
			// No overlap with anything: insert the remainder as one entry.
			e := l.newEntry(tuple.Index{TB: cur.TB, TE: cur.TE}, s, now, dl)
			l.insertAt(i, e)
			created = append(created, e)
			break
		}
		ex := l.entries[i]
		if cur.TB < ex.Index.TB {
			// Leading non-overlapping piece of the incoming summary.
			e := l.newEntry(tuple.Index{TB: cur.TB, TE: ex.Index.TB}, s, now, dl)
			l.insertAt(i, e)
			created = append(created, e)
			i++
			cur.TB = ex.Index.TB
			continue
		}
		// cur.TB is inside ex. Split ex's leading non-overlap off.
		if ex.Index.TB < cur.TB {
			lead := l.cloneInterval(ex, tuple.Index{TB: ex.Index.TB, TE: cur.TB})
			ex.Index.TB = cur.TB
			l.insertAt(i, lead)
			i++
		}
		// Now ex and cur start together. The overlap is T3 (§4.2): the
		// merge of the two; the non-overlapping tails retain their values.
		ov := ex.Index.Intersect(cur)
		if ex.Index.TE > ov.TE {
			tail := l.cloneInterval(ex, tuple.Index{TB: ov.TE, TE: ex.Index.TE})
			ex.Index.TE = ov.TE
			l.insertAt(i+1, tail)
		}
		l.mergeInto(ex, s, now)
		cur.TB = ov.TE
		i++
	}
	l.created = created
	return created
}

func (l *List) newEntry(idx tuple.Index, s tuple.Summary, now, dl time.Duration) *Entry {
	e := l.take()
	*e = Entry{
		Index:    idx,
		Count:    s.Count,
		Boundary: s.Boundary,
		ageSum:   s.Age - now,
		n:        1,
		Deadline: dl,
		HopMax:   s.Hops,
		Levels:   reuseLevels(e.Levels, s.Levels),
	}
	if !s.Boundary {
		e.Value = s.Value
	}
	return e
}

// cloneInterval copies an entry's value bookkeeping onto a sub-interval:
// non-overlapping regions "retain their initial values and shrink their
// intervals" (§4.2). Note the Value is shared between the clone and the
// original — combine must therefore never mutate its operands (in-place
// combiners are only safe where intervals never split; see CombineInPlace
// in internal/ops).
func (l *List) cloneInterval(e *Entry, idx tuple.Index) *Entry {
	c := l.take()
	lv := reuseLevels(c.Levels, e.Levels)
	*c = Entry{
		Index:    idx,
		Value:    e.Value,
		Count:    e.Count,
		Boundary: e.Boundary,
		ageSum:   e.ageSum,
		n:        e.n,
		Deadline: e.Deadline,
		HopMax:   e.HopMax,
		Levels:   lv,
	}
	return c
}

func (l *List) mergeInto(e *Entry, s tuple.Summary, now time.Duration) {
	if !s.Boundary {
		if e.Boundary {
			e.Value = s.Value
			e.Boundary = false
		} else {
			e.Value = l.combine(e.Value, s.Value)
		}
	}
	e.Count += s.Count
	e.ageSum += s.Age - now
	e.n++
	if s.Hops > e.HopMax {
		e.HopMax = s.Hops
	}
	// The entry owns its Levels storage (newEntry/cloneInterval copy), so
	// the routing history folds in place.
	e.Levels = tuple.MergeLevelsInto(e.Levels, s.Levels)
	if l.ctr != nil {
		l.ctr.Merges.Add(1)
	}
}

func (l *List) insertAt(i int, e *Entry) {
	l.entries = append(l.entries, nil)
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
}

// ExtendLast extends the validity interval of the last entry whose interval
// ends at exactly tb, to te. Boundary tuples use this to keep a stalled
// tuple-window summary valid (§4.3). It reports whether an entry was
// extended.
func (l *List) ExtendLast(tb, te time.Duration) bool {
	for i := len(l.entries) - 1; i >= 0; i-- {
		if l.entries[i].Index.TE == tb {
			if i+1 < len(l.entries) && l.entries[i+1].Index.TB < te {
				return false // would collide with a later entry
			}
			l.entries[i].Index.TE = te
			return true
		}
		if l.entries[i].Index.TE < tb {
			break
		}
	}
	return false
}

// PopExpired removes and returns (in index order) all entries whose
// deadline has passed as of local time now. The returned slice is scratch
// storage valid only until the next PopExpired; callers should Recycle the
// popped entries once done with them.
func (l *List) PopExpired(now time.Duration) []*Entry {
	out := l.popped[:0]
	kept := l.entries[:0]
	for _, e := range l.entries {
		if e.Deadline <= now {
			out = append(out, e)
		} else {
			kept = append(kept, e)
		}
	}
	// Drop the stale tail references so kept-capacity reuse doesn't pin
	// popped entries.
	for i := len(kept); i < len(l.entries); i++ {
		l.entries[i] = nil
	}
	l.entries = kept
	l.popped = out
	return out
}

// PopAll removes and returns every entry in index order.
func (l *List) PopAll() []*Entry {
	out := l.entries
	l.entries = nil
	return out
}

// NextDeadline returns the earliest deadline across entries, and false if
// the list is empty.
func (l *List) NextDeadline() (time.Duration, bool) {
	if len(l.entries) == 0 {
		return 0, false
	}
	best := l.entries[0].Deadline
	for _, e := range l.entries[1:] {
		if e.Deadline < best {
			best = e.Deadline
		}
	}
	return best, true
}

// Validate checks the structural invariants: entries sorted by TB, strictly
// non-overlapping, none empty.
func (l *List) Validate() error {
	for i, e := range l.entries {
		if e.Index.Empty() {
			return fmt.Errorf("tslist: empty interval %v at %d", e.Index, i)
		}
		if i > 0 && l.entries[i-1].Index.TE > e.Index.TB {
			return fmt.Errorf("tslist: entries %d and %d overlap: %v, %v",
				i-1, i, l.entries[i-1].Index, e.Index)
		}
	}
	return nil
}

// Summary converts an evicted entry back into a summary tuple for
// transmission to the next operator, stamping the averaged age (§5.1: "we
// set the age of S to the average age of its constituents", weighting the
// age toward the majority of the data).
func (e *Entry) Summary(query string, nowLocal time.Duration) tuple.Summary {
	return tuple.Summary{
		Query:    query,
		Index:    e.Index,
		Value:    e.Value,
		Age:      e.AvgAge(nowLocal),
		Count:    e.Count,
		Boundary: e.Boundary,
		Hops:     e.HopMax,
		Levels:   append([]int16(nil), e.Levels...),
	}
}
