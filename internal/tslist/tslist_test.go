package tslist

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tuple"
)

func sumCombine(a, b tuple.Value) tuple.Value {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return a.(float64) + b.(float64)
}

func sum(v float64, tb, te time.Duration) tuple.Summary {
	return tuple.Summary{Index: tuple.Index{TB: tb, TE: te}, Value: v, Count: 1}
}

func TestExactMatchMerges(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 0, 5), 0, 100)
	l.Insert(sum(2, 0, 5), 1, 100)
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1", l.Len())
	}
	e := l.Entries()[0]
	if e.Value.(float64) != 3 || e.Count != 2 {
		t.Fatalf("entry = %+v", e)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointInsertsStaySorted(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(3, 10, 15), 0, 100)
	l.Insert(sum(1, 0, 5), 0, 100)
	l.Insert(sum(2, 5, 10), 0, 100)
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	for i, want := range []float64{1, 2, 3} {
		if got := l.Entries()[i].Value.(float64); got != want {
			t.Fatalf("entry %d = %v, want %v", i, got, want)
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The paper's T1/T2/T3 example: partially overlapping indices produce a
// merged middle region and value-preserving tails.
func TestPartialOverlapSplits(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(10, 0, 10), 0, 100) // T1
	l.Insert(sum(5, 6, 14), 0, 100)  // T2 overlaps [6,10)
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3 (lead, overlap, tail)", l.Len())
	}
	es := l.Entries()
	if es[0].Index != (tuple.Index{TB: 0, TE: 6}) || es[0].Value.(float64) != 10 {
		t.Fatalf("lead = %v %v", es[0].Index, es[0].Value)
	}
	if es[1].Index != (tuple.Index{TB: 6, TE: 10}) || es[1].Value.(float64) != 15 {
		t.Fatalf("overlap = %v %v (want merged 15)", es[1].Index, es[1].Value)
	}
	if es[2].Index != (tuple.Index{TB: 10, TE: 14}) || es[2].Value.(float64) != 5 {
		t.Fatalf("tail = %v %v", es[2].Index, es[2].Value)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIncomingSpansMultipleEntries(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 0, 4), 0, 100)
	l.Insert(sum(2, 8, 12), 0, 100)
	l.Insert(sum(100, 2, 10), 0, 100) // covers tail of 1st, gap, head of 2nd
	// Expect: [0,2)=1, [2,4)=101, [4,8)=100, [8,10)=102, [10,12)=2
	wants := []struct {
		idx tuple.Index
		v   float64
	}{
		{tuple.Index{TB: 0, TE: 2}, 1},
		{tuple.Index{TB: 2, TE: 4}, 101},
		{tuple.Index{TB: 4, TE: 8}, 100},
		{tuple.Index{TB: 8, TE: 10}, 102},
		{tuple.Index{TB: 10, TE: 12}, 2},
	}
	if l.Len() != len(wants) {
		t.Fatalf("len = %d, want %d", l.Len(), len(wants))
	}
	for i, w := range wants {
		e := l.Entries()[i]
		if e.Index != w.idx || e.Value.(float64) != w.v {
			t.Fatalf("entry %d = %v %v, want %v %v", i, e.Index, e.Value, w.idx, w.v)
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBoundaryTuplesUpdateCompletenessOnly(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(5, 0, 10), 0, 100)
	l.Insert(tuple.Summary{
		Index: tuple.Index{TB: 0, TE: 10}, Count: 1, Boundary: true,
	}, 0, 100)
	e := l.Entries()[0]
	if e.Value.(float64) != 5 {
		t.Fatalf("boundary changed value to %v", e.Value)
	}
	if e.Count != 2 {
		t.Fatalf("count = %d, want 2", e.Count)
	}
	if e.Boundary {
		t.Fatal("entry still marked boundary after real value merged")
	}
}

func TestBoundaryFirstThenValue(t *testing.T) {
	l := New(sumCombine)
	l.Insert(tuple.Summary{Index: tuple.Index{TB: 0, TE: 10}, Count: 1, Boundary: true}, 0, 100)
	if !l.Entries()[0].Boundary {
		t.Fatal("boundary-only entry not marked boundary")
	}
	l.Insert(sum(7, 0, 10), 0, 100)
	e := l.Entries()[0]
	if e.Boundary || e.Value.(float64) != 7 || e.Count != 2 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestAgeAveraging(t *testing.T) {
	l := New(sumCombine)
	// Tuple A: age 10s, arrives at local time 0. Tuple B: age 2s, arrives
	// at local 0. At eviction (local 3s) the ages are 13s and 5s; avg 9s.
	a := sum(1, 0, 5)
	a.Age = 10 * time.Second
	b := sum(2, 0, 5)
	b.Age = 2 * time.Second
	l.Insert(a, 0, 100)
	l.Insert(b, 0, 100)
	e := l.Entries()[0]
	if got := e.AvgAge(3 * time.Second); got != 9*time.Second {
		t.Fatalf("avg age = %v, want 9s", got)
	}
	s := e.Summary("q", 3*time.Second)
	if s.Age != 9*time.Second || s.Count != 2 || s.Value.(float64) != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestAgeAccountsResidenceTime(t *testing.T) {
	l := New(sumCombine)
	a := sum(1, 0, 5)
	a.Age = time.Second
	l.Insert(a, 10*time.Second, 100*time.Second) // arrives at local t=10s
	// At local t=14s the tuple has been resident 4s: age = 1+4 = 5s.
	if got := l.Entries()[0].AvgAge(14 * time.Second); got != 5*time.Second {
		t.Fatalf("age = %v, want 5s", got)
	}
}

func TestPopExpired(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 0, 5), 0, 10)
	l.Insert(sum(2, 5, 10), 0, 20)
	l.Insert(sum(3, 10, 15), 0, 30)
	if dl, ok := l.NextDeadline(); !ok || dl != 10 {
		t.Fatalf("next deadline = %v %v", dl, ok)
	}
	got := l.PopExpired(15)
	if len(got) != 1 || got[0].Value.(float64) != 1 {
		t.Fatalf("expired = %+v", got)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	rest := l.PopExpired(100)
	if len(rest) != 2 {
		t.Fatalf("rest = %d", len(rest))
	}
	if _, ok := l.NextDeadline(); ok {
		t.Fatal("deadline on empty list")
	}
}

func TestMergeKeepsEarliestDeadline(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 0, 5), 0, 50)
	l.Insert(sum(2, 0, 5), 0, 10) // same index, later arrival, earlier dl passed in
	// Merged entry must keep its original (first-arrival) deadline: merging
	// never delays eviction.
	if dl := l.Entries()[0].Deadline; dl != 50 {
		t.Fatalf("deadline = %v, want 50 (set at first arrival)", dl)
	}
}

func TestExtendLast(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 0, 5), 0, 100)
	if !l.ExtendLast(5, 8) {
		t.Fatal("extend failed")
	}
	if l.Entries()[0].Index.TE != 8 {
		t.Fatalf("TE = %v", l.Entries()[0].Index.TE)
	}
	if l.ExtendLast(5, 9) {
		t.Fatal("extend matched stale TE")
	}
	// Extension must not collide with a later entry.
	l.Insert(sum(2, 10, 12), 0, 100)
	if l.ExtendLast(8, 11) {
		t.Fatal("extend overlapped a later entry")
	}
	if l.ExtendLast(8, 10) != true {
		t.Fatal("extend to exactly the next entry's TB should work")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPopAll(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 0, 5), 0, 10)
	l.Insert(sum(2, 5, 10), 0, 20)
	if got := l.PopAll(); len(got) != 2 {
		t.Fatalf("pop all = %d", len(got))
	}
	if l.Len() != 0 {
		t.Fatal("list not empty")
	}
}

func TestEmptyIndexIgnored(t *testing.T) {
	l := New(sumCombine)
	l.Insert(sum(1, 5, 5), 0, 10)
	l.Insert(sum(1, 7, 3), 0, 10)
	if l.Len() != 0 {
		t.Fatalf("len = %d, want 0", l.Len())
	}
}

// Property: for any insertion sequence, the list stays sorted and
// non-overlapping, and "values are counted only once for any given interval
// of time": the integral of value over time equals the sum of each inserted
// summary's value times its duration.
func TestPropertyMassConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New(sumCombine)
		n := 1 + int(nRaw)%20
		var wantMass float64
		for i := 0; i < n; i++ {
			tb := time.Duration(rng.Intn(40))
			te := tb + time.Duration(1+rng.Intn(20))
			v := float64(1 + rng.Intn(9))
			l.Insert(sum(v, tb, te), 0, 1000)
			wantMass += v * float64(te-tb)
		}
		if l.Validate() != nil {
			return false
		}
		var gotMass float64
		for _, e := range l.Entries() {
			gotMass += e.Value.(float64) * float64(e.Index.Duration())
		}
		return gotMass == wantMass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: entry count bookkeeping matches the number of contributing
// summaries for exact-index insertion patterns.
func TestPropertyExactIndexCounts(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New(sumCombine)
		n := 1 + int(nRaw)%30
		counts := map[time.Duration]int{}
		for i := 0; i < n; i++ {
			slot := time.Duration(rng.Intn(5)) * 10
			l.Insert(sum(1, slot, slot+10), 0, 1000)
			counts[slot]++
		}
		if l.Len() != len(counts) {
			return false
		}
		for _, e := range l.Entries() {
			if e.Count != counts[e.Index.TB] || e.Constituents() != counts[e.Index.TB] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
