// Package msl implements the Mortar Stream Language, the text-based form
// of the "boxes and arrows" query specification the prototype exposes
// (§2.2). A program is a sequence of query statements; each statement
// names one in-network operator, its source (raw sensors or another
// query's output stream), an optional select filter, the sliding window,
// and planner knobs.
//
// The paper's Wi-Fi location service "locates a MAC using three lines of
// the Mortar Stream Language" (§7.4); in this implementation:
//
//	query frames as topk(3, 0) from sensors where key = "aa:bb:cc:dd:ee:ff" window time 1s slide 1s
//	query loud as trilat() from frames window time 1s slide 1s
//	query trail as union() from loud window time 5s slide 5s
package msl

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"repro/internal/ops"
	"repro/internal/tuple"
)

// Statement is one parsed query definition.
type Statement struct {
	// Name is the query's unique name.
	Name string
	// Op and Args select the in-network operator.
	Op   string
	Args []string
	// Source is "sensors" for raw streams, or the name of another query to
	// subscribe to.
	Source string
	// FilterKey is the select predicate: drop raw tuples whose key
	// differs. Empty means no filter.
	FilterKey string
	// Window is the operator's sliding window.
	Window tuple.WindowSpec
	// Trees is the tree-set size D (0 = default).
	Trees int
	// BF is the branching factor (0 = default).
	BF int
}

// Program is a parsed MSL program.
type Program struct {
	Statements []Statement
}

// SourceSensors is the reserved source name for raw sensor streams.
const SourceSensors = "sensors"

// Parse compiles MSL source text.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	seen := map[string]bool{}
	for !p.done() {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		if seen[st.Name] {
			return nil, fmt.Errorf("msl: duplicate query name %q", st.Name)
		}
		seen[st.Name] = true
		prog.Statements = append(prog.Statements, st)
	}
	if len(prog.Statements) == 0 {
		return nil, fmt.Errorf("msl: empty program")
	}
	// Resolve sources: every non-sensor source must name an earlier query.
	for _, st := range prog.Statements {
		if st.Source == SourceSensors {
			continue
		}
		if !seen[st.Source] {
			return nil, fmt.Errorf("msl: query %q subscribes to unknown stream %q", st.Name, st.Source)
		}
	}
	return prog, nil
}

// --- lexer ---

type token struct {
	kind string // "word", "string", "punct"
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case unicode.IsSpace(rune(c)):
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("msl:%d: unterminated string", line)
				}
				j++
			}
			if j == len(src) {
				return nil, fmt.Errorf("msl:%d: unterminated string", line)
			}
			toks = append(toks, token{"string", src[i+1 : j], line})
			i = j + 1
		case strings.ContainsRune("(),=;", rune(c)):
			toks = append(toks, token{"punct", string(c), line})
			i++
		case isWordChar(c):
			j := i
			for j < len(src) && isWordChar(src[j]) {
				j++
			}
			toks = append(toks, token{"word", src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("msl:%d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isWordChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool {
	// Skip statement separators.
	for p.pos < len(p.toks) && p.toks[p.pos].kind == "punct" && p.toks[p.pos].text == ";" {
		p.pos++
	}
	return p.pos >= len(p.toks)
}

func (p *parser) peek() token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return token{"eof", "", -1}
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expectWord(kw string) error {
	t := p.next()
	if t.kind != "word" || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("msl:%d: expected %q, found %q", t.line, kw, t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != "punct" || t.text != s {
		return fmt.Errorf("msl:%d: expected %q, found %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) statement() (Statement, error) {
	var st Statement
	if err := p.expectWord("query"); err != nil {
		return st, err
	}
	name := p.next()
	if name.kind != "word" {
		return st, fmt.Errorf("msl:%d: expected query name, found %q", name.line, name.text)
	}
	st.Name = name.text
	if err := p.expectWord("as"); err != nil {
		return st, err
	}
	op := p.next()
	if op.kind != "word" {
		return st, fmt.Errorf("msl:%d: expected operator name", op.line)
	}
	st.Op = strings.ToLower(op.text)
	if !ops.Known(st.Op) {
		return st, fmt.Errorf("msl:%d: unknown operator %q", op.line, st.Op)
	}
	if err := p.expectPunct("("); err != nil {
		return st, err
	}
	for p.peek().text != ")" {
		arg := p.next()
		if arg.kind != "word" && arg.kind != "string" {
			return st, fmt.Errorf("msl:%d: bad operator argument %q", arg.line, arg.text)
		}
		st.Args = append(st.Args, arg.text)
		if p.peek().text == "," {
			p.next()
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return st, err
	}
	if err := p.expectWord("from"); err != nil {
		return st, err
	}
	srcTok := p.next()
	if srcTok.kind != "word" {
		return st, fmt.Errorf("msl:%d: expected source", srcTok.line)
	}
	st.Source = srcTok.text
	if strings.EqualFold(st.Source, SourceSensors) {
		st.Source = SourceSensors
	}

	// Optional clauses in any order: where, window, trees, bf.
	haveWindow := false
	for {
		t := p.peek()
		if t.kind != "word" {
			break
		}
		switch strings.ToLower(t.text) {
		case "where":
			p.next()
			if err := p.expectWord("key"); err != nil {
				return st, err
			}
			if err := p.expectPunct("="); err != nil {
				return st, err
			}
			v := p.next()
			if v.kind != "string" {
				return st, fmt.Errorf("msl:%d: where key = needs a quoted string", v.line)
			}
			st.FilterKey = v.text
		case "window":
			p.next()
			w, err := p.window()
			if err != nil {
				return st, err
			}
			st.Window = w
			haveWindow = true
		case "trees":
			p.next()
			n, err := p.intWord("trees")
			if err != nil {
				return st, err
			}
			st.Trees = n
		case "bf":
			p.next()
			n, err := p.intWord("bf")
			if err != nil {
				return st, err
			}
			st.BF = n
		case "query":
			goto doneClauses
		default:
			return st, fmt.Errorf("msl:%d: unexpected clause %q", t.line, t.text)
		}
	}
doneClauses:
	if !haveWindow {
		return st, fmt.Errorf("msl: query %q has no window clause", st.Name)
	}
	if err := st.Window.Validate(); err != nil {
		return st, fmt.Errorf("msl: query %q: %v", st.Name, err)
	}
	return st, nil
}

func (p *parser) window() (tuple.WindowSpec, error) {
	var w tuple.WindowSpec
	t := p.next()
	switch strings.ToLower(t.text) {
	case "time":
		w.Kind = tuple.TimeWindow
		r, err := p.durWord("range")
		if err != nil {
			return w, err
		}
		w.Range = r
		if err := p.expectWord("slide"); err != nil {
			return w, err
		}
		s, err := p.durWord("slide")
		if err != nil {
			return w, err
		}
		w.Slide = s
	case "tuples":
		w.Kind = tuple.TupleWindow
		n, err := p.intWord("range")
		if err != nil {
			return w, err
		}
		w.RangeN = n
		if err := p.expectWord("slide"); err != nil {
			return w, err
		}
		s, err := p.intWord("slide")
		if err != nil {
			return w, err
		}
		w.SlideN = s
	default:
		return w, fmt.Errorf("msl:%d: window must be 'time' or 'tuples', found %q", t.line, t.text)
	}
	return w, nil
}

func (p *parser) durWord(what string) (time.Duration, error) {
	t := p.next()
	d, err := time.ParseDuration(t.text)
	if err != nil {
		return 0, fmt.Errorf("msl:%d: bad %s duration %q", t.line, what, t.text)
	}
	return d, nil
}

func (p *parser) intWord(what string) (int, error) {
	t := p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("msl:%d: bad %s count %q", t.line, what, t.text)
	}
	return n, nil
}
