package msl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tuple"
)

func TestWiFiThreeLiner(t *testing.T) {
	src := `
# the paper's §7.4 query, three lines of MSL
query frames as topk(3, 0) from sensors where key = "aa:bb:cc:dd:ee:ff" window time 1s slide 1s
query loud as trilat() from frames window time 1s slide 1s
query trail as union() from loud window time 5s slide 5s
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Statements) != 3 {
		t.Fatalf("statements = %d", len(p.Statements))
	}
	f := p.Statements[0]
	if f.Name != "frames" || f.Op != "topk" || len(f.Args) != 2 || f.Args[0] != "3" {
		t.Fatalf("frames = %+v", f)
	}
	if f.FilterKey != "aa:bb:cc:dd:ee:ff" {
		t.Fatalf("filter = %q", f.FilterKey)
	}
	if f.Source != SourceSensors || f.Window.Slide != time.Second {
		t.Fatalf("frames = %+v", f)
	}
	if p.Statements[1].Source != "frames" || p.Statements[2].Source != "loud" {
		t.Fatal("chaining broken")
	}
}

func TestTupleWindowAndKnobs(t *testing.T) {
	p, err := Parse(`query q as avg(1) from sensors window tuples 20 slide 10 trees 4 bf 16`)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Statements[0]
	if st.Window.Kind != tuple.TupleWindow || st.Window.RangeN != 20 || st.Window.SlideN != 10 {
		t.Fatalf("window = %+v", st.Window)
	}
	if st.Trees != 4 || st.BF != 16 {
		t.Fatalf("knobs = %+v", st)
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	p, err := Parse(`
-- sum of load
query a as sum(0) from sensors window time 1s slide 1s;
query b as max(0) from sensors window time 2s slide 1s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Statements) != 2 {
		t.Fatalf("statements = %d", len(p.Statements))
	}
	if p.Statements[1].Window.Range != 2*time.Second {
		t.Fatal("sliding window range lost")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "empty program"},
		{"query q as bogus() from sensors window time 1s slide 1s", "unknown operator"},
		{"query q as sum() from sensors", "no window clause"},
		{"query q as sum() from nowhere window time 1s slide 1s", "unknown stream"},
		{`query q as sum() from sensors window time 1s slide 1s
		  query q as sum() from sensors window time 1s slide 1s`, "duplicate query name"},
		{"query q as sum() from sensors window time xx slide 1s", "bad range duration"},
		{"query q as sum() from sensors where key = foo window time 1s slide 1s", "quoted string"},
		{`query q as sum() from sensors window time 1s slide 1s banana 3`, "unexpected clause"},
		{`query q as sum() from sensors window monthly 1 slide 1`, "'time' or 'tuples'"},
		{`query q as sum() from sensors window time -1s slide 1s`, "positive range"},
		{`query q as sum("unterminated from sensors window time 1s slide 1s`, "unterminated string"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("no error for %q", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("error %q does not mention %q", err, c.want)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	p, err := Parse(`QUERY Q AS SUM(0) FROM SENSORS WINDOW TIME 1s SLIDE 1s`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Statements[0].Op != "sum" || p.Statements[0].Source != SourceSensors {
		t.Fatalf("stmt = %+v", p.Statements[0])
	}
}
