package federation

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/tuple"
)

// This file is the multi-tenant lifecycle layer: queries arrive and leave
// one at a time, concurrently, while the federation keeps running — the
// mode the HTTP gateway drives. The paper's efficiency argument (§6, Fig
// 13) depends on exactly this: hundreds of independent queries sharing one
// heartbeat/reconciliation mesh, so the marginal control cost of the next
// query is only its own install traffic plus tree-edge heartbeats the mesh
// union does not already carry.

// QuerySpec describes one query to install: the operator pipeline stage,
// its window, and the planner knobs. It is the programmatic form of one
// MSL statement, and the gateway's JSON install body decodes into it.
type QuerySpec struct {
	// Name uniquely identifies the query across the federation.
	Name string
	// Op and Args select the in-network operator from the registry.
	Op   string
	Args []string
	// Source is msl.SourceSensors ("sensors") for raw streams — the query
	// then spans every peer — or the name of an installed query whose root
	// output stream feeds this one (root-only composition, §2.2). Empty
	// defaults to sensors.
	Source string
	// FilterKey drops raw tuples whose key differs. Empty means no filter.
	FilterKey string
	// Window is the operator's sliding window.
	Window tuple.WindowSpec
	// Trees is the tree-set size D; 0 picks DefaultTrees.
	Trees int
	// BF is the branching factor; 0 picks DefaultBF.
	BF int
}

// QueryStatus is one installed query's liveness as seen from the
// coordinator: which epoch is current, how many peers have installed and
// wired it, and the membership size those counts are out of.
type QueryStatus struct {
	Name      string
	Epoch     uint32
	Members   int
	Installed int
	Wired     int
	// CtlBytes and DataBytes are this process's transmitted bytes
	// attributable to the query alone (install/remove/topology/ack traffic
	// and tuple envelopes; the shared heartbeat mesh is accounted
	// separately on the fabric).
	CtlBytes  uint64
	DataBytes uint64
}

// validate rejects a spec before any federation state is touched, so the
// gateway can map the error straight to a 400.
func (s QuerySpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("federation: query name must not be empty")
	}
	if s.Op == "" {
		return fmt.Errorf("federation: query %q: operator must not be empty", s.Name)
	}
	if err := s.Window.Validate(); err != nil {
		return fmt.Errorf("federation: query %q: %w", s.Name, err)
	}
	if s.Trees < 0 || s.BF < 0 {
		return fmt.Errorf("federation: query %q: negative planner knobs", s.Name)
	}
	return nil
}

// InstallQuery plans and installs one query over the running federation,
// planning against the current latency view (the gossiped Vivaldi
// embedding when available). Safe to call concurrently with other
// installs, removals, and the replanning monitor. The query starts
// receiving sensor input immediately: sensors feed every non-draining
// instance at a peer, so no per-query sensor wiring is needed.
func (f *Federation) InstallQuery(spec QuerySpec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	coords, _, _ := f.currentView(f.replanRngLocked())
	return f.installSpecLocked(spec, coords, f.Rt.Clock(0).Now())
}

// installSpecLocked validates, compiles, installs, and (for composed
// queries) chains one spec. Callers hold f.mu.
func (f *Federation) installSpecLocked(spec QuerySpec, coords []cluster.Point, now time.Duration) error {
	if err := spec.validate(); err != nil {
		return err
	}
	if spec.Source == "" {
		spec.Source = msl.SourceSensors
	}
	if _, exists := f.defs[spec.Name]; exists {
		return fmt.Errorf("federation: query %q already installed", spec.Name)
	}
	if spec.Source != msl.SourceSensors {
		if _, ok := f.defs[spec.Source]; !ok {
			return fmt.Errorf("federation: query %q sources unknown query %q", spec.Name, spec.Source)
		}
	}
	trees, bf := spec.Trees, spec.BF
	if trees == 0 {
		trees = DefaultTrees
	}
	if bf == 0 {
		bf = DefaultBF
	}
	f.seq++
	meta := mortar.QueryMeta{
		Name:      spec.Name,
		Seq:       f.seq,
		OpName:    spec.Op,
		OpArgs:    spec.Args,
		Window:    spec.Window,
		FilterKey: spec.FilterKey,
		Root:      0,
		IssuedSim: now,
	}
	var def *mortar.QueryDef
	var err error
	if spec.Source == msl.SourceSensors {
		def, err = f.Fab.Compile(meta, nil, coords, bf, trees)
	} else {
		// Downstream query: a root-only operator fed by subscription.
		def, err = f.Fab.Compile(meta, []int{0}, coords[:1], bf, 1)
	}
	if err != nil {
		f.seq-- // nothing was issued
		return fmt.Errorf("federation: query %q: %w", spec.Name, err)
	}
	if err := f.Fab.Install(0, def); err != nil {
		return fmt.Errorf("federation: query %q: %w", spec.Name, err)
	}
	f.defs[spec.Name] = def
	if spec.Source != msl.SourceSensors {
		f.chains[spec.Name] = f.Fab.Chain(spec.Source, 0)
		f.chainSrc[spec.Name] = spec.Source
	}
	return nil
}

// RemoveQuery uninstalls one query: its subscription chain (if composed)
// is severed first so no further tuples enter, then an epoch-wildcard
// Remove multicast drains every instance across the mesh. Removing a query
// other queries still source is rejected — their chains would feed a
// tombstone forever.
func (f *Federation) RemoveQuery(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.defs[name]; !ok {
		return fmt.Errorf("federation: unknown query %q", name)
	}
	for down, src := range f.chainSrc {
		if src == name {
			return fmt.Errorf("federation: query %q still feeds %q; remove the downstream query first", name, down)
		}
	}
	if cancel, ok := f.chains[name]; ok {
		cancel()
		delete(f.chains, name)
		delete(f.chainSrc, name)
	}
	f.seq++
	if err := f.Fab.Remove(0, name, f.seq); err != nil {
		f.seq--
		return fmt.Errorf("federation: remove %q: %w", name, err)
	}
	delete(f.defs, name)
	return nil
}

// QueryCount returns how many queries are installed. Unlike Queries it
// never enters a peer's serialization domain, so it is safe to call from
// contexts a peer callback may be waiting on (the gateway's admission
// path).
func (f *Federation) QueryCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.defs)
}

// Queries lists every installed query's status, sorted by name. The
// per-epoch counts enter each local peer's serialization domain, so do not
// call this while holding a lock a fabric subscription callback takes.
func (f *Federation) Queries() []QueryStatus {
	f.mu.Lock()
	names := make([]string, 0, len(f.defs))
	defs := make(map[string]*mortar.QueryDef, len(f.defs))
	for name, def := range f.defs {
		names = append(names, name)
		defs[name] = def
	}
	f.mu.Unlock()
	sort.Strings(names)
	out := make([]QueryStatus, 0, len(names))
	for _, name := range names {
		def := defs[name]
		st := QueryStatus{Name: name}
		if def != nil {
			st.Epoch = def.Meta.Epoch
			st.Members = len(def.Members)
			st.Installed, st.Wired = f.Fab.EpochCounts(name, def.Meta.Epoch)
		}
		st.CtlBytes, st.DataBytes = f.Fab.QueryTraffic(name)
		out = append(out, st)
	}
	return out
}
