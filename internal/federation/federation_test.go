package federation

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
)

func build(t *testing.T, src string, hosts int) (*Federation, *rand.Rand) {
	t.Helper()
	prog, err := msl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New(9)
	rng := rand.New(rand.NewSource(9))
	p := netem.PaperTopology(hosts)
	p.Stubs = 6
	p.Transits = 2
	topo := netem.GenerateTransitStub(p, rng)
	net := netem.New(sim, topo)
	fed, err := New(net, prog, rng)
	if err != nil {
		t.Fatal(err)
	}
	return fed, rng
}

func TestEndToEndCountQuery(t *testing.T) {
	fed, rng := build(t, `query n as count() from sensors window time 1s slide 1s`, 30)
	var last mortar.Result
	fed.Fab.Subscribe("n", func(r mortar.Result) { last = r })
	fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
	fed.Sim.RunUntil(20 * time.Second)
	if last.Value == nil || last.Value.(float64) != 30 {
		t.Fatalf("count = %v, want 30", last.Value)
	}
	if fed.Def("n") == nil {
		t.Fatal("definition not retained")
	}
}

func TestChainedQueries(t *testing.T) {
	fed, rng := build(t, `
		query loud as topk(2, 0) from sensors window time 1s slide 1s
		query m as max(0) from loud window time 1s slide 1s
	`, 20)
	var got float64
	fed.Fab.Subscribe("m", func(r mortar.Result) {
		if r.Value != nil {
			got = r.Value.(float64)
		}
	})
	fed.StartSensors(time.Second, func(peer int) tuple.Raw {
		return tuple.Raw{Key: "p", Vals: []float64{float64(peer)}}
	}, rng)
	fed.Sim.RunUntil(20 * time.Second)
	// Chained max over topk payload+score raws; the loudest peer is 19.
	if got < 19 {
		t.Fatalf("chained max = %v, want 19", got)
	}
}

func TestFailureControls(t *testing.T) {
	fed, rng := build(t, `query n as count() from sensors window time 1s slide 1s`, 25)
	fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
	fed.Sim.RunUntil(10 * time.Second)
	fed.FailRandom(5, rng)
	if live := fed.Fab.LiveCount(); live != 20 {
		t.Fatalf("live = %d after failing 5 of 25", live)
	}
	fed.RecoverAll()
	if live := fed.Fab.LiveCount(); live != 25 {
		t.Fatalf("live = %d after recovery", live)
	}
}

func TestPrintResults(t *testing.T) {
	fed, rng := build(t, `query n as count() from sensors window time 1s slide 1s`, 10)
	var sb strings.Builder
	fed.PrintResults(&sb)
	fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
	fed.Sim.RunUntil(8 * time.Second)
	if !strings.Contains(sb.String(), "query=n") {
		t.Fatalf("no results printed: %q", sb.String())
	}
}

func TestUnknownOperatorRejected(t *testing.T) {
	if _, err := msl.Parse(`query q as nosuch() from sensors window time 1s slide 1s`); err == nil {
		t.Fatal("parser accepted unknown operator")
	}
}
