package federation

import (
	"testing"
	"time"

	"repro/internal/tuple"
)

func TestWatchCompleteness(t *testing.T) {
	fed, rng := build(t, `query n as count() from sensors window time 1s slide 1s`, 30)
	w := fed.WatchCompleteness("n")
	defer w.Close()
	fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
	fed.Sim.RunUntil(20 * time.Second)

	if best := w.Best(); best != 30 {
		t.Fatalf("best completeness = %d, want 30", best)
	}
	win, count := w.Latest()
	if count != 30 {
		t.Fatalf("latest window %d has completeness %d, want 30", win, count)
	}
	if got, ok := w.Window(win); !ok || got != count {
		t.Fatalf("Window(%d) = %d, %v", win, got, ok)
	}
	snap := w.Snapshot()
	if snap[win] != count {
		t.Fatalf("snapshot missing latest window: %v", snap)
	}
	if fed.LiveCount() != 30 {
		t.Fatalf("LiveCount = %d", fed.LiveCount())
	}

	// A watch on another query sees nothing.
	other := fed.WatchCompleteness("nope")
	defer other.Close()
	if other.Best() != 0 {
		t.Fatal("filtered watch recorded results")
	}
}

func TestWatchCompletenessFold(t *testing.T) {
	fed, rng := build(t, `query n as count() from sensors window time 1s slide 1s`, 20)
	w := fed.WatchCompleteness("")
	fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
	fed.Sim.RunUntil(6 * time.Second)
	fed.FailRandom(8, rng)
	fed.Sim.RunUntil(14 * time.Second)
	winDuring, during := w.Latest()
	if during > 12 {
		t.Fatalf("window %d completeness %d with 8 of 20 down", winDuring, during)
	}
	fed.RecoverAll()
	fed.Sim.RunUntil(26 * time.Second)
	_, after := w.Latest()
	if after != 20 {
		t.Fatalf("completeness %d after recovery, want 20", after)
	}
	// Close is idempotent and stops updates.
	w.Close()
	w.Close()
	snapLen := len(w.Snapshot())
	fed.Sim.RunUntil(30 * time.Second)
	if len(w.Snapshot()) != snapLen {
		t.Fatal("closed watch kept accumulating")
	}
}
