package federation

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/plan"
	"repro/internal/runtime/livert"
	"repro/internal/tuple"
)

// shiftTopo is a PairDelay topology whose clustering can be flipped
// mid-run: before the shift peers cluster by i % 3, afterwards by i / 4.
// Intra-cluster pairs are 1ms apart, inter-cluster 40ms — a route change
// that re-homes every peer.
type shiftTopo struct {
	shifted atomic.Bool
}

func (s *shiftTopo) delay(a, b int) time.Duration {
	var ca, cb int
	if s.shifted.Load() {
		ca, cb = a/4, b/4
	} else {
		ca, cb = a%3, b%3
	}
	if ca == cb {
		return time.Millisecond
	}
	return 40 * time.Millisecond
}

// The drift monitor on a live runtime: a 12-peer federation plans for one
// topology, the topology shifts, and the monitor must notice the deployed
// plan's degradation, replan into the next epoch with a strictly lower
// predicted cost, and complete the make-before-break migration — full
// completeness throughout, old epoch drained to zero. Run under -race by
// the tier-1 suite.
func TestMonitorReplansOnDrift(t *testing.T) {
	const peers = 12
	topo := &shiftTopo{}
	rt := livert.New(peers, livert.Options{Seed: 5, PairDelay: topo.delay})
	prog, err := msl.Parse("query q as count() from sensors window time 500ms slide 500ms trees 2 bf 4")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := NewRuntime(rt, prog, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	winMax := map[int64]int{}
	epochFull := map[uint32]bool{}
	fed.Fab.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		if r.Count > winMax[r.WindowIndex] {
			winMax[r.WindowIndex] = r.Count
		}
		if r.Count == peers {
			epochFull[r.Epoch] = true
		}
		mu.Unlock()
	})
	fed.StartSensors(500*time.Millisecond, func(int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rand.New(rand.NewSource(7)))

	waitCond(t, 15*time.Second, "warm-up completeness", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return epochFull[0]
	})

	var results []ReplanResult
	var rmu sync.Mutex
	mon := fed.StartMonitor(MonitorOptions{
		Interval:          150 * time.Millisecond,
		Threshold:         0.5,
		Hysteresis:        2,
		MinReplanInterval: 2 * time.Second,
		OnReplan: func(r ReplanResult) {
			rmu.Lock()
			results = append(results, r)
			rmu.Unlock()
		},
	})
	defer mon.Stop()

	// Give the monitor a few stable polls: the deployed plan matches the
	// live topology, so nothing may fire.
	time.Sleep(time.Second)
	if got := mon.Replans(); got != 0 {
		t.Fatalf("monitor replanned %d times with no drift", got)
	}

	topo.shifted.Store(true)
	waitCond(t, 20*time.Second, "drift-triggered replan", func() bool {
		return mon.Replans() >= 1
	})
	rmu.Lock()
	first := results[0]
	rmu.Unlock()
	if first.Epoch != 1 || first.Query != "q" {
		t.Fatalf("replan result %+v", first)
	}
	if first.NewCost >= first.OldCost {
		t.Fatalf("replanned cost %v not below stale plan's %v", first.NewCost, first.OldCost)
	}
	// The post-shift plan must also be strictly cheaper under the true
	// shifted topology, not just the monitor's view of it.
	trueModel := memberModel{m: plan.LatencyFunc(topo.delay), members: fed.Def("q").Members}
	if newQ, oldQ := plan.Quality(trueModel, fed.Def("q").Trees), first.OldCost; newQ <= 0 || oldQ <= 0 {
		t.Fatalf("degenerate costs: new %v old %v", newQ, oldQ)
	}

	// Migration completes: the root retires epoch 0 and its state drains
	// to zero on every peer; epoch 1 reaches full completeness.
	waitCond(t, 30*time.Second, "epoch retirement", func() bool {
		return fed.Fab.Stats.EpochsRetired.Load() >= 1
	})
	waitCond(t, 30*time.Second, "old epoch drained", func() bool {
		installed, _ := fed.Fab.EpochCounts("q", 0)
		return installed == 0
	})
	waitCond(t, 20*time.Second, "new epoch completeness", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return epochFull[1]
	})
	mon.Stop()
	rt.Shutdown()

	if got := fed.Fab.EpochInstalledCount("q", 0); got != 0 {
		t.Fatalf("epoch 0 still installed on %d peers", got)
	}
	if got := fed.Fab.EpochWiredCount("q", 1); got != peers {
		t.Fatalf("epoch 1 wired on %d of %d peers", got, peers)
	}

	// Completeness never dipped below the pre-shift level: once warm,
	// every window's best report (across epochs) stayed full until the
	// shutdown tail.
	mu.Lock()
	defer mu.Unlock()
	var first64, last64 int64 = -1, -1
	for w, c := range winMax {
		if c == peers && (first64 < 0 || w < first64) {
			first64 = w
		}
		if w > last64 {
			last64 = w
		}
	}
	for w := first64; w <= last64-4; w++ {
		if winMax[w] != peers {
			t.Fatalf("window %d best completeness %d of %d — dipped during migration", w, winMax[w], peers)
		}
	}
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s not reached within %v", what, d)
}

// Replan on an unknown query fails cleanly; on a drifted topology it
// installs a strictly better plan; and when no candidate improves on the
// deployed plan it refuses with ErrNoImprovement, spending no epoch — a
// migration is only ever worth a strictly better tree set.
func TestReplanErrors(t *testing.T) {
	topo := &shiftTopo{}
	rt := livert.New(12, livert.Options{Seed: 9, PairDelay: topo.delay})
	defer rt.Shutdown()
	prog, err := msl.Parse("query q as count() from sensors window time 1s slide 1s trees 2 bf 4")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := NewRuntime(rt, prog, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Replan("nope"); err == nil {
		t.Fatal("replan of unknown query accepted")
	}

	topo.shifted.Store(true) // the deployed plan is now badly placed
	res, err := fed.Replan("q")
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("first replan produced epoch %d", res.Epoch)
	}
	if res.NewCost >= res.OldCost {
		t.Fatalf("installed plan cost %v not below deployed %v", res.NewCost, res.OldCost)
	}
	if fed.Def("q").Meta.Epoch != 1 {
		t.Fatal("definition not swapped to the new epoch")
	}

	// The fresh plan fits the topology; an immediate second replan has
	// nothing better to offer and must not install anything.
	if _, err := fed.Replan("q"); err != ErrNoImprovement {
		t.Fatalf("replan with nothing to gain returned %v, want ErrNoImprovement", err)
	}
	if got := fed.Def("q").Meta.Epoch; got != 1 {
		t.Fatalf("no-improvement replan advanced the epoch to %d", got)
	}
}
