// Package federation is the high-level entry point this library's
// applications use: it takes a parsed Mortar Stream Language program and a
// network, plans and installs every query (chaining subscriptions for
// queries that source other queries' output streams), and exposes sensor
// injection and failure control. The mortard command and the examples are
// thin wrappers around it.
package federation

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/tuple"
	"repro/internal/vivaldi"
)

// Defaults applied when an MSL statement omits planner knobs.
const (
	DefaultTrees = 4
	DefaultBF    = 16
)

// Federation is a running set of queries over an emulated node set.
type Federation struct {
	Fab  *mortar.Fabric
	Prog *msl.Program
	Sim  *eventsim.Sim

	defs map[string]*mortar.QueryDef
	down []int
	seq  uint64
}

// New plans and installs every query of prog over net's hosts. Queries
// sourcing "sensors" span all peers; queries sourcing another query run at
// their root only and are fed by subscription (§2.2 composition).
func New(net *netem.Network, prog *msl.Program, rng *rand.Rand) (*Federation, error) {
	fab, err := mortar.NewFabric(net, nil, mortar.DefaultConfig())
	if err != nil {
		return nil, err
	}
	f := &Federation{Fab: fab, Prog: prog, Sim: net.Sim(), defs: map[string]*mortar.QueryDef{}}

	// Network coordinates for planning, as the prototype sources them from
	// Vivaldi (§3.1).
	hosts := net.Topology().Hosts()
	sys := vivaldi.NewSystem(len(hosts), vivaldi.DefaultConfig(), rng)
	sys.Run(10, 8, func(i, j int) time.Duration { return net.Latency(hosts[i], hosts[j]) })
	coords := make([]cluster.Point, len(hosts))
	for i, c := range sys.Coordinates() {
		coords[i] = cluster.Point(c)
	}

	for _, st := range prog.Statements {
		f.seq++
		meta := mortar.QueryMeta{
			Name:      st.Name,
			Seq:       f.seq,
			OpName:    st.Op,
			OpArgs:    st.Args,
			Window:    st.Window,
			FilterKey: st.FilterKey,
			Root:      0,
			IssuedSim: f.Sim.Now(),
		}
		trees, bf := st.Trees, st.BF
		if trees == 0 {
			trees = DefaultTrees
		}
		if bf == 0 {
			bf = DefaultBF
		}
		var def *mortar.QueryDef
		if st.Source == msl.SourceSensors {
			def, err = fab.Compile(meta, nil, coords, bf, trees)
		} else {
			// Downstream query: a root-only operator fed by subscription.
			def, err = fab.Compile(meta, []int{0}, coords[:1], bf, 1)
		}
		if err != nil {
			return nil, fmt.Errorf("federation: query %q: %w", st.Name, err)
		}
		if err := fab.Install(0, def); err != nil {
			return nil, fmt.Errorf("federation: query %q: %w", st.Name, err)
		}
		f.defs[st.Name] = def
		if st.Source != msl.SourceSensors {
			fab.Chain(st.Source, 0)
		}
	}
	return f, nil
}

// Def returns the compiled definition of a query.
func (f *Federation) Def(name string) *mortar.QueryDef { return f.defs[name] }

// StartSensors emits one tuple per period per peer using gen, with
// per-peer phase jitter.
func (f *Federation) StartSensors(period time.Duration, gen func(peer int) tuple.Raw, rng *rand.Rand) {
	for i := 0; i < f.Fab.NumPeers(); i++ {
		i := i
		phase := time.Duration(rng.Int63n(int64(period)))
		f.Sim.After(phase, func() {
			f.Sim.Every(period, func() {
				f.Fab.Inject(i, gen(i))
			})
		})
	}
}

// PrintResults streams every root result to w as it is reported.
func (f *Federation) PrintResults(w io.Writer) {
	prev := f.Fab.OnResult
	f.Fab.OnResult = func(r mortar.Result) {
		if prev != nil {
			prev(r)
		}
		fmt.Fprintf(w, "t=%-8v query=%-10s window=%-4d value=%v completeness=%d hops=%d\n",
			r.At.Truncate(time.Millisecond), r.Query, r.WindowIndex, r.Value, r.Count, r.Hops)
	}
}

// FailRandom disconnects n random non-root peers.
func (f *Federation) FailRandom(n int, rng *rand.Rand) {
	for len(f.down) < n {
		p := 1 + rng.Intn(f.Fab.NumPeers()-1)
		if !f.Fab.Down(p) {
			f.Fab.SetDown(p, true)
			f.down = append(f.down, p)
		}
	}
}

// RecoverAll reconnects every disconnected peer.
func (f *Federation) RecoverAll() {
	for _, p := range f.down {
		f.Fab.SetDown(p, false)
	}
	f.down = nil
}
