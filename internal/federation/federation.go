// Package federation is the high-level entry point this library's
// applications use: it takes a parsed Mortar Stream Language program and a
// runtime backend, plans and installs every query (chaining subscriptions
// for queries that source other queries' output streams), and exposes
// sensor injection and failure control. The mortard command and the
// examples are thin wrappers around it.
//
// Two constructors mirror the two runtime backends: New wraps an emulated
// netem network in the deterministic simulator runtime; NewRuntime accepts
// any runtime.Runtime, which is how mortard -live drives a federation of
// real goroutine peers.
package federation

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/plan"
	"repro/internal/runtime"
	"repro/internal/runtime/simrt"
	"repro/internal/tuple"
	"repro/internal/vivaldi"
)

// Defaults applied when an MSL statement omits planner knobs.
const (
	DefaultTrees = 4
	DefaultBF    = 16
)

// CoordSource is implemented by runtimes whose peers gossip Vivaldi
// coordinates (runtime/netrt): Coordinates reports this process's view of
// every peer's coordinate and error estimate, with known[i] false where
// nothing has been gossiped yet. When the whole federation is covered,
// planning consumes the gossiped coordinates directly — worker processes
// embedded themselves from their own measurements, so pair latencies the
// coordinator never probed are still priced correctly.
type CoordSource interface {
	Coordinates() (coords []vivaldi.Coordinate, errs []float64, known []bool)
}

// heightSource is implemented by runtimes whose gossiped coordinates use
// the Vivaldi height-vector model: the last component of every coordinate
// is the node's height, and distance predictions must add both heights.
type heightSource interface {
	VivaldiHeight() bool
}

// coordHeight reports whether a runtime's coordinates carry heights.
func coordHeight(rt runtime.Runtime) bool {
	h, ok := rt.(heightSource)
	return ok && h.VivaldiHeight()
}

// Federation is a running set of queries over a node set.
type Federation struct {
	Fab  *mortar.Fabric
	Prog *msl.Program
	Rt   runtime.Runtime
	// Sim is the driving simulator; nil when the federation runs on a
	// non-simulated backend (use the backend's own lifecycle then).
	Sim *eventsim.Sim
	// Model is the latency view the queries were *initially* planned
	// against: coordinate distance when planning used gossiped
	// coordinates, measured transport latency otherwise. It is set once
	// by the constructor and never mutated afterwards (replans evaluate a
	// fresh view internally and report costs in ReplanResult instead).
	Model plan.LatencyModel
	// PlannedFromCoords reports whether planning consumed gossiped Vivaldi
	// coordinates (a CoordSource runtime with full coverage) instead of
	// running a coordinator-local embedding over Transport.Latency.
	PlannedFromCoords bool

	// mu guards defs, chains and seq: the replanning monitor and the
	// gateway's install/remove paths mutate them from their own goroutines
	// while the driving goroutine reads definitions.
	mu       sync.Mutex
	defs     map[string]*mortar.QueryDef
	chains   map[string]func() // per-query subscription chain cancels, keyed by downstream query
	chainSrc map[string]string // downstream query -> source query it subscribes to
	down     []int
	seq      uint64
	planRng  *rand.Rand // lazy; replanning only — never perturbs the setup rng stream
}

// New plans and installs every query of prog over net's hosts, driven by
// the deterministic simulator backend.
func New(net *netem.Network, prog *msl.Program, rng *rand.Rand) (*Federation, error) {
	f, err := NewRuntime(simrt.New(net), prog, rng)
	if err != nil {
		return nil, err
	}
	f.Sim = net.Sim()
	return f, nil
}

// NewRuntime plans and installs every query of prog over any runtime
// backend with the default mortar configuration. Queries sourcing
// "sensors" span all peers; queries sourcing another query run at their
// root only and are fed by subscription (§2.2 composition).
func NewRuntime(rt runtime.Runtime, prog *msl.Program, rng *rand.Rand) (*Federation, error) {
	return NewRuntimeCfg(rt, prog, rng, mortar.DefaultConfig())
}

// NewRuntimeCfg is NewRuntime with an explicit mortar configuration. prog
// may be nil: the federation then starts with zero queries and serves
// installs arriving later through InstallQuery — the gateway's
// multi-tenant mode, where every query enters over HTTP.
func NewRuntimeCfg(rt runtime.Runtime, prog *msl.Program, rng *rand.Rand, cfg mortar.Config) (*Federation, error) {
	fab, err := mortar.NewFabric(rt, nil, cfg)
	if err != nil {
		return nil, err
	}
	f := &Federation{
		Fab:      fab,
		Prog:     prog,
		Rt:       rt,
		defs:     map[string]*mortar.QueryDef{},
		chains:   map[string]func(){},
		chainSrc: map[string]string{},
	}

	// Network coordinates for planning, as the prototype sources them from
	// Vivaldi (§3.1). On a runtime whose peers gossip coordinates (netrt)
	// the decentralized embedding is consumed directly; otherwise a
	// coordinator-local embedding is computed over the transport's latency
	// oracle, which only prices pairs this process can measure.
	n := rt.NumPeers()
	tr := rt.Transport()
	coords := gossipedCoords(rt, n)
	if coords != nil {
		f.PlannedFromCoords = true
		f.Model = plan.CoordModel{Coords: coords, Height: coordHeight(rt)}
	} else {
		sys := vivaldi.NewSystem(n, vivaldi.DefaultConfig(), rng)
		sys.Run(10, 8, func(i, j int) time.Duration { return tr.Latency(i, j) })
		coords = make([]cluster.Point, n)
		for i, c := range sys.Coordinates() {
			coords[i] = cluster.Point(c)
		}
		f.Model = plan.LatencyFunc(tr.Latency)
	}

	if prog != nil {
		now := rt.Clock(0).Now()
		f.mu.Lock()
		defer f.mu.Unlock()
		for _, st := range prog.Statements {
			spec := QuerySpec{
				Name:      st.Name,
				Op:        st.Op,
				Args:      st.Args,
				Source:    st.Source,
				FilterKey: st.FilterKey,
				Window:    st.Window,
				Trees:     st.Trees,
				BF:        st.BF,
			}
			if err := f.installSpecLocked(spec, coords, now); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

// gossipedCoords returns planning points from the runtime's gossiped
// Vivaldi coordinates, or nil when the runtime is not a CoordSource or
// some peer has not gossiped yet (planning then falls back to the local
// embedding — a partially covered coordinate set would place the unheard
// peers at arbitrary positions).
func gossipedCoords(rt runtime.Runtime, n int) []cluster.Point {
	cs, ok := rt.(CoordSource)
	if !ok {
		return nil
	}
	cc, _, known := cs.Coordinates()
	out := make([]cluster.Point, n)
	for i := 0; i < n; i++ {
		if i >= len(cc) || !known[i] {
			return nil
		}
		out[i] = cluster.Point(cc[i])
	}
	return out
}

// NewWorker builds a fabric over a runtime that hosts a subset of the
// federation's peers (a netrt worker process) without planning or
// installing anything: workers receive their operators through the
// coordinator's install multicast and pair-wise reconciliation, exactly as
// recovered peers do. Only the coordinator — the process hosting the query
// roots — runs NewRuntime.
func NewWorker(rt runtime.Runtime) (*Federation, error) {
	return NewWorkerCfg(rt, mortar.DefaultConfig())
}

// NewWorkerCfg is NewWorker with an explicit mortar configuration — how a
// process still running an older release joins a federation: pinning
// Config.WireCompat keeps its frames decodable by every peer while the
// newer processes' frames remain decodable by it.
func NewWorkerCfg(rt runtime.Runtime, cfg mortar.Config) (*Federation, error) {
	fab, err := mortar.NewFabric(rt, nil, cfg)
	if err != nil {
		return nil, err
	}
	return &Federation{Fab: fab, Rt: rt, defs: map[string]*mortar.QueryDef{}, chains: map[string]func(){}, chainSrc: map[string]string{}}, nil
}

// Def returns the compiled definition of a query — the newest epoch's.
func (f *Federation) Def(name string) *mortar.QueryDef {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.defs[name]
}

// StartSensors emits one tuple per period per peer using gen, with
// per-peer phase jitter. gen runs inside each peer's serialization domain;
// under a live runtime that means concurrently across peers, so it must
// not share mutable state between peers. On a runtime hosting only a
// subset of the federation (a netrt process), sensors start for the local
// peers only — each process feeds its own peers. The phase draw happens
// for every peer regardless, so the rng stream (and thus simulated runs)
// is independent of locality.
func (f *Federation) StartSensors(period time.Duration, gen func(peer int) tuple.Raw, rng *rand.Rand) {
	for i := 0; i < f.Fab.NumPeers(); i++ {
		i := i
		phase := time.Duration(rng.Int63n(int64(period)))
		if !runtime.IsLocal(f.Rt, i) {
			continue
		}
		ck := f.Rt.Clock(i)
		ck.After(phase, func() {
			ck.Every(period, func() {
				f.Fab.Inject(i, gen(i))
			})
		})
	}
}

// PrintResults streams every root result to w as it is reported. It
// attaches through the fabric's synchronized subscription path and
// serializes the writer, so it is safe to call while a live federation is
// already running.
func (f *Federation) PrintResults(w io.Writer) {
	var mu sync.Mutex
	f.Fab.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "t=%-8v query=%-10s window=%-4d value=%v completeness=%d hops=%d\n",
			r.At.Truncate(time.Millisecond), r.Query, r.WindowIndex, r.Value, r.Count, r.Hops)
	})
}

// FailRandom disconnects n random non-root peers. n is clamped to the
// non-root peer count (asking for everything would otherwise spin forever
// redrawing already-down peers).
func (f *Federation) FailRandom(n int, rng *rand.Rand) {
	if max := f.Fab.NumPeers() - 1; n > max {
		n = max
	}
	for len(f.down) < n {
		p := 1 + rng.Intn(f.Fab.NumPeers()-1)
		if !f.Fab.Down(p) {
			f.Fab.SetDown(p, true)
			f.down = append(f.down, p)
		}
	}
}

// RecoverAll reconnects every disconnected peer.
func (f *Federation) RecoverAll() {
	for _, p := range f.down {
		f.Fab.SetDown(p, false)
	}
	f.down = nil
}
