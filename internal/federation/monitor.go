package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mortar"
	"repro/internal/plan"
	"repro/internal/vivaldi"
)

// ErrNoImprovement is returned by Replan when none of the candidate plans
// beats the deployed one under the current latency view: nothing is
// installed and no epoch is spent. A migration costs install traffic and
// doubled data-plane work while both epochs run — it is only ever worth
// paying for a strictly better plan.
var ErrNoImprovement = errors.New("federation: replan would not improve the deployed plan")

// replanCandidates is how many randomized plans Replan draws before
// concluding no improvement exists (plan.Build's clustering is
// randomized; one draw can be unlucky).
const replanCandidates = 4

// This file is the live-replanning layer: Replan compiles and installs
// the next epoch of a running query from the current latency view, and
// Monitor watches the (gossiped) Vivaldi embedding for drift, triggering
// Replan when the deployed tree set has degraded materially past what a
// fresh plan would cost. The epoch hand-off itself — side-by-side epochs,
// install acks, make-before-break retirement — lives in internal/mortar;
// this layer only decides when a migration is worth its traffic.

// ReplanResult describes one completed replan: the new epoch installed
// and the deployed-versus-new plan cost under the latency view the
// decision was made from (plan.Quality — mean peer-to-root latency).
type ReplanResult struct {
	Query      string
	Epoch      uint32
	OldCost    time.Duration
	NewCost    time.Duration
	FromCoords bool // the view was the gossiped embedding, not measured RTTs
}

// memberModel reindexes a peer-indexed latency model into a query's
// member space, where the planned trees live.
type memberModel struct {
	m       plan.LatencyModel
	members []int
}

func (mm memberModel) Latency(a, b int) time.Duration {
	if a < 0 || b < 0 || a >= len(mm.members) || b >= len(mm.members) {
		return 0
	}
	return mm.m.Latency(mm.members[a], mm.members[b])
}

// replanRngLocked returns the federation's replanning random source,
// creating it on first use — lazily, so federations that never replan
// draw nothing extra from any stream and simulated figure runs are
// untouched.
func (f *Federation) replanRngLocked() *rand.Rand {
	if f.planRng == nil {
		f.planRng = rand.New(rand.NewSource(0x6d6f727461727031))
	}
	return f.planRng
}

// currentView returns the planner's present latency view: the gossiped
// Vivaldi embedding when the runtime covers every peer (the decentralized
// path), else a coordinator-local embedding over the transport's measured
// latencies — the same fallback NewRuntime plans with.
func (f *Federation) currentView(rng *rand.Rand) ([]cluster.Point, plan.LatencyModel, bool) {
	n := f.Rt.NumPeers()
	if coords := gossipedCoords(f.Rt, n); coords != nil {
		return coords, plan.CoordModel{Coords: coords, Height: coordHeight(f.Rt)}, true
	}
	tr := f.Rt.Transport()
	sys := vivaldi.NewSystem(n, vivaldi.DefaultConfig(), rng)
	sys.Run(10, 8, func(i, j int) time.Duration { return tr.Latency(i, j) })
	coords := make([]cluster.Point, n)
	for i, c := range sys.Coordinates() {
		coords[i] = cluster.Point(c)
	}
	return coords, plan.LatencyFunc(tr.Latency), false
}

// Replan compiles the named query's next epoch from the current latency
// view and installs it. The new epoch runs beside the old one — tuples
// flow through both tree sets — until every member acks the new wiring
// and its completeness catches up, at which point the root retires the
// old epoch with an epoch-scoped Remove multicast (make-before-break; see
// internal/mortar). IssuedSim is preserved so both epochs index windows
// in the same frame. Safe to call from the monitor goroutine.
func (f *Federation) Replan(name string) (ReplanResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	def := f.defs[name]
	if def == nil {
		return ReplanResult{}, fmt.Errorf("federation: unknown query %q", name)
	}
	if len(def.Members) < 2 {
		return ReplanResult{}, fmt.Errorf("federation: query %q has no tree to replan", name)
	}
	rng := f.replanRngLocked()
	coords, model, fromCoords := f.currentView(rng)
	memberCoords := make([]cluster.Point, len(def.Members))
	for i, m := range def.Members {
		if m < 0 || m >= len(coords) {
			return ReplanResult{}, fmt.Errorf("federation: member %d outside coordinate set", m)
		}
		memberCoords[i] = coords[m]
	}

	f.seq++
	meta := def.Meta
	meta.Seq = f.seq
	meta.Epoch++
	bf := def.Trees.Trees[0].BF
	d := def.Trees.D()
	// The installed plan must be the plan the decision is about: draw a
	// few candidates, score each under the same view, and install only a
	// strict improvement over the deployed trees — never a random draw
	// whose cost was not evaluated.
	mm := memberModel{m: model, members: def.Members}
	oldCost := plan.Quality(mm, def.Trees)
	var newDef *mortar.QueryDef
	var newCost time.Duration
	for i := 0; i < replanCandidates; i++ {
		cand, err := f.Fab.CompileWith(meta, def.Members, memberCoords, bf, d, rng)
		if err != nil {
			f.seq-- // nothing was issued
			return ReplanResult{}, fmt.Errorf("federation: replan %q: %w", name, err)
		}
		if q := plan.Quality(mm, cand.Trees); newDef == nil || q < newCost {
			newDef, newCost = cand, q
		}
	}
	if newCost >= oldCost {
		f.seq-- // nothing was issued
		return ReplanResult{Query: name, Epoch: def.Meta.Epoch, OldCost: oldCost, NewCost: newCost, FromCoords: fromCoords},
			ErrNoImprovement
	}
	if err := f.Fab.Install(meta.Root, newDef); err != nil {
		return ReplanResult{}, fmt.Errorf("federation: replan %q: %w", name, err)
	}
	res := ReplanResult{
		Query:      name,
		Epoch:      meta.Epoch,
		OldCost:    oldCost,
		NewCost:    newCost,
		FromCoords: fromCoords,
	}
	// f.Model is deliberately NOT updated: it is an exported, unguarded
	// field documenting the view the initial plans were made from, and
	// writing it from the monitor goroutine would race every reader.
	f.defs[name] = newDef
	return res, nil
}

// MonitorOptions tunes the drift monitor. Zero values pick the defaults.
type MonitorOptions struct {
	// Interval is the poll period. Default 2s.
	Interval time.Duration
	// Threshold is the relative degradation that arms a replan: the
	// deployed plan's cost under the current view must exceed a fresh
	// candidate's by this fraction. Default 0.25.
	Threshold float64
	// Hysteresis is how many consecutive polls must breach the threshold
	// before a replan fires, so measurement jitter cannot thrash the
	// federation. Default 2.
	Hysteresis int
	// MinReplanInterval is the shortest time between two replans of the
	// same query — migrations cost install traffic and double data-plane
	// work while both epochs run; this bounds that overhead. Default 30s.
	MinReplanInterval time.Duration
	// OnReplan, when set, observes every completed replan (monitor
	// goroutine).
	OnReplan func(ReplanResult)
	// OnError, when set, observes replan failures other than
	// ErrNoImprovement (monitor goroutine) — a federation whose replans
	// permanently fail should not look like a healthy quiet one.
	OnError func(query string, err error)
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.25
	}
	if o.Hysteresis <= 0 {
		o.Hysteresis = 2
	}
	if o.MinReplanInterval <= 0 {
		o.MinReplanInterval = 30 * time.Second
	}
	return o
}

// Monitor watches the federation's latency view and replans queries whose
// deployed trees have drifted materially from what the current embedding
// would plan. Wall-clock driven: use it on live runtimes (livert, netrt),
// not inside the discrete-event simulator.
type Monitor struct {
	f   *Federation
	opt MonitorOptions

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	replans  atomic.Uint64
	failures atomic.Uint64
}

// StartMonitor begins drift monitoring with the given options and returns
// the running monitor. Call Stop before shutting the runtime down.
func (f *Federation) StartMonitor(opt MonitorOptions) *Monitor {
	m := &Monitor{
		f:    f,
		opt:  opt.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go m.loop()
	return m
}

// Stop ends monitoring and waits for the monitor goroutine to exit.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Replans returns how many replans this monitor has triggered.
func (m *Monitor) Replans() uint64 { return m.replans.Load() }

// Failures returns how many armed replans failed for reasons other than
// ErrNoImprovement.
func (m *Monitor) Failures() uint64 { return m.failures.Load() }

func (m *Monitor) loop() {
	defer close(m.done)
	t := time.NewTicker(m.opt.Interval)
	defer t.Stop()
	breaches := map[string]int{}
	lastReplan := map[string]time.Time{}
	// The candidate planner draws from its own stream: candidate builds
	// race nothing and replans use the federation's replanning source.
	rng := rand.New(rand.NewSource(0x647269667431))
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		for _, name := range m.f.queryNames() {
			if m.degraded(name, rng) {
				breaches[name]++
			} else {
				breaches[name] = 0
			}
			if breaches[name] < m.opt.Hysteresis {
				continue
			}
			if last, ok := lastReplan[name]; ok && time.Since(last) < m.opt.MinReplanInterval {
				continue
			}
			res, err := m.f.Replan(name)
			if err != nil {
				// Drop back to re-arming through hysteresis instead of
				// re-attempting every poll. ErrNoImprovement is the
				// benign case; anything else is a real failure and must
				// be surfaced, not swallowed.
				breaches[name] = 0
				if !errors.Is(err, ErrNoImprovement) {
					m.failures.Add(1)
					if m.opt.OnError != nil {
						m.opt.OnError(name, err)
					}
				}
				continue
			}
			breaches[name] = 0
			lastReplan[name] = time.Now()
			m.replans.Add(1)
			if m.opt.OnReplan != nil {
				m.opt.OnReplan(res)
			}
		}
	}
}

// queryNames snapshots the replannable query names.
func (f *Federation) queryNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.defs))
	for name, def := range f.defs {
		if def != nil && len(def.Members) >= 2 {
			names = append(names, name)
		}
	}
	return names
}

// degraded scores one query's deployed plan against a fresh candidate
// under the current latency view and reports whether the deployed cost
// exceeds the candidate's by more than the threshold.
func (m *Monitor) degraded(name string, rng *rand.Rand) bool {
	f := m.f
	f.mu.Lock()
	def := f.defs[name]
	f.mu.Unlock()
	if def == nil || len(def.Members) < 2 {
		return false
	}
	coords, model, _ := f.currentView(rng)
	memberCoords := make([]cluster.Point, len(def.Members))
	rootIdx := -1
	for i, mm := range def.Members {
		if mm < 0 || mm >= len(coords) {
			return false
		}
		memberCoords[i] = coords[mm]
		if mm == def.Meta.Root {
			rootIdx = i
		}
	}
	if rootIdx < 0 {
		return false
	}
	bf := def.Trees.Trees[0].BF
	d := def.Trees.D()
	candidate := plan.Build(memberCoords, rootIdx, bf, d, rng)
	mm := memberModel{m: model, members: def.Members}
	cur := plan.Quality(mm, def.Trees)
	cand := plan.Quality(mm, candidate)
	if cand <= 0 {
		return false
	}
	return float64(cur) > (1+m.opt.Threshold)*float64(cand)
}
