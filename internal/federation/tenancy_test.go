package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/mortar"
	"repro/internal/msl"
	"repro/internal/netem"
	"repro/internal/runtime/livert"
	"repro/internal/tuple"
)

// countStatements builds an MSL program of q identical count queries.
func countStatements(q, trees, bf int) string {
	var b strings.Builder
	for i := 0; i < q; i++ {
		fmt.Fprintf(&b, "query q%02d as count() from sensors window time 1s slide 1s trees %d bf %d\n", i, trees, bf)
	}
	return b.String()
}

// The multi-tenant lifecycle under real concurrency: ~32 queries
// installed from parallel goroutines over one livert mesh, replanned and
// removed while the rest keep running. Every surviving query must reach
// and hold full completeness, every removed query must stop reporting and
// drain. Run under -race by the tier-1 suite.
func TestConcurrentQueryLifecycle(t *testing.T) {
	const peers = 8
	const installs = 32
	cfg := mortar.DefaultConfig()
	cfg.HeartbeatPeriod = 50 * time.Millisecond
	cfg.MinTimeout = 20 * time.Millisecond
	cfg.MaxTimeout = 2 * time.Second
	cfg.TimeoutSlack = 30 * time.Millisecond
	rt := livert.New(peers, livert.Options{Seed: 21, MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	defer rt.Shutdown()
	fed, err := NewRuntimeCfg(rt, nil, rand.New(rand.NewSource(21)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fed.QueryCount(); got != 0 {
		t.Fatalf("nil program installed %d queries", got)
	}

	// Completeness watch: per query, the best count per window.
	var mu sync.Mutex
	winMax := map[string]map[int64]int{}
	lastFull := map[string]time.Time{}
	fed.Fab.SubscribeAll(func(r mortar.Result) {
		mu.Lock()
		if winMax[r.Query] == nil {
			winMax[r.Query] = map[int64]int{}
		}
		if r.Count > winMax[r.Query][r.WindowIndex] {
			winMax[r.Query][r.WindowIndex] = r.Count
		}
		if r.Count == peers {
			lastFull[r.Query] = time.Now()
		}
		mu.Unlock()
	})
	fed.StartSensors(250*time.Millisecond, func(int) tuple.Raw {
		return tuple.Raw{Vals: []float64{1}}
	}, rand.New(rand.NewSource(23)))

	spec := func(name string) QuerySpec {
		return QuerySpec{
			Name: name, Op: "count",
			Window: tuple.WindowSpec{Kind: tuple.TimeWindow, Range: 250 * time.Millisecond, Slide: 250 * time.Millisecond},
			Trees:  2, BF: 4,
		}
	}

	// Parallel installs.
	var wg sync.WaitGroup
	errs := make(chan error, installs)
	for i := 0; i < installs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fed.InstallQuery(spec(fmt.Sprintf("q%02d", i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := fed.QueryCount(); got != installs {
		t.Fatalf("installed %d queries, want %d", got, installs)
	}

	// Every query reaches full completeness.
	waitCond(t, 20*time.Second, "all queries at full completeness", func() bool {
		mu.Lock()
		defer mu.Unlock()
		full := 0
		for i := 0; i < installs; i++ {
			if !lastFull[fmt.Sprintf("q%02d", i)].IsZero() {
				full++
			}
		}
		return full == installs
	})

	// Churn: replan a batch, remove a batch, install fresh queries — all
	// concurrently over the same mesh.
	removed := map[string]bool{}
	for i := 0; i < 8; i++ {
		removed[fmt.Sprintf("q%02d", i)] = true
	}
	for i := 0; i < 8; i++ {
		wg.Add(3)
		go func(i int) {
			defer wg.Done()
			if err := fed.RemoveQuery(fmt.Sprintf("q%02d", i)); err != nil {
				errs := fmt.Errorf("remove q%02d: %w", i, err)
				t.Error(errs)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			// ErrNoImprovement is a legitimate outcome: the deployed plan
			// is already as good as the candidates.
			if _, err := fed.Replan(fmt.Sprintf("q%02d", 8+i)); err != nil && !errors.Is(err, ErrNoImprovement) {
				t.Errorf("replan q%02d: %v", 8+i, err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			if err := fed.InstallQuery(spec(fmt.Sprintf("x%02d", i))); err != nil {
				t.Errorf("install x%02d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got, want := fed.QueryCount(), installs-8+8; got != want {
		t.Fatalf("query count after churn: %d, want %d", got, want)
	}

	// Survivors and newcomers reach full completeness again after the
	// churn; removed queries stop reporting and drain everywhere.
	churnAt := time.Now()
	waitCond(t, 20*time.Second, "post-churn completeness", func() bool {
		// Queries() enters peer serialization domains, so it must not be
		// called under mu — the result callback takes mu from peer 0's
		// domain.
		sts := fed.Queries()
		mu.Lock()
		defer mu.Unlock()
		for _, st := range sts {
			if lastFull[st.Name].Before(churnAt) {
				return false
			}
		}
		return len(sts) == installs
	})
	waitCond(t, 20*time.Second, "removed queries drained", func() bool {
		for name := range removed {
			if fed.Fab.InstalledAnywhere(name) {
				return false
			}
		}
		return true
	})
	mu.Lock()
	quietAt := map[string]time.Time{}
	for name := range removed {
		quietAt[name] = lastFull[name]
	}
	mu.Unlock()
	time.Sleep(time.Second)
	mu.Lock()
	defer mu.Unlock()
	for name := range removed {
		if lastFull[name] != quietAt[name] {
			t.Fatalf("removed query %s still reporting", name)
		}
	}
}

// measureSteadyControl builds a Q-query federation over the deterministic
// simulator, lets it settle, and returns the steady-state control bytes
// transmitted per peer per simulated second.
func measureSteadyControl(t *testing.T, queries, hosts int) float64 {
	t.Helper()
	prog, err := msl.Parse(countStatements(queries, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New(31)
	rng := rand.New(rand.NewSource(31))
	p := netem.PaperTopology(hosts)
	p.Stubs = 6
	p.Transits = 2
	topo := netem.GenerateTransitStub(p, rng)
	net := netem.New(sim, topo)
	fed, err := New(net, prog, rng)
	if err != nil {
		t.Fatal(err)
	}
	fed.StartSensors(time.Second, func(int) tuple.Raw { return tuple.Raw{Vals: []float64{1}} }, rng)
	const settle = 30 * time.Second
	const window = 60 * time.Second
	fed.Sim.RunUntil(settle)
	before := fed.Fab.Stats.ControlBytes.Load()
	fed.Sim.RunUntil(settle + window)
	delta := fed.Fab.Stats.ControlBytes.Load() - before
	return float64(delta) / float64(hosts) / window.Seconds()
}

// The paper's sharing argument (Fig 13), deterministically: 64 queries
// over one mesh must cost far less control traffic than 64 meshes would.
// The heartbeat union saturates at the complete graph, so steady-state
// control bytes/peer at 64 queries stays under 8x the single-query figure
// — the acceptance bound for the sub-linear curve.
func TestControlBytesSubLinear(t *testing.T) {
	const hosts = 16
	one := measureSteadyControl(t, 1, hosts)
	many := measureSteadyControl(t, 64, hosts)
	if one <= 0 {
		t.Fatalf("no control traffic measured at 1 query")
	}
	ratio := many / one
	t.Logf("control bytes/peer/s: 1 query = %.1f, 64 queries = %.1f, ratio = %.2f", one, many, ratio)
	if ratio >= 8 {
		t.Fatalf("control traffic ratio %.2f at 64 queries; sharing curve must stay under 8x", ratio)
	}
}
