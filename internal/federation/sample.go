package federation

import (
	"sync"

	"repro/internal/mortar"
)

// maxTrackedWindows bounds the per-window completeness map a watch keeps.
// A watch lives for a whole experiment; unbounded retention over an
// hours-long soak would grow without limit, and no consumer looks further
// back than the sampling period anyway.
const maxTrackedWindows = 1024

// CompletenessWatch tracks per-window result completeness for one query
// as the federation runs, replacing the ad-hoc subscribe-and-poll loops
// tests used to build. It folds results with the per-window maximum
// across plan epochs: during a make-before-break migration both epochs
// report the same window, and the best of the two is the federation's
// completeness for it.
type CompletenessWatch struct {
	mu      sync.Mutex
	windows map[int64]int
	order   []int64 // insertion order, for bounded eviction
	latest  int64   // newest window seen
	best    int     // max completeness across all windows
	any     bool
	cancel  func()
}

// WatchCompleteness subscribes a watch to the named query's root results
// ("" watches every query). Close it when done; the subscription holds a
// fabric callback slot until then.
func (f *Federation) WatchCompleteness(query string) *CompletenessWatch {
	w := &CompletenessWatch{windows: make(map[int64]int)}
	w.cancel = f.Fab.SubscribeAll(func(r mortar.Result) {
		if query != "" && r.Query != query {
			return
		}
		w.mu.Lock()
		defer w.mu.Unlock()
		if cur, ok := w.windows[r.WindowIndex]; !ok || r.Count > cur {
			if !ok {
				w.order = append(w.order, r.WindowIndex)
				if len(w.order) > maxTrackedWindows {
					delete(w.windows, w.order[0])
					w.order = w.order[1:]
				}
			}
			w.windows[r.WindowIndex] = r.Count
		}
		if r.Count > w.best {
			w.best = r.Count
		}
		if !w.any || r.WindowIndex > w.latest {
			w.latest = r.WindowIndex
			w.any = true
		}
	})
	return w
}

// Latest returns the newest window index seen and its completeness
// (zeros before the first result).
func (w *CompletenessWatch) Latest() (window int64, count int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.any {
		return 0, 0
	}
	return w.latest, w.windows[w.latest]
}

// Best returns the highest completeness any window has reached.
func (w *CompletenessWatch) Best() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.best
}

// Window returns the completeness recorded for one window index.
func (w *CompletenessWatch) Window(idx int64) (count int, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	count, ok = w.windows[idx]
	return count, ok
}

// Snapshot copies the tracked window -> completeness map.
func (w *CompletenessWatch) Snapshot() map[int64]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[int64]int, len(w.windows))
	for k, v := range w.windows {
		out[k] = v
	}
	return out
}

// Close cancels the underlying subscription. Idempotent.
func (w *CompletenessWatch) Close() {
	w.mu.Lock()
	cancel := w.cancel
	w.cancel = nil
	w.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// LiveCount returns the fabric's count of currently-connected peers. Note
// this is the local transport's view: in a multi-process federation it
// only reflects peers this process gates (use the chaos runner's
// schedule-truth count there).
func (f *Federation) LiveCount() int {
	return f.Fab.LiveCount()
}
