// Package cluster implements k-means++ and X-means clustering. The Mortar
// prototype "uses the X-Means data clustering algorithm to perform planning"
// (Pelleg & Moore, ICML 2000); the physical dataflow planner in
// internal/plan clusters Vivaldi network coordinates with it to place
// operators at cluster centroids.
package cluster

import (
	"math"
	"math/rand"
)

// Point is a position in the coordinate space being clustered.
type Point []float64

func dist2(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Result is a clustering of the input points.
type Result struct {
	// Centroids holds the k cluster centers.
	Centroids []Point
	// Assign maps each input point index to its cluster in [0, k).
	Assign []int
	// Members lists the point indices in each cluster.
	Members [][]int
}

func (r *Result) build(points []Point) {
	r.Members = make([][]int, len(r.Centroids))
	for i, c := range r.Assign {
		r.Members[c] = append(r.Members[c], i)
	}
	_ = points
}

// KMeans clusters points into at most k clusters with k-means++ seeding and
// Lloyd iterations. If there are fewer than k distinct points, fewer
// clusters are returned. KMeans panics if points is empty or k < 1.
func KMeans(points []Point, k int, rng *rand.Rand) *Result {
	if len(points) == 0 || k < 1 {
		panic("cluster: KMeans needs points and k >= 1")
	}
	if k > len(points) {
		k = len(points)
	}
	centroids := seedPlusPlus(points, k, rng)
	k = len(centroids)
	assign := make([]int, len(points))
	for iter := 0; iter < 64; iter++ {
		changed := false
		for i, p := range points {
			best, bd := 0, math.MaxFloat64
			for c, ct := range centroids {
				if d := dist2(p, ct); d < bd {
					best, bd = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids; re-seed empty clusters at the farthest point
		// from its centroid, a standard remedy that keeps k stable.
		counts := make([]int, k)
		sums := make([]Point, k)
		for c := range sums {
			sums[c] = make(Point, len(points[0]))
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				centroids[c] = points[farthestPoint(points, assign, centroids)].clone()
				changed = true
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
		if !changed && iter > 0 {
			break
		}
	}
	res := &Result{Centroids: centroids, Assign: assign}
	res.build(points)
	return res
}

func (p Point) clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

func farthestPoint(points []Point, assign []int, centroids []Point) int {
	worst, wd := 0, -1.0
	for i, p := range points {
		d := dist2(p, centroids[assign[i]])
		if d > wd {
			worst, wd = i, d
		}
	}
	return worst
}

// seedPlusPlus chooses initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points []Point, k int, rng *rand.Rand) []Point {
	centroids := []Point{points[rng.Intn(len(points))].clone()}
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var sum float64
		for i, p := range points {
			d2[i] = math.MaxFloat64
			for _, c := range centroids {
				if d := dist2(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			sum += d2[i]
		}
		if sum == 0 {
			break // all remaining points coincide with a centroid
		}
		r := rng.Float64() * sum
		idx := 0
		for i := range points {
			r -= d2[i]
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, points[idx].clone())
	}
	return centroids
}

// XMeans clusters points, selecting k in [kmin, kmax] by recursively
// splitting clusters when the Bayesian Information Criterion improves
// (Pelleg & Moore). It starts from a k-means run at kmin and attempts to
// split each cluster in two.
func XMeans(points []Point, kmin, kmax int, rng *rand.Rand) *Result {
	if kmin < 1 {
		kmin = 1
	}
	if kmax < kmin {
		kmax = kmin
	}
	cur := KMeans(points, kmin, rng)
	for len(cur.Centroids) < kmax {
		improved := false
		var newCentroids []Point
		for c, members := range cur.Members {
			if len(members) < 4 {
				newCentroids = append(newCentroids, cur.Centroids[c])
				continue
			}
			sub := make([]Point, len(members))
			for i, m := range members {
				sub[i] = points[m]
			}
			one := bic(sub, []Point{cur.Centroids[c]}, assignAllZero(len(sub)))
			split := KMeans(sub, 2, rng)
			two := bic(sub, split.Centroids, split.Assign)
			if two > one && len(split.Centroids) == 2 &&
				len(newCentroids)+2 <= kmax+(len(cur.Members)-c-1) {
				newCentroids = append(newCentroids, split.Centroids...)
				improved = true
			} else {
				newCentroids = append(newCentroids, cur.Centroids[c])
			}
		}
		if !improved || len(newCentroids) > kmax {
			break
		}
		cur = assignToCentroids(points, newCentroids)
	}
	return cur
}

func assignAllZero(n int) []int { return make([]int, n) }

func assignToCentroids(points []Point, centroids []Point) *Result {
	assign := make([]int, len(points))
	for i, p := range points {
		best, bd := 0, math.MaxFloat64
		for c, ct := range centroids {
			if d := dist2(p, ct); d < bd {
				best, bd = c, d
			}
		}
		assign[i] = best
	}
	res := &Result{Centroids: centroids, Assign: assign}
	res.build(points)
	return res
}

// bic computes the Bayesian Information Criterion of a spherical-Gaussian
// mixture fit, as in the X-means paper. Higher is better.
func bic(points []Point, centroids []Point, assign []int) float64 {
	n := len(points)
	k := len(centroids)
	if n <= k {
		return math.Inf(-1)
	}
	dims := len(points[0])
	// Pooled variance estimate.
	var ss float64
	counts := make([]int, k)
	for i, p := range points {
		ss += dist2(p, centroids[assign[i]])
		counts[assign[i]]++
	}
	variance := ss / float64(dims*(n-k))
	if variance <= 0 {
		variance = 1e-12
	}
	var ll float64
	for _, cn := range counts {
		if cn == 0 {
			continue
		}
		fn := float64(cn)
		ll += fn*math.Log(fn) - fn*math.Log(float64(n)) -
			fn*float64(dims)/2*math.Log(2*math.Pi*variance) -
			(fn-1)*float64(dims)/2
	}
	params := float64(k-1) + float64(k*dims) + 1
	return ll - params/2*math.Log(float64(n))
}
