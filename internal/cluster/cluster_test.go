package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// blob generates n points around a center with the given spread.
func blob(rng *rand.Rand, center Point, n int, spread float64) []Point {
	out := make([]Point, n)
	for i := range out {
		p := make(Point, len(center))
		for d := range p {
			p[d] = center[d] + rng.NormFloat64()*spread
		}
		out[i] = p
	}
	return out
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := append(blob(rng, Point{0, 0}, 50, 1), blob(rng, Point{100, 100}, 50, 1)...)
	res := KMeans(pts, 2, rng)
	if len(res.Centroids) != 2 {
		t.Fatalf("k = %d, want 2", len(res.Centroids))
	}
	// All points of one blob must share an assignment.
	first := res.Assign[0]
	for i := 1; i < 50; i++ {
		if res.Assign[i] != first {
			t.Fatalf("blob 1 split across clusters")
		}
	}
	for i := 51; i < 100; i++ {
		if res.Assign[i] != res.Assign[50] {
			t.Fatalf("blob 2 split across clusters")
		}
	}
	if first == res.Assign[50] {
		t.Fatal("blobs merged")
	}
}

func TestKMeansFewerDistinctPointsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	res := KMeans(pts, 5, rng)
	if len(res.Centroids) == 0 || len(res.Centroids) > 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= len(res.Centroids) {
			t.Fatalf("bad assignment %d", a)
		}
	}
}

func TestKMeansSinglePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := KMeans([]Point{{5, 5}}, 3, rng)
	if len(res.Centroids) != 1 || res.Assign[0] != 0 {
		t.Fatalf("single point clustering broken: %+v", res)
	}
}

func TestKMeansPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	KMeans(nil, 2, rand.New(rand.NewSource(1)))
}

func TestMembersPartitionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := blob(rng, Point{0, 0, 0}, 200, 10)
	res := KMeans(pts, 7, rng)
	seen := make(map[int]bool)
	for c, members := range res.Members {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("point %d in two clusters", m)
			}
			seen[m] = true
			if res.Assign[m] != c {
				t.Fatalf("Members/Assign disagree for %d", m)
			}
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("partition covers %d of %d points", len(seen), len(pts))
	}
}

func TestXMeansFindsBlobCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []Point
	centers := []Point{{0, 0}, {200, 0}, {0, 200}, {200, 200}}
	for _, c := range centers {
		pts = append(pts, blob(rng, c, 40, 2)...)
	}
	// Start from kmin=2: the symmetric 1->2 split is a known marginal case
	// for X-means' BIC test, and the planner never requests fewer than the
	// branching factor anyway.
	res := XMeans(pts, 2, 16, rng)
	if got := len(res.Centroids); got < 3 || got > 6 {
		t.Fatalf("XMeans chose k = %d for 4 well-separated blobs", got)
	}
}

func TestXMeansRespectsKMax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := blob(rng, Point{0, 0}, 300, 50)
	res := XMeans(pts, 1, 3, rng)
	if len(res.Centroids) > 3 {
		t.Fatalf("k = %d exceeds kmax 3", len(res.Centroids))
	}
}

// Property: every point is assigned to its nearest centroid after KMeans
// converges (Lloyd's invariant).
func TestPropertyNearestCentroid(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw%6)
		pts := blob(rng, Point{0, 0}, 60, 30)
		res := KMeans(pts, k, rng)
		for i, p := range pts {
			best := dist2(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				if dist2(p, c) < best-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: assignments are a valid partition for arbitrary inputs.
func TestPropertyValidPartition(t *testing.T) {
	f := func(seed int64, n uint8, kRaw uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw%8)
		pts := blob(rng, Point{1, 2, 3}, int(n), 5)
		res := KMeans(pts, k, rng)
		if len(res.Assign) != len(pts) {
			return false
		}
		total := 0
		for _, m := range res.Members {
			total += len(m)
		}
		return total == len(pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
