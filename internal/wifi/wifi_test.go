package wifi

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuildingLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilding(188, 100, 60, rng)
	if len(b.Sniffers) != 188 {
		t.Fatalf("sniffers = %d", len(b.Sniffers))
	}
	for _, s := range b.Sniffers {
		if s.X < -2 || s.X > 102 || s.Y < -2 || s.Y > 62 {
			t.Fatalf("sniffer %d out of bounds: (%v, %v)", s.ID, s.X, s.Y)
		}
	}
}

func TestRSSIDecaysWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := DefaultRSSI()
	m.ShadowSigma = 0
	near, _ := m.Sample(2, rng)
	far, _ := m.Sample(40, rng)
	if near <= far {
		t.Fatalf("RSSI near (%v) must exceed far (%v)", near, far)
	}
	if _, ok := m.Sample(10000, rng); ok {
		t.Fatal("frame captured far beyond sensitivity floor")
	}
}

func TestWalkLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilding(50, 100, 60, rng)
	w := LWalk(b, 1.5)
	x0, y0 := w.Position(0)
	// The walk must stay inside the building and return to its start.
	perimeter := 2 * (90 + 50) // margins of 5 on a 100x60 floor
	xT, yT := w.Position(float64(perimeter) / 1.5)
	if math.Hypot(xT-x0, yT-y0) > 1e-6 {
		t.Fatalf("walk did not loop: (%v,%v) vs (%v,%v)", x0, y0, xT, yT)
	}
	for ti := 0; ti < 300; ti += 7 {
		x, y := w.Position(float64(ti))
		if x < 0 || x > 100 || y < 0 || y > 60 {
			t.Fatalf("walk left the building at t=%d: (%v, %v)", ti, x, y)
		}
	}
}

func TestCaptureNearestIsLoudest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := NewBuilding(100, 100, 60, rng)
	m := DefaultRSSI()
	m.ShadowSigma = 0
	x, y := 25.0, 30.0
	frames := b.Capture(x, y, m, rng)
	if len(frames) == 0 {
		t.Fatal("no frames captured")
	}
	loudest := frames[0]
	for _, f := range frames {
		if f.RSSI > loudest.RSSI {
			loudest = f
		}
	}
	// The loudest sniffer must be among the nearest few.
	s := b.Sniffers[loudest.Sniffer]
	d := math.Hypot(s.X-x, s.Y-y)
	for _, o := range b.Sniffers {
		od := math.Hypot(o.X-x, o.Y-y)
		if od < d-1e-9 {
			// A strictly closer sniffer exists; with zero shadowing the
			// loudest must be the closest.
			t.Fatalf("loudest sniffer %d at %vm but %d at %vm", loudest.Sniffer, d, o.ID, od)
		}
	}
}
