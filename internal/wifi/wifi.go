// Package wifi synthesizes the Jigsaw-style Wi-Fi sniffer workload of the
// paper's location service (§7.4). The real experiment replayed 802.11
// frames captured by 188 sniffers in the UCSD CSE building; we substitute a
// synthetic office walk plus a log-distance RSSI path-loss model, which
// preserves the property the query depends on: the sniffers nearest the
// transmitter report the loudest frames.
package wifi

import (
	"math"
	"math/rand"
)

// Sniffer is one monitoring station at a fixed position.
type Sniffer struct {
	ID   int
	X, Y float64
}

// Building lays out sniffers on a grid over an L-shaped office floor plan,
// loosely matching "four building floors" collapsed onto a single plane
// (the paper's naive trilateration cannot distinguish floors either).
type Building struct {
	Sniffers []Sniffer
	W, H     float64
}

// NewBuilding places n sniffers over a w x h floor.
func NewBuilding(n int, w, h float64, rng *rand.Rand) *Building {
	b := &Building{W: w, H: h}
	cols := int(math.Ceil(math.Sqrt(float64(n) * w / h)))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	i := 0
	for r := 0; r < rows && i < n; r++ {
		for c := 0; c < cols && i < n; c++ {
			b.Sniffers = append(b.Sniffers, Sniffer{
				ID: i,
				X:  (float64(c)+0.5)*w/float64(cols) + rng.Float64()*2 - 1,
				Y:  (float64(r)+0.5)*h/float64(rows) + rng.Float64()*2 - 1,
			})
			i++
		}
	}
	return b
}

// RSSIModel is a log-distance path-loss model with shadowing.
type RSSIModel struct {
	// TxPower is the transmit power at 1m, in dBm.
	TxPower float64
	// Exponent is the path-loss exponent (2 free space, ~3 indoors).
	Exponent float64
	// ShadowSigma is the lognormal shadowing std dev in dB.
	ShadowSigma float64
	// Floor is the sensitivity floor: frames below it are not captured.
	Floor float64
}

// DefaultRSSI returns typical indoor 802.11 parameters.
func DefaultRSSI() RSSIModel {
	return RSSIModel{TxPower: -30, Exponent: 3, ShadowSigma: 2, Floor: -85}
}

// Sample returns the RSSI measured by a sniffer at distance d meters, and
// whether the frame was captured at all.
func (m RSSIModel) Sample(d float64, rng *rand.Rand) (float64, bool) {
	if d < 1 {
		d = 1
	}
	rssi := m.TxPower - 10*m.Exponent*math.Log10(d) + rng.NormFloat64()*m.ShadowSigma
	return rssi, rssi >= m.Floor
}

// Walk is the ground-truth trajectory of the tracked device: the paper's
// user "circled the four building floors ... this simple query returns the
// L-shaped path of the user".
type Walk struct {
	points [][2]float64
	Speed  float64 // meters per second
}

// LWalk builds an L-shaped loop inside the building: along one hallway,
// turn, along the other, and back.
func LWalk(b *Building, speed float64) *Walk {
	margin := 5.0
	pts := [][2]float64{
		{margin, margin},
		{b.W - margin, margin},
		{b.W - margin, b.H - margin},
		{margin, b.H - margin},
		{margin, margin},
	}
	return &Walk{points: pts, Speed: speed}
}

// Position returns the walker's position t seconds into the walk; the path
// loops.
func (w *Walk) Position(t float64) (float64, float64) {
	total := 0.0
	for i := 1; i < len(w.points); i++ {
		total += segLen(w.points[i-1], w.points[i])
	}
	d := math.Mod(t*w.Speed, total)
	for i := 1; i < len(w.points); i++ {
		l := segLen(w.points[i-1], w.points[i])
		if d <= l {
			f := d / l
			return w.points[i-1][0] + f*(w.points[i][0]-w.points[i-1][0]),
				w.points[i-1][1] + f*(w.points[i][1]-w.points[i-1][1])
		}
		d -= l
	}
	return w.points[len(w.points)-1][0], w.points[len(w.points)-1][1]
}

func segLen(a, b [2]float64) float64 {
	return math.Hypot(b[0]-a[0], b[1]-a[1])
}

// Frame is one captured 802.11 frame observation.
type Frame struct {
	Sniffer int
	RSSI    float64
}

// Capture simulates one frame transmission from (x, y): every sniffer in
// range records an observation.
func (b *Building) Capture(x, y float64, m RSSIModel, rng *rand.Rand) []Frame {
	var out []Frame
	for _, s := range b.Sniffers {
		d := math.Hypot(s.X-x, s.Y-y)
		if rssi, ok := m.Sample(d, rng); ok {
			out = append(out, Frame{Sniffer: s.ID, RSSI: rssi})
		}
	}
	return out
}
